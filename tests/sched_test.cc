// Unit and property tests for src/sched: admission, Algorithm 2, the SJF
// score (Eq. 6/7), the Gavel max-min solver (Eq. 8/9), baseline storage
// policies, and plan validation.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>

#include "src/common/units.h"
#include "src/estimator/ioperf.h"
#include "src/sched/fifo.h"
#include "src/sched/gavel.h"
#include "src/sched/greedy.h"
#include "src/sched/sjf.h"
#include "src/sched/storage_policies.h"
#include "src/sched/zone_spread.h"
#include "src/workload/model_zoo.h"

namespace silod {
namespace {

// Fixture building configurable snapshots.
class SchedTest : public ::testing::Test {
 protected:
  SchedTest() {
    snapshot_.catalog = &catalog_;
    snapshot_.resources.total_gpus = 8;
    snapshot_.resources.total_cache = TB(2);
    snapshot_.resources.remote_io = MBps(200);
  }

  // Adds a job on its own dataset; returns the view index.
  std::size_t AddJob(const std::string& model, int gpus, Bytes dataset_size,
                     Seconds duration = Hours(10), Seconds submit = 0) {
    const DatasetId d =
        catalog_.Add(model + "-data-" + std::to_string(jobs_.size()), dataset_size, MB(64));
    jobs_.push_back(MakeJob(static_cast<JobId>(jobs_.size()), zoo_, model, gpus, d, duration,
                            submit));
    views_dirty_ = true;
    return jobs_.size() - 1;
  }

  Snapshot& snapshot() {
    if (views_dirty_) {
      snapshot_.jobs.clear();
      for (const JobSpec& j : jobs_) {
        JobView view;
        view.spec = &j;
        view.remaining_bytes = j.total_bytes;
        view.effective_cache = 0;
        snapshot_.jobs.push_back(view);
      }
      views_dirty_ = false;
    }
    return snapshot_;
  }

  ModelZoo zoo_;
  DatasetCatalog catalog_;
  std::deque<JobSpec> jobs_;
  Snapshot snapshot_;
  bool views_dirty_ = true;
};

// -------------------------------------------------------------- Admission --

TEST_F(SchedTest, FifoAdmitsInArrivalOrderWithBackfill) {
  AddJob("ResNet-50", 4, GB(143), Hours(1), /*submit=*/0);
  AddJob("ResNet-50", 8, GB(143), Hours(1), /*submit=*/10);  // Does not fit after job 0.
  AddJob("ResNet-50", 4, GB(143), Hours(1), /*submit=*/20);  // Backfills.
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  EXPECT_TRUE(plan.IsRunning(0));
  EXPECT_FALSE(plan.IsRunning(1));
  EXPECT_TRUE(plan.IsRunning(2));
  EXPECT_EQ(plan.GpusUsed(), 8);
  EXPECT_TRUE(plan.Validate(snapshot().resources).ok());
}

TEST_F(SchedTest, RunningJobsAreNotPreempted) {
  AddJob("ResNet-50", 8, GB(143), Hours(1), /*submit=*/100);
  AddJob("ResNet-50", 4, GB(143), Hours(1), /*submit=*/0);
  snapshot().jobs[0].running = true;  // Later-submitted job already holds GPUs.
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot_);
  EXPECT_TRUE(plan.IsRunning(0));
  EXPECT_FALSE(plan.IsRunning(1));  // No room left; FIFO order cannot preempt.
}

// ------------------------------------------------------------ Algorithm 2 --

TEST_F(SchedTest, GreedyCachesMostEfficientDatasetsFirst) {
  // §7.1.1 micro-benchmark shape: ResNet-50 (87 MB/s/TB) beats
  // EfficientNetB1 (53) beats BERT (0.4); 2 TB covers one full ResNet dataset
  // and 0.7 TB of the second most efficient.
  AddJob("ResNet-50", 1, TB(1.3));
  AddJob("ResNet-50", 1, TB(1.3));
  AddJob("EfficientNetB1", 1, TB(1.3));
  AddJob("EfficientNetB1", 1, TB(1.3));
  AddJob("BERT", 4, TB(20.9));
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  // The two ResNet datasets are tied: one fully cached, the other gets the
  // remaining 0.7 TB.  EfficientNet and BERT get nothing.
  const Bytes c0 = plan.dataset_cache.at(jobs_[0].dataset);
  const Bytes c1 = plan.dataset_cache.at(jobs_[1].dataset);
  EXPECT_EQ(std::max(c0, c1), TB(1.3));
  EXPECT_EQ(std::min(c0, c1), TB(0.7));
  EXPECT_EQ(plan.dataset_cache.count(jobs_[2].dataset)
                ? plan.dataset_cache.at(jobs_[2].dataset)
                : 0,
            0);
  EXPECT_EQ(plan.DatasetCacheTotal(), TB(2));
}

TEST_F(SchedTest, GreedyRemoteIoCoversDemandsWhenUnderloaded) {
  AddJob("ResNet-50", 1, GB(143));
  AddJob("BERT", 4, TB(20.9));
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  // Instantaneous demands (cold caches): 114 + 8 MB/s < 200 MB/s.
  EXPECT_NEAR(plan.Get(0).remote_io, jobs_[0].ideal_io, 1.0);
  EXPECT_NEAR(plan.Get(1).remote_io, jobs_[1].ideal_io, 1.0);
  EXPECT_TRUE(plan.manages_remote_io);
}

TEST_F(SchedTest, GreedyRemoteIoSharesFairlyWhenOverloaded) {
  for (int i = 0; i < 4; ++i) {
    AddJob("ResNet-50", 1, TB(1.3));
  }
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  // Cold demands 4 x 114 > 200: equal 50 MB/s shares.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(plan.Get(i).remote_io, MBps(50), 1.0);
  }
}

TEST_F(SchedTest, GreedySumsEfficiencyOverSharingJobs) {
  // Two BERT jobs sharing one dataset can out-rank a single faster job if
  // their summed efficiency wins; here they do not, but the dataset-level sum
  // must still be what ranks (§6).
  const DatasetId shared = catalog_.Add("shared", GB(500), MB(64));
  for (int i = 0; i < 2; ++i) {
    jobs_.push_back(MakeJob(static_cast<JobId>(jobs_.size()), zoo_, "EfficientNetB1", 1, shared,
                            Hours(10), 0));
  }
  AddJob("ResNet-50", 1, GB(500));
  snapshot_.resources.total_cache = GB(500);
  views_dirty_ = true;
  FifoScheduler fifo(std::make_shared<SiloDGreedyStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  // Summed efficiency of the shared dataset: 2*69/500 = 0.276 > 114/500.
  EXPECT_EQ(plan.dataset_cache.at(shared), GB(500));
}

// -------------------------------------------------------------- SJF score --

TEST_F(SchedTest, VanillaSjfPrefersShortJobs) {
  const std::size_t long_job = AddJob("ResNet-50", 1, GB(143), Hours(20));
  const std::size_t short_job = AddJob("ResNet-50", 1, GB(143), Hours(1));
  const double s_long = SjfScore(snapshot().jobs[long_job], snapshot(), SjfScoreMode::kComputeOnly);
  const double s_short =
      SjfScore(snapshot().jobs[short_job], snapshot(), SjfScoreMode::kComputeOnly);
  EXPECT_LT(s_short, s_long);
}

TEST_F(SchedTest, SiloDSjfPrefersCacheEfficientJobAtEqualWork) {
  // §5.1: two ResNet-50 jobs with the same steps, one on ImageNet-1k (143 GB)
  // and one on ImageNet-22k (1.3 TB): the former consumes far less cache to
  // reach f*, so its Eq. 7 score is lower.
  const std::size_t small = AddJob("ResNet-50", 1, GB(143), Hours(10));
  const std::size_t large = AddJob("ResNet-50", 1, TB(1.3), Hours(10));
  const double s_small = SjfScore(snapshot().jobs[small], snapshot(), SjfScoreMode::kSiloD);
  const double s_large = SjfScore(snapshot().jobs[large], snapshot(), SjfScoreMode::kSiloD);
  EXPECT_LT(s_small, s_large);
}

TEST_F(SchedTest, SiloDSjfSchedulerOrdersByScore) {
  AddJob("ResNet-50", 8, TB(1.3), Hours(10), /*submit=*/0);
  AddJob("ResNet-50", 8, GB(143), Hours(10), /*submit=*/1);
  SjfScheduler sjf(std::make_shared<SiloDGreedyStorage>(), SjfScoreMode::kSiloD);
  const AllocationPlan plan = sjf.Schedule(snapshot());
  // Only one 8-GPU job fits; the cache-efficient one wins despite arriving
  // later.
  EXPECT_FALSE(plan.IsRunning(0));
  EXPECT_TRUE(plan.IsRunning(1));
}

// ----------------------------------------------------------------- Gavel --

TEST_F(SchedTest, GavelEqualShareThroughput) {
  AddJob("ResNet-50", 1, GB(143));
  // Equal share of 2 TB covers the whole 143 GB dataset -> compute bound.
  EXPECT_DOUBLE_EQ(EqualShareThroughput(jobs_[0], snapshot(), 2), jobs_[0].ideal_io);
  // With 100 sharers: 20 GB cache, 2 MB/s IO -> IO bound.
  const BytesPerSec eq100 = EqualShareThroughput(jobs_[0], snapshot(), 100);
  EXPECT_NEAR(eq100, SiloDPerfThroughput(jobs_[0].ideal_io, MBps(2), TB(2) / 100, GB(143)),
              1.0);
}

TEST_F(SchedTest, GavelSolverSymmetricJobsGetEqualTargets) {
  snapshot_.resources.total_cache = TB(1.4);
  snapshot_.resources.remote_io = MBps(100);
  snapshot_.resources.per_job_remote_cap = MBps(50);
  AddJob("ResNet-50", 1, TB(1.36));
  AddJob("ResNet-50", 1, TB(1.36));
  GavelScheduler gavel(nullptr, /*silod_aware=*/true);
  const AllocationPlan plan = gavel.Schedule(snapshot());
  ASSERT_TRUE(plan.Validate(snapshot().resources).ok());
  // Fig. 4's optimum: cache split evenly, both jobs at the same speed.
  const Bytes c0 = plan.dataset_cache.at(jobs_[0].dataset);
  const Bytes c1 = plan.dataset_cache.at(jobs_[1].dataset);
  EXPECT_NEAR(static_cast<double>(c0), static_cast<double>(c1), static_cast<double>(GB(20)));
  const GavelSolution solution = SolveMaxMinFairness(snapshot(), plan);
  EXPECT_NEAR(solution.target.at(0), solution.target.at(1), MBps(1));
  // ~103-108 MB/s steady state (the paper reports 107).
  EXPECT_GT(solution.target.at(0), MBps(95));
  EXPECT_LT(solution.target.at(0), MBps(114));
}

TEST_F(SchedTest, GavelSolverRespectsConservation) {
  snapshot_.resources.total_cache = TB(1);
  snapshot_.resources.remote_io = MBps(150);
  AddJob("ResNet-50", 1, TB(1.3));
  AddJob("EfficientNetB1", 1, TB(1.3));
  AddJob("BERT", 4, TB(20.9));
  GavelScheduler gavel(nullptr, /*silod_aware=*/true);
  const AllocationPlan plan = gavel.Schedule(snapshot());
  EXPECT_TRUE(plan.Validate(snapshot().resources).ok());
  EXPECT_LE(plan.DatasetCacheTotal(), TB(1));
  BytesPerSec io = 0;
  for (const auto& [id, alloc] : plan.jobs) {
    if (alloc.running && !std::isinf(alloc.remote_io)) {
      io += alloc.remote_io;
    }
  }
  EXPECT_LE(io, MBps(150) * 1.001);
}

TEST_F(SchedTest, GavelSolverParetoNoLeftoverWhenConstrained) {
  // With every job IO-hungry, the solver should hand out the whole egress.
  snapshot_.resources.total_cache = GB(100);
  snapshot_.resources.remote_io = MBps(100);
  for (int i = 0; i < 4; ++i) {
    AddJob("ResNet-50", 1, TB(1.3));
  }
  GavelScheduler gavel(nullptr, /*silod_aware=*/true);
  const AllocationPlan plan = gavel.Schedule(snapshot());
  BytesPerSec io = 0;
  for (const auto& [id, alloc] : plan.jobs) {
    if (alloc.running && !std::isinf(alloc.remote_io)) {
      io += alloc.remote_io;
    }
  }
  EXPECT_NEAR(io, MBps(100), MBps(1));
}

TEST_F(SchedTest, GavelImprovesWorstJobOverQuiver) {
  // The qualitative claim of Fig. 4/13: the solver's worst-off job is no
  // worse than under Quiver's benefit-greedy allocation.
  snapshot_.resources.total_cache = TB(1.4);
  snapshot_.resources.remote_io = MBps(100);
  snapshot_.resources.per_job_remote_cap = MBps(50);
  AddJob("ResNet-50", 1, TB(1.36));
  AddJob("ResNet-50", 1, TB(1.36));

  GavelScheduler gavel_silod(nullptr, /*silod_aware=*/true);
  const AllocationPlan plan_s = gavel_silod.Schedule(snapshot());
  const GavelSolution sol = SolveMaxMinFairness(snapshot(), plan_s);
  const BytesPerSec worst_silod = std::min(sol.target.at(0), sol.target.at(1));

  GavelScheduler gavel_quiver(std::make_shared<QuiverStorage>(0.0, 1), /*silod_aware=*/false);
  const AllocationPlan plan_q = gavel_quiver.Schedule(snapshot());
  // Quiver caches one dataset whole; the other job is left with its own
  // 50 MB/s cap.
  BytesPerSec worst_quiver = 1e18;
  for (int i = 0; i < 2; ++i) {
    const auto it = plan_q.dataset_cache.find(jobs_[static_cast<std::size_t>(i)].dataset);
    const Bytes c = it == plan_q.dataset_cache.end() ? 0 : it->second;
    worst_quiver = std::min(
        worst_quiver, SiloDPerfThroughput(jobs_[static_cast<std::size_t>(i)].ideal_io, MBps(50),
                                          c, TB(1.36)));
  }
  EXPECT_GT(worst_silod, worst_quiver * 1.5);
}

// -------------------------------------------------- Baseline storage plans --

TEST_F(SchedTest, AlluxioPlanIsSharedLruWithNoAllocations) {
  AddJob("ResNet-50", 1, GB(143));
  FifoScheduler fifo(std::make_shared<AlluxioStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  EXPECT_EQ(plan.cache_model, CacheModelKind::kSharedLru);
  EXPECT_FALSE(plan.manages_remote_io);
  EXPECT_TRUE(plan.dataset_cache.empty());
}

TEST_F(SchedTest, CoorDlGivesStaticSharesByGpu) {
  AddJob("BERT", 4, TB(20.9));
  AddJob("ResNet-50", 1, TB(1.3));
  FifoScheduler fifo(std::make_shared<CoorDlStorage>());
  const AllocationPlan plan = fifo.Schedule(snapshot());
  EXPECT_EQ(plan.cache_model, CacheModelKind::kPerJobStatic);
  EXPECT_EQ(plan.Get(0).private_cache, TB(1));    // 4/8 of 2 TB.
  EXPECT_EQ(plan.Get(1).private_cache, GB(250));  // 1/8 of 2 TB.
}

TEST_F(SchedTest, QuiverPlanCachesWholeBestDataset) {
  AddJob("ResNet-50", 1, TB(1.3));
  AddJob("EfficientNetB1", 1, TB(1.3));
  FifoScheduler fifo(std::make_shared<QuiverStorage>(0.0, 1));
  const AllocationPlan plan = fifo.Schedule(snapshot());
  EXPECT_EQ(plan.dataset_cache.at(jobs_[0].dataset), TB(1.3));
  EXPECT_EQ(plan.dataset_cache.count(jobs_[1].dataset), 0u);  // 0.7 TB wasted.
}

TEST_F(SchedTest, QuiverRetentionPreventsFlipFlop) {
  AddJob("ResNet-50", 1, TB(1.3));
  AddJob("ResNet-50", 1, TB(1.3));
  auto storage = std::make_shared<QuiverStorage>(0.25, 42);
  FifoScheduler fifo(storage);
  const AllocationPlan first = fifo.Schedule(snapshot());
  const DatasetId winner = first.dataset_cache.begin()->first;
  for (int round = 0; round < 50; ++round) {
    const AllocationPlan plan = fifo.Schedule(snapshot());
    ASSERT_EQ(plan.dataset_cache.size(), 1u);
    EXPECT_EQ(plan.dataset_cache.begin()->first, winner) << "round " << round;
  }
}

// ------------------------------------------------------------- Validation --

TEST_F(SchedTest, ValidateCatchesGpuOverCommit) {
  AddJob("ResNet-50", 8, GB(143));
  AllocationPlan plan;
  plan.jobs[0] = JobAllocation{true, 16, 0, kUnlimitedRate};
  EXPECT_FALSE(plan.Validate(snapshot().resources).ok());
}

TEST_F(SchedTest, ValidateCatchesCacheOverCommit) {
  AllocationPlan plan;
  plan.dataset_cache[0] = TB(3);
  EXPECT_FALSE(plan.Validate(snapshot().resources).ok());
}

// Regression: allocators derive byte quotas from floating-point shares, so a
// plan handing out exactly total_cache can overshoot by a rounding residue.
// Validate must tolerate that (same epsilon as the remote-IO check) while
// still rejecting real over-commit.
TEST_F(SchedTest, ValidateToleratesCacheRoundingResidue) {
  AllocationPlan plan;
  plan.dataset_cache[0] = snapshot().resources.total_cache + 1;  // One byte of residue.
  EXPECT_TRUE(plan.Validate(snapshot().resources).ok());

  plan.dataset_cache[0] = snapshot().resources.total_cache + MB(1);  // Genuine over-commit.
  EXPECT_FALSE(plan.Validate(snapshot().resources).ok());

  // Private (per-job-static) shares count against the same pool.
  AllocationPlan coordl;
  coordl.cache_model = CacheModelKind::kPerJobStatic;
  coordl.jobs[0] = JobAllocation{true, 1, snapshot().resources.total_cache / 2 + 1,
                                 kUnlimitedRate};
  coordl.jobs[1] = JobAllocation{true, 1, snapshot().resources.total_cache / 2 + 1,
                                 kUnlimitedRate};
  EXPECT_TRUE(coordl.Validate(snapshot().resources).ok());  // 2 bytes of residue.
  coordl.jobs[1] = JobAllocation{true, 1, snapshot().resources.total_cache, kUnlimitedRate};
  EXPECT_FALSE(coordl.Validate(snapshot().resources).ok());
}

TEST_F(SchedTest, ValidateCatchesAllocationsToIdleJobs) {
  AllocationPlan plan;
  plan.jobs[0] = JobAllocation{false, 2, 0, kUnlimitedRate};
  EXPECT_FALSE(plan.Validate(snapshot().resources).ok());
}

TEST_F(SchedTest, ValidateAcceptsAllSchedulers) {
  for (int i = 0; i < 12; ++i) {
    AddJob(i % 3 == 0 ? "BERT" : "ResNet-50", 1 + (i % 4), TB(1.3), Hours(2), i * 60.0);
  }
  const std::vector<std::shared_ptr<Scheduler>> schedulers = {
      std::make_shared<FifoScheduler>(std::make_shared<SiloDGreedyStorage>()),
      std::make_shared<FifoScheduler>(std::make_shared<AlluxioStorage>()),
      std::make_shared<FifoScheduler>(std::make_shared<CoorDlStorage>()),
      std::make_shared<FifoScheduler>(std::make_shared<QuiverStorage>()),
      std::make_shared<SjfScheduler>(std::make_shared<SiloDGreedyStorage>(),
                                     SjfScoreMode::kSiloD),
      std::make_shared<SjfScheduler>(std::make_shared<AlluxioStorage>(),
                                     SjfScoreMode::kComputeOnly),
      std::make_shared<GavelScheduler>(nullptr, true),
      std::make_shared<GavelScheduler>(std::make_shared<QuiverStorage>(), false),
  };
  for (const auto& scheduler : schedulers) {
    const AllocationPlan plan = scheduler->Schedule(snapshot());
    EXPECT_TRUE(plan.Validate(snapshot().resources).ok()) << scheduler->name();
  }
}

// --------------------------------------------------- AdmitByOrder backfill --

TEST_F(SchedTest, AdmitByOrderBackfillsPastSkippedLargeJob) {
  AddJob("ResNet-50", 6, GB(143));
  AddJob("ResNet-50", 4, GB(143));  // Skipped: only 2 GPUs free.
  AddJob("ResNet-50", 2, GB(143));  // Backfills behind the skipped job.
  AllocationPlan plan;
  AdmitByOrder(snapshot(), {0, 1, 2}, &plan);
  EXPECT_TRUE(plan.IsRunning(0));
  EXPECT_FALSE(plan.IsRunning(1));
  EXPECT_TRUE(plan.IsRunning(2));
  EXPECT_EQ(plan.GpusUsed(), 8);
}

TEST_F(SchedTest, AdmitByOrderChargesRunningJobsBeforeTheOrder) {
  AddJob("ResNet-50", 4, GB(143));
  AddJob("ResNet-50", 6, GB(143));  // Skipped: the running job holds 4 GPUs.
  AddJob("ResNet-50", 4, GB(143));  // Fits exactly in the remainder.
  snapshot().jobs[0].running = true;
  AllocationPlan plan;
  AdmitByOrder(snapshot(), {1, 2, 0}, &plan);  // Order puts the big job first.
  EXPECT_TRUE(plan.IsRunning(0));
  EXPECT_FALSE(plan.IsRunning(1));
  EXPECT_TRUE(plan.IsRunning(2));
  EXPECT_EQ(plan.GpusUsed(), 8);
}

TEST_F(SchedTest, AdmitByOrderPreemptiveSuspendsRunningJobOutsideAdmittedPrefix) {
  AddJob("ResNet-50", 4, GB(143));
  AddJob("ResNet-50", 6, GB(143));
  AddJob("ResNet-50", 2, GB(143));
  snapshot().jobs[0].running = true;  // Running, but last in the new order.
  AllocationPlan plan;
  AdmitByOrderPreemptive(snapshot(), {1, 2, 0}, &plan);
  EXPECT_TRUE(plan.IsRunning(1));
  EXPECT_TRUE(plan.IsRunning(2));
  EXPECT_FALSE(plan.IsRunning(0));  // Suspended: no room after the prefix.
  EXPECT_EQ(plan.GpusUsed(), 8);
}

// ------------------------------------------------------------ ZoneSpreader --

TEST(ZoneSpread, SharesSumToQuotaAndRespectLossBound) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse("rack0=0-3;loss-bound=0.25");
  ASSERT_TRUE(parsed.ok());
  const ClusterTopology topology = parsed->Cover(8);  // rack0 + 4 singletons.
  ZoneSpreader spreader(topology, GB(80), 8);

  const std::vector<Bytes> shares = spreader.Spread(GB(40));
  ASSERT_EQ(shares.size(), 5u);
  Bytes sum = 0;
  for (const Bytes share : shares) {
    EXPECT_GE(share, 0);
    sum += share;
  }
  EXPECT_EQ(sum, GB(40));
  // Bound satisfiable here (5 zones x 0.25 > 1): no zone exceeds it.
  EXPECT_LE(ZoneSpreader::WorstCaseLoss(shares), GB(10) + 1);
}

TEST(ZoneSpread, CapacityBindsAndLossBoundRelaxesGracefully) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse("rack0=0-3;loss-bound=0.25");
  ASSERT_TRUE(parsed.ok());
  const ClusterTopology topology = parsed->Cover(8);
  ZoneSpreader spreader(topology, GB(80), 8);

  // The whole pool: the bound cannot absorb it, capacity still must.
  const std::vector<Bytes> shares = spreader.Spread(GB(80));
  Bytes sum = 0;
  for (std::size_t z = 0; z < shares.size(); ++z) {
    const Bytes capacity = GB(80) * topology.zones()[z].size() / 8;
    EXPECT_LE(shares[z], capacity + 1) << "zone " << topology.zones()[z].name;
    sum += shares[z];
  }
  EXPECT_EQ(sum, GB(80));
  EXPECT_GT(ZoneSpreader::WorstCaseLoss(shares), GB(20));  // Bound relaxed.
}

TEST(ZoneSpread, StatefulAcrossDatasetsNeverOverfillsAZone) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse("rack0=0-3;loss-bound=0.5");
  ASSERT_TRUE(parsed.ok());
  const ClusterTopology topology = parsed->Cover(8);
  ZoneSpreader spreader(topology, GB(80), 8);

  const std::vector<Bytes> first = spreader.Spread(GB(40));
  const std::vector<Bytes> second = spreader.Spread(GB(40));
  for (std::size_t z = 0; z < first.size(); ++z) {
    const Bytes capacity = GB(80) * topology.zones()[z].size() / 8;
    EXPECT_LE(first[z] + second[z], capacity + 1) << "zone " << topology.zones()[z].name;
  }
}

TEST(ZoneSpread, WorstCaseZoneFractionTracksLargestExposure) {
  const Result<ClusterTopology> bounded = ClusterTopology::Parse("rack0=0-3;loss-bound=0.25");
  ASSERT_TRUE(bounded.ok());
  EXPECT_DOUBLE_EQ(WorstCaseZoneFraction(bounded->Cover(8), 8), 0.25);

  const Result<ClusterTopology> loose = ClusterTopology::Parse("rack0=0-3;loss-bound=0.8");
  ASSERT_TRUE(loose.ok());
  // The rack holds half the servers: capacity caps the exposure below 0.8.
  EXPECT_DOUBLE_EQ(WorstCaseZoneFraction(loose->Cover(8), 8), 0.5);

  EXPECT_DOUBLE_EQ(WorstCaseZoneFraction(ClusterTopology(), 8), 1.0);
}

}  // namespace
}  // namespace silod
