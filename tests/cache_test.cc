// Unit and property tests for src/cache: item caches, analytic hit-ratio
// models (validated against the item-level simulations), cache manager,
// Quiver and CoorDL allocation models.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "src/cache/analytic.h"
#include "src/cache/cache_manager.h"
#include "src/cache/coordl.h"
#include "src/cache/distributed_cache.h"
#include "src/cache/item_cache.h"
#include "src/cache/quiver.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/estimator/profiler.h"
#include "src/workload/model_zoo.h"

namespace silod {
namespace {

ItemKey Key(std::int64_t block) { return ItemKey{0, block}; }

// ---------------------------------------------------------- UniformItemCache

TEST(UniformItemCache, AdmitsUntilFullThenNever) {
  UniformItemCache cache(300);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(1), 100);
  cache.Admit(Key(2), 100);
  cache.Admit(Key(3), 100);  // No room; dropped.
  EXPECT_EQ(cache.item_count(), 3u);
  EXPECT_EQ(cache.used_bytes(), 300);
  EXPECT_TRUE(cache.Contains(Key(0)));
  EXPECT_FALSE(cache.Contains(Key(3)));
}

TEST(UniformItemCache, NeverEvictsOnAccess) {
  UniformItemCache cache(200);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(1), 100);
  for (int i = 0; i < 100; ++i) {
    cache.Access(Key(5));  // Misses do not perturb residency.
  }
  EXPECT_TRUE(cache.Contains(Key(0)));
  EXPECT_TRUE(cache.Contains(Key(1)));
}

TEST(UniformItemCache, ShrinkEvictsRandomly) {
  UniformItemCache cache(1000 * 100);
  for (std::int64_t i = 0; i < 1000; ++i) {
    cache.Admit(Key(i), 100);
  }
  Rng rng(1);
  cache.SetCapacity(500 * 100, &rng);
  EXPECT_EQ(cache.item_count(), 500u);
  EXPECT_LE(cache.used_bytes(), 500 * 100);
  // Survivors should span the key range (random, not prefix, eviction).
  int low = 0;
  int high = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    if (cache.Contains(Key(i))) {
      (i < 500 ? low : high) += 1;
    }
  }
  EXPECT_GT(low, 150);
  EXPECT_GT(high, 150);
}

TEST(UniformItemCache, DuplicateAdmitIsNoop) {
  UniformItemCache cache(300);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(0), 100);
  EXPECT_EQ(cache.used_bytes(), 100);
}

// ------------------------------------------------------------- LruItemCache

TEST(LruItemCache, EvictsLeastRecentlyUsed) {
  LruItemCache cache(300);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(1), 100);
  cache.Admit(Key(2), 100);
  cache.Access(Key(0));      // 0 is now MRU; 1 is LRU.
  cache.Admit(Key(3), 100);  // Evicts 1.
  EXPECT_TRUE(cache.Contains(Key(0)));
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_TRUE(cache.Contains(Key(2)));
  EXPECT_TRUE(cache.Contains(Key(3)));
}

TEST(LruItemCache, OversizeItemRejected) {
  LruItemCache cache(100);
  cache.Admit(Key(0), 200);
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(LruItemCache, ShrinkEvictsFromTail) {
  LruItemCache cache(400);
  for (std::int64_t i = 0; i < 4; ++i) {
    cache.Admit(Key(i), 100);
  }
  cache.SetCapacity(200, nullptr);
  EXPECT_FALSE(cache.Contains(Key(0)));
  EXPECT_FALSE(cache.Contains(Key(1)));
  EXPECT_TRUE(cache.Contains(Key(2)));
  EXPECT_TRUE(cache.Contains(Key(3)));
}

// ------------------------------------------------------------- LfuItemCache

TEST(LfuItemCache, EvictsLeastFrequentlyUsed) {
  LfuItemCache cache(300);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(1), 100);
  cache.Admit(Key(2), 100);
  cache.Access(Key(0));
  cache.Access(Key(0));
  cache.Access(Key(1));
  cache.Admit(Key(3), 100);  // Evicts 2 (freq 1).
  EXPECT_TRUE(cache.Contains(Key(0)));
  EXPECT_TRUE(cache.Contains(Key(1)));
  EXPECT_FALSE(cache.Contains(Key(2)));
  EXPECT_TRUE(cache.Contains(Key(3)));
}

TEST(LfuItemCache, TieBreakByRecency) {
  LfuItemCache cache(200);
  cache.Admit(Key(0), 100);
  cache.Admit(Key(1), 100);
  // Both freq 1; 0 was inserted first, so 0 is the LRU of the class.
  cache.Admit(Key(2), 100);
  EXPECT_FALSE(cache.Contains(Key(0)));
  EXPECT_TRUE(cache.Contains(Key(1)));
}

// --------------------------------------------------- Analytic vs simulation

// Simulates shuffled epoch scans against an item cache and returns the
// steady-state hit ratio (epochs after the first).
template <typename Cache>
double SimulateScanHitRatio(Cache& cache, std::int64_t num_items, int epochs,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> order(static_cast<std::size_t>(num_items));
  std::iota(order.begin(), order.end(), 0);
  std::int64_t hits = 0;
  std::int64_t accesses = 0;
  for (int e = 0; e < epochs; ++e) {
    rng.Shuffle(order);
    for (std::int64_t item : order) {
      const bool hit = cache.Access(Key(item));
      if (!hit) {
        cache.Admit(Key(item), 1);
      }
      if (e > 0) {  // Skip the cold first epoch.
        hits += hit ? 1 : 0;
        ++accesses;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(accesses);
}

TEST(Analytic, UniformHitRatioBasics) {
  EXPECT_DOUBLE_EQ(UniformHitRatio(GB(50), GB(100)), 0.5);
  EXPECT_DOUBLE_EQ(UniformHitRatio(GB(200), GB(100)), 1.0);
  EXPECT_DOUBLE_EQ(UniformHitRatio(0, GB(100)), 0.0);
}

TEST(Analytic, LruShuffledScanFormula) {
  EXPECT_DOUBLE_EQ(LruShuffledScanHitRatio(GB(100), GB(100)), 1.0);
  // 1 - t + t ln t at t = 0.5.
  EXPECT_NEAR(LruShuffledScanHitRatio(GB(50), GB(100)), 0.5 + 0.5 * std::log(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(LruShuffledScanHitRatio(0, GB(100)), 0.0);
  // Small-cache asymptotics: ~ (c/d)^2 / 2.
  EXPECT_NEAR(LruShuffledScanHitRatio(GB(1), GB(100)), 0.5 * 0.01 * 0.01, 2e-5);
}

TEST(Analytic, LruScanHitMonotoneInFraction) {
  double prev = -1;
  for (double f = 0.0; f <= 1.0; f += 0.01) {
    const double h = LruScanHitFromFraction(f);
    EXPECT_GE(h, prev);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
    prev = h;
  }
}

TEST(Analytic, LruAlwaysBelowUniformWhenPartial) {
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Bytes c = static_cast<Bytes>(frac * 1e9);
    EXPECT_LT(LruShuffledScanHitRatio(c, GB(1)), UniformHitRatio(c, GB(1)));
  }
}

// Property sweep: the closed-form LRU thrashing model matches an item-level
// LRU simulation across cache fractions.
class LruScanModelTest : public ::testing::TestWithParam<double> {};

TEST_P(LruScanModelTest, SimulationMatchesClosedForm) {
  const double frac = GetParam();
  const std::int64_t n = 2000;
  LruItemCache cache(static_cast<Bytes>(frac * static_cast<double>(n)));
  const double simulated = SimulateScanHitRatio(cache, n, 9, 1234);
  const double predicted = LruScanHitFromFraction(frac);
  EXPECT_NEAR(simulated, predicted, 0.03) << "cache fraction " << frac;
}

INSTANTIATE_TEST_SUITE_P(CacheFractions, LruScanModelTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

class UniformScanModelTest : public ::testing::TestWithParam<double> {};

TEST_P(UniformScanModelTest, SimulationMatchesClosedForm) {
  const double frac = GetParam();
  const std::int64_t n = 2000;
  UniformItemCache cache(static_cast<Bytes>(frac * static_cast<double>(n)));
  const double simulated = SimulateScanHitRatio(cache, n, 6, 99);
  EXPECT_NEAR(simulated, frac, 0.02) << "cache fraction " << frac;
}

INSTANTIATE_TEST_SUITE_P(CacheFractions, UniformScanModelTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(Analytic, SharedLruOccupancyConservation) {
  const std::vector<BytesPerSec> rates{MBps(114), MBps(10)};
  const std::vector<Bytes> sizes{GB(143), TB(1.46)};
  const SharedLruResult result = SharedLruModel(rates, sizes, GB(200));
  Bytes total = 0;
  for (Bytes b : result.resident_bytes) {
    total += b;
  }
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(GB(200)),
              static_cast<double>(GB(1)));
}

TEST(Analytic, SharedLruFavorsFastJobs) {
  // The §7.1.2 observation: fast jobs' items recirculate quicker and displace
  // slow jobs' items.
  const std::vector<BytesPerSec> rates{MBps(114), MBps(2)};
  const std::vector<Bytes> sizes{GB(500), GB(500)};
  const SharedLruResult result = SharedLruModel(rates, sizes, GB(200));
  EXPECT_GT(result.resident_bytes[0], 10 * result.resident_bytes[1]);
  EXPECT_GT(result.hit_ratio[0], result.hit_ratio[1]);
}

TEST(Analytic, SharedLruEverythingFits) {
  const SharedLruResult result =
      SharedLruModel({MBps(10), MBps(20)}, {GB(10), GB(20)}, GB(100));
  EXPECT_DOUBLE_EQ(result.hit_ratio[0], 1.0);
  EXPECT_DOUBLE_EQ(result.hit_ratio[1], 1.0);
}

TEST(Analytic, SharedLruSingleJobReducesToScanFormula) {
  const Bytes d = GB(100);
  for (double frac : {0.2, 0.5, 0.8}) {
    const Bytes c = static_cast<Bytes>(frac * static_cast<double>(d));
    const SharedLruResult result = SharedLruModel({MBps(100)}, {d}, c);
    EXPECT_NEAR(result.hit_ratio[0], LruShuffledScanHitRatio(c, d), 1e-6);
  }
}

// The shared-pool fluid model against a real two-stream LRU simulation: two
// jobs scanning different datasets at a 3:1 rate ratio through one pool.
TEST(Analytic, SharedLruModelMatchesTwoStreamSimulation) {
  const std::int64_t n_fast = 1500;
  const std::int64_t n_slow = 1500;
  const Bytes capacity = 1200;
  LruItemCache cache(capacity);
  Rng rng(4242);

  std::vector<std::int64_t> fast_order(static_cast<std::size_t>(n_fast));
  std::vector<std::int64_t> slow_order(static_cast<std::size_t>(n_slow));
  std::iota(fast_order.begin(), fast_order.end(), 0);
  std::iota(slow_order.begin(), slow_order.end(), 0);
  rng.Shuffle(fast_order);
  rng.Shuffle(slow_order);
  std::size_t fast_pos = 0;
  std::size_t slow_pos = 0;
  std::int64_t fast_hits = 0;
  std::int64_t fast_total = 0;
  std::int64_t slow_hits = 0;
  std::int64_t slow_total = 0;

  auto access = [&](DatasetId dataset, std::int64_t item) {
    const ItemKey key{dataset, item};
    if (cache.Access(key)) {
      return true;
    }
    cache.Admit(key, 1);
    return false;
  };
  // Interleave at a 3:1 rate; measure after a warm-up of 3 fast epochs.
  const std::int64_t steps = 40 * n_fast;
  for (std::int64_t step = 0; step < steps; ++step) {
    const bool warm = step > 9 * n_fast;
    for (int k = 0; k < 3; ++k) {
      if (fast_pos == fast_order.size()) {
        rng.Shuffle(fast_order);
        fast_pos = 0;
      }
      const bool hit = access(0, fast_order[fast_pos++]);
      if (warm) {
        fast_hits += hit;
        ++fast_total;
      }
    }
    if (slow_pos == slow_order.size()) {
      rng.Shuffle(slow_order);
      slow_pos = 0;
    }
    const bool hit = access(1, slow_order[slow_pos++]);
    if (warm) {
      slow_hits += hit;
      ++slow_total;
    }
  }

  const SharedLruResult model = SharedLruModel({3.0, 1.0}, {n_fast, n_slow}, capacity);
  const double fast_sim = static_cast<double>(fast_hits) / static_cast<double>(fast_total);
  const double slow_sim = static_cast<double>(slow_hits) / static_cast<double>(slow_total);
  EXPECT_NEAR(fast_sim, model.hit_ratio[0], 0.05);
  EXPECT_NEAR(slow_sim, model.hit_ratio[1], 0.05);
  // The qualitative §7.1.2 fact: the fast job dominates the pool.
  EXPECT_GT(fast_sim, slow_sim);
  EXPECT_GT(model.resident_bytes[0], model.resident_bytes[1]);
}

// ------------------------------------------------------------ CacheManager

class CacheManagerTest : public ::testing::Test {
 protected:
  CacheManagerTest() : manager_(GB(10)) {
    dataset_ = MakeDataset(0, "d0", GB(4), MB(100));   // 40 blocks.
    other_ = MakeDataset(1, "d1", GB(8), MB(100));     // 80 blocks.
  }
  CacheManager manager_;
  Dataset dataset_;
  Dataset other_;
};

TEST_F(CacheManagerTest, AllocationConservation) {
  EXPECT_TRUE(manager_.AllocateCacheSize(dataset_, GB(4)).ok());
  EXPECT_TRUE(manager_.AllocateCacheSize(other_, GB(6)).ok());
  // Pool is full: growing either fails.
  EXPECT_FALSE(manager_.AllocateCacheSize(other_, GB(7)).ok());
  // Shrinking one frees room for the other.
  EXPECT_TRUE(manager_.AllocateCacheSize(dataset_, GB(3)).ok());
  EXPECT_TRUE(manager_.AllocateCacheSize(other_, GB(7)).ok());
  EXPECT_EQ(manager_.total_allocated(), GB(10));
}

TEST_F(CacheManagerTest, UniformAdmissionUpToQuota) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(2)).ok());
  for (std::int64_t b = 0; b < dataset_.num_blocks; ++b) {
    EXPECT_FALSE(manager_.AccessBlock(dataset_, b));  // Cold.
  }
  EXPECT_EQ(manager_.CachedBytes(dataset_.id), GB(2));  // 20 of 40 blocks.
  int hits = 0;
  for (std::int64_t b = 0; b < dataset_.num_blocks; ++b) {
    hits += manager_.AccessBlock(dataset_, b) ? 1 : 0;
  }
  EXPECT_EQ(hits, 20);
}

TEST_F(CacheManagerTest, ShrinkEvictsToQuota) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(4)).ok());
  for (std::int64_t b = 0; b < dataset_.num_blocks; ++b) {
    manager_.AccessBlock(dataset_, b);
  }
  EXPECT_EQ(manager_.CachedBytes(dataset_.id), GB(4));
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(1)).ok());
  EXPECT_EQ(manager_.CachedBytes(dataset_.id), GB(1));
}

TEST_F(CacheManagerTest, DelayedEffectiveness) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(4)).ok());
  manager_.RegisterJob(7, dataset_);
  manager_.StartJobEpoch(7);
  // The job fetches (and caches) 10 blocks during its epoch.
  for (std::int64_t b = 0; b < 10; ++b) {
    manager_.MarkJobAccess(7, b);
    manager_.AccessBlock(dataset_, b);
  }
  // Items cached during this epoch are not effective for it.
  EXPECT_EQ(manager_.EffectiveBytes(7), 0);
  EXPECT_EQ(manager_.RemainingBlocks(7), 30);
  // Next epoch: everything cached so far becomes effective.
  manager_.StartJobEpoch(7);
  EXPECT_EQ(manager_.EffectiveBytes(7), 10 * MB(100));
  EXPECT_EQ(manager_.RemainingBlocks(7), 40);
}

TEST_F(CacheManagerTest, SharingJobSeesPriorJobsBlocksAsEffective) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(4)).ok());
  manager_.RegisterJob(1, dataset_);
  manager_.StartJobEpoch(1);
  for (std::int64_t b = 0; b < 20; ++b) {
    manager_.AccessBlock(dataset_, b);
  }
  // Job 2 registers afterwards: the 20 blocks predate its first epoch.
  manager_.RegisterJob(2, dataset_);
  manager_.StartJobEpoch(2);
  EXPECT_EQ(manager_.EffectiveBytes(2), 20 * MB(100));
  EXPECT_EQ(manager_.EffectiveBytes(1), 0);
}

TEST_F(CacheManagerTest, ReleaseDatasetFreesQuota) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(10)).ok());
  manager_.ReleaseDataset(dataset_.id);
  EXPECT_EQ(manager_.total_allocated(), 0);
  EXPECT_TRUE(manager_.AllocateCacheSize(other_, GB(8)).ok());
}

// ----------------------------------------------------------------- Quiver --

TEST(Quiver, RanksByBenefitAndCachesWholeDatasets) {
  std::vector<QuiverCandidate> candidates{
      {0, GB(143), 0.8}, {1, TB(1.3), 0.09}, {2, TB(20.9), 9.5e-5}};
  const auto alloc = QuiverAllocate(candidates, TB(1.5));
  EXPECT_EQ(alloc.at(0), GB(143));   // Best benefit, fits.
  EXPECT_EQ(alloc.at(1), TB(1.3));   // Next, fits in the remainder.
  EXPECT_EQ(alloc.count(2), 0u);     // 20.9 TB never fits.
}

TEST(Quiver, SkipsDatasetThatDoesNotFitWhole) {
  // §7.1.1: with 2 TB, Quiver caches one 1.3 TB dataset and wastes the
  // remaining 0.7 TB rather than partially caching the next one.
  std::vector<QuiverCandidate> candidates{{0, TB(1.3), 0.5}, {1, TB(1.3), 0.4}};
  const auto alloc = QuiverAllocate(candidates, TB(2.0));
  EXPECT_EQ(alloc.at(0), TB(1.3));
  EXPECT_EQ(alloc.count(1), 0u);
  Bytes total = 0;
  for (const auto& [id, b] : alloc) {
    total += b;
  }
  EXPECT_EQ(total, TB(1.3));  // 0.7 TB wasted.
}

TEST(Quiver, NoisyRankingCanMisorder) {
  // With close benefits and noisy measurements the ranking can invert — the
  // instability the paper attributes Quiver's wrong evictions to.
  OnlineBenefitProfiler profiler(0.25, 3);
  int inversions = 0;
  for (int i = 0; i < 1000; ++i) {
    const double a = profiler.MeasureBenefit(0.50);
    const double b = profiler.MeasureBenefit(0.45);
    inversions += b > a ? 1 : 0;
  }
  EXPECT_GT(inversions, 100);
  EXPECT_LT(inversions, 900);
}

// ----------------------------------------------------------------- CoorDL --

TEST(CoorDl, StaticPartitionByGpuShare) {
  const ModelZoo zoo;
  DatasetCatalog catalog;
  const DatasetId web = catalog.Add("WebSearch", TB(20.9), MB(64));
  const DatasetId img = catalog.Add("img", TB(1.3), MB(64));
  const JobSpec bert = MakeJob(0, zoo, "BERT", 4, web, Hours(1), 0);
  const JobSpec resnet = MakeJob(1, zoo, "ResNet-50", 1, img, Hours(1), 0);
  // §7.1.1: in the 2 TB / 8 GPU micro-benchmark CoorDL hands the 4-GPU BERT
  // job half the pool.
  EXPECT_EQ(CoorDlStaticCache(bert, TB(2), 8), TB(1));
  EXPECT_EQ(CoorDlStaticCache(resnet, TB(2), 8), GB(250));
}


// ------------------------------------------------------ DistributedCache --

TEST(DistributedCache, HitMissSemanticsMatchAggregate) {
  const Dataset dataset = MakeDataset(0, "d", GB(4), MB(100));  // 40 blocks.
  DistributedCache distributed(8, GB(1));
  CacheManager aggregate(GB(8));
  ASSERT_TRUE(distributed.AllocateCacheSize(dataset, GB(4)).ok());
  ASSERT_TRUE(aggregate.AllocateCacheSize(dataset, GB(4)).ok());
  // With ample per-server room both behave identically: cold pass all
  // misses, warm pass all hits.
  for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
    EXPECT_EQ(distributed.AccessBlock(dataset, b), aggregate.AccessBlock(dataset, b));
  }
  for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
    EXPECT_TRUE(distributed.AccessBlock(dataset, b));
  }
  EXPECT_EQ(distributed.CachedBytes(dataset.id), GB(4));
  EXPECT_DOUBLE_EQ(distributed.ServerRejectRate(), 0.0);
}

TEST(DistributedCache, SpreadsLoadAcrossServers) {
  const Dataset dataset = MakeDataset(0, "d", GB(32), MB(16));  // 2000 blocks.
  DistributedCache cache(8, GB(8));
  ASSERT_TRUE(cache.AllocateCacheSize(dataset, GB(32)).ok());
  for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
    cache.AccessBlock(dataset, b);
  }
  const double expected = static_cast<double>(GB(32)) / 8.0;
  for (const Bytes used : cache.server_used()) {
    EXPECT_NEAR(static_cast<double>(used), expected, 0.35 * expected);
  }
}

TEST(DistributedCache, FullServerRejectsButOthersAdmit) {
  // Per-server capacity below the fair share: the fullest servers start
  // rejecting while the pool still has aggregate room — the imbalance cost
  // of per-server enforcement.
  const Dataset dataset = MakeDataset(0, "d", GB(32), MB(16));
  DistributedCache cache(8, GB(3));  // 24 GB pool for a 32 GB dataset.
  ASSERT_TRUE(cache.AllocateCacheSize(dataset, GB(24)).ok());
  for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
    cache.AccessBlock(dataset, b);
  }
  EXPECT_GT(cache.ServerRejectRate(), 0.0);
  // Despite rejections, occupancy lands within a few percent of the pool.
  EXPECT_GT(cache.CachedBytes(dataset.id), static_cast<Bytes>(0.85 * 24e9));
  for (const Bytes used : cache.server_used()) {
    EXPECT_LE(used, GB(3));
  }
}

TEST(DistributedCache, ShrinkRebuildsServerUsage) {
  const Dataset dataset = MakeDataset(0, "d", GB(8), MB(16));
  DistributedCache cache(4, GB(2));
  ASSERT_TRUE(cache.AllocateCacheSize(dataset, GB(8)).ok());
  for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
    cache.AccessBlock(dataset, b);
  }
  ASSERT_TRUE(cache.AllocateCacheSize(dataset, GB(2)).ok());
  Bytes total = 0;
  for (const Bytes used : cache.server_used()) {
    total += used;
  }
  EXPECT_EQ(total, cache.CachedBytes(dataset.id));
  EXPECT_LE(total, GB(2));
}

TEST(DistributedCache, ImbalanceOverheadIsSmallAtScale) {
  // The quantitative footing for modelling the pool as one capacity: with
  // uniform spread, >=95% of nominal capacity is usable before per-server
  // rejections bite.
  const Dataset dataset = MakeDataset(0, "d", GB(64), MB(16));  // 4000 blocks.
  DistributedCache cache(16, GB(4));  // Pool exactly = dataset size.
  ASSERT_TRUE(cache.AllocateCacheSize(dataset, GB(64)).ok());
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (std::int64_t b = 0; b < dataset.num_blocks; ++b) {
      cache.AccessBlock(dataset, b);
    }
  }
  // Measured ~95% with 128 virtual nodes; assert a safe floor.
  EXPECT_GT(static_cast<double>(cache.CachedBytes(dataset.id)),
            0.93 * static_cast<double>(GB(64)));
}

}  // namespace
}  // namespace silod
