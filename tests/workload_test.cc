// Unit tests for src/workload: datasets, model zoo, jobs, traces, curriculum.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/units.h"
#include "src/estimator/ioperf.h"
#include "src/workload/curriculum.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"
#include "src/workload/model_zoo.h"
#include "src/workload/trace_gen.h"

namespace silod {
namespace {

// ---------------------------------------------------------------- Dataset --

TEST(Dataset, BlockMathExactMultiple) {
  const Dataset d = MakeDataset(0, "x", MB(640), MB(64));
  EXPECT_EQ(d.num_blocks, 10);
  EXPECT_EQ(d.BlockBytes(0), MB(64));
  EXPECT_EQ(d.BlockBytes(9), MB(64));
}

TEST(Dataset, ShortFinalBlock) {
  const Dataset d = MakeDataset(0, "x", MB(650), MB(64));
  EXPECT_EQ(d.num_blocks, 11);
  EXPECT_EQ(d.BlockBytes(10), MB(10));
  Bytes total = 0;
  for (std::int64_t b = 0; b < d.num_blocks; ++b) {
    total += d.BlockBytes(b);
  }
  EXPECT_EQ(total, d.size);
}

TEST(DatasetCatalog, DenseIds) {
  DatasetCatalog catalog;
  const DatasetId a = catalog.Add("a", GB(1), MB(64));
  const DatasetId b = catalog.Add("b", GB(2), MB(64));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(catalog.Get(b).size, GB(2));
  EXPECT_EQ(catalog.size(), 2u);
}

// --------------------------------------------------------------- ModelZoo --

TEST(ModelZoo, ProfiledValues) {
  const ModelZoo zoo;
  EXPECT_DOUBLE_EQ(ToMBps(zoo.GetModel("ResNet-50").ideal_io_per_gpu), 114.0);
  EXPECT_DOUBLE_EQ(ToMBps(zoo.GetModel("ResNet-152").ideal_io_per_gpu), 43.0);
  EXPECT_DOUBLE_EQ(ToMBps(zoo.GetModel("EfficientNetB1").ideal_io_per_gpu), 69.0);
  EXPECT_DOUBLE_EQ(ToMBps(zoo.GetModel("VLAD").ideal_io_per_gpu), 10.0);
  EXPECT_DOUBLE_EQ(ToMBps(zoo.GetModel("BERT").ideal_io_per_gpu), 2.0);
}

TEST(ModelZoo, Table4DatasetSizes) {
  const ModelZoo zoo;
  EXPECT_EQ(zoo.GetDataset("ImageNet-22k").size, TB(1.36));
  EXPECT_EQ(zoo.GetDataset("OpenImages").size, GB(660));
  EXPECT_EQ(zoo.GetDataset("ImageNet-1k").size, GB(143));
  EXPECT_EQ(zoo.GetDataset("Youtube-8M").size, TB(1.46));
  EXPECT_EQ(zoo.GetDataset("WebSearch").size, TB(20.9));
}

TEST(ModelZoo, EightGpuScalingMatchesTable2) {
  // Table 2: 8xV100 ResNet-50 reads 888 MB/s = 7.79x of one V100's 114 MB/s.
  const ModelZoo zoo;
  const BytesPerSec io8 = ModelZoo::ScaledIdealIo(zoo.GetModel("ResNet-50"), 8);
  EXPECT_NEAR(ToMBps(io8), 888.0, 5.0);
}

TEST(ModelZoo, GpuSpeedScaleMultiplies) {
  const ModelZoo zoo;
  const auto& m = zoo.GetModel("ResNet-50");
  EXPECT_DOUBLE_EQ(ModelZoo::ScaledIdealIo(m, 1, 4.0), 4.0 * ModelZoo::ScaledIdealIo(m, 1, 1.0));
}

TEST(ModelZoo, Figure6JobsAreOrderedByCacheEfficiency) {
  const ModelZoo zoo;
  const auto jobs = zoo.Figure6Jobs();
  ASSERT_EQ(jobs.size(), 11u);
  double prev = 1e18;
  for (const auto& j : jobs) {
    const double eff = CacheEfficiencyMBpsPerGB(j.model.ideal_io_per_gpu, j.dataset.size);
    EXPECT_LE(eff, prev + 1e-12) << j.model.model << "/" << j.dataset.name;
    prev = eff;
  }
  // The paper's extremes: 0.8 MB/s/GB for ResNet-50/ImageNet-1k, 9.5e-5 for
  // BERT/WebSearch.
  EXPECT_NEAR(CacheEfficiencyMBpsPerGB(jobs.front().model.ideal_io_per_gpu,
                                       jobs.front().dataset.size),
              0.8, 0.01);
  EXPECT_NEAR(CacheEfficiencyMBpsPerGB(jobs.back().model.ideal_io_per_gpu,
                                       jobs.back().dataset.size),
              9.5e-5, 5e-6);
}

// -------------------------------------------------------------------- Job --

TEST(Job, MakeJobDerivesWork) {
  const ModelZoo zoo;
  DatasetCatalog catalog;
  const DatasetId d = catalog.Add("ImageNet-1k", GB(143), MB(64));
  const JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, Hours(1), Minutes(5));
  EXPECT_EQ(job.num_gpus, 1);
  EXPECT_DOUBLE_EQ(ToMBps(job.ideal_io), 114.0);
  EXPECT_NEAR(job.IdealDuration(), Hours(1), 1e-6);
  EXPECT_DOUBLE_EQ(job.submit_time, Minutes(5));
  EXPECT_NEAR(job.NumEpochs(catalog.Get(d)), 114.0 * 3600 / 143000, 1e-3);
}

TEST(Job, RemoteIoLimitsMatchTable5) {
  EXPECT_DOUBLE_EQ(ToGbps(RemoteIoLimitForCluster(8)), 1.6);
  EXPECT_DOUBLE_EQ(ToGbps(RemoteIoLimitForCluster(96)), 8.0);
  EXPECT_DOUBLE_EQ(ToGbps(RemoteIoLimitForCluster(400)), 32.0);
  EXPECT_DOUBLE_EQ(ToGbps(RemoteIoLimitForCluster(1900)), 120.0);
}

// -------------------------------------------------------------- TraceGen --

TEST(TraceGen, Deterministic) {
  TraceOptions options;
  options.num_jobs = 50;
  options.seed = 99;
  const Trace a = TraceGenerator(options).Generate();
  const Trace b = TraceGenerator(options).Generate();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
    EXPECT_EQ(a.jobs[i].num_gpus, b.jobs[i].num_gpus);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].total_bytes, b.jobs[i].total_bytes);
  }
}

TEST(TraceGen, ArrivalsAreOrderedAndDurationsBounded) {
  TraceOptions options;
  options.num_jobs = 200;
  options.seed = 5;
  const Trace trace = TraceGenerator(options).Generate();
  Seconds prev = 0;
  for (const JobSpec& j : trace.jobs) {
    EXPECT_GE(j.submit_time, prev);
    prev = j.submit_time;
    EXPECT_GE(j.IdealDuration(), options.min_duration - 1.0);
    EXPECT_LE(j.IdealDuration(), options.max_duration + 1.0);
  }
}

TEST(TraceGen, UniqueDatasetsWithoutSharing) {
  TraceOptions options;
  options.num_jobs = 40;
  options.share_fraction = 0.0;
  const Trace trace = TraceGenerator(options).Generate();
  std::set<DatasetId> datasets;
  for (const JobSpec& j : trace.jobs) {
    EXPECT_TRUE(datasets.insert(j.dataset).second) << "dataset reused without sharing";
  }
}

TEST(TraceGen, SharingReusesDatasets) {
  TraceOptions options;
  options.num_jobs = 200;
  options.share_fraction = 1.0;
  options.seed = 3;
  const Trace trace = TraceGenerator(options).Generate();
  std::set<DatasetId> datasets;
  for (const JobSpec& j : trace.jobs) {
    datasets.insert(j.dataset);
  }
  // With full sharing, at most one instance per named dataset.
  EXPECT_LE(datasets.size(), 5u);
}

TEST(TraceGen, GpuSpeedScaleRaisesIdealIo) {
  TraceOptions slow;
  slow.num_jobs = 20;
  slow.seed = 7;
  TraceOptions fast = slow;
  fast.gpu_speed_scale = 4.0;
  const Trace a = TraceGenerator(slow).Generate();
  const Trace b = TraceGenerator(fast).Generate();
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_NEAR(b.jobs[i].ideal_io / a.jobs[i].ideal_io, 4.0, 1e-9);
  }
}

TEST(TraceGen, MicrobenchmarkTraceMatchesPaper) {
  const Trace trace = MakeMicrobenchmarkTrace();
  ASSERT_EQ(trace.jobs.size(), 5u);
  EXPECT_EQ(trace.jobs[0].model, "ResNet-50");
  EXPECT_EQ(trace.jobs[4].model, "BERT");
  EXPECT_EQ(trace.jobs[4].num_gpus, 4);
  EXPECT_EQ(trace.TotalGpuDemand(), 8);
  // 13 epochs of 1.3 TB at 114 MB/s ~ 2470 min; the paper runs ~3,500 min
  // wall-clock including the IO-bound start.
  EXPECT_NEAR(trace.jobs[0].NumEpochs(trace.catalog.Get(trace.jobs[0].dataset)), 13.0, 0.01);
  EXPECT_NEAR(trace.jobs[4].NumEpochs(trace.catalog.Get(trace.jobs[4].dataset)), 0.07, 0.001);
}

// ------------------------------------------------------------- Curriculum --

TEST(Curriculum, PacingGrowsMonotonically) {
  CurriculumParams params;
  params.starting_percent = 0.04;
  params.alpha = 1.9;
  params.step = 50000;
  const ExponentialPacing pacing(params, 1000);
  std::int64_t prev = 0;
  for (std::int64_t i = 0; i < 500000; i += 10000) {
    const std::int64_t avail = pacing.AvailableItems(i);
    EXPECT_GE(avail, prev);
    prev = avail;
  }
  EXPECT_EQ(pacing.AvailableItems(10'000'000), 1000);
}

TEST(Curriculum, PacingStepBoundaries) {
  CurriculumParams params;
  params.starting_percent = 0.1;
  params.alpha = 2.0;
  params.step = 100;
  const ExponentialPacing pacing(params, 1000);
  EXPECT_EQ(pacing.AvailableItems(0), 100);
  EXPECT_EQ(pacing.AvailableItems(99), 100);
  EXPECT_EQ(pacing.AvailableItems(100), 200);
  EXPECT_EQ(pacing.AvailableItems(200), 400);
  EXPECT_EQ(pacing.AvailableItems(400), 1000);  // Capped at N.
}

TEST(Curriculum, FullDataIteration) {
  CurriculumParams params;
  params.starting_percent = 0.1;
  params.alpha = 2.0;
  params.step = 100;
  const ExponentialPacing pacing(params, 1000);
  // 0.1 * 2^k >= 1 -> k = 4 -> iteration 400.
  EXPECT_EQ(pacing.FullDataIteration(), 400);
  EXPECT_EQ(pacing.AvailableItems(pacing.FullDataIteration()), 1000);
}

TEST(Curriculum, SamplerStaysWithinPrefix) {
  CurriculumParams params;
  params.starting_percent = 0.04;
  params.alpha = 1.9;
  params.step = 1000;
  ExponentialPacing pacing(params, 10000);
  CurriculumSampler sampler(pacing, Rng(31));
  for (std::int64_t i = 0; i < 20000; ++i) {
    const std::int64_t item = sampler.Sample(i);
    EXPECT_GE(item, 0);
    EXPECT_LT(item, pacing.AvailableItems(i));
  }
}

TEST(Curriculum, EasyItemsSampledMoreOften) {
  // The defining skew of curriculum learning: early (easy) items accumulate
  // far more accesses than late (hard) ones.
  CurriculumParams params;
  params.starting_percent = 0.04;
  params.alpha = 1.9;
  params.step = 2000;
  ExponentialPacing pacing(params, 1000);
  CurriculumSampler sampler(pacing, Rng(33));
  std::map<std::int64_t, int> counts;
  for (std::int64_t i = 0; i < 40000; ++i) {
    counts[sampler.Sample(i)]++;
  }
  int first_decile = 0;
  int last_decile = 0;
  for (const auto& [item, count] : counts) {
    if (item < 100) {
      first_decile += count;
    }
    if (item >= 900) {
      last_decile += count;
    }
  }
  // Items in the first decile are available from iteration 0; the last decile
  // only once the pacing function saturates, so easy items see ~3x the
  // accesses under these parameters.
  EXPECT_GT(first_decile, 2 * std::max(1, last_decile));
}

}  // namespace
}  // namespace silod
