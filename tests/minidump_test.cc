// Tests for the minidump crash-forensics format (src/fault/minidump.h):
// text round-trip, bounded-window rebase, and deterministic replay — a
// recorded window must re-execute bit-identically, and a tampered recording
// must be flagged with the diverging sequence number.
#include <gtest/gtest.h>

#include <string>

#include "src/core/data_manager.h"
#include "src/fault/minidump.h"
#include "src/workload/dataset.h"

namespace silod {
namespace {

DatasetCatalog TwoDatasets() {
  DatasetCatalog catalog;
  catalog.Add("imagenet-mini", MB(4), KB(250));
  catalog.Add("openimages-mini", MB(2), KB(250));
  return catalog;
}

AllocationPlan QuotaPlan(const DatasetCatalog& catalog, Bytes quota) {
  AllocationPlan plan;
  plan.cache_model = CacheModelKind::kDatasetQuota;
  for (const Dataset& d : catalog.all()) {
    plan.dataset_cache[d.id] = quota;
  }
  return plan;
}

// Drives `accesses` recorded epoch positions through the manager+recorder
// pair, the way RtCluster's fetch path does (rebase before, record after).
void DriveAccesses(DataManager* manager, MinidumpRecorder* recorder,
                   const DatasetCatalog& catalog, int accesses) {
  for (int i = 0; i < accesses; ++i) {
    const Dataset& d = catalog.Get(i % 2);
    const std::int64_t block = i % d.num_blocks;
    recorder->MaybeRebase(*manager);
    const bool hit = manager->AccessBlock(d, block);
    recorder->RecordAccess(/*job=*/i % 2, d.id, block, hit);
  }
}

TEST(Minidump, TextRoundTripIsExact) {
  const DatasetCatalog catalog = TwoDatasets();
  DataManager manager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  MinidumpRecorder recorder(manager, &catalog, MBps(100), /*seed=*/7, /*window=*/256);

  const AllocationPlan plan = QuotaPlan(catalog, MB(1));
  recorder.MaybeRebase(manager);
  ASSERT_TRUE(manager.ApplyPlan(plan, catalog).ok());
  recorder.RecordPlan(MinidumpRecorder::PlanDetail(plan));
  DriveAccesses(&manager, &recorder, catalog, 20);
  recorder.MaybeRebase(manager);
  manager.CrashShard(1);
  recorder.RecordFault("server-crash 1");
  recorder.Note("free-form text with spaces\nand a newline, plus a \\ backslash");
  DriveAccesses(&manager, &recorder, catalog, 10);

  const Minidump dump = recorder.Dump(/*wall_time=*/1.25, "round-trip test");
  const auto parsed = MinidumpFromText(MinidumpToText(dump));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(dump, *parsed);
}

TEST(Minidump, ReplayReproducesTheRecordingBitIdentically) {
  const DatasetCatalog catalog = TwoDatasets();
  DataManager manager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  MinidumpRecorder recorder(manager, &catalog, MBps(100), /*seed=*/7, /*window=*/256);

  const AllocationPlan plan = QuotaPlan(catalog, MB(1));
  recorder.MaybeRebase(manager);
  ASSERT_TRUE(manager.ApplyPlan(plan, catalog).ok());
  recorder.RecordPlan(MinidumpRecorder::PlanDetail(plan));
  DriveAccesses(&manager, &recorder, catalog, 40);
  recorder.MaybeRebase(manager);
  manager.CrashShard(0);
  recorder.RecordFault("server-crash 0");
  DriveAccesses(&manager, &recorder, catalog, 20);
  recorder.MaybeRebase(manager);
  manager.RecoverShard(0);
  recorder.RecordFault("server-recover 0");
  DriveAccesses(&manager, &recorder, catalog, 20);

  const Minidump dump = recorder.Dump(2.0, "replay test");
  const auto report = ReplayMinidump(dump);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->message;
  EXPECT_EQ(report->accesses, 80);
}

TEST(Minidump, ReplayFlagsATamperedAccess) {
  const DatasetCatalog catalog = TwoDatasets();
  DataManager manager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  MinidumpRecorder recorder(manager, &catalog, MBps(100), /*seed=*/7, /*window=*/256);

  const AllocationPlan plan = QuotaPlan(catalog, MB(1));
  recorder.MaybeRebase(manager);
  ASSERT_TRUE(manager.ApplyPlan(plan, catalog).ok());
  recorder.RecordPlan(MinidumpRecorder::PlanDetail(plan));
  DriveAccesses(&manager, &recorder, catalog, 30);

  Minidump dump = recorder.Dump(1.0, "tamper test");
  // Flip the hit bit of the last recorded access: the replay must catch the
  // corruption and name the sequence number.
  MinidumpEvent* last_access = nullptr;
  for (MinidumpEvent& event : dump.events) {
    if (event.kind == MinidumpEvent::Kind::kAccess) {
      last_access = &event;
    }
  }
  ASSERT_NE(last_access, nullptr);
  last_access->hit = !last_access->hit;

  const auto report = ReplayMinidump(dump);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok);
  EXPECT_EQ(report->diverged_seq, last_access->seq);
}

TEST(Minidump, RebaseBoundsTheWindowAndStaysReplayable) {
  const DatasetCatalog catalog = TwoDatasets();
  DataManager manager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  MinidumpRecorder recorder(manager, &catalog, MBps(100), /*seed=*/7, /*window=*/4);

  const AllocationPlan plan = QuotaPlan(catalog, MB(1));
  recorder.MaybeRebase(manager);
  ASSERT_TRUE(manager.ApplyPlan(plan, catalog).ok());
  recorder.RecordPlan(MinidumpRecorder::PlanDetail(plan));
  DriveAccesses(&manager, &recorder, catalog, 37);

  const Minidump dump = recorder.Dump(1.0, "rebase test");
  EXPECT_LE(static_cast<int>(dump.events.size()), 4);
  EXPECT_GT(dump.base_seq, 0);
  const auto report = ReplayMinidump(dump);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->message;
  // The window was rebased mid-stream: the replay starts from the embedded
  // base, not from a cold manager.
  EXPECT_EQ(report->events, static_cast<std::int64_t>(dump.events.size()));
}

TEST(Minidump, ReplaySurvivesADataManagerRestartEvent) {
  const DatasetCatalog catalog = TwoDatasets();
  DataManager manager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  MinidumpRecorder recorder(manager, &catalog, MBps(100), /*seed=*/7, /*window=*/256);

  const AllocationPlan plan = QuotaPlan(catalog, MB(1));
  recorder.MaybeRebase(manager);
  ASSERT_TRUE(manager.ApplyPlan(plan, catalog).ok());
  recorder.RecordPlan(MinidumpRecorder::PlanDetail(plan));
  DriveAccesses(&manager, &recorder, catalog, 30);

  // A Data-Manager restart exactly as RtCluster records it: capture, rebuild
  // fresh, restore, record the fault with the embedded snapshot.
  recorder.MaybeRebase(manager);
  const DataManagerSnapshot snapshot = CaptureSnapshot(manager, catalog);
  manager = DataManager(MB(3), MBps(100), /*seed=*/7, /*shards=*/3);
  ASSERT_TRUE(RestoreDataManager(snapshot, catalog, &manager).ok());
  recorder.RecordFault("dm-restart dead=- snap=" + MinidumpEscape(SnapshotToText(snapshot)));
  DriveAccesses(&manager, &recorder, catalog, 30);

  const Minidump dump = recorder.Dump(3.0, "dm-restart test");
  const auto parsed = MinidumpFromText(MinidumpToText(dump));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(dump, *parsed);
  const auto report = ReplayMinidump(*parsed);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok) << report->message;
}

TEST(Minidump, FromTextRejectsGarbage) {
  EXPECT_FALSE(MinidumpFromText("not a minidump").ok());
  EXPECT_FALSE(MinidumpFromText("").ok());
  // A truncated header parses the magic but must still fail cleanly.
  EXPECT_FALSE(MinidumpFromText("silod-minidump-v1\ntime 1.0\n").ok());
}

}  // namespace
}  // namespace silod
