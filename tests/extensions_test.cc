// Tests for the extension features beyond the paper's core evaluation:
// command-line flags, trace serialization, crash recovery (§6 fault
// tolerance), consistent-hash block placement, the Gavel objective family,
// Hoard-style prefetching, and the shared-LFU cache model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/flags.h"
#include "src/core/recovery.h"
#include "src/core/system.h"
#include "src/estimator/ioperf.h"
#include "src/sched/gavel.h"
#include "src/storage/placement.h"
#include "src/workload/trace_io.h"

namespace silod {
namespace {

// ------------------------------------------------------------------ Flags --

TEST(Flags, ParsesEqualsAndSpaceForms) {
  FlagSet flags;
  flags.Define("gpus", "8", "gpu count");
  flags.Define("name", "x", "a name");
  const char* argv[] = {"prog", "--gpus=96", "--name", "cluster-a", "positional"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(flags.GetInt("gpus"), 96);
  EXPECT_EQ(flags.GetString("name"), "cluster-a");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, BooleanSugar) {
  FlagSet flags;
  flags.Define("verbose", "false", "chatty");
  flags.Define("manage", "true", "manage IO");
  const char* argv[] = {"prog", "--verbose", "--no-manage"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.GetBool("manage"));
}

TEST(Flags, UnknownFlagIsError) {
  FlagSet flags;
  flags.Define("gpus", "8", "gpu count");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(Flags, DefaultsApply) {
  FlagSet flags;
  flags.Define("cache-tb", "7.5", "cache");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("cache-tb"), 7.5);
  EXPECT_NE(flags.Help("prog").find("cache-tb"), std::string::npos);
}

// --------------------------------------------------------------- Trace IO --

TEST(TraceIo, RoundTripPreservesJobs) {
  TraceOptions options;
  options.num_jobs = 25;
  options.share_fraction = 0.4;
  options.seed = 9;
  const Trace original = TraceGenerator(options).Generate();
  const Result<Trace> loaded = TraceFromCsv(TraceToCsv(original));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->jobs.size(), original.jobs.size());
  ASSERT_EQ(loaded->catalog.size(), original.catalog.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const JobSpec& a = original.jobs[i];
    const JobSpec& b = loaded->jobs[i];
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.num_gpus, b.num_gpus);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_NEAR(a.ideal_io, b.ideal_io, 1.0);
    EXPECT_NEAR(a.submit_time, b.submit_time, 1e-3);
    EXPECT_EQ(original.catalog.Get(a.dataset).name, loaded->catalog.Get(b.dataset).name);
  }
}

TEST(TraceIo, SharedDatasetsDeduplicate) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("shared", GB(100), MB(64));
  trace.jobs.push_back(MakeJob(0, zoo, "ResNet-50", 1, d, Hours(1), 0));
  trace.jobs.push_back(MakeJob(1, zoo, "ResNet-50", 1, d, Hours(1), 0));
  const Result<Trace> loaded = TraceFromCsv(TraceToCsv(trace));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->catalog.size(), 1u);
  EXPECT_EQ(loaded->jobs[0].dataset, loaded->jobs[1].dataset);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_FALSE(TraceFromCsv("").ok());
  EXPECT_FALSE(TraceFromCsv("not,a,header\n").ok());
  const Trace t = MakeMicrobenchmarkTrace();
  std::string csv = TraceToCsv(t);
  csv += "1,x,ResNet-50,1\n";  // Truncated row.
  EXPECT_FALSE(TraceFromCsv(csv).ok());
}

TEST(TraceIo, RoundTripSimulatesIdentically) {
  TraceOptions options;
  options.num_jobs = 20;
  options.seed = 10;
  const Trace original = TraceGenerator(options).Generate();
  const Result<Trace> loaded = TraceFromCsv(TraceToCsv(original));
  ASSERT_TRUE(loaded.ok());
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 16;
  config.sim.resources.total_cache = TB(1);
  config.sim.resources.remote_io = MBps(200);
  const double a = RunExperiment(original, config).AvgJctSeconds();
  const double b = RunExperiment(*loaded, config).AvgJctSeconds();
  EXPECT_NEAR(a, b, 1.0);
}

// --------------------------------------------------------------- Recovery --

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    dataset_a_ = catalog_.Add("a", GB(4), MB(100));
    dataset_b_ = catalog_.Add("b", GB(8), MB(100));
  }
  DatasetCatalog catalog_;
  DatasetId dataset_a_;
  DatasetId dataset_b_;
};

TEST_F(RecoveryTest, SnapshotRestoreRoundTrip) {
  DataManager manager(GB(10), MBps(100));
  ASSERT_TRUE(manager.AllocateCacheSize(catalog_.Get(dataset_a_), GB(3)).ok());
  ASSERT_TRUE(manager.AllocateCacheSize(catalog_.Get(dataset_b_), GB(5)).ok());
  ASSERT_TRUE(manager.AllocateRemoteIo(4, MBps(40)).ok());
  ASSERT_TRUE(manager.AllocateRemoteIo(7, MBps(60)).ok());
  // Populate some cache content.
  for (std::int64_t b = 0; b < 20; ++b) {
    manager.ReadBlock(4, catalog_.Get(dataset_a_), b);
  }

  const DataManagerSnapshot snapshot = CaptureSnapshot(manager, catalog_);
  EXPECT_EQ(snapshot.cache_allocations.at(dataset_a_), GB(3));
  EXPECT_EQ(snapshot.cached_blocks.at(dataset_a_).size(), 20u);

  // "Crash": a fresh manager, rebuilt from the snapshot.
  DataManager restored(GB(10), MBps(100));
  ASSERT_TRUE(RestoreDataManager(snapshot, catalog_, &restored).ok());
  EXPECT_EQ(restored.cache().Allocation(dataset_a_), GB(3));
  EXPECT_EQ(restored.cache().Allocation(dataset_b_), GB(5));
  EXPECT_DOUBLE_EQ(restored.remote().JobThrottle(4), MBps(40));
  EXPECT_DOUBLE_EQ(restored.remote().JobThrottle(7), MBps(60));
  for (std::int64_t b = 0; b < 20; ++b) {
    EXPECT_TRUE(restored.cache().IsCached(dataset_a_, b)) << b;
  }
  // The restored state snapshots identically (fixpoint).
  EXPECT_EQ(CaptureSnapshot(restored, catalog_), snapshot);
}

TEST_F(RecoveryTest, TextSerializationRoundTrip) {
  DataManagerSnapshot snapshot;
  snapshot.cache_allocations[dataset_a_] = GB(3);
  snapshot.io_allocations[9] = MBps(25);
  snapshot.cached_blocks[dataset_a_] = {0, 5, 17};
  const Result<DataManagerSnapshot> parsed = SnapshotFromText(SnapshotToText(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
}

TEST_F(RecoveryTest, TextRejectsGarbage) {
  EXPECT_FALSE(SnapshotFromText("").ok());
  EXPECT_FALSE(SnapshotFromText("silod-snapshot-v1\nwut 1 2\n").ok());
  EXPECT_FALSE(SnapshotFromText("silod-snapshot-v1\ncache x\n").ok());
}

// Hostile-input table: a restart must never rebuild from a corrupt durable
// snapshot — every malformed record is a distinct InvalidArgument, not a
// silently skipped line or a garbage DataManager.
TEST_F(RecoveryTest, TextRejectsEveryMalformedRecordShape) {
  const struct {
    const char* text;
    const char* why;
  } kBad[] = {
      {"silod-snapshot-v2\n", "wrong version header"},
      {"silod-snapshot-v1\ncache 0\n", "truncated cache line"},
      {"silod-snapshot-v1\ncache 0 100 extra\n", "trailing garbage on cache line"},
      {"silod-snapshot-v1\ncache 0 ten\n", "non-numeric quota"},
      {"silod-snapshot-v1\ncache 0 -5\n", "negative quota"},
      {"silod-snapshot-v1\ncache 0 100\ncache 0 200\n", "duplicate cache record"},
      {"silod-snapshot-v1\nio 3\n", "truncated io line"},
      {"silod-snapshot-v1\nio 3 100 extra\n", "trailing garbage on io line"},
      {"silod-snapshot-v1\nio 3 -1\n", "negative io rate"},
      {"silod-snapshot-v1\nio 3 10\nio 3 20\n", "duplicate io record"},
      {"silod-snapshot-v1\nblocks\n", "truncated blocks line"},
      {"silod-snapshot-v1\nblocks 0\n", "blocks record lists no blocks"},
      {"silod-snapshot-v1\nblocks 0 1 two 3\n", "non-numeric block id"},
      {"silod-snapshot-v1\nblocks 0 1 2\nblocks 0 3\n", "duplicate blocks record"},
  };
  for (const auto& c : kBad) {
    const Result<DataManagerSnapshot> parsed = SnapshotFromText(c.text);
    EXPECT_FALSE(parsed.ok()) << c.why;
  }
  // The same shapes in one well-formed snapshot parse cleanly.
  const Result<DataManagerSnapshot> good =
      SnapshotFromText("silod-snapshot-v1\ncache 0 100\nio 3 10\nblocks 0 1 2\n");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->cache_allocations.at(0), 100);
  EXPECT_EQ(good->cached_blocks.at(0), (std::vector<std::int64_t>{1, 2}));
}

TEST_F(RecoveryTest, TextValidatesAgainstCatalogWhenGiven) {
  // dataset ids 0 and 1 exist (a: 4 GB in 100 MB blocks = 40 blocks).
  const std::string unknown_cache = "silod-snapshot-v1\ncache 9 100\n";
  const std::string unknown_blocks = "silod-snapshot-v1\nblocks 9 1\n";
  const std::string negative_block = "silod-snapshot-v1\nblocks 0 -1\n";
  const std::string out_of_range = "silod-snapshot-v1\nblocks 0 40\n";
  const std::string in_range = "silod-snapshot-v1\nblocks 0 39\n";

  // Without a catalog, structurally valid text parses (ids are opaque).
  EXPECT_TRUE(SnapshotFromText(unknown_cache).ok());
  EXPECT_TRUE(SnapshotFromText(unknown_blocks).ok());
  // With the catalog, unknown ids and out-of-range blocks are rejected.
  EXPECT_FALSE(SnapshotFromText(unknown_cache, &catalog_).ok());
  EXPECT_FALSE(SnapshotFromText(unknown_blocks, &catalog_).ok());
  EXPECT_FALSE(SnapshotFromText(negative_block, &catalog_).ok());
  EXPECT_FALSE(SnapshotFromText(out_of_range, &catalog_).ok());
  EXPECT_TRUE(SnapshotFromText(in_range, &catalog_).ok());
}

TEST_F(RecoveryTest, RestoreDropsSurplusDiskContent) {
  // Disk holds more blocks than the (shrunken) restored quota admits.
  DataManagerSnapshot snapshot;
  snapshot.cache_allocations[dataset_a_] = MB(500);  // 5 blocks.
  snapshot.cached_blocks[dataset_a_] = {0, 1, 2, 3, 4, 5, 6, 7};
  DataManager restored(GB(10), MBps(100));
  ASSERT_TRUE(RestoreDataManager(snapshot, catalog_, &restored).ok());
  EXPECT_EQ(restored.cache().CachedBytes(dataset_a_), MB(500));
}

// -------------------------------------------------------------- Placement --

TEST(Placement, Deterministic) {
  const BlockPlacement a(10);
  const BlockPlacement b(10);
  for (std::int64_t block = 0; block < 1000; ++block) {
    EXPECT_EQ(a.ServerFor(3, block), b.ServerFor(3, block));
  }
}

TEST(Placement, SpreadsEvenly) {
  const Dataset dataset = MakeDataset(0, "x", GB(64), MB(4));  // 16384 blocks.
  const BlockPlacement placement(16);
  const auto counts = placement.CountPerServer(dataset);
  const double expected = static_cast<double>(dataset.num_blocks) / 16.0;
  for (std::int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.35 * expected);
  }
}

TEST(Placement, MinimalMovementOnGrowth) {
  const Dataset dataset = MakeDataset(0, "x", GB(64), MB(4));
  const BlockPlacement before(16);
  const BlockPlacement after(17);
  const double moved = before.MovedFraction(dataset, after);
  // Consistent hashing moves ~1/17 of blocks; naive mod-N would move ~94%.
  EXPECT_LT(moved, 0.15);
  EXPECT_GT(moved, 0.01);
}

TEST(Placement, SingleServerTakesAll) {
  const Dataset dataset = MakeDataset(0, "x", MB(640), MB(64));
  const BlockPlacement placement(1);
  EXPECT_EQ(placement.CountPerServer(dataset)[0], dataset.num_blocks);
}

// -------------------------------------------------------- Gavel objectives --

class ObjectiveTest : public ::testing::Test {
 protected:
  // Two short cache-efficient jobs and one long inefficient one competing
  // for scarce storage.
  Trace MakeTrace() {
    const ModelZoo zoo;
    Trace trace;
    auto add = [&](const char* model, Bytes size, double epochs) {
      const DatasetId d = trace.catalog.Add(std::string("d") + std::to_string(trace.jobs.size()),
                                            size, MB(16));
      JobSpec job = MakeJob(static_cast<JobId>(trace.jobs.size()), zoo, model, 1, d, 1.0, 0);
      job.total_bytes = static_cast<Bytes>(epochs * static_cast<double>(size));
      trace.jobs.push_back(job);
    };
    add("ResNet-50", GB(20), 4);
    add("ResNet-50", GB(20), 4);
    add("VLAD", GB(200), 1.5);
    return trace;
  }

  SimResult RunWith(GavelObjective objective) {
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kGavel;
    config.cache = CacheSystem::kSiloD;
    config.scheduler_options.gavel_objective = objective;
    config.sim.resources.total_gpus = 4;
    config.sim.resources.total_cache = GB(25);
    config.sim.resources.remote_io = MBps(30);
    return RunExperiment(MakeTrace(), config);
  }
};

TEST_F(ObjectiveTest, AllObjectivesProduceValidRuns) {
  for (const GavelObjective objective :
       {GavelObjective::kMaxMinFairness, GavelObjective::kFinishTimeFairness,
        GavelObjective::kMinTotalJct, GavelObjective::kMaxThroughput}) {
    const SimResult result = RunWith(objective);
    EXPECT_EQ(result.jobs.size(), 3u) << GavelObjectiveName(objective);
    for (const JobResult& j : result.jobs) {
      EXPECT_GT(j.Jct(), 0) << GavelObjectiveName(objective);
    }
  }
}

TEST_F(ObjectiveTest, JctObjectiveMinimizesAvgJct) {
  const double jct_obj = RunWith(GavelObjective::kMinTotalJct).AvgJctSeconds();
  const double fair_obj = RunWith(GavelObjective::kMaxMinFairness).AvgJctSeconds();
  EXPECT_LE(jct_obj, fair_obj * 1.001);
}

TEST_F(ObjectiveTest, FairnessObjectiveMaximizesFairness) {
  const double fair = RunWith(GavelObjective::kMaxMinFairness).AvgFairness();
  const double jct = RunWith(GavelObjective::kMinTotalJct).AvgFairness();
  EXPECT_GE(fair, jct * 0.999);
}

TEST_F(ObjectiveTest, ThroughputObjectivePlanMaximizesSteadyThroughput) {
  // The throughput objective is greedy on the *instantaneous* state, so its
  // time-average can trail max-min during cache warm-up; the crisp property
  // is at the plan level: with warm caches, the aggregate steady-state
  // throughput its plan implies is at least the fair plan's.
  const Trace trace = MakeTrace();
  Snapshot snap;
  snap.catalog = &trace.catalog;
  snap.resources.total_gpus = 4;
  snap.resources.total_cache = GB(25);
  snap.resources.remote_io = MBps(30);
  for (const JobSpec& job : trace.jobs) {
    JobView view;
    view.spec = &job;
    view.remaining_bytes = job.total_bytes;
    snap.jobs.push_back(view);
  }
  auto plan_throughput = [&](GavelObjective objective) {
    GavelScheduler scheduler(nullptr, /*silod_aware=*/true, /*manage_remote_io=*/true,
                             objective);
    // Two passes: the first sets quotas, the second sees warm effective
    // caches matching them.
    AllocationPlan plan = scheduler.Schedule(snap);
    Snapshot warm = snap;
    for (JobView& view : warm.jobs) {
      const auto it = plan.dataset_cache.find(view.spec->dataset);
      view.effective_cache = it == plan.dataset_cache.end() ? 0 : it->second;
    }
    plan = scheduler.Schedule(warm);
    double total = 0;
    for (const JobView& view : warm.jobs) {
      const Dataset& d = trace.catalog.Get(view.spec->dataset);
      const auto it = plan.dataset_cache.find(d.id);
      const Bytes c = it == plan.dataset_cache.end() ? 0 : it->second;
      total += SiloDPerfThroughput(view.spec->ideal_io, plan.Get(view.spec->id).remote_io, c,
                                   d.size);
    }
    return total;
  };
  const double tp = plan_throughput(GavelObjective::kMaxThroughput);
  const double fair = plan_throughput(GavelObjective::kMaxMinFairness);
  EXPECT_GE(tp, fair * 0.999);
}

TEST(ObjectiveSemantics, FinishTimeFairnessAllocatesProportionallyToIdeal) {
  // Two cold jobs, no cache, scarce egress.  Max-min fairness equalizes
  // absolute throughput; finish-time fairness equalizes throughput / f*, so
  // remote IO goes out proportionally to f* (114 : 43).
  const ModelZoo zoo;
  DatasetCatalog catalog;
  const DatasetId d0 = catalog.Add("a", TB(2), MB(64));
  const DatasetId d1 = catalog.Add("b", TB(2), MB(64));
  const JobSpec fast = MakeJob(0, zoo, "ResNet-50", 1, d0, Hours(10), 0);
  const JobSpec slow = MakeJob(1, zoo, "ResNet-152", 1, d1, Hours(10), 0);
  Snapshot snap;
  snap.catalog = &catalog;
  snap.resources.total_gpus = 2;
  snap.resources.total_cache = 0;
  snap.resources.remote_io = MBps(100);
  for (const JobSpec* spec : {&fast, &slow}) {
    JobView view;
    view.spec = spec;
    view.remaining_bytes = spec->total_bytes;
    snap.jobs.push_back(view);
  }

  GavelScheduler ftf(nullptr, true, true, GavelObjective::kFinishTimeFairness);
  const AllocationPlan ftf_plan = ftf.Schedule(snap);
  EXPECT_NEAR(ftf_plan.Get(0).remote_io / ftf_plan.Get(1).remote_io, 114.0 / 43.0, 0.05);

  GavelScheduler mmf(nullptr, true, true, GavelObjective::kMaxMinFairness);
  const AllocationPlan mmf_plan = mmf.Schedule(snap);
  // Max-min with progressive filling: the slow job saturates at its f* of
  // 43 MB/s and cannot use more; the leftover tops the fast job up to 57 —
  // a smaller skew than finish-time fairness's 114:43.
  EXPECT_NEAR(ToMBps(mmf_plan.Get(1).remote_io), 43.0, 1.0);
  EXPECT_NEAR(ToMBps(mmf_plan.Get(0).remote_io), 57.0, 1.0);
  EXPECT_LT(mmf_plan.Get(0).remote_io / mmf_plan.Get(1).remote_io,
            ftf_plan.Get(0).remote_io / ftf_plan.Get(1).remote_io);
}

TEST(ObjectiveNames, AllDistinct) {
  EXPECT_STRNE(GavelObjectiveName(GavelObjective::kMaxMinFairness),
               GavelObjectiveName(GavelObjective::kFinishTimeFairness));
  EXPECT_STRNE(GavelObjectiveName(GavelObjective::kMinTotalJct),
               GavelObjectiveName(GavelObjective::kMaxThroughput));
}

// ------------------------------------------------------------- Prefetching --

TEST(Prefetch, WarmStartsQueuedJobs) {
  // Two jobs on one GPU: job 1 queues behind job 0.  With Hoard prefetching
  // the leftover egress warms job 1's dataset while it waits, removing its
  // cold first epoch.
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d0 = trace.catalog.Add("a", GB(10), MB(16));
  const DatasetId d1 = trace.catalog.Add("b", GB(10), MB(16));
  JobSpec j0 = MakeJob(0, zoo, "ResNet-50", 1, d0, 1.0, 0);
  j0.total_bytes = 4 * GB(10);
  JobSpec j1 = MakeJob(1, zoo, "ResNet-50", 1, d1, 1.0, 1.0);
  j1.total_bytes = 4 * GB(10);
  trace.jobs = {j0, j1};

  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 1;
  config.sim.resources.total_cache = GB(20);
  // 60 MB/s < f*: a cold job IS IO-bound, but once job 0's cache fills its
  // epochs leave the egress idle — exactly the slack Hoard exploits.
  config.sim.resources.remote_io = MBps(60);
  config.sim.prefetch_waiting = false;
  const SimResult off = RunExperiment(trace, config);
  config.sim.prefetch_waiting = true;
  const SimResult on = RunExperiment(trace, config);

  // Job 1 starts with a warm cache: its runtime (finish - start) drops from
  // cold-epoch-plus-warm-epochs to the compute-bound duration.
  const double run_off = off.jobs[1].finish_time - off.jobs[1].first_start_time;
  const double run_on = on.jobs[1].finish_time - on.jobs[1].first_start_time;
  EXPECT_LT(run_on, run_off * 0.9);
  EXPECT_NEAR(run_on, j1.IdealDuration(), 0.05 * j1.IdealDuration());
  EXPECT_LT(on.makespan, off.makespan);
}

TEST(Prefetch, NoEffectWithoutSlackOrSpace) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d0 = trace.catalog.Add("a", GB(10), MB(16));
  const DatasetId d1 = trace.catalog.Add("b", GB(10), MB(16));
  JobSpec j0 = MakeJob(0, zoo, "ResNet-50", 1, d0, 1.0, 0);
  j0.total_bytes = 3 * GB(10);
  JobSpec j1 = MakeJob(1, zoo, "ResNet-50", 1, d1, 1.0, 1.0);
  j1.total_bytes = 3 * GB(10);
  trace.jobs = {j0, j1};
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 1;
  // Cache only fits the running job's dataset: nothing to prefetch into.
  config.sim.resources.total_cache = GB(10);
  config.sim.resources.remote_io = MBps(200);
  config.sim.prefetch_waiting = false;
  const double off = RunExperiment(trace, config).makespan;
  config.sim.prefetch_waiting = true;
  const double on = RunExperiment(trace, config).makespan;
  EXPECT_NEAR(on, off, 0.02 * off);
}

// -------------------------------------------------------------- Shared LFU --

TEST(SharedLfu, ThrashesLikeLruUnderEpochScans) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("x", GB(10), MB(16));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = 6 * GB(10);
  trace.jobs.push_back(job);

  auto run = [&](CacheSystem cache) {
    ExperimentConfig config;
    config.cache = cache;
    config.engine = EngineKind::kFine;
    config.sim.resources.total_gpus = 1;
    config.sim.resources.total_cache = GB(5);
    config.sim.resources.remote_io = MBps(20);
    return RunExperiment(trace, config).AvgJctSeconds();
  };
  const double uniform = run(CacheSystem::kSiloD);
  const double lru = run(CacheSystem::kAlluxio);
  const double lfu = run(CacheSystem::kAlluxioLfu);
  // Both shared-pool policies thrash relative to uniform caching.
  EXPECT_GT(lru, 1.1 * uniform);
  EXPECT_GT(lfu, 1.1 * uniform);
}

TEST(SharedLfu, SchedulerConstructs) {
  const auto scheduler = MakeScheduler(SchedulerKind::kFifo, CacheSystem::kAlluxioLfu);
  EXPECT_EQ(scheduler->name(), "fifo+alluxio-lfu");
}


// ------------------------------------------------------------ SRTF (preempt)

TEST(Srtf, ShortArrivalPreemptsLongJob) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d0 = trace.catalog.Add("long", GB(50), MB(16));
  const DatasetId d1 = trace.catalog.Add("short", GB(5), MB(16));
  JobSpec long_job = MakeJob(0, zoo, "ResNet-50", 1, d0, 1.0, 0);
  long_job.total_bytes = GB(100);  // ~877 s of work.
  JobSpec short_job = MakeJob(1, zoo, "ResNet-50", 1, d1, 1.0, Minutes(1));
  short_job.total_bytes = GB(5);   // ~44 s of work.
  trace.jobs = {long_job, short_job};

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kSjf;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 1;  // The short job MUST preempt to run.
  config.sim.resources.total_cache = GB(60);
  config.sim.resources.remote_io = MBps(500);
  config.sim.preempt_resume_penalty = 30.0;

  config.scheduler_options.preemptive_sjf = false;
  const SimResult fifo_like = RunExperiment(trace, config);
  config.scheduler_options.preemptive_sjf = true;
  const SimResult srtf = RunExperiment(trace, config);

  // Without preemption the short job waits out the long one (~15 min JCT);
  // with SRTF it runs promptly.
  EXPECT_GT(fifo_like.jobs[1].Jct(), Minutes(10));
  EXPECT_LT(srtf.jobs[1].Jct(), Minutes(5));
  // The long job pays the resume penalty but still finishes.
  EXPECT_GE(srtf.jobs[0].Jct(), fifo_like.jobs[0].Jct() - 1.0);
  EXPECT_GE(srtf.jobs[0].finish_time, 0);
  // SRTF lowers the average JCT.
  EXPECT_LT(srtf.AvgJctSeconds(), fifo_like.AvgJctSeconds());
}

TEST(Srtf, ResumePenaltyIsCharged) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d0 = trace.catalog.Add("long", GB(50), MB(16));
  const DatasetId d1 = trace.catalog.Add("short", GB(5), MB(16));
  JobSpec long_job = MakeJob(0, zoo, "ResNet-50", 1, d0, 1.0, 0);
  long_job.total_bytes = GB(50);
  JobSpec short_job = MakeJob(1, zoo, "ResNet-50", 1, d1, 1.0, Minutes(1));
  short_job.total_bytes = GB(5);
  trace.jobs = {long_job, short_job};

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kSjf;
  config.cache = CacheSystem::kSiloD;
  config.scheduler_options.preemptive_sjf = true;
  config.sim.resources.total_gpus = 1;
  config.sim.resources.total_cache = GB(60);
  config.sim.resources.remote_io = MBps(500);

  config.sim.preempt_resume_penalty = 0.0;
  const double free_resume = RunExperiment(trace, config).jobs[0].Jct();
  config.sim.preempt_resume_penalty = 60.0;
  const double costly_resume = RunExperiment(trace, config).jobs[0].Jct();
  EXPECT_NEAR(costly_resume - free_resume, 60.0, 5.0);
}

TEST(Srtf, NameReflectsPreemption) {
  SchedulerOptions options;
  options.preemptive_sjf = true;
  EXPECT_EQ(MakeScheduler(SchedulerKind::kSjf, CacheSystem::kSiloD, options)->name(),
            "srtf-silod+silod-greedy");
}

}  // namespace
}  // namespace silod
