// Unit and property tests for src/estimator: the IOPerf closed form (Eq. 2-5),
// the SiloD-enhanced estimator (Algorithm 1), and the profiling models.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/units.h"
#include "src/estimator/ioperf.h"
#include "src/estimator/perf_model.h"
#include "src/estimator/profiler.h"
#include "src/workload/model_zoo.h"

namespace silod {
namespace {

// ----------------------------------------------------------------- IOPerf --

TEST(IoPerf, Eq2RemoteDemand) {
  // b = f (1 - c/d): 114 MB/s with half the dataset cached needs 57 MB/s.
  EXPECT_DOUBLE_EQ(RemoteIoDemand(MBps(114), GB(71.5), GB(143)), MBps(57));
  EXPECT_DOUBLE_EQ(RemoteIoDemand(MBps(114), 0, GB(143)), MBps(114));
  EXPECT_DOUBLE_EQ(RemoteIoDemand(MBps(114), GB(143), GB(143)), 0);
  EXPECT_DOUBLE_EQ(RemoteIoDemand(MBps(114), GB(200), GB(143)), 0);  // Over-cached.
}

TEST(IoPerf, Eq3IoThroughput) {
  // f = b / (1 - c/d).
  EXPECT_DOUBLE_EQ(IoThroughput(MBps(57), GB(71.5), GB(143)), MBps(114));
  EXPECT_DOUBLE_EQ(IoThroughput(MBps(57), 0, GB(143)), MBps(57));
  EXPECT_TRUE(std::isinf(IoThroughput(MBps(1), GB(143), GB(143))));
}

TEST(IoPerf, Eq4EndToEnd) {
  // min(f*, b/(1-c/d)).
  EXPECT_DOUBLE_EQ(SiloDPerfThroughput(MBps(114), MBps(57), GB(71.5), GB(143)), MBps(114));
  EXPECT_DOUBLE_EQ(SiloDPerfThroughput(MBps(114), MBps(30), GB(71.5), GB(143)), MBps(60));
  EXPECT_DOUBLE_EQ(SiloDPerfThroughput(MBps(114), 0, GB(143), GB(143)), MBps(114));
  EXPECT_DOUBLE_EQ(SiloDPerfThroughput(MBps(114), 0, 0, GB(143)), 0);
}

TEST(IoPerf, Eq3Eq2AreInverses) {
  for (double cache_gb : {0.0, 10.0, 50.0, 100.0}) {
    const Bytes c = GB(cache_gb);
    const BytesPerSec f = MBps(80);
    const BytesPerSec b = RemoteIoDemand(f, c, GB(143));
    EXPECT_NEAR(IoThroughput(b, c, GB(143)), f, 1e-6);
  }
}

TEST(IoPerf, Eq5CacheEfficiency) {
  // ResNet-50 / ImageNet-1k: 114/143 ~ 0.8 MB/s/GB (the Fig. 6 headline).
  EXPECT_NEAR(CacheEfficiencyMBpsPerGB(MBps(114), GB(143)), 0.797, 0.001);
  // BERT / WebSearch: 2 MB/s over 20.9 TB ~ 9.5e-5.
  EXPECT_NEAR(CacheEfficiencyMBpsPerGB(MBps(2), TB(20.9)), 9.5e-5, 2e-6);
}

TEST(IoPerf, CacheEfficiencyIsDerivativeOfDemand) {
  // Eq. 5 is -db/dc at f = f*: check by finite differences.
  const BytesPerSec f = MBps(114);
  const Bytes d = GB(143);
  const Bytes dc = MB(100);
  const double numeric =
      (RemoteIoDemand(f, GB(10), d) - RemoteIoDemand(f, GB(10) + dc, d)) /
      static_cast<double>(dc);
  EXPECT_NEAR(numeric, CacheEfficiency(f, d), 1e-12);
}

TEST(IoPerf, RequiredRemoteIoInvertsThroughput) {
  const BytesPerSec target = MBps(90);
  const Bytes c = GB(40);
  const Bytes d = GB(143);
  const BytesPerSec b = RequiredRemoteIo(target, c, d);
  EXPECT_NEAR(SiloDPerfThroughput(MBps(114), b, c, d), target, 1e-6);
}

TEST(IoPerf, MonotoneInCacheAndIo) {
  // SiloDPerf is nondecreasing in both storage dimensions.
  const BytesPerSec f = MBps(114);
  const Bytes d = GB(143);
  double prev = -1;
  for (int g = 0; g <= 143; g += 13) {
    const double v = SiloDPerfThroughput(f, MBps(20), GB(g), d);
    EXPECT_GE(v, prev);
    prev = v;
  }
  prev = -1;
  for (int io = 0; io <= 120; io += 10) {
    const double v = SiloDPerfThroughput(f, MBps(io), GB(40), d);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(IoPerf, SpeedOverloadsSubstituteEffectiveIdeal) {
  // The heterogeneous forms are Eq. 2-5 with f* -> s * f*: each speed overload
  // must agree exactly with the uniform form at the scaled ideal, and speed 1.0
  // must be a bit-for-bit no-op (the uniform-fleet identity the engines rely
  // on).
  const BytesPerSec f = MBps(114);
  const Bytes d = GB(143);
  for (double s : {0.25, 0.45, 1.0, 2.5}) {
    EXPECT_EQ(EffectiveIdeal(f, s), f * s);
    EXPECT_EQ(RemoteIoDemand(f, s, GB(40), d), RemoteIoDemand(f * s, GB(40), d));
    EXPECT_EQ(SiloDPerfThroughput(f, s, MBps(30), GB(40), d),
              SiloDPerfThroughput(f * s, MBps(30), GB(40), d));
    EXPECT_EQ(CacheEfficiency(f, s, d), CacheEfficiency(f * s, d));
  }
  EXPECT_EQ(EffectiveIdeal(f, 1.0), f);
  EXPECT_EQ(SiloDPerfThroughput(f, 1.0, MBps(30), GB(40), d),
            SiloDPerfThroughput(f, MBps(30), GB(40), d));
}

TEST(IoPerf, ThroughputMonotoneInSpeed) {
  // A faster GPU never slows a job down; once remote IO is the bottleneck the
  // throughput saturates there instead of growing past it.
  const BytesPerSec f = MBps(114);
  const Bytes d = GB(143);
  double prev = -1;
  for (double s = 0.1; s <= 3.0; s += 0.1) {
    const double v = SiloDPerfThroughput(f, s, MBps(30), GB(40), d);
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Zero cache: the ceiling is exactly the egress grant, whatever the speed.
  EXPECT_DOUBLE_EQ(SiloDPerfThroughput(f, 100.0, MBps(30), 0, d), MBps(30));
}

// ------------------------------------------------------------- PerfModel --

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest() {
    dataset_ = catalog_.Add("ImageNet-1k", GB(143), MB(64));
    job_ = MakeJob(0, zoo_, "ResNet-50", 1, dataset_, Hours(10), 0);
  }
  ModelZoo zoo_;
  DatasetCatalog catalog_;
  DatasetId dataset_;
  JobSpec job_;
};

TEST_F(PerfModelTest, ComputeEstimatorIgnoresStorage) {
  ComputeEstimator estimator;
  ResourceVector starved{1, 0, 0};
  ResourceVector rich{1, GB(143), MBps(114)};
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, starved), job_.ideal_io);
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, rich), job_.ideal_io);
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, ResourceVector{0, 0, 0}), 0);
}

TEST_F(PerfModelTest, SiloDEstimatorCapsByIoPerf) {
  auto base = std::make_shared<ComputeEstimator>();
  SiloDEstimator estimator(base, &catalog_);
  // No storage at all: IO bound at 0.
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, ResourceVector{1, 0, 0}), 0);
  // 30 MB/s remote, no cache: IO bound at 30.
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, ResourceVector{1, 0, MBps(30)}), MBps(30));
  // Full cache: compute bound at f*.
  EXPECT_DOUBLE_EQ(estimator.Estimate(job_, ResourceVector{1, GB(143), 0}), job_.ideal_io);
  // Algorithm 1's min() never exceeds the base estimator.
  for (double io : {0.0, 20.0, 60.0, 200.0}) {
    for (double cache : {0.0, 50.0, 143.0}) {
      const ResourceVector r{1, GB(cache), MBps(io)};
      EXPECT_LE(estimator.Estimate(job_, r), base->Estimate(job_, r) + 1e-9);
    }
  }
}

TEST_F(PerfModelTest, SiloDEstimatorNameComposes) {
  SiloDEstimator estimator(std::make_shared<ComputeEstimator>(), &catalog_);
  EXPECT_EQ(estimator.name(), "silod(compute-only)");
}

// -------------------------------------------------------------- Profilers --

TEST(OfflineProfiler, StablePerJob) {
  ModelZoo zoo;
  DatasetCatalog catalog;
  const DatasetId d = catalog.Add("x", GB(143), MB(64));
  const JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, Hours(1), 0);
  OfflineProfiler profiler(0.02, 5);
  const BytesPerSec first = profiler.ProfiledIdealIo(job);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(profiler.ProfiledIdealIo(job), first);  // Offline: fixed.
  }
  EXPECT_NEAR(first, job.ideal_io, 0.02 * job.ideal_io);
}

TEST(OnlineBenefitProfiler, NoisyPerMeasurement) {
  OnlineBenefitProfiler profiler(0.25, 5);
  double lo = 1e18;
  double hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const double m = profiler.MeasureBenefit(1.0);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
    EXPECT_GE(m, 0.75 - 1e-9);
    EXPECT_LE(m, 1.25 + 1e-9);
  }
  EXPECT_LT(lo, 0.80);  // Noise actually spans the band.
  EXPECT_GT(hi, 1.20);
}

}  // namespace
}  // namespace silod
