// Unit tests for src/storage: token bucket, max-min sharing / remote store,
// storage fabric (Fig. 3), in-memory remote store and the threaded pipeline.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/storage/data_pipeline.h"
#include "src/storage/fabric.h"
#include "src/storage/inmem_remote.h"
#include "src/storage/remote_store.h"
#include "src/storage/token_bucket.h"

namespace silod {
namespace {

// ------------------------------------------------------------ TokenBucket --

TEST(TokenBucket, BurstAdmitsImmediately) {
  TokenBucket bucket(MBps(10), MB(5));
  EXPECT_DOUBLE_EQ(bucket.TimeToAdmit(MB(5), 0.0), 0.0);
}

TEST(TokenBucket, RefillDelaysOversizeRequests) {
  TokenBucket bucket(MBps(10), MB(5));
  bucket.Consume(MB(5), 0.0);  // Drain the burst.
  // 2 MB needs 0.2 s of refill at 10 MB/s.
  EXPECT_NEAR(bucket.TimeToAdmit(MB(2), 0.0), 0.2, 1e-9);
}

TEST(TokenBucket, SustainedRateConverges) {
  TokenBucket bucket(MBps(10), MB(1));
  Seconds t = 0;
  const int kTransfers = 100;
  for (int i = 0; i < kTransfers; ++i) {
    t = bucket.TimeToAdmit(MB(1), t);
    bucket.Consume(MB(1), t);
  }
  // 100 MB at 10 MB/s ~ 10 s (minus the initial burst).
  EXPECT_NEAR(t, (kTransfers - 1) * 0.1, 0.2);
}

TEST(TokenBucket, SetRateTakesEffect) {
  TokenBucket bucket(MBps(10), MB(1));
  bucket.Consume(MB(1), 0.0);
  bucket.SetRate(MBps(100), 0.0);
  EXPECT_NEAR(bucket.TimeToAdmit(MB(1), 0.0), 0.01, 1e-9);
}

TEST(TokenBucket, TokensNeverExceedBurst) {
  TokenBucket bucket(MBps(10), MB(2));
  EXPECT_DOUBLE_EQ(bucket.TokensAt(100.0), static_cast<double>(MB(2)));
}

TEST(TokenBucket, UnlimitedRateAlwaysAdmits) {
  TokenBucket bucket(kUnlimitedRate, MB(1));
  bucket.Consume(MB(100), 0.0);
  EXPECT_DOUBLE_EQ(bucket.TimeToAdmit(MB(100), 0.0), 0.0);
}

// A scheduler tick re-rates the bucket while a loader holds a reservation at
// a future admit time (the RtCluster pattern: Consume at TimeToAdmit moves
// the bucket clock ahead of the wall clock).  The rate change must apply from
// the reservation point — crediting the in-flight interval at the new rate
// would mint tokens the old rate never granted.
TEST(TokenBucket, SetRateDuringInFlightReservation) {
  TokenBucket bucket(MBps(10), MB(1));
  const Seconds admit = bucket.TimeToAdmit(MB(2), 0.0);
  EXPECT_NEAR(admit, 0.1, 1e-9);  // 1 MB burst + 1 MB refill at 10 MB/s.
  bucket.Consume(MB(2), admit);   // Bucket clock now at 0.1, zero tokens.

  bucket.SetRate(MBps(20), /*now=*/0.05);  // Tick happened mid-reservation.
  EXPECT_DOUBLE_EQ(bucket.TokensAt(0.1), 0.0);  // No retroactive credit.
  // Accrual resumes from the reservation point at the new rate.
  EXPECT_NEAR(bucket.TimeToAdmit(MB(1), 0.1), 0.15, 1e-9);
}

TEST(TokenBucket, SetRateAccruesElapsedTimeAtOldRate) {
  TokenBucket bucket(MBps(10), MB(1));
  bucket.Consume(MB(1), 0.0);  // Drain; no reservation beyond t=0.
  bucket.SetRate(MBps(20), 0.05);
  // [0, 0.05) accrued at 10 MB/s = 0.5 MB; then 20 MB/s going forward.
  EXPECT_NEAR(bucket.TokensAt(0.05), static_cast<double>(MB(1)) / 2, 1.0);
  EXPECT_NEAR(bucket.TokensAt(0.06), 0.7 * static_cast<double>(MB(1)), 1.0);
}

// ------------------------------------------------------------ MaxMinShare --

TEST(MaxMinShare, UnderloadedGrantsDemands) {
  const auto rates = MaxMinShare({MBps(10), MBps(20)}, MBps(100));
  EXPECT_DOUBLE_EQ(rates[0], MBps(10));
  EXPECT_DOUBLE_EQ(rates[1], MBps(20));
}

TEST(MaxMinShare, OverloadedSplitsEvenly) {
  const auto rates = MaxMinShare({MBps(100), MBps(100)}, MBps(100));
  EXPECT_DOUBLE_EQ(rates[0], MBps(50));
  EXPECT_DOUBLE_EQ(rates[1], MBps(50));
}

TEST(MaxMinShare, SmallFlowsProtected) {
  // Classic max-min: {2, 8, 10} into 12 -> {2, 5, 5}.
  const auto rates = MaxMinShare({2, 8, 10}, 12);
  EXPECT_DOUBLE_EQ(rates[0], 2);
  EXPECT_DOUBLE_EQ(rates[1], 5);
  EXPECT_DOUBLE_EQ(rates[2], 5);
}

TEST(MaxMinShare, CapsBind) {
  const auto rates = MaxMinShare({100, 100}, {30, kUnlimitedRate}, 100);
  EXPECT_DOUBLE_EQ(rates[0], 30);
  EXPECT_DOUBLE_EQ(rates[1], 70);
}

TEST(MaxMinShare, InfiniteDemandsShareEqually) {
  const auto rates =
      MaxMinShare({kUnlimitedRate, kUnlimitedRate, kUnlimitedRate}, 90);
  for (double r : rates) {
    EXPECT_DOUBLE_EQ(r, 30);
  }
}

TEST(MaxMinShare, ZeroDemandGetsZero) {
  const auto rates = MaxMinShare({0, 50}, 100);
  EXPECT_DOUBLE_EQ(rates[0], 0);
  EXPECT_DOUBLE_EQ(rates[1], 50);
}

TEST(MaxMinShare, ConservationProperty) {
  // Property sweep: never exceed capacity; never exceed demand or cap.
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.NextBelow(10);
    std::vector<BytesPerSec> demands(n);
    std::vector<BytesPerSec> caps(n);
    for (std::size_t i = 0; i < n; ++i) {
      demands[i] = rng.Uniform(0, 100);
      caps[i] = rng.NextDouble() < 0.3 ? kUnlimitedRate : rng.Uniform(0, 50);
    }
    const double capacity = rng.Uniform(1, 200);
    const auto rates = MaxMinShare(demands, caps, capacity);
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(rates[i], demands[i] + 1e-9);
      EXPECT_LE(rates[i], caps[i] + 1e-9);
      total += rates[i];
    }
    EXPECT_LE(total, capacity + 1e-6);
    // Work conservation: if any flow is unsatisfied, capacity is exhausted.
    bool unsatisfied = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (rates[i] + 1e-9 < std::min(demands[i], caps[i])) {
        unsatisfied = true;
      }
    }
    if (unsatisfied) {
      EXPECT_NEAR(total, capacity, 1e-6);
    }
  }
}

// ------------------------------------------------------------ RemoteStore --

TEST(RemoteStore, ThrottlesApply) {
  RemoteStore store(MBps(100));
  store.SetJobThrottle(0, MBps(10));
  const auto rates = store.ArbitratedRates({0, 1}, {MBps(50), MBps(50)});
  EXPECT_DOUBLE_EQ(rates[0], MBps(10));
  EXPECT_DOUBLE_EQ(rates[1], MBps(50));
}

TEST(RemoteStore, ClearThrottleRestoresUnlimited) {
  RemoteStore store(MBps(100));
  store.SetJobThrottle(3, MBps(1));
  store.ClearJobThrottle(3);
  EXPECT_TRUE(std::isinf(store.JobThrottle(3)));
}

TEST(RemoteStore, EgressBindsOverall) {
  RemoteStore store(MBps(60));
  const auto rates = store.ArbitratedRates({0, 1, 2}, {MBps(50), MBps(50), MBps(50)});
  EXPECT_NEAR(rates[0] + rates[1] + rates[2], MBps(60), 1.0);
}

// ---------------------------------------------------------- StorageFabric --

TEST(StorageFabric, SingleServerIsDiskBound) {
  StorageFabric fabric(FabricConfig{});
  EXPECT_DOUBLE_EQ(fabric.PerServerCacheReadRate(1), GBps(3.2));
}

TEST(StorageFabric, Fig3NearLinearScaling) {
  // Fig. 3: 8-A100 jobs demand 1923 MB/s per server; with 50 servers the
  // cluster still serves within ~10% of the linear-scaling reference.
  StorageFabric fabric(FabricConfig{});
  const BytesPerSec demand = MBps(1923);
  for (int n : {1, 10, 20, 30, 40, 50}) {
    const BytesPerSec cluster = fabric.ClusterCacheThroughput(n, demand);
    const BytesPerSec linear = fabric.LocalOnlyThroughput(n, demand);
    EXPECT_GE(cluster, 0.9 * linear) << n << " servers";
    EXPECT_LE(cluster, linear + 1.0);
  }
}

TEST(StorageFabric, PeerRateNeverAboveLocal) {
  StorageFabric fabric(FabricConfig{});
  EXPECT_LE(fabric.PerServerCacheReadRate(50), fabric.PerServerCacheReadRate(1));
}

TEST(StorageFabric, SlowNicBindsPeerReads) {
  // With a 10 GbE storage fabric the NIC, not the disk, bounds peer reads.
  FabricConfig config;
  config.nic_bw = Gbps(10);
  StorageFabric fabric(config);
  EXPECT_LT(fabric.PerServerCacheReadRate(50), fabric.PerServerCacheReadRate(1));
  EXPECT_NEAR(fabric.PerServerCacheReadRate(50),
              Gbps(10) / ((49.0 / 50.0) * 1.04), 1.0);
}

// --------------------------------------------------------- InMemRemoteStore --

TEST(InMemRemote, PayloadChecksumsMatch) {
  InMemRemoteStore store(GBps(10), MB(64));
  const Dataset d = MakeDataset(0, "x", MB(2), KB(512));
  store.RegisterDataset(d);
  for (std::int64_t b = 0; b < d.num_blocks; ++b) {
    const auto data = store.ReadBlock(0, b);
    EXPECT_EQ(data.size(), static_cast<std::size_t>(d.BlockBytes(b)));
    EXPECT_EQ(InMemRemoteStore::Checksum(data),
              InMemRemoteStore::ExpectedChecksum(0, b, d.BlockBytes(b)));
  }
  EXPECT_EQ(store.bytes_served(), d.size);
}

TEST(InMemRemote, DistinctBlocksDistinctPayloads) {
  InMemRemoteStore store(GBps(10), MB(64));
  const Dataset d = MakeDataset(1, "x", MB(1), KB(256));
  store.RegisterDataset(d);
  EXPECT_NE(InMemRemoteStore::Checksum(store.ReadBlock(1, 0)),
            InMemRemoteStore::Checksum(store.ReadBlock(1, 1)));
}

TEST(InMemRemote, EgressThrottleSlowsReads) {
  // 4 MB at 8 MB/s with a 1 MB burst -> at least ~0.3 s.
  InMemRemoteStore store(MBps(8), MB(1));
  const Dataset d = MakeDataset(0, "x", MB(4), MB(1));
  store.RegisterDataset(d);
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t b = 0; b < d.num_blocks; ++b) {
    store.ReadBlock(0, b);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.3);
}

// ------------------------------------------------------------ DataPipeline --

TEST(DataPipeline, DeliversEveryBlockOncePerEpoch) {
  InMemRemoteStore remote(GBps(1), MB(8));
  const Dataset d = MakeDataset(0, "x", MB(4), KB(256));
  PipelineOptions options;
  options.cache_capacity = 0;
  DataPipeline pipeline(&remote, d, options);
  pipeline.StartEpoch();
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < d.num_blocks; ++i) {
    const auto [block, payload] = pipeline.NextBlock();
    EXPECT_TRUE(seen.insert(block).second) << "block delivered twice";
    EXPECT_EQ(InMemRemoteStore::Checksum(payload),
              InMemRemoteStore::ExpectedChecksum(0, block, d.BlockBytes(block)));
  }
  EXPECT_TRUE(pipeline.EpochDone());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(d.num_blocks));
}

TEST(DataPipeline, UniformCacheHitsMatchAllocation) {
  InMemRemoteStore remote(GBps(1), MB(8));
  const Dataset d = MakeDataset(0, "x", MB(8), KB(256));  // 32 blocks.
  PipelineOptions options;
  options.cache_capacity = MB(4);  // Half the dataset.
  DataPipeline pipeline(&remote, d, options);

  pipeline.StartEpoch();
  for (std::int64_t i = 0; i < d.num_blocks; ++i) {
    pipeline.NextBlock();
  }
  const PipelineStats first = pipeline.stats();
  EXPECT_EQ(first.cache_hits, 0);  // Cold first epoch.
  // Admission fills the allocation to within one block.
  EXPECT_LE(pipeline.cached_bytes(), MB(4));
  EXPECT_GE(pipeline.cached_bytes(), MB(4) - KB(256));

  pipeline.StartEpoch();
  for (std::int64_t i = 0; i < d.num_blocks; ++i) {
    pipeline.NextBlock();
  }
  const PipelineStats second = pipeline.stats();
  // Second epoch: exactly the cached half hits (uniform caching, c/d = 0.5).
  EXPECT_EQ(second.cache_hits - first.cache_hits, d.num_blocks / 2);
}

TEST(DataPipeline, ShuffledOrderDiffersAcrossEpochs) {
  InMemRemoteStore remote(GBps(10), MB(8));
  const Dataset d = MakeDataset(0, "x", MB(4), KB(128));
  PipelineOptions options;
  options.cache_capacity = d.size;  // Cache everything for speed.
  DataPipeline pipeline(&remote, d, options);

  std::vector<std::int64_t> first;
  pipeline.StartEpoch();
  for (std::int64_t i = 0; i < d.num_blocks; ++i) {
    first.push_back(pipeline.NextBlock().first);
  }
  std::vector<std::int64_t> second;
  pipeline.StartEpoch();
  for (std::int64_t i = 0; i < d.num_blocks; ++i) {
    second.push_back(pipeline.NextBlock().first);
  }
  EXPECT_NE(first, second);
}

TEST(DataPipeline, MultipleWorkersStillExactlyOnce) {
  InMemRemoteStore remote(GBps(1), MB(8));
  const Dataset d = MakeDataset(0, "x", MB(8), KB(128));
  PipelineOptions options;
  options.prefetch_threads = 4;
  options.prefetch_depth = 8;
  options.cache_capacity = MB(2);
  DataPipeline pipeline(&remote, d, options);
  for (int epoch = 0; epoch < 3; ++epoch) {
    pipeline.StartEpoch();
    std::set<std::int64_t> seen;
    for (std::int64_t i = 0; i < d.num_blocks; ++i) {
      seen.insert(pipeline.NextBlock().first);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(d.num_blocks));
  }
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 3 * d.num_blocks);
}

}  // namespace
}  // namespace silod
