// Unit tests for src/common: units, RNG, status, stats, bitset, table,
// backoff.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/backoff.h"
#include "src/common/bitset.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/topology.h"
#include "src/common/units.h"

namespace silod {
namespace {

// ------------------------------------------------------------------ Units --

TEST(Units, DecimalConstructors) {
  EXPECT_EQ(MB(1), 1'000'000);
  EXPECT_EQ(GB(143), 143'000'000'000LL);
  EXPECT_EQ(TB(1.36), 1'360'000'000'000LL);
  EXPECT_DOUBLE_EQ(ToGB(GB(660)), 660.0);
  EXPECT_DOUBLE_EQ(ToMBps(MBps(114)), 114.0);
}

TEST(Units, GbpsIsBits) {
  // 1.6 Gbps = 200 MB/s (Table 5's micro-benchmark limit).
  EXPECT_DOUBLE_EQ(ToMBps(Gbps(1.6)), 200.0);
  EXPECT_DOUBLE_EQ(ToGbps(Gbps(120)), 120.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(Minutes(10), 600.0);
  EXPECT_DOUBLE_EQ(Hours(2), 7200.0);
  EXPECT_DOUBLE_EQ(Days(1), 86400.0);
  EXPECT_DOUBLE_EQ(ToMinutes(Minutes(37.5)), 37.5);
}

// -------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowIsUniformish) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBelow(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.Exponential(0.5);
  }
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) {
    stat.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stat.mean(), 5.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(15);
  SampleSet set;
  for (int i = 0; i < 100000; ++i) {
    set.Add(rng.LogNormal(std::log(30.0), 1.6));
  }
  EXPECT_NEAR(set.Median(), 30.0, 1.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  rng.Shuffle(v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) {
    fixed += v[static_cast<std::size_t>(i)] == i ? 1 : 0;
  }
  EXPECT_LT(fixed, 10);  // Expected ~1 fixed point.
}

TEST(Rng, ForkIsIndependent) {
  Rng a(21);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// ----------------------------------------------------------------- Status --

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::NotFound("dataset 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: dataset 7");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ Stats --

TEST(RunningStat, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SampleSet, EmptyEdges) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 0.0);
  EXPECT_TRUE(s.Cdf(10).empty());
}

TEST(SampleSet, SingleSampleAllPercentiles) {
  SampleSet s;
  s.Add(7.25);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(s.Percentile(p), 7.25);
  }
  const auto cdf = s.Cdf(3);
  ASSERT_EQ(cdf.size(), 3u);
  for (const auto& [value, frac] : cdf) {
    EXPECT_DOUBLE_EQ(value, 7.25);
    EXPECT_DOUBLE_EQ(frac, 1.0);
  }
}

TEST(SampleSet, DuplicateHeavyPercentiles) {
  // 90 copies of 5.0 plus a small tail; interpolation must stay on the
  // plateau for every percentile that lands inside it.
  SampleSet s;
  for (int i = 0; i < 90; ++i) {
    s.Add(5.0);
  }
  for (double x : {1.0, 2.0, 3.0, 4.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Median(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(60), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(93), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 11.0);
  // Unsorted insertion order must not leak into the CDF: it is sorted and
  // monotone even though the tail values straddle the plateau.
  const auto cdf = s.Cdf(25);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(SampleSet, ExtremePercentilesAreMinMax) {
  SampleSet s;
  for (double x : {9.0, -3.0, 4.5, 0.0, 2.25}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), -3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 9.0);
}

TEST(SampleSet, CdfMonotone) {
  SampleSet s;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.NextDouble());
  }
  const auto cdf = s.Cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(TimeSeries, ValueAtPiecewiseConstant) {
  TimeSeries ts;
  ts.Record(0, 1.0);
  ts.Record(10, 3.0);
  ts.Record(20, 2.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(-1), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(0), 1.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(9.99), 1.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(10), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(100), 2.0);
}

TEST(TimeSeries, TimeAverage) {
  TimeSeries ts;
  ts.Record(0, 1.0);
  ts.Record(10, 3.0);
  // [0,10): 1.0, [10,20): 3.0 -> average 2.0 over [0,20).
  EXPECT_DOUBLE_EQ(ts.TimeAverage(0, 20), 2.0);
  EXPECT_DOUBLE_EQ(ts.TimeAverage(10, 20), 3.0);
  EXPECT_DOUBLE_EQ(ts.TimeAverage(5, 15), 2.0);
}

TEST(TimeSeries, TimeAverageFromBeforeFirstPoint) {
  // Before the first recording the series reads 0, and that span must be
  // weighted into the average, not skipped.
  TimeSeries ts;
  ts.Record(10, 2.0);
  EXPECT_DOUBLE_EQ(ts.TimeAverage(0, 20), 1.0);   // [0,10): 0, [10,20): 2.
  EXPECT_DOUBLE_EQ(ts.TimeAverage(-10, 10), 0.0); // Entirely before.
  EXPECT_DOUBLE_EQ(ts.TimeAverage(5, 25), 1.5);   // [5,10): 0, [10,25): 2.
}

TEST(TimeSeries, RecordSameTimeOverwrites) {
  TimeSeries ts;
  ts.Record(5, 1.0);
  ts.Record(5, 2.0);
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.ValueAt(5), 2.0);
}

TEST(TimeSeries, Downsample) {
  TimeSeries ts;
  for (int i = 0; i < 1000; ++i) {
    ts.Record(i, i);
  }
  const auto points = ts.Downsample(10);
  ASSERT_EQ(points.size(), 10u);
  EXPECT_DOUBLE_EQ(points.front().first, 0.0);
  EXPECT_DOUBLE_EQ(points.back().first, 999.0);
}

// ----------------------------------------------------------------- Bitset --

TEST(DynamicBitset, SetResetCount) {
  DynamicBitset bits(200);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.Set(0));
  EXPECT_TRUE(bits.Set(63));
  EXPECT_TRUE(bits.Set(64));
  EXPECT_TRUE(bits.Set(199));
  EXPECT_FALSE(bits.Set(0));  // Already set.
  EXPECT_EQ(bits.Count(), 4u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Test(62));
  EXPECT_TRUE(bits.Reset(63));
  EXPECT_FALSE(bits.Reset(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitset, IncrementalCountMatchesPopcount) {
  DynamicBitset bits(5000);
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t idx = static_cast<std::size_t>(rng.NextBelow(5000));
    if (rng.NextDouble() < 0.6) {
      bits.Set(idx);
    } else {
      bits.Reset(idx);
    }
  }
  EXPECT_EQ(bits.Count(), bits.RecountSlow());
}

TEST(DynamicBitset, ClearAll) {
  DynamicBitset bits(100);
  for (std::size_t i = 0; i < 100; i += 3) {
    bits.Set(i);
  }
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_EQ(bits.RecountSlow(), 0u);
}


// ---------------------------------------------------------------- Logging --

TEST(Logging, CheckFailureAborts) {
  EXPECT_DEATH({ SILOD_CHECK(1 == 2) << "impossible arithmetic"; }, "Check failed");
}

TEST(Logging, LevelsFilter) {
  const LogLevel saved = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SILOD_LOG(Info) << "suppressed";  // Must not crash; output filtered.
  SetMinLogLevel(saved);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "I");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "F");
}

// ------------------------------------------------------------------ Table --

TEST(Table, FmtFormats) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(42.0, 0), "42");
  EXPECT_EQ(FmtSci(0.000095, 1), "9.5e-05");
}

// --------------------------------------------------------------- Topology --

TEST(Topology, ParseToSpecRoundTrip) {
  const Result<ClusterTopology> parsed =
      ClusterTopology::Parse("rack0=0-3;rack1=4-7;loss-bound=0.25");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_zones(), 2);
  EXPECT_EQ(parsed->zones()[0].name, "rack0");
  EXPECT_EQ(parsed->zones()[1].first_server, 4);
  EXPECT_DOUBLE_EQ(parsed->loss_bound(), 0.25);

  const Result<ClusterTopology> again = ClusterTopology::Parse(parsed->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *parsed);
}

TEST(Topology, ParseRejectsOverlapAndBadBound) {
  EXPECT_FALSE(ClusterTopology::Parse("a=0-3;b=2-5").ok());
  EXPECT_FALSE(ClusterTopology::Parse("a=3-1").ok());
  EXPECT_FALSE(ClusterTopology::Parse("a=0-3;loss-bound=1.5").ok());
  EXPECT_FALSE(ClusterTopology::Parse("a=0-3;a=4-7").ok());
}

TEST(Topology, GpuTypeParseAndRoundTrip) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse(
      "rack0=0-3;gpu-type name=v100 count=64 speed=1;gpu-type name=k80 count=32 speed=0.45");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->has_gpu_types());
  ASSERT_EQ(parsed->gpu_types().size(), 2u);
  EXPECT_EQ(parsed->gpu_types()[0].name, "v100");
  EXPECT_EQ(parsed->gpu_types()[1].count, 32);
  EXPECT_DOUBLE_EQ(parsed->gpu_types()[1].speed, 0.45);
  EXPECT_EQ(parsed->GpuTypeIndex("k80"), 1);
  EXPECT_EQ(parsed->GpuTypeIndex("a100"), -1);
  EXPECT_EQ(parsed->TotalTypedGpus(), 96);

  const Result<ClusterTopology> again = ClusterTopology::Parse(parsed->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *parsed);
}

TEST(Topology, GpuTypeOnlySpecRoundTripsWithoutZones) {
  const Result<ClusterTopology> parsed =
      ClusterTopology::Parse("gpu-type name=a100 count=8 speed=2.5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());  // No failure zones...
  EXPECT_TRUE(parsed->has_gpu_types());  // ...but a typed fleet.
  const Result<ClusterTopology> again = ClusterTopology::Parse(parsed->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(*again, *parsed);
}

TEST(Topology, GpuTypeSpeedSurvivesToSpecExactly) {
  // 0.1 has no exact binary representation; the spec must still round-trip the
  // speed bit-for-bit (FormatSpeed falls back to %.17g when %g is lossy).
  ClusterTopology typed =
      *ClusterTopology::Parse("gpu-type name=t count=4 speed=0.30000000000000004");
  const Result<ClusterTopology> again = ClusterTopology::Parse(typed.ToSpec());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->gpu_types()[0].speed, 0.1 + 0.2);
}

TEST(Topology, GpuTypeParseRejectsMalformedEntries) {
  // {spec, why it must be rejected}
  const char* kRejects[] = {
      "gpu-type count=4 speed=1",                                // missing name
      "gpu-type name=v100 speed=1",                              // missing count
      "gpu-type name=v100 count=0 speed=1",                      // zero count
      "gpu-type name=v100 count=-2 speed=1",                     // negative count
      "gpu-type name=v100 count=4 speed=0",                      // zero speed
      "gpu-type name=v100 count=4 speed=-1",                     // negative speed
      "gpu-type name=v100 count=4 speed=fast",                   // non-numeric speed
      "gpu-type name=v100 count=many speed=1",                   // non-numeric count
      "gpu-type name=v100 count=4 flavor=large",                 // unknown key
      "gpu-type name=v100 count=4;gpu-type name=v100 count=2",   // duplicate name
  };
  for (const char* spec : kRejects) {
    EXPECT_FALSE(ClusterTopology::Parse(spec).ok()) << spec;
  }
}

TEST(Topology, CoverAddsSingletonZonesForUncoveredServers) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse("rack0=0-3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->Covers(6));
  EXPECT_EQ(parsed->ZoneOf(5), -1);

  const ClusterTopology covered = parsed->Cover(6);
  EXPECT_TRUE(covered.Covers(6));
  ASSERT_EQ(covered.num_zones(), 3);
  EXPECT_EQ(covered.zones()[1].name, "srv4");
  EXPECT_EQ(covered.zones()[2].size(), 1);
  EXPECT_EQ(covered.ZoneOf(2), 0);
  EXPECT_EQ(covered.ZoneOf(5), 2);
  // Identity when already covering.
  EXPECT_EQ(covered.Cover(6), covered);
}

TEST(Topology, ValidateRejectsOutOfRangeZones) {
  const Result<ClusterTopology> parsed = ClusterTopology::Parse("rack0=0-3;rack1=4-7");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Validate(8).ok());
  EXPECT_FALSE(parsed->Validate(6).ok());
}

// ---------------------------------------------------------------- Backoff --

TEST(Backoff, JitterlessSequenceIsExactlyBaseTimesPowersCapped) {
  BackoffOptions options;
  options.base = 0.002;
  options.cap = 0.1;
  Backoff backoff(options);
  // base, base*2, base*4, ... capped at 0.1 — bit-identical to the
  // historical loader retry loop (first delay == base).
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.002);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.004);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.008);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.016);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.032);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.064);
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.1);  // 0.128 capped.
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.1);  // Stays at the cap.
  EXPECT_FALSE(backoff.exhausted());           // max_attempts == 0: unbounded.
}

TEST(Backoff, MaxAttemptsExhaustsAndResetRestarts) {
  BackoffOptions options;
  options.base = 0.01;
  options.cap = 1.0;
  options.max_attempts = 3;
  Backoff backoff(options);
  EXPECT_FALSE(backoff.exhausted());
  backoff.NextDelay();
  backoff.NextDelay();
  EXPECT_FALSE(backoff.exhausted());
  backoff.NextDelay();
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_EQ(backoff.attempts(), 3);
  backoff.Reset();
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_DOUBLE_EQ(backoff.NextDelay(), 0.01);  // Back to the base.
}

TEST(Backoff, JitterScalesEachDelayWithinTheHalfWidth) {
  BackoffOptions options;
  options.base = 0.01;
  options.cap = 10.0;
  options.jitter = 0.25;
  Rng rng(42);
  Backoff backoff(options, &rng);
  double expected_center = 0.01;
  for (int i = 0; i < 8; ++i) {
    const Seconds delay = backoff.NextDelay();
    EXPECT_GE(delay, expected_center * 0.75) << "attempt " << i;
    EXPECT_LE(delay, expected_center * 1.25) << "attempt " << i;
    expected_center *= 2;
  }
}

TEST(Backoff, JitterIsDeterministicPerRngSeed) {
  BackoffOptions options;
  options.jitter = 0.5;
  Rng rng_a(7);
  Rng rng_b(7);
  Backoff a(options, &rng_a);
  Backoff b(options, &rng_b);
  for (int i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDelay(), b.NextDelay()) << "attempt " << i;
  }
}

}  // namespace
}  // namespace silod
