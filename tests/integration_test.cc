// End-to-end integration tests: scaled-down versions of the paper's headline
// claims, run through the full public API.  Absolute numbers are ours; the
// assertions check the *shape* of every result the paper reports.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/common/units.h"
#include "src/core/silod_scheduler.h"
#include "src/core/system.h"
#include "src/estimator/ioperf.h"

namespace silod {
namespace {

// Scaled micro-benchmark (§7.1.1 at ~1/20 size so the fine engine runs in
// milliseconds): 2 ResNet-50 + 2 EfficientNetB1 (65 GB image datasets) and a
// 4-GPU BERT job on a 1 TB corpus; 100 GB cache, 10 MB/s egress.
Trace ScaledMicroTrace() {
  const ModelZoo zoo;
  Trace trace;
  auto add = [&](const char* model, int gpus, Bytes size, double epochs) {
    const DatasetId d = trace.catalog.Add(std::string(model) + std::to_string(trace.jobs.size()),
                                          size, MB(16));
    JobSpec job = MakeJob(static_cast<JobId>(trace.jobs.size()), zoo, model, gpus, d, 1.0, 0);
    job.total_bytes = static_cast<Bytes>(epochs * static_cast<double>(size));
    trace.jobs.push_back(job);
  };
  add("ResNet-50", 1, GB(65), 13);
  add("ResNet-50", 1, GB(65), 13);
  add("EfficientNetB1", 1, GB(65), 10);
  add("EfficientNetB1", 1, GB(65), 10);
  add("BERT", 4, TB(1.0), 0.07);
  return trace;
}

SimConfig ScaledMicroCluster() {
  SimConfig config;
  config.resources.total_gpus = 8;
  config.resources.total_cache = GB(100);
  config.resources.remote_io = MBps(10);
  config.resources.num_servers = 2;
  config.reschedule_period = Minutes(10);
  return config;
}

SimResult RunMicro(CacheSystem cache, EngineKind engine,
                   SchedulerKind scheduler = SchedulerKind::kFifo) {
  const Trace trace = ScaledMicroTrace();
  ExperimentConfig config;
  config.scheduler = scheduler;
  config.cache = cache;
  config.sim = ScaledMicroCluster();
  config.engine = engine;
  return RunExperiment(trace, config);
}

// Table 6 / Fig. 10 shape: under FIFO, SiloD beats every baseline on both
// average JCT and makespan.
TEST(Integration, MicrobenchmarkSiloDWinsOnJctAndMakespan) {
  const SimResult silod = RunMicro(CacheSystem::kSiloD, EngineKind::kFine);
  for (const CacheSystem baseline :
       {CacheSystem::kAlluxio, CacheSystem::kCoorDl, CacheSystem::kQuiver}) {
    const SimResult other = RunMicro(baseline, EngineKind::kFine);
    EXPECT_LT(silod.AvgJctSeconds(), other.AvgJctSeconds() * 1.001)
        << CacheSystemName(baseline);
    EXPECT_LT(silod.makespan, other.makespan * 1.001) << CacheSystemName(baseline);
  }
}

// Table 6's ordering among the baselines: Quiver close to SiloD, CoorDL and
// Alluxio clearly behind.
TEST(Integration, MicrobenchmarkBaselineOrdering) {
  const double silod = RunMicro(CacheSystem::kSiloD, EngineKind::kFine).AvgJctSeconds();
  const double quiver = RunMicro(CacheSystem::kQuiver, EngineKind::kFine).AvgJctSeconds();
  const double coordl = RunMicro(CacheSystem::kCoorDl, EngineKind::kFine).AvgJctSeconds();
  EXPECT_LT(silod, quiver);
  EXPECT_LT(quiver, coordl);
}

// The paper's own validation methodology: the flow simulator tracks the fine
// (mini-batch) engine within a few percent on this trace.
TEST(Integration, MicrobenchmarkSimulatorFidelity) {
  for (const CacheSystem cache : {CacheSystem::kSiloD, CacheSystem::kCoorDl}) {
    const SimResult fine = RunMicro(cache, EngineKind::kFine);
    const SimResult flow = RunMicro(cache, EngineKind::kFlow);
    EXPECT_NEAR(flow.AvgJctSeconds(), fine.AvgJctSeconds(), 0.06 * fine.AvgJctSeconds())
        << CacheSystemName(cache);
    EXPECT_NEAR(flow.makespan, fine.makespan, 0.09 * fine.makespan) << CacheSystemName(cache);
  }
}

// §4's claim: the SiloDPerf estimator predicts measured steady-state
// throughput within ~3%.  Measure a single job's post-warmup epoch time in
// the fine engine and compare against Eq. 4.
TEST(Integration, EstimatorErrorWithinThreePercent) {
  const ModelZoo zoo;
  for (const double cache_frac : {0.25, 0.5, 0.75}) {
    Trace trace;
    const Bytes d = GB(10);
    const DatasetId ds = trace.catalog.Add("x", d, MB(16));
    JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, ds, 1.0, 0);
    job.total_bytes = 6 * d;
    trace.jobs.push_back(job);

    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.engine = EngineKind::kFine;
    config.sim.resources.total_gpus = 1;
    config.sim.resources.total_cache = static_cast<Bytes>(cache_frac * static_cast<double>(d));
    config.sim.resources.remote_io = MBps(20);
    const SimResult result = RunExperiment(trace, config);

    const BytesPerSec predicted = SiloDPerfThroughput(
        job.ideal_io, MBps(20), config.sim.resources.total_cache, d);
    // Steady state: total = cold epoch at 20 MB/s + 5 epochs at `predicted`.
    const double cold = static_cast<double>(d) / MBps(20);
    const double measured_steady = 5.0 * static_cast<double>(d) /
                                   (result.jobs[0].Jct() - cold);
    EXPECT_NEAR(measured_steady, predicted, 0.03 * predicted)
        << "cache fraction " << cache_frac;
  }
}

// Fig. 14a shape: SiloD's advantage over Alluxio shrinks as egress bandwidth
// grows, and disappears when remote IO stops being the bottleneck.
TEST(Integration, BandwidthSweepNarrowsTheGap) {
  std::map<double, double> gain;  // egress MB/s -> JCT(Alluxio)/JCT(SiloD).
  for (const double egress : {5.0, 20.0, 400.0}) {
    const Trace trace = ScaledMicroTrace();
    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.sim = ScaledMicroCluster();
    config.sim.resources.remote_io = MBps(egress);
    config.engine = EngineKind::kFlow;
    const double silod = RunExperiment(trace, config).AvgJctSeconds();
    config.cache = CacheSystem::kAlluxio;
    const double alluxio = RunExperiment(trace, config).AvgJctSeconds();
    gain[egress] = alluxio / silod;
  }
  EXPECT_GT(gain[5.0], gain[400.0]);
  EXPECT_GE(gain[20.0], gain[400.0] * 0.99);
  EXPECT_NEAR(gain[400.0], 1.0, 0.05);  // No bottleneck, no difference.
}

// Fig. 14b shape: faster GPUs raise IO demand and widen SiloD's win over the
// best baseline.
TEST(Integration, FasterGpusWidenTheGap) {
  std::map<double, double> gain;
  for (const double scale : {1.0, 4.0}) {
    const ModelZoo zoo;
    Trace trace;
    auto add = [&](const char* model, Bytes size, double epochs) {
      const DatasetId d =
          trace.catalog.Add(std::string(model) + std::to_string(trace.jobs.size()), size, MB(16));
      JobSpec job = MakeJob(static_cast<JobId>(trace.jobs.size()), zoo, model, 1, d, 1.0, 0,
                            scale);
      job.total_bytes = static_cast<Bytes>(epochs * static_cast<double>(size));
      trace.jobs.push_back(job);
    };
    add("ResNet-50", GB(65), 13);
    add("ResNet-50", GB(65), 13);
    add("EfficientNetB1", GB(65), 10);
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kGavel;
    config.cache = CacheSystem::kSiloD;
    config.sim = ScaledMicroCluster();
    // At 1x the 300 MB/s egress covers the aggregate demand (297 MB/s): no
    // bottleneck, so the cache system barely matters.  At 4x the demand
    // quadruples and remote IO binds — the regime where co-design pays.
    config.sim.resources.remote_io = MBps(300);
    config.engine = EngineKind::kFlow;
    const double silod = RunExperiment(trace, config).AvgJctSeconds();
    config.cache = CacheSystem::kQuiver;
    const double quiver = RunExperiment(trace, config).AvgJctSeconds();
    gain[scale] = quiver / silod;
  }
  EXPECT_NEAR(gain[1.0], 1.0, 0.05);  // No bottleneck: systems tie.
  EXPECT_GT(gain[4.0], gain[1.0] + 0.02);
}

// Fig. 13 shape: Gavel+SiloD achieves higher average fairness than Gavel on
// any independent cache system, and the §7.2 ablation (cache-only SiloD)
// degrades fairness.
TEST(Integration, FairnessOrderingUnderGavel) {
  const double silod =
      RunMicro(CacheSystem::kSiloD, EngineKind::kFlow, SchedulerKind::kGavel).AvgFairness();
  const double quiver =
      RunMicro(CacheSystem::kQuiver, EngineKind::kFlow, SchedulerKind::kGavel).AvgFairness();
  const double alluxio =
      RunMicro(CacheSystem::kAlluxio, EngineKind::kFlow, SchedulerKind::kGavel).AvgFairness();
  EXPECT_GT(silod, quiver);
  EXPECT_GT(silod, alluxio);

  const Trace trace = ScaledMicroTrace();
  ExperimentConfig ablation;
  ablation.scheduler = SchedulerKind::kGavel;
  ablation.cache = CacheSystem::kSiloD;
  ablation.scheduler_options.manage_remote_io = false;
  ablation.sim = ScaledMicroCluster();
  ablation.engine = EngineKind::kFlow;
  const double cache_only = RunExperiment(trace, ablation).AvgFairness();
  EXPECT_LT(cache_only, silod);
}

// Fig. 15 shape: dataset sharing reduces average JCT.
TEST(Integration, DatasetSharingHelps) {
  std::map<double, double> jct;
  for (const double share : {0.0, 1.0}) {
    TraceOptions options;
    options.num_jobs = 30;
    options.median_duration = Minutes(30);
    options.mean_interarrival = Minutes(1);
    options.share_fraction = share;
    options.seed = 21;
    const Trace trace = TraceGenerator(options).Generate();
    ExperimentConfig config;
    config.scheduler = SchedulerKind::kSjf;
    config.cache = CacheSystem::kSiloD;
    config.sim.resources.total_gpus = 16;
    config.sim.resources.total_cache = TB(1);
    config.sim.resources.remote_io = MBps(100);
    config.engine = EngineKind::kFlow;
    jct[share] = RunExperiment(trace, config).AvgJctSeconds();
  }
  EXPECT_LT(jct[1.0], jct[0.0]);
}

// §7.4 / Fig. 16 shape: under curriculum learning, LRU no longer thrashes —
// its JCT is within a few percent of uniform caching.
TEST(Integration, CurriculumMakesLruMatchUniform) {
  auto run = [&](CacheSystem cache) {
    const ModelZoo zoo;
    Trace trace;
    const Bytes d = GB(10);
    const DatasetId ds = trace.catalog.Add("sorted-by-difficulty", d, MB(16));
    JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, ds, 1.0, 0);
    job.total_bytes = 5 * d;
    job.curriculum = true;
    job.curriculum_params.starting_percent = 0.04;
    job.curriculum_params.alpha = 1.9;
    job.curriculum_params.step = 100;  // Iterations are blocks here.
    job.regular = false;
    trace.jobs.push_back(job);
    ExperimentConfig config;
    config.cache = cache;
    config.engine = EngineKind::kFine;
    config.sim.resources.total_gpus = 1;
    config.sim.resources.total_cache = GB(5);
    config.sim.resources.remote_io = MBps(20);
    return RunExperiment(trace, config).AvgJctSeconds();
  };
  const double uniform = run(CacheSystem::kSiloD);
  const double lru = run(CacheSystem::kAlluxio);
  EXPECT_NEAR(lru, uniform, 0.10 * uniform);
}

}  // namespace
}  // namespace silod
