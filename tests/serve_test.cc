// Tests for the silodd subsystem (docs/MODEL.md §11-§12): the shared framing
// layer (including hostile/torn input), the text protocol, dirty-set
// tracking, the delta water-fill's bit-identity contract, admission-control
// edges, epoch batching, policy hot-reload, the trace-replay cross-check,
// the Unix-socket transport, and the crash-safety stack — write-ahead
// journal, torn-tail truncation, rid dedup, checkpoint compaction, and the
// recovery bit-identity contract.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "src/common/framing.h"
#include "src/common/units.h"
#include "src/core/data_manager.h"
#include "src/core/dirty_tracker.h"
#include "src/core/policy_registry.h"
#include "src/sched/delta_fill.h"
#include "src/sched/fifo.h"
#include "src/sched/greedy.h"
#include "src/sched/sjf.h"
#include "src/serve/journal.h"
#include "src/serve/server.h"
#include "src/serve/service.h"
#include "src/sim/flow_engine.h"
#include "src/sim/serve_replay.h"
#include "src/workload/trace_gen.h"

namespace silod {
namespace {

// ---------------------------------------------------------------------------
// Framing (satellite: one framing implementation for rt and serve).

TEST(Framing, RoundTripsTypeAndPayload) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  ASSERT_TRUE(WriteRawFrame(fds[0], 7, "hello frame").ok());
  Result<RawFrame> frame = ReadRawFrame(fds[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(7, frame->type);
  EXPECT_EQ("hello frame", frame->payload);
  close(fds[0]);
  close(fds[1]);
}

TEST(Framing, PeerCloseIsOutOfRange) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  close(fds[0]);
  Result<RawFrame> frame = ReadRawFrame(fds[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kOutOfRange, frame.status().code());
  close(fds[1]);
}

TEST(Framing, RejectsOversizeBody) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string big(128, 'x');
  EXPECT_FALSE(WriteRawFrame(fds[0], 1, big, /*max_body=*/64).ok());
  close(fds[0]);
  close(fds[1]);
}

// Hostile input: a peer that dies mid-length-word must read as a mid-frame
// EOF (Internal), not as a clean close (OutOfRange) — the server logs the
// former and silently accepts the latter.
TEST(Framing, TornLengthWordIsMidFrameEof) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::uint8_t partial[2] = {0x05, 0x00};  // 2 of the 4 length bytes.
  ASSERT_EQ(2, ::send(fds[0], partial, 2, 0));
  close(fds[0]);
  Result<RawFrame> frame = ReadRawFrame(fds[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kInternal, frame.status().code());
  close(fds[1]);
}

TEST(Framing, TornPayloadIsMidFrameEof) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  std::uint8_t header[4];
  PutU32(header, 10);  // Declares a 10-byte body...
  ASSERT_EQ(4, ::send(fds[0], header, 4, 0));
  ASSERT_EQ(3, ::send(fds[0], "abc", 3, 0));  // ... delivers 3, dies.
  close(fds[0]);
  Result<RawFrame> frame = ReadRawFrame(fds[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(StatusCode::kInternal, frame.status().code());
  close(fds[1]);
}

// An absurd declared length must be rejected from the 4-byte header alone —
// before any allocation — as must a zero length (no room for the type byte).
TEST(Framing, AbsurdAndZeroDeclaredLengthsRejected) {
  for (const std::uint32_t length : {0xFFFFFFFFu, 0u}) {
    int fds[2];
    ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::uint8_t header[4];
    PutU32(header, length);
    ASSERT_EQ(4, ::send(fds[0], header, 4, 0));
    Result<RawFrame> frame = ReadRawFrame(fds[1]);
    ASSERT_FALSE(frame.ok()) << "length " << length;
    EXPECT_EQ(StatusCode::kInternal, frame.status().code());
    close(fds[0]);
    close(fds[1]);
  }
}

// Garbage after a valid frame corrupts only the stream from that point on:
// the first frame still parses, the garbage (whose first 4 bytes decode as
// an absurd length) is rejected instead of being allocated or spun on.
TEST(Framing, GarbageMidStreamDoesNotCorruptEarlierFrames) {
  int fds[2];
  ASSERT_EQ(0, socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  ASSERT_TRUE(WriteRawFrame(fds[0], 3, "good frame").ok());
  const std::string garbage(32, '\xEE');  // Length word decodes to ~4 GB.
  ASSERT_EQ(static_cast<ssize_t>(garbage.size()),
            ::send(fds[0], garbage.data(), garbage.size(), 0));
  close(fds[0]);
  Result<RawFrame> first = ReadRawFrame(fds[1]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(3, first->type);
  EXPECT_EQ("good frame", first->payload);
  Result<RawFrame> second = ReadRawFrame(fds[1]);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(StatusCode::kInternal, second.status().code());
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Protocol.

TEST(ServeProto, EscapeRoundTripsHostileBytes) {
  const std::string hostile = "a b%c\n\t=\x01\x7f";
  Result<std::string> back = UnescapeToken(EscapeToken(hostile));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(hostile, *back);
}

TEST(ServeProto, RequestRoundTrips) {
  ServeRequest request;
  request.verb = "submit";
  request.args["key"] = "job with spaces";
  request.args["t"] = "12.5";
  Result<ServeRequest> back = ServeRequest::Decode(request.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ("submit", back->verb);
  EXPECT_EQ("job with spaces", back->args.at("key"));
  EXPECT_EQ(12.5, *back->GetDouble("t"));
}

TEST(ServeProto, ResponseCarriesErrorsAndFields) {
  ServeResponse response = ServeResponse::FromStatus(Status::NotFound("no job 'x'"));
  Result<ServeResponse> back = ServeResponse::Decode(response.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_FALSE(back->ok());
  EXPECT_EQ(StatusCode::kNotFound, back->code);
  EXPECT_EQ("no job 'x'", back->error);
}

TEST(ServeProto, RejectsDuplicateKeysAndBadEscapes) {
  EXPECT_FALSE(ServeRequest::Decode("submit key=a key=b").ok());
  EXPECT_FALSE(ServeRequest::Decode("submit key=%zz").ok());
  EXPECT_FALSE(ServeRequest::Decode("").ok());
}

// ---------------------------------------------------------------------------
// Dirty tracking.

TEST(DirtyTracker, TracksMarksAndFullInvalidations) {
  DirtyTracker tracker;
  EXPECT_TRUE(tracker.empty());
  tracker.MarkJob(3);
  tracker.MarkJob(1);
  tracker.MarkDataset(2);
  EXPECT_EQ((std::vector<JobId>{1, 3}), tracker.DirtyJobs());
  EXPECT_EQ(3u, tracker.events());
  tracker.MarkAll("topology change");
  EXPECT_TRUE(tracker.all_dirty());
  EXPECT_EQ("topology change", tracker.all_dirty_reason());
  tracker.Clear();
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(0u, tracker.events());
  EXPECT_EQ(4u, tracker.lifetime_marks());
  EXPECT_EQ(1u, tracker.lifetime_full_invalidations());
}

TEST(DirtyTracker, DataManagerChangeListenerMarksDatasets) {
  DataManager dm(GB(10), MBps(100), /*seed=*/7, /*num_shards=*/2);
  DirtyTracker tracker;
  dm.SetChangeListener([&tracker](DatasetId dataset) {
    if (dataset == kInvalidDataset) {
      tracker.MarkAll("cache-wide event");
    } else {
      tracker.MarkDataset(dataset);
    }
  });
  const Dataset dataset = MakeDataset(0, "d0", GB(4), MB(64));
  ASSERT_TRUE(dm.AllocateCacheSize(dataset, GB(2)).ok());
  EXPECT_EQ((std::vector<DatasetId>{0}), tracker.DirtyDatasets());
  EXPECT_FALSE(tracker.all_dirty());
  dm.CrashShard(0);
  EXPECT_TRUE(tracker.all_dirty());
  tracker.Clear();
  dm.RecoverShard(0);
  EXPECT_TRUE(tracker.all_dirty());
}

// ---------------------------------------------------------------------------
// Delta water-fill: the bit-identity anchor.

class DeltaFillTest : public ::testing::Test {
 protected:
  DeltaFillTest() {
    snapshot_.catalog = &catalog_;
    snapshot_.resources.total_gpus = 8;
    snapshot_.resources.total_cache = GB(900);
    snapshot_.resources.remote_io = MBps(200);
    snapshot_.resources.num_servers = 4;
  }

  JobId AddJob(int gpus, Bytes dataset_size, BytesPerSec ideal, Seconds submit,
               bool running = false) {
    const JobId id = static_cast<JobId>(specs_.size());
    const DatasetId d = catalog_.Add("d" + std::to_string(id), dataset_size, MB(64));
    auto spec = std::make_unique<JobSpec>();
    spec->id = id;
    spec->name = "j" + std::to_string(id);
    spec->num_gpus = gpus;
    spec->dataset = d;
    spec->ideal_io = ideal;
    spec->total_bytes = static_cast<Bytes>(ideal * Hours(10));
    spec->submit_time = submit;
    running_.push_back(running);
    specs_.push_back(std::move(spec));
    return id;
  }

  Snapshot& Refresh() {
    snapshot_.jobs.clear();
    for (std::size_t i = 0; i < specs_.size(); ++i) {
      JobView view;
      view.spec = specs_[i].get();
      view.remaining_bytes = remaining_.count(specs_[i]->id) > 0
                                 ? remaining_[specs_[i]->id]
                                 : specs_[i]->total_bytes;
      view.effective_cache = effective_.count(specs_[i]->id) > 0 ? effective_[specs_[i]->id] : 0;
      view.running = running_[i];
      snapshot_.jobs.push_back(view);
    }
    return snapshot_;
  }

  AllocationPlan BatchSolve(DeltaOrderKind kind) {
    std::shared_ptr<StoragePolicy> storage = std::make_shared<SiloDGreedyStorage>(true);
    std::shared_ptr<Scheduler> scheduler;
    if (kind == DeltaOrderKind::kFifo) {
      scheduler = std::make_shared<FifoScheduler>(storage);
    } else {
      scheduler = std::make_shared<SjfScheduler>(
          storage, kind == DeltaOrderKind::kSjfSiloD ? SjfScoreMode::kSiloD
                                                     : SjfScoreMode::kComputeOnly);
    }
    return scheduler->Schedule(snapshot_);
  }

  DatasetCatalog catalog_;
  std::vector<std::unique_ptr<JobSpec>> specs_;
  std::vector<bool> running_;
  std::map<JobId, Bytes> remaining_;
  std::map<JobId, Bytes> effective_;
  Snapshot snapshot_;
};

TEST_F(DeltaFillTest, MatchesBatchAcrossIncrementalMutations) {
  for (const DeltaOrderKind kind :
       {DeltaOrderKind::kFifo, DeltaOrderKind::kSjfCompute, DeltaOrderKind::kSjfSiloD}) {
    specs_.clear();
    running_.clear();
    remaining_.clear();
    effective_.clear();
    catalog_ = DatasetCatalog();
    DeltaWaterFill delta(kind, /*manage_remote_io=*/true);

    // Round 1: three jobs, cold solve.
    AddJob(2, GB(400), MBps(120), 0);
    AddJob(1, GB(800), MBps(60), 10);
    AddJob(4, TB(1.5), MBps(200), 20);
    Refresh();
    EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {0, 1, 2}), BatchSolve(kind)))
        << DeltaOrderKindName(kind) << " round 1";

    // Round 2: one arrival, only it is dirty.
    const JobId late = AddJob(1, GB(200), MBps(90), 30);
    Refresh();
    EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {late}), BatchSolve(kind)))
        << DeltaOrderKindName(kind) << " round 2";

    // Round 3: progress + cache effectiveness moved on job 0 (marked dirty)
    // and sneakily on job 1 (NOT marked — the input fingerprint must catch
    // it, the dirty set is never trusted for correctness).
    remaining_[0] = GB(100);
    effective_[0] = GB(50);
    effective_[1] = GB(25);
    Refresh();
    EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {0}), BatchSolve(kind)))
        << DeltaOrderKindName(kind) << " round 3";

    // Round 4: a completion (job leaves the snapshot entirely).
    specs_.erase(specs_.begin() + 1);
    running_.erase(running_.begin() + 1);
    Refresh();
    EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {1}), BatchSolve(kind)))
        << DeltaOrderKindName(kind) << " round 4";

    // Round 5: cluster resources changed — all caches must self-invalidate.
    snapshot_.resources.total_cache = GB(300);
    Refresh();
    EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {}), BatchSolve(kind)))
        << DeltaOrderKindName(kind) << " round 5";
    EXPECT_GT(delta.jobs_reused(), 0u);
  }
}

TEST_F(DeltaFillTest, MatchesBatchUnderTopology) {
  AddJob(2, GB(400), MBps(120), 0);
  AddJob(1, GB(800), MBps(60), 10);
  Result<ClusterTopology> topology = ClusterTopology::Parse("rack0=0-1;rack1=2-3");
  ASSERT_TRUE(topology.ok());
  snapshot_.topology = &*topology;
  effective_[0] = GB(100);
  Refresh();
  DeltaWaterFill delta(DeltaOrderKind::kFifo, true);
  EXPECT_TRUE(PlansBitIdentical(delta.Solve(snapshot_, {0, 1}),
                                BatchSolve(DeltaOrderKind::kFifo)));
  // Digest agrees with bit-identity.
  EXPECT_EQ(PlanDigest(delta.Solve(snapshot_, {})),
            PlanDigest(BatchSolve(DeltaOrderKind::kFifo)));
}

TEST(PlanDigest, DistinguishesPlans) {
  AllocationPlan a;
  a.jobs[0].running = true;
  a.jobs[0].gpus = 2;
  AllocationPlan b = a;
  EXPECT_TRUE(PlansBitIdentical(a, b));
  EXPECT_EQ(PlanDigest(a), PlanDigest(b));
  b.jobs[0].gpus = 3;
  EXPECT_FALSE(PlansBitIdentical(a, b));
  EXPECT_NE(PlanDigest(a), PlanDigest(b));
}

// ---------------------------------------------------------------------------
// Service: request handling, admission edges, identity after any sequence.

ServiceConfig SmallCluster(const std::string& policy) {
  ServiceConfig config;
  config.policy = policy;
  config.resources.total_gpus = 8;
  config.resources.total_cache = GB(900);
  config.resources.remote_io = MBps(200);
  config.resources.num_servers = 4;
  return config;
}

ServeRequest Req(const std::string& verb,
                 std::initializer_list<std::pair<const char*, std::string>> args) {
  ServeRequest request;
  request.verb = verb;
  for (const auto& [key, value] : args) {
    request.args[key] = value;
  }
  return request;
}

ServeRequest SubmitReq(const std::string& key, double t, int gpus, Bytes dataset_size) {
  return Req("submit", {{"key", key},
                        {"t", std::to_string(t)},
                        {"gpus", std::to_string(gpus)},
                        {"ideal-io", "100000000"},
                        {"total-bytes", "1000000000000"},
                        {"dataset", "ds-" + key},
                        {"dataset-size", std::to_string(dataset_size)}});
}

class ServiceTest : public ::testing::Test {
 protected:
  void Start(ServiceConfig config) {
    Result<std::unique_ptr<ServiceState>> service = ServiceState::Create(std::move(config));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
  }

  ServeResponse Must(const ServeRequest& request) {
    ServeResponse response = service_->Handle(request);
    EXPECT_TRUE(response.ok()) << request.verb << ": " << response.error;
    return response;
  }

  // The identity anchor: the daemon's current plan must be bit-identical to
  // a fresh batch scheduler solving the daemon's own snapshot.
  void ExpectBatchIdentity() {
    Result<std::shared_ptr<Scheduler>> batch =
        MakeSchedulerByName(service_->policy_name(), SchedulerOptions{});
    ASSERT_TRUE(batch.ok());
    const Snapshot snapshot = service_->MakeSnapshot();
    const AllocationPlan expected = (*batch)->Schedule(snapshot);
    EXPECT_TRUE(PlansBitIdentical(service_->PlanNow(), expected))
        << "daemon plan diverged from batch " << service_->policy_name();
  }

  std::unique_ptr<ServiceState> service_;
};

TEST_F(ServiceTest, IdentityHoldsAfterAnySubmitCompleteCancelSequence) {
  for (const char* policy : {"fifo+silod", "sjf+silod", "fifo+coordl"}) {
    Start(SmallCluster(policy));
    Must(SubmitReq("a", 0, 2, GB(400)));
    ExpectBatchIdentity();
    Must(SubmitReq("b", 10, 1, GB(800)));
    Must(SubmitReq("c", 20, 4, TB(1.5)));
    ExpectBatchIdentity();
    Must(Req("progress", {{"key", "a"},
                          {"t", "100"},
                          {"remaining", "500000000000"},
                          {"effective", "50000000000"}}));
    ExpectBatchIdentity();
    Must(Req("complete", {{"key", "b"}, {"t", "200"}}));
    ExpectBatchIdentity();
    Must(SubmitReq("d", 250, 1, GB(200)));
    Must(Req("cancel", {{"key", "c"}, {"t", "300"}}));
    ExpectBatchIdentity();
  }
}

TEST_F(ServiceTest, DeltaSolvesAreUsedAndCounted) {
  Start(SmallCluster("sjf+silod"));
  ASSERT_TRUE(service_->planner().delta_capable());
  Must(SubmitReq("a", 0, 1, GB(400)));
  Must(SubmitReq("b", 1, 1, GB(400)));
  Must(Req("complete", {{"key", "a"}, {"t", "50"}}));
  EXPECT_GE(service_->planner().delta_solves(), 2u);  // Arrival b + completion.
  EXPECT_EQ(1u, service_->planner().full_solves());   // The cold initial solve.
  ExpectBatchIdentity();
}

TEST_F(ServiceTest, AdmissionEdges) {
  ServiceConfig config = SmallCluster("fifo+silod");
  config.admission.max_gpu_load = 1.0;
  config.admission.max_queue = 1;
  Start(std::move(config));

  // Exactly at the threshold (8/8) admits.
  ServeResponse r1 = Must(SubmitReq("fills", 0, 8, GB(100)));
  EXPECT_EQ("admitted", r1.fields.at("decision"));

  // Strictly past it queues.
  ServeResponse r2 = Must(SubmitReq("queued", 1, 1, GB(100)));
  EXPECT_EQ("queued", r2.fields.at("decision"));

  // Queue full: rejected cleanly, key not burned.
  ServeResponse r3 = service_->Handle(SubmitReq("rejected", 2, 1, GB(100)));
  EXPECT_FALSE(r3.ok());
  EXPECT_EQ(StatusCode::kResourceExhausted, r3.code);

  // Duplicate job id rejected cleanly without disturbing the original.
  ServeResponse dup = service_->Handle(SubmitReq("fills", 3, 1, GB(100)));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(StatusCode::kAlreadyExists, dup.code);
  EXPECT_EQ("active", Must(Req("query", {{"key", "fills"}})).fields.at("state"));

  // Cancel of a queued (never-admitted) job works and leaves no trace in the
  // scheduler; the planner was never told about it.
  ServeResponse cancel = Must(Req("cancel", {{"key", "queued"}, {"t", "4"}}));
  EXPECT_EQ("cancelled", cancel.fields.at("state"));
  EXPECT_EQ("queued", cancel.fields.at("was"));
  EXPECT_EQ(0u, service_->jobs().CountState(ServeJobState::kQueued));

  // Completion frees load and promotes the next queued submission.
  ServeResponse r4 = Must(SubmitReq("waits", 5, 2, GB(100)));
  EXPECT_EQ("queued", r4.fields.at("decision"));
  Must(Req("complete", {{"key", "fills"}, {"t", "6"}}));
  EXPECT_EQ("active", Must(Req("query", {{"key", "waits"}})).fields.at("state"));
  ExpectBatchIdentity();
}

TEST_F(ServiceTest, EpochBatchingCoalescesArrivals) {
  ServiceConfig config = SmallCluster("fifo+silod");
  config.planning.min_replan_interval = 1000;  // Nothing is due by time.
  config.planning.max_coalesced_events = 3;    // ... until 3 marks coalesce.
  Start(std::move(config));
  Must(SubmitReq("a", 0, 1, GB(100)));  // Initial all-dirty solve happens.
  const std::uint64_t solves_after_first =
      service_->planner().full_solves() + service_->planner().delta_solves();
  Must(SubmitReq("b", 1, 1, GB(100)));  // 1 pending mark: coalesced.
  Must(SubmitReq("c", 2, 1, GB(100)));  // 2 pending marks: coalesced.
  EXPECT_EQ(solves_after_first,
            service_->planner().full_solves() + service_->planner().delta_solves());
  EXPECT_GE(service_->planner().reused_plans(), 2u);
  Must(SubmitReq("d", 3, 1, GB(100)));  // 3rd mark forces the tick.
  EXPECT_EQ(solves_after_first + 1,
            service_->planner().full_solves() + service_->planner().delta_solves());
  ExpectBatchIdentity();  // A forced plan flushes the rest.
}

TEST_F(ServiceTest, ReloadPolicySwapsSchedulerAndCachePair) {
  Start(SmallCluster("fifo+silod"));
  Must(SubmitReq("a", 0, 1, GB(400)));
  Must(SubmitReq("b", 1, 1, GB(800)));
  EXPECT_EQ("fifo+silod", service_->policy_name());
  EXPECT_TRUE(service_->planner().delta_capable());

  ServeResponse reload = Must(Req("reload-policy", {{"policy", "gavel+coordl"}}));
  EXPECT_EQ("gavel+coordl", reload.fields.at("policy"));
  EXPECT_EQ("0", reload.fields.at("delta-capable"));
  const AllocationPlan& plan = service_->PlanNow();
  EXPECT_EQ(CacheModelKind::kPerJobStatic, plan.cache_model);

  // Unknown policies are rejected and the old one stays live.
  ServeResponse bad = service_->Handle(Req("reload-policy", {{"policy", "nope+silod"}}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ("gavel+coordl", service_->policy_name());

  ServeResponse back = Must(Req("reload-policy", {{"policy", "sjf+silod"}}));
  EXPECT_EQ("1", back.fields.at("delta-capable"));
  ExpectBatchIdentity();
}

TEST_F(ServiceTest, StatsAndQueryAndErrors) {
  Start(SmallCluster("fifo+silod"));
  Must(SubmitReq("a", 0, 2, GB(400)));
  ServeResponse stats = Must(Req("stats", {}));
  EXPECT_EQ("1", stats.fields.at("active"));
  EXPECT_EQ("2", stats.fields.at("gpu-demand"));
  EXPECT_EQ("fifo+silod", stats.fields.at("policy"));
  EXPECT_FALSE(service_->Handle(Req("query", {{"key", "nope"}})).ok());
  EXPECT_FALSE(service_->Handle(Req("frobnicate", {})).ok());
  EXPECT_FALSE(service_->Handle(Req("complete", {{"key", "a"}})).ok());  // No t.
  // Dataset interning: same name must agree on size.
  ServeResponse clash = service_->Handle(Req("submit", {{"key", "x"},
                                                        {"t", "1"},
                                                        {"gpus", "1"},
                                                        {"ideal-io", "1000"},
                                                        {"total-bytes", "1000"},
                                                        {"dataset", "ds-a"},
                                                        {"dataset-size", "12345"}}));
  EXPECT_FALSE(clash.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, clash.code);
}

// ---------------------------------------------------------------------------
// Trace replay cross-check (satellite: --serve-trace's engine).

TEST(ServeReplay, DaemonReportMatchesBatchEngine) {
  TraceOptions options;
  options.num_jobs = 12;
  options.mean_interarrival = Minutes(2);
  options.median_duration = Minutes(20);
  options.seed = 5;
  const Trace trace = TraceGenerator(options).Generate();
  SimConfig config;
  config.resources.total_gpus = 8;
  config.resources.total_cache = GB(900);
  config.resources.remote_io = MBps(200);
  for (const char* policy : {"fifo+silod", "sjf+silod"}) {
    Result<ReplayOutcome> outcome = ReplayTraceThroughService(
        trace, config, policy, SchedulerOptions{}, PlanningOptions{});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->jct_identical)
        << policy << "\nbatch:\n"
        << outcome->batch.ToJson() << "\nserve:\n"
        << outcome->serve.ToJson();
    EXPECT_EQ(0, outcome->serve.unfinished_jobs);
  }
}

// Heterogeneous fleet replay: the daemon must agree bit-for-bit with the
// typed batch engine — the submit verb round-trips tenants and per-type speed
// factors, the plans assign the same GPU types, and both reports carry the
// same per-tenant and per-GPU-type breakdowns.  A uniform (all speed 1.0)
// table must in turn match the untyped run exactly.
TEST(ServeReplay, TypedFleetReportMatchesBatchEngine) {
  TraceOptions options;
  options.num_jobs = 12;
  options.mean_interarrival = Minutes(2);
  options.median_duration = Minutes(20);
  options.seed = 5;
  Trace trace = TraceGenerator(options).Generate();
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].tenant = i % 2 == 0 ? "ads" : "search";
    if (i % 3 == 0) {
      trace.jobs[i].speed_factors = {{"k80", 0.8}};
    }
  }
  SimConfig config;
  config.resources.total_gpus = 8;
  config.resources.total_cache = GB(900);
  config.resources.remote_io = MBps(200);
  Result<ClusterTopology> typed = ClusterTopology::Parse(
      "gpu-type name=v100 count=5 speed=1;gpu-type name=k80 count=3 speed=0.5");
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  config.topology = *typed;
  Result<ReplayOutcome> outcome = ReplayTraceThroughService(
      trace, config, "sjf+silod", SchedulerOptions{}, PlanningOptions{});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->jct_identical)
      << "batch:\n" << outcome->batch.ToJson() << "\nserve:\n" << outcome->serve.ToJson();
  EXPECT_EQ(0, outcome->serve.unfinished_jobs);
  ASSERT_EQ(outcome->batch.tenants.size(), outcome->serve.tenants.size());
  ASSERT_EQ(outcome->batch.gpu_types.size(), outcome->serve.gpu_types.size());
  for (std::size_t i = 0; i < outcome->batch.gpu_types.size(); ++i) {
    EXPECT_EQ(outcome->batch.gpu_types[i].name, outcome->serve.gpu_types[i].name);
    EXPECT_EQ(outcome->batch.gpu_types[i].jct.finished,
              outcome->serve.gpu_types[i].jct.finished);
  }

  // Uniform table: the typed run collapses to the untyped one bit-for-bit.
  SimConfig untyped_config = config;
  untyped_config.topology = ClusterTopology();
  Result<ReplayOutcome> untyped = ReplayTraceThroughService(
      trace, untyped_config, "sjf+silod", SchedulerOptions{}, PlanningOptions{});
  ASSERT_TRUE(untyped.ok()) << untyped.status().ToString();
  SimConfig uniform_config = config;
  uniform_config.topology = *ClusterTopology::Parse("gpu-type name=any count=8 speed=1");
  Result<ReplayOutcome> uniform = ReplayTraceThroughService(
      trace, uniform_config, "sjf+silod", SchedulerOptions{}, PlanningOptions{});
  ASSERT_TRUE(uniform.ok()) << uniform.status().ToString();
  EXPECT_TRUE(JctSummariesIdentical(untyped->batch, uniform->batch));
  EXPECT_TRUE(JctSummariesIdentical(untyped->serve, uniform->serve));
}

// ---------------------------------------------------------------------------
// Socket transport.

TEST(UnixServer, ServesClientsUntilShutdown) {
  ServiceConfig config = SmallCluster("fifo+silod");
  Result<std::unique_ptr<ServiceState>> service = ServiceState::Create(std::move(config));
  ASSERT_TRUE(service.ok());
  const std::string path = ::testing::TempDir() + "/silodd_test.sock";
  UnixServer server(path, service->get());
  ASSERT_TRUE(server.Start().ok());
  std::thread loop([&server] { EXPECT_TRUE(server.Serve().ok()); });

  Result<ServeResponse> submit = CallServe(path, SubmitReq("a", 0, 1, GB(100)));
  ASSERT_TRUE(submit.ok()) << submit.status().ToString();
  EXPECT_TRUE(submit->ok()) << submit->error;
  EXPECT_EQ("admitted", submit->fields.at("decision"));

  // A persistent client interleaved with one-shot clients.
  Result<ServeClient> client = ServeClient::Connect(path);
  ASSERT_TRUE(client.ok());
  Result<ServeResponse> stats = client->Call(Req("stats", {}));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ("1", stats->fields.at("active"));

  Result<ServeResponse> shutdown = client->Call(Req("shutdown", {}));
  ASSERT_TRUE(shutdown.ok());
  EXPECT_TRUE(shutdown->ok());
  loop.join();
}

// A connected client whose server never answers must hit the --timeout-ms
// deadline instead of blocking forever: bind+listen without accept leaves
// the connect queued in the backlog (so Connect succeeds) and the read arm
// of Call trips SO_RCVTIMEO.
TEST(UnixServer, CallDeadlineFiresAgainstUnresponsivePeer) {
  const std::string path = ::testing::TempDir() + "/silodd_dead.sock";
  ::unlink(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(0, ::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)));
  ASSERT_EQ(0, ::listen(listener, 1));

  ClientOptions options;
  options.timeout_ms = 200;
  Result<ServeClient> client = ServeClient::Connect(path, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<ServeResponse> response = client->Call(Req("stats", {}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kDeadlineExceeded, response.status().code());

  close(listener);
  ::unlink(path.c_str());

  // A socket that does not exist at all fails fast, not via the deadline.
  EXPECT_FALSE(ServeClient::Connect(path, options).ok());
}

// ---------------------------------------------------------------------------
// Write-ahead journal (docs/MODEL.md §12): on-disk format, torn tails,
// compaction.

std::uint64_t FileSize(const std::string& path) {
  struct stat st;
  std::memset(&st, 0, sizeof(st));
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

void AppendRawBytes(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(static_cast<ssize_t>(bytes.size()), ::write(fd, bytes.data(), bytes.size()));
  close(fd);
}

void FlipByteAt(const std::string& path, std::uint64_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  std::uint8_t byte = 0;
  ASSERT_EQ(1, ::pread(fd, &byte, 1, static_cast<off_t>(offset)));
  byte ^= 0xFF;
  ASSERT_EQ(1, ::pwrite(fd, &byte, 1, static_cast<off_t>(offset)));
  close(fd);
}

std::string FreshJournalPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "/journal_" + tag + ".wal";
  std::remove(path.c_str());
  return path;
}

JournalOptions JournalOpts(const std::string& path) {
  JournalOptions options;
  options.path = path;
  options.sync = JournalSyncMode::kAlways;
  return options;
}

std::unique_ptr<Journal> MustOpen(const JournalOptions& options, JournalScan* scan) {
  Result<std::unique_ptr<Journal>> journal = Journal::Open(options, scan);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  return journal.ok() ? std::move(journal).value() : nullptr;
}

TEST(Journal, ParseSyncSpec) {
  JournalOptions options;
  ASSERT_TRUE(ParseJournalSyncSpec("always", &options).ok());
  EXPECT_EQ(JournalSyncMode::kAlways, options.sync);
  ASSERT_TRUE(ParseJournalSyncSpec("none", &options).ok());
  EXPECT_EQ(JournalSyncMode::kNone, options.sync);
  ASSERT_TRUE(ParseJournalSyncSpec("batch:8", &options).ok());
  EXPECT_EQ(JournalSyncMode::kBatch, options.sync);
  EXPECT_EQ(8u, options.batch_frames);
  EXPECT_FALSE(ParseJournalSyncSpec("batch:0", &options).ok());
  EXPECT_FALSE(ParseJournalSyncSpec("batch:x", &options).ok());
  EXPECT_FALSE(ParseJournalSyncSpec("batch:", &options).ok());
  EXPECT_FALSE(ParseJournalSyncSpec("sometimes", &options).ok());
  EXPECT_FALSE(ParseJournalSyncSpec("", &options).ok());
}

TEST(Journal, AppendAndReopenRoundTrip) {
  const std::string path = FreshJournalPath("roundtrip");
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    EXPECT_EQ(0u, scan.records);
    ASSERT_TRUE(journal->AppendRequest("submit key=a t=0").ok());
    ASSERT_TRUE(journal->AppendRequest("submit key=b t=1").ok());
    ASSERT_TRUE(journal->AppendRequest("complete key=a t=5").ok());
  }
  JournalScan scan;
  std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
  ASSERT_NE(nullptr, journal);
  EXPECT_FALSE(scan.has_checkpoint);
  EXPECT_EQ(3u, scan.records);
  EXPECT_EQ(0u, scan.dropped_bytes);
  ASSERT_EQ(3u, scan.requests.size());
  EXPECT_EQ("submit key=a t=0", scan.requests[0]);
  EXPECT_EQ("complete key=a t=5", scan.requests[2]);
}

TEST(Journal, TornTailTruncatedOnOpenAndAppendsResume) {
  const std::string path = FreshJournalPath("torn");
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    ASSERT_TRUE(journal->AppendRequest("alpha").ok());
    ASSERT_TRUE(journal->AppendRequest("beta").ok());
    ASSERT_TRUE(journal->AppendRequest("gamma").ok());
  }
  // Cut 3 bytes into gamma's record: a crash mid-append.
  const std::uint64_t full = FileSize(path);
  ASSERT_EQ(0, ::truncate(path.c_str(), static_cast<off_t>(full - 3)));
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    ASSERT_EQ(2u, scan.requests.size());
    EXPECT_EQ("beta", scan.requests[1]);
    EXPECT_GT(scan.dropped_bytes, 0u);
    // The torn bytes are gone from disk and appends land cleanly after them.
    ASSERT_TRUE(journal->AppendRequest("delta").ok());
  }
  JournalScan scan;
  std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
  ASSERT_NE(nullptr, journal);
  EXPECT_EQ(0u, scan.dropped_bytes);
  ASSERT_EQ(3u, scan.requests.size());
  EXPECT_EQ("delta", scan.requests[2]);
}

TEST(Journal, CrcCorruptionStopsTheScan) {
  const std::string path = FreshJournalPath("crc");
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    ASSERT_TRUE(journal->AppendRequest("alpha").ok());
    ASSERT_TRUE(journal->AppendRequest("beta").ok());
    ASSERT_TRUE(journal->AppendRequest("gamma").ok());
  }
  // Flip a payload byte inside beta: its CRC fails, so beta AND everything
  // after it are treated as torn (the scan cannot trust record boundaries
  // past a corrupt record).
  const std::uint64_t alpha_size =
      EncodeJournalRecord(JournalRecordType::kRequest, "alpha").size();
  FlipByteAt(path, alpha_size + 4 + 4 + 1 + 1);  // len + crc + type + 1 byte in.
  JournalScan scan;
  std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
  ASSERT_NE(nullptr, journal);
  ASSERT_EQ(1u, scan.requests.size());
  EXPECT_EQ("alpha", scan.requests[0]);
  EXPECT_GT(scan.dropped_bytes, 0u);
  EXPECT_EQ(alpha_size, FileSize(path));
}

TEST(Journal, AbsurdLengthTailTreatedAsTorn) {
  const std::string path = FreshJournalPath("absurd");
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    ASSERT_TRUE(journal->AppendRequest("alpha").ok());
  }
  std::uint8_t header[8];
  PutU32(header, 0xFFFFFFF0u);  // Way past kMaxJournalRecordBytes.
  PutU32(header + 4, 0);
  AppendRawBytes(path, std::string(reinterpret_cast<char*>(header), sizeof(header)));
  JournalScan scan;
  std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
  ASSERT_NE(nullptr, journal);
  ASSERT_EQ(1u, scan.requests.size());
  EXPECT_EQ(8u, scan.dropped_bytes);
}

TEST(Journal, CompactionReplacesTailWithCheckpoint) {
  const std::string path = FreshJournalPath("compact");
  {
    JournalScan scan;
    std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
    ASSERT_NE(nullptr, journal);
    ASSERT_TRUE(journal->AppendRequest(std::string(512, 'x')).ok());
    ASSERT_TRUE(journal->AppendRequest(std::string(512, 'y')).ok());
    const std::uint64_t before = journal->size_bytes();
    ASSERT_TRUE(journal->Compact("checkpoint payload").ok());
    EXPECT_LT(journal->size_bytes(), before);
    EXPECT_EQ(1u, journal->compactions());
    // Appends after compaction extend the compacted file.
    ASSERT_TRUE(journal->AppendRequest("after").ok());
  }
  JournalScan scan;
  std::unique_ptr<Journal> journal = MustOpen(JournalOpts(path), &scan);
  ASSERT_NE(nullptr, journal);
  EXPECT_TRUE(scan.has_checkpoint);
  EXPECT_EQ("checkpoint payload", scan.checkpoint);
  ASSERT_EQ(1u, scan.requests.size());
  EXPECT_EQ("after", scan.requests[0]);
}

// ---------------------------------------------------------------------------
// Crash-safe service: recovery bit-identity, rid dedup, checkpoint verb,
// auto-compaction (docs/MODEL.md §12).

ServeRequest WithRid(ServeRequest request, std::uint64_t rid) {
  request.args["rid"] = std::to_string(rid);
  return request;
}

class ServiceJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = FreshJournalPath(::testing::UnitTest::GetInstance()->current_test_info()->name());
  }

  JournalOptions Opts() { return JournalOpts(path_); }

  std::unique_ptr<ServiceState> Recover(ServiceConfig config, const JournalOptions& options,
                                        RecoveryInfo* recovery) {
    Result<std::unique_ptr<ServiceState>> service =
        ServiceState::CreateFromJournal(std::move(config), options, recovery);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return service.ok() ? std::move(service).value() : nullptr;
  }

  ServeResponse Must(ServiceState* service, const ServeRequest& request) {
    ServeResponse response = service->Handle(request);
    EXPECT_TRUE(response.ok()) << request.verb << ": " << response.error;
    return response;
  }

  std::string path_;
};

TEST_F(ServiceJournalTest, RecoveryRebuildsStateBitIdentically) {
  std::uint64_t digest = 0;
  std::uint64_t plan_digest = 0;
  std::string report;
  {
    RecoveryInfo recovery;
    std::unique_ptr<ServiceState> service = Recover(SmallCluster("sjf+silod"), Opts(), &recovery);
    ASSERT_NE(nullptr, service);
    EXPECT_FALSE(recovery.from_checkpoint);
    EXPECT_EQ(0u, recovery.replayed_requests);
    // Exercise every journaled verb class: submits, progress, a forced plan
    // (stamps first-start times), a completion, a policy hot-swap, a cancel.
    Must(service.get(), WithRid(SubmitReq("a", 0, 2, GB(400)), 1));
    Must(service.get(), WithRid(SubmitReq("b", 10, 1, GB(800)), 2));
    Must(service.get(), WithRid(Req("progress", {{"key", "a"},
                                                 {"t", "100"},
                                                 {"remaining", "500000000000"},
                                                 {"effective", "50000000000"}}),
                                3));
    Must(service.get(), WithRid(Req("plan", {{"t", "150"}}), 4));
    Must(service.get(), WithRid(Req("complete", {{"key", "b"}, {"t", "200"}}), 5));
    Must(service.get(), WithRid(Req("reload-policy", {{"policy", "fifo+silod"}}), 6));
    Must(service.get(), WithRid(SubmitReq("c", 250, 4, TB(1.5)), 7));
    Must(service.get(), WithRid(Req("cancel", {{"key", "c"}, {"t", "300"}}), 8));
    digest = service->StateDigest();
    plan_digest = PlanDigest(service->PlanNow());
    report = service->Report().ToJson();
    // SIGKILL: the service dies here without Sync or graceful teardown; the
    // kAlways journal already has every frame on disk.
  }
  RecoveryInfo recovery;
  std::unique_ptr<ServiceState> service = Recover(SmallCluster("sjf+silod"), Opts(), &recovery);
  ASSERT_NE(nullptr, service);
  EXPECT_EQ(8u, recovery.replayed_requests);
  EXPECT_EQ(0u, recovery.replayed_errors);
  EXPECT_EQ(0u, recovery.dropped_bytes);
  EXPECT_EQ(digest, service->StateDigest()) << "recovered state diverged";
  EXPECT_EQ(plan_digest, PlanDigest(service->PlanNow())) << "recovered plan diverged";
  EXPECT_EQ(report, service->Report().ToJson()) << "recovered report diverged";
  EXPECT_EQ("fifo+silod", service->policy_name());  // The hot-swap replayed.
}

TEST_F(ServiceJournalTest, RidDedupMakesRetriesExactlyOnce) {
  RecoveryInfo recovery;
  std::unique_ptr<ServiceState> service = Recover(SmallCluster("fifo+silod"), Opts(), &recovery);
  ASSERT_NE(nullptr, service);
  const ServeRequest submit = WithRid(SubmitReq("a", 0, 2, GB(400)), 7);
  ServeResponse first = Must(service.get(), submit);
  EXPECT_EQ(0u, first.fields.count("duplicate"));
  const std::uint64_t digest = service->StateDigest();

  // The exact retry and a stale lower rid are both acknowledged without
  // touching state or the journal.
  for (const ServeRequest& retry : {submit, WithRid(Req("complete", {{"key", "a"}, {"t", "9"}}), 3)}) {
    ServeResponse response = Must(service.get(), retry);
    EXPECT_EQ("1", response.fields.at("duplicate"));
    EXPECT_EQ("7", response.fields.at("last-rid"));
  }
  EXPECT_EQ(digest, service->StateDigest());
  EXPECT_EQ(1u, service->journal()->appended_records());

  // Non-positive rids are rejected before touching the journal.
  EXPECT_FALSE(service->Handle(WithRid(SubmitReq("bad", 1, 1, GB(100)), 0)).ok());

  ServeResponse stats = Must(service.get(), Req("stats", {}));
  EXPECT_EQ("7", stats.fields.at("last-rid"));
  EXPECT_EQ("2", stats.fields.at("duplicates"));

  // Dedup state survives recovery: last_rid_ is rebuilt from the replayed
  // frames, so a client resending its in-flight request after a daemon
  // restart still gets the duplicate ack.
  service.reset();
  service = Recover(SmallCluster("fifo+silod"), Opts(), &recovery);
  ASSERT_NE(nullptr, service);
  ServeResponse after = Must(service.get(), submit);
  EXPECT_EQ("1", after.fields.at("duplicate"));
  EXPECT_EQ(digest, service->StateDigest());
}

TEST_F(ServiceJournalTest, CheckpointVerbCompactsAndRecoveryMatches) {
  std::uint64_t digest = 0;
  {
    RecoveryInfo recovery;
    std::unique_ptr<ServiceState> service = Recover(SmallCluster("sjf+silod"), Opts(), &recovery);
    ASSERT_NE(nullptr, service);
    Must(service.get(), WithRid(SubmitReq("a", 0, 2, GB(400)), 1));
    Must(service.get(), WithRid(SubmitReq("b", 10, 1, GB(800)), 2));
    Must(service.get(), WithRid(Req("complete", {{"key", "a"}, {"t", "50"}}), 3));
    ServeResponse checkpoint = Must(service.get(), Req("checkpoint", {}));
    EXPECT_EQ("1", checkpoint.fields.at("compactions"));
    // Mutations after the checkpoint land as request records behind it.
    Must(service.get(), WithRid(SubmitReq("c", 60, 1, GB(200)), 4));
    digest = service->StateDigest();
  }
  RecoveryInfo recovery;
  std::unique_ptr<ServiceState> service = Recover(SmallCluster("sjf+silod"), Opts(), &recovery);
  ASSERT_NE(nullptr, service);
  EXPECT_TRUE(recovery.from_checkpoint);
  EXPECT_EQ(1u, recovery.replayed_requests);  // Only the post-checkpoint tail.
  EXPECT_EQ(digest, service->StateDigest());
  // And the recovered daemon keeps serving: rid 4 dedupes, rid 5 applies.
  ServeResponse dup = Must(service.get(), WithRid(SubmitReq("c", 60, 1, GB(200)), 4));
  EXPECT_EQ("1", dup.fields.at("duplicate"));
  Must(service.get(), WithRid(Req("complete", {{"key", "c"}, {"t", "100"}}), 5));
}

TEST_F(ServiceJournalTest, CheckpointWithoutJournalIsFailedPrecondition) {
  Result<std::unique_ptr<ServiceState>> service = ServiceState::Create(SmallCluster("fifo+silod"));
  ASSERT_TRUE(service.ok());
  ServeResponse response = (*service)->Handle(Req("checkpoint", {}));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, response.code);
}

TEST_F(ServiceJournalTest, AutoCompactionBoundsTheJournal) {
  JournalOptions options = Opts();
  options.max_bytes = 4096;  // Tiny cap: a few dozen submits overflow it.
  std::uint64_t digest = 0;
  {
    RecoveryInfo recovery;
    std::unique_ptr<ServiceState> service =
        Recover(SmallCluster("fifo+silod"), options, &recovery);
    ASSERT_NE(nullptr, service);
    std::uint64_t rid = 0;
    for (int i = 0; i < 40; ++i) {
      const std::string key = "job" + std::to_string(i);
      Must(service.get(), WithRid(SubmitReq(key, i, 1, GB(100)), ++rid));
      Must(service.get(), WithRid(Req("complete", {{"key", key}, {"t", std::to_string(i + 40)}}),
                                  ++rid));
    }
    ASSERT_NE(nullptr, service->journal());
    EXPECT_GT(service->journal()->compactions(), 0u);
    // The file never grows unboundedly: it is at most the cap plus the tail
    // appended since the last checkpoint (itself < cap) plus one checkpoint.
    EXPECT_LT(service->journal()->size_bytes(), 10 * options.max_bytes);
    digest = service->StateDigest();
  }
  RecoveryInfo recovery;
  std::unique_ptr<ServiceState> service = Recover(SmallCluster("fifo+silod"), options, &recovery);
  ASSERT_NE(nullptr, service);
  EXPECT_TRUE(recovery.from_checkpoint);
  EXPECT_EQ(digest, service->StateDigest());
}

TEST_F(ServiceJournalTest, TornTailRecoveryDropsOnlyTheTornFrame) {
  {
    RecoveryInfo recovery;
    std::unique_ptr<ServiceState> service = Recover(SmallCluster("fifo+silod"), Opts(), &recovery);
    ASSERT_NE(nullptr, service);
    Must(service.get(), WithRid(SubmitReq("a", 0, 2, GB(400)), 1));
    Must(service.get(), WithRid(SubmitReq("b", 10, 1, GB(800)), 2));
  }
  // Tear mid-way into b's record: the crash happened inside the append.
  ASSERT_EQ(0, ::truncate(path_.c_str(), static_cast<off_t>(FileSize(path_) - 2)));
  RecoveryInfo recovery;
  std::unique_ptr<ServiceState> service = Recover(SmallCluster("fifo+silod"), Opts(), &recovery);
  ASSERT_NE(nullptr, service);
  EXPECT_EQ(1u, recovery.replayed_requests);
  EXPECT_GT(recovery.dropped_bytes, 0u);
  EXPECT_EQ(1u, service->jobs().size());
  // The client's retry of the lost frame applies normally (rid 2 was never
  // durable, so it is NOT a duplicate).
  ServeResponse retry = Must(service.get(), WithRid(SubmitReq("b", 10, 1, GB(800)), 2));
  EXPECT_EQ(0u, retry.fields.count("duplicate"));
  EXPECT_EQ(2u, service->jobs().size());
}

// The acceptance scenario in-process: SIGKILL mid-trace, restart, re-replay
// the whole trace with monotone rids — the final report must match the batch
// flow engine bit-for-bit (the already-applied prefix dedupes).
TEST(ServeReplay, CrashMidTraceRecoveryMatchesBatchEngine) {
  TraceOptions options;
  options.num_jobs = 10;
  options.mean_interarrival = Minutes(2);
  options.median_duration = Minutes(20);
  options.seed = 11;
  const Trace trace = TraceGenerator(options).Generate();
  SimConfig config;
  config.resources.total_gpus = 8;
  config.resources.total_cache = GB(900);
  config.resources.remote_io = MBps(200);
  Result<std::shared_ptr<Scheduler>> scheduler =
      MakeSchedulerByName("sjf+silod", SchedulerOptions{});
  ASSERT_TRUE(scheduler.ok());
  FlowEngine engine(&trace, *scheduler, config);
  const SimResult result = engine.Run();
  const std::vector<ReplayEvent> schedule = BuildReplaySchedule(trace, result);

  ServiceConfig service_config;
  service_config.policy = "sjf+silod";
  service_config.resources = config.resources;
  service_config.admission.max_gpu_load = 1e18;  // Engines have no gate.
  JournalOptions journal_options;
  journal_options.path = FreshJournalPath("crash_mid_trace");
  journal_options.sync = JournalSyncMode::kBatch;  // write()n data survives SIGKILL.
  journal_options.batch_frames = 4;

  const std::size_t half = schedule.size() / 2;
  {
    RecoveryInfo recovery;
    Result<std::unique_ptr<ServiceState>> service =
        ServiceState::CreateFromJournal(service_config, journal_options, &recovery);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (std::size_t i = 0; i < half; ++i) {
      const ReplayEvent& event = schedule[i];
      const ServeRequest request =
          event.complete ? CompleteRequestFor(trace, event.job, event.t, i + 1)
                         : SubmitRequestFor(trace, event.job, event.t, i + 1);
      const ServeResponse response = (*service)->Handle(request);
      ASSERT_TRUE(response.ok()) << request.verb << ": " << response.error;
    }
    // SIGKILL here: no Sync, no destructor grace.
  }
  RecoveryInfo recovery;
  Result<std::unique_ptr<ServiceState>> service =
      ServiceState::CreateFromJournal(service_config, journal_options, &recovery);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(half, recovery.replayed_requests);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ReplayEvent& event = schedule[i];
    const ServeRequest request =
        event.complete ? CompleteRequestFor(trace, event.job, event.t, i + 1)
                       : SubmitRequestFor(trace, event.job, event.t, i + 1);
    const ServeResponse response = (*service)->Handle(request);
    ASSERT_TRUE(response.ok()) << request.verb << ": " << response.error;
    if (i < half) {
      EXPECT_EQ("1", response.fields.at("duplicate")) << "event " << i;
    }
  }
  const RunReport batch = MakeRunReport("sjf+silod", "flow", result);
  const RunReport serve = (*service)->Report();
  EXPECT_TRUE(JctSummariesIdentical(batch, serve))
      << "batch:\n"
      << batch.ToJson() << "\nserve:\n"
      << serve.ToJson();
  EXPECT_EQ(0, serve.unfinished_jobs);
}

}  // namespace
}  // namespace silod
