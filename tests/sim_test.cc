// Tests for src/sim: event queue, metrics, and both engines — including the
// engine-vs-closed-form and engine-vs-engine fidelity checks that mirror the
// paper's own simulator validation (§7.1.1/§7.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/units.h"
#include "src/core/silod_scheduler.h"
#include "src/core/system.h"
#include "src/sched/fifo.h"
#include "src/sched/greedy.h"
#include "src/sched/storage_policies.h"
#include "src/sim/event_queue.h"
#include "src/sim/fine_engine.h"
#include "src/sim/flow_engine.h"
#include "src/sim/metrics.h"

namespace silod {
namespace {

// ------------------------------------------------------------- EventQueue --

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(3.0, [&](Seconds) { fired.push_back(3); });
  queue.Schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.Schedule(2.0, [&](Seconds) { fired.push_back(2); });
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, StableForSimultaneousEvents) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    queue.Schedule(1.0, [&, i](Seconds) { fired.push_back(i); });
  }
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  std::vector<int> fired;
  const auto id = queue.Schedule(1.0, [&](Seconds) { fired.push_back(1); });
  queue.Schedule(2.0, [&](Seconds) { fired.push_back(2); });
  queue.Cancel(id);
  EXPECT_DOUBLE_EQ(queue.PeekTime(), 2.0);
  while (!queue.empty()) {
    queue.RunNext();
  }
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int count = 0;
  std::function<void(Seconds)> tick = [&](Seconds t) {
    if (++count < 5) {
      queue.Schedule(t + 1.0, tick);
    }
  };
  queue.Schedule(0.0, tick);
  Seconds last = 0;
  while (!queue.empty()) {
    last = queue.RunNext();
  }
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(last, 4.0);
}

// ---------------------------------------------------------------- Metrics --

TEST(Metrics, JctAndMakespan) {
  MetricsCollector collector;
  JobSpec a;
  a.id = 0;
  a.submit_time = 0;
  JobSpec b;
  b.id = 1;
  b.submit_time = 100;
  collector.OnSubmit(a);
  collector.OnSubmit(b);
  collector.OnStart(0, 10);
  collector.OnFinish(0, 110);
  EXPECT_FALSE(collector.AllFinished());
  collector.OnStart(1, 120);
  collector.OnFinish(1, 400);
  EXPECT_TRUE(collector.AllFinished());
  const SimResult result = collector.Finalize();
  EXPECT_DOUBLE_EQ(result.jobs[0].Jct(), 110);
  EXPECT_DOUBLE_EQ(result.jobs[1].Jct(), 300);
  EXPECT_DOUBLE_EQ(result.AvgJctSeconds(), 205);
  EXPECT_DOUBLE_EQ(result.makespan, 400);
}

// -------------------------------------------------- Engine test scaffolding --

// A small single-job trace: `epochs` passes over a 10 GB dataset at
// f* = 114 MB/s.
Trace SingleJobTrace(double epochs, Bytes dataset_size = GB(10)) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("data", dataset_size, MB(16));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = static_cast<Bytes>(epochs * static_cast<double>(dataset_size));
  trace.jobs.push_back(job);
  return trace;
}

SimConfig SmallCluster(Bytes cache, BytesPerSec egress) {
  SimConfig config;
  config.resources.total_gpus = 8;
  config.resources.total_cache = cache;
  config.resources.remote_io = egress;
  config.resources.num_servers = 2;
  config.reschedule_period = Minutes(5);
  return config;
}

double RunJct(const Trace& trace, EngineKind engine, CacheSystem cache, SimConfig sim,
              SchedulerKind scheduler = SchedulerKind::kFifo) {
  ExperimentConfig config;
  config.scheduler = scheduler;
  config.cache = cache;
  config.sim = sim;
  config.engine = engine;
  const SimResult result = RunExperiment(trace, config);
  return result.AvgJctSeconds();
}

// ------------------------------------------------------------- FlowEngine --

TEST(FlowEngine, ComputeBoundJobRunsAtIdealSpeed) {
  const Trace trace = SingleJobTrace(2.0);
  // Egress far above f*: never IO bound.
  const double jct =
      RunJct(trace, EngineKind::kFlow, CacheSystem::kSiloD, SmallCluster(0, GBps(10)));
  EXPECT_NEAR(jct, trace.jobs[0].IdealDuration(), 1.0);
}

TEST(FlowEngine, IoBoundJobRunsAtEgressSpeed) {
  const Trace trace = SingleJobTrace(2.0);
  // No cache, 20 MB/s egress: the whole job runs at 20 MB/s.
  const double jct =
      RunJct(trace, EngineKind::kFlow, CacheSystem::kSiloD, SmallCluster(0, MBps(20)));
  EXPECT_NEAR(jct, static_cast<double>(trace.jobs[0].total_bytes) / MBps(20), 2.0);
}

TEST(FlowEngine, CacheKicksInAfterFirstEpoch) {
  const Trace trace = SingleJobTrace(3.0);
  // Full cache allocation, 20 MB/s egress: epoch 1 at 20 MB/s (cold, §6
  // delayed effectiveness), epochs 2-3 at f* = 114 MB/s.
  const double jct =
      RunJct(trace, EngineKind::kFlow, CacheSystem::kSiloD, SmallCluster(GB(10), MBps(20)));
  const double expected = 1e10 / MBps(20) + 2e10 / MBps(114);
  EXPECT_NEAR(jct, expected, 0.02 * expected);
}

TEST(FlowEngine, PartialCachePartialSpeedup) {
  const Trace trace = SingleJobTrace(5.0);
  // Half the dataset cached: steady state f = b/(1-c/d) = 20/0.5 = 40 MB/s.
  const double jct =
      RunJct(trace, EngineKind::kFlow, CacheSystem::kSiloD, SmallCluster(GB(5), MBps(20)));
  const double expected = 1e10 / MBps(20)            // Cold epoch 1.
                          + 4e10 / MBps(40);         // Steady epochs.
  EXPECT_NEAR(jct, expected, 0.05 * expected);
}

TEST(FlowEngine, RemoteIoUsageNeverExceedsEgress) {
  TraceOptions options;
  options.num_jobs = 30;
  options.median_duration = Minutes(20);
  options.mean_interarrival = Minutes(2);
  options.seed = 4;
  const Trace trace = TraceGenerator(options).Generate();
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(TB(2), MBps(300));
  config.sim.resources.total_gpus = 16;
  const SimResult result = RunExperiment(trace, config);
  for (const auto& [t, io] : result.remote_io_usage.points()) {
    EXPECT_LE(io, MBps(300) * 1.001) << "at t=" << t;
  }
}

TEST(FlowEngine, AllCacheSystemsCompleteAllJobs) {
  TraceOptions options;
  options.num_jobs = 20;
  options.median_duration = Minutes(15);
  options.seed = 8;
  const Trace trace = TraceGenerator(options).Generate();
  for (const CacheSystem cache : {CacheSystem::kSiloD, CacheSystem::kAlluxio,
                                  CacheSystem::kCoorDl, CacheSystem::kQuiver}) {
    ExperimentConfig config;
    config.cache = cache;
    config.sim = SmallCluster(TB(1), MBps(200));
    config.sim.resources.total_gpus = 16;
    const SimResult result = RunExperiment(trace, config);
    EXPECT_EQ(result.jobs.size(), trace.jobs.size()) << CacheSystemName(cache);
    for (const JobResult& j : result.jobs) {
      EXPECT_GE(j.finish_time, 0) << CacheSystemName(cache);
      EXPECT_GE(j.Jct(), 0) << CacheSystemName(cache);
    }
  }
}

TEST(FlowEngine, SchedulersRespectArrivalCausality) {
  TraceOptions options;
  options.num_jobs = 15;
  options.seed = 12;
  const Trace trace = TraceGenerator(options).Generate();
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kSjf, SchedulerKind::kGavel}) {
    ExperimentConfig config;
    config.scheduler = kind;
    config.cache = CacheSystem::kSiloD;
    config.sim = SmallCluster(TB(1), MBps(200));
    config.sim.resources.total_gpus = 16;
    const SimResult result = RunExperiment(trace, config);
    for (const JobResult& j : result.jobs) {
      EXPECT_GE(j.first_start_time, j.submit_time - 1e-6) << SchedulerKindName(kind);
      EXPECT_GE(j.finish_time, j.first_start_time) << SchedulerKindName(kind);
    }
  }
}

TEST(FlowEngine, EffectiveCacheRampsUp) {
  const Trace trace = SingleJobTrace(4.0);
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(10), MBps(50));
  const SimResult result = RunExperiment(trace, config);
  // Cold at the start, fully effective near the end (Fig. 8's ramp).
  const double early = result.effective_cache_ratio.ValueAt(1.0);
  const double late = result.effective_cache_ratio.ValueAt(result.makespan * 0.9);
  EXPECT_LT(early, 0.1);
  EXPECT_GT(late, 0.95);
}

// ------------------------------------------------------------- FineEngine --

TEST(FineEngine, ComputeBoundJobMatchesClosedForm) {
  const Trace trace = SingleJobTrace(2.0);
  const double jct =
      RunJct(trace, EngineKind::kFine, CacheSystem::kSiloD, SmallCluster(0, GBps(10)));
  EXPECT_NEAR(jct, trace.jobs[0].IdealDuration(), 0.02 * trace.jobs[0].IdealDuration());
}

TEST(FineEngine, IoBoundJobMatchesClosedForm) {
  const Trace trace = SingleJobTrace(2.0);
  const double jct =
      RunJct(trace, EngineKind::kFine, CacheSystem::kSiloD, SmallCluster(0, MBps(20)));
  const double expected = static_cast<double>(trace.jobs[0].total_bytes) / MBps(20);
  EXPECT_NEAR(jct, expected, 0.02 * expected);
}

TEST(FineEngine, UniformCacheHitRatioMatchesClosedForm) {
  // Steady-state throughput with half the dataset cached must match Eq. 4.
  const Trace trace = SingleJobTrace(6.0);
  const double jct =
      RunJct(trace, EngineKind::kFine, CacheSystem::kSiloD, SmallCluster(GB(5), MBps(20)));
  const double expected = 1e10 / MBps(20) + 5e10 / MBps(40);
  EXPECT_NEAR(jct, expected, 0.06 * expected);
}

TEST(FineEngine, SharedLruThrashesBelowUniform) {
  // Same scenario, Alluxio's LRU vs SiloD's uniform caching: LRU's scan
  // thrashing yields a clearly longer JCT (§7.1.1).
  const Trace trace = SingleJobTrace(6.0);
  const SimConfig sim = SmallCluster(GB(5), MBps(20));
  const double uniform = RunJct(trace, EngineKind::kFine, CacheSystem::kSiloD, sim);
  const double lru = RunJct(trace, EngineKind::kFine, CacheSystem::kAlluxio, sim);
  EXPECT_GT(lru, 1.15 * uniform);
}

TEST(FineEngine, LruStillBeatsNoCache) {
  const Trace trace = SingleJobTrace(6.0);
  const double lru = RunJct(trace, EngineKind::kFine, CacheSystem::kAlluxio,
                            SmallCluster(GB(5), MBps(20)));
  const double none = RunJct(trace, EngineKind::kFine, CacheSystem::kAlluxio,
                             SmallCluster(MB(16), MBps(20)));
  EXPECT_LT(lru, none);
}

TEST(FineEngine, TwoJobsShareEgressFairly) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d0 = trace.catalog.Add("a", GB(10), MB(16));
  const DatasetId d1 = trace.catalog.Add("b", GB(10), MB(16));
  JobSpec j0 = MakeJob(0, zoo, "ResNet-50", 1, d0, 1.0, 0);
  j0.total_bytes = GB(10);
  JobSpec j1 = MakeJob(1, zoo, "ResNet-50", 1, d1, 1.0, 0);
  j1.total_bytes = GB(10);
  trace.jobs = {j0, j1};
  // No cache, 40 MB/s egress: each runs at ~20 MB/s, both finish together.
  ExperimentConfig config;
  config.cache = CacheSystem::kAlluxio;
  config.sim = SmallCluster(0, MBps(40));
  config.engine = EngineKind::kFine;
  const SimResult result = RunExperiment(trace, config);
  const double expected = 1e10 / MBps(20);
  EXPECT_NEAR(result.jobs[0].Jct(), expected, 0.05 * expected);
  EXPECT_NEAR(result.jobs[1].Jct(), expected, 0.05 * expected);
}

// ---------------------------------------------------------- Event calendar --

// Seeded multi-job trace with mixed dataset sizes, shared datasets, staggered
// arrivals and a few curriculum jobs — enough variety to exercise every phase
// transition of the stepping loop.
Trace SeededMixTrace(int num_jobs, std::uint64_t seed) {
  const ModelZoo zoo;
  Rng rng(seed);
  Trace trace;
  for (int i = 0; i < num_jobs; ++i) {
    const Bytes dataset_size = GB(0.5 + 2.0 * rng.NextDouble());
    const DatasetId d =
        trace.catalog.Add("mix" + std::to_string(i), dataset_size, MB(16));
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo,
                          i % 3 == 0 ? "EfficientNetB1" : "ResNet-50", 1, d, 1.0,
                          /*submit_time=*/Minutes(1) * i);
    job.total_bytes = static_cast<Bytes>((1.5 + 2.0 * rng.NextDouble()) *
                                         static_cast<double>(dataset_size));
    if (i % 16 == 7) {
      job.curriculum = true;
      job.regular = false;
      job.curriculum_params.step = 100;
    }
    trace.jobs.push_back(job);
  }
  return trace;
}

// The event-calendar and linear-scan stepping paths share all fluid
// arithmetic; any divergence in event indexing shows up as a bit-level
// difference in job times or sampled series.
TEST(FineEngine, CalendarStepBitIdenticalToLinearScan) {
  const Trace trace = SeededMixTrace(/*num_jobs=*/64, /*seed=*/21);
  SimConfig sim = SmallCluster(GB(40), MBps(400));
  sim.resources.total_gpus = 64;
  for (const CacheSystem cache :
       {CacheSystem::kSiloD, CacheSystem::kAlluxio, CacheSystem::kCoorDl}) {
    ExperimentConfig config;
    config.cache = cache;
    config.sim = sim;
    config.engine = EngineKind::kFine;

    config.fine.use_linear_scan = false;
    const SimResult calendar = RunExperiment(trace, config);
    config.fine.use_linear_scan = true;
    const SimResult linear = RunExperiment(trace, config);

    EXPECT_TRUE(PhysicallyIdentical(calendar, linear)) << CacheSystemName(cache);
    // The same events must fire on both paths; only indexing work may differ.
    EXPECT_EQ(calendar.steps.steps, linear.steps.steps) << CacheSystemName(cache);
    EXPECT_EQ(calendar.steps.miss_completions, linear.steps.miss_completions)
        << CacheSystemName(cache);
    EXPECT_EQ(calendar.steps.hit_completions, linear.steps.hit_completions)
        << CacheSystemName(cache);
    EXPECT_EQ(calendar.steps.unblocks, linear.steps.unblocks) << CacheSystemName(cache);
    EXPECT_EQ(calendar.steps.drains, linear.steps.drains) << CacheSystemName(cache);
    EXPECT_EQ(calendar.steps.flow_recomputes, linear.steps.flow_recomputes)
        << CacheSystemName(cache);
    EXPECT_GT(calendar.steps.calendar_updates, 0u) << CacheSystemName(cache);
    EXPECT_EQ(linear.steps.calendar_updates, 0u) << CacheSystemName(cache);
  }
}

TEST(FineEngine, StepCountersAccountForEveryBlock) {
  const Trace trace = SingleJobTrace(3.0);
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(10), MBps(50));
  config.engine = EngineKind::kFine;
  const SimResult result = RunExperiment(trace, config);
  // 10 GB / 16 MB = 625 blocks per epoch, 3 epochs; every block completes as
  // exactly one miss or hit.
  EXPECT_EQ(result.steps.miss_completions + result.steps.hit_completions, 1875u);
  EXPECT_EQ(result.steps.drains, 1u);
  EXPECT_GT(result.steps.steps, 0u);
}

// Regression: curriculum jobs never cross an epoch boundary, so the
// per-job-static (CoorDL) model must not gate their effective cache on
// epochs_done — before the fix they permanently reported zero.
TEST(FineEngine, CurriculumJobReportsEffectiveCacheUnderCoorDl) {
  const ModelZoo zoo;
  Trace trace;
  const Bytes dataset_size = GB(2);
  const DatasetId d = trace.catalog.Add("sorted", dataset_size, MB(16));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = 3 * dataset_size;
  job.curriculum = true;
  job.regular = false;
  job.curriculum_params.step = 50;  // Coverage expands quickly.
  trace.jobs.push_back(job);

  ExperimentConfig config;
  config.cache = CacheSystem::kCoorDl;
  config.sim = SmallCluster(GB(1), MBps(50));
  config.engine = EngineKind::kFine;
  config.fine.sample_period = 2.0;  // The run lasts ~1 min of sim time.
  const SimResult result = RunExperiment(trace, config);
  EXPECT_GT(result.effective_cache_ratio.ValueAt(result.makespan * 0.9), 0.5);
}

// Regression: a job draining its last blocks frees its GPUs at the finish
// instant, and that must trigger an immediate reschedule — a queued job
// starts right there, not at the next periodic tick (which could be up to
// reschedule_period later).  Both stepping paths once shared this omission,
// so the bit-identity test alone cannot catch it; assert the absolute start
// time on each path.
TEST(FineEngine, QueuedJobStartsAtPredecessorFinishNotNextTick) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("serial", GB(5), MB(16));
  for (int i = 0; i < 2; ++i) {
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo, "ResNet-50", 1, d, 1.0, 0);
    job.total_bytes = GB(5);
    trace.jobs.push_back(job);
  }
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kFifo;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(5), GBps(10));
  config.sim.resources.total_gpus = 1;  // The jobs must run back to back.
  config.engine = EngineKind::kFine;
  for (const bool linear : {false, true}) {
    config.fine.use_linear_scan = linear;
    const SimResult result = RunExperiment(trace, config);
    const double finish0 = result.jobs[0].finish_time;
    // Job 0 is compute bound and finishes well inside the first 5-minute
    // reschedule period; job 1 must not idle until that tick.
    ASSERT_LT(finish0, Minutes(5)) << "linear=" << linear;
    EXPECT_NEAR(result.jobs[1].first_start_time, finish0, 1e-6) << "linear=" << linear;
  }
}

// --------------------------------------------------------------- Fidelity --

// The §7.2-style cross-validation: both engines run the same multi-job trace
// and must agree on average JCT and makespan within a few percent (the paper
// reports simulator errors of up to 5.7% / 8.5%).
class EngineFidelityTest : public ::testing::TestWithParam<CacheSystem> {};

TEST_P(EngineFidelityTest, FlowMatchesFine) {
  const ModelZoo zoo;
  Trace trace;
  // A scaled-down micro-benchmark: 4 image jobs + 1 BERT-like job.
  for (int i = 0; i < 4; ++i) {
    const DatasetId d = trace.catalog.Add("img" + std::to_string(i), GB(13), MB(16));
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo, i < 2 ? "ResNet-50" : "EfficientNetB1", 1,
                          d, 1.0, 0);
    job.total_bytes = GB(13) * (i < 2 ? 5 : 4);
    trace.jobs.push_back(job);
  }
  const DatasetId web = trace.catalog.Add("web", GB(209), MB(16));
  JobSpec bert = MakeJob(4, zoo, "BERT", 4, web, 1.0, 0);
  bert.total_bytes = GB(15);
  trace.jobs.push_back(bert);

  const SimConfig sim = SmallCluster(GB(20), MBps(20));
  ExperimentConfig config;
  config.cache = GetParam();
  config.sim = sim;

  config.engine = EngineKind::kFine;
  const SimResult fine = RunExperiment(trace, config);
  config.engine = EngineKind::kFlow;
  const SimResult flow = RunExperiment(trace, config);

  EXPECT_NEAR(flow.AvgJctSeconds(), fine.AvgJctSeconds(), 0.08 * fine.AvgJctSeconds())
      << CacheSystemName(GetParam());
  EXPECT_NEAR(flow.makespan, fine.makespan, 0.10 * fine.makespan)
      << CacheSystemName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(CacheSystems, EngineFidelityTest,
                         ::testing::Values(CacheSystem::kSiloD, CacheSystem::kCoorDl,
                                           CacheSystem::kQuiver),
                         [](const auto& info) { return CacheSystemName(info.param); });

// ----------------------------------------------------- Zone-aware placement --

// A rack crash against a zone-aware plan costs at most the loss-bounded share
// of the dataset (attributed to the rack), versus the rack's full
// capacity-proportional slice under oblivious placement.
TEST(FlowEngine, ZoneCrashLossBoundedAndAttributedPerZone) {
  const Trace trace = SingleJobTrace(/*epochs=*/60, GB(40));

  FaultPlan faults;
  for (int s = 0; s < 4; ++s) {  // The whole rack, one server at a time.
    faults.events.push_back({Hours(1) + s, FaultKind::kCacheServerCrash, s});
    faults.events.push_back({Hours(2) + s, FaultKind::kCacheServerRecover, s});
  }

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kFifo;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(80), MBps(500));
  config.sim.resources.num_servers = 8;
  config.sim.faults = faults;
  const SimResult oblivious = RunExperiment(trace, config);
  EXPECT_TRUE(oblivious.faults.blocks_lost_by_zone.empty());

  const Result<ClusterTopology> topology = ClusterTopology::Parse("rack0=0-3;loss-bound=0.25");
  ASSERT_TRUE(topology.ok());
  config.sim.topology = *topology;
  const SimResult aware = RunExperiment(trace, config);

  // The rack held half the cache servers but at most a quarter of the quota.
  EXPECT_GT(aware.faults.bytes_lost, 0);
  EXPECT_LT(aware.faults.bytes_lost, oblivious.faults.bytes_lost);
  EXPECT_LE(aware.faults.bytes_lost, 0.25 * static_cast<double>(GB(40)) + MB(64));
  ASSERT_EQ(aware.faults.blocks_lost_by_zone.size(), 1u);
  EXPECT_EQ(aware.faults.blocks_lost_by_zone.begin()->first, "rack0");
}

// The per-dataset zone solves between rehash events are mutually independent
// (each writes only its own dataset's state and its own jobs), so fanning
// them out on the worker pool must be bit-identical to the sequential escape
// hatch — not merely statistically close.
TEST(FlowEngine, ParallelZoneSolveBitIdenticalToSequential) {
  const Trace trace = SeededMixTrace(/*num_jobs=*/1000, /*seed=*/33);
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(60), MBps(800));
  config.sim.resources.total_gpus = 256;
  config.sim.resources.num_servers = 8;
  const Result<ClusterTopology> topology =
      ClusterTopology::Parse("rack0=0-3;rack1=4-7;loss-bound=0.5");
  ASSERT_TRUE(topology.ok()) << topology.status().ToString();
  config.sim.topology = *topology;
  config.engine = EngineKind::kFlow;

  config.sim.zone_solve_threads = 0;  // Sequential escape hatch.
  const SimResult sequential = RunExperiment(trace, config);
  config.sim.zone_solve_threads = 4;
  const SimResult parallel = RunExperiment(trace, config);

  EXPECT_TRUE(PhysicallyIdentical(sequential, parallel));
  EXPECT_EQ(sequential.jobs.size(), 1000u);
}

// ---------------------------------------------------------- Heterogeneity --

// Declaring a GPU-type table whose speeds are all 1.0 must be a bit-for-bit
// no-op: the typed admission path multiplies every ideal by exactly 1.0, so
// both engines and every scheduler must reproduce the untyped run.
TEST(Heterogeneity, UniformTypedFleetBitIdenticalToUntyped) {
  const Trace trace = SeededMixTrace(/*num_jobs=*/48, /*seed=*/9);
  const Result<ClusterTopology> typed =
      ClusterTopology::Parse("gpu-type name=v100 count=8 speed=1");
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  for (const EngineKind engine : {EngineKind::kFlow, EngineKind::kFine}) {
    for (const SchedulerKind scheduler :
         {SchedulerKind::kFifo, SchedulerKind::kSjf, SchedulerKind::kGavel}) {
      ExperimentConfig config;
      config.engine = engine;
      config.scheduler = scheduler;
      config.cache = CacheSystem::kSiloD;
      config.sim = SmallCluster(GB(40), MBps(300));
      const SimResult untyped = RunExperiment(trace, config);
      config.sim.topology = *typed;
      const SimResult uniform_typed = RunExperiment(trace, config);
      EXPECT_TRUE(PhysicallyIdentical(untyped, uniform_typed))
          << SchedulerKindName(scheduler) << " engine " << static_cast<int>(engine);
      const RunReport a = MakeRunReport("x", "e", untyped);
      const RunReport b = MakeRunReport("x", "e", uniform_typed);
      EXPECT_EQ(a.jct.avg_jct_min, b.jct.avg_jct_min);
      EXPECT_EQ(a.jct.p99_jct_min, b.jct.p99_jct_min);
    }
  }
}

// The per-GPU-type sub-summaries partition the finished jobs: group counts sum
// to the overall count and every group percentile is bounded by the overall
// max.
TEST(Heterogeneity, PerTypeBreakdownPartitionsFinishedJobs) {
  const Trace trace = SeededMixTrace(/*num_jobs=*/48, /*seed=*/9);
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kSjf;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(GB(40), MBps(300));
  const Result<ClusterTopology> typed =
      ClusterTopology::Parse("gpu-type name=v100 count=5 speed=1;gpu-type name=k80 count=3 speed=0.5");
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  config.sim.topology = *typed;
  for (const EngineKind engine : {EngineKind::kFlow, EngineKind::kFine}) {
    config.engine = engine;
    const SimResult result = RunExperiment(trace, config);
    const RunReport report = MakeRunReport("x", "e", result);
    ASSERT_FALSE(report.gpu_types.empty());
    int grouped = 0;
    double worst = 0;
    for (const TenantSummary& g : report.gpu_types) {
      EXPECT_GT(g.jct.finished, 0) << g.name;
      grouped += g.jct.finished;
      worst = std::max(worst, g.jct.p99_jct_min);
    }
    EXPECT_EQ(grouped, report.jct.finished);
    EXPECT_LE(report.jct.p99_jct_min, worst + 1e-9);
  }
}

// A long job that only runs well on the slow GPU type: SJF ranks it by its
// (long) speed-adjusted duration and keeps admitting the stream of short jobs
// ahead of it, so its completion — the trace's p99 — blows up.  Gavel's
// fairness objective admits in arrival order, hands it the slow GPU at t=0,
// and the tail stays near the job's ideal duration.
TEST(Heterogeneity, SlowBoundJobTailRegressesUnderSjfNotFairness) {
  const ModelZoo zoo;
  Trace trace;
  JobId next = 0;
  auto add_job = [&](const char* name, Bytes bytes, Seconds submit) -> JobSpec& {
    const DatasetId d =
        trace.catalog.Add(name + std::to_string(next), std::max(bytes, GB(1)), MB(16));
    JobSpec job = MakeJob(next++, zoo, "ResNet-50", 1, d, 1.0, submit);
    job.total_bytes = bytes;
    trace.jobs.push_back(job);
    return trace.jobs.back();
  };
  // Two warm-up jobs saturate both pools; the slow pool frees first.
  add_job("warm-fast", GB(17), 0);
  add_job("warm-slow", GB(2.85), 0);
  // The victim: crawls on the fast type, so its speed-adjusted duration (the
  // SJF score) is long, and it arrives before the whole short stream.
  JobSpec& slow_bound = add_job("victim", 2 * GB(10), 10);
  slow_bound.speed_factors = {{"fast", 0.05}};
  const std::size_t victim = trace.jobs.size() - 1;
  // A stream of shorts arriving faster than the two pools drain them: under
  // SJF there is a shorter waiting job at every replan until the stream ends.
  for (int i = 0; i < 40; ++i) {
    add_job("short", GB(2), 20 + 10.0 * i);
  }

  ExperimentConfig config;
  config.engine = EngineKind::kFlow;
  config.cache = CacheSystem::kSiloD;
  config.sim = SmallCluster(TB(1), GBps(10));  // Compute-bound throughout.
  config.sim.resources.total_gpus = 2;
  config.sim.reschedule_period = Minutes(1);
  const Result<ClusterTopology> typed = ClusterTopology::Parse(
      "gpu-type name=fast count=1 speed=1;gpu-type name=slow count=1 speed=0.25");
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  config.sim.topology = *typed;

  config.scheduler = SchedulerKind::kSjf;
  const SimResult sjf_result = RunExperiment(trace, config);
  config.scheduler = SchedulerKind::kGavel;
  const SimResult gavel_result = RunExperiment(trace, config);
  const RunReport sjf = MakeRunReport("sjf", "flow", sjf_result);
  const RunReport gavel = MakeRunReport("gavel", "flow", gavel_result);

  const int total = static_cast<int>(trace.jobs.size());
  ASSERT_EQ(sjf.jct.finished, total);
  ASSERT_EQ(gavel.jct.finished, total);
  // SJF starves the slow-bound job behind the short stream; Gavel's
  // arrival-order fairness hands it the slow GPU as soon as one frees, so its
  // JCT — and with it the trace's p99 — stays near the ideal slow-type
  // duration.
  EXPECT_GT(sjf_result.jobs[victim].Jct(), 1.5 * gavel_result.jobs[victim].Jct());
  EXPECT_GT(sjf.jct.p99_jct_min, 1.3 * gavel.jct.p99_jct_min);
}

}  // namespace
}  // namespace silod
