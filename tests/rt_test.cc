// Tests for the real-time mini-cluster (src/rt): real threads, wall-clock
// sleeps, token-bucket throttling.  Assertions are timing-tolerant (scheduler
// jitter, thread wakeups) but pin the structural facts: exactly-once
// accounting, cold first epochs, uniform-caching hit ratios, egress
// enforcement, and the SiloD-vs-baseline ordering.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>

#include "src/common/units.h"
#include "src/core/silod_scheduler.h"
#include "src/core/system.h"
#include "src/fault/minidump.h"
#include "src/rt/rt_cluster.h"
#include "src/rt/worker_main.h"

// fork() from a threaded parent plus worker re-exec is unsupported under
// TSan; process-mode tests skip there (thread mode still runs).
#if defined(__SANITIZE_THREAD__)
#define SILOD_RT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SILOD_RT_TSAN 1
#endif
#endif
#ifndef SILOD_RT_TSAN
#define SILOD_RT_TSAN 0
#endif
#if SILOD_RT_TSAN
#define SILOD_SKIP_UNDER_TSAN() GTEST_SKIP() << "process-mode workers are unsupported under TSan"
#else
#define SILOD_SKIP_UNDER_TSAN() (void)0
#endif

namespace silod {
namespace {

Trace TinyTrace(int num_jobs, Bytes dataset_size, double epochs, const char* model = "ResNet-50") {
  const ModelZoo zoo;
  Trace trace;
  for (int i = 0; i < num_jobs; ++i) {
    const DatasetId d =
        trace.catalog.Add("d" + std::to_string(i), dataset_size, KB(250));
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo, model, 1, d, 1.0, 0);
    job.total_bytes = static_cast<Bytes>(epochs * static_cast<double>(dataset_size));
    trace.jobs.push_back(job);
  }
  return trace;
}

ClusterResources TinyCluster(Bytes cache, BytesPerSec egress, int gpus = 8) {
  ClusterResources resources;
  resources.total_gpus = gpus;
  resources.total_cache = cache;
  resources.remote_io = egress;
  resources.num_servers = 1;
  return resources;
}

TEST(RtCluster, SingleJobAccounting) {
  const Trace trace = TinyTrace(1, MB(8), 3.0);  // 32 blocks x 3 epochs.
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(200)));
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  ASSERT_EQ(result.jobs.size(), 1u);
  const RtJobResult& j = result.jobs[0];
  EXPECT_EQ(j.cache_hits + j.cache_misses, 96);
  // Full cache: epoch 1 all misses, epochs 2-3 all hits.
  EXPECT_EQ(j.cache_misses, 32);
  EXPECT_EQ(j.cache_hits, 64);
  EXPECT_GT(j.Runtime(), 0);
}

TEST(RtCluster, RuntimeTracksIdealWhenUnconstrained) {
  const Trace trace = TinyTrace(1, MB(8), 2.0);
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(500)));
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  const double ideal = trace.jobs[0].IdealDuration();  // 16 MB / 114 MB/s ~ 0.14 s.
  EXPECT_GE(result.jobs[0].Runtime(), 0.8 * ideal);
  EXPECT_LE(result.jobs[0].Runtime(), 3.0 * ideal + 0.5);  // Generous for CI jitter.
}

TEST(RtCluster, EgressLimitSlowsColdEpoch) {
  // No cache, 10 MB/s egress: 16 MB must take >= ~1.4 s (ideal would be 0.14).
  const Trace trace = TinyTrace(1, MB(8), 2.0);
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(/*cache=*/0, MBps(10)));
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  // The token bucket's 8 MB burst forgives half the first epoch; the rest
  // pays full price: >= (16 MB - 8 MB) / 10 MB/s.
  EXPECT_GE(result.jobs[0].Runtime(), 0.7);
}

TEST(RtCluster, PartialCacheHitsMatchUniformRatio) {
  const Trace trace = TinyTrace(1, MB(8), 4.0);
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(4), MBps(200)));
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  const RtJobResult& j = result.jobs[0];
  // Steady epochs hit at c/d = 50%: 3 warm epochs x 32 blocks x 0.5 = 48.
  EXPECT_NEAR(static_cast<double>(j.cache_hits), 48.0, 4.0);
}

TEST(RtCluster, TwoJobsShareEgress) {
  const Trace trace = TinyTrace(2, MB(8), 1.0);
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(/*cache=*/0, MBps(20)));
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  // 16 MB total at 20 MB/s shared (minus the 8 MB burst): both finish around
  // the same time and neither can beat the shared-egress bound.
  for (const RtJobResult& j : result.jobs) {
    EXPECT_GE(j.Runtime(), 0.3);
  }
}

TEST(RtCluster, SiloDNotWorseThanQuiverOnMicroShape) {
  // Two ResNet datasets, pool fits 1.5 of them: SiloD partially caches the
  // second, Quiver cannot.
  const ModelZoo zoo;
  Trace trace;
  for (int i = 0; i < 2; ++i) {
    const DatasetId d = trace.catalog.Add("img" + std::to_string(i), MB(16), KB(256));
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo, "ResNet-50", 1, d, 1.0, 0);
    job.total_bytes = 3 * MB(16);
    trace.jobs.push_back(job);
  }
  const ClusterResources resources = TinyCluster(MB(24), MBps(60), 2);

  RtCluster silod(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD), resources);
  const RtResult silod_result = silod.Run();
  RtCluster quiver(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kQuiver), resources);
  const RtResult quiver_result = quiver.Run();
  ASSERT_FALSE(silod_result.timed_out);
  ASSERT_FALSE(quiver_result.timed_out);

  std::int64_t silod_hits = 0;
  std::int64_t quiver_hits = 0;
  for (int i = 0; i < 2; ++i) {
    silod_hits += silod_result.jobs[static_cast<std::size_t>(i)].cache_hits;
    quiver_hits += quiver_result.jobs[static_cast<std::size_t>(i)].cache_hits;
  }
  EXPECT_GT(silod_hits, quiver_hits);  // Partial caching pays.
  EXPECT_LE(silod_result.makespan, quiver_result.makespan * 1.15);  // Timing tolerance.
}

TEST(RtCluster, TimeoutSurfacesInsteadOfHanging) {
  const Trace trace = TinyTrace(1, MB(8), 4.0);
  RtOptions options;
  options.max_wall_seconds = 0.05;  // Far too short to finish.
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(0, MBps(10)), options);
  const RtResult result = cluster.Run();
  EXPECT_TRUE(result.timed_out);
}

// Regression: an aborted job must not leak its zero-initialized finish time
// into the makespan or masquerade as a completed run.
TEST(RtCluster, TimeoutMarksJobsUnfinished) {
  const Trace trace = TinyTrace(1, MB(8), 4.0);
  RtOptions options;
  options.max_wall_seconds = 0.05;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(0, MBps(10)), options);
  const RtResult result = cluster.Run();
  ASSERT_TRUE(result.timed_out);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.unfinished_jobs, 1);
  EXPECT_EQ(result.makespan, 0);  // No completed job contributes.
}

// Regression: with a deep pipeline of staged blocks, shutdown must not pay
// one profiled compute sleep per staged block — the trainer checks stopping_
// before each sleep, so teardown is bounded by a single block_compute.
TEST(RtCluster, ShutdownDoesNotDrainStagedPipeline) {
  const ModelZoo zoo;
  Trace trace;
  // 32 MB blocks at ResNet-50's f* ~ 114 MB/s: block_compute ~ 0.28 s.  The
  // loader stages far faster than that, so the pipeline fills to depth.
  const DatasetId d = trace.catalog.Add("big", MB(256), MB(32));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = 4 * MB(256);  // ~9 s of compute; nowhere near finishing.
  trace.jobs.push_back(job);

  RtOptions options;
  options.pipeline_depth = 8;  // Pre-fix drain: 8 x 0.28 s ~ 2.2 s extra.
  options.max_wall_seconds = 0.3;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(256), GBps(10)), options);
  const auto start = std::chrono::steady_clock::now();
  const RtResult result = cluster.Run();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_TRUE(result.timed_out);
  // Timeout (0.3 s) + at most one in-flight compute sleep (0.28 s) + joins.
  EXPECT_LT(elapsed, 1.5);
}

// --------------------------------------------------- Fault injection (§6) --

// A degrade window with transient errors: the loader's bounded backoff
// retries through them, the run completes, and the per-block accounting stays
// exact (every block is exactly one hit or one miss, retries notwithstanding).
TEST(RtClusterFaults, TransientRemoteErrorsAreRetriedToCompletion) {
  const Trace trace = TinyTrace(1, MB(8), 3.0);
  RtOptions options;
  Result<FaultPlan> plan = FaultPlan::Parse("degrade t=0 factor=1 err=0.5 for=120");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(200)), options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  const RtJobResult& j = result.jobs[0];
  EXPECT_EQ(j.cache_hits + j.cache_misses, 96);
  EXPECT_EQ(j.cache_misses, 32);
  EXPECT_GT(result.remote_retries, 0);  // 32 misses at 50% error: ~32 retries.
  EXPECT_EQ(result.degrade_windows, 1);
}

// A Data-Manager restart mid-run: the runtime rebuilds from the periodic
// durable snapshot and every job still completes with exact accounting.
TEST(RtClusterFaults, DataManagerRestartIsSurvivable) {
  const Trace trace = TinyTrace(2, MB(8), 6.0);
  RtOptions options;
  options.snapshot_period = 0.03;
  options.reschedule_period = 0.02;  // Poll faults faster than the run ends.
  Result<FaultPlan> plan =
      FaultPlan::Parse("dm-restart t=0.1; dm-restart t=0.2; server-crash t=0.15 server=0");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(16), MBps(100)), options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_GE(result.dm_restarts, 1);  // Late events may land after the last job.
  for (const RtJobResult& j : result.jobs) {
    EXPECT_TRUE(j.completed);
    EXPECT_EQ(j.cache_hits + j.cache_misses, 192) << "job " << j.id;
    EXPECT_EQ(j.blocks_consumed, j.blocks_done) << "job " << j.id;
  }
  // The sharded Data Manager makes the server crash actionable: it is acted
  // on (shard 0 drops its residents), not counted as ignored.
  EXPECT_EQ(result.server_crashes, 1);
  EXPECT_EQ(result.ignored_by_kind.count(FaultKind::kCacheServerCrash), 0u);
  EXPECT_EQ(result.ignored_faults, 0);
}

// A sharded server crash mid-run (4 shards, one crashes and recovers): the
// crashed shard drops its residents and rejoins empty, every job still
// completes with exact accounting, and no server event is ignored.
TEST(RtClusterFaults, ShardedServerCrashIsActionable) {
  const Trace trace = TinyTrace(2, MB(8), 6.0);
  RtOptions options;
  options.reschedule_period = 0.02;  // Poll faults faster than the run ends.
  Result<FaultPlan> plan = FaultPlan::Parse("server-crash t=0.05 server=2 down=0.2");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  ClusterResources resources = TinyCluster(MB(16), MBps(100));
  resources.num_servers = 4;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    resources, options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.server_crashes, 1);
  EXPECT_EQ(result.server_recoveries, 1);
  EXPECT_EQ(result.ignored_by_kind.count(FaultKind::kCacheServerCrash), 0u);
  EXPECT_EQ(result.ignored_by_kind.count(FaultKind::kCacheServerRecover), 0u);
  EXPECT_EQ(result.ignored_faults, 0);
  for (const RtJobResult& j : result.jobs) {
    EXPECT_TRUE(j.completed) << "job " << j.id;
    // Exact accounting survives the crash: every block is exactly one hit or
    // one miss, and nothing consumed was left uncounted.
    EXPECT_EQ(j.cache_hits + j.cache_misses, 192) << "job " << j.id;
    EXPECT_EQ(j.blocks_consumed, j.blocks_done) << "job " << j.id;
  }
}

// Regression: a job aborted mid-pipeline must never report more blocks
// consumed than blocks whose compute actually finished (the trainer used to
// count the dequeue, not the completed compute).
TEST(RtClusterFaults, AbortedJobsReportConsumedEqualToDone) {
  const Trace trace = TinyTrace(2, MB(8), 4.0);
  RtOptions options;
  options.max_wall_seconds = 0.08;  // Abort mid-run with blocks in flight.
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(0, MBps(20)), options);
  const RtResult result = cluster.Run();
  ASSERT_TRUE(result.timed_out);
  for (const RtJobResult& j : result.jobs) {
    EXPECT_EQ(j.blocks_consumed, j.blocks_done) << "job " << j.id;
  }
}

// ------------------------------ Worker crash/restart and RestartCost (§6) --

// Thread mode, checkpoint-everything: the crash freezes the pipeline and the
// restart resumes it verbatim — zero re-reads, zero discarded compute, and
// the completion invariant holds with refetched == 0.
TEST(RtClusterWorkers, CheckpointEverythingRefetchesNothing) {
  const Trace trace = TinyTrace(1, MB(8), 6.0);  // 32 blocks x 6 epochs.
  RtOptions options;
  options.reschedule_period = 0.02;
  Result<FaultPlan> plan = FaultPlan::Parse("worker-crash t=0.3 job=0 restart=0.2");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(100)), options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.worker_crashes, 1);
  EXPECT_EQ(result.worker_restarts, 1);
  EXPECT_EQ(result.blocks_refetched, 0);
  EXPECT_DOUBLE_EQ(result.compute_lost, 0);
  const RtJobResult& j = result.jobs[0];
  EXPECT_TRUE(j.completed);
  EXPECT_EQ(j.cache_hits + j.cache_misses, 192);
  EXPECT_EQ(j.blocks_refetched, 0);
}

// Thread mode, lossy policies: the rollback re-reads at most the distance to
// the last checkpoint plus the staged pipeline, and every re-read shows up in
// the completion invariant — hits + misses == blocks_total + refetched.
TEST(RtClusterWorkers, LossyRestartPoliciesBoundTheRefetch) {
  struct Case {
    const char* spec;
    std::int64_t checkpoint_gap;  // Max blocks between checkpoints - 1.
  };
  for (const Case& c : {Case{"checkpoint-interval:4", 3}, Case{"lose-partial-epoch", 31}}) {
    const Trace trace = TinyTrace(1, MB(8), 6.0);
    RtOptions options;
    options.reschedule_period = 0.02;
    Result<FaultPlan> plan = FaultPlan::Parse("worker-crash t=0.3 job=0 restart=0.2");
    ASSERT_TRUE(plan.ok());
    options.faults = *plan;
    options.restart_cost = *RestartCost::Parse(c.spec);
    RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                      TinyCluster(MB(8), MBps(100)), options);
    const RtResult result = cluster.Run();
    ASSERT_FALSE(result.timed_out) << c.spec;
    EXPECT_EQ(result.worker_crashes, 1) << c.spec;
    EXPECT_EQ(result.worker_restarts, 1) << c.spec;
    const RtJobResult& j = result.jobs[0];
    ASSERT_TRUE(j.completed) << c.spec;
    EXPECT_EQ(j.cache_hits + j.cache_misses, 192 + j.blocks_refetched) << c.spec;
    EXPECT_LE(j.blocks_refetched, c.checkpoint_gap + options.pipeline_depth) << c.spec;
  }
}

// Satellite: worker-kind fault events must be acted on, never ignored — a
// churn plan whose every event targets a live job reports zero worker-kind
// ignores (the retired ignored_by_kind entries for crash/restart).
TEST(RtClusterWorkers, WorkerEventsAreNeverIgnoredUnderChurn) {
  const Trace trace = TinyTrace(2, MB(8), 6.0);
  RtOptions options;
  options.reschedule_period = 0.02;
  Result<FaultPlan> plan = FaultPlan::Parse(
      "worker-crash t=0.1 job=0 restart=0.15; "
      "worker-crash t=0.1 job=1 restart=0.15; "
      "worker-crash t=0.5 job=0 restart=0.15");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(16), MBps(100)), options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.worker_crashes, 3);
  EXPECT_EQ(result.worker_restarts, 3);
  EXPECT_EQ(result.ignored_by_kind.count(FaultKind::kWorkerCrash), 0u);
  EXPECT_EQ(result.ignored_by_kind.count(FaultKind::kWorkerRestart), 0u);
  EXPECT_EQ(result.ignored_faults, 0);
  for (const RtJobResult& j : result.jobs) {
    EXPECT_TRUE(j.completed) << "job " << j.id;
    EXPECT_EQ(j.cache_hits + j.cache_misses, 192 + j.blocks_refetched) << "job " << j.id;
  }
}

// ------------------------------------- Multi-process workers (MODEL.md §10) --

// The in-process path stays available behind the flag, and without faults the
// two modes are bit-identical: same shuffle order, same DataManager, so the
// same per-job hit/miss split.
TEST(RtClusterProcesses, ThreadAndProcessModesAgreeWithoutFaults) {
  SILOD_SKIP_UNDER_TSAN();
  const auto run = [](bool processes) {
    const Trace trace = TinyTrace(2, MB(4), 3.0);  // 16 blocks x 3 epochs.
    RtOptions options;
    options.workers_processes = processes;
    RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                      TinyCluster(MB(16), MBps(200)), options);
    return cluster.Run();
  };
  const RtResult threads = run(false);
  const RtResult processes = run(true);
  ASSERT_FALSE(threads.timed_out);
  ASSERT_FALSE(processes.timed_out);
  ASSERT_EQ(threads.jobs.size(), processes.jobs.size());
  for (std::size_t i = 0; i < threads.jobs.size(); ++i) {
    const RtJobResult& t = threads.jobs[i];
    const RtJobResult& p = processes.jobs[i];
    EXPECT_TRUE(t.completed && p.completed) << "job " << t.id;
    EXPECT_EQ(t.cache_hits, p.cache_hits) << "job " << t.id;
    EXPECT_EQ(t.cache_misses, p.cache_misses) << "job " << t.id;
    EXPECT_EQ(t.blocks_done, p.blocks_done) << "job " << t.id;
    // Ample cache + disjoint datasets: the split is exact, not just equal.
    EXPECT_EQ(t.cache_misses, 16) << "job " << t.id;
    EXPECT_EQ(t.cache_hits, 32) << "job " << t.id;
  }
  EXPECT_EQ(processes.worker_respawns, 0);
}

// Process mode: an injected kWorkerCrash SIGKILLs a real pid, the restart
// pays its refetch through the shared DataManager, the accounting stays
// exact, and the crash serializes a minidump whose window replays
// bit-identically.
TEST(RtClusterProcesses, InjectedCrashRestartsWithReplayableMinidump) {
  SILOD_SKIP_UNDER_TSAN();
  const Trace trace = TinyTrace(1, MB(8), 6.0);
  RtOptions options;
  options.workers_processes = true;
  options.reschedule_period = 0.02;
  options.minidump_dir = ::testing::TempDir() + "rt-dumps";
  Result<FaultPlan> plan = FaultPlan::Parse("worker-crash t=0.3 job=0 restart=0.2");
  ASSERT_TRUE(plan.ok());
  options.faults = *plan;
  options.restart_cost = *RestartCost::Parse("checkpoint-interval:4");
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(100)), options);
  const RtResult result = cluster.Run();
  ASSERT_FALSE(result.timed_out);
  EXPECT_EQ(result.worker_crashes, 1);
  EXPECT_EQ(result.worker_restarts, 1);
  const RtJobResult& j = result.jobs[0];
  ASSERT_TRUE(j.completed);
  EXPECT_EQ(j.cache_hits + j.cache_misses, 192 + j.blocks_refetched);
  // Checkpoint distance (3) + the staged pipeline + one in-flight fetch that
  // may land after the SIGKILL.
  EXPECT_LE(j.blocks_refetched, 3 + options.pipeline_depth + 1);

  ASSERT_FALSE(result.minidump_paths.empty());
  std::ifstream in(result.minidump_paths.front());
  ASSERT_TRUE(in.good()) << result.minidump_paths.front();
  std::ostringstream text;
  text << in.rdbuf();
  const auto dump = MinidumpFromText(text.str());
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->reason, "injected worker crash, job 0");
  const auto replay = ReplayMinidump(*dump);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->ok) << replay->message;
}

// Satellite: sim-vs-runtime fault parity.  The same fault plan on the fine
// engine and the multi-process RtCluster must agree exactly on the per-kind
// fault counts, and on blocks_refetched within the documented tolerance of
// crashes x (checkpoint distance + pipeline depth + 1): the engines checkpoint
// at the same boundaries, but the runtime's crash lands at a wall-clock
// instant, so the two runs crash up to one checkpoint window apart.
TEST(RtClusterProcesses, FineEngineAndRtClusterAgreeOnFaultAccounting) {
  SILOD_SKIP_UNDER_TSAN();
  const Trace trace = TinyTrace(1, MB(8), 6.0);
  const char* kPlan = "worker-crash t=0.3 job=0 restart=0.5";
  const RestartCost kCost = *RestartCost::Parse("checkpoint-interval:4");

  ExperimentConfig fine_config;
  fine_config.cache = CacheSystem::kSiloD;
  fine_config.engine = EngineKind::kFine;
  fine_config.sim.resources = TinyCluster(MB(8), MBps(100));
  fine_config.sim.faults = *FaultPlan::Parse(kPlan);
  fine_config.sim.restart_cost = kCost;
  const SimResult fine = RunExperiment(trace, fine_config);

  RtOptions options;
  options.workers_processes = true;
  options.reschedule_period = 0.02;
  options.faults = *FaultPlan::Parse(kPlan);
  options.restart_cost = kCost;
  RtCluster cluster(&trace, MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
                    TinyCluster(MB(8), MBps(100)), options);
  const RtResult rt = cluster.Run();
  ASSERT_FALSE(rt.timed_out);

  EXPECT_EQ(fine.faults.worker_crashes, rt.worker_crashes);
  EXPECT_EQ(fine.faults.worker_restarts, rt.worker_restarts);
  EXPECT_EQ(fine.faults.ignored_events, rt.ignored_faults);
  EXPECT_EQ(rt.worker_crashes, 1);
  const std::int64_t tolerance =
      rt.worker_crashes * (kCost.interval_blocks + options.pipeline_depth + 1);
  EXPECT_LE(std::abs(fine.faults.blocks_refetched - rt.blocks_refetched), tolerance)
      << "fine=" << fine.faults.blocks_refetched << " rt=" << rt.blocks_refetched;
}

}  // namespace
}  // namespace silod

// Re-exec'd copies of this binary become rt worker processes (process-mode
// tests); everything else is a normal gtest run.
int main(int argc, char** argv) {
  if (const int worker_rc = silod::MaybeRunWorkerMain(argc, argv); worker_rc >= 0) {
    return worker_rc;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
