// Cross-cutting invariant sweeps: every (scheduler, cache system, engine)
// combination must satisfy the physical invariants of the system, regardless
// of policy quality.  These are the guard rails that catch modelling bugs
// (negative rates, over-committed egress, time travel) across the whole
// configuration space with one parameterized suite.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/common/units.h"
#include "src/core/system.h"

namespace silod {
namespace {

using Combo = std::tuple<SchedulerKind, CacheSystem, EngineKind>;

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  const auto& [scheduler, cache, engine] = info.param;
  std::string name = std::string(SchedulerKindName(scheduler)) + "_" + CacheSystemName(cache) +
                     (engine == EngineKind::kFine ? "_fine" : "_flow");
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

class InvariantSweep : public ::testing::TestWithParam<Combo> {
 protected:
  static Trace MakeSweepTrace() {
    TraceOptions options;
    options.num_jobs = 25;
    options.mean_interarrival = Minutes(3);
    options.median_duration = Minutes(25);
    options.max_duration = Hours(4);
    options.seed = 77;
    // Small blocks keep the fine engine fast on this trace.
    options.block_size = MB(256);
    return TraceGenerator(options).Generate();
  }

  static SimConfig SweepCluster() {
    SimConfig config;
    config.resources.total_gpus = 16;
    config.resources.total_cache = TB(2);
    config.resources.remote_io = MBps(300);
    config.resources.num_servers = 4;
    config.reschedule_period = Minutes(5);
    return config;
  }
};

TEST_P(InvariantSweep, PhysicalInvariantsHold) {
  const auto& [scheduler, cache, engine] = GetParam();
  const Trace trace = MakeSweepTrace();
  const SimConfig sim = SweepCluster();

  ExperimentConfig config;
  config.scheduler = scheduler;
  config.cache = cache;
  config.sim = sim;
  config.engine = engine;
  const SimResult result = RunExperiment(trace, config);

  // Every job completes exactly once, causally.
  ASSERT_EQ(result.jobs.size(), trace.jobs.size());
  for (const JobResult& j : result.jobs) {
    const JobSpec& spec = trace.jobs[static_cast<std::size_t>(j.id)];
    EXPECT_GE(j.first_start_time, spec.submit_time - 1e-6) << "job " << j.id;
    EXPECT_GE(j.finish_time, j.first_start_time) << "job " << j.id;
    // No job can beat its compute-bound duration (one block of rounding slack
    // for the fine engine's work quantization).
    const Seconds slack =
        static_cast<double>(trace.catalog.Get(spec.dataset).block_size) / spec.ideal_io + 1.0;
    EXPECT_GE(j.finish_time - j.first_start_time, spec.IdealDuration() - slack)
        << "job " << j.id << " finished faster than f* allows";
  }
  EXPECT_GT(result.makespan, 0);
  EXPECT_GE(result.AvgJctSeconds(), 0);

  // Conservation: egress is never over-used; throughput never exceeds the
  // aggregate ideal; ratios stay in range.
  for (const auto& [t, io] : result.remote_io_usage.points()) {
    EXPECT_LE(io, sim.resources.remote_io * 1.001) << "egress over-commit at t=" << t;
    EXPECT_GE(io, -1.0);
  }
  for (const auto& [t, ratio] : result.effective_cache_ratio.points()) {
    EXPECT_GE(ratio, -1e-9) << "t=" << t;
    EXPECT_LE(ratio, 1.0 + 1e-9) << "t=" << t;
  }
  for (const auto& [t, total] : result.total_throughput.points()) {
    EXPECT_LE(total, result.ideal_throughput.ValueAt(t) * 1.001 + 1.0)
        << "throughput above aggregate f* at t=" << t;
  }
}

TEST_P(InvariantSweep, DeterministicAcrossRuns) {
  const auto& [scheduler, cache, engine] = GetParam();
  const Trace trace = MakeSweepTrace();
  ExperimentConfig config;
  config.scheduler = scheduler;
  config.cache = cache;
  config.sim = SweepCluster();
  config.engine = engine;
  const SimResult a = RunExperiment(trace, config);
  const SimResult b = RunExperiment(trace, config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_time, b.jobs[i].finish_time) << "job " << i;
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, InvariantSweep,
    ::testing::Combine(::testing::Values(SchedulerKind::kFifo, SchedulerKind::kSjf,
                                         SchedulerKind::kGavel),
                       ::testing::Values(CacheSystem::kSiloD, CacheSystem::kAlluxio,
                                         CacheSystem::kAlluxioLfu, CacheSystem::kCoorDl,
                                         CacheSystem::kQuiver),
                       ::testing::Values(EngineKind::kFlow, EngineKind::kFine)),
    ComboName);

// Hoard prefetching must not break conservation: warmed bytes come only from
// leftover egress and unallocated cache, and every job still completes.
TEST(PrefetchInvariants, ConservationWithPrefetchEnabled) {
  TraceOptions options;
  options.num_jobs = 20;
  options.mean_interarrival = Minutes(2);
  options.median_duration = Minutes(25);
  options.max_duration = Hours(3);
  options.seed = 81;
  const Trace trace = TraceGenerator(options).Generate();
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 8;  // Queueing so prefetch has targets.
  config.sim.resources.total_cache = TB(8);
  config.sim.resources.remote_io = MBps(400);
  config.sim.prefetch_waiting = true;
  const SimResult result = RunExperiment(trace, config);
  ASSERT_EQ(result.jobs.size(), trace.jobs.size());
  for (const JobResult& j : result.jobs) {
    EXPECT_GE(j.finish_time, j.first_start_time);
  }
  for (const auto& [t, io] : result.remote_io_usage.points()) {
    EXPECT_LE(io, MBps(400) * 1.001) << "prefetch over-used egress at t=" << t;
  }
  // Prefetching may only help.
  config.sim.prefetch_waiting = false;
  const SimResult off = RunExperiment(trace, config);
  EXPECT_LE(result.AvgJctSeconds(), off.AvgJctSeconds() * 1.02);
}

// The Gavel objective family must uphold the same invariants.
class ObjectiveInvariantSweep : public ::testing::TestWithParam<GavelObjective> {};

TEST_P(ObjectiveInvariantSweep, PhysicalInvariantsHold) {
  TraceOptions options;
  options.num_jobs = 20;
  options.median_duration = Minutes(25);
  options.max_duration = Hours(4);
  options.seed = 78;
  const Trace trace = TraceGenerator(options).Generate();
  ExperimentConfig config;
  config.scheduler = SchedulerKind::kGavel;
  config.cache = CacheSystem::kSiloD;
  config.scheduler_options.gavel_objective = GetParam();
  config.sim.resources.total_gpus = 16;
  config.sim.resources.total_cache = TB(2);
  config.sim.resources.remote_io = MBps(300);
  const SimResult result = RunExperiment(trace, config);
  for (const JobResult& j : result.jobs) {
    EXPECT_GE(j.finish_time, j.first_start_time);
  }
  for (const auto& [t, io] : result.remote_io_usage.points()) {
    EXPECT_LE(io, MBps(300) * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(Objectives, ObjectiveInvariantSweep,
                         ::testing::Values(GavelObjective::kMaxMinFairness,
                                           GavelObjective::kFinishTimeFairness,
                                           GavelObjective::kMinTotalJct,
                                           GavelObjective::kMaxThroughput),
                         [](const auto& info) {
                           std::string n = GavelObjectiveName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace silod
