// Tests for the fault-injection subsystem (src/fault) and its consumers:
// plan parsing/generation, the injector cursor, the cache/storage fault
// mechanics, recovery fixpoints, and the paper's §6 claim that failures under
// both simulation engines cost performance but never correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cache/cache_manager.h"
#include "src/cache/distributed_cache.h"
#include "src/common/units.h"
#include "src/core/recovery.h"
#include "src/core/system.h"
#include "src/core/data_manager.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/restart_cost.h"
#include "src/storage/inmem_remote.h"

namespace silod {
namespace {

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlan, ParseExpandsDurationsIntoPairedEvents) {
  const Result<FaultPlan> plan = FaultPlan::Parse(
      "server-crash t=600 server=2 down=900; "
      "degrade t=100 factor=0.25 err=0.1 for=50; "
      "worker-crash t=10 job=3; "
      "dm-restart t=40");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 7u);  // Each duration adds its closing event.

  // Sorted by time: worker-crash(10), dm(40), worker-restart(70, default 60s
  // delay), degrade(100), degrade-end(150), crash(600), recover(1500).
  EXPECT_EQ(plan->events[0].kind, FaultKind::kWorkerCrash);
  EXPECT_EQ(plan->events[0].target, 3);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kDataManagerRestart);
  EXPECT_EQ(plan->events[2].kind, FaultKind::kWorkerRestart);
  EXPECT_DOUBLE_EQ(plan->events[2].time, 70.0);
  EXPECT_EQ(plan->events[3].kind, FaultKind::kRemoteDegrade);
  EXPECT_DOUBLE_EQ(plan->events[3].severity, 0.25);
  EXPECT_DOUBLE_EQ(plan->events[3].error_rate, 0.1);
  EXPECT_EQ(plan->events[4].kind, FaultKind::kRemoteDegrade);
  EXPECT_DOUBLE_EQ(plan->events[4].severity, 1.0);  // Window closes.
  EXPECT_DOUBLE_EQ(plan->events[4].error_rate, 0.0);
  EXPECT_EQ(plan->events[5].kind, FaultKind::kCacheServerCrash);
  EXPECT_EQ(plan->events[5].target, 2);
  EXPECT_EQ(plan->events[6].kind, FaultKind::kCacheServerRecover);
  EXPECT_DOUBLE_EQ(plan->events[6].time, 1500.0);
}

TEST(FaultPlan, SpecRoundTripIsIdentity) {
  const Result<FaultPlan> plan = FaultPlan::Parse(
      "worker-crash t=5 job=1 restart=0; degrade t=20 factor=0.5; "
      "server-recover t=30 server=0; dm-restart t=45");
  ASSERT_TRUE(plan.ok());
  const Result<FaultPlan> reparsed = FaultPlan::Parse(plan->ToSpec());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->events, plan->events);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  const struct {
    const char* spec;
    const char* why;
  } kBad[] = {
      {"explode t=5", "unknown kind"},
      {"degrade factor=0.5", "missing t"},
      {"server-crash t=5", "missing server"},
      {"worker-crash t=5", "missing job"},
      {"degrade t=5 factor=0", "factor below (0,1]"},
      {"degrade t=5 factor=1.5", "factor above (0,1]"},
      {"degrade t=5 err=1", "err outside [0,1)"},
      {"degrade t=5 err=-0.1", "negative err"},
      {"dm-restart t=abc", "non-numeric value"},
      {"dm-restart time=5", "unknown key"},
      {"dm-restart t", "token without ="},
  };
  for (const auto& c : kBad) {
    EXPECT_FALSE(FaultPlan::Parse(c.spec).ok()) << c.why << ": " << c.spec;
  }
  // Empty and whitespace-only specs are valid empty plans.
  EXPECT_TRUE(FaultPlan::Parse("").ok());
  EXPECT_TRUE(FaultPlan::Parse(" ; ; ").ok());
}

TEST(FaultPlan, GeneratedChurnIsDeterministicInSeed) {
  FaultChurnOptions options;
  options.horizon = Hours(6);
  options.server_crashes_per_hour = 2;
  options.worker_crashes_per_hour = 3;
  options.degrade_windows_per_hour = 1;
  options.dm_restarts_per_hour = 0.5;
  options.num_servers = 4;
  options.num_jobs = 10;
  options.seed = 42;

  const FaultPlan a = GenerateFaultPlan(options);
  const FaultPlan b = GenerateFaultPlan(options);
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.empty());

  options.seed = 43;
  const FaultPlan c = GenerateFaultPlan(options);
  EXPECT_NE(a.events, c.events);

  // Events are sorted, targets in range, every crash has its paired closer.
  int opens = 0;
  int closes = 0;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a.events[i - 1].time, a.events[i].time);
    }
    const FaultEvent& e = a.events[i];
    switch (e.kind) {
      case FaultKind::kCacheServerCrash:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, options.num_servers);
        ++opens;
        break;
      case FaultKind::kWorkerCrash:
        EXPECT_GE(e.target, 0);
        EXPECT_LT(e.target, options.num_jobs);
        ++opens;
        break;
      case FaultKind::kCacheServerRecover:
      case FaultKind::kWorkerRestart:
        ++closes;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(opens, closes);
}

TEST(FaultPlan, RaisingOneRateDoesNotPerturbOtherStreams) {
  FaultChurnOptions options;
  options.horizon = Hours(6);
  options.server_crashes_per_hour = 2;
  options.seed = 7;
  const FaultPlan base = GenerateFaultPlan(options);

  options.dm_restarts_per_hour = 3;
  const FaultPlan with_dm = GenerateFaultPlan(options);

  auto server_times = [](const FaultPlan& plan) {
    std::vector<Seconds> times;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kCacheServerCrash) {
        times.push_back(e.time);
      }
    }
    return times;
  };
  EXPECT_EQ(server_times(base), server_times(with_dm));
}

// --------------------------------------------------- Failure domains (§6) --

TEST(FaultPlan, ZoneCrashExpandsToStaggeredPrimitives) {
  const Result<FaultPlan> plan = FaultPlan::Parse(
      "zone name=rackA servers=2-4; "
      "zone-crash t=100 zone=rackA down=60 stagger=10; "
      "degrade anchor=rackA t=5 factor=0.5 for=30");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->events.size(), 8u);

  // The whole domain goes down at one timestamp.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(plan->events[i].kind, FaultKind::kCacheServerCrash);
    EXPECT_DOUBLE_EQ(plan->events[i].time, 100.0);
    EXPECT_EQ(plan->events[i].target, 2 + i);
  }
  // Recoveries stagger per member: 160, 170, 180; the anchored degrade opens
  // at first-recovery + 5 = 165 and closes 30 s later.
  EXPECT_EQ(plan->events[3].kind, FaultKind::kCacheServerRecover);
  EXPECT_DOUBLE_EQ(plan->events[3].time, 160.0);
  EXPECT_EQ(plan->events[3].target, 2);
  EXPECT_EQ(plan->events[4].kind, FaultKind::kRemoteDegrade);
  EXPECT_DOUBLE_EQ(plan->events[4].time, 165.0);
  EXPECT_DOUBLE_EQ(plan->events[4].severity, 0.5);
  EXPECT_EQ(plan->events[5].kind, FaultKind::kCacheServerRecover);
  EXPECT_DOUBLE_EQ(plan->events[5].time, 170.0);
  EXPECT_EQ(plan->events[6].kind, FaultKind::kCacheServerRecover);
  EXPECT_DOUBLE_EQ(plan->events[6].time, 180.0);
  EXPECT_EQ(plan->events[7].kind, FaultKind::kRemoteDegrade);
  EXPECT_DOUBLE_EQ(plan->events[7].time, 195.0);
  EXPECT_DOUBLE_EQ(plan->events[7].severity, 1.0);

  // Zones are parse-time sugar: the expanded plan contains only primitive
  // events, so the spec round-trip stays the identity.
  const Result<FaultPlan> reparsed = FaultPlan::Parse(plan->ToSpec());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->events, plan->events);
}

TEST(FaultPlan, ZonalParseRejectsMalformedSpecs) {
  const struct {
    const char* spec;
    const char* why;
  } kBad[] = {
      {"zone-crash t=5 zone=x", "undeclared zone"},
      {"zone name=a", "zone missing servers"},
      {"zone servers=0-1", "zone missing name"},
      {"zone name=a servers=0-1; zone name=a servers=2-3", "duplicate zone"},
      {"zone name=a servers=3-1", "inverted range"},
      {"zone name=a servers=0", "not a range"},
      {"zone name=a servers=0-1; zone-crash zone=a", "zone-crash missing t"},
      {"zone name=a servers=0-1; degrade anchor=a factor=0.5",
       "anchor without a prior zone-crash"},
      {"zone name=a servers=0-1; zone-crash t=5 zone=a; degrade anchor=a factor=0.5",
       "anchor without down> 0 (no recovery instant)"},
  };
  for (const auto& c : kBad) {
    EXPECT_FALSE(FaultPlan::Parse(c.spec).ok()) << c.why << ": " << c.spec;
  }
  // A bare zone declaration is a valid (empty) plan.
  EXPECT_TRUE(FaultPlan::Parse("zone name=a servers=0-1").ok());
}

TEST(FaultPlan, ZoneChurnStreamsAreIsolated) {
  FaultChurnOptions options;
  options.horizon = Hours(12);
  options.num_servers = 8;
  options.seed = 3;
  ZoneChurn a;
  a.zone = FaultZone{"a", 0, 1};
  a.crashes_per_hour = 2;
  ZoneChurn b;
  b.zone = FaultZone{"b", 2, 3};
  b.crashes_per_hour = 2;
  options.zones = {a, b};
  const FaultPlan base = GenerateFaultPlan(options);
  EXPECT_FALSE(base.empty());

  auto crash_times = [](const FaultPlan& plan, int lo, int hi) {
    std::vector<Seconds> times;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kCacheServerCrash && e.target >= lo && e.target <= hi) {
        times.push_back(e.time);
      }
    }
    return times;
  };

  // Zone crashes are correlated: both members go down at the same instant.
  const std::vector<Seconds> a_times = crash_times(base, 0, 1);
  ASSERT_FALSE(a_times.empty());
  ASSERT_EQ(a_times.size() % 2, 0u);
  for (std::size_t i = 0; i < a_times.size(); i += 2) {
    EXPECT_DOUBLE_EQ(a_times[i], a_times[i + 1]);
  }

  // Raising zone b's rate leaves zone a's event times untouched.
  options.zones[1].crashes_per_hour = 6;
  const FaultPlan more_b = GenerateFaultPlan(options);
  EXPECT_EQ(crash_times(base, 0, 1), crash_times(more_b, 0, 1));
  EXPECT_NE(crash_times(base, 2, 3), crash_times(more_b, 2, 3));

  // Replays are bit-deterministic.
  const FaultPlan replay = GenerateFaultPlan(options);
  EXPECT_EQ(more_b.events, replay.events);
}

TEST(FaultPlan, AddingZonesDoesNotPerturbIndependentStreams) {
  FaultChurnOptions options;
  options.horizon = Hours(12);
  options.server_crashes_per_hour = 2;
  options.worker_crashes_per_hour = 2;
  options.num_servers = 4;
  options.num_jobs = 8;
  options.seed = 7;
  const FaultPlan base = GenerateFaultPlan(options);

  // Zone targets live outside the independent stream's 0..3 range, so the
  // two sources are distinguishable by target.
  ZoneChurn zone;
  zone.zone = FaultZone{"annex", 10, 11};
  zone.crashes_per_hour = 4;
  options.zones.push_back(zone);
  const FaultPlan with_zone = GenerateFaultPlan(options);

  auto independent_crashes = [](const FaultPlan& plan) {
    std::vector<std::pair<Seconds, int>> events;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kCacheServerCrash && e.target < 4) {
        events.emplace_back(e.time, e.target);
      }
    }
    return events;
  };
  EXPECT_EQ(independent_crashes(base), independent_crashes(with_zone));
  EXPECT_GT(with_zone.events.size(), base.events.size());
}

TEST(FaultPlan, ParseZoneChurnSpecReadsFieldsAndDefaults) {
  const Result<std::vector<ZoneChurn>> zones = ParseZoneChurnSpec(
      "zone=rack0:servers=0-3:crashes-per-hour=1.5:down=120:stagger=15:"
      "degrade-factor=0.5:degrade-err=0.05:degrade-for=300; zone=rack1:servers=4-7");
  ASSERT_TRUE(zones.ok()) << zones.status().ToString();
  ASSERT_EQ(zones->size(), 2u);
  EXPECT_EQ((*zones)[0].zone, (FaultZone{"rack0", 0, 3}));
  EXPECT_DOUBLE_EQ((*zones)[0].crashes_per_hour, 1.5);
  EXPECT_DOUBLE_EQ((*zones)[0].downtime, 120.0);
  EXPECT_DOUBLE_EQ((*zones)[0].recovery_stagger, 15.0);
  EXPECT_DOUBLE_EQ((*zones)[0].recovery_degrade_factor, 0.5);
  EXPECT_DOUBLE_EQ((*zones)[0].recovery_degrade_error_rate, 0.05);
  EXPECT_DOUBLE_EQ((*zones)[0].recovery_degrade_duration, 300.0);
  EXPECT_EQ((*zones)[1].zone, (FaultZone{"rack1", 4, 7}));
  EXPECT_DOUBLE_EQ((*zones)[1].crashes_per_hour, 0.0);
  EXPECT_DOUBLE_EQ((*zones)[1].recovery_degrade_factor, 1.0);

  EXPECT_TRUE(ParseZoneChurnSpec("")->empty());
  EXPECT_FALSE(ParseZoneChurnSpec("servers=0-3").ok());
  EXPECT_FALSE(ParseZoneChurnSpec("zone=a:servers=0-3:bogus=1").ok());
  EXPECT_FALSE(ParseZoneChurnSpec("zone=a:servers=3-1").ok());
  EXPECT_FALSE(ParseZoneChurnSpec("zone=a:servers=0-3:degrade-factor=2").ok());
}

// ------------------------------------------------------------ RestartCost --

TEST(RestartCostSpec, ParseToSpecRoundTrip) {
  for (const char* spec :
       {"checkpoint-everything", "lose-partial-epoch", "checkpoint-interval:12"}) {
    const Result<RestartCost> cost = RestartCost::Parse(spec);
    ASSERT_TRUE(cost.ok()) << spec;
    EXPECT_EQ(cost->ToSpec(), spec);
    EXPECT_EQ(*RestartCost::Parse(cost->ToSpec()), *cost);
  }
  EXPECT_EQ(RestartCost::Parse("")->policy, RestartCostPolicy::kCheckpointEverything);
  EXPECT_EQ(RestartCost::Parse("checkpoint-interval:12")->interval_blocks, 12);
  EXPECT_FALSE(RestartCost::Parse("lose-everything").ok());
  EXPECT_FALSE(RestartCost::Parse("checkpoint-interval:0").ok());
  EXPECT_FALSE(RestartCost::Parse("checkpoint-interval:-3").ok());
  EXPECT_FALSE(RestartCost::Parse("checkpoint-interval:abc").ok());
}

// --------------------------------------------------------- FaultInjector --

TEST(FaultInjector, CursorDrainsInTimeOrder) {
  const Result<FaultPlan> plan =
      FaultPlan::Parse("dm-restart t=10; dm-restart t=20; dm-restart t=30");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(*plan);

  EXPECT_FALSE(injector.exhausted());
  EXPECT_DOUBLE_EQ(injector.NextTime(), 10.0);

  std::vector<FaultEvent> due;
  injector.PopDue(5.0, &due);
  EXPECT_TRUE(due.empty());

  injector.PopDue(20.0, &due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_DOUBLE_EQ(due[0].time, 10.0);
  EXPECT_DOUBLE_EQ(due[1].time, 20.0);
  EXPECT_EQ(injector.injected(), 2);
  EXPECT_DOUBLE_EQ(injector.NextTime(), 30.0);

  due.clear();
  injector.PopDue(kInfiniteTime, &due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(injector.NextTime(), kInfiniteTime);
}

TEST(FaultInjector, EmptyPlanIsExhaustedFromBirth) {
  FaultInjector injector(FaultPlan{});
  EXPECT_TRUE(injector.exhausted());
  EXPECT_EQ(injector.NextTime(), kInfiniteTime);
}

// ---------------------------------------------- CacheManager fault hooks --

TEST(CacheManagerFaults, EvictRandomFractionDropsAboutThatShare) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(100), MB(1));  // 100 blocks.
  const Dataset& d = catalog.Get(id);
  CacheManager cache(MB(100));
  ASSERT_TRUE(cache.AllocateCacheSize(d, MB(100)).ok());
  for (std::int64_t b = 0; b < 100; ++b) {
    cache.AccessBlock(d, b);
  }
  ASSERT_EQ(cache.CachedBytes(id), MB(100));

  const std::int64_t evicted = cache.EvictRandomFraction(0.25);
  EXPECT_EQ(evicted, 25);
  EXPECT_EQ(cache.CachedBytes(id), MB(75));
  EXPECT_EQ(cache.CachedBlocks(id).size(), 75u);

  EXPECT_EQ(cache.EvictRandomFraction(0.0), 0);
  EXPECT_EQ(cache.EvictRandomFraction(1.0), 75);
  EXPECT_EQ(cache.CachedBytes(id), 0);
}

TEST(CacheManagerFaults, SetTotalCapacityAllowsTransientOverCommit) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(100), MB(1));
  const Dataset& d = catalog.Get(id);
  CacheManager cache(MB(100));
  ASSERT_TRUE(cache.AllocateCacheSize(d, MB(80)).ok());

  cache.SetTotalCapacity(MB(50));  // Pool shrinks under the live allocation.
  EXPECT_EQ(cache.total_capacity(), MB(50));
  EXPECT_EQ(cache.total_allocated(), MB(80));  // Transiently over-committed.

  // New allocations must fit the reduced pool once the old one shrinks.
  EXPECT_TRUE(cache.AllocateCacheSize(d, MB(30)).ok());
  EXPECT_FALSE(cache.AllocateCacheSize(d, MB(60)).ok());
}

// Regression: with the pool over-committed after a crash, a shrink that does
// not yet reach the new capacity must still be accepted — the next plan's
// shrinks are what drain the over-commit, so rejecting them wedges the pool
// over capacity forever (seen as a fatal "cache pool over-committed" in the
// fine engine when a crash hit a full multi-dataset pool).
TEST(CacheManagerFaults, ShrinkIsLegalWhileOverCommitted) {
  DatasetCatalog catalog;
  const DatasetId a = catalog.Add("a", MB(100), MB(1));
  const DatasetId b = catalog.Add("b", MB(100), MB(1));
  CacheManager cache(MB(160));
  ASSERT_TRUE(cache.AllocateCacheSize(catalog.Get(a), MB(80)).ok());
  ASSERT_TRUE(cache.AllocateCacheSize(catalog.Get(b), MB(80)).ok());

  cache.SetTotalCapacity(MB(120));  // A crash takes a quarter of the pool.

  // 80 -> 70 still leaves 150 > 120 allocated, but it must succeed.
  EXPECT_TRUE(cache.AllocateCacheSize(catalog.Get(a), MB(70)).ok());
  EXPECT_TRUE(cache.AllocateCacheSize(catalog.Get(b), MB(50)).ok());
  EXPECT_EQ(cache.total_allocated(), MB(120));
  // Grows are still gated on the shrunken capacity.
  EXPECT_FALSE(cache.AllocateCacheSize(catalog.Get(a), MB(80)).ok());
}

TEST(CacheManagerFaults, EvictBlockRemovesOneResident) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(10), MB(1));
  const Dataset& d = catalog.Get(id);
  CacheManager cache(MB(10));
  ASSERT_TRUE(cache.AllocateCacheSize(d, MB(10)).ok());
  cache.AccessBlock(d, 3);

  EXPECT_TRUE(cache.EvictBlock(id, 3).ok());
  EXPECT_FALSE(cache.IsCached(id, 3));
  EXPECT_FALSE(cache.EvictBlock(id, 3).ok());  // Already gone: NotFound.
  EXPECT_FALSE(cache.EvictBlock(id, 7).ok());  // Never cached.
}

// ------------------------------------------- DistributedCache crash path --

TEST(DistributedCacheFaults, CrashLosesOnlyThatServersBlocks) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(200), MB(1));
  const Dataset& d = catalog.Get(id);
  DistributedCache cache(4, MB(100));
  ASSERT_TRUE(cache.AllocateCacheSize(d, MB(200)).ok());
  for (std::int64_t b = 0; b < 200; ++b) {
    cache.AccessBlock(d, b);
  }
  const Bytes cached_before = cache.CachedBytes(id);
  const Bytes on_server0 = cache.server_used(0);
  ASSERT_GT(on_server0, 0);

  const Result<std::int64_t> lost = cache.CrashServer(0);
  ASSERT_TRUE(lost.ok()) << lost.status().ToString();
  EXPECT_EQ(*lost * MB(1), on_server0);
  EXPECT_EQ(cache.CachedBytes(id), cached_before - on_server0);
  EXPECT_EQ(cache.server_used(0), 0);
  EXPECT_FALSE(cache.server_alive(0));
  EXPECT_EQ(cache.alive_servers(), 3);
  EXPECT_EQ(cache.alive_capacity(), MB(300));

  // Double crash and bad indices are rejected.
  EXPECT_FALSE(cache.CrashServer(0).ok());
  EXPECT_FALSE(cache.CrashServer(-1).ok());
  EXPECT_FALSE(cache.CrashServer(4).ok());

  // Blocks placed on the dead server are not re-admitted while it is down.
  const Bytes cached_after_crash = cache.CachedBytes(id);
  for (std::int64_t b = 0; b < 200; ++b) {
    cache.AccessBlock(d, b);
  }
  EXPECT_EQ(cache.CachedBytes(id), cached_after_crash);

  // Recovery rejoins empty; refills restore the original footprint.
  ASSERT_TRUE(cache.RecoverServer(0).ok());
  EXPECT_TRUE(cache.server_alive(0));
  EXPECT_EQ(cache.server_used(0), 0);
  EXPECT_FALSE(cache.RecoverServer(0).ok());  // Already alive.
  for (std::int64_t b = 0; b < 200; ++b) {
    cache.AccessBlock(d, b);
  }
  EXPECT_EQ(cache.CachedBytes(id), cached_before);
  EXPECT_EQ(cache.server_used(0), on_server0);  // Placement is deterministic.
}

// ----------------------------------------------- InMemRemoteStore faults --

TEST(RemoteStoreFaults, TransientErrorsSurfaceThroughTryReadBlock) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(4), KB(64));
  InMemRemoteStore store(GBps(100), MB(64));  // Fast enough to never sleep.
  store.RegisterDataset(catalog.Get(id));

  store.SetFault(/*rate_factor=*/1.0, /*error_rate=*/0.5);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    const auto result = store.TryReadBlock(id, i % 8);
    if (!result.ok()) {
      ++failures;
    } else {
      EXPECT_EQ(InMemRemoteStore::Checksum(*result),
                InMemRemoteStore::ExpectedChecksum(id, i % 8, KB(64)));
    }
  }
  EXPECT_GT(failures, 50);  // ~100 expected; 50 is > 12 sigma slack.
  EXPECT_LT(failures, 150);
  EXPECT_EQ(store.transient_errors(), failures);

  store.ClearFault();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(store.TryReadBlock(id, i % 8).ok());
  }
  EXPECT_EQ(store.transient_errors(), failures);  // No new errors.

  // The blocking path retries through errors and still delivers the payload.
  store.SetFault(1.0, 0.5);
  const std::vector<std::uint8_t> data = store.ReadBlock(id, 0);
  EXPECT_EQ(InMemRemoteStore::Checksum(data),
            InMemRemoteStore::ExpectedChecksum(id, 0, KB(64)));
}

// -------------------------------------------------- Recovery under churn --

TEST(RecoveryFaults, CacheSnapshotRestoreIsAFixpoint) {
  DatasetCatalog catalog;
  const DatasetId a = catalog.Add("a", MB(64), MB(1));
  const DatasetId b = catalog.Add("b", MB(64), MB(1));
  CacheManager cache(MB(96));
  ASSERT_TRUE(cache.AllocateCacheSize(catalog.Get(a), MB(48)).ok());
  ASSERT_TRUE(cache.AllocateCacheSize(catalog.Get(b), MB(32)).ok());
  for (std::int64_t blk = 0; blk < 40; ++blk) {
    cache.AccessBlock(catalog.Get(a), blk);
    cache.AccessBlock(catalog.Get(b), blk);
  }

  const DataManagerSnapshot snapshot = CaptureCacheSnapshot(cache, catalog);
  CacheManager restored(MB(96));
  ASSERT_TRUE(RestoreCacheManager(snapshot, catalog, &restored).ok());
  EXPECT_EQ(restored.Allocation(a), MB(48));
  EXPECT_EQ(restored.Allocation(b), MB(32));
  EXPECT_EQ(restored.CachedBlocks(a), cache.CachedBlocks(a));
  EXPECT_EQ(restored.CachedBlocks(b), cache.CachedBlocks(b));
  // The restored manager snapshots identically, including via text.
  EXPECT_EQ(CaptureCacheSnapshot(restored, catalog), snapshot);
  const Result<DataManagerSnapshot> parsed =
      SnapshotFromText(SnapshotToText(snapshot), &catalog);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snapshot);
}

// --------------------------------------------------- Engines under churn --

Trace ChurnTrace(int num_jobs) {
  TraceOptions options;
  options.num_jobs = num_jobs;
  options.mean_interarrival = Minutes(3);
  options.median_duration = Minutes(20);
  options.max_duration = Hours(2);
  options.seed = 91;
  options.block_size = MB(256);  // Keeps the fine engine fast.
  return TraceGenerator(options).Generate();
}

SimConfig ChurnCluster() {
  SimConfig config;
  config.resources.total_gpus = 16;
  config.resources.total_cache = GB(400);
  config.resources.remote_io = MBps(300);
  config.resources.num_servers = 4;
  config.reschedule_period = Minutes(5);
  return config;
}

FaultPlan HeavyChurn(int num_jobs) {
  FaultChurnOptions options;
  options.horizon = Hours(12);
  options.server_crashes_per_hour = 4;
  options.worker_crashes_per_hour = 4;
  options.degrade_windows_per_hour = 2;
  options.dm_restarts_per_hour = 1;
  options.mean_server_downtime = Minutes(10);
  options.worker_restart_delay = Minutes(3);
  options.degrade_factor = 0.3;
  options.degrade_error_rate = 0.2;
  options.num_servers = 4;
  options.num_jobs = num_jobs;
  options.seed = 5;
  return GenerateFaultPlan(options);
}

// §6's headline: under an adversarial seeded schedule of every fault kind,
// every job still completes on both engines, and the fine engine's per-block
// accounting stays exact (each consumed block is exactly one hit or miss).
TEST(EngineFaults, EveryJobCompletesUnderHeavyChurnOnBothEngines) {
  const int kJobs = 12;
  const Trace trace = ChurnTrace(kJobs);
  std::int64_t total_blocks = 0;
  for (const JobSpec& spec : trace.jobs) {
    const Dataset& d = trace.catalog.Get(spec.dataset);
    total_blocks +=
        std::max<std::int64_t>(1, (spec.total_bytes + d.block_size / 2) / d.block_size);
  }

  for (const EngineKind engine : {EngineKind::kFine, EngineKind::kFlow}) {
    for (const CacheSystem cache : {CacheSystem::kSiloD, CacheSystem::kCoorDl}) {
      ExperimentConfig config;
      config.scheduler = SchedulerKind::kFifo;
      config.cache = cache;
      config.sim = ChurnCluster();
      config.sim.faults = HeavyChurn(kJobs);
      config.engine = engine;
      const SimResult result = RunExperiment(trace, config);

      ASSERT_EQ(result.jobs.size(), trace.jobs.size());
      for (const JobResult& j : result.jobs) {
        EXPECT_GE(j.first_start_time, 0) << "job " << j.id;
        EXPECT_GT(j.finish_time, j.first_start_time) << "job " << j.id;
      }
      EXPECT_GT(result.faults.server_crashes, 0);
      EXPECT_GT(result.faults.worker_crashes, 0);
      EXPECT_GT(result.faults.degrade_windows, 0);
      EXPECT_GT(result.faults.dm_restarts, 0);
      if (engine == EngineKind::kFine) {
        EXPECT_EQ(result.steps.miss_completions + result.steps.hit_completions,
                  static_cast<std::uint64_t>(total_blocks))
            << CacheSystemName(cache);
        EXPECT_GT(result.faults.blocks_lost, 0);
      }
      for (const FaultStats::Window& w : result.faults.windows) {
        EXPECT_GT(w.end, w.start);
        EXPECT_GE(w.avg_throughput, 0);
      }
    }
  }
}

TEST(EngineFaults, ChurnRunsAreDeterministic) {
  const Trace trace = ChurnTrace(8);
  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = ChurnCluster();
  config.sim.faults = HeavyChurn(8);
  config.engine = EngineKind::kFine;
  const SimResult a = RunExperiment(trace, config);
  const SimResult b = RunExperiment(trace, config);
  EXPECT_TRUE(PhysicallyIdentical(a, b));
}

// A single remote-bound job: a degrade window must slow it down, and the
// effect must be visible on both engines.
TEST(EngineFaults, DegradeWindowSlowsRemoteBoundJob) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("d", GB(4), MB(256));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = 2 * GB(4);
  trace.jobs.push_back(job);

  SimConfig sim;
  sim.resources.total_gpus = 4;
  sim.resources.total_cache = 0;  // Every read is remote.
  sim.resources.remote_io = MBps(100);
  sim.resources.num_servers = 1;

  for (const EngineKind engine : {EngineKind::kFine, EngineKind::kFlow}) {
    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.sim = sim;
    config.engine = engine;
    const SimResult baseline = RunExperiment(trace, config);

    const Result<FaultPlan> plan = FaultPlan::Parse("degrade t=5 factor=0.25 for=40");
    ASSERT_TRUE(plan.ok());
    config.sim.faults = *plan;
    const SimResult degraded = RunExperiment(trace, config);

    // 40 s at quarter rate costs ~30 s of transfer time; allow engine slack.
    EXPECT_GT(degraded.jobs[0].finish_time, baseline.jobs[0].finish_time + 15)
        << (engine == EngineKind::kFine ? "fine" : "flow");
    ASSERT_EQ(degraded.faults.windows.size(), 1u);
    EXPECT_LT(degraded.faults.windows[0].avg_throughput,
              baseline.total_throughput.TimeAverage(5, 45) + 1.0);
  }
}

TEST(EngineFaults, WorkerCrashDelaysThatJobOnly) {
  const ModelZoo zoo;
  Trace trace;
  for (int i = 0; i < 2; ++i) {
    const DatasetId d = trace.catalog.Add("d" + std::to_string(i), GB(2), MB(256));
    JobSpec job = MakeJob(static_cast<JobId>(i), zoo, "ResNet-50", 1, d, 1.0, 0);
    job.total_bytes = 2 * GB(2);
    trace.jobs.push_back(job);
  }
  SimConfig sim;
  sim.resources.total_gpus = 4;
  sim.resources.total_cache = GB(8);
  sim.resources.remote_io = MBps(400);
  sim.resources.num_servers = 1;
  sim.reschedule_period = 10;

  ExperimentConfig config;
  config.cache = CacheSystem::kSiloD;
  config.sim = sim;
  config.engine = EngineKind::kFine;
  const SimResult baseline = RunExperiment(trace, config);

  const Result<FaultPlan> plan = FaultPlan::Parse("worker-crash t=10 job=0 restart=120");
  ASSERT_TRUE(plan.ok());
  config.sim.faults = *plan;
  const SimResult faulted = RunExperiment(trace, config);

  EXPECT_EQ(faulted.faults.worker_crashes, 1);
  EXPECT_EQ(faulted.faults.worker_restarts, 1);
  // The crashed job pays roughly the outage; its peer is unaffected (same
  // dataset sizes but disjoint datasets and ample egress).
  EXPECT_GT(faulted.jobs[0].finish_time, baseline.jobs[0].finish_time + 60);
  EXPECT_NEAR(faulted.jobs[1].finish_time, baseline.jobs[1].finish_time,
              0.25 * baseline.jobs[1].finish_time + 30);
}

// ----------------------------------------- RestartCost accounting (§6) --

// Fine engine: under every policy, per-block accounting stays exact — each
// consumed block is exactly one hit or miss, and policy-mandated re-reads are
// charged to FaultStats::blocks_refetched, never silently absorbed.
TEST(EngineFaults, FineEngineBlockAccountingIsExactUnderEveryRestartPolicy) {
  const int kJobs = 10;
  const Trace trace = ChurnTrace(kJobs);
  std::int64_t total_blocks = 0;
  for (const JobSpec& spec : trace.jobs) {
    const Dataset& d = trace.catalog.Get(spec.dataset);
    total_blocks +=
        std::max<std::int64_t>(1, (spec.total_bytes + d.block_size / 2) / d.block_size);
  }

  FaultChurnOptions churn;
  churn.horizon = Hours(12);
  churn.worker_crashes_per_hour = 6;
  churn.worker_restart_delay = Minutes(2);
  churn.num_jobs = kJobs;
  churn.seed = 5;

  for (const char* spec :
       {"checkpoint-everything", "lose-partial-epoch", "checkpoint-interval:7"}) {
    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.sim = ChurnCluster();
    config.sim.faults = GenerateFaultPlan(churn);
    config.sim.restart_cost = *RestartCost::Parse(spec);
    config.engine = EngineKind::kFine;
    const SimResult result = RunExperiment(trace, config);

    ASSERT_EQ(result.jobs.size(), trace.jobs.size()) << spec;
    for (const JobResult& j : result.jobs) {
      EXPECT_GT(j.finish_time, 0) << spec << " job " << j.id;
    }
    EXPECT_GT(result.faults.worker_crashes, 0) << spec;
    EXPECT_EQ(result.steps.miss_completions + result.steps.hit_completions,
              static_cast<std::uint64_t>(total_blocks + result.faults.blocks_refetched))
        << spec;
    if (config.sim.restart_cost.policy == RestartCostPolicy::kCheckpointEverything) {
      EXPECT_EQ(result.faults.blocks_refetched, 0) << spec;
      EXPECT_DOUBLE_EQ(result.faults.compute_lost, 0) << spec;
    } else {
      EXPECT_GT(result.faults.blocks_refetched, 0) << spec;
    }
  }
}

// Flow engine: a remote-bound job re-fetches exactly the bytes its policy
// discards, so the finish-time delta against the checkpoint-everything run is
// bytes_refetched / link rate (resume penalty zeroed to keep the identity
// byte-exact).
TEST(EngineFaults, FlowEngineChargesExactlyTheRefetchedBytes) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("d", GB(4), MB(256));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = 2 * GB(4);
  trace.jobs.push_back(job);

  SimConfig sim;
  sim.resources.total_gpus = 4;
  sim.resources.total_cache = 0;  // Every read is remote: rate is the link rate.
  sim.resources.remote_io = MBps(100);
  sim.resources.num_servers = 1;
  sim.preempt_resume_penalty = 0;
  const Result<FaultPlan> plan = FaultPlan::Parse("worker-crash t=50 job=0 restart=40");
  ASSERT_TRUE(plan.ok());
  sim.faults = *plan;

  auto run = [&](const char* spec) {
    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.sim = sim;
    config.sim.restart_cost = *RestartCost::Parse(spec);
    config.engine = EngineKind::kFlow;
    return RunExperiment(trace, config);
  };

  const SimResult checkpointed = run("checkpoint-everything");
  EXPECT_DOUBLE_EQ(checkpointed.faults.bytes_refetched, 0);
  ASSERT_GT(checkpointed.jobs[0].finish_time, 0);

  // At the crash the job has read ~50 s * 100 MB/s ≈ 4.88 GB: past the first
  // 4 GB epoch boundary, and not on a 1 GB (4-block) checkpoint boundary.
  for (const char* spec : {"lose-partial-epoch", "checkpoint-interval:4"}) {
    const SimResult lossy = run(spec);
    EXPECT_EQ(lossy.faults.worker_crashes, 1) << spec;
    EXPECT_GT(lossy.faults.bytes_refetched, 0) << spec;
    EXPECT_GT(lossy.faults.compute_lost, 0) << spec;
    EXPECT_NEAR(lossy.jobs[0].finish_time - checkpointed.jobs[0].finish_time,
                lossy.faults.bytes_refetched / MBps(100), 0.5)
        << spec;
  }
}

// A zonal plan replays bit-identically on both engines, and the correlated
// crash costs performance, never correctness.
TEST(EngineFaults, ZonalChurnIsDeterministicOnBothEngines) {
  const Trace trace = ChurnTrace(8);
  FaultChurnOptions churn;
  churn.horizon = Hours(12);
  churn.num_jobs = 8;
  churn.seed = 17;
  ZoneChurn zone;
  zone.zone = FaultZone{"rack0", 0, 1};
  zone.crashes_per_hour = 2;
  zone.downtime = Minutes(10);
  zone.recovery_stagger = 30;
  zone.recovery_degrade_factor = 0.5;
  zone.recovery_degrade_duration = Minutes(5);
  churn.zones.push_back(zone);

  for (const EngineKind engine : {EngineKind::kFine, EngineKind::kFlow}) {
    ExperimentConfig config;
    config.cache = CacheSystem::kSiloD;
    config.sim = ChurnCluster();
    config.sim.faults = GenerateFaultPlan(churn);
    config.engine = engine;
    const SimResult a = RunExperiment(trace, config);
    const SimResult b = RunExperiment(trace, config);
    EXPECT_TRUE(PhysicallyIdentical(a, b))
        << (engine == EngineKind::kFine ? "fine" : "flow");
    ASSERT_EQ(a.jobs.size(), trace.jobs.size());
    for (const JobResult& j : a.jobs) {
      EXPECT_GT(j.finish_time, 0) << "job " << j.id;
    }
    EXPECT_GT(a.faults.server_crashes, 0);
    // Recovery-anchored degrade windows are in the plan (the engines only
    // observe the ones that open before the last job drains).
    int anchored_degrades = 0;
    for (const FaultEvent& e : config.sim.faults.events) {
      anchored_degrades += e.kind == FaultKind::kRemoteDegrade && e.severity < 1.0;
    }
    EXPECT_GT(anchored_degrades, 0);
  }
}

// ------------------------------------------- Sharded DataManager faults --

TEST(DataManagerShards, CrashDropsOnlyThatShardAndRecoveryRefills) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(200), MB(1));  // 200 blocks.
  const Dataset& d = catalog.Get(id);
  DataManager manager(MB(400), MBps(100), /*seed=*/7, /*num_shards=*/4);
  ASSERT_EQ(manager.num_shards(), 4);
  // Every shard gets an equal MB(100) quota share: ample for all 200 blocks.
  ASSERT_TRUE(manager.AllocateCacheSize(d, MB(400)).ok());
  for (std::int64_t b = 0; b < 200; ++b) {
    manager.AccessBlock(d, b);
  }
  ASSERT_EQ(manager.CachedBytes(id), MB(200));
  EXPECT_EQ(manager.CachedBlocks(id).size(), 200u);

  const std::int64_t lost = manager.CrashShard(1);
  ASSERT_GT(lost, 0);
  ASSERT_LT(lost, 200);
  EXPECT_FALSE(manager.shard_alive(1));
  EXPECT_TRUE(manager.shard_alive(0));
  EXPECT_EQ(manager.CachedBytes(id), MB(200) - lost * MB(1));

  // A dead shard misses and admits nothing; survivors keep their residents.
  for (std::int64_t b = 0; b < 200; ++b) {
    manager.AccessBlock(d, b);
  }
  EXPECT_EQ(manager.CachedBytes(id), MB(200) - lost * MB(1));

  // Crashing again, or out-of-range shards, is a counted no-op.
  EXPECT_EQ(manager.CrashShard(1), 0);
  EXPECT_EQ(manager.CrashShard(-1), 0);
  EXPECT_EQ(manager.CrashShard(4), 0);
  EXPECT_FALSE(manager.shard_alive(-1));
  EXPECT_FALSE(manager.shard_alive(4));

  // Recovery rejoins empty; the normal miss path restores the footprint.
  manager.RecoverShard(1);
  EXPECT_TRUE(manager.shard_alive(1));
  EXPECT_EQ(manager.CachedBytes(id), MB(200) - lost * MB(1));
  for (std::int64_t b = 0; b < 200; ++b) {
    manager.AccessBlock(d, b);
  }
  EXPECT_EQ(manager.CachedBytes(id), MB(200));
}

TEST(DataManagerShards, RestoreDropsBlocksRoutedToDeadShards) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(200), MB(1));
  const Dataset& d = catalog.Get(id);
  DataManager filled(MB(400), MBps(100), /*seed=*/7, /*num_shards=*/4);
  ASSERT_TRUE(filled.AllocateCacheSize(d, MB(400)).ok());
  for (std::int64_t b = 0; b < 200; ++b) {
    filled.AccessBlock(d, b);
  }
  const std::vector<std::int64_t> all = filled.CachedBlocks(id);
  ASSERT_EQ(all.size(), 200u);
  // Placement is deterministic in the seed, so this count is what a fresh
  // manager must drop when the same shard is dead at restore time.
  const std::int64_t on_shard2 = filled.CrashShard(2);
  ASSERT_GT(on_shard2, 0);

  DataManager fresh(MB(400), MBps(100), /*seed=*/7, /*num_shards=*/4);
  ASSERT_TRUE(fresh.AllocateCacheSize(d, MB(400)).ok());
  fresh.CrashShard(2);
  ASSERT_TRUE(fresh.RestoreCachedBlocks(d, all).ok());
  EXPECT_EQ(static_cast<std::int64_t>(fresh.CachedBlocks(id).size()),
            200 - on_shard2);
  for (const std::int64_t b : fresh.CachedBlocks(id)) {
    EXPECT_TRUE(fresh.IsCached(d, b));
  }

  // After recovery the dropped blocks refill through the miss path.
  fresh.RecoverShard(2);
  for (std::int64_t b = 0; b < 200; ++b) {
    fresh.AccessBlock(d, b);
  }
  EXPECT_EQ(fresh.CachedBlocks(id), all);
}

TEST(DataManagerShards, SingleShardKeepsTheHistoricalFacade) {
  DatasetCatalog catalog;
  const DatasetId id = catalog.Add("d", MB(10), MB(1));
  const Dataset& d = catalog.Get(id);
  DataManager manager(MB(10), MBps(100));
  EXPECT_EQ(manager.num_shards(), 1);
  ASSERT_TRUE(manager.AllocateCacheSize(d, MB(10)).ok());
  manager.AccessBlock(d, 3);
  // cache() stays valid with one shard and sees the routed admissions.
  EXPECT_TRUE(manager.cache().IsCached(id, 3));
  EXPECT_EQ(manager.cache().CachedBytes(id), manager.CachedBytes(id));
}

}  // namespace
}  // namespace silod
