// Tests for src/core: Algorithm 1 composition, the Data Manager's Table 3
// API, irregular-job partitioning (§6), and the experiment facade.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>

#include "src/common/units.h"
#include "src/core/data_manager.h"
#include "src/core/partition.h"
#include "src/core/policy_registry.h"
#include "src/core/silod_scheduler.h"
#include "src/core/system.h"
#include "src/sched/fifo.h"
#include "src/sched/greedy.h"

namespace silod {
namespace {

// -------------------------------------------------------- MakeScheduler ----

TEST(MakeScheduler, AllTwelveCombinationsConstruct) {
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kSjf, SchedulerKind::kGavel}) {
    for (const CacheSystem cache : {CacheSystem::kSiloD, CacheSystem::kAlluxio,
                                    CacheSystem::kCoorDl, CacheSystem::kQuiver}) {
      const auto scheduler = MakeScheduler(kind, cache);
      ASSERT_NE(scheduler, nullptr);
      EXPECT_FALSE(scheduler->name().empty());
    }
  }
}

TEST(MakeScheduler, SiloDVariantsUseCoDesignedStorage) {
  EXPECT_EQ(MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD)->name(),
            "fifo+silod-greedy");
  EXPECT_EQ(MakeScheduler(SchedulerKind::kGavel, CacheSystem::kSiloD)->name(), "gavel-silod");
  SchedulerOptions ablation;
  ablation.manage_remote_io = false;
  EXPECT_EQ(MakeScheduler(SchedulerKind::kGavel, CacheSystem::kSiloD, ablation)->name(),
            "gavel-silod-cache-only");
}

// ---------------------------------------------------------- DataManager ----

class DataManagerTest : public ::testing::Test {
 protected:
  DataManagerTest() : manager_(GB(10), MBps(100)) {
    dataset_ = MakeDataset(0, "d", GB(4), MB(100));
  }
  DataManager manager_;
  Dataset dataset_;
};

TEST_F(DataManagerTest, Table3AllocationApis) {
  EXPECT_TRUE(manager_.AllocateCacheSize(dataset_, GB(2)).ok());
  EXPECT_TRUE(manager_.AllocateRemoteIo(0, MBps(50)).ok());
  EXPECT_EQ(manager_.cache().Allocation(dataset_.id), GB(2));
  EXPECT_DOUBLE_EQ(manager_.remote().JobThrottle(0), MBps(50));
  EXPECT_FALSE(manager_.AllocateRemoteIo(-1, MBps(1)).ok());
  EXPECT_FALSE(manager_.AllocateRemoteIo(0, -1.0).ok());
  EXPECT_FALSE(manager_.AllocateCacheSize(dataset_, GB(11)).ok());
}

TEST_F(DataManagerTest, ReadBlockMissThenHit) {
  ASSERT_TRUE(manager_.AllocateCacheSize(dataset_, GB(4)).ok());
  ASSERT_TRUE(manager_.AllocateRemoteIo(1, MBps(50)).ok());
  const auto miss = manager_.ReadBlock(1, dataset_, 0);
  EXPECT_FALSE(miss.hit);
  EXPECT_NEAR(miss.remote_seconds, static_cast<double>(MB(100)) / MBps(50), 1e-9);
  const auto hit = manager_.ReadBlock(1, dataset_, 0);
  EXPECT_TRUE(hit.hit);
  EXPECT_DOUBLE_EQ(hit.remote_seconds, 0);
}

TEST_F(DataManagerTest, UnthrottledReadUsesEgressLimit) {
  const auto miss = manager_.ReadBlock(2, dataset_, 1);
  EXPECT_NEAR(miss.remote_seconds, static_cast<double>(MB(100)) / MBps(100), 1e-9);
}

TEST_F(DataManagerTest, ApplyPlanEnforcesQuotasAndThrottles) {
  DatasetCatalog catalog;
  const DatasetId a = catalog.Add("a", GB(4), MB(100));
  const DatasetId b = catalog.Add("b", GB(8), MB(100));
  AllocationPlan plan;
  plan.cache_model = CacheModelKind::kDatasetQuota;
  plan.manages_remote_io = true;
  plan.dataset_cache[a] = GB(3);
  plan.dataset_cache[b] = GB(7);
  plan.jobs[0] = JobAllocation{true, 1, 0, MBps(30)};
  plan.jobs[1] = JobAllocation{true, 1, 0, MBps(70)};
  ASSERT_TRUE(manager_.ApplyPlan(plan, catalog).ok());
  EXPECT_EQ(manager_.cache().Allocation(a), GB(3));
  EXPECT_EQ(manager_.cache().Allocation(b), GB(7));
  EXPECT_DOUBLE_EQ(manager_.remote().JobThrottle(0), MBps(30));
  EXPECT_DOUBLE_EQ(manager_.remote().JobThrottle(1), MBps(70));

  // Reallocate: swap the quotas; shrink-before-grow must make this legal.
  plan.dataset_cache[a] = GB(7);
  plan.dataset_cache[b] = GB(3);
  EXPECT_TRUE(manager_.ApplyPlan(plan, catalog).ok());
}

TEST_F(DataManagerTest, ApplyPlanRejectsNonQuotaModels) {
  DatasetCatalog catalog;
  AllocationPlan plan;
  plan.cache_model = CacheModelKind::kSharedLru;
  EXPECT_FALSE(manager_.ApplyPlan(plan, catalog).ok());
}

// -------------------------------------------------------------- Partition --

class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() {
    snapshot_.catalog = &catalog_;
    snapshot_.resources.total_gpus = 8;
    snapshot_.resources.total_cache = TB(2);
    snapshot_.resources.remote_io = MBps(200);
  }

  void AddJob(bool regular, int gpus = 1) {
    const DatasetId d =
        catalog_.Add("d" + std::to_string(jobs_.size()), GB(143), MB(64));
    JobSpec job = MakeJob(static_cast<JobId>(jobs_.size()), zoo_, "ResNet-50", gpus, d,
                          Hours(1), 0);
    job.regular = regular;
    if (!regular) {
      job.curriculum = true;
    }
    jobs_.push_back(job);
  }

  Snapshot& snapshot() {
    snapshot_.jobs.clear();
    for (const JobSpec& j : jobs_) {
      JobView view;
      view.spec = &j;
      view.remaining_bytes = j.total_bytes;
      snapshot_.jobs.push_back(view);
    }
    return snapshot_;
  }

  ModelZoo zoo_;
  DatasetCatalog catalog_;
  std::deque<JobSpec> jobs_;
  Snapshot snapshot_;
};

TEST_F(PartitionTest, SplitProportionalToGpuDemand) {
  AddJob(true, 6);
  AddJob(false, 2);
  const PartitionSplit split = SplitResources(snapshot());
  EXPECT_NEAR(split.regular_fraction, 0.75, 1e-9);
  EXPECT_EQ(split.regular.total_gpus + split.irregular.total_gpus, 8);
  EXPECT_EQ(split.regular.total_cache + split.irregular.total_cache, TB(2));
  EXPECT_NEAR(split.regular.remote_io + split.irregular.remote_io, MBps(200), 1.0);
}

TEST_F(PartitionTest, AllRegularKeepsEverything) {
  AddJob(true);
  const PartitionSplit split = SplitResources(snapshot());
  EXPECT_DOUBLE_EQ(split.regular_fraction, 1.0);
  EXPECT_EQ(split.regular.total_cache, TB(2));
}

TEST_F(PartitionTest, SplitClampedUnderSkew) {
  for (int i = 0; i < 20; ++i) {
    AddJob(true);
  }
  AddJob(false);
  const PartitionSplit split = SplitResources(snapshot());
  EXPECT_LE(split.regular_fraction, 0.9);  // Irregular partition stays viable.
}

TEST_F(PartitionTest, MergedPlanIsValidAndDisjoint) {
  AddJob(true, 2);
  AddJob(true, 2);
  AddJob(false, 2);
  AddJob(false, 1);
  PartitionedScheduler scheduler(
      MakeScheduler(SchedulerKind::kGavel, CacheSystem::kSiloD),
      MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD));
  const AllocationPlan plan = scheduler.Schedule(snapshot());
  EXPECT_TRUE(plan.Validate(snapshot().resources).ok());
  // Every job is scheduled by exactly one partition; with ample GPUs all run.
  for (const JobSpec& j : jobs_) {
    EXPECT_TRUE(plan.IsRunning(j.id)) << j.id;
  }
  // Irregular jobs got a remote-IO slice from their own partition.
  EXPECT_TRUE(plan.manages_remote_io);
  EXPECT_TRUE(std::isfinite(plan.Get(2).remote_io));
}

TEST_F(PartitionTest, PureRegularDelegates) {
  AddJob(true);
  PartitionedScheduler scheduler(
      MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD),
      MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD));
  const AllocationPlan plan = scheduler.Schedule(snapshot());
  EXPECT_TRUE(plan.IsRunning(0));
  EXPECT_TRUE(plan.Validate(snapshot().resources).ok());
}

// ----------------------------------------------------------- RunExperiment --

TEST(RunExperiment, NamesAndBothEngines) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("x", GB(5), MB(16));
  JobSpec job = MakeJob(0, zoo, "ResNet-50", 1, d, 1.0, 0);
  job.total_bytes = GB(10);
  trace.jobs.push_back(job);

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kFifo;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 4;
  config.sim.resources.total_cache = GB(5);
  config.sim.resources.remote_io = MBps(50);
  EXPECT_EQ(config.Name(), "FIFO-SiloD");

  config.engine = EngineKind::kFlow;
  const SimResult flow = RunExperiment(trace, config);
  config.engine = EngineKind::kFine;
  const SimResult fine = RunExperiment(trace, config);
  EXPECT_GT(flow.AvgJctSeconds(), 0);
  EXPECT_NEAR(flow.AvgJctSeconds(), fine.AvgJctSeconds(), 0.08 * fine.AvgJctSeconds());
}

// --------------------------------------------------------- PolicyRegistry --

TEST(PolicyRegistry, EveryEnumPairResolvesByName) {
  for (const SchedulerKind kind :
       {SchedulerKind::kFifo, SchedulerKind::kSjf, SchedulerKind::kGavel}) {
    for (const CacheSystem cache :
         {CacheSystem::kSiloD, CacheSystem::kAlluxio, CacheSystem::kAlluxioLfu,
          CacheSystem::kCoorDl, CacheSystem::kQuiver}) {
      const std::string name = PolicyName(kind, cache);
      EXPECT_TRUE(PolicyRegistry::Global().Contains(name)) << name;
      const Result<std::shared_ptr<Scheduler>> by_name = MakeSchedulerByName(name);
      ASSERT_TRUE(by_name.ok()) << name << ": " << by_name.status().ToString();
      // The registry builds the same policy the enum factory does.
      EXPECT_EQ((*by_name)->name(), MakeScheduler(kind, cache)->name()) << name;
    }
  }
  EXPECT_GE(PolicyRegistry::Global().List().size(), 15u);
}

TEST(PolicyRegistry, UnknownNameListsKnownPolicies) {
  EXPECT_FALSE(PolicyRegistry::Global().Contains("lifo+silod"));
  const Result<std::shared_ptr<Scheduler>> made = MakeSchedulerByName("lifo+silod");
  ASSERT_FALSE(made.ok());
  EXPECT_NE(made.status().ToString().find("fifo+silod"), std::string::npos)
      << made.status().ToString();
}

TEST(PolicyRegistry, RejectsDuplicateRegistration) {
  const Status again = PolicyRegistry::Global().Register(
      "fifo+silod", "dup", [](const SchedulerOptions& options) {
        return MakeScheduler(SchedulerKind::kFifo, CacheSystem::kSiloD, options);
      });
  EXPECT_FALSE(again.ok());
}

TEST(PolicyRegistry, NamedPolicyRunsIdenticallyToEnumPair) {
  const ModelZoo zoo;
  Trace trace;
  const DatasetId d = trace.catalog.Add("x", GB(5), MB(16));
  trace.jobs.push_back(MakeJob(0, zoo, "ResNet-50", 1, d, Hours(1), 0));
  trace.jobs.push_back(MakeJob(1, zoo, "BERT", 2, d, Hours(1), 60));

  ExperimentConfig config;
  config.scheduler = SchedulerKind::kSjf;
  config.cache = CacheSystem::kSiloD;
  config.sim.resources.total_gpus = 4;
  config.sim.resources.total_cache = GB(5);
  config.sim.resources.remote_io = MBps(200);
  const SimResult via_enum = RunExperiment(trace, config);

  config.policy = "sjf+silod";  // Overrides the enum pair.
  const SimResult via_name = RunExperiment(trace, config);
  EXPECT_TRUE(PhysicallyIdentical(via_enum, via_name));
}

}  // namespace
}  // namespace silod
