// Token bucket rate limiter.
//
// Used in two places:
//   - virtual time: the fine simulation engine throttles each job's remote
//     fetches to its allocated remote-IO rate (the FUSE client behaviour of
//     §6) by asking when a transfer of B bytes may complete;
//   - wall-clock time: the real threaded data pipeline enforces an egress
//     limit by sleeping until tokens are available.
//
// The bucket is driven explicitly by the caller's clock so the same
// implementation serves both.
#ifndef SILOD_SRC_STORAGE_TOKEN_BUCKET_H_
#define SILOD_SRC_STORAGE_TOKEN_BUCKET_H_

#include "src/common/units.h"

namespace silod {

class TokenBucket {
 public:
  // `rate` tokens (bytes) per second; `burst` is the bucket capacity.  The
  // bucket starts full.  rate may be kUnlimitedRate.
  TokenBucket(BytesPerSec rate, Bytes burst);

  // Changes the fill rate going forward (allocation changes at scheduler
  // ticks); accrues tokens up to `now` under the old rate first.
  void SetRate(BytesPerSec rate, Seconds now);

  // Earliest time >= now at which `bytes` tokens can be consumed, without
  // consuming them.
  Seconds TimeToAdmit(Bytes bytes, Seconds now) const;

  // Consumes `bytes` tokens at time `t` (t must be >= the admit time, which
  // callers obtain from TimeToAdmit).  The balance may go to exactly zero,
  // never negative.
  void Consume(Bytes bytes, Seconds t);

  // Current token balance at `now` (diagnostics, tests).
  double TokensAt(Seconds now) const;

  BytesPerSec rate() const { return rate_; }

 private:
  void AdvanceTo(Seconds now);

  BytesPerSec rate_;
  double burst_;
  double tokens_;
  Seconds last_update_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_TOKEN_BUCKET_H_
