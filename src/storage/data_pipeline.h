// A runnable data-loading pipeline: the FUSE-client-plus-DALI analogue.
//
// This is the concrete realization of Fig. 5: worker threads prefetch the
// blocks of the current epoch, in the epoch's shuffled order, into a bounded
// staging buffer; the trainer consumes blocks in order with NextBlock().
// Blocks fetched from the remote store pass through a uniform cache (admit
// until full, never evict, §2.2), so from the second epoch on a c/d fraction
// of reads are served locally without consuming egress bandwidth.
//
// The quickstart example and the storage tests run this for real (threads,
// sleeps, checksums); the simulation engines model the same pipeline in
// virtual time.
#ifndef SILOD_SRC_STORAGE_DATA_PIPELINE_H_
#define SILOD_SRC_STORAGE_DATA_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/storage/inmem_remote.h"
#include "src/workload/dataset.h"

namespace silod {

struct PipelineOptions {
  int prefetch_threads = 2;
  // Blocks the prefetchers may run ahead of the consumer.
  int prefetch_depth = 4;
  // Local uniform-cache capacity in bytes.
  Bytes cache_capacity = 0;
  std::uint64_t shuffle_seed = 1;
};

struct PipelineStats {
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  Seconds consumer_stall_seconds = 0;

  double HitRatio() const {
    const std::int64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(total);
  }
};

class DataPipeline {
 public:
  DataPipeline(InMemRemoteStore* remote, Dataset dataset, PipelineOptions options);
  ~DataPipeline();

  DataPipeline(const DataPipeline&) = delete;
  DataPipeline& operator=(const DataPipeline&) = delete;

  // Starts a new epoch: reshuffles the access order and launches prefetching.
  // Must not be called while an epoch is in progress.
  void StartEpoch();

  // Returns the next block of the current epoch, blocking until prefetched.
  // Exactly dataset.num_blocks calls per epoch.  The returned pair is
  // (block index, payload).
  std::pair<std::int64_t, std::vector<std::uint8_t>> NextBlock();

  // True once every block of the current epoch has been consumed.
  bool EpochDone() const;

  PipelineStats stats() const;
  Bytes cached_bytes() const;
  const Dataset& dataset() const { return dataset_; }

 private:
  void PrefetchLoop();
  void StopWorkers();

  InMemRemoteStore* const remote_;
  const Dataset dataset_;
  const PipelineOptions options_;
  Rng rng_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Wakes prefetchers.
  std::condition_variable ready_cv_;  // Wakes the consumer.

  std::vector<std::int64_t> order_;         // Shuffled block order of this epoch.
  std::int64_t next_to_fetch_ = 0;          // Next position a prefetcher will claim.
  std::int64_t next_to_consume_ = 0;        // Next position NextBlock() returns.
  std::map<std::int64_t, std::vector<std::uint8_t>> staged_;  // position -> payload

  // Uniform cache: block -> payload; admit-until-full, never evicted.
  std::map<std::int64_t, std::vector<std::uint8_t>> cache_;
  Bytes cached_bytes_ = 0;

  PipelineStats stats_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_DATA_PIPELINE_H_
