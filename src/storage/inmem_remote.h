// An executable stand-in for the cloud storage service.
//
// The paper's prototype reads Azure Blob Storage through Alluxio; we have no
// cloud account, so this in-memory remote store synthesizes block contents
// deterministically (no actual multi-terabyte allocation) and enforces the
// account's egress limit with a wall-clock token bucket, exactly the
// behaviour the rest of the system observes: bytes arrive no faster than the
// egress cap, and every block's payload is verifiable by checksum.
//
// Thread-safe: many pipeline prefetch threads read concurrently.
#ifndef SILOD_SRC_STORAGE_INMEM_REMOTE_H_
#define SILOD_SRC_STORAGE_INMEM_REMOTE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/units.h"
#include "src/storage/token_bucket.h"
#include "src/workload/dataset.h"

namespace silod {

class InMemRemoteStore {
 public:
  // `egress_limit` applies across all readers; `burst` bounds how far a reader
  // can run ahead of the sustained rate.
  InMemRemoteStore(BytesPerSec egress_limit, Bytes burst);

  void RegisterDataset(const Dataset& dataset);

  // Blocking read of one block.  Sleeps as needed to respect the egress
  // limit, then materializes the deterministic payload.
  std::vector<std::uint8_t> ReadBlock(DatasetId dataset, std::int64_t block);

  // The checksum ReadBlock's payload will have; computable without the bytes.
  static std::uint64_t ExpectedChecksum(DatasetId dataset, std::int64_t block, Bytes size);

  static std::uint64_t Checksum(const std::vector<std::uint8_t>& data);

  Bytes bytes_served() const { return bytes_served_.load(); }

 private:
  mutable std::mutex mu_;
  TokenBucket bucket_;
  std::map<DatasetId, Dataset> datasets_;
  std::atomic<Bytes> bytes_served_{0};
  const std::int64_t start_ns_;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_INMEM_REMOTE_H_
