// An executable stand-in for the cloud storage service.
//
// The paper's prototype reads Azure Blob Storage through Alluxio; we have no
// cloud account, so this in-memory remote store synthesizes block contents
// deterministically (no actual multi-terabyte allocation) and enforces the
// account's egress limit with a wall-clock token bucket, exactly the
// behaviour the rest of the system observes: bytes arrive no faster than the
// egress cap, and every block's payload is verifiable by checksum.
//
// Thread-safe: many pipeline prefetch threads read concurrently.
#ifndef SILOD_SRC_STORAGE_INMEM_REMOTE_H_
#define SILOD_SRC_STORAGE_INMEM_REMOTE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/storage/token_bucket.h"
#include "src/workload/dataset.h"

namespace silod {

class InMemRemoteStore {
 public:
  // `egress_limit` applies across all readers; `burst` bounds how far a reader
  // can run ahead of the sustained rate.
  InMemRemoteStore(BytesPerSec egress_limit, Bytes burst);

  void RegisterDataset(const Dataset& dataset);

  // Blocking read of one block.  Sleeps as needed to respect the egress
  // limit, then materializes the deterministic payload.  Retries transient
  // errors internally (callers that want to back off use TryReadBlock).
  std::vector<std::uint8_t> ReadBlock(DatasetId dataset, std::int64_t block);

  // Like ReadBlock, but surfaces an injected transient failure as
  // Status::Internal instead of retrying.  A failed read spends no tokens.
  Result<std::vector<std::uint8_t>> TryReadBlock(DatasetId dataset, std::int64_t block);

  // --- Fault injection (§6) -------------------------------------------------
  // Degrades the store: sustained egress drops to rate_factor * nominal and
  // each read fails with probability error_rate.  rate_factor in (0, 1],
  // error_rate in [0, 1).
  void SetFault(double rate_factor, double error_rate);
  void ClearFault() { SetFault(1.0, 0.0); }
  std::int64_t transient_errors() const { return transient_errors_.load(); }

  // The checksum ReadBlock's payload will have; computable without the bytes.
  static std::uint64_t ExpectedChecksum(DatasetId dataset, std::int64_t block, Bytes size);

  static std::uint64_t Checksum(const std::vector<std::uint8_t>& data);

  Bytes bytes_served() const { return bytes_served_.load(); }

 private:
  mutable std::mutex mu_;
  TokenBucket bucket_;
  std::map<DatasetId, Dataset> datasets_;
  std::atomic<Bytes> bytes_served_{0};
  std::atomic<std::int64_t> transient_errors_{0};
  const BytesPerSec egress_limit_;
  double error_rate_ = 0;  // Guarded by mu_.
  Rng rng_{0xFA117};       // Guarded by mu_.
  const std::int64_t start_ns_;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_INMEM_REMOTE_H_
