#include "src/storage/fabric.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

StorageFabric::StorageFabric(FabricConfig config) : config_(config) {
  SILOD_CHECK(config.local_disk_bw > 0) << "local disk bandwidth must be positive";
  SILOD_CHECK(config.nic_bw > 0) << "NIC bandwidth must be positive";
  SILOD_CHECK(config.peer_overhead >= 0 && config.peer_overhead < 1)
      << "peer overhead must be a fraction";
}

BytesPerSec StorageFabric::PerServerCacheReadRate(int num_servers) const {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  if (num_servers == 1) {
    return config_.local_disk_bw;
  }
  const double n = static_cast<double>(num_servers);
  const double peer_frac = (n - 1.0) / n;
  // Each server's disk serves its local job (1/n of demand) plus peer requests
  // for its shard of everyone else's data — in aggregate exactly its fair
  // share, so the disk still bounds total service at local_disk_bw.
  // The NIC carries incoming peer reads (peer_frac of the job's demand) and an
  // equal volume of outgoing serves; full duplex means the larger direction
  // binds.  Peer bytes additionally pay the software overhead.
  const BytesPerSec disk_bound = config_.local_disk_bw;
  const BytesPerSec nic_bound = config_.nic_bw / (peer_frac * (1.0 + config_.peer_overhead));
  return std::min(disk_bound, nic_bound);
}

BytesPerSec StorageFabric::LocalOnlyThroughput(int num_servers,
                                               BytesPerSec per_server_demand) const {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  return std::min(per_server_demand, config_.local_disk_bw) * num_servers;
}

BytesPerSec StorageFabric::ClusterCacheThroughput(int num_servers,
                                                  BytesPerSec per_server_demand) const {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  const BytesPerSec per_server = std::min(per_server_demand, PerServerCacheReadRate(num_servers));
  return per_server * num_servers;
}

}  // namespace silod
