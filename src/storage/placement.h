// Block placement across cache servers.
//
// The distributed cache consolidates every server's local disk into one pool
// (§2.1); Fig. 3's premise is that a dataset's blocks spread evenly, so each
// job reads 1/n locally and (n-1)/n from peers at fabric speed.  We place
// blocks with consistent hashing over a ring of virtual nodes, which gives
// (a) even spread, (b) deterministic lookup from (dataset, block) alone, and
// (c) minimal movement (~1/(n+1) of blocks) when a server joins — the
// property that makes cluster resizes cheap for a cache.
#ifndef SILOD_SRC_STORAGE_PLACEMENT_H_
#define SILOD_SRC_STORAGE_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/common/topology.h"
#include "src/workload/dataset.h"

namespace silod {

class BlockPlacement {
 public:
  // `virtual_nodes` ring points per server smooth the load distribution.
  explicit BlockPlacement(int num_servers, int virtual_nodes = 128,
                          std::uint64_t seed = 0xB10C);

  int num_servers() const { return num_servers_; }

  // The server caching this block; deterministic.
  int ServerFor(DatasetId dataset, std::int64_t block) const;

  // How many of `dataset`'s blocks land on each server.
  std::vector<std::int64_t> CountPerServer(const Dataset& dataset) const;

  // Fraction of `dataset`'s blocks whose server differs under `other` — the
  // data that must move on a topology change.
  double MovedFraction(const Dataset& dataset, const BlockPlacement& other) const;

 private:
  struct RingPoint {
    std::uint64_t hash;
    int server;
    bool operator<(const RingPoint& o) const { return hash < o.hash; }
  };
  int num_servers_;
  std::vector<RingPoint> ring_;
};

// Zone-aware placement: routes each block to a zone with probability
// proportional to the dataset's per-zone cache share (weighted rendezvous
// hashing — deterministic from (dataset, block) alone, and minimal movement
// when shares change: only blocks whose winning zone changes move), then to a
// server within the zone by consistent hashing on a per-zone ring.  This is
// how the Data Manager realises the scheduler's AllocationPlan
// dataset_zone_cache spread at block granularity.
class ZonePlacement {
 public:
  // `topology` must be non-empty; callers normally pass a Cover()ed topology
  // so every server belongs to some zone.
  explicit ZonePlacement(const ClusterTopology& topology, int virtual_nodes = 128,
                         std::uint64_t seed = 0xB10C);

  const ClusterTopology& topology() const { return topology_; }

  // The server caching this block under per-zone weights indexed like
  // topology().zones() — typically the dataset's per-zone cache shares.
  // All-zero or size-mismatched weights fall back to uniform zones.
  int ServerFor(DatasetId dataset, std::int64_t block,
                const std::vector<Bytes>& zone_weights) const;

  // The zone the block lands in (exposed for tests and accounting).
  int ZoneFor(DatasetId dataset, std::int64_t block,
              const std::vector<Bytes>& zone_weights) const;

 private:
  ClusterTopology topology_;
  std::vector<BlockPlacement> zone_rings_;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_PLACEMENT_H_
