// Storage fabric model (Fig. 3).
//
// Modern GPU clusters carry cache traffic on a high-speed storage fabric,
// separate from the InfiniBand used for gradient all-reduce (§2.1, Flat
// Datacenter Storage [54]).  With datasets spread uniformly over n servers'
// caches, a job reads 1/n of its data from the local disk and (n-1)/n from
// peers.  Fig. 3 shows that even at 50 servers the cluster sustains near-local
// throughput; the limiting resources are each server's local disk bandwidth
// and its storage-fabric NIC (which carries both its outgoing serves to peers
// and its own incoming peer reads).
#ifndef SILOD_SRC_STORAGE_FABRIC_H_
#define SILOD_SRC_STORAGE_FABRIC_H_

#include "src/common/units.h"

namespace silod {

struct FabricConfig {
  // NVMe array read bandwidth per server.
  BytesPerSec local_disk_bw = GBps(3.2);
  // Storage-fabric NIC bandwidth per server (full duplex), e.g. 100 GbE.
  BytesPerSec nic_bw = Gbps(100);
  // Per-hop software overhead factor on peer reads (FUSE + RPC), ~4%.
  double peer_overhead = 0.04;
};

class StorageFabric {
 public:
  explicit StorageFabric(FabricConfig config);

  const FabricConfig& config() const { return config_; }

  // Aggregate cluster cache-read throughput with `num_servers` servers each
  // demanding `per_server_demand` of cached data, blocks uniformly spread.
  // This is the "Local Read" + "Peer Read" experiment of Fig. 3 (jobs of
  // 1923 MB/s per 8-A100 server).
  BytesPerSec ClusterCacheThroughput(int num_servers, BytesPerSec per_server_demand) const;

  // Throughput when every byte is served by the local disk (Fig. 3's
  // linear-scaling reference line).
  BytesPerSec LocalOnlyThroughput(int num_servers, BytesPerSec per_server_demand) const;

  // Per-job achievable cache read rate for one server's workers given the
  // spread above (used by the fine engine to bound cache-hit service rate).
  BytesPerSec PerServerCacheReadRate(int num_servers) const;

 private:
  FabricConfig config_;
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_FABRIC_H_
