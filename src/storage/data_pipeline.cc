#include "src/storage/data_pipeline.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/common/logging.h"

namespace silod {
namespace {

Seconds WallSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DataPipeline::DataPipeline(InMemRemoteStore* remote, Dataset dataset, PipelineOptions options)
    : remote_(remote), dataset_(std::move(dataset)), options_(options),
      rng_(options.shuffle_seed) {
  SILOD_CHECK(remote != nullptr) << "remote store required";
  SILOD_CHECK(options.prefetch_threads >= 1) << "need at least one prefetcher";
  SILOD_CHECK(options.prefetch_depth >= 1) << "prefetch depth must be positive";
  remote_->RegisterDataset(dataset_);
  workers_.reserve(static_cast<std::size_t>(options.prefetch_threads));
  for (int i = 0; i < options.prefetch_threads; ++i) {
    workers_.emplace_back([this] { PrefetchLoop(); });
  }
}

DataPipeline::~DataPipeline() { StopWorkers(); }

void DataPipeline::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void DataPipeline::StartEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  SILOD_CHECK(order_.empty() || next_to_consume_ == dataset_.num_blocks)
      << "StartEpoch called mid-epoch";
  order_.resize(static_cast<std::size_t>(dataset_.num_blocks));
  std::iota(order_.begin(), order_.end(), std::int64_t{0});
  rng_.Shuffle(order_);
  next_to_fetch_ = 0;
  next_to_consume_ = 0;
  staged_.clear();
  work_cv_.notify_all();
}

bool DataPipeline::EpochDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !order_.empty() && next_to_consume_ == dataset_.num_blocks;
}

void DataPipeline::PrefetchLoop() {
  for (;;) {
    std::int64_t position = -1;
    std::int64_t block = -1;
    bool hit = false;
    std::vector<std::uint8_t> payload;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_ ||
               (!order_.empty() && next_to_fetch_ < dataset_.num_blocks &&
                next_to_fetch_ < next_to_consume_ + options_.prefetch_depth);
      });
      if (stopping_) {
        return;
      }
      position = next_to_fetch_++;
      block = order_[static_cast<std::size_t>(position)];
      auto it = cache_.find(block);
      if (it != cache_.end()) {
        hit = true;
        payload = it->second;
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
    }

    if (!hit) {
      // Remote read happens outside the lock: it sleeps to model egress
      // throttling and must not serialize other prefetchers.
      payload = remote_->ReadBlock(dataset_.id, block);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!hit && cached_bytes_ + static_cast<Bytes>(payload.size()) <= options_.cache_capacity) {
        // Uniform caching: admit until the allocation is full, never evict.
        cached_bytes_ += static_cast<Bytes>(payload.size());
        cache_.emplace(block, payload);
      }
      staged_.emplace(position, std::move(payload));
    }
    ready_cv_.notify_all();
  }
}

std::pair<std::int64_t, std::vector<std::uint8_t>> DataPipeline::NextBlock() {
  const Seconds wait_start = WallSeconds();
  std::unique_lock<std::mutex> lock(mu_);
  SILOD_CHECK(!order_.empty()) << "StartEpoch before NextBlock";
  SILOD_CHECK(next_to_consume_ < dataset_.num_blocks) << "epoch already fully consumed";
  const std::int64_t position = next_to_consume_;
  ready_cv_.wait(lock, [&] { return staged_.count(position) > 0; });
  stats_.consumer_stall_seconds += WallSeconds() - wait_start;

  auto node = staged_.extract(position);
  ++next_to_consume_;
  const std::int64_t block = order_[static_cast<std::size_t>(position)];
  lock.unlock();
  work_cv_.notify_all();  // Consuming frees prefetch-depth budget.
  return {block, std::move(node.mapped())};
}

PipelineStats DataPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Bytes DataPipeline::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

}  // namespace silod
