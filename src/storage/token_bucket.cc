#include "src/storage/token_bucket.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

TokenBucket::TokenBucket(BytesPerSec rate, Bytes burst)
    : rate_(rate), burst_(static_cast<double>(burst)), tokens_(static_cast<double>(burst)) {
  SILOD_CHECK(rate > 0) << "token bucket rate must be positive";
  SILOD_CHECK(burst > 0) << "token bucket burst must be positive";
}

void TokenBucket::AdvanceTo(Seconds now) {
  SILOD_CHECK(now >= last_update_) << "token bucket clock went backwards";
  if (std::isinf(rate_)) {
    tokens_ = burst_;
  } else {
    tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_update_));
  }
  last_update_ = now;
}

void TokenBucket::SetRate(BytesPerSec rate, Seconds now) {
  SILOD_CHECK(rate > 0) << "token bucket rate must be positive";
  // A concurrent reservation (Consume at a future admit time) may have moved
  // the bucket clock past `now`; the rate change then applies from that point.
  AdvanceTo(std::max(now, last_update_));
  rate_ = rate;
}

Seconds TokenBucket::TimeToAdmit(Bytes bytes, Seconds now) const {
  SILOD_CHECK(bytes >= 0) << "cannot admit negative bytes";
  const Seconds base = std::max(now, last_update_);
  double tokens = tokens_;
  if (!std::isinf(rate_)) {
    tokens = std::min(burst_, tokens + rate_ * (base - last_update_));
  } else {
    tokens = burst_;
  }
  const double need = static_cast<double>(bytes) - tokens;
  if (need <= 0) {
    return base;
  }
  if (std::isinf(rate_)) {
    return base;
  }
  return base + need / rate_;
}

void TokenBucket::Consume(Bytes bytes, Seconds t) {
  AdvanceTo(t);
  tokens_ -= static_cast<double>(bytes);
  // TimeToAdmit already delayed the caller until the transfer fits (for
  // transfers up to the burst) or until the bucket refilled the deficit (for
  // oversize transfers), so any residual debt is the oversize case: the
  // deficit was paid in waiting time and the bucket simply ends empty.
  if (tokens_ < 0) {
    tokens_ = 0;
  }
}

double TokenBucket::TokensAt(Seconds now) const {
  if (std::isinf(rate_)) {
    return burst_;
  }
  const Seconds base = std::max(now, last_update_);
  return std::min(burst_, tokens_ + rate_ * (base - last_update_));
}

}  // namespace silod
