#include "src/storage/placement.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace silod {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BlockPlacement::BlockPlacement(int num_servers, int virtual_nodes, std::uint64_t seed)
    : num_servers_(num_servers) {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  SILOD_CHECK(virtual_nodes >= 1) << "need at least one virtual node";
  ring_.reserve(static_cast<std::size_t>(num_servers) * virtual_nodes);
  for (int server = 0; server < num_servers; ++server) {
    for (int v = 0; v < virtual_nodes; ++v) {
      const std::uint64_t h =
          Mix(seed ^ (static_cast<std::uint64_t>(server) << 32) ^ static_cast<std::uint64_t>(v));
      ring_.push_back(RingPoint{h, server});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int BlockPlacement::ServerFor(DatasetId dataset, std::int64_t block) const {
  const std::uint64_t key = Mix((static_cast<std::uint64_t>(dataset) << 40) ^
                                static_cast<std::uint64_t>(block) * 0x9E3779B97F4A7C15ULL);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), RingPoint{key, 0});
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around the ring.
  }
  return it->server;
}

std::vector<std::int64_t> BlockPlacement::CountPerServer(const Dataset& dataset) const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_servers_), 0);
  for (std::int64_t block = 0; block < dataset.num_blocks; ++block) {
    counts[static_cast<std::size_t>(ServerFor(dataset.id, block))] += 1;
  }
  return counts;
}

double BlockPlacement::MovedFraction(const Dataset& dataset, const BlockPlacement& other) const {
  SILOD_CHECK(dataset.num_blocks > 0) << "empty dataset";
  std::int64_t moved = 0;
  for (std::int64_t block = 0; block < dataset.num_blocks; ++block) {
    if (ServerFor(dataset.id, block) != other.ServerFor(dataset.id, block)) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(dataset.num_blocks);
}

ZonePlacement::ZonePlacement(const ClusterTopology& topology, int virtual_nodes,
                             std::uint64_t seed)
    : topology_(topology) {
  SILOD_CHECK(!topology_.empty()) << "zone placement needs a topology";
  zone_rings_.reserve(topology_.zones().size());
  for (std::size_t z = 0; z < topology_.zones().size(); ++z) {
    zone_rings_.emplace_back(topology_.zones()[z].size(), virtual_nodes,
                             Mix(seed ^ (0x5A5AULL + z)));
  }
}

int ZonePlacement::ZoneFor(DatasetId dataset, std::int64_t block,
                           const std::vector<Bytes>& zone_weights) const {
  const std::size_t n = topology_.zones().size();
  bool weighted = zone_weights.size() == n;
  if (weighted) {
    Bytes total = 0;
    for (const Bytes w : zone_weights) {
      total += w;
    }
    weighted = total > 0;
  }
  // Weighted rendezvous: each zone draws an exponential clock with rate equal
  // to its weight from the (dataset, block, zone) hash; the smallest clock
  // wins, so zone z is chosen with probability w_z / sum(w), and changing one
  // weight only moves blocks into or out of that zone.
  int best = -1;
  double best_key = std::numeric_limits<double>::infinity();
  for (std::size_t z = 0; z < n; ++z) {
    const double w = weighted ? static_cast<double>(zone_weights[z]) : 1.0;
    if (w <= 0) {
      continue;
    }
    const std::uint64_t h = Mix((static_cast<std::uint64_t>(dataset) << 40) ^
                                static_cast<std::uint64_t>(block) * 0x9E3779B97F4A7C15ULL ^
                                Mix(0xC0FEULL + z));
    const double u = (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
    const double key = -std::log(u) / w;
    if (key < best_key) {
      best_key = key;
      best = static_cast<int>(z);
    }
  }
  SILOD_CHECK(best >= 0) << "no zone with positive weight";
  return best;
}

int ZonePlacement::ServerFor(DatasetId dataset, std::int64_t block,
                             const std::vector<Bytes>& zone_weights) const {
  const int zone = ZoneFor(dataset, block, zone_weights);
  const TopologyZone& z = topology_.zones()[static_cast<std::size_t>(zone)];
  return z.first_server + zone_rings_[static_cast<std::size_t>(zone)].ServerFor(dataset, block);
}

}  // namespace silod
