#include "src/storage/placement.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BlockPlacement::BlockPlacement(int num_servers, int virtual_nodes, std::uint64_t seed)
    : num_servers_(num_servers) {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  SILOD_CHECK(virtual_nodes >= 1) << "need at least one virtual node";
  ring_.reserve(static_cast<std::size_t>(num_servers) * virtual_nodes);
  for (int server = 0; server < num_servers; ++server) {
    for (int v = 0; v < virtual_nodes; ++v) {
      const std::uint64_t h =
          Mix(seed ^ (static_cast<std::uint64_t>(server) << 32) ^ static_cast<std::uint64_t>(v));
      ring_.push_back(RingPoint{h, server});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int BlockPlacement::ServerFor(DatasetId dataset, std::int64_t block) const {
  const std::uint64_t key = Mix((static_cast<std::uint64_t>(dataset) << 40) ^
                                static_cast<std::uint64_t>(block) * 0x9E3779B97F4A7C15ULL);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), RingPoint{key, 0});
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around the ring.
  }
  return it->server;
}

std::vector<std::int64_t> BlockPlacement::CountPerServer(const Dataset& dataset) const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_servers_), 0);
  for (std::int64_t block = 0; block < dataset.num_blocks; ++block) {
    counts[static_cast<std::size_t>(ServerFor(dataset.id, block))] += 1;
  }
  return counts;
}

double BlockPlacement::MovedFraction(const Dataset& dataset, const BlockPlacement& other) const {
  SILOD_CHECK(dataset.num_blocks > 0) << "empty dataset";
  std::int64_t moved = 0;
  for (std::int64_t block = 0; block < dataset.num_blocks; ++block) {
    if (ServerFor(dataset.id, block) != other.ServerFor(dataset.id, block)) {
      ++moved;
    }
  }
  return static_cast<double>(moved) / static_cast<double>(dataset.num_blocks);
}

}  // namespace silod
