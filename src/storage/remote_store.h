// The remote storage service and its egress bandwidth model.
//
// Cloud storage accounts cap egress bandwidth (Fig. 1: 120 Gbps for the
// largest accounts the paper measured); when the cluster's aggregate remote-IO
// demand exceeds the cap, flows contend.  Two regimes are modelled:
//
//   - Provider fair share (the §7.2 "disable remote IO allocation" ablation):
//     active flows receive a max-min fair share of the egress capacity,
//     bounded by their demand.
//   - SiloD throttling (§6): the scheduler assigns each job a remote-IO
//     allocation and the data manager's FUSE clients enforce it; the provider
//     cap still applies on top.
//
// MaxMinShare is the progressive-filling (water-filling) algorithm both
// regimes use, exposed separately because the Gavel solver reuses it.
#ifndef SILOD_SRC_STORAGE_REMOTE_STORE_H_
#define SILOD_SRC_STORAGE_REMOTE_STORE_H_

#include <vector>

#include "src/common/units.h"
#include "src/workload/job.h"

namespace silod {

// Max-min fair allocation of `capacity` among flows with the given demands and
// per-flow caps.  Returns per-flow rates with:
//   rate[i] <= min(demand[i], cap[i]),  sum(rate) <= capacity,
// and no flow can gain without an equally-or-less-served flow losing.
// Either vector entry may be kUnlimitedRate.
std::vector<BytesPerSec> MaxMinShare(const std::vector<BytesPerSec>& demands,
                                     const std::vector<BytesPerSec>& caps, BytesPerSec capacity);

// Convenience overload without per-flow caps.
std::vector<BytesPerSec> MaxMinShare(const std::vector<BytesPerSec>& demands,
                                     BytesPerSec capacity);

class RemoteStore {
 public:
  explicit RemoteStore(BytesPerSec egress_limit);

  BytesPerSec egress_limit() const { return egress_limit_; }

  // Sets the per-job remote-IO allocation (Table 3 allocateRemoteIO); jobs
  // without an allocation are uncapped up to the provider share.
  void SetJobThrottle(JobId job, BytesPerSec rate);
  void ClearJobThrottle(JobId job);
  BytesPerSec JobThrottle(JobId job) const;  // kUnlimitedRate when unset.
  // All explicitly set throttles (for snapshotting, §6 fault tolerance).
  std::vector<std::pair<JobId, BytesPerSec>> Throttles() const;

  // Rates the store grants a set of concurrently fetching jobs with the given
  // instantaneous demands, honouring throttles and the egress cap.
  std::vector<BytesPerSec> ArbitratedRates(const std::vector<JobId>& jobs,
                                           const std::vector<BytesPerSec>& demands) const;

 private:
  BytesPerSec egress_limit_;
  std::vector<BytesPerSec> throttles_;  // Indexed by JobId; grows on demand.
};

}  // namespace silod

#endif  // SILOD_SRC_STORAGE_REMOTE_STORE_H_
