#include "src/storage/remote_store.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

std::vector<BytesPerSec> MaxMinShare(const std::vector<BytesPerSec>& demands,
                                     const std::vector<BytesPerSec>& caps,
                                     BytesPerSec capacity) {
  SILOD_CHECK(demands.size() == caps.size()) << "demands/caps size mismatch";
  const std::size_t n = demands.size();
  std::vector<BytesPerSec> rates(n, 0.0);
  if (n == 0) {
    return rates;
  }

  // Effective demand of each flow; flows "freeze" when satisfied.
  std::vector<double> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    SILOD_CHECK(demands[i] >= 0 && caps[i] >= 0) << "negative demand or cap";
    want[i] = std::min(demands[i], caps[i]);
  }

  double remaining = capacity;
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < n; ++i) {
    if (want[i] > 0) {
      active.push_back(i);
    }
  }
  // Progressive filling: repeatedly grant the smallest unmet demand to all
  // active flows; flows reaching their demand leave the active set.
  std::sort(active.begin(), active.end(),
            [&](std::size_t a, std::size_t b) { return want[a] < want[b]; });
  std::size_t idx = 0;
  double level = 0.0;  // Water level granted so far to every active flow.
  while (idx < active.size() && remaining > 0) {
    const std::size_t remaining_flows = active.size() - idx;
    const double next = want[active[idx]];
    const double step = next - level;
    const double fill = remaining / static_cast<double>(remaining_flows);
    if (std::isinf(next) || fill < step) {
      level += fill;
      remaining = 0;
      break;
    }
    level = next;
    remaining -= step * static_cast<double>(remaining_flows);
    // All flows whose demand equals the new level are satisfied.
    while (idx < active.size() && want[active[idx]] <= level) {
      rates[active[idx]] = want[active[idx]];
      ++idx;
    }
  }
  for (std::size_t k = idx; k < active.size(); ++k) {
    rates[active[k]] = level;
  }
  return rates;
}

std::vector<BytesPerSec> MaxMinShare(const std::vector<BytesPerSec>& demands,
                                     BytesPerSec capacity) {
  return MaxMinShare(demands, std::vector<BytesPerSec>(demands.size(), kUnlimitedRate), capacity);
}

RemoteStore::RemoteStore(BytesPerSec egress_limit) : egress_limit_(egress_limit) {
  SILOD_CHECK(egress_limit > 0) << "egress limit must be positive";
}

void RemoteStore::SetJobThrottle(JobId job, BytesPerSec rate) {
  SILOD_CHECK(job >= 0) << "invalid job id";
  SILOD_CHECK(rate >= 0) << "negative throttle";
  if (static_cast<std::size_t>(job) >= throttles_.size()) {
    throttles_.resize(static_cast<std::size_t>(job) + 1, kUnlimitedRate);
  }
  throttles_[static_cast<std::size_t>(job)] = rate;
}

void RemoteStore::ClearJobThrottle(JobId job) {
  if (job >= 0 && static_cast<std::size_t>(job) < throttles_.size()) {
    throttles_[static_cast<std::size_t>(job)] = kUnlimitedRate;
  }
}

std::vector<std::pair<JobId, BytesPerSec>> RemoteStore::Throttles() const {
  std::vector<std::pair<JobId, BytesPerSec>> out;
  for (std::size_t i = 0; i < throttles_.size(); ++i) {
    if (!std::isinf(throttles_[i])) {
      out.emplace_back(static_cast<JobId>(i), throttles_[i]);
    }
  }
  return out;
}

BytesPerSec RemoteStore::JobThrottle(JobId job) const {
  if (job < 0 || static_cast<std::size_t>(job) >= throttles_.size()) {
    return kUnlimitedRate;
  }
  return throttles_[static_cast<std::size_t>(job)];
}

std::vector<BytesPerSec> RemoteStore::ArbitratedRates(
    const std::vector<JobId>& jobs, const std::vector<BytesPerSec>& demands) const {
  SILOD_CHECK(jobs.size() == demands.size()) << "jobs/demands size mismatch";
  std::vector<BytesPerSec> caps(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    caps[i] = JobThrottle(jobs[i]);
  }
  return MaxMinShare(demands, caps, egress_limit_);
}

}  // namespace silod
