#include "src/storage/inmem_remote.h"

#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace silod {
namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

InMemRemoteStore::InMemRemoteStore(BytesPerSec egress_limit, Bytes burst)
    : bucket_(egress_limit, burst), egress_limit_(egress_limit), start_ns_(NowNs()) {}

void InMemRemoteStore::SetFault(double rate_factor, double error_rate) {
  SILOD_CHECK(rate_factor > 0 && rate_factor <= 1) << "rate factor out of (0, 1]";
  SILOD_CHECK(error_rate >= 0 && error_rate < 1) << "error rate out of [0, 1)";
  std::lock_guard<std::mutex> lock(mu_);
  const Seconds now = static_cast<double>(NowNs() - start_ns_) * 1e-9;
  // SetRate settles any in-flight reservation first, so degrading mid-read
  // never double-credits tokens.
  bucket_.SetRate(egress_limit_ * rate_factor, now);
  error_rate_ = error_rate;
}

void InMemRemoteStore::RegisterDataset(const Dataset& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  datasets_[dataset.id] = dataset;
}

std::vector<std::uint8_t> InMemRemoteStore::ReadBlock(DatasetId dataset, std::int64_t block) {
  for (;;) {
    Result<std::vector<std::uint8_t>> result = TryReadBlock(dataset, block);
    if (result.ok()) {
      return std::move(result).value();
    }
  }
}

Result<std::vector<std::uint8_t>> InMemRemoteStore::TryReadBlock(DatasetId dataset,
                                                                 std::int64_t block) {
  Bytes size = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = datasets_.find(dataset);
    SILOD_CHECK(it != datasets_.end()) << "dataset " << dataset << " not registered";
    size = it->second.BlockBytes(block);

    // An injected transient failure aborts before booking tokens: a failed
    // request transfers no bytes.
    if (error_rate_ > 0 && rng_.NextDouble() < error_rate_) {
      transient_errors_.fetch_add(1);
      return Status::Internal("transient remote read error (injected)");
    }

    const Seconds now = static_cast<double>(NowNs() - start_ns_) * 1e-9;
    const Seconds admit = bucket_.TimeToAdmit(size, now);
    // Book the tokens under the lock so concurrent readers cannot double-spend
    // the reservation, then sleep out the delay without holding the lock.
    bucket_.Consume(size, admit);
    lock.unlock();
    if (admit > now) {
      std::this_thread::sleep_for(std::chrono::duration<double>(admit - now));
    }
  }

  // Deterministic payload: 8-byte words from a mixed counter.
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  const std::uint64_t base = (static_cast<std::uint64_t>(dataset) << 32) ^
                             static_cast<std::uint64_t>(block) * 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = 0; i < data.size(); i += 8) {
    const std::uint64_t w = Mix64(base + i / 8);
    for (std::size_t j = 0; j < 8 && i + j < data.size(); ++j) {
      data[i + j] = static_cast<std::uint8_t>(w >> (8 * j));
    }
  }
  bytes_served_.fetch_add(size);
  return data;
}

std::uint64_t InMemRemoteStore::ExpectedChecksum(DatasetId dataset, std::int64_t block,
                                                 Bytes size) {
  const std::uint64_t base = (static_cast<std::uint64_t>(dataset) << 32) ^
                             static_cast<std::uint64_t>(block) * 0x9E3779B97F4A7C15ULL;
  std::uint64_t sum = 0;
  for (Bytes i = 0; i < size; i += 8) {
    const std::uint64_t w = Mix64(static_cast<std::uint64_t>(base + i / 8));
    if (i + 8 <= size) {
      sum ^= w;
    } else {
      std::uint64_t partial = 0;
      for (Bytes j = 0; i + j < size; ++j) {
        partial |= ((w >> (8 * j)) & 0xFF) << (8 * j);
      }
      sum ^= partial;
    }
  }
  return sum;
}

std::uint64_t InMemRemoteStore::Checksum(const std::vector<std::uint8_t>& data) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < data.size(); i += 8) {
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < 8 && i + j < data.size(); ++j) {
      w |= static_cast<std::uint64_t>(data[i + j]) << (8 * j);
    }
    sum ^= w;
  }
  return sum;
}

}  // namespace silod
