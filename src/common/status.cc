#include "src/common/status.h"

namespace silod {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace silod
