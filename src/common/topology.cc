#include "src/common/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace silod {

namespace {

// Splits on `sep`, dropping empty pieces (tolerates trailing separators).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::stringstream stream(text);
  std::string piece;
  while (std::getline(stream, piece, sep)) {
    const std::size_t begin = piece.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const std::size_t end = piece.find_last_not_of(" \t");
    pieces.push_back(piece.substr(begin, end - begin + 1));
  }
  return pieces;
}

}  // namespace

Result<ClusterTopology> ClusterTopology::Parse(const std::string& spec) {
  std::vector<TopologyZone> zones;
  double loss_bound = kDefaultLossBound;
  for (const std::string& entry : Split(spec, ';')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("topology entry missing '=': " + entry);
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "loss-bound") {
      char* rest = nullptr;
      loss_bound = std::strtod(value.c_str(), &rest);
      if (rest == value.c_str() || loss_bound <= 0 || loss_bound > 1) {
        return Status::InvalidArgument("topology loss-bound must be in (0, 1]: " + value);
      }
      continue;
    }
    int first = 0;
    int last = 0;
    if (std::sscanf(value.c_str(), "%d-%d", &first, &last) != 2) {
      return Status::InvalidArgument("topology zone '" + key +
                                     "' needs a server range <a>-<b>, got: " + value);
    }
    zones.push_back(TopologyZone{key, first, last});
  }
  return FromZones(std::move(zones), loss_bound);
}

Result<ClusterTopology> ClusterTopology::FromZones(std::vector<TopologyZone> zones,
                                                   double loss_bound) {
  if (loss_bound <= 0 || loss_bound > 1) {
    return Status::InvalidArgument("topology loss bound must be in (0, 1]");
  }
  std::sort(zones.begin(), zones.end(), [](const TopologyZone& a, const TopologyZone& b) {
    return a.first_server < b.first_server;
  });
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const TopologyZone& z = zones[i];
    if (z.first_server < 0 || z.last_server < z.first_server) {
      return Status::InvalidArgument("topology zone '" + z.name + "' has an invalid range");
    }
    if (i > 0 && z.first_server <= zones[i - 1].last_server) {
      return Status::InvalidArgument("topology zones '" + zones[i - 1].name + "' and '" + z.name +
                                     "' overlap");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (zones[j].name == z.name) {
        return Status::InvalidArgument("duplicate topology zone name: " + z.name);
      }
    }
  }
  ClusterTopology topology;
  topology.zones_ = std::move(zones);
  topology.loss_bound_ = loss_bound;
  return topology;
}

int ClusterTopology::ZoneOf(int server) const {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (server >= zones_[i].first_server && server <= zones_[i].last_server) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool ClusterTopology::Covers(int num_servers) const {
  for (int s = 0; s < num_servers; ++s) {
    if (ZoneOf(s) < 0) return false;
  }
  return true;
}

ClusterTopology ClusterTopology::Cover(int num_servers) const {
  std::vector<TopologyZone> zones = zones_;
  for (int s = 0; s < num_servers; ++s) {
    if (ZoneOf(s) < 0) {
      zones.push_back(TopologyZone{"srv" + std::to_string(s), s, s});
    }
  }
  Result<ClusterTopology> covered = FromZones(std::move(zones), loss_bound_);
  return covered.ok() ? *covered : *this;  // Existing zones already validated.
}

Status ClusterTopology::Validate(int num_servers) const {
  for (const TopologyZone& z : zones_) {
    if (z.last_server >= num_servers) {
      return Status::OutOfRange("topology zone '" + z.name + "' ends at server " +
                                std::to_string(z.last_server) + " but the cluster has " +
                                std::to_string(num_servers) + " servers");
    }
  }
  return Status::Ok();
}

std::string ClusterTopology::ToSpec() const {
  std::string spec;
  for (const TopologyZone& z : zones_) {
    if (!spec.empty()) spec += ";";
    spec += z.name + "=" + std::to_string(z.first_server) + "-" + std::to_string(z.last_server);
  }
  if (loss_bound_ != kDefaultLossBound) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ";loss-bound=%g", loss_bound_);
    spec += buf;
  }
  return spec;
}

}  // namespace silod
