#include "src/common/topology.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace silod {

namespace {

// Splits on `sep`, dropping empty pieces (tolerates trailing separators).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::stringstream stream(text);
  std::string piece;
  while (std::getline(stream, piece, sep)) {
    const std::size_t begin = piece.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const std::size_t end = piece.find_last_not_of(" \t");
    pieces.push_back(piece.substr(begin, end - begin + 1));
  }
  return pieces;
}

// Shortest decimal form that round-trips through strtod, so Parse(ToSpec())
// stays the identity for any representable speed factor.
std::string FormatSpeed(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", value);
  if (std::strtod(buf, nullptr) == value) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// `gpu-type name=v100 count=64 speed=1`: space-separated key=value tokens
// after the marker.  speed is optional (default 1).
Result<GpuTypeSpec> ParseGpuType(const std::string& entry) {
  GpuTypeSpec type;
  bool have_count = false;
  for (const std::string& token : Split(entry.substr(8), ' ')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("gpu-type token missing '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      type.name = value;
    } else if (key == "count") {
      type.count = std::atoi(value.c_str());
      have_count = true;
    } else if (key == "speed") {
      char* rest = nullptr;
      type.speed = std::strtod(value.c_str(), &rest);
      if (rest == value.c_str()) {
        return Status::InvalidArgument("gpu-type speed is not a number: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown gpu-type key: " + key);
    }
  }
  if (type.name.empty() || !have_count) {
    return Status::InvalidArgument("gpu-type entry needs name= and count=: " + entry);
  }
  return type;
}

}  // namespace

Result<ClusterTopology> ClusterTopology::Parse(const std::string& spec) {
  std::vector<TopologyZone> zones;
  std::vector<GpuTypeSpec> gpu_types;
  double loss_bound = kDefaultLossBound;
  for (const std::string& entry : Split(spec, ';')) {
    if (entry.rfind("gpu-type", 0) == 0 &&
        (entry.size() == 8 || entry[8] == ' ' || entry[8] == '\t')) {
      Result<GpuTypeSpec> type = ParseGpuType(entry);
      if (!type.ok()) {
        return type.status();
      }
      gpu_types.push_back(std::move(*type));
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("topology entry missing '=': " + entry);
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "loss-bound") {
      char* rest = nullptr;
      loss_bound = std::strtod(value.c_str(), &rest);
      if (rest == value.c_str() || loss_bound <= 0 || loss_bound > 1) {
        return Status::InvalidArgument("topology loss-bound must be in (0, 1]: " + value);
      }
      continue;
    }
    int first = 0;
    int last = 0;
    if (std::sscanf(value.c_str(), "%d-%d", &first, &last) != 2) {
      return Status::InvalidArgument("topology zone '" + key +
                                     "' needs a server range <a>-<b>, got: " + value);
    }
    zones.push_back(TopologyZone{key, first, last});
  }
  return Make(std::move(zones), std::move(gpu_types), loss_bound);
}

Result<ClusterTopology> ClusterTopology::FromZones(std::vector<TopologyZone> zones,
                                                   double loss_bound) {
  return Make(std::move(zones), {}, loss_bound);
}

Result<ClusterTopology> ClusterTopology::Make(std::vector<TopologyZone> zones,
                                              std::vector<GpuTypeSpec> gpu_types,
                                              double loss_bound) {
  if (loss_bound <= 0 || loss_bound > 1) {
    return Status::InvalidArgument("topology loss bound must be in (0, 1]");
  }
  for (std::size_t i = 0; i < gpu_types.size(); ++i) {
    const GpuTypeSpec& t = gpu_types[i];
    if (t.name.empty()) {
      return Status::InvalidArgument("gpu-type needs a non-empty name");
    }
    if (t.name.find_first_of("=; \t") != std::string::npos) {
      return Status::InvalidArgument("gpu-type name has reserved characters: " + t.name);
    }
    if (t.count <= 0) {
      return Status::InvalidArgument("gpu-type '" + t.name + "' needs a positive count");
    }
    if (!(t.speed > 0) || t.speed > 1e9) {
      return Status::InvalidArgument("gpu-type '" + t.name + "' needs a positive finite speed");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (gpu_types[j].name == t.name) {
        return Status::InvalidArgument("duplicate gpu-type name: " + t.name);
      }
    }
  }
  std::sort(zones.begin(), zones.end(), [](const TopologyZone& a, const TopologyZone& b) {
    return a.first_server < b.first_server;
  });
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const TopologyZone& z = zones[i];
    if (z.first_server < 0 || z.last_server < z.first_server) {
      return Status::InvalidArgument("topology zone '" + z.name + "' has an invalid range");
    }
    if (i > 0 && z.first_server <= zones[i - 1].last_server) {
      return Status::InvalidArgument("topology zones '" + zones[i - 1].name + "' and '" + z.name +
                                     "' overlap");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (zones[j].name == z.name) {
        return Status::InvalidArgument("duplicate topology zone name: " + z.name);
      }
    }
  }
  ClusterTopology topology;
  topology.zones_ = std::move(zones);
  topology.gpu_types_ = std::move(gpu_types);
  topology.loss_bound_ = loss_bound;
  return topology;
}

int ClusterTopology::GpuTypeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < gpu_types_.size(); ++i) {
    if (gpu_types_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ClusterTopology::TotalTypedGpus() const {
  int total = 0;
  for (const GpuTypeSpec& t : gpu_types_) {
    total += t.count;
  }
  return total;
}

int ClusterTopology::ZoneOf(int server) const {
  for (std::size_t i = 0; i < zones_.size(); ++i) {
    if (server >= zones_[i].first_server && server <= zones_[i].last_server) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool ClusterTopology::Covers(int num_servers) const {
  for (int s = 0; s < num_servers; ++s) {
    if (ZoneOf(s) < 0) return false;
  }
  return true;
}

ClusterTopology ClusterTopology::Cover(int num_servers) const {
  std::vector<TopologyZone> zones = zones_;
  for (int s = 0; s < num_servers; ++s) {
    if (ZoneOf(s) < 0) {
      zones.push_back(TopologyZone{"srv" + std::to_string(s), s, s});
    }
  }
  Result<ClusterTopology> covered = Make(std::move(zones), gpu_types_, loss_bound_);
  return covered.ok() ? *covered : *this;  // Existing zones already validated.
}

Status ClusterTopology::Validate(int num_servers) const {
  for (const TopologyZone& z : zones_) {
    if (z.last_server >= num_servers) {
      return Status::OutOfRange("topology zone '" + z.name + "' ends at server " +
                                std::to_string(z.last_server) + " but the cluster has " +
                                std::to_string(num_servers) + " servers");
    }
  }
  return Status::Ok();
}

std::string ClusterTopology::ToSpec() const {
  std::string spec;
  for (const TopologyZone& z : zones_) {
    if (!spec.empty()) spec += ";";
    spec += z.name + "=" + std::to_string(z.first_server) + "-" + std::to_string(z.last_server);
  }
  if (loss_bound_ != kDefaultLossBound) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ";loss-bound=%g", loss_bound_);
    spec += buf;
  }
  for (const GpuTypeSpec& t : gpu_types_) {
    if (!spec.empty()) spec += ";";
    spec += "gpu-type name=" + t.name + " count=" + std::to_string(t.count) +
            " speed=" + FormatSpeed(t.speed);
  }
  return spec;
}

}  // namespace silod
