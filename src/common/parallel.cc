#include "src/common/parallel.h"

namespace silod {

ThreadPool::ThreadPool(int threads) {
  const int extra = threads - 1;
  workers_.reserve(extra > 0 ? static_cast<std::size_t>(extra) : 0);
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::DrainBatch(const std::function<void(std::size_t)>& fn, std::size_t tasks) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= tasks) {
      return;
    }
    fn(i);
    completed_.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return shutdown_ || batch_id_ != seen_batch; });
      if (shutdown_) {
        return;
      }
      seen_batch = batch_id_;
      fn = fn_;
      tasks = tasks_;
      if (fn == nullptr) {
        // Woke after the caller already drained and retired this batch; with
        // seen_batch updated the next wait blocks until a fresh batch.
        continue;
      }
      ++in_batch_;
    }
    DrainBatch(*fn, tasks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_batch_;
    }
    batch_done_.notify_one();
  }
}

void ThreadPool::ParallelFor(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) {
    return;
  }
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    tasks_ = tasks;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++batch_id_;
  }
  work_ready_.notify_all();
  DrainBatch(fn, tasks);
  // Two conditions before the batch may retire: every index completed (a
  // worker may still be running its last claimed one), and every worker that
  // picked the batch up has left it (a stalled worker still holds the
  // borrowed fn pointer and could otherwise claim the *next* batch's
  // indices with it).
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) >= tasks_ && in_batch_ == 0;
  });
  fn_ = nullptr;
}

}  // namespace silod
