#include "src/common/framing.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace silod {
namespace {

Status WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // send() instead of write(): MSG_NOSIGNAL turns a dead peer into an
    // error return instead of a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Only reachable when the caller armed SO_SNDTIMEO (silod_client
        // --timeout-ms): the deadline expired with the peer not draining.
        return Status::DeadlineExceeded("wire write timed out");
      }
      return Status::Internal(std::string("wire write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `len` bytes.  *eof_before_any is set when the peer closed
// cleanly before the first byte.
Status ReadAll(int fd, std::uint8_t* data, std::size_t len, bool* eof_before_any) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("wire read timed out");
      }
      return Status::Internal(std::string("wire read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_before_any != nullptr) {
        *eof_before_any = true;
        return Status::OutOfRange("peer closed");
      }
      return Status::Internal("wire read: eof mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::uint32_t* kTable = [] {
    static std::uint32_t table[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteRawFrame(int fd, std::uint8_t type, const std::string& payload,
                     std::uint32_t max_body) {
  if (payload.size() + 1 > max_body) {
    return Status::InvalidArgument("wire write: body of " + std::to_string(payload.size() + 1) +
                                   " bytes exceeds the " + std::to_string(max_body) +
                                   "-byte frame cap");
  }
  const std::uint32_t body = static_cast<std::uint32_t>(1 + payload.size());
  std::string buf;
  buf.resize(4 + body);
  auto* bytes = reinterpret_cast<std::uint8_t*>(buf.data());
  PutU32(bytes, body);
  bytes[4] = type;
  std::memcpy(buf.data() + 5, payload.data(), payload.size());
  return WriteAll(fd, bytes, buf.size());
}

Result<RawFrame> ReadRawFrame(int fd, std::uint32_t max_body) {
  std::uint8_t header[4];
  bool eof = false;
  if (const Status st = ReadAll(fd, header, sizeof(header), &eof); !st.ok()) {
    return st;
  }
  const std::uint32_t body = GetU32(header);
  if (body < 1 || body > max_body) {
    return Status::Internal("wire read: malformed frame length " + std::to_string(body));
  }
  std::string buf;
  buf.resize(body);
  if (const Status st =
          ReadAll(fd, reinterpret_cast<std::uint8_t*>(buf.data()), buf.size(), nullptr);
      !st.ok()) {
    return st;
  }
  RawFrame frame;
  frame.type = static_cast<std::uint8_t>(buf[0]);
  frame.payload = buf.substr(1);
  return frame;
}

}  // namespace silod
