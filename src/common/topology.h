// Cluster topology: which cache servers share a failure domain.
//
// PR 3 taught fault plans about *zones* (named contiguous server ranges that
// crash as one unit); this header promotes the zone list to a first-class
// ClusterTopology that the schedulers and the Data Manager consume, so
// storage policies can *place against* the failure domains instead of merely
// suffering them.  The placement contract is the per-zone loss bound: a
// zone-aware plan never puts more than `loss_bound` of a dataset's cache
// quota inside one declared domain (capacity permitting), so a zone-crash
// costs at most that share of the dataset instead of the zone's full
// capacity-proportional slice.
//
// Servers not covered by any declared zone fail independently; Cover() makes
// that explicit by appending a singleton zone per uncovered server, which is
// how the engines and the spread rule consume a topology (a partition of
// [0, num_servers) into failure domains).
//
// A topology is plain data: Parse(ToSpec()) is the identity, and an empty
// topology means "zone-oblivious" everywhere — every consumer must behave
// bit-identically to the pre-topology code in that case.
//
// The topology also carries the cluster's GPU-type table (`gpu-type
// name=v100 count=64 speed=1` entries): named pools of GPUs with a relative
// speed factor.  Declaring no types means a uniform fleet, and every
// scheduler/engine must be bit-identical to the pre-heterogeneity code in
// that case (speed factors default to 1.0, and x * 1.0 == x exactly).
#ifndef SILOD_SRC_COMMON_TOPOLOGY_H_
#define SILOD_SRC_COMMON_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace silod {

// A contiguous range of cache servers that fails as one unit (a rack, a
// power domain).  Also used by the fault-plan spec language as FaultZone.
struct TopologyZone {
  std::string name;
  int first_server = 0;
  int last_server = 0;  // Inclusive.

  int size() const { return last_server - first_server + 1; }
  bool operator==(const TopologyZone&) const = default;
};

// A named pool of identical GPUs with a relative speed factor (1.0 = the
// baseline V100-class throughput the model zoo assumes).  A job placed on
// this type computes at `speed * job.speed_factor(type)` times its uniform
// ideal rate.
struct GpuTypeSpec {
  std::string name;
  int count = 0;
  double speed = 1.0;

  bool operator==(const GpuTypeSpec&) const = default;
};

class ClusterTopology {
 public:
  // Any single zone may hold at most this fraction of a dataset's quota
  // unless capacity forces more (see sched/zone_spread.h).
  static constexpr double kDefaultLossBound = 0.5;

  ClusterTopology() = default;

  // Parses ";"-separated entries of the form `name=<a>-<b>`, an optional
  // `loss-bound=<f>` entry, and `gpu-type name=<n> count=<c> speed=<s>`
  // entries (speed optional, default 1), e.g.
  // "rack0=0-3;rack1=4-7;loss-bound=0.25;gpu-type name=v100 count=64 speed=1".
  static Result<ClusterTopology> Parse(const std::string& spec);

  // Validates (in-range, disjoint, unique names) and sorts by first server.
  static Result<ClusterTopology> FromZones(std::vector<TopologyZone> zones,
                                           double loss_bound = kDefaultLossBound);

  // FromZones plus a GPU-type table (unique non-empty names, positive counts
  // and speeds).  Types keep their declaration order: it is the tie-break
  // order for placement, so it is part of the topology's identity.
  static Result<ClusterTopology> Make(std::vector<TopologyZone> zones,
                                      std::vector<GpuTypeSpec> gpu_types,
                                      double loss_bound = kDefaultLossBound);

  // "Empty" deliberately means "no zones declared": it gates the
  // zone-placement machinery only.  The GPU-type table has its own gate.
  bool empty() const { return zones_.empty(); }
  int num_zones() const { return static_cast<int>(zones_.size()); }
  const std::vector<TopologyZone>& zones() const { return zones_; }

  bool has_gpu_types() const { return !gpu_types_.empty(); }
  int num_gpu_types() const { return static_cast<int>(gpu_types_.size()); }
  const std::vector<GpuTypeSpec>& gpu_types() const { return gpu_types_; }

  // Index into gpu_types() for `name`, or -1 when unknown.
  int GpuTypeIndex(const std::string& name) const;

  // Sum of declared per-type counts (0 when no types are declared).  When
  // types are declared this must equal the cluster's total GPU count; the
  // engines and the service validate that at construction.
  int TotalTypedGpus() const;

  // Zone index owning `server`, or -1 when no declared zone covers it.
  int ZoneOf(int server) const;

  // True when every server in [0, num_servers) belongs to a zone.
  bool Covers(int num_servers) const;

  // Returns a copy where every uncovered server in [0, num_servers) is added
  // as its own singleton zone (named "srv<i>"): uncorrelated servers are
  // independent failure domains.  Identity when already covering.
  ClusterTopology Cover(int num_servers) const;

  // All zones within [0, num_servers); does not require full cover.
  Status Validate(int num_servers) const;

  // Canonical spec; Parse(ToSpec()) is the identity.
  std::string ToSpec() const;

  double loss_bound() const { return loss_bound_; }
  void set_loss_bound(double bound) { loss_bound_ = bound; }

  bool operator==(const ClusterTopology&) const = default;

 private:
  std::vector<TopologyZone> zones_;  // Sorted by first_server, disjoint.
  std::vector<GpuTypeSpec> gpu_types_;  // Declaration order; empty = uniform.
  double loss_bound_ = kDefaultLossBound;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_TOPOLOGY_H_
