// Cluster topology: which cache servers share a failure domain.
//
// PR 3 taught fault plans about *zones* (named contiguous server ranges that
// crash as one unit); this header promotes the zone list to a first-class
// ClusterTopology that the schedulers and the Data Manager consume, so
// storage policies can *place against* the failure domains instead of merely
// suffering them.  The placement contract is the per-zone loss bound: a
// zone-aware plan never puts more than `loss_bound` of a dataset's cache
// quota inside one declared domain (capacity permitting), so a zone-crash
// costs at most that share of the dataset instead of the zone's full
// capacity-proportional slice.
//
// Servers not covered by any declared zone fail independently; Cover() makes
// that explicit by appending a singleton zone per uncovered server, which is
// how the engines and the spread rule consume a topology (a partition of
// [0, num_servers) into failure domains).
//
// A topology is plain data: Parse(ToSpec()) is the identity, and an empty
// topology means "zone-oblivious" everywhere — every consumer must behave
// bit-identically to the pre-topology code in that case.
#ifndef SILOD_SRC_COMMON_TOPOLOGY_H_
#define SILOD_SRC_COMMON_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace silod {

// A contiguous range of cache servers that fails as one unit (a rack, a
// power domain).  Also used by the fault-plan spec language as FaultZone.
struct TopologyZone {
  std::string name;
  int first_server = 0;
  int last_server = 0;  // Inclusive.

  int size() const { return last_server - first_server + 1; }
  bool operator==(const TopologyZone&) const = default;
};

class ClusterTopology {
 public:
  // Any single zone may hold at most this fraction of a dataset's quota
  // unless capacity forces more (see sched/zone_spread.h).
  static constexpr double kDefaultLossBound = 0.5;

  ClusterTopology() = default;

  // Parses ";"-separated entries of the form `name=<a>-<b>` plus an optional
  // `loss-bound=<f>` entry, e.g. "rack0=0-3;rack1=4-7;loss-bound=0.25".
  static Result<ClusterTopology> Parse(const std::string& spec);

  // Validates (in-range, disjoint, unique names) and sorts by first server.
  static Result<ClusterTopology> FromZones(std::vector<TopologyZone> zones,
                                           double loss_bound = kDefaultLossBound);

  bool empty() const { return zones_.empty(); }
  int num_zones() const { return static_cast<int>(zones_.size()); }
  const std::vector<TopologyZone>& zones() const { return zones_; }

  // Zone index owning `server`, or -1 when no declared zone covers it.
  int ZoneOf(int server) const;

  // True when every server in [0, num_servers) belongs to a zone.
  bool Covers(int num_servers) const;

  // Returns a copy where every uncovered server in [0, num_servers) is added
  // as its own singleton zone (named "srv<i>"): uncorrelated servers are
  // independent failure domains.  Identity when already covering.
  ClusterTopology Cover(int num_servers) const;

  // All zones within [0, num_servers); does not require full cover.
  Status Validate(int num_servers) const;

  // Canonical spec; Parse(ToSpec()) is the identity.
  std::string ToSpec() const;

  double loss_bound() const { return loss_bound_; }
  void set_loss_bound(double bound) { loss_bound_ = bound; }

  bool operator==(const ClusterTopology&) const = default;

 private:
  std::vector<TopologyZone> zones_;  // Sorted by first_server, disjoint.
  double loss_bound_ = kDefaultLossBound;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_TOPOLOGY_H_
