// Minimal Status / Result error-handling vocabulary.
//
// SiloD's public API reports recoverable errors through Status / Result<T>
// rather than exceptions, following common practice in systems C++ codebases.
// Programming errors (violated preconditions) abort via SILOD_CHECK in
// logging.h instead.
#ifndef SILOD_SRC_COMMON_STATUS_H_
#define SILOD_SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace silod {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
  static Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error holder.  `ok()` implies `value()` is valid.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("result has no value");
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_STATUS_H_
