// Units used throughout SiloD.
//
// The paper reports dataset sizes in decimal GB/TB and throughput in MB/s
// (e.g. ResNet-50 on ImageNet-1k: 143 GB dataset, 114 MB/s ideal IO demand).
// We follow the same decimal convention so constants in the model zoo can be
// transcribed verbatim.
//
// Conventions:
//   - Bytes      : int64_t, absolute sizes.
//   - BytesPerSec: double, throughput.  0 means "no throughput", negative is invalid.
//   - Seconds    : double, simulated time.  Simulations start at t = 0.
#ifndef SILOD_SRC_COMMON_UNITS_H_
#define SILOD_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <limits>

namespace silod {

using Bytes = std::int64_t;
using BytesPerSec = double;
using Seconds = double;

inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;
inline constexpr Bytes kTB = 1000 * kGB;

// Named constructors so call sites read like the paper: `GB(143)`, `MBps(114)`.
constexpr Bytes KB(double v) { return static_cast<Bytes>(v * kKB); }
constexpr Bytes MB(double v) { return static_cast<Bytes>(v * kMB); }
constexpr Bytes GB(double v) { return static_cast<Bytes>(v * kGB); }
constexpr Bytes TB(double v) { return static_cast<Bytes>(v * kTB); }

constexpr BytesPerSec MBps(double v) { return v * static_cast<double>(kMB); }
constexpr BytesPerSec GBps(double v) { return v * static_cast<double>(kGB); }
// Network egress limits in the paper are quoted in Gbps (bits).
constexpr BytesPerSec Gbps(double v) { return v * 1e9 / 8.0; }

constexpr double ToMB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMB); }
constexpr double ToGB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGB); }
constexpr double ToTB(Bytes b) { return static_cast<double>(b) / static_cast<double>(kTB); }
constexpr double ToMBps(BytesPerSec r) { return r / static_cast<double>(kMB); }
constexpr double ToGbps(BytesPerSec r) { return r * 8.0 / 1e9; }

constexpr Seconds Minutes(double m) { return m * 60.0; }
constexpr Seconds Hours(double h) { return h * 3600.0; }
constexpr Seconds Days(double d) { return d * 86400.0; }
constexpr double ToMinutes(Seconds s) { return s / 60.0; }
constexpr double ToHours(Seconds s) { return s / 3600.0; }

inline constexpr Seconds kInfiniteTime = std::numeric_limits<double>::infinity();
inline constexpr BytesPerSec kUnlimitedRate = std::numeric_limits<double>::infinity();

}  // namespace silod

#endif  // SILOD_SRC_COMMON_UNITS_H_
