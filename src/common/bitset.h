// DynamicBitset: a fixed-size-at-construction bitset with popcount support.
//
// The SiloD data manager keeps one bitset per (job, dataset) pair to track
// which items the job has already accessed in the current epoch (§6,
// "delayed effectiveness"), so the sets can hold millions of bits and need a
// fast Count().
#ifndef SILOD_SRC_COMMON_BITSET_H_
#define SILOD_SRC_COMMON_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace silod {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    SILOD_CHECK(i < size_) << "bit index " << i << " out of range " << size_;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Sets bit i; returns true iff the bit was previously clear.
  bool Set(std::size_t i) {
    SILOD_CHECK(i < size_) << "bit index " << i << " out of range " << size_;
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool was_clear = (words_[i >> 6] & mask) == 0;
    words_[i >> 6] |= mask;
    count_ += was_clear ? 1 : 0;
    return was_clear;
  }

  // Clears bit i; returns true iff the bit was previously set.
  bool Reset(std::size_t i) {
    SILOD_CHECK(i < size_) << "bit index " << i << " out of range " << size_;
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool was_set = (words_[i >> 6] & mask) != 0;
    words_[i >> 6] &= ~mask;
    count_ -= was_set ? 1 : 0;
    return was_set;
  }

  void ClearAll() {
    for (auto& w : words_) {
      w = 0;
    }
    count_ = 0;
  }

  // Number of set bits.  O(1): maintained incrementally.
  std::size_t Count() const { return count_; }

  // Recomputes the popcount from the raw words; used in tests to validate the
  // incremental counter.
  std::size_t RecountSlow() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) {
      n += static_cast<std::size_t>(std::popcount(w));
    }
    return n;
  }

 private:
  std::size_t size_ = 0;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_BITSET_H_
