// Bounded exponential backoff, shared by every retry loop that sleeps.
//
// Two consumers with the same shape: the RtCluster loader retrying transient
// remote-read errors (delay only, unbounded attempts) and the NodeManager
// respawning a worker process that died unexpectedly (jittered delay, capped
// attempts).  Factored here so the policy — base, cap, multiplier, jitter,
// attempt budget — is one tested implementation instead of per-site copies.
//
// With jitter == 0 the delay sequence is exactly
//   base, base*m, base*m^2, ...   capped at `cap`,
// which is bit-identical to the historical loader loop (first delay == base).
// Jitter > 0 scales each delay uniformly in [1 - jitter, 1 + jitter] using a
// caller-provided Rng, so respawn stampedes decorrelate deterministically.
#ifndef SILOD_SRC_COMMON_BACKOFF_H_
#define SILOD_SRC_COMMON_BACKOFF_H_

#include "src/common/rng.h"
#include "src/common/units.h"

namespace silod {

struct BackoffOptions {
  Seconds base = 0.002;
  Seconds cap = 0.1;
  double multiplier = 2.0;
  // Uniform scale half-width in [0, 1): each delay is multiplied by a draw
  // from [1 - jitter, 1 + jitter].  Requires an Rng when > 0.
  double jitter = 0.0;
  // Attempts before exhausted(); 0 = unbounded.
  int max_attempts = 0;
};

class Backoff {
 public:
  // `rng` may be null iff options.jitter == 0; the pointer is borrowed and
  // must outlive the Backoff.
  explicit Backoff(BackoffOptions options, Rng* rng = nullptr);

  // The delay before the next attempt; advances the attempt counter.  Callers
  // should check exhausted() first — NextDelay past the budget keeps
  // returning the capped delay.
  Seconds NextDelay();

  bool exhausted() const {
    return options_.max_attempts > 0 && attempts_ >= options_.max_attempts;
  }
  int attempts() const { return attempts_; }
  void Reset() { attempts_ = 0; }

 private:
  BackoffOptions options_;
  Rng* rng_;
  int attempts_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_BACKOFF_H_
