#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace silod {

void FlagSet::Define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  SILOD_CHECK(flags_.count(name) == 0) << "flag --" << name << " defined twice";
  flags_[name] = Flag{default_value, default_value, help};
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = flags_.find(name);
    // --no-foo sugar for booleans.
    if (it == flags_.end() && name.rfind("no-", 0) == 0) {
      it = flags_.find(name.substr(3));
      if (it != flags_.end() && !have_value) {
        it->second.value = "false";
        continue;
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!have_value) {
      // Booleans default to true when bare; others take the next argument.
      const std::string& def = it->second.default_value;
      if (def == "true" || def == "false") {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

bool FlagSet::Has(const std::string& name) const { return flags_.count(name) > 0; }

std::string FlagSet::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  SILOD_CHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.value;
}

std::int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string FlagSet::Help(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace silod
