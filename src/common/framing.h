// Length-prefixed framing over a stream socket, shared by every wire protocol
// in the tree (rt/wire.h's NodeManager <-> worker conversation and
// serve/proto.h's silodd request protocol).
//
// Every frame is
//
//   u32 LE  body length (bytes)
//   u8      message type (protocol-defined)
//   bytes   payload (body length - 1 bytes)
//
// The helpers own the transport concerns once: reads and writes loop over
// EINTR/short transfers, writes use MSG_NOSIGNAL so a peer that died
// mid-conversation produces an error instead of SIGPIPE, a clean EOF before
// the first byte of a frame is distinguishable (OutOfRange "peer closed")
// from a mid-frame EOF (Internal), and bodies above the caller's cap are
// rejected as framing bugs rather than allocated.  Payload *encoding* (u64
// words for rt, escaped text for serve) stays with each protocol.
#ifndef SILOD_SRC_COMMON_FRAMING_H_
#define SILOD_SRC_COMMON_FRAMING_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace silod {

// Frames are control-plane messages; anything larger is a framing bug, not a
// real message.  Protocols may pass a tighter cap.
inline constexpr std::uint32_t kDefaultMaxFrameBody = 64 * 1024;

struct RawFrame {
  std::uint8_t type = 0;
  std::string payload;
};

// Writes one frame; Internal on a closed/errored peer.
Status WriteRawFrame(int fd, std::uint8_t type, const std::string& payload,
                     std::uint32_t max_body = kDefaultMaxFrameBody);

// Blocking read of one frame.  A clean EOF before any byte of a frame is
// OutOfRange ("peer closed"); a mid-frame EOF or an oversized body is
// Internal.
Result<RawFrame> ReadRawFrame(int fd, std::uint32_t max_body = kDefaultMaxFrameBody);

// Little-endian fixed-width codecs for protocols that pack binary payloads.
void PutU32(std::uint8_t* p, std::uint32_t v);
std::uint32_t GetU32(const std::uint8_t* p);
void PutU64(std::uint8_t* p, std::uint64_t v);
std::uint64_t GetU64(const std::uint8_t* p);

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the integrity check guarding
// every on-disk journal record (serve/journal.h).  `seed` chains partial
// buffers: Crc32(b, n2, Crc32(a, n1)) == Crc32(a+b, n1+n2).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace silod

#endif  // SILOD_SRC_COMMON_FRAMING_H_
