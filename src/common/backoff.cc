#include "src/common/backoff.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

Backoff::Backoff(BackoffOptions options, Rng* rng) : options_(options), rng_(rng) {
  SILOD_CHECK(options_.base >= 0) << "negative backoff base";
  SILOD_CHECK(options_.cap >= options_.base) << "backoff cap below base";
  SILOD_CHECK(options_.multiplier >= 1.0) << "backoff multiplier below 1";
  SILOD_CHECK(options_.jitter >= 0 && options_.jitter < 1) << "jitter out of [0, 1)";
  SILOD_CHECK(options_.jitter == 0 || rng_ != nullptr) << "jitter requires an Rng";
}

Seconds Backoff::NextDelay() {
  // base * m^attempts, computed without pow-drift: capped multiply.
  Seconds delay = options_.base;
  for (int i = 0; i < attempts_ && delay < options_.cap; ++i) {
    delay *= options_.multiplier;
  }
  delay = std::min(options_.cap, delay);
  if (options_.jitter > 0) {
    delay *= rng_->Uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  }
  ++attempts_;
  return delay;
}

}  // namespace silod
