// Fixed-width console table printing for examples and benchmark harnesses.
//
//   Table t({"system", "avg JCT (min)", "makespan (min)"});
//   t.AddRow({"SiloD", Fmt(3366.0), Fmt(3807.0)});
//   t.Print();
#ifndef SILOD_SRC_COMMON_TABLE_H_
#define SILOD_SRC_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace silod {

inline std::string Fmt(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtSci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      width[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    PrintRow(header_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c) {
      rule += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) {
        rule += "+";
      }
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, width);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) {
        line += "|";
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_TABLE_H_
