// A small persistent thread pool for deterministic data-parallel loops.
//
// The flow engine's per-zone cache solves are independent between rehash
// events (each dataset's zone fluid touches only that dataset's state and
// its own jobs), so they can run on a pool — but simulation output must stay
// bit-identical to the sequential path.  ParallelFor guarantees that by
// construction: every index runs the same code on the same inputs and writes
// only its own slots, so the schedule cannot perturb any result.  Reductions
// (sums across indices) must stay on the caller's side.
//
// ParallelFor blocks until every index completed.  `fn` must not throw.
// With 0 or 1 workers (or a task count of 1) the loop runs inline on the
// calling thread — the sequential escape hatch, like the fine engine's
// use_linear_scan.
#ifndef SILOD_SRC_COMMON_PARALLEL_H_
#define SILOD_SRC_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace silod {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers (the calling thread participates in every
  // ParallelFor, so `threads` is the total concurrency).  threads <= 1 spawns
  // nothing and ParallelFor degenerates to an inline loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(i) for every i in [0, tasks), distributing indices dynamically
  // across the workers and the calling thread; returns when all completed.
  void ParallelFor(std::size_t tasks, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs indices of the current batch until exhausted.
  void DrainBatch(const std::function<void(std::size_t)>& fn, std::size_t tasks);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // Current batch.
  std::size_t tasks_ = 0;
  std::uint64_t batch_id_ = 0;
  // Workers currently draining the batch (guarded by mu_).  ParallelFor only
  // retires a batch when this is zero again: a worker that copied fn_ but
  // stalled before claiming an index must not outlive the caller's borrowed
  // function object or claim indices of the next batch.
  int in_batch_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  bool shutdown_ = false;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_PARALLEL_H_
