// Statistics helpers used by the metrics layer and benchmarks:
//   - RunningStat: streaming mean/variance/min/max (Welford).
//   - SampleSet: stores samples, provides percentiles and a CDF dump.
//   - TimeSeries: (time, value) pairs with time-weighted averaging, used for
//     throughput timelines, fairness-ratio-over-time, effective-cache plots.
#ifndef SILOD_SRC_COMMON_STATS_H_
#define SILOD_SRC_COMMON_STATS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/units.h"

namespace silod {

class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Sample variance (n - 1 denominator); 0 for n < 2.
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

class SampleSet {
 public:
  void Add(double x);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  // Percentile by linear interpolation between closest ranks; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Evenly spaced CDF points: (value, cumulative fraction).
  std::vector<std::pair<double, double>> Cdf(std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorts the lazily maintained sample buffer in place.  Both members are
  // `mutable` because sorting is a cache refresh, not an observable state
  // change: every const accessor returns the same values before and after.
  // Not thread-safe — concurrent const calls (Percentile, Cdf, samples) may
  // race on the sort; SampleSet, like the rest of the metrics layer, is
  // single-threaded by contract (worker pools never touch collectors).
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// A piecewise-constant time series: the value recorded at time t holds until
// the next recording.  Recordings must be non-decreasing in time.
class TimeSeries {
 public:
  void Record(Seconds t, double value);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<std::pair<Seconds, double>>& points() const { return points_; }

  // Value in effect at time t (last recording at or before t); 0 before the
  // first recording.
  double ValueAt(Seconds t) const;

  // Time-weighted average over [from, to].
  double TimeAverage(Seconds from, Seconds to) const;

  // Downsample to at most `max_points` evenly spaced samples over the recorded
  // span, for printing benchmark series.
  std::vector<std::pair<Seconds, double>> Downsample(std::size_t max_points) const;

 private:
  std::vector<std::pair<Seconds, double>> points_;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_STATS_H_
