// Deterministic random number generation.
//
// Every stochastic component in SiloD (trace generation, shuffled epochs,
// profiling noise) draws from an explicitly seeded Rng so that simulations are
// reproducible bit-for-bit across runs and platforms.  We implement
// xoshiro256** seeded through SplitMix64 rather than relying on
// std::mt19937 + distribution objects, whose outputs are not specified to be
// identical across standard library implementations.
#ifndef SILOD_SRC_COMMON_RNG_H_
#define SILOD_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

namespace silod {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5157D00DULL);

  // Uniform bits in [0, 2^64).
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n).  n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given rate (mean 1/rate).
  double Exponential(double rate);

  // Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Forks an independent stream; deterministic function of this stream's state.
  Rng Fork();

  // Raw xoshiro256** state, for crash forensics (fault/minidump.h): capturing
  // and restoring a stream mid-run makes replay deterministic.  The Box-Muller
  // spare from Normal() is NOT part of the state — streams that draw normals
  // across a capture point are not exactly restorable (no minidump consumer
  // draws normals).
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) {
      s_[i] = s[static_cast<std::size_t>(i)];
    }
    have_spare_normal_ = false;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_RNG_H_
