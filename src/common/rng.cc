#include "src/common/rng.h"

#include <cmath>

namespace silod {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t n) {
  // Lemire's nearly-divisionless method would be overkill; simple rejection on
  // the top bits keeps the distribution exactly uniform.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double rate) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  have_spare_normal_ = true;
  return mean + stddev * mag * std::cos(two_pi * u2);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace silod
