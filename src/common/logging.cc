#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace silod {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

}  // namespace

void SetMinLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel MinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory for brevity; file links in logs stay useful.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace silod
