// Lightweight leveled logging and assertion macros.
//
//   SILOD_LOG(INFO) << "scheduled " << n << " jobs";
//   SILOD_CHECK(x > 0) << "x must be positive, got " << x;
//
// Log output goes to stderr.  The minimum level is configurable at runtime via
// SetMinLogLevel (benchmarks silence INFO; tests assert on behaviour, not logs).
// SILOD_CHECK aborts on failure: it guards programming errors, not runtime
// conditions (those use Status).
#ifndef SILOD_SRC_COMMON_LOGGING_H_
#define SILOD_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace silod {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();
const char* LogLevelName(LogLevel level);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal
}  // namespace silod

#define SILOD_LOG(severity)                                                         \
  (::silod::LogLevel::k##severity < ::silod::MinLogLevel())                         \
      ? (void)0                                                                     \
      : ::silod::log_internal::Voidify() &                                          \
            ::silod::log_internal::LogMessage(::silod::LogLevel::k##severity,       \
                                              __FILE__, __LINE__)                   \
                .stream()

#define SILOD_CHECK(cond)                                                           \
  (cond) ? (void)0                                                                  \
         : ::silod::log_internal::Voidify() &                                       \
               ::silod::log_internal::LogMessage(::silod::LogLevel::kFatal,         \
                                                 __FILE__, __LINE__)                \
                   .stream()                                                        \
               << "Check failed: " #cond " "

namespace silod::log_internal {

// Helper so the macros expand to a void expression regardless of branch.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace silod::log_internal

#endif  // SILOD_SRC_COMMON_LOGGING_H_
