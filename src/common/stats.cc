#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void SampleSet::Add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1;
}

double SampleSet::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : samples_) {
    s += x;
  }
  return s / static_cast<double>(samples_.size());
}

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Percentile(double p) const {
  SILOD_CHECK(p >= 0.0 && p <= 100.0) << "percentile out of range: " << p;
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> SampleSet::Cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    const std::size_t idx =
        std::min(static_cast<std::size_t>(frac * static_cast<double>(samples_.size() - 1) + 0.5),
                 samples_.size() - 1);
    out.emplace_back(samples_[idx],
                     static_cast<double>(idx + 1) / static_cast<double>(samples_.size()));
  }
  return out;
}

void TimeSeries::Record(Seconds t, double value) {
  SILOD_CHECK(points_.empty() || t >= points_.back().first)
      << "TimeSeries recordings must be time-ordered: " << t << " < " << points_.back().first;
  if (!points_.empty() && points_.back().first == t) {
    points_.back().second = value;
    return;
  }
  points_.emplace_back(t, value);
}

double TimeSeries::ValueAt(Seconds t) const {
  if (points_.empty() || t < points_.front().first) {
    return 0.0;
  }
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](Seconds lhs, const auto& p) { return lhs < p.first; });
  return std::prev(it)->second;
}

double TimeSeries::TimeAverage(Seconds from, Seconds to) const {
  if (points_.empty() || to <= from) {
    return 0.0;
  }
  double integral = 0.0;
  Seconds cursor = from;
  double value = ValueAt(from);
  auto it = std::upper_bound(points_.begin(), points_.end(), from,
                             [](Seconds lhs, const auto& p) { return lhs < p.first; });
  for (; it != points_.end() && it->first < to; ++it) {
    integral += value * (it->first - cursor);
    cursor = it->first;
    value = it->second;
  }
  integral += value * (to - cursor);
  return integral / (to - from);
}

std::vector<std::pair<Seconds, double>> TimeSeries::Downsample(std::size_t max_points) const {
  std::vector<std::pair<Seconds, double>> out;
  if (points_.empty() || max_points == 0) {
    return out;
  }
  if (points_.size() <= max_points) {
    return points_;
  }
  const Seconds start = points_.front().first;
  const Seconds end = points_.back().first;
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const Seconds t =
        start + (end - start) * static_cast<double>(i) / static_cast<double>(max_points - 1);
    out.emplace_back(t, ValueAt(t));
  }
  return out;
}

}  // namespace silod
