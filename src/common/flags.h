// A minimal command-line flag parser for the CLI tools: --name=value or
// --name value, with typed accessors and generated --help text.  No global
// registry; each tool declares the flags it takes.
#ifndef SILOD_SRC_COMMON_FLAGS_H_
#define SILOD_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace silod {

class FlagSet {
 public:
  // Declares a flag with a default value (stored as text) and help line.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  // Parses argv; returns an error for unknown flags or missing values.
  // Non-flag arguments are collected into positional().
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  // Numeric accessors abort (via SILOD_CHECK) on undeclared flags and return
  // an error value of 0 / false on malformed numbers after Parse succeeded
  // (Parse validates declared numeric defaults only by construction).
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Formatted help text listing every declared flag and its default.
  std::string Help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace silod

#endif  // SILOD_SRC_COMMON_FLAGS_H_
