// Scheduler and storage-policy interfaces (Algorithm 1's Policy.Schedule).
//
// A Scheduler maps a cluster Snapshot to an AllocationPlan.  Schedulers own
// the GPU decision (which jobs run) and delegate the storage decision to a
// StoragePolicy — which for SiloD variants is co-designed (greedy Alg. 2 or
// the Gavel solver using SiloDPerf) and for baselines reproduces how the
// independent cache system behaves (Alluxio / CoorDL / Quiver).
#ifndef SILOD_SRC_SCHED_POLICY_H_
#define SILOD_SRC_SCHED_POLICY_H_

#include <string>
#include <vector>

#include "src/common/topology.h"
#include "src/common/units.h"
#include "src/sched/allocation.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

// The scheduler's view of one job at a scheduling instant.
struct JobView {
  const JobSpec* spec = nullptr;
  Bytes remaining_bytes = 0;
  // Whether the job held GPUs before this round (schedulers avoid preempting
  // running jobs: DL cluster schedulers in this family are non-preemptive).
  bool running = false;
  // Bytes of the job's dataset that are cached and effective for its current
  // epoch (§6): lets policies compute the *instantaneous* remote-IO demand
  // f* (1 - effective/d) instead of the steady-state one — during the first
  // epoch the cache is still filling and demand is higher.
  Bytes effective_cache = 0;
};

struct Snapshot {
  Seconds now = 0;
  std::vector<JobView> jobs;
  ClusterResources resources;
  const DatasetCatalog* catalog = nullptr;
  // Failure domains of the cache servers; null or empty means zone-oblivious
  // (co-designed policies then emit no dataset_zone_cache spread).  Must
  // cover [0, resources.num_servers) when present (ClusterTopology::Cover).
  const ClusterTopology* topology = nullptr;
};

class StoragePolicy {
 public:
  virtual ~StoragePolicy() = default;

  // Fills plan->dataset_cache / private caches / remote-IO throttles for the
  // jobs marked running in `plan`.  Called after the GPU decision.
  virtual void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) = 0;

  virtual CacheModelKind cache_model() const = 0;
  virtual bool manages_remote_io() const = 0;
  virtual std::string name() const = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual AllocationPlan Schedule(const Snapshot& snapshot) = 0;
  virtual std::string name() const = 0;
};

// Gang-admits jobs in the given preference order (indices into
// snapshot.jobs): running jobs keep their GPUs (no preemption), waiting jobs
// are admitted while GPUs remain; jobs that do not fit are skipped so later
// smaller jobs may backfill.  Marks admitted jobs running in `plan`.
void AdmitByOrder(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                  AllocationPlan* plan);

// Preemptive variant: admits strictly in preference order regardless of who
// currently holds GPUs; running jobs outside the admitted prefix are
// suspended (their plan entry stays non-running).  Used by SRTF-style
// policies; only the flow engine supports executing such plans.
void AdmitByOrderPreemptive(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                            AllocationPlan* plan);

}  // namespace silod

#endif  // SILOD_SRC_SCHED_POLICY_H_
