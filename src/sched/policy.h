// Scheduler and storage-policy interfaces (Algorithm 1's Policy.Schedule).
//
// A Scheduler maps a cluster Snapshot to an AllocationPlan.  Schedulers own
// the GPU decision (which jobs run) and delegate the storage decision to a
// StoragePolicy — which for SiloD variants is co-designed (greedy Alg. 2 or
// the Gavel solver using SiloDPerf) and for baselines reproduces how the
// independent cache system behaves (Alluxio / CoorDL / Quiver).
#ifndef SILOD_SRC_SCHED_POLICY_H_
#define SILOD_SRC_SCHED_POLICY_H_

#include <string>
#include <vector>

#include "src/common/topology.h"
#include "src/common/units.h"
#include "src/sched/allocation.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

// The scheduler's view of one job at a scheduling instant.
struct JobView {
  const JobSpec* spec = nullptr;
  Bytes remaining_bytes = 0;
  // Whether the job held GPUs before this round (schedulers avoid preempting
  // running jobs: DL cluster schedulers in this family are non-preemptive).
  bool running = false;
  // Bytes of the job's dataset that are cached and effective for its current
  // epoch (§6): lets policies compute the *instantaneous* remote-IO demand
  // f* (1 - effective/d) instead of the steady-state one — during the first
  // epoch the cache is still filling and demand is higher.
  Bytes effective_cache = 0;
  // GPU-type index (into topology->gpu_types()) the job currently holds, or
  // -1 for waiting jobs and uniform fleets.  Running jobs never migrate
  // between types (same non-preemption contract as GPUs).
  int gpu_type = -1;
  // Relative compute speed the scheduler should plan with: the held type's
  // speed for running jobs, the best feasible type's speed for waiting jobs
  // (both times the job's per-type factor), 1.0 on uniform fleets.  Policies
  // use spec->ideal_io * speed as the effective ideal rate everywhere.
  double speed = 1.0;
};

struct Snapshot {
  Seconds now = 0;
  std::vector<JobView> jobs;
  ClusterResources resources;
  const DatasetCatalog* catalog = nullptr;
  // Failure domains of the cache servers; null or empty means zone-oblivious
  // (co-designed policies then emit no dataset_zone_cache spread).  Must
  // cover [0, resources.num_servers) when present (ClusterTopology::Cover).
  const ClusterTopology* topology = nullptr;
};

class StoragePolicy {
 public:
  virtual ~StoragePolicy() = default;

  // Fills plan->dataset_cache / private caches / remote-IO throttles for the
  // jobs marked running in `plan`.  Called after the GPU decision.
  virtual void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) = 0;

  virtual CacheModelKind cache_model() const = 0;
  virtual bool manages_remote_io() const = 0;
  virtual std::string name() const = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual AllocationPlan Schedule(const Snapshot& snapshot) = 0;
  virtual std::string name() const = 0;
};

// The speed multiplier of `job` held on gpu_types()[type]: the type's speed
// times the job's per-type factor.
double JobSpeedOnType(const JobSpec& job, const ClusterTopology& topology, int type);

// Fills each view's `speed` from the snapshot's GPU-type table: running jobs
// plan at their held type's speed (view.gpu_type must be set by the caller),
// waiting jobs at the best speed of any type large enough for their gang.
// No-op when the snapshot carries no GPU types (every speed stays 1.0).
// Engines call this after building their views; schedulers just consume.
void AnnotateSnapshotSpeeds(Snapshot* snapshot);

// Gang-admits jobs in the given preference order (indices into
// snapshot.jobs): running jobs keep their GPUs (no preemption), waiting jobs
// are admitted while GPUs remain; jobs that do not fit are skipped so later
// smaller jobs may backfill.  Marks admitted jobs running in `plan`.
//
// On a typed fleet (snapshot.topology->has_gpu_types()) GPUs are per-type
// pools: running jobs stay on their held type, each admitted waiting job
// takes the fastest type (for it) with a free gang, ties to the lowest type
// index, and the plan records the placement in alloc.gpu_type / alloc.speed.
void AdmitByOrder(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                  AllocationPlan* plan);

// Preemptive variant: admits strictly in preference order regardless of who
// currently holds GPUs; running jobs outside the admitted prefix are
// suspended (their plan entry stays non-running).  Used by SRTF-style
// policies; only the flow engine supports executing such plans.
void AdmitByOrderPreemptive(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                            AllocationPlan* plan);

}  // namespace silod

#endif  // SILOD_SRC_SCHED_POLICY_H_
