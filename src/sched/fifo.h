// FIFO scheduling (§5.3 / §7): jobs acquire GPUs in arrival order (with
// backfill); the storage policy decides cache and remote IO independently of
// the order.  FIFO is the paper's example of a scheduler that is not
// performance-aware — SiloD pairs it with the greedy policy of Algorithm 2.
#ifndef SILOD_SRC_SCHED_FIFO_H_
#define SILOD_SRC_SCHED_FIFO_H_

#include <memory>

#include "src/sched/policy.h"

namespace silod {

class FifoScheduler : public Scheduler {
 public:
  explicit FifoScheduler(std::shared_ptr<StoragePolicy> storage);

  AllocationPlan Schedule(const Snapshot& snapshot) override;
  std::string name() const override;

 private:
  std::shared_ptr<StoragePolicy> storage_;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_FIFO_H_
