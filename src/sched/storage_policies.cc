#include "src/sched/storage_policies.h"

#include <vector>

#include "src/cache/coordl.h"
#include "src/cache/quiver.h"
#include "src/common/logging.h"
#include "src/estimator/ioperf.h"

namespace silod {

void AlluxioStorage::AllocateStorage(const Snapshot& /*snapshot*/, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  plan->cache_model = cache_model();
  plan->manages_remote_io = false;
  // The shared pool self-organizes; nothing to allocate.
}

void CoorDlStorage::AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  plan->cache_model = CacheModelKind::kPerJobStatic;
  plan->manages_remote_io = false;
  for (const JobView& view : snapshot.jobs) {
    auto it = plan->jobs.find(view.spec->id);
    if (it == plan->jobs.end() || !it->second.running) {
      continue;
    }
    it->second.private_cache = CoorDlStaticCache(*view.spec, snapshot.resources.total_cache,
                                                 snapshot.resources.total_gpus);
  }
}

QuiverStorage::QuiverStorage(double profiling_noise, std::uint64_t seed)
    : profiler_(profiling_noise, seed) {}

void QuiverStorage::AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required";
  plan->cache_model = CacheModelKind::kDatasetQuota;
  plan->manages_remote_io = false;

  // Benefit-to-cost per dataset: the true cache efficiency (summed across the
  // jobs reading it) as seen through noisy online latency profiling.
  std::map<DatasetId, double> true_benefit;
  for (const JobView& view : snapshot.jobs) {
    if (!plan->IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
    true_benefit[dataset.id] +=
        CacheEfficiency(view.spec->ideal_io, plan->Get(view.spec->id).speed, dataset.size);
  }
  std::vector<QuiverCandidate> candidates;
  for (const auto& [dataset_id, benefit] : true_benefit) {
    QuiverCandidate c;
    c.dataset = dataset_id;
    c.size = snapshot.catalog->Get(dataset_id).size;
    c.measured_benefit = profiler_.MeasureBenefit(benefit);
    if (last_allocation_.count(dataset_id) > 0) {
      c.measured_benefit *= kRetentionBonus;
    }
    candidates.push_back(c);
  }
  plan->dataset_cache = QuiverAllocate(candidates, snapshot.resources.total_cache);
  last_allocation_ = plan->dataset_cache;
}

}  // namespace silod
