// Multi-resource Shortest-Job-First (§5.1, Eq. 6/7), unifying Tetris [30] and
// Tiresias [34]: each job's score is its weighted resource footprint times its
// predicted duration,
//
//   score = min_R  sum_t w_t R_t * (numSteps * stepDataSize / perf(j, R)),
//   w_t = 1 / totalResource[t],
//
// and jobs are served in ascending score order.  The vanilla variant scores
// with the compute-only estimator over R = (GPUs); the SiloD variant adds
// cache and remote IO to R and scores with SiloDPerf (Eq. 7).  Because the
// score is linear in the cache allocation at fixed throughput, the inner
// minimization is exact over the candidate endpoints {0, min(d, C)}.
#ifndef SILOD_SRC_SCHED_SJF_H_
#define SILOD_SRC_SCHED_SJF_H_

#include <memory>
#include <vector>

#include "src/sched/policy.h"

namespace silod {

enum class SjfScoreMode {
  kComputeOnly,  // Vanilla: perf(j, R) = f*, R = GPUs.
  kSiloD,        // Eq. 7: SiloDPerf over (GPUs, cache, remote IO).
};

// The Eq. 6/7 score for one job (exposed for tests and diagnostics).
double SjfScore(const JobView& view, const Snapshot& snapshot, SjfScoreMode mode);

// Scores every job in the snapshot in one pass.  The resource weights w_t
// depend only on the cluster, so they are derived once instead of per job;
// each entry is bit-identical to the corresponding SjfScore call.
void SjfScores(const Snapshot& snapshot, SjfScoreMode mode, std::vector<double>* out);

class SjfScheduler : public Scheduler {
 public:
  // `preemptive=true` turns the policy into SRTF (Tiresias-style): a newly
  // arrived job with a lower score suspends a running one.  Preemptive plans
  // are only executable by the flow engine, which models a
  // checkpoint/restore penalty on resume.
  SjfScheduler(std::shared_ptr<StoragePolicy> storage, SjfScoreMode mode,
               bool preemptive = false);

  AllocationPlan Schedule(const Snapshot& snapshot) override;
  std::string name() const override;

 private:
  std::shared_ptr<StoragePolicy> storage_;
  SjfScoreMode mode_;
  bool preemptive_;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_SJF_H_
