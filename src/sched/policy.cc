#include "src/sched/policy.h"

#include "src/common/logging.h"

namespace silod {

void AdmitByOrder(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                  AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  SILOD_CHECK(order.size() == snapshot.jobs.size()) << "order must cover every job";
  int free_gpus = snapshot.resources.total_gpus;

  // Running jobs are never preempted: account for their GPUs first.
  for (const JobView& view : snapshot.jobs) {
    if (view.running) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
  }
  SILOD_CHECK(free_gpus >= 0) << "running jobs exceed cluster GPUs";

  for (std::size_t idx : order) {
    const JobView& view = snapshot.jobs[idx];
    if (view.running) {
      continue;
    }
    if (view.spec->num_gpus <= free_gpus) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
    // Jobs that do not fit are skipped (backfill); strict head-of-line
    // blocking would idle GPUs that the paper's schedulers use.
  }
}

void AdmitByOrderPreemptive(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                            AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  SILOD_CHECK(order.size() == snapshot.jobs.size()) << "order must cover every job";
  int free_gpus = snapshot.resources.total_gpus;
  for (std::size_t idx : order) {
    const JobView& view = snapshot.jobs[idx];
    if (view.spec->num_gpus <= free_gpus) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
  }
}

}  // namespace silod
