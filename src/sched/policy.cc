#include "src/sched/policy.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

namespace {

// The per-type free-GPU pools for a typed admission pass, or an empty vector
// on a uniform fleet (single-pool admission).
const ClusterTopology* TypedTopology(const Snapshot& snapshot) {
  if (snapshot.topology != nullptr && snapshot.topology->has_gpu_types()) {
    return snapshot.topology;
  }
  return nullptr;
}

// The fastest type (for this job) with a free gang, or -1.  Ties go to the
// lowest type index, so placement is deterministic across identical speeds.
int BestFreeType(const JobSpec& job, const ClusterTopology& topology,
                 const std::vector<int>& free) {
  int best = -1;
  double best_speed = 0;
  for (int t = 0; t < topology.num_gpu_types(); ++t) {
    if (free[t] < job.num_gpus) {
      continue;
    }
    const double speed = JobSpeedOnType(job, topology, t);
    if (best < 0 || speed > best_speed) {
      best = t;
      best_speed = speed;
    }
  }
  return best;
}

void AdmitOnType(const JobSpec& job, const ClusterTopology& topology, int type,
                 std::vector<int>* free, AllocationPlan* plan) {
  (*free)[type] -= job.num_gpus;
  JobAllocation& alloc = plan->jobs[job.id];
  alloc.running = true;
  alloc.gpus = job.num_gpus;
  alloc.gpu_type = type;
  alloc.speed = JobSpeedOnType(job, topology, type);
}

}  // namespace

double JobSpeedOnType(const JobSpec& job, const ClusterTopology& topology, int type) {
  SILOD_CHECK(type >= 0 && type < topology.num_gpu_types()) << "gpu type out of range";
  const GpuTypeSpec& spec = topology.gpu_types()[type];
  return spec.speed * job.SpeedFactor(spec.name);
}

void AnnotateSnapshotSpeeds(Snapshot* snapshot) {
  SILOD_CHECK(snapshot != nullptr) << "snapshot required";
  const ClusterTopology* topology = TypedTopology(*snapshot);
  if (topology == nullptr) {
    return;
  }
  for (JobView& view : snapshot->jobs) {
    if (view.running) {
      SILOD_CHECK(view.gpu_type >= 0 && view.gpu_type < topology->num_gpu_types())
          << "running job " << view.spec->id << " has no held gpu type";
      view.speed = JobSpeedOnType(*view.spec, *topology, view.gpu_type);
      continue;
    }
    // Waiting jobs plan at the best speed of any type whose pool could hold
    // their whole gang — an optimistic estimate; the authoritative speed is
    // assigned at admission from whatever pool actually has room.
    view.gpu_type = -1;
    view.speed = 1.0;
    double best = 0;
    bool feasible = false;
    for (int t = 0; t < topology->num_gpu_types(); ++t) {
      if (topology->gpu_types()[t].count < view.spec->num_gpus) {
        continue;
      }
      best = std::max(best, JobSpeedOnType(*view.spec, *topology, t));
      feasible = true;
    }
    if (feasible) {
      view.speed = best;
    }
  }
}

void AdmitByOrder(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                  AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  SILOD_CHECK(order.size() == snapshot.jobs.size()) << "order must cover every job";
  const ClusterTopology* topology = TypedTopology(snapshot);

  if (topology != nullptr) {
    std::vector<int> free;
    for (const GpuTypeSpec& t : topology->gpu_types()) {
      free.push_back(t.count);
    }
    // Running jobs are never preempted and never migrate: their gang stays on
    // the held type's pool.
    for (const JobView& view : snapshot.jobs) {
      if (view.running) {
        SILOD_CHECK(view.gpu_type >= 0 && view.gpu_type < topology->num_gpu_types())
            << "running job " << view.spec->id << " has no held gpu type";
        AdmitOnType(*view.spec, *topology, view.gpu_type, &free, plan);
        SILOD_CHECK(free[view.gpu_type] >= 0) << "running jobs exceed a gpu-type pool";
      }
    }
    for (std::size_t idx : order) {
      const JobView& view = snapshot.jobs[idx];
      if (view.running) {
        continue;
      }
      const int type = BestFreeType(*view.spec, *topology, free);
      if (type >= 0) {
        AdmitOnType(*view.spec, *topology, type, &free, plan);
      }
      // No pool fits: skipped, later smaller jobs may backfill.
    }
    return;
  }

  int free_gpus = snapshot.resources.total_gpus;

  // Running jobs are never preempted: account for their GPUs first.
  for (const JobView& view : snapshot.jobs) {
    if (view.running) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
  }
  SILOD_CHECK(free_gpus >= 0) << "running jobs exceed cluster GPUs";

  for (std::size_t idx : order) {
    const JobView& view = snapshot.jobs[idx];
    if (view.running) {
      continue;
    }
    if (view.spec->num_gpus <= free_gpus) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
    // Jobs that do not fit are skipped (backfill); strict head-of-line
    // blocking would idle GPUs that the paper's schedulers use.
  }
}

void AdmitByOrderPreemptive(const Snapshot& snapshot, const std::vector<std::size_t>& order,
                            AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  SILOD_CHECK(order.size() == snapshot.jobs.size()) << "order must cover every job";
  const ClusterTopology* topology = TypedTopology(snapshot);

  if (topology != nullptr) {
    std::vector<int> free;
    for (const GpuTypeSpec& t : topology->gpu_types()) {
      free.push_back(t.count);
    }
    for (std::size_t idx : order) {
      const JobView& view = snapshot.jobs[idx];
      // A running job admitted again keeps its held type when that pool still
      // has room (migration costs a restart); anything else takes the best
      // free pool.
      int type = -1;
      if (view.running && view.gpu_type >= 0 && free[view.gpu_type] >= view.spec->num_gpus) {
        type = view.gpu_type;
      } else {
        type = BestFreeType(*view.spec, *topology, free);
      }
      if (type >= 0) {
        AdmitOnType(*view.spec, *topology, type, &free, plan);
      }
    }
    return;
  }

  int free_gpus = snapshot.resources.total_gpus;
  for (std::size_t idx : order) {
    const JobView& view = snapshot.jobs[idx];
    if (view.spec->num_gpus <= free_gpus) {
      JobAllocation& alloc = plan->jobs[view.spec->id];
      alloc.running = true;
      alloc.gpus = view.spec->num_gpus;
      free_gpus -= view.spec->num_gpus;
    }
  }
}

}  // namespace silod
