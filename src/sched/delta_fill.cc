#include "src/sched/delta_fill.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/estimator/ioperf.h"
#include "src/sched/zone_spread.h"
#include "src/storage/remote_store.h"

namespace silod {

const char* DeltaOrderKindName(DeltaOrderKind kind) {
  switch (kind) {
    case DeltaOrderKind::kFifo:
      return "fifo";
    case DeltaOrderKind::kSjfCompute:
      return "sjf";
    case DeltaOrderKind::kSjfSiloD:
      return "sjf-silod";
  }
  return "unknown";
}

DeltaWaterFill::DeltaWaterFill(DeltaOrderKind order, bool manage_remote_io)
    : order_(order), manage_remote_io_(manage_remote_io) {}

void DeltaWaterFill::Invalidate() {
  cache_.clear();
  have_cluster_ = false;
}

bool DeltaWaterFill::ClusterChanged(const Snapshot& snapshot) const {
  if (!have_cluster_) {
    return true;
  }
  const ClusterResources& r = snapshot.resources;
  if (r.total_gpus != last_resources_.total_gpus ||
      r.total_cache != last_resources_.total_cache || r.remote_io != last_resources_.remote_io ||
      r.per_job_remote_cap != last_resources_.per_job_remote_cap ||
      r.num_servers != last_resources_.num_servers) {
    return true;
  }
  const std::string spec = snapshot.topology == nullptr ? "" : snapshot.topology->ToSpec();
  return spec != last_topology_spec_;
}

void DeltaWaterFill::RememberCluster(const Snapshot& snapshot) {
  last_resources_ = snapshot.resources;
  last_topology_spec_ = snapshot.topology == nullptr ? "" : snapshot.topology->ToSpec();
  have_cluster_ = true;
}

AllocationPlan DeltaWaterFill::Solve(const Snapshot& snapshot,
                                     const std::vector<JobId>& dirty_jobs) {
  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required";
  if (ClusterChanged(snapshot)) {
    // Scores and demands embed the resource weights and the surviving-share
    // geometry; a cluster-level change invalidates all of them.
    cache_.clear();
    RememberCluster(snapshot);
  }

  // --- Per-job scalar stages (the delta part) -------------------------------
  // Refresh cache entries for dirty, stale or unseen jobs; everything else is
  // served from cache.  Values are bit-identical to a fresh computation
  // because each stage is a deterministic scalar function of (spec, view,
  // cluster) and the cluster part is pinned above.
  for (const JobId id : dirty_jobs) {
    cache_.erase(id);
  }
  const bool sjf = order_ != DeltaOrderKind::kFifo;
  const SjfScoreMode mode =
      order_ == DeltaOrderKind::kSjfSiloD ? SjfScoreMode::kSiloD : SjfScoreMode::kComputeOnly;
  for (const JobView& view : snapshot.jobs) {
    const JobId id = view.spec->id;
    auto it = cache_.find(id);
    if (it != cache_.end() && it->second.remaining_bytes == view.remaining_bytes &&
        it->second.effective_cache == view.effective_cache &&
        it->second.score_speed == view.speed) {
      ++jobs_reused_;
      continue;
    }
    ++jobs_rescored_;
    Entry& entry = cache_[id];
    entry.remaining_bytes = view.remaining_bytes;
    entry.effective_cache = view.effective_cache;
    entry.score_speed = view.speed;
    entry.score = sjf ? SjfScore(view, snapshot, mode) : 0.0;
    // The storage stages use the plan's assigned GPU-type speed, known only
    // after admission; the NaN forces RefreshStorageStages below.
    entry.alloc_speed = std::numeric_limits<double>::quiet_NaN();
  }
  // Drop entries for jobs that left the snapshot (completed/cancelled) so the
  // table does not grow without bound over a long-lived daemon.
  if (cache_.size() > snapshot.jobs.size()) {
    std::unordered_map<JobId, Entry> live;
    live.reserve(snapshot.jobs.size());
    for (const JobView& view : snapshot.jobs) {
      live.emplace(view.spec->id, cache_[view.spec->id]);
    }
    cache_ = std::move(live);
  }

  // --- Combinatorial glue (re-run in full, exactly as the batch solver) -----
  // Admission order: mirrors FifoScheduler::Schedule / SjfScheduler::Schedule.
  std::vector<std::size_t> order(snapshot.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (sjf) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double sa = cache_[snapshot.jobs[a].spec->id].score;
      const double sb = cache_[snapshot.jobs[b].spec->id].score;
      if (sa != sb) {
        return sa < sb;
      }
      return snapshot.jobs[a].spec->submit_time < snapshot.jobs[b].spec->submit_time;
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return snapshot.jobs[a].spec->submit_time < snapshot.jobs[b].spec->submit_time;
    });
  }

  AllocationPlan plan;
  AdmitByOrder(snapshot, order, &plan);

  // The storage stages are functions of the *plan's* assigned GPU-type speed
  // (the batch solver reads plan.Get(id).speed after admission), so they are
  // refreshed here rather than in the pre-admission pass.  On uniform fleets
  // and for jobs whose placement did not move, the cached values hit.
  const auto refresh_storage_stages = [&](const JobView& view) -> const Entry& {
    Entry& entry = cache_[view.spec->id];
    const double speed = plan.Get(view.spec->id).speed;
    if (!(entry.alloc_speed == speed)) {  // NaN-safe: stale entries never match.
      const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
      entry.alloc_speed = speed;
      entry.efficiency = CacheEfficiency(view.spec->ideal_io, speed, dataset.size);
      entry.demand = RemoteIoDemand(view.spec->ideal_io, speed, view.effective_cache,
                                    dataset.size);
      entry.headroom = RemoteIoDemand(view.spec->ideal_io, speed,
                                      SurvivingCacheShare(snapshot, view.effective_cache),
                                      dataset.size);
    }
    return entry;
  };

  // Storage: mirrors SiloDGreedyStorage::AllocateStorage with the per-job
  // scalars read from the cache.  Efficiency accumulates per dataset in
  // snapshot.jobs order — the same slot-accumulation order (and therefore the
  // same floating-point sum) as GreedyCacheAllocation.
  plan.cache_model = CacheModelKind::kDatasetQuota;
  {
    std::vector<double> efficiency(snapshot.catalog->all().size(), -1.0);
    std::vector<DatasetId> touched;
    for (const JobView& view : snapshot.jobs) {
      if (!plan.IsRunning(view.spec->id)) {
        continue;
      }
      const DatasetId dataset = snapshot.catalog->Get(view.spec->dataset).id;
      double& slot = efficiency[dataset];
      if (slot < 0) {
        slot = 0;
        touched.push_back(dataset);
      }
      slot += refresh_storage_stages(view).efficiency;
    }
    std::vector<std::pair<DatasetId, double>> ranked;
    ranked.reserve(touched.size());
    for (const DatasetId id : touched) {
      ranked.emplace_back(id, efficiency[id]);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) {
        return a.second > b.second;
      }
      return a.first < b.first;
    });
    Bytes remaining = snapshot.resources.total_cache;
    for (const auto& [dataset_id, eff] : ranked) {
      if (remaining <= 0) {
        break;
      }
      const Bytes want = snapshot.catalog->Get(dataset_id).size;
      const Bytes grant = std::min(want, remaining);
      plan.dataset_cache[dataset_id] = grant;
      remaining -= grant;
    }
  }
  SpreadPlanAcrossZones(snapshot, &plan);
  plan.manages_remote_io = manage_remote_io_;
  if (manage_remote_io_) {
    // Mirrors AllocateRemoteIo: demand vectors in running-job snapshot order,
    // then the same two max-min water-fill rounds.
    std::vector<JobId> ids;
    std::vector<BytesPerSec> demands;
    std::vector<BytesPerSec> headroom;
    for (const JobView& view : snapshot.jobs) {
      if (!plan.IsRunning(view.spec->id)) {
        continue;
      }
      const Entry& entry = refresh_storage_stages(view);
      ids.push_back(view.spec->id);
      demands.push_back(entry.demand);
      headroom.push_back(entry.headroom);
    }
    const std::vector<BytesPerSec> caps(demands.size(), snapshot.resources.per_job_remote_cap);
    std::vector<BytesPerSec> rates = MaxMinShare(demands, caps, snapshot.resources.remote_io);
    if (snapshot.topology != nullptr && !snapshot.topology->empty()) {
      BytesPerSec used = 0;
      for (const BytesPerSec rate : rates) {
        used += rate;
      }
      const BytesPerSec leftover = snapshot.resources.remote_io - used;
      if (leftover > 0) {
        std::vector<BytesPerSec> extra_demand(ids.size());
        std::vector<BytesPerSec> extra_cap(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
          extra_demand[i] = std::max(0.0, headroom[i] - rates[i]);
          extra_cap[i] = std::max(0.0, caps[i] - rates[i]);
        }
        const std::vector<BytesPerSec> extra = MaxMinShare(extra_demand, extra_cap, leftover);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          rates[i] += extra[i];
        }
      }
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      plan.jobs[ids[i]].remote_io = rates[i];
    }
  }
  return plan;
}

}  // namespace silod
