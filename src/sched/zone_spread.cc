#include "src/sched/zone_spread.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace silod {

ZoneSpreader::ZoneSpreader(const ClusterTopology& topology, Bytes total_cache, int num_servers)
    : topology_(topology) {
  remaining_.reserve(topology.zones().size());
  const double per_server =
      num_servers > 0 ? static_cast<double>(total_cache) / num_servers : 0.0;
  for (const TopologyZone& zone : topology.zones()) {
    remaining_.push_back(per_server * zone.size());
  }
}

std::vector<Bytes> ZoneSpreader::Spread(Bytes quota) {
  const int num_zones = topology_.num_zones();
  std::vector<Bytes> shares(num_zones, 0);
  if (quota <= 0 || num_zones == 0) {
    return shares;
  }

  std::vector<double> placed(num_zones, 0.0);
  double want = static_cast<double>(quota);
  // Pass 0 respects the loss bound; pass 1 relaxes it (capacity never
  // relaxes).  Proportional-to-headroom distribution of at most the total
  // headroom keeps every zone within its cap in a single sweep.
  for (int pass = 0; pass < 2 && want > 0.5; ++pass) {
    const double per_zone_cap =
        pass == 0 ? topology_.loss_bound() * static_cast<double>(quota)
                  : static_cast<double>(quota);
    std::vector<double> headroom(num_zones, 0.0);
    double headroom_total = 0;
    for (int z = 0; z < num_zones; ++z) {
      headroom[z] = std::max(0.0, std::min(remaining_[z] - placed[z], per_zone_cap - placed[z]));
      headroom_total += headroom[z];
    }
    if (headroom_total <= 0) {
      continue;
    }
    const double assign = std::min(want, headroom_total);
    for (int z = 0; z < num_zones; ++z) {
      placed[z] += assign * headroom[z] / headroom_total;
    }
    want -= assign;
  }
  if (want > 0.5) {
    // Pool-wide capacity exhausted (allocators hand out at most total_cache,
    // so this is floating-point drift at worst): park the remainder in the
    // roomiest zone rather than dropping quota bytes.
    const int z = static_cast<int>(
        std::max_element(remaining_.begin(), remaining_.end()) - remaining_.begin());
    placed[z] += want;
  }

  // Largest-remainder rounding so integer shares sum exactly to the quota.
  Bytes assigned = 0;
  std::vector<int> order(num_zones);
  std::iota(order.begin(), order.end(), 0);
  for (int z = 0; z < num_zones; ++z) {
    shares[z] = static_cast<Bytes>(std::floor(placed[z]));
    assigned += shares[z];
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return placed[a] - std::floor(placed[a]) > placed[b] - std::floor(placed[b]);
  });
  for (int i = 0; assigned < quota && num_zones > 0; i = (i + 1) % num_zones) {
    shares[order[i]] += 1;
    assigned += 1;
  }

  for (int z = 0; z < num_zones; ++z) {
    remaining_[z] = std::max(0.0, remaining_[z] - static_cast<double>(shares[z]));
  }
  return shares;
}

Bytes ZoneSpreader::WorstCaseLoss(const std::vector<Bytes>& shares) {
  Bytes worst = 0;
  for (const Bytes share : shares) {
    worst = std::max(worst, share);
  }
  return worst;
}

double WorstCaseZoneFraction(const ClusterTopology& topology, int num_servers) {
  if (topology.empty() || num_servers <= 0) {
    return 1.0;
  }
  double worst = 0;
  for (const TopologyZone& zone : topology.zones()) {
    const double capacity_fraction = static_cast<double>(zone.size()) / num_servers;
    worst = std::max(worst, std::min(topology.loss_bound(), capacity_fraction));
  }
  return worst;
}

void SpreadPlanAcrossZones(const Snapshot& snapshot, AllocationPlan* plan) {
  if (snapshot.topology == nullptr || snapshot.topology->empty()) {
    return;
  }
  ZoneSpreader spreader(*snapshot.topology, snapshot.resources.total_cache,
                        snapshot.resources.num_servers);
  plan->dataset_zone_cache.clear();
  for (const auto& [dataset, quota] : plan->dataset_cache) {
    plan->dataset_zone_cache[dataset] = spreader.Spread(quota);
  }
}

Bytes SurvivingCacheShare(const Snapshot& snapshot, Bytes cache) {
  if (snapshot.topology == nullptr || snapshot.topology->empty()) {
    return cache;
  }
  const double surviving =
      1.0 - WorstCaseZoneFraction(*snapshot.topology, snapshot.resources.num_servers);
  return static_cast<Bytes>(static_cast<double>(cache) * surviving);
}

}  // namespace silod
