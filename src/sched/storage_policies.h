// Baseline storage policies (§7 "Baselines"): how the three cache systems the
// paper compares against allocate storage when operating independently of the
// cluster scheduler.  SiloD's own policy lives in greedy.h (Algorithm 2) and
// gavel.h (solver-driven).
#ifndef SILOD_SRC_SCHED_STORAGE_POLICIES_H_
#define SILOD_SRC_SCHED_STORAGE_POLICIES_H_

#include <string>

#include "src/estimator/profiler.h"
#include "src/sched/policy.h"

namespace silod {

// Alluxio [46]: one cluster-wide LRU (default) or LFU pool shared by all
// jobs; no allocation decisions at all.  Remote IO is provider fair share.
class AlluxioStorage : public StoragePolicy {
 public:
  enum class Eviction { kLru, kLfu };
  explicit AlluxioStorage(Eviction eviction = Eviction::kLru) : eviction_(eviction) {}

  void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) override;
  CacheModelKind cache_model() const override {
    return eviction_ == Eviction::kLru ? CacheModelKind::kSharedLru
                                       : CacheModelKind::kSharedLfu;
  }
  bool manages_remote_io() const override { return false; }
  std::string name() const override {
    return eviction_ == Eviction::kLru ? "alluxio-lru" : "alluxio-lfu";
  }

 private:
  Eviction eviction_;
};

// CoorDL [50]: static per-job uniform caches sized by the job's share of the
// cluster's local disks.  Remote IO is provider fair share.
class CoorDlStorage : public StoragePolicy {
 public:
  void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) override;
  CacheModelKind cache_model() const override { return CacheModelKind::kPerJobStatic; }
  bool manages_remote_io() const override { return false; }
  std::string name() const override { return "coordl-static"; }
};

// Quiver [44]: dataset-quota allocation by noisy online benefit-to-cost
// ranking, whole datasets only.  Remote IO is provider fair share.
class QuiverStorage : public StoragePolicy {
 public:
  // `profiling_noise` is the relative error of Quiver's online benefit
  // measurements; the paper attributes Quiver's occasional wrong evictions to
  // this instability (§7.1.2).
  explicit QuiverStorage(double profiling_noise = 0.25, std::uint64_t seed = 11);

  void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) override;
  CacheModelKind cache_model() const override { return CacheModelKind::kDatasetQuota; }
  bool manages_remote_io() const override { return false; }
  std::string name() const override { return "quiver"; }

 private:
  OnlineBenefitProfiler profiler_;
  // Quiver only evicts a cached dataset when a challenger's measured benefit
  // clearly beats it; the retention bonus models that hysteresis.  The paper
  // still observes occasional wrong evictions when measurement noise exceeds
  // it (§7.1.2), which this reproduces.
  // 1.7 exceeds the worst-case ratio of two +-25% measurements of equal
  // benefits, so equal datasets never flip; near-equal but distinct datasets
  // still occasionally swap, evicting effective data.
  static constexpr double kRetentionBonus = 1.7;
  std::map<DatasetId, Bytes> last_allocation_;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_STORAGE_POLICIES_H_
