// The quota-spreading rule for zone-aware cache placement (docs/MODEL.md §8).
//
// Given a ClusterTopology (failure domains with a per-zone loss bound) and
// the cluster cache total, a ZoneSpreader splits each dataset's quota into
// per-zone shares such that
//
//   1. no zone holds more than `loss_bound * quota` of the dataset
//      (bounding the bytes one zone-crash can cost the dataset), and
//   2. the aggregate placed in a zone never exceeds the zone's capacity
//      (its proportional slice of total cache, since cache servers are
//      homogeneous), so the data manager can actually hold the shares.
//
// Within those caps, shares follow remaining zone capacity (water-filling),
// which keeps the spread proportional when the bound does not bind.  When
// the two constraints cannot absorb the whole quota — many small zones, a
// loss bound below 1/num_zones, or a nearly-full pool — the loss bound
// relaxes first (capacity never does): resilience degrades gracefully to the
// capacity-proportional spread rather than refusing to cache.
//
// The spreader is stateful across datasets — zone capacity consumed by one
// dataset is gone for the next — so callers iterate datasets in their
// allocation order (greedy Alg. 2 order, or dataset id for the solvers).
#ifndef SILOD_SRC_SCHED_ZONE_SPREAD_H_
#define SILOD_SRC_SCHED_ZONE_SPREAD_H_

#include <vector>

#include "src/common/topology.h"
#include "src/common/units.h"
#include "src/sched/policy.h"

namespace silod {

class ZoneSpreader {
 public:
  // The topology must outlive the spreader.  Zone capacity is
  // total_cache * zone_size / num_servers.
  ZoneSpreader(const ClusterTopology& topology, Bytes total_cache, int num_servers);

  // Splits `quota` into per-zone shares (indexed like topology.zones(),
  // summing exactly to `quota`) and consumes the capacity they occupy.
  std::vector<Bytes> Spread(Bytes quota);

  // The worst single-zone loss a spread exposes: its largest share.
  static Bytes WorstCaseLoss(const std::vector<Bytes>& shares);

 private:
  const ClusterTopology& topology_;
  std::vector<double> remaining_;  // Uncommitted capacity per zone, in bytes.
};

// Upper bound on the fraction of any dataset's quota a single zone-crash can
// take under the spread rule: max over zones of min(loss_bound, zone
// capacity fraction), i.e. the exposure to the largest zone before
// capacity-forced relaxation.  1.0 when the topology is empty (oblivious
// placement concentrates arbitrarily).  Policies feed 1 - this into the
// estimator so planned remote-IO throttles already cover the post-crash
// cache level (the co-design half of zone awareness).
double WorstCaseZoneFraction(const ClusterTopology& topology, int num_servers);

// Fills plan->dataset_zone_cache with the spread of every dataset_cache
// quota, iterating datasets in id order.  No-op (leaves the plan oblivious)
// when the snapshot carries no topology.
void SpreadPlanAcrossZones(const Snapshot& snapshot, AllocationPlan* plan);

// The estimator-facing cache level for a dataset quota `cache`: scaled down
// to the share that survives a worst-case single-zone crash when the
// snapshot is zone-aware, unchanged otherwise.
Bytes SurvivingCacheShare(const Snapshot& snapshot, Bytes cache);

}  // namespace silod

#endif  // SILOD_SRC_SCHED_ZONE_SPREAD_H_
