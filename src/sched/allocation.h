// Allocation vocabulary shared by schedulers, storage policies and engines.
//
// A scheduling round produces an AllocationPlan: which jobs hold GPUs, how
// much cache each *dataset* gets (cache is charged once per dataset so
// sharing jobs benefit jointly, §6), and each *job's* remote-IO throttle
// (remote IO is exclusive per job since sharing jobs still read in different
// orders, §6).  Baseline cache systems that do not expose allocations
// (Alluxio's shared LRU, CoorDL's per-job static caches) are described by the
// plan's CacheModelKind so the engines model them faithfully.
#ifndef SILOD_SRC_SCHED_ALLOCATION_H_
#define SILOD_SRC_SCHED_ALLOCATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

enum class CacheModelKind {
  // Per-dataset uniform-cache quotas enforced by the data manager (SiloD,
  // Quiver).
  kDatasetQuota,
  // One cluster-wide LRU pool, no quotas (Alluxio's default).
  kSharedLru,
  // One cluster-wide LFU pool (Alluxio's alternative policy).  Under the
  // exactly-once-per-epoch pattern every item's frequency grows in lockstep,
  // so LFU degenerates to the same scan thrashing as LRU.
  kSharedLfu,
  // Each job caches independently in a fixed private slice (CoorDL).
  kPerJobStatic,
};

const char* CacheModelKindName(CacheModelKind kind);

struct ClusterResources {
  int total_gpus = 0;
  Bytes total_cache = 0;
  BytesPerSec remote_io = 0;  // Egress limit of the storage account.
  // Per-job cap the provider imposes on a single reader (per-VM/connection
  // limit); kUnlimitedRate when only the account-level egress binds.  This is
  // the "50 MB/s remote IO bandwidth" of Fig. 4 — one job's unused slice is
  // not transferable to another, which is exactly why Quiver's cache
  // hoarding starves Job-1 while max-min keeps both jobs fast.
  BytesPerSec per_job_remote_cap = kUnlimitedRate;
  int num_servers = 1;
};

struct JobAllocation {
  bool running = false;
  int gpus = 0;
  // Private cache slice; meaningful for kPerJobStatic only.
  Bytes private_cache = 0;
  // Remote-IO throttle enforced by the FUSE clients; kUnlimitedRate when the
  // plan does not manage remote IO (provider fair share applies).
  BytesPerSec remote_io = kUnlimitedRate;
  // GPU-type placement (common/topology.h gpu_types()): the pool index the
  // gang runs in and the resulting speed multiplier on the job's ideal rate.
  // -1 / 1.0 on uniform fleets — PlanDigest only mixes these when a type was
  // assigned, so untyped digests match the pre-heterogeneity ones exactly.
  int gpu_type = -1;
  double speed = 1.0;
};

struct AllocationPlan {
  CacheModelKind cache_model = CacheModelKind::kDatasetQuota;
  // Whether the plan carries explicit per-job remote-IO throttles (§7.2's
  // ablation turns this off and falls back to provider fair share).
  bool manages_remote_io = false;

  std::map<JobId, JobAllocation> jobs;
  std::map<DatasetId, Bytes> dataset_cache;
  // Zone-aware placement (common/topology.h): how each dataset's quota is
  // spread across the snapshot topology's zones, indexed like
  // topology.zones().  Present only when the policy placed against a
  // topology; each entry sums to the dataset's dataset_cache quota, and the
  // data manager / engines charge a zone-crash only the crashed zone's
  // share.  Empty map = zone-oblivious plan (pre-topology behaviour).
  std::map<DatasetId, std::vector<Bytes>> dataset_zone_cache;

  int GpusUsed() const;
  Bytes DatasetCacheTotal() const;
  const JobAllocation& Get(JobId job) const;
  bool IsRunning(JobId job) const;

  // Conservation checks: GPUs, cache and (when managed) remote IO within the
  // cluster totals; no allocation to non-running jobs.
  Status Validate(const ClusterResources& resources) const;
};

// Exact (bit-level) plan equality: every field compared, doubles by their
// bit pattern so NaN/±0/inf differences are caught.  This is the correctness
// anchor of the incremental planner (sched/delta_fill.h): a delta solve must
// be PlansBitIdentical to the batch solve on the same snapshot.
bool PlansBitIdentical(const AllocationPlan& a, const AllocationPlan& b);

// FNV-1a digest over a canonical serialization of the plan (maps iterate in
// key order, doubles hash their bit pattern).  PlansBitIdentical(a, b)
// implies PlanDigest(a) == PlanDigest(b); the daemon's `plan` verb and the
// serve-smoke CI stage compare digests instead of shipping whole plans.
std::uint64_t PlanDigest(const AllocationPlan& plan);

}  // namespace silod

#endif  // SILOD_SRC_SCHED_ALLOCATION_H_
