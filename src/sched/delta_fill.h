// Delta water-filling: incremental re-solve of the order-based SiloD
// pipeline (docs/MODEL.md §11).
//
// The batch solvers (fifo+silod, sjf+silod) are pure functions of the
// snapshot, built from per-job scalar stages (SJF score, cache-efficiency
// contribution, effective/surviving remote-IO demand) glued together by
// cheap combinatorics (a stable sort, gang admission, the greedy fill, the
// max-min water-fill).  The scalar stages are the only per-job work, and
// each is a deterministic function of that job's view — so a long-lived
// planner can cache them per JobId and recompute only the jobs whose inputs
// changed since the last plan, while re-running the combinatorial glue in
// full every tick.
//
// Bit-identity contract: Solve() returns exactly the plan the matching batch
// scheduler would produce on the same snapshot — including floating-point
// summation order (per-dataset efficiency accumulates in ascending
// snapshot.jobs order, the same order GreedyCacheAllocation walks) — for any
// dirty set, because cached values are verified against the view's inputs
// and recomputed on mismatch.  The dirty set steers the fast path; it is
// never trusted for correctness.  tests/serve_test.cc pins this with
// PlansBitIdentical against fresh batch schedulers.
#ifndef SILOD_SRC_SCHED_DELTA_FILL_H_
#define SILOD_SRC_SCHED_DELTA_FILL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sched/policy.h"
#include "src/sched/sjf.h"

namespace silod {

// Which admission order the mirrored batch scheduler uses.
enum class DeltaOrderKind {
  kFifo,        // fifo+silod: submit-time order.
  kSjfCompute,  // sjf (compute-only score) + silod storage.
  kSjfSiloD,    // sjf-silod: Eq. 7 score + silod storage.
};

const char* DeltaOrderKindName(DeltaOrderKind kind);

class DeltaWaterFill {
 public:
  DeltaWaterFill(DeltaOrderKind order, bool manage_remote_io);

  // Re-solves the snapshot, recomputing per-job stages only for `dirty_jobs`
  // (plus any job whose cached inputs no longer match its view, and jobs
  // never seen before).  `dirty_jobs` may safely over- or under-approximate.
  AllocationPlan Solve(const Snapshot& snapshot, const std::vector<JobId>& dirty_jobs);

  // Drops every cached per-job value; the next Solve recomputes all jobs.
  // Called on policy/topology/resource changes (also detected internally).
  void Invalidate();

  DeltaOrderKind order() const { return order_; }
  bool manages_remote_io() const { return manage_remote_io_; }

  // Lifetime counters: per-job scalar stages recomputed vs served from
  // cache, across all Solve calls (the stats surface for /stats).
  std::uint64_t jobs_rescored() const { return jobs_rescored_; }
  std::uint64_t jobs_reused() const { return jobs_reused_; }

 private:
  struct Entry {
    // Input fingerprint: cached outputs are valid only while the view still
    // carries exactly these values (spec fields are immutable per JobId).
    Bytes remaining_bytes = 0;
    Bytes effective_cache = 0;
    double score_speed = 1.0;    // view.speed the score was computed at.
    // The storage stages depend on the *plan's* assigned GPU-type speed,
    // which is only known after admission; NaN marks them stale (NaN never
    // compares equal, so the post-admission pass always recomputes them).
    double alloc_speed = std::numeric_limits<double>::quiet_NaN();
    // Cached per-job stages.
    double score = 0;            // SjfScore in order_'s mode (0 for FIFO).
    double efficiency = 0;       // CacheEfficiency(f*·s, dataset size).
    BytesPerSec demand = 0;      // Eq. 2 at the effective cache.
    BytesPerSec headroom = 0;    // Eq. 2 at the worst-case surviving share.
  };

  // True when cluster-wide inputs (resources, topology) moved since the last
  // Solve, which invalidates every cached score/demand.
  bool ClusterChanged(const Snapshot& snapshot) const;
  void RememberCluster(const Snapshot& snapshot);

  DeltaOrderKind order_;
  bool manage_remote_io_;

  std::unordered_map<JobId, Entry> cache_;
  ClusterResources last_resources_;
  std::string last_topology_spec_;
  bool have_cluster_ = false;

  std::uint64_t jobs_rescored_ = 0;
  std::uint64_t jobs_reused_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_DELTA_FILL_H_
