#include "src/sched/sjf.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/logging.h"
#include "src/estimator/ioperf.h"

namespace silod {

namespace {

// The cluster-dependent parts of Eq. 6/7, shared by every job's score.
struct SjfWeights {
  double w_gpu = 0;
  double w_cache = 0;
  double w_io = 0;
  Bytes total_cache = 0;
};

SjfWeights MakeSjfWeights(const Snapshot& snapshot) {
  SjfWeights w;
  w.w_gpu = 1.0 / std::max(1, snapshot.resources.total_gpus);
  w.w_cache = snapshot.resources.total_cache > 0
                  ? 1.0 / static_cast<double>(snapshot.resources.total_cache)
                  : 0.0;
  w.w_io = snapshot.resources.remote_io > 0 ? 1.0 / snapshot.resources.remote_io : 0.0;
  w.total_cache = snapshot.resources.total_cache;
  return w;
}

double ScoreWith(const JobView& view, const Snapshot& snapshot, SjfScoreMode mode,
                 const SjfWeights& w) {
  const JobSpec& job = *view.spec;
  const double work = static_cast<double>(view.remaining_bytes);
  const double gpu_term = w.w_gpu * job.num_gpus;
  // Heterogeneity enters SJF through the predicted duration: the job computes
  // at f*·s on its (held or best-feasible) GPU type, so both the duration
  // factor and the remote-IO footprint use the effective ideal rate.
  const BytesPerSec ideal = EffectiveIdeal(job.ideal_io, view.speed);

  if (mode == SjfScoreMode::kComputeOnly) {
    // Vanilla multi-resource SJF: duration predicted with f* alone.
    return gpu_term * work / ideal;
  }

  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required for SiloD scoring";
  const Dataset& dataset = snapshot.catalog->Get(job.dataset);

  // For any cache choice c the job should target its ideal throughput f*
  // (raising throughput only shrinks the duration factor), which needs
  // b = f* (1 - c/d).  The resulting score is linear in c, so the optimum is
  // at an endpoint of [0, min(d, C)].
  double best = std::numeric_limits<double>::infinity();
  const Bytes c_hi = std::min(dataset.size, w.total_cache);
  for (const Bytes c : {Bytes{0}, c_hi}) {
    const BytesPerSec b = RemoteIoDemand(ideal, c, dataset.size);
    const double footprint = gpu_term + w.w_cache * static_cast<double>(c) + w.w_io * b;
    const double score = footprint * work / ideal;
    best = std::min(best, score);
  }
  return best;
}

}  // namespace

double SjfScore(const JobView& view, const Snapshot& snapshot, SjfScoreMode mode) {
  return ScoreWith(view, snapshot, mode, MakeSjfWeights(snapshot));
}

void SjfScores(const Snapshot& snapshot, SjfScoreMode mode, std::vector<double>* out) {
  const SjfWeights w = MakeSjfWeights(snapshot);
  out->resize(snapshot.jobs.size());
  for (std::size_t i = 0; i < snapshot.jobs.size(); ++i) {
    (*out)[i] = ScoreWith(snapshot.jobs[i], snapshot, mode, w);
  }
}

SjfScheduler::SjfScheduler(std::shared_ptr<StoragePolicy> storage, SjfScoreMode mode,
                           bool preemptive)
    : storage_(std::move(storage)), mode_(mode), preemptive_(preemptive) {
  SILOD_CHECK(storage_ != nullptr) << "storage policy required";
}

std::string SjfScheduler::name() const {
  std::string name = std::string(mode_ == SjfScoreMode::kSiloD ? "sjf-silod+" : "sjf+") +
                     storage_->name();
  if (preemptive_) {
    name = "srtf" + name.substr(3);
  }
  return name;
}

AllocationPlan SjfScheduler::Schedule(const Snapshot& snapshot) {
  std::vector<double> scores;
  SjfScores(snapshot, mode_, &scores);
  std::vector<std::size_t> order(snapshot.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) {
      return scores[a] < scores[b];
    }
    return snapshot.jobs[a].spec->submit_time < snapshot.jobs[b].spec->submit_time;
  });

  AllocationPlan plan;
  if (preemptive_) {
    AdmitByOrderPreemptive(snapshot, order, &plan);
  } else {
    AdmitByOrder(snapshot, order, &plan);
  }
  storage_->AllocateStorage(snapshot, &plan);
  return plan;
}

}  // namespace silod
