#include "src/sched/gavel.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/cache/analytic.h"
#include "src/common/logging.h"
#include "src/estimator/ioperf.h"
#include "src/sched/zone_spread.h"
#include "src/storage/remote_store.h"

namespace silod {
namespace {

struct RunningJob {
  const JobView* view = nullptr;
  BytesPerSec base = 0;   // Normalizer of the fairness ratio.
  double speed = 1.0;     // Held GPU type's speed (plan's placement).
  BytesPerSec ideal = 0;  // Effective ideal rate f*·speed.
};

// Fractional-knapsack feasibility oracle: can every job sustain target[i]?
// On success fills dataset cache quotas and required per-job remote IO.
bool TargetsFeasible(const Snapshot& snapshot, const std::vector<RunningJob>& jobs,
                     const std::vector<BytesPerSec>& targets,
                     std::map<DatasetId, Bytes>* dataset_cache,
                     std::vector<BytesPerSec>* required_io) {
  dataset_cache->clear();
  required_io->assign(jobs.size(), 0);

  // Phase 1 — mandatory cache: the provider's per-job cap means job j can
  // sustain T_j only if its dataset holds at least d (1 - cap / T_j) bytes of
  // cache.  With sharing, a dataset's floor is the max over its jobs.
  const BytesPerSec cap = snapshot.resources.per_job_remote_cap;
  std::map<DatasetId, Bytes> floor;
  std::map<DatasetId, double> saving_rate;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Dataset& d = snapshot.catalog->Get(jobs[i].view->spec->dataset);
    saving_rate[d.id] += targets[i] / static_cast<double>(d.size);
    if (std::isfinite(cap) && targets[i] > cap) {
      const double frac = 1.0 - cap / targets[i];
      const Bytes need = static_cast<Bytes>(frac * static_cast<double>(d.size)) + 1;
      Bytes& slot = floor[d.id];
      slot = std::max(slot, std::min(need, d.size));
    }
  }
  Bytes remaining = snapshot.resources.total_cache;
  for (const auto& [dataset_id, need] : floor) {
    (*dataset_cache)[dataset_id] = need;
    remaining -= need;
  }
  if (remaining < 0) {
    return false;  // Cannot even satisfy the per-job caps.
  }

  // Phase 2 — fractional knapsack on the rest: a byte of cache on dataset D
  // saves sum_{j on D} T_j / d of remote IO.
  std::vector<std::pair<DatasetId, double>> order(saving_rate.begin(), saving_rate.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  for (const auto& [dataset_id, rate] : order) {
    if (remaining <= 0) {
      break;
    }
    Bytes& slot = (*dataset_cache)[dataset_id];
    const Bytes grant = std::min(snapshot.catalog->Get(dataset_id).size - slot, remaining);
    slot += grant;
    remaining -= grant;
  }

  BytesPerSec total_io = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Dataset& d = snapshot.catalog->Get(jobs[i].view->spec->dataset);
    auto it = dataset_cache->find(d.id);
    const Bytes cache = it == dataset_cache->end() ? 0 : it->second;
    (*required_io)[i] = RequiredRemoteIo(targets[i], cache, d.size);
    if ((*required_io)[i] > cap * (1.0 + 1e-12)) {
      return false;  // The provider's per-job cap binds before the account cap.
    }
    total_io += (*required_io)[i];
  }
  return total_io <= snapshot.resources.remote_io * (1.0 + 1e-12);
}

// The normalizer of the fairness ratio for each objective: equal-share
// throughput for Eq. 8/9 max-min fairness, the exclusive-cluster rate f*·s
// for finish-time fairness.  `speed` is the job's held-GPU-type speed, so a
// job on a slow generation is normalized against what that hardware can do,
// not against the uniform-fleet f*.
BytesPerSec FairnessBase(GavelObjective objective, const JobSpec& job, double speed,
                         const DatasetCatalog& catalog, const EqualShareParams& eq) {
  BytesPerSec base = objective == GavelObjective::kFinishTimeFairness
                         ? EffectiveIdeal(job.ideal_io, speed)
                         : EqualShareThroughput(job, speed, catalog, eq);
  if (base <= 0) {
    base = EffectiveIdeal(job.ideal_io, speed) * 1e-9;  // Keep the denominator positive.
  }
  return base;
}

GavelSolution SolveFairness(const Snapshot& snapshot, const AllocationPlan& plan,
                            GavelObjective objective) {
  GavelSolution solution;
  std::vector<RunningJob> jobs;
  for (const JobView& view : snapshot.jobs) {
    if (plan.IsRunning(view.spec->id)) {
      RunningJob j;
      j.view = &view;
      // The plan's placement is authoritative post-admission: every target
      // and demand below uses the effective ideal rate of the GPU type the
      // gang actually landed on (speed 1.0 on uniform fleets).
      j.speed = plan.Get(view.spec->id).speed;
      j.ideal = EffectiveIdeal(view.spec->ideal_io, j.speed);
      jobs.push_back(j);
    }
  }
  if (jobs.empty()) {
    return solution;
  }
  const int n = static_cast<int>(jobs.size());
  const EqualShareParams eq = MakeEqualShareParams(snapshot.resources, n);
  for (RunningJob& j : jobs) {
    j.base = FairnessBase(objective, *j.view->spec, j.speed, *snapshot.catalog, eq);
  }

  auto targets_at = [&](double rho) {
    std::vector<BytesPerSec> t(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      t[i] = std::min(rho * jobs[i].base, jobs[i].ideal);
    }
    return t;
  };

  std::map<DatasetId, Bytes> cache;
  std::vector<BytesPerSec> required;

  // Upper bound: the ratio at which every job is compute-bound.
  double hi = 1.0;
  for (const RunningJob& j : jobs) {
    hi = std::max(hi, j.ideal / j.base);
  }
  double lo = 0.0;
  if (TargetsFeasible(snapshot, jobs, targets_at(hi), &cache, &required)) {
    lo = hi;  // Everyone reaches f*.
  } else {
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (TargetsFeasible(snapshot, jobs, targets_at(mid), &cache, &required)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  const double rho = lo;
  std::vector<BytesPerSec> targets = targets_at(rho);
  const bool ok = TargetsFeasible(snapshot, jobs, targets, &cache, &required);
  SILOD_CHECK(ok) << "bisection lower bound must be feasible";

  // Progressive filling: hand leftover egress bandwidth to jobs that still
  // have headroom toward f*, max-min over the extra demand.
  BytesPerSec used = 0;
  for (BytesPerSec b : required) {
    used += b;
  }
  const BytesPerSec leftover = std::max(0.0, snapshot.resources.remote_io - used);
  std::vector<BytesPerSec> extra_demand(jobs.size(), 0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Dataset& d = snapshot.catalog->Get(jobs[i].view->spec->dataset);
    auto it = cache.find(d.id);
    const Bytes c = it == cache.end() ? 0 : it->second;
    const BytesPerSec max_b =
        std::min(RemoteIoDemand(jobs[i].ideal, c, d.size), snapshot.resources.per_job_remote_cap);
    extra_demand[i] = std::max(0.0, max_b - required[i]);
  }
  const std::vector<BytesPerSec> extra = MaxMinShare(extra_demand, leftover);

  solution.fairness_ratio = rho;
  solution.dataset_cache = std::move(cache);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobId id = jobs[i].view->spec->id;
    solution.remote_io[id] = required[i] + extra[i];
    const Dataset& d = snapshot.catalog->Get(jobs[i].view->spec->dataset);
    auto it = solution.dataset_cache.find(d.id);
    const Bytes c = it == solution.dataset_cache.end() ? 0 : it->second;
    solution.target[id] = SiloDPerfThroughput(jobs[i].ideal, solution.remote_io[id], c, d.size);
  }
  return solution;
}

}  // namespace

const char* GavelObjectiveName(GavelObjective objective) {
  switch (objective) {
    case GavelObjective::kMaxMinFairness:
      return "max-min-fairness";
    case GavelObjective::kFinishTimeFairness:
      return "finish-time-fairness";
    case GavelObjective::kMinTotalJct:
      return "min-total-jct";
    case GavelObjective::kMaxThroughput:
      return "max-throughput";
  }
  return "unknown";
}

BytesPerSec EqualShareThroughput(const JobSpec& job, const Snapshot& snapshot, int num_sharers) {
  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required";
  return EqualShareThroughput(job, *snapshot.catalog,
                              MakeEqualShareParams(snapshot.resources, num_sharers));
}

EqualShareParams MakeEqualShareParams(const ClusterResources& resources, int num_sharers) {
  SILOD_CHECK(num_sharers >= 1) << "at least one sharer";
  EqualShareParams params;
  params.cache_eq = resources.total_cache / num_sharers;
  params.io_eq = std::min(resources.remote_io / num_sharers, resources.per_job_remote_cap);
  return params;
}

BytesPerSec EqualShareThroughput(const JobSpec& job, const DatasetCatalog& catalog,
                                 const EqualShareParams& params) {
  const Dataset& d = catalog.Get(job.dataset);
  return SiloDPerfThroughput(job.ideal_io, params.io_eq, std::min(params.cache_eq, d.size),
                             d.size);
}

BytesPerSec EqualShareThroughput(const JobSpec& job, double speed, const DatasetCatalog& catalog,
                                 const EqualShareParams& params) {
  const Dataset& d = catalog.Get(job.dataset);
  return SiloDPerfThroughput(job.ideal_io, speed, params.io_eq, std::min(params.cache_eq, d.size),
                             d.size);
}

GavelSolution SolveMaxMinFairness(const Snapshot& snapshot, const AllocationPlan& plan) {
  return SolveFairness(snapshot, plan, GavelObjective::kMaxMinFairness);
}

GavelScheduler::GavelScheduler(std::shared_ptr<StoragePolicy> storage, bool silod_aware,
                               bool manage_remote_io, GavelObjective objective)
    : storage_(std::move(storage)), silod_aware_(silod_aware),
      manage_remote_io_(manage_remote_io), objective_(objective) {
  SILOD_CHECK(silod_aware_ || storage_ != nullptr)
      << "vanilla Gavel needs an independent storage policy";
}

std::string GavelScheduler::name() const {
  std::string base;
  if (silod_aware_) {
    base = manage_remote_io_ ? "gavel-silod" : "gavel-silod-cache-only";
  } else {
    base = "gavel+" + storage_->name();
  }
  if (objective_ != GavelObjective::kMaxMinFairness) {
    base += std::string("[") + GavelObjectiveName(objective_) + "]";
  }
  return base;
}

void GavelScheduler::AllocateFairShare(const Snapshot& snapshot, AllocationPlan& plan) {
  const GavelSolution solution = SolveFairness(snapshot, plan, objective_);
  plan.dataset_cache = solution.dataset_cache;
  if (!manage_remote_io_) {
    return;
  }
  // Throttles are solved over the *effective* cache (§6): the steady-state
  // solver's b_j would starve a job whose planned cache has not filled yet
  // (a fully-cached target implies b = 0, but a cold job needs IO both to
  // train and to fill that cache).  We bisect the same ratio over each job's
  // current achievable throughput min(f*, b/(1 - eff/d)); as caches fill,
  // this converges to the steady-state solution.
  std::vector<JobId> ids;
  std::vector<BytesPerSec> base;
  EstimatorBatch batch;
  int n_running = 0;
  for (const JobView& view : snapshot.jobs) {
    if (plan.IsRunning(view.spec->id)) {
      ++n_running;
    }
  }
  const EqualShareParams eq = MakeEqualShareParams(snapshot.resources, std::max(1, n_running));
  for (const JobView& view : snapshot.jobs) {
    if (!plan.IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& d = snapshot.catalog->Get(view.spec->dataset);
    ids.push_back(view.spec->id);
    const double speed = plan.Get(view.spec->id).speed;
    base.push_back(FairnessBase(objective_, *view.spec, speed, *snapshot.catalog, eq));
    // Zone-aware runs feed the estimator the post-crash surviving share, so
    // the throttles granted now still cover the jobs after a worst-case
    // single-zone crash (identity when the snapshot has no topology).  The
    // batch stores the effective ideal f*·s, so every bisection probe and
    // demand below is heterogeneity-aware with no extra work in the loop.
    batch.Add(view.spec->ideal_io, speed, SurvivingCacheShare(snapshot, view.effective_cache),
              d.size);
  }
  // One bisection probe sweeps the whole batch instead of re-deriving each
  // job's operating point from snapshot views; the arithmetic (and summation
  // order) matches the per-job loop exactly.
  const BytesPerSec cap = snapshot.resources.per_job_remote_cap;
  double lo = 0;
  double hi = 1.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    hi = std::max(hi, batch.ideal(i) / base[i]);
  }
  if (batch.TotalThrottledDemand(hi, base, cap) <= snapshot.resources.remote_io) {
    lo = hi;
  } else {
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (batch.TotalThrottledDemand(mid, base, cap) <= snapshot.resources.remote_io) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  std::vector<BytesPerSec> max_demand;
  batch.RemoteIoDemands(&max_demand);
  std::vector<BytesPerSec> grant(ids.size());
  std::vector<BytesPerSec> residual(ids.size());
  BytesPerSec used = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    grant[i] = batch.ThrottledDemand(lo, base, cap, i);
    used += grant[i];
    residual[i] = std::max(0.0, std::min(max_demand[i], cap) - grant[i]);
  }
  const std::vector<BytesPerSec> topup =
      MaxMinShare(residual, std::max(0.0, snapshot.resources.remote_io - used));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    plan.jobs[ids[i]].remote_io = grant[i] + topup[i];
  }
}

void GavelScheduler::AllocateGreedyObjective(const Snapshot& snapshot, AllocationPlan& plan) {
  struct Entry {
    const JobView* view = nullptr;
    double speed = 1.0;         // Held GPU type's speed (plan's placement).
    double remaining_time = 0;  // remaining / (f*·speed).
  };
  std::vector<Entry> jobs;
  for (const JobView& view : snapshot.jobs) {
    if (!plan.IsRunning(view.spec->id)) {
      continue;
    }
    Entry e;
    e.view = &view;
    e.speed = plan.Get(view.spec->id).speed;
    e.remaining_time = std::max(1.0, static_cast<double>(view.remaining_bytes) /
                                         EffectiveIdeal(view.spec->ideal_io, e.speed));
    jobs.push_back(e);
  }
  if (jobs.empty()) {
    return;
  }

  // Cache: rank datasets by their marginal value for the objective —
  // remote-IO saving per byte (Alg. 2) for max-throughput, the same divided
  // by the sharing jobs' remaining time for total JCT (a byte that speeds a
  // nearly-done job buys more completion per second).
  std::map<DatasetId, double> weight;
  for (const Entry& e : jobs) {
    const Dataset& d = snapshot.catalog->Get(e.view->spec->dataset);
    double w = CacheEfficiency(e.view->spec->ideal_io, e.speed, d.size);
    if (objective_ == GavelObjective::kMinTotalJct) {
      w /= e.remaining_time;
    }
    weight[d.id] += w;
  }
  std::vector<std::pair<DatasetId, double>> order(weight.begin(), weight.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  Bytes remaining = snapshot.resources.total_cache;
  for (const auto& [dataset_id, w] : order) {
    if (remaining <= 0) {
      break;
    }
    const Bytes grant = std::min(snapshot.catalog->Get(dataset_id).size, remaining);
    plan.dataset_cache[dataset_id] = grant;
    remaining -= grant;
  }

  if (!manage_remote_io_) {
    return;
  }
  // Remote IO: grant instantaneous demands in objective order — best IO-to-
  // throughput conversion first (max-throughput), shortest remaining first
  // (total JCT, SRPT) — each job up to min(demand, per-job cap).
  std::sort(jobs.begin(), jobs.end(), [&](const Entry& a, const Entry& b) {
    if (objective_ == GavelObjective::kMinTotalJct) {
      return a.remaining_time < b.remaining_time;
    }
    const Dataset& da = snapshot.catalog->Get(a.view->spec->dataset);
    const Dataset& db = snapshot.catalog->Get(b.view->spec->dataset);
    auto planned = [&](const Dataset& d) {
      auto it = plan.dataset_cache.find(d.id);
      const Bytes c = it == plan.dataset_cache.end() ? 0 : it->second;
      return UniformHitRatio(c, d.size);
    };
    return planned(da) > planned(db);
  });
  BytesPerSec pool = snapshot.resources.remote_io;
  for (const Entry& e : jobs) {
    const Dataset& d = snapshot.catalog->Get(e.view->spec->dataset);
    const BytesPerSec demand =
        std::min(RemoteIoDemand(e.view->spec->ideal_io, e.speed, e.view->effective_cache, d.size),
                 snapshot.resources.per_job_remote_cap);
    const BytesPerSec grant = std::min(demand, pool);
    plan.jobs[e.view->spec->id].remote_io = grant;
    pool -= grant;
  }
}

AllocationPlan GavelScheduler::Schedule(const Snapshot& snapshot) {
  // GPU admission: with gang-scheduled fixed GPU demands, max-min over GPU
  // time reduces to arrival order among waiting jobs (running jobs are not
  // preempted).
  std::vector<std::size_t> order(snapshot.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snapshot.jobs[a].spec->submit_time < snapshot.jobs[b].spec->submit_time;
  });

  AllocationPlan plan;
  AdmitByOrder(snapshot, order, &plan);

  if (!silod_aware_) {
    storage_->AllocateStorage(snapshot, &plan);
    return plan;
  }

  plan.cache_model = CacheModelKind::kDatasetQuota;
  plan.manages_remote_io = manage_remote_io_;
  switch (objective_) {
    case GavelObjective::kMaxMinFairness:
    case GavelObjective::kFinishTimeFairness:
      AllocateFairShare(snapshot, plan);
      break;
    case GavelObjective::kMinTotalJct:
    case GavelObjective::kMaxThroughput:
      AllocateGreedyObjective(snapshot, plan);
      break;
  }
  SpreadPlanAcrossZones(snapshot, &plan);
  return plan;
}

}  // namespace silod
