#include "src/sched/fifo.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace silod {

FifoScheduler::FifoScheduler(std::shared_ptr<StoragePolicy> storage)
    : storage_(std::move(storage)) {
  SILOD_CHECK(storage_ != nullptr) << "storage policy required";
}

std::string FifoScheduler::name() const { return "fifo+" + storage_->name(); }

AllocationPlan FifoScheduler::Schedule(const Snapshot& snapshot) {
  std::vector<std::size_t> order(snapshot.jobs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snapshot.jobs[a].spec->submit_time < snapshot.jobs[b].spec->submit_time;
  });

  AllocationPlan plan;
  AdmitByOrder(snapshot, order, &plan);
  storage_->AllocateStorage(snapshot, &plan);
  return plan;
}

}  // namespace silod
