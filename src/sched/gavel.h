// Gavel's max-min fairness policy (§5.2, Eq. 8/9).
//
// Gavel maximizes the minimum, over jobs, of perf(j, R[j]) / perf(j, R_equal)
// subject to Sum(R) <= totalResource.  The SiloD variant replaces perf with
// SiloDPerf and adds cache and remote IO as resource dimensions (Eq. 9).
//
// Exploiting the structure of SiloDPerf, the program is solved exactly:
//   - bisection on the fairness ratio rho;
//   - the feasibility oracle for a set of target throughputs T_j is a
//     fractional knapsack: a byte of cache on dataset D saves
//     sum_{j on D} T_j / d bytes/s of remote IO, so cache goes to datasets in
//     descending saving rate, and the targets are feasible iff the residual
//     remote-IO demands fit the egress limit;
//   - leftover remote IO after the optimum is distributed max-min over the
//     jobs' remaining headroom (progressive filling), preserving fairness.
//
// The vanilla variant (compute-only estimator) sees every job at ratio 1
// regardless of allocation — the over-estimation the paper criticizes — so
// GPU admission degenerates to arrival order and storage falls to the
// attached baseline policy.
#ifndef SILOD_SRC_SCHED_GAVEL_H_
#define SILOD_SRC_SCHED_GAVEL_H_

#include <map>
#include <memory>
#include <vector>

#include "src/sched/policy.h"

namespace silod {

// Gavel generalizes a family of objectives behind one interface (§5.2 notes
// the SiloD extension "can support all other objectives supported by Gavel");
// we implement the four the Gavel paper headlines:
enum class GavelObjective {
  // Eq. 8/9: maximize min_j perf(j, R_j) / perf(j, R_equal).
  kMaxMinFairness,
  // Themis-style finish-time fairness: maximize min_j perf(j, R_j) / f*_j —
  // the job whose progress lags its exclusive-cluster rate the most.
  kFinishTimeFairness,
  // Minimize total JCT: SRPT-flavoured — storage flows to the jobs with the
  // least remaining work per unit of throughput.
  kMinTotalJct,
  // Maximize aggregate training throughput: remote IO goes to the jobs that
  // convert it best (highest 1 / (1 - c/d)).
  kMaxThroughput,
};

const char* GavelObjectiveName(GavelObjective objective);

// Throughput job j would get under the equal division of storage resources
// among `num_sharers` running jobs (the denominator of Eq. 8).
BytesPerSec EqualShareThroughput(const JobSpec& job, const Snapshot& snapshot, int num_sharers);

// The job-independent part of that denominator: per-sharer cache and remote-IO
// shares.  Hoisting it out of a loop over N running jobs (metrics recording,
// fairness bases) turns N snapshot walks into N O(1) evaluations; results are
// bit-identical to the Snapshot overload above.
struct EqualShareParams {
  Bytes cache_eq = 0;
  BytesPerSec io_eq = 0;
};
EqualShareParams MakeEqualShareParams(const ClusterResources& resources, int num_sharers);
BytesPerSec EqualShareThroughput(const JobSpec& job, const DatasetCatalog& catalog,
                                 const EqualShareParams& params);
// Same, for a job held on a GPU type with relative speed `speed` (its f*
// becomes f*·speed; exact no-op at 1.0).
BytesPerSec EqualShareThroughput(const JobSpec& job, double speed, const DatasetCatalog& catalog,
                                 const EqualShareParams& params);

struct GavelSolution {
  double fairness_ratio = 0;                  // The achieved min ratio rho*.
  std::map<DatasetId, Bytes> dataset_cache;   // Cache per dataset.
  std::map<JobId, BytesPerSec> remote_io;     // Throttle per running job.
  std::map<JobId, BytesPerSec> target;        // Planned steady throughput.
};

// Solves Eq. 9 for the jobs marked running in `plan`.
GavelSolution SolveMaxMinFairness(const Snapshot& snapshot, const AllocationPlan& plan);

class GavelScheduler : public Scheduler {
 public:
  // `silod_aware` selects SiloDPerf (Eq. 9) vs the compute-only estimator
  // (Eq. 8); in the latter case `storage` supplies the independent cache
  // system.  `manage_remote_io=false` is the §7.2 ablation.
  GavelScheduler(std::shared_ptr<StoragePolicy> storage, bool silod_aware,
                 bool manage_remote_io = true,
                 GavelObjective objective = GavelObjective::kMaxMinFairness);

  AllocationPlan Schedule(const Snapshot& snapshot) override;
  std::string name() const override;

 private:
  void AllocateFairShare(const Snapshot& snapshot, AllocationPlan& plan);
  void AllocateGreedyObjective(const Snapshot& snapshot, AllocationPlan& plan);

  std::shared_ptr<StoragePolicy> storage_;
  bool silod_aware_;
  bool manage_remote_io_;
  GavelObjective objective_;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_GAVEL_H_
