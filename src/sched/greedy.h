// Algorithm 2: the greedy cache-allocation policy (§5.3).
//
// For schedulers that are not performance-aware (FIFO), SiloD cannot change
// the scheduling order, but it can still exploit heterogeneous cache
// efficiency: datasets are cached whole-or-partially in descending order of
// cache efficiency (Eq. 5, summed over the jobs sharing the dataset, §6)
// until the pool is exhausted.  Unlike Quiver, partial caching is allowed —
// Eq. 4 shows a job benefits from any cached fraction.
//
// The companion remote-IO step throttles jobs to a max-min share of the
// egress limit over their residual demands b_j = f*_j (1 - c/d_j).
#ifndef SILOD_SRC_SCHED_GREEDY_H_
#define SILOD_SRC_SCHED_GREEDY_H_

#include <map>
#include <vector>

#include "src/sched/policy.h"

namespace silod {

// Algorithm 2.  Only jobs marked running in `plan` contribute demand.
// Returns per-dataset cache sizes summing to <= resources.total_cache.
std::map<DatasetId, Bytes> GreedyCacheAllocation(const Snapshot& snapshot,
                                                 const AllocationPlan& plan);

// Computes every running job's instantaneous remote-IO demand (using its
// effective cache, §6) and writes max-min shares of the egress limit into
// `plan->jobs[...].remote_io` directly — the demands are evaluated as one
// EstimatorBatch pass instead of per-job estimator calls.
void AllocateRemoteIo(const Snapshot& snapshot, AllocationPlan* plan);

// The composed SiloD storage policy for order-based schedulers.
class SiloDGreedyStorage : public StoragePolicy {
 public:
  // `manage_remote_io=false` reproduces the §7.2 ablation (cache-only SiloD,
  // provider fair-share remote IO).
  explicit SiloDGreedyStorage(bool manage_remote_io = true);

  void AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) override;
  CacheModelKind cache_model() const override { return CacheModelKind::kDatasetQuota; }
  bool manages_remote_io() const override { return manage_remote_io_; }
  std::string name() const override;

 private:
  bool manage_remote_io_;
};

}  // namespace silod

#endif  // SILOD_SRC_SCHED_GREEDY_H_
