#include "src/sched/greedy.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/estimator/ioperf.h"
#include "src/sched/zone_spread.h"
#include "src/storage/remote_store.h"

namespace silod {

std::map<DatasetId, Bytes> GreedyCacheAllocation(const Snapshot& snapshot,
                                                 const AllocationPlan& plan) {
  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required";
  // Dataset-level cache efficiency: sum of f*/d over running jobs sharing the
  // dataset (§6, "the cache efficiency is defined at dataset-level").
  std::map<DatasetId, double> efficiency;
  for (const JobView& view : snapshot.jobs) {
    if (!plan.IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
    efficiency[dataset.id] += CacheEfficiency(view.spec->ideal_io, dataset.size);
  }

  std::vector<std::pair<DatasetId, double>> order(efficiency.begin(), efficiency.end());
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;  // Deterministic tie-break.
  });

  std::map<DatasetId, Bytes> alloc;
  Bytes remaining = snapshot.resources.total_cache;
  for (const auto& [dataset_id, eff] : order) {
    if (remaining <= 0) {
      break;
    }
    const Bytes want = snapshot.catalog->Get(dataset_id).size;
    const Bytes grant = std::min(want, remaining);
    alloc[dataset_id] = grant;
    remaining -= grant;
  }
  return alloc;
}

std::map<JobId, BytesPerSec> AllocateRemoteIo(const Snapshot& snapshot,
                                              const AllocationPlan& plan) {
  std::vector<JobId> ids;
  std::vector<BytesPerSec> demands;
  std::vector<BytesPerSec> headroom;
  for (const JobView& view : snapshot.jobs) {
    if (!plan.IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
    // Instantaneous demand: the cache allocation only saves IO once filled
    // and effective (§6), so throttles track the *effective* cache; as the
    // quota fills across epochs, rescheduling shrinks the throttle toward the
    // steady-state b = f* (1 - c/d).
    ids.push_back(view.spec->id);
    demands.push_back(RemoteIoDemand(view.spec->ideal_io, view.effective_cache, dataset.size));
    // Zone-aware runs also compute the demand at the post-crash surviving
    // share: the extra covers the job between a worst-case single-zone loss
    // and the next control-loop tick.  Identity when there is no topology.
    headroom.push_back(RemoteIoDemand(view.spec->ideal_io,
                                      SurvivingCacheShare(snapshot, view.effective_cache),
                                      dataset.size));
  }
  const std::vector<BytesPerSec> caps(demands.size(), snapshot.resources.per_job_remote_cap);
  std::vector<BytesPerSec> rates = MaxMinShare(demands, caps, snapshot.resources.remote_io);
  if (snapshot.topology != nullptr && !snapshot.topology->empty()) {
    // Grant the post-crash headroom from slack only: the first round already
    // satisfied every job's exact effective-cache demand (the same water-fill
    // a zone-oblivious run gets), so topping up toward the surviving-share
    // demand can never starve a cache-poor job of genuinely needed egress.
    BytesPerSec used = 0;
    for (const BytesPerSec rate : rates) {
      used += rate;
    }
    const BytesPerSec leftover = snapshot.resources.remote_io - used;
    if (leftover > 0) {
      std::vector<BytesPerSec> extra_demand(ids.size());
      std::vector<BytesPerSec> extra_cap(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        extra_demand[i] = std::max(0.0, headroom[i] - rates[i]);
        extra_cap[i] = std::max(0.0, caps[i] - rates[i]);
      }
      const std::vector<BytesPerSec> extra = MaxMinShare(extra_demand, extra_cap, leftover);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        rates[i] += extra[i];
      }
    }
  }
  std::map<JobId, BytesPerSec> out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out[ids[i]] = rates[i];
  }
  return out;
}

SiloDGreedyStorage::SiloDGreedyStorage(bool manage_remote_io)
    : manage_remote_io_(manage_remote_io) {}

std::string SiloDGreedyStorage::name() const {
  return manage_remote_io_ ? "silod-greedy" : "silod-greedy-cache-only";
}

void SiloDGreedyStorage::AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  plan->cache_model = CacheModelKind::kDatasetQuota;
  plan->dataset_cache = GreedyCacheAllocation(snapshot, *plan);
  SpreadPlanAcrossZones(snapshot, plan);
  plan->manages_remote_io = manage_remote_io_;
  if (manage_remote_io_) {
    const auto io = AllocateRemoteIo(snapshot, *plan);
    for (const auto& [job, rate] : io) {
      plan->jobs[job].remote_io = rate;
    }
  }
}

}  // namespace silod
