#include "src/sched/greedy.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/estimator/ioperf.h"
#include "src/sched/zone_spread.h"
#include "src/storage/remote_store.h"

namespace silod {

std::map<DatasetId, Bytes> GreedyCacheAllocation(const Snapshot& snapshot,
                                                 const AllocationPlan& plan) {
  SILOD_CHECK(snapshot.catalog != nullptr) << "catalog required";
  // Dataset-level cache efficiency: sum of f*/d over running jobs sharing the
  // dataset (§6, "the cache efficiency is defined at dataset-level").
  // Accumulated densely by DatasetId (ids are dense catalog indices); the
  // sentinel marks untouched datasets so only shared ones reach the sort.
  std::vector<double> efficiency(snapshot.catalog->all().size(), -1.0);
  std::vector<DatasetId> touched;
  for (const JobView& view : snapshot.jobs) {
    if (!plan.IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
    double& slot = efficiency[dataset.id];
    if (slot < 0) {
      slot = 0;
      touched.push_back(dataset.id);
    }
    // Storage allocation runs after admission, so the plan's assigned GPU
    // type is the authoritative speed (Eq. 5 at the effective ideal f*·s);
    // 1.0 — an exact no-op — on uniform fleets.
    slot += CacheEfficiency(view.spec->ideal_io, plan.Get(view.spec->id).speed, dataset.size);
  }

  std::vector<std::pair<DatasetId, double>> order;
  order.reserve(touched.size());
  for (const DatasetId id : touched) {
    order.emplace_back(id, efficiency[id]);
  }
  // The comparator totally orders entries (efficiency desc, id asc), so the
  // result is independent of the pre-sort order — identical to the old
  // id-sorted map input.
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;  // Deterministic tie-break.
  });

  std::map<DatasetId, Bytes> alloc;
  Bytes remaining = snapshot.resources.total_cache;
  for (const auto& [dataset_id, eff] : order) {
    if (remaining <= 0) {
      break;
    }
    const Bytes want = snapshot.catalog->Get(dataset_id).size;
    const Bytes grant = std::min(want, remaining);
    alloc[dataset_id] = grant;
    remaining -= grant;
  }
  return alloc;
}

void AllocateRemoteIo(const Snapshot& snapshot, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  std::vector<JobId> ids;
  EstimatorBatch effective;   // Operating points at today's effective cache.
  EstimatorBatch surviving;   // The same after a worst-case single-zone loss.
  for (const JobView& view : snapshot.jobs) {
    if (!plan->IsRunning(view.spec->id)) {
      continue;
    }
    const Dataset& dataset = snapshot.catalog->Get(view.spec->dataset);
    // Instantaneous demand: the cache allocation only saves IO once filled
    // and effective (§6), so throttles track the *effective* cache; as the
    // quota fills across epochs, rescheduling shrinks the throttle toward the
    // steady-state b = f* (1 - c/d).
    ids.push_back(view.spec->id);
    const double speed = plan->Get(view.spec->id).speed;
    effective.Add(view.spec->ideal_io, speed, view.effective_cache, dataset.size);
    // Zone-aware runs also compute the demand at the post-crash surviving
    // share: the extra covers the job between a worst-case single-zone loss
    // and the next control-loop tick.  Identity when there is no topology.
    surviving.Add(view.spec->ideal_io, speed,
                  SurvivingCacheShare(snapshot, view.effective_cache), dataset.size);
  }
  std::vector<BytesPerSec> demands;
  effective.RemoteIoDemands(&demands);
  std::vector<BytesPerSec> headroom;
  surviving.RemoteIoDemands(&headroom);
  const std::vector<BytesPerSec> caps(demands.size(), snapshot.resources.per_job_remote_cap);
  std::vector<BytesPerSec> rates = MaxMinShare(demands, caps, snapshot.resources.remote_io);
  if (snapshot.topology != nullptr && !snapshot.topology->empty()) {
    // Grant the post-crash headroom from slack only: the first round already
    // satisfied every job's exact effective-cache demand (the same water-fill
    // a zone-oblivious run gets), so topping up toward the surviving-share
    // demand can never starve a cache-poor job of genuinely needed egress.
    BytesPerSec used = 0;
    for (const BytesPerSec rate : rates) {
      used += rate;
    }
    const BytesPerSec leftover = snapshot.resources.remote_io - used;
    if (leftover > 0) {
      std::vector<BytesPerSec> extra_demand(ids.size());
      std::vector<BytesPerSec> extra_cap(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        extra_demand[i] = std::max(0.0, headroom[i] - rates[i]);
        extra_cap[i] = std::max(0.0, caps[i] - rates[i]);
      }
      const std::vector<BytesPerSec> extra = MaxMinShare(extra_demand, extra_cap, leftover);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        rates[i] += extra[i];
      }
    }
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    plan->jobs[ids[i]].remote_io = rates[i];
  }
}

SiloDGreedyStorage::SiloDGreedyStorage(bool manage_remote_io)
    : manage_remote_io_(manage_remote_io) {}

std::string SiloDGreedyStorage::name() const {
  return manage_remote_io_ ? "silod-greedy" : "silod-greedy-cache-only";
}

void SiloDGreedyStorage::AllocateStorage(const Snapshot& snapshot, AllocationPlan* plan) {
  SILOD_CHECK(plan != nullptr) << "plan required";
  plan->cache_model = CacheModelKind::kDatasetQuota;
  plan->dataset_cache = GreedyCacheAllocation(snapshot, *plan);
  SpreadPlanAcrossZones(snapshot, plan);
  plan->manages_remote_io = manage_remote_io_;
  if (manage_remote_io_) {
    AllocateRemoteIo(snapshot, plan);
  }
}

}  // namespace silod
