#include "src/sched/allocation.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace silod {

const char* CacheModelKindName(CacheModelKind kind) {
  switch (kind) {
    case CacheModelKind::kDatasetQuota:
      return "dataset-quota";
    case CacheModelKind::kSharedLru:
      return "shared-lru";
    case CacheModelKind::kSharedLfu:
      return "shared-lfu";
    case CacheModelKind::kPerJobStatic:
      return "per-job-static";
  }
  return "unknown";
}

int AllocationPlan::GpusUsed() const {
  int total = 0;
  for (const auto& [id, alloc] : jobs) {
    if (alloc.running) {
      total += alloc.gpus;
    }
  }
  return total;
}

Bytes AllocationPlan::DatasetCacheTotal() const {
  Bytes total = 0;
  for (const auto& [id, bytes] : dataset_cache) {
    total += bytes;
  }
  return total;
}

const JobAllocation& AllocationPlan::Get(JobId job) const {
  static const JobAllocation kEmpty;
  auto it = jobs.find(job);
  return it == jobs.end() ? kEmpty : it->second;
}

bool AllocationPlan::IsRunning(JobId job) const { return Get(job).running; }

Status AllocationPlan::Validate(const ClusterResources& resources) const {
  if (GpusUsed() > resources.total_gpus) {
    return Status::ResourceExhausted("GPU over-commit: " + std::to_string(GpusUsed()) + " > " +
                                     std::to_string(resources.total_gpus));
  }
  Bytes cache = DatasetCacheTotal();
  for (const auto& [id, alloc] : jobs) {
    if (!alloc.running &&
        (alloc.gpus > 0 || alloc.private_cache > 0 ||
         (manages_remote_io && !std::isinf(alloc.remote_io) && alloc.remote_io > 0))) {
      return Status::FailedPrecondition("resources allocated to non-running job " +
                                        std::to_string(id));
    }
    cache += alloc.private_cache;
  }
  // Tolerate rounding: allocators derive byte quotas from floating-point
  // shares, so handing out exactly total_cache can overshoot by a few ulps'
  // worth of bytes.  Same epsilon as the remote-IO check below.
  if (static_cast<double>(cache) >
      static_cast<double>(resources.total_cache) * (1.0 + 1e-9) + 1.0) {
    return Status::ResourceExhausted("cache over-commit");
  }
  for (const auto& [id, zone_shares] : dataset_zone_cache) {
    const auto it = dataset_cache.find(id);
    const Bytes quota = it == dataset_cache.end() ? 0 : it->second;
    Bytes spread = 0;
    for (const Bytes share : zone_shares) {
      if (share < 0) {
        return Status::FailedPrecondition("negative zone share for dataset " + std::to_string(id));
      }
      spread += share;
    }
    if (spread != quota) {
      return Status::FailedPrecondition(
          "zone shares for dataset " + std::to_string(id) + " sum to " + std::to_string(spread) +
          " but its quota is " + std::to_string(quota));
    }
  }
  if (manages_remote_io) {
    BytesPerSec io = 0;
    for (const auto& [id, alloc] : jobs) {
      if (alloc.running && !std::isinf(alloc.remote_io)) {
        io += alloc.remote_io;
      }
    }
    // Tolerate rounding from the solvers.
    if (io > resources.remote_io * (1.0 + 1e-9) + 1.0) {
      return Status::ResourceExhausted("remote IO over-commit");
    }
  }
  return Status::Ok();
}

namespace {

// Doubles compare and hash by bit pattern: bit-identity must distinguish
// what arithmetic distinguishes (NaN payloads aside, which the solvers never
// produce), and must not be confused by -0.0 == 0.0.
std::uint64_t DoubleBits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

bool SameAllocation(const JobAllocation& a, const JobAllocation& b) {
  return a.running == b.running && a.gpus == b.gpus && a.private_cache == b.private_cache &&
         DoubleBits(a.remote_io) == DoubleBits(b.remote_io) && a.gpu_type == b.gpu_type &&
         DoubleBits(a.speed) == DoubleBits(b.speed);
}

class Fnv1a {
 public:
  void Mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

bool PlansBitIdentical(const AllocationPlan& a, const AllocationPlan& b) {
  if (a.cache_model != b.cache_model || a.manages_remote_io != b.manages_remote_io) {
    return false;
  }
  if (a.jobs.size() != b.jobs.size() || a.dataset_cache.size() != b.dataset_cache.size() ||
      a.dataset_zone_cache.size() != b.dataset_zone_cache.size()) {
    return false;
  }
  for (auto it_a = a.jobs.begin(), it_b = b.jobs.begin(); it_a != a.jobs.end(); ++it_a, ++it_b) {
    if (it_a->first != it_b->first || !SameAllocation(it_a->second, it_b->second)) {
      return false;
    }
  }
  if (a.dataset_cache != b.dataset_cache) {
    return false;
  }
  return a.dataset_zone_cache == b.dataset_zone_cache;
}

std::uint64_t PlanDigest(const AllocationPlan& plan) {
  Fnv1a fnv;
  fnv.Mix(static_cast<std::uint64_t>(plan.cache_model));
  fnv.Mix(plan.manages_remote_io ? 1 : 0);
  fnv.Mix(plan.jobs.size());
  for (const auto& [id, alloc] : plan.jobs) {
    fnv.Mix(static_cast<std::uint64_t>(id));
    fnv.Mix(alloc.running ? 1 : 0);
    fnv.Mix(static_cast<std::uint64_t>(alloc.gpus));
    fnv.Mix(static_cast<std::uint64_t>(alloc.private_cache));
    fnv.Mix(DoubleBits(alloc.remote_io));
    // Mixed only for typed placements: an untyped plan's digest must equal
    // the digest the pre-heterogeneity code produced for the same plan.
    if (alloc.gpu_type >= 0) {
      fnv.Mix(static_cast<std::uint64_t>(alloc.gpu_type));
      fnv.Mix(DoubleBits(alloc.speed));
    }
  }
  fnv.Mix(plan.dataset_cache.size());
  for (const auto& [id, bytes] : plan.dataset_cache) {
    fnv.Mix(static_cast<std::uint64_t>(id));
    fnv.Mix(static_cast<std::uint64_t>(bytes));
  }
  fnv.Mix(plan.dataset_zone_cache.size());
  for (const auto& [id, shares] : plan.dataset_zone_cache) {
    fnv.Mix(static_cast<std::uint64_t>(id));
    fnv.Mix(shares.size());
    for (const Bytes share : shares) {
      fnv.Mix(static_cast<std::uint64_t>(share));
    }
  }
  return fnv.hash();
}

}  // namespace silod
