#include "src/sched/allocation.h"

#include <cmath>

#include "src/common/logging.h"

namespace silod {

const char* CacheModelKindName(CacheModelKind kind) {
  switch (kind) {
    case CacheModelKind::kDatasetQuota:
      return "dataset-quota";
    case CacheModelKind::kSharedLru:
      return "shared-lru";
    case CacheModelKind::kSharedLfu:
      return "shared-lfu";
    case CacheModelKind::kPerJobStatic:
      return "per-job-static";
  }
  return "unknown";
}

int AllocationPlan::GpusUsed() const {
  int total = 0;
  for (const auto& [id, alloc] : jobs) {
    if (alloc.running) {
      total += alloc.gpus;
    }
  }
  return total;
}

Bytes AllocationPlan::DatasetCacheTotal() const {
  Bytes total = 0;
  for (const auto& [id, bytes] : dataset_cache) {
    total += bytes;
  }
  return total;
}

const JobAllocation& AllocationPlan::Get(JobId job) const {
  static const JobAllocation kEmpty;
  auto it = jobs.find(job);
  return it == jobs.end() ? kEmpty : it->second;
}

bool AllocationPlan::IsRunning(JobId job) const { return Get(job).running; }

Status AllocationPlan::Validate(const ClusterResources& resources) const {
  if (GpusUsed() > resources.total_gpus) {
    return Status::ResourceExhausted("GPU over-commit: " + std::to_string(GpusUsed()) + " > " +
                                     std::to_string(resources.total_gpus));
  }
  Bytes cache = DatasetCacheTotal();
  for (const auto& [id, alloc] : jobs) {
    if (!alloc.running &&
        (alloc.gpus > 0 || alloc.private_cache > 0 ||
         (manages_remote_io && !std::isinf(alloc.remote_io) && alloc.remote_io > 0))) {
      return Status::FailedPrecondition("resources allocated to non-running job " +
                                        std::to_string(id));
    }
    cache += alloc.private_cache;
  }
  // Tolerate rounding: allocators derive byte quotas from floating-point
  // shares, so handing out exactly total_cache can overshoot by a few ulps'
  // worth of bytes.  Same epsilon as the remote-IO check below.
  if (static_cast<double>(cache) >
      static_cast<double>(resources.total_cache) * (1.0 + 1e-9) + 1.0) {
    return Status::ResourceExhausted("cache over-commit");
  }
  for (const auto& [id, zone_shares] : dataset_zone_cache) {
    const auto it = dataset_cache.find(id);
    const Bytes quota = it == dataset_cache.end() ? 0 : it->second;
    Bytes spread = 0;
    for (const Bytes share : zone_shares) {
      if (share < 0) {
        return Status::FailedPrecondition("negative zone share for dataset " + std::to_string(id));
      }
      spread += share;
    }
    if (spread != quota) {
      return Status::FailedPrecondition(
          "zone shares for dataset " + std::to_string(id) + " sum to " + std::to_string(spread) +
          " but its quota is " + std::to_string(quota));
    }
  }
  if (manages_remote_io) {
    BytesPerSec io = 0;
    for (const auto& [id, alloc] : jobs) {
      if (alloc.running && !std::isinf(alloc.remote_io)) {
        io += alloc.remote_io;
      }
    }
    // Tolerate rounding from the solvers.
    if (io > resources.remote_io * (1.0 + 1e-9) + 1.0) {
      return Status::ResourceExhausted("remote IO over-commit");
    }
  }
  return Status::Ok();
}

}  // namespace silod
