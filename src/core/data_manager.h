// SiloD Data Manager (§6, Fig. 7): the storage-layer component that exposes
// the Table 3 allocation APIs to the scheduler and enforces them —
// per-dataset uniform-cache quotas through CacheManager, per-job remote-IO
// throttles through RemoteStore.  The simulation engines drive the same
// machinery internally; this facade is the public, programmable surface the
// examples use, and the unit under test for the allocation-API contract.
#ifndef SILOD_SRC_CORE_DATA_MANAGER_H_
#define SILOD_SRC_CORE_DATA_MANAGER_H_

#include <cstdint>

#include "src/cache/cache_manager.h"
#include "src/sched/allocation.h"
#include "src/storage/remote_store.h"

namespace silod {

class DataManager {
 public:
  DataManager(Bytes cache_capacity, BytesPerSec egress_limit, std::uint64_t seed = 7);

  // --- Table 3 allocation APIs --------------------------------------------
  // void allocateCacheSize(dataset_uri, cache_size)
  Status AllocateCacheSize(const Dataset& dataset, Bytes cache_size);
  // void allocateRemoteIO(job_id, io_speed)
  Status AllocateRemoteIo(JobId job, BytesPerSec io_speed);

  // Applies a whole scheduler plan (quota-model plans only; shared-LRU and
  // per-job models are enforced elsewhere).
  Status ApplyPlan(const AllocationPlan& plan, const DatasetCatalog& catalog);

  // --- Read path (virtual time) --------------------------------------------
  struct ReadResult {
    bool hit = false;
    // Time the read occupies the remote link (0 for hits); the caller owns
    // overlapping this with compute.
    Seconds remote_seconds = 0;
  };
  // One block read by `job`; enforces uniform caching and the job's throttle.
  ReadResult ReadBlock(JobId job, const Dataset& dataset, std::int64_t block);

  CacheManager& cache() { return cache_; }
  const CacheManager& cache() const { return cache_; }
  RemoteStore& remote() { return remote_; }
  const RemoteStore& remote() const { return remote_; }

 private:
  CacheManager cache_;
  RemoteStore remote_;
};

}  // namespace silod

#endif  // SILOD_SRC_CORE_DATA_MANAGER_H_
