// SiloD Data Manager (§6, Fig. 7): the storage-layer component that exposes
// the Table 3 allocation APIs to the scheduler and enforces them —
// per-dataset uniform-cache quotas through CacheManager, per-job remote-IO
// throttles through RemoteStore.  The simulation engines drive the same
// machinery internally; this facade is the public, programmable surface the
// examples use, and the unit under test for the allocation-API contract.
//
// Sharding: the cache side may be split into per-server shards (consistent
// block placement, equal capacity and quota shares), so that a cache-server
// crash is actionable: CrashShard drops that server's resident blocks and
// stops admissions there, RecoverShard rejoins it empty and it refills
// through the normal miss path.  With the default num_shards = 1 the facade
// behaves exactly as the historical single-cache manager, and cache() stays
// available for direct access.
#ifndef SILOD_SRC_CORE_DATA_MANAGER_H_
#define SILOD_SRC_CORE_DATA_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/cache/cache_manager.h"
#include "src/sched/allocation.h"
#include "src/storage/placement.h"
#include "src/storage/remote_store.h"

namespace silod {

class DataManager {
 public:
  DataManager(Bytes cache_capacity, BytesPerSec egress_limit, std::uint64_t seed = 7,
              int num_shards = 1);

  // --- Failure domains ------------------------------------------------------
  // Declares the shards' failure domains (common/topology.h); must cover
  // [0, num_shards).  Afterwards plans carrying dataset_zone_cache spreads
  // route blocks zone-proportionally (ZonePlacement) and size each shard's
  // quota from its zone's share.  Without a topology (or for datasets with no
  // spread) placement and quotas stay exactly as before.
  Status SetTopology(const ClusterTopology& topology);
  const ClusterTopology& topology() const { return topology_; }

  // --- Change listener (core/dirty_tracker.h) -------------------------------
  // Invoked after an operation changes what a planner may assume about a
  // dataset's cache: a quota moved (AllocateCacheSize*/ApplyPlan) or a shard
  // crash/recovery dropped or re-enabled residency.  kInvalidDataset means
  // "every dataset" (cache-wide events like a shard crash, where enumerating
  // the affected datasets would cost more than a conservative full mark).
  // The silodd planner points this at a DirtyTracker so cache churn marks
  // datasets dirty without polling; null (the default) disables the hook.
  using ChangeListener = std::function<void(DatasetId)>;
  void SetChangeListener(ChangeListener listener) { listener_ = std::move(listener); }

  // --- Table 3 allocation APIs --------------------------------------------
  // void allocateCacheSize(dataset_uri, cache_size)
  Status AllocateCacheSize(const Dataset& dataset, Bytes cache_size);
  // Zone-aware variant: `zone_shares` is indexed like topology().zones() and
  // sums to the dataset's quota; each shard gets its zone's share split
  // equally among the zone's members, and reads route zone-proportionally.
  Status AllocateCacheSizeZoned(const Dataset& dataset, const std::vector<Bytes>& zone_shares);
  // void allocateRemoteIO(job_id, io_speed)
  Status AllocateRemoteIo(JobId job, BytesPerSec io_speed);

  // Applies a whole scheduler plan (quota-model plans only; shared-LRU and
  // per-job models are enforced elsewhere).
  Status ApplyPlan(const AllocationPlan& plan, const DatasetCatalog& catalog);

  // --- Read path (virtual time) --------------------------------------------
  struct ReadResult {
    bool hit = false;
    // Time the read occupies the remote link (0 for hits); the caller owns
    // overlapping this with compute.
    Seconds remote_seconds = 0;
  };
  // One block read by `job`; enforces uniform caching and the job's throttle.
  ReadResult ReadBlock(JobId job, const Dataset& dataset, std::int64_t block);

  // --- Routed cache APIs (shard-aware) -------------------------------------
  // Records a read of `block` on its shard; true on hit.  A dead shard
  // always misses and admits nothing, so its contents refill only after
  // recovery.
  bool AccessBlock(const Dataset& dataset, std::int64_t block);
  bool IsCached(const Dataset& dataset, std::int64_t block) const;
  Bytes CachedBytes(DatasetId dataset) const;
  Bytes Allocation(DatasetId dataset) const;
  // Resident blocks across all shards (sorted), for snapshotting.
  std::vector<std::int64_t> CachedBlocks(DatasetId dataset) const;
  // Re-admits surviving blocks on their shards; blocks routed to a dead
  // shard are dropped (that server's disk is gone with it).
  Status RestoreCachedBlocks(const Dataset& dataset, const std::vector<std::int64_t>& blocks);

  // --- Shard fault path (§6) ------------------------------------------------
  // Drops the shard's resident blocks and stops admissions there until
  // recovery; quota shares stay allocated (pod annotations are durable).
  // Returns the number of blocks lost.  No-op (0) if already dead.
  std::int64_t CrashShard(int shard);
  // The shard rejoins empty and refills through the normal miss path.
  void RecoverShard(int shard);
  bool shard_alive(int shard) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Direct access to the single cache; only valid for num_shards == 1
  // (checked), where it preserves the historical facade.
  CacheManager& cache();
  const CacheManager& cache() const;

  // --- Crash forensics (fault/minidump.h) -----------------------------------
  // Raw access to one shard's cache, bypassing liveness routing.  Minidumps
  // capture per-shard residency/quota/RNG state and replay restores it the
  // same way; normal callers must use the routed APIs above.
  CacheManager& shard_cache(int shard);
  const CacheManager& shard_cache(int shard) const;
  // The dataset's active zone spread (indexed like topology().zones()), or
  // nullptr when it routes on the global ring.
  const std::vector<Bytes>* zone_shares_of(DatasetId dataset) const {
    return ZoneSharesFor(dataset);
  }
  // Re-installs a captured zone spread so replayed reads route exactly like
  // the live run's.  Requires a topology; shares must be indexed like
  // topology().zones().
  void RestoreZoneShares(DatasetId dataset, const std::vector<Bytes>& shares);
  RemoteStore& remote() { return remote_; }
  const RemoteStore& remote() const { return remote_; }

 private:
  int ShardFor(DatasetId dataset, std::int64_t block) const;
  // Each shard's quota for a dataset: its zone's share split equally among
  // the zone's members when spread, else an equal split of the total quota.
  std::vector<Bytes> PerShardTargets(Bytes quota, const std::vector<Bytes>* zone_shares) const;
  // The dataset's active zone spread, or nullptr when it routes on the
  // global ring.  O(1): flat-vector lookup on the block read path.
  const std::vector<Bytes>* ZoneSharesFor(DatasetId dataset) const;
  void SetZoneShares(DatasetId dataset, const std::vector<Bytes>& shares);
  void ClearZoneShares(DatasetId dataset);

  std::vector<CacheManager> shards_;
  std::vector<bool> alive_;
  BlockPlacement placement_;
  ClusterTopology topology_;
  std::unique_ptr<ZonePlacement> zone_placement_;
  // Per-dataset zone spreads, indexed by dense DatasetId (arena-style, like
  // CacheManager's tables); an empty entry means no spread and routing falls
  // back to the global ring.
  std::vector<std::vector<Bytes>> zone_shares_;
  RemoteStore remote_;
  ChangeListener listener_;
};

}  // namespace silod

#endif  // SILOD_SRC_CORE_DATA_MANAGER_H_
