#include "src/core/partition.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

PartitionSplit SplitResources(const Snapshot& snapshot) {
  int regular_demand = 0;
  int irregular_demand = 0;
  for (const JobView& view : snapshot.jobs) {
    (view.spec->regular ? regular_demand : irregular_demand) += view.spec->num_gpus;
  }
  PartitionSplit split;
  if (irregular_demand == 0) {
    split.regular = snapshot.resources;
    split.regular_fraction = 1.0;
    return split;
  }
  const double total = static_cast<double>(regular_demand + irregular_demand);
  // Keep both partitions viable even under extreme demand skew.
  double frac = total > 0 ? static_cast<double>(regular_demand) / total : 0.5;
  frac = std::clamp(frac, 0.1, 0.9);
  split.regular_fraction = frac;

  split.regular = snapshot.resources;
  split.irregular = snapshot.resources;
  split.regular.total_gpus = static_cast<int>(std::lround(snapshot.resources.total_gpus * frac));
  split.irregular.total_gpus = snapshot.resources.total_gpus - split.regular.total_gpus;
  split.regular.total_cache = static_cast<Bytes>(snapshot.resources.total_cache * frac);
  split.irregular.total_cache = snapshot.resources.total_cache - split.regular.total_cache;
  split.regular.remote_io = snapshot.resources.remote_io * frac;
  split.irregular.remote_io = snapshot.resources.remote_io - split.regular.remote_io;
  return split;
}

PartitionedScheduler::PartitionedScheduler(std::shared_ptr<Scheduler> regular,
                                           std::shared_ptr<Scheduler> fallback)
    : regular_(std::move(regular)), fallback_(std::move(fallback)) {
  SILOD_CHECK(regular_ != nullptr && fallback_ != nullptr) << "both schedulers required";
}

std::string PartitionedScheduler::name() const {
  return "partitioned(" + regular_->name() + " | " + fallback_->name() + ")";
}

AllocationPlan PartitionedScheduler::Schedule(const Snapshot& snapshot) {
  Snapshot regular = snapshot;
  Snapshot irregular = snapshot;
  regular.jobs.clear();
  irregular.jobs.clear();
  for (const JobView& view : snapshot.jobs) {
    (view.spec->regular ? regular.jobs : irregular.jobs).push_back(view);
  }
  if (irregular.jobs.empty()) {
    return regular_->Schedule(snapshot);
  }
  if (regular.jobs.empty()) {
    return fallback_->Schedule(snapshot);
  }

  const PartitionSplit split = SplitResources(snapshot);
  regular.resources = split.regular;
  irregular.resources = split.irregular;

  AllocationPlan plan_r = regular_->Schedule(regular);
  const AllocationPlan plan_i = fallback_->Schedule(irregular);
  SILOD_CHECK(plan_r.cache_model == plan_i.cache_model)
      << "partitions must agree on the cache model (" << CacheModelKindName(plan_r.cache_model)
      << " vs " << CacheModelKindName(plan_i.cache_model) << ")";

  // Merge: job sets are disjoint; dataset allocations may overlap if a
  // dataset is read from both partitions — the larger quota wins.
  for (const auto& [job, alloc] : plan_i.jobs) {
    plan_r.jobs[job] = alloc;
  }
  for (const auto& [dataset, bytes] : plan_i.dataset_cache) {
    Bytes& slot = plan_r.dataset_cache[dataset];
    slot = std::max(slot, bytes);
  }
  plan_r.manages_remote_io = plan_r.manages_remote_io || plan_i.manages_remote_io;
  // The irregular partition shares its remote IO fairly inside the partition:
  // pin unthrottled irregular jobs to an equal slice so the merged plan still
  // isolates the partitions' egress budgets.
  int irregular_running = 0;
  for (const auto& [job, alloc] : plan_i.jobs) {
    if (alloc.running) {
      ++irregular_running;
    }
  }
  if (plan_r.manages_remote_io && irregular_running > 0) {
    const BytesPerSec slice = split.irregular.remote_io / irregular_running;
    for (const auto& [job, alloc] : plan_i.jobs) {
      if (alloc.running && std::isinf(alloc.remote_io)) {
        plan_r.jobs[job].remote_io = slice;
      }
    }
  }
  return plan_r;
}

}  // namespace silod
