#include "src/core/dirty_tracker.h"

namespace silod {

void DirtyTracker::MarkJob(JobId job) {
  jobs_.insert(job);
  ++events_;
  ++lifetime_marks_;
}

void DirtyTracker::MarkDataset(DatasetId dataset) {
  datasets_.insert(dataset);
  ++events_;
  ++lifetime_marks_;
}

void DirtyTracker::MarkAll(const std::string& reason) {
  all_dirty_ = true;
  // Keep the first reason: later marks before a plan are subsumed by it.
  if (all_dirty_reason_.empty()) {
    all_dirty_reason_ = reason;
  }
  ++events_;
  ++lifetime_marks_;
  ++lifetime_full_invalidations_;
}

void DirtyTracker::Clear() {
  jobs_.clear();
  datasets_.clear();
  all_dirty_ = false;
  all_dirty_reason_.clear();
  events_ = 0;
}

}  // namespace silod
