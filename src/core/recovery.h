// Crash recovery for the SiloD Data Manager (§6, "Fault tolerance").
//
// In the paper's deployment the allocation decisions live in Kubernetes pod
// annotations (durable), the cache *content* lives on each server's local
// disk (survives restarts), and the Data Manager's in-memory state is
// reconstructed from the two after a crash.  This module models exactly
// that: a DataManagerSnapshot captures the durable state, a text form makes
// it storable, and RestoreDataManager rebuilds a fresh DataManager from it.
//
// Text format, line oriented:
//   silod-snapshot-v1
//   cache <dataset_id> <quota_bytes>
//   io <job_id> <bytes_per_sec>
//   blocks <dataset_id> <block> <block> ...
#ifndef SILOD_SRC_CORE_RECOVERY_H_
#define SILOD_SRC_CORE_RECOVERY_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/data_manager.h"

namespace silod {

struct DataManagerSnapshot {
  // Pod annotations: the scheduler's durable allocation decisions.
  std::map<DatasetId, Bytes> cache_allocations;
  std::map<JobId, BytesPerSec> io_allocations;
  // Local disk contents: which blocks of each dataset survive the restart.
  std::map<DatasetId, std::vector<std::int64_t>> cached_blocks;

  bool operator==(const DataManagerSnapshot&) const = default;
};

// Captures the durable state of a live Data Manager.
DataManagerSnapshot CaptureSnapshot(const DataManager& manager, const DatasetCatalog& catalog);

// Rebuilds a (fresh) Data Manager from a snapshot: re-applies allocations,
// then re-admits the surviving disk contents under the restored quotas.
Status RestoreDataManager(const DataManagerSnapshot& snapshot, const DatasetCatalog& catalog,
                          DataManager* manager);

// Cache-only halves, for engines that own a bare CacheManager rather than a
// full Data Manager (the fine engine's Data-Manager-restart fault path).
// io_allocations is left empty / ignored.
DataManagerSnapshot CaptureCacheSnapshot(const CacheManager& cache, const DatasetCatalog& catalog);
Status RestoreCacheManager(const DataManagerSnapshot& snapshot, const DatasetCatalog& catalog,
                           CacheManager* cache);

// Durable serialization.  Parsing validates structure strictly — truncated
// records, duplicate records for one dataset/job, negative quotas or rates,
// and trailing garbage are all InvalidArgument.  When `catalog` is given,
// dataset ids and block ranges are checked against it too.
std::string SnapshotToText(const DataManagerSnapshot& snapshot);
Result<DataManagerSnapshot> SnapshotFromText(const std::string& text,
                                             const DatasetCatalog* catalog = nullptr);

}  // namespace silod

#endif  // SILOD_SRC_CORE_RECOVERY_H_
