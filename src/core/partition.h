// Regular / irregular job partitioning (§6, "Handling irregular data access").
//
// SiloD's estimator assumes (1) exactly-once-per-epoch uniform access and
// (2) a pipelined loader.  Jobs violating these (e.g. curriculum learning)
// are placed in a separate partition: cache and remote IO are split between
// the two partitions in proportion to GPU demand, the regular partition is
// scheduled with SiloDPerf, and the irregular partition falls back to the
// original scheduler and estimator with fair sharing inside.
#ifndef SILOD_SRC_CORE_PARTITION_H_
#define SILOD_SRC_CORE_PARTITION_H_

#include <memory>

#include "src/sched/policy.h"

namespace silod {

struct PartitionSplit {
  ClusterResources regular;
  ClusterResources irregular;
  // Fraction of storage resources given to the regular partition.
  double regular_fraction = 1.0;
};

// Splits storage resources proportionally to the GPU demand of regular vs
// irregular jobs currently in the system (each partition keeps the full GPU
// pool view it needs; GPUs themselves are partitioned by demand too).
PartitionSplit SplitResources(const Snapshot& snapshot);

class PartitionedScheduler : public Scheduler {
 public:
  // `regular` schedules the SiloD-assumption-satisfying jobs; `fallback`
  // schedules the rest within the second partition.
  PartitionedScheduler(std::shared_ptr<Scheduler> regular, std::shared_ptr<Scheduler> fallback);

  AllocationPlan Schedule(const Snapshot& snapshot) override;
  std::string name() const override;

 private:
  std::shared_ptr<Scheduler> regular_;
  std::shared_ptr<Scheduler> fallback_;
};

}  // namespace silod

#endif  // SILOD_SRC_CORE_PARTITION_H_
