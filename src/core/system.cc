#include "src/core/system.h"

#include "src/common/logging.h"
#include "src/core/policy_registry.h"

namespace silod {

std::string ExperimentConfig::Name() const {
  if (!policy.empty()) {
    return policy;
  }
  return std::string(SchedulerKindName(scheduler)) + "-" + CacheSystemName(cache);
}

SimResult RunExperiment(const Trace& trace, const ExperimentConfig& config) {
  std::shared_ptr<Scheduler> scheduler;
  if (!config.policy.empty()) {
    Result<std::shared_ptr<Scheduler>> made =
        MakeSchedulerByName(config.policy, config.scheduler_options);
    SILOD_CHECK(made.ok()) << made.status().ToString();
    scheduler = *made;
  } else {
    scheduler = MakeScheduler(config.scheduler, config.cache, config.scheduler_options);
  }
  return RunExperimentWith(trace, std::move(scheduler), config);
}

SimResult RunExperimentWith(const Trace& trace, std::shared_ptr<Scheduler> scheduler,
                            const ExperimentConfig& config) {
  SILOD_CHECK(scheduler != nullptr) << "scheduler required";
  switch (config.engine) {
    case EngineKind::kFlow: {
      FlowEngine engine(&trace, std::move(scheduler), config.sim);
      return engine.Run();
    }
    case EngineKind::kFine: {
      FineEngine engine(&trace, std::move(scheduler), config.sim, config.fine);
      return engine.Run();
    }
  }
  SILOD_CHECK(false) << "unreachable engine kind";
  return SimResult{};
}

}  // namespace silod
