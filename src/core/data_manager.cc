#include "src/core/data_manager.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

DataManager::DataManager(Bytes cache_capacity, BytesPerSec egress_limit, std::uint64_t seed,
                         int num_shards)
    : placement_(std::max(1, num_shards)), remote_(egress_limit) {
  const int shards = std::max(1, num_shards);
  // Equal shards with floored shares: a few bytes of pool may go unused, but
  // every shard's (capacity, quota) state stays symmetric, so quota
  // feasibility is identical across shards.
  const Bytes per_shard = cache_capacity / shards;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.emplace_back(per_shard, seed + static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL);
  }
  alive_.assign(static_cast<std::size_t>(shards), true);
}

int DataManager::ShardFor(DatasetId dataset, std::int64_t block) const {
  if (shards_.size() == 1) {
    return 0;
  }
  if (zone_placement_ != nullptr) {
    if (const std::vector<Bytes>* shares = ZoneSharesFor(dataset)) {
      return zone_placement_->ServerFor(dataset, block, *shares);
    }
  }
  return placement_.ServerFor(dataset, block);
}

const std::vector<Bytes>* DataManager::ZoneSharesFor(DatasetId dataset) const {
  if (dataset < 0 || static_cast<std::size_t>(dataset) >= zone_shares_.size() ||
      zone_shares_[static_cast<std::size_t>(dataset)].empty()) {
    return nullptr;
  }
  return &zone_shares_[static_cast<std::size_t>(dataset)];
}

void DataManager::SetZoneShares(DatasetId dataset, const std::vector<Bytes>& shares) {
  SILOD_CHECK(dataset >= 0) << "dataset id " << dataset << " not dense";
  if (static_cast<std::size_t>(dataset) >= zone_shares_.size()) {
    zone_shares_.resize(static_cast<std::size_t>(dataset) + 1);
  }
  zone_shares_[static_cast<std::size_t>(dataset)] = shares;
}

void DataManager::ClearZoneShares(DatasetId dataset) {
  if (dataset >= 0 && static_cast<std::size_t>(dataset) < zone_shares_.size()) {
    zone_shares_[static_cast<std::size_t>(dataset)].clear();
  }
}

Status DataManager::SetTopology(const ClusterTopology& topology) {
  if (topology.empty()) {
    topology_ = ClusterTopology{};
    zone_placement_.reset();
    zone_shares_.clear();
    return Status::Ok();
  }
  if (const Status st = topology.Validate(num_shards()); !st.ok()) {
    return st;
  }
  topology_ = topology.Cover(num_shards());
  zone_placement_ = std::make_unique<ZonePlacement>(topology_);
  zone_shares_.clear();
  return Status::Ok();
}

Status DataManager::AllocateCacheSize(const Dataset& dataset, Bytes cache_size) {
  if (cache_size < 0) {
    return Status::InvalidArgument("negative cache allocation");
  }
  // Symmetric shares: every shard sees the same quota state, so either all
  // shards accept the allocation or the first one rejects it.
  const Bytes share = cache_size / static_cast<Bytes>(shards_.size());
  for (CacheManager& shard : shards_) {
    if (const Status st = shard.AllocateCacheSize(dataset, share); !st.ok()) {
      return st;
    }
  }
  ClearZoneShares(dataset.id);  // Uniform allocation ends any zone spread.
  if (listener_) {
    listener_(dataset.id);
  }
  return Status::Ok();
}

Status DataManager::AllocateCacheSizeZoned(const Dataset& dataset,
                                           const std::vector<Bytes>& zone_shares) {
  if (zone_placement_ == nullptr) {
    return Status::FailedPrecondition("no topology declared; call SetTopology first");
  }
  if (zone_shares.size() != static_cast<std::size_t>(topology_.num_zones())) {
    return Status::InvalidArgument("zone share count does not match the topology");
  }
  Bytes quota = 0;
  for (const Bytes share : zone_shares) {
    if (share < 0) {
      return Status::InvalidArgument("negative zone cache share");
    }
    quota += share;
  }
  const std::vector<Bytes> targets = PerShardTargets(quota, &zone_shares);
  // Shrinks before grows so moving a share between shards never transiently
  // over-commits the growing shard.
  for (const bool shrink_pass : {true, false}) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const Bytes current = shards_[s].Allocation(dataset.id);
      if (targets[s] == current || (targets[s] < current) != shrink_pass) {
        continue;
      }
      if (const Status st = shards_[s].AllocateCacheSize(dataset, targets[s]); !st.ok()) {
        return st;
      }
    }
  }
  SetZoneShares(dataset.id, zone_shares);
  if (listener_) {
    listener_(dataset.id);
  }
  return Status::Ok();
}

std::vector<Bytes> DataManager::PerShardTargets(Bytes quota,
                                                const std::vector<Bytes>* zone_shares) const {
  std::vector<Bytes> targets(shards_.size(), 0);
  if (zone_shares != nullptr) {
    for (int z = 0; z < topology_.num_zones(); ++z) {
      const TopologyZone& zone = topology_.zones()[static_cast<std::size_t>(z)];
      const Bytes share = (*zone_shares)[static_cast<std::size_t>(z)] / zone.size();
      for (int s = zone.first_server; s <= zone.last_server; ++s) {
        targets[static_cast<std::size_t>(s)] = share;
      }
    }
  } else {
    const Bytes share = quota / static_cast<Bytes>(shards_.size());
    for (Bytes& target : targets) {
      target = share;
    }
  }
  return targets;
}

Status DataManager::AllocateRemoteIo(JobId job, BytesPerSec io_speed) {
  if (job < 0) {
    return Status::InvalidArgument("invalid job id");
  }
  if (io_speed < 0) {
    return Status::InvalidArgument("negative remote IO allocation");
  }
  remote_.SetJobThrottle(job, io_speed);
  return Status::Ok();
}

Status DataManager::ApplyPlan(const AllocationPlan& plan, const DatasetCatalog& catalog) {
  if (plan.cache_model != CacheModelKind::kDatasetQuota) {
    return Status::FailedPrecondition("DataManager enforces dataset-quota plans only");
  }
  // Per-shard targets up front: a zone-spread dataset splits each zone share
  // equally among the zone's shards, anything else splits its quota equally.
  std::vector<std::vector<Bytes>> targets;
  targets.reserve(catalog.all().size());
  for (const auto& dataset : catalog.all()) {
    const auto it = plan.dataset_cache.find(dataset.id);
    const Bytes quota = it == plan.dataset_cache.end() ? 0 : it->second;
    const std::vector<Bytes>* zone_shares = nullptr;
    if (zone_placement_ != nullptr) {
      const auto zit = plan.dataset_zone_cache.find(dataset.id);
      if (zit != plan.dataset_zone_cache.end() &&
          zit->second.size() == static_cast<std::size_t>(topology_.num_zones())) {
        zone_shares = &zit->second;
        SetZoneShares(dataset.id, zit->second);
      }
    }
    if (zone_shares == nullptr) {
      ClearZoneShares(dataset.id);
    }
    targets.push_back(PerShardTargets(quota, zone_shares));
  }
  // Shrinks first so reshuffled allocations never transiently over-commit any
  // shard (per-shard, because zone spreads make shares asymmetric).
  std::vector<bool> changed(catalog.all().size(), false);
  for (const bool shrink_pass : {true, false}) {
    for (std::size_t d = 0; d < catalog.all().size(); ++d) {
      const Dataset& dataset = catalog.all()[d];
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        const Bytes current = shards_[s].Allocation(dataset.id);
        const Bytes target = targets[d][s];
        if (target == current || (target < current) != shrink_pass) {
          continue;
        }
        if (const Status st = shards_[s].AllocateCacheSize(dataset, target); !st.ok()) {
          return st;
        }
        changed[d] = true;
      }
    }
  }
  if (listener_) {
    for (std::size_t d = 0; d < changed.size(); ++d) {
      if (changed[d]) {
        listener_(catalog.all()[d].id);
      }
    }
  }
  for (const auto& [job, alloc] : plan.jobs) {
    if (!alloc.running) {
      continue;
    }
    if (plan.manages_remote_io && !std::isinf(alloc.remote_io)) {
      remote_.SetJobThrottle(job, alloc.remote_io);
    } else {
      remote_.ClearJobThrottle(job);
    }
  }
  return Status::Ok();
}

DataManager::ReadResult DataManager::ReadBlock(JobId job, const Dataset& dataset,
                                               std::int64_t block) {
  ReadResult result;
  result.hit = AccessBlock(dataset, block);
  if (!result.hit) {
    const BytesPerSec throttle = remote_.JobThrottle(job);
    const BytesPerSec rate = std::isinf(throttle)
                                 ? remote_.egress_limit()
                                 : std::min(throttle, remote_.egress_limit());
    SILOD_CHECK(rate > 0) << "job " << job << " throttled to zero with a cache miss";
    result.remote_seconds = static_cast<double>(dataset.BlockBytes(block)) / rate;
  }
  return result;
}

bool DataManager::AccessBlock(const Dataset& dataset, std::int64_t block) {
  const int shard = ShardFor(dataset.id, block);
  if (!alive_[static_cast<std::size_t>(shard)]) {
    return false;  // A dead shard misses and admits nothing.
  }
  return shards_[static_cast<std::size_t>(shard)].AccessBlock(dataset, block);
}

bool DataManager::IsCached(const Dataset& dataset, std::int64_t block) const {
  const int shard = ShardFor(dataset.id, block);
  return alive_[static_cast<std::size_t>(shard)] &&
         shards_[static_cast<std::size_t>(shard)].IsCached(dataset.id, block);
}

Bytes DataManager::CachedBytes(DatasetId dataset) const {
  Bytes total = 0;
  for (const CacheManager& shard : shards_) {
    total += shard.CachedBytes(dataset);
  }
  return total;
}

Bytes DataManager::Allocation(DatasetId dataset) const {
  Bytes total = 0;
  for (const CacheManager& shard : shards_) {
    total += shard.Allocation(dataset);
  }
  return total;
}

std::vector<std::int64_t> DataManager::CachedBlocks(DatasetId dataset) const {
  std::vector<std::int64_t> blocks;
  for (const CacheManager& shard : shards_) {
    const std::vector<std::int64_t> resident = shard.CachedBlocks(dataset);
    blocks.insert(blocks.end(), resident.begin(), resident.end());
  }
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

Status DataManager::RestoreCachedBlocks(const Dataset& dataset,
                                        const std::vector<std::int64_t>& blocks) {
  std::vector<std::vector<std::int64_t>> per_shard(shards_.size());
  for (const std::int64_t block : blocks) {
    const int shard = ShardFor(dataset.id, block);
    if (!alive_[static_cast<std::size_t>(shard)]) {
      continue;  // That server's disk is gone with it.
    }
    per_shard[static_cast<std::size_t>(shard)].push_back(block);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (per_shard[i].empty()) {
      continue;
    }
    if (const Status st = shards_[i].RestoreCachedBlocks(dataset, per_shard[i]); !st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

std::int64_t DataManager::CrashShard(int shard) {
  if (shard < 0 || shard >= num_shards() || !alive_[static_cast<std::size_t>(shard)]) {
    return 0;
  }
  alive_[static_cast<std::size_t>(shard)] = false;
  // Everything resident on the crashed server is lost; its quota shares stay
  // (the pod annotations are durable) but cannot be used until recovery.
  const std::int64_t lost = shards_[static_cast<std::size_t>(shard)].EvictRandomFraction(1.0);
  if (listener_) {
    // Residency moved for every dataset with blocks routed here; enumerating
    // them would cost more than a conservative cache-wide mark.
    listener_(kInvalidDataset);
  }
  return lost;
}

void DataManager::RecoverShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return;
  }
  const bool was_dead = !alive_[static_cast<std::size_t>(shard)];
  alive_[static_cast<std::size_t>(shard)] = true;
  if (was_dead && listener_) {
    listener_(kInvalidDataset);
  }
}

bool DataManager::shard_alive(int shard) const {
  return shard >= 0 && shard < num_shards() && alive_[static_cast<std::size_t>(shard)];
}

CacheManager& DataManager::cache() {
  SILOD_CHECK(shards_.size() == 1) << "cache() is only valid for a single-shard Data Manager; "
                                      "use the routed APIs";
  return shards_[0];
}

const CacheManager& DataManager::cache() const {
  SILOD_CHECK(shards_.size() == 1) << "cache() is only valid for a single-shard Data Manager; "
                                      "use the routed APIs";
  return shards_[0];
}

CacheManager& DataManager::shard_cache(int shard) {
  SILOD_CHECK(shard >= 0 && shard < num_shards()) << "shard " << shard << " out of range";
  return shards_[static_cast<std::size_t>(shard)];
}

const CacheManager& DataManager::shard_cache(int shard) const {
  SILOD_CHECK(shard >= 0 && shard < num_shards()) << "shard " << shard << " out of range";
  return shards_[static_cast<std::size_t>(shard)];
}

void DataManager::RestoreZoneShares(DatasetId dataset, const std::vector<Bytes>& shares) {
  SILOD_CHECK(zone_placement_ != nullptr) << "RestoreZoneShares requires a topology";
  SILOD_CHECK(shares.size() == static_cast<std::size_t>(topology_.num_zones()))
      << "zone share count does not match the topology";
  SetZoneShares(dataset, shares);
}

}  // namespace silod
