#include "src/core/data_manager.h"

#include <cmath>

#include "src/common/logging.h"

namespace silod {

DataManager::DataManager(Bytes cache_capacity, BytesPerSec egress_limit, std::uint64_t seed)
    : cache_(cache_capacity, seed), remote_(egress_limit) {}

Status DataManager::AllocateCacheSize(const Dataset& dataset, Bytes cache_size) {
  return cache_.AllocateCacheSize(dataset, cache_size);
}

Status DataManager::AllocateRemoteIo(JobId job, BytesPerSec io_speed) {
  if (job < 0) {
    return Status::InvalidArgument("invalid job id");
  }
  if (io_speed < 0) {
    return Status::InvalidArgument("negative remote IO allocation");
  }
  remote_.SetJobThrottle(job, io_speed);
  return Status::Ok();
}

Status DataManager::ApplyPlan(const AllocationPlan& plan, const DatasetCatalog& catalog) {
  if (plan.cache_model != CacheModelKind::kDatasetQuota) {
    return Status::FailedPrecondition("DataManager enforces dataset-quota plans only");
  }
  // Shrinks first so reshuffled allocations never transiently over-commit.
  for (const bool shrink_pass : {true, false}) {
    for (const auto& dataset : catalog.all()) {
      const auto it = plan.dataset_cache.find(dataset.id);
      const Bytes quota = it == plan.dataset_cache.end() ? 0 : it->second;
      const Bytes current = cache_.Allocation(dataset.id);
      if (quota == current || (quota < current) != shrink_pass) {
        continue;
      }
      const Status st = cache_.AllocateCacheSize(dataset, quota);
      if (!st.ok()) {
        return st;
      }
    }
  }
  for (const auto& [job, alloc] : plan.jobs) {
    if (!alloc.running) {
      continue;
    }
    if (plan.manages_remote_io && !std::isinf(alloc.remote_io)) {
      remote_.SetJobThrottle(job, alloc.remote_io);
    } else {
      remote_.ClearJobThrottle(job);
    }
  }
  return Status::Ok();
}

DataManager::ReadResult DataManager::ReadBlock(JobId job, const Dataset& dataset,
                                               std::int64_t block) {
  ReadResult result;
  result.hit = cache_.AccessBlock(dataset, block);
  if (!result.hit) {
    const BytesPerSec throttle = remote_.JobThrottle(job);
    const BytesPerSec rate = std::isinf(throttle)
                                 ? remote_.egress_limit()
                                 : std::min(throttle, remote_.egress_limit());
    SILOD_CHECK(rate > 0) << "job " << job << " throttled to zero with a cache miss";
    result.remote_seconds = static_cast<double>(dataset.BlockBytes(block)) / rate;
  }
  return result;
}

}  // namespace silod
