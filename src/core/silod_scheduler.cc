#include "src/core/silod_scheduler.h"

#include "src/common/logging.h"
#include "src/core/policy_registry.h"

namespace silod {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kSjf:
      return "SJF";
    case SchedulerKind::kGavel:
      return "Gavel";
  }
  return "unknown";
}

const char* CacheSystemName(CacheSystem system) {
  switch (system) {
    case CacheSystem::kSiloD:
      return "SiloD";
    case CacheSystem::kAlluxio:
      return "Alluxio";
    case CacheSystem::kAlluxioLfu:
      return "Alluxio-LFU";
    case CacheSystem::kCoorDl:
      return "CoorDL";
    case CacheSystem::kQuiver:
      return "Quiver";
  }
  return "unknown";
}

std::shared_ptr<Scheduler> MakeScheduler(SchedulerKind kind, CacheSystem system,
                                         const SchedulerOptions& options) {
  // Thin wrapper over the string-keyed registry (deprecated in favour of
  // MakeSchedulerByName; kept for one release).
  Result<std::shared_ptr<Scheduler>> scheduler =
      MakeSchedulerByName(PolicyName(kind, system), options);
  SILOD_CHECK(scheduler.ok()) << "built-in pair missing from the policy registry: "
                              << scheduler.status().ToString();
  return *scheduler;
}

}  // namespace silod
