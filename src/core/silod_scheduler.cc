#include "src/core/silod_scheduler.h"

#include "src/common/logging.h"
#include "src/sched/fifo.h"
#include "src/sched/gavel.h"
#include "src/sched/greedy.h"
#include "src/sched/sjf.h"
#include "src/sched/storage_policies.h"

namespace silod {

const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "FIFO";
    case SchedulerKind::kSjf:
      return "SJF";
    case SchedulerKind::kGavel:
      return "Gavel";
  }
  return "unknown";
}

const char* CacheSystemName(CacheSystem system) {
  switch (system) {
    case CacheSystem::kSiloD:
      return "SiloD";
    case CacheSystem::kAlluxio:
      return "Alluxio";
    case CacheSystem::kAlluxioLfu:
      return "Alluxio-LFU";
    case CacheSystem::kCoorDl:
      return "CoorDL";
    case CacheSystem::kQuiver:
      return "Quiver";
  }
  return "unknown";
}

std::shared_ptr<Scheduler> MakeScheduler(SchedulerKind kind, CacheSystem system,
                                         const SchedulerOptions& options) {
  std::shared_ptr<StoragePolicy> storage;
  switch (system) {
    case CacheSystem::kSiloD:
      storage = std::make_shared<SiloDGreedyStorage>(options.manage_remote_io);
      break;
    case CacheSystem::kAlluxio:
      storage = std::make_shared<AlluxioStorage>();
      break;
    case CacheSystem::kAlluxioLfu:
      storage = std::make_shared<AlluxioStorage>(AlluxioStorage::Eviction::kLfu);
      break;
    case CacheSystem::kCoorDl:
      storage = std::make_shared<CoorDlStorage>();
      break;
    case CacheSystem::kQuiver:
      storage =
          std::make_shared<QuiverStorage>(options.quiver_profiling_noise, options.seed);
      break;
  }

  const bool silod = system == CacheSystem::kSiloD;
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_shared<FifoScheduler>(storage);
    case SchedulerKind::kSjf:
      return std::make_shared<SjfScheduler>(
          storage, silod ? SjfScoreMode::kSiloD : SjfScoreMode::kComputeOnly,
          options.preemptive_sjf);
    case SchedulerKind::kGavel:
      if (silod) {
        return std::make_shared<GavelScheduler>(nullptr, /*silod_aware=*/true,
                                                options.manage_remote_io,
                                                options.gavel_objective);
      }
      return std::make_shared<GavelScheduler>(storage, /*silod_aware=*/false);
  }
  SILOD_CHECK(false) << "unreachable scheduler kind";
  return nullptr;
}

}  // namespace silod
