// SiloDSystem: the one-call experiment API.
//
// Wires a workload trace, a (scheduler, cache system) pair and a cluster
// configuration to a simulation engine and returns the paper's metrics.
// Everything in bench/ and most examples go through RunExperiment.
#ifndef SILOD_SRC_CORE_SYSTEM_H_
#define SILOD_SRC_CORE_SYSTEM_H_

#include <memory>
#include <string>

#include "src/core/silod_scheduler.h"
#include "src/sim/cluster.h"
#include "src/sim/fine_engine.h"
#include "src/sim/flow_engine.h"
#include "src/sim/metrics.h"
#include "src/workload/trace_gen.h"

namespace silod {

enum class EngineKind {
  kFlow,  // Piecewise-constant rates; for large clusters / long traces.
  kFine,  // Mini-batch DES; for micro-benchmarks and cache-dynamics studies.
};

struct ExperimentConfig {
  SchedulerKind scheduler = SchedulerKind::kFifo;
  CacheSystem cache = CacheSystem::kSiloD;
  // Registry policy name (core/policy_registry.h), e.g. "gavel+coordl".
  // When non-empty it overrides the enum pair above.
  std::string policy;
  SchedulerOptions scheduler_options;
  SimConfig sim;
  EngineKind engine = EngineKind::kFlow;
  FineEngineOptions fine;

  std::string Name() const;
};

// Runs one experiment end to end.
SimResult RunExperiment(const Trace& trace, const ExperimentConfig& config);

// Same, but with a caller-provided scheduler (e.g. a PartitionedScheduler).
SimResult RunExperimentWith(const Trace& trace, std::shared_ptr<Scheduler> scheduler,
                            const ExperimentConfig& config);

}  // namespace silod

#endif  // SILOD_SRC_CORE_SYSTEM_H_
