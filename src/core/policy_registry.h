// String-keyed registry of (scheduler, cache-system) policy pairs.
//
// Blox-style composition: the CLI, benches and tests name a policy pair
// uniformly ("sjf+silod", "gavel+coordl", ...) and new pairs register
// without editing a closed factory.  Every pair previously constructible via
// MakeScheduler(SchedulerKind, CacheSystem) is pre-registered under
// "<scheduler>+<cache>" with the lowercase tokens
//
//   scheduler:  fifo | sjf | gavel
//   cache:      silod | alluxio | alluxio-lfu | coordl | quiver
//
// and the enum factory remains as a thin wrapper over the registry for one
// release (see silod_scheduler.h).
#ifndef SILOD_SRC_CORE_POLICY_REGISTRY_H_
#define SILOD_SRC_CORE_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/silod_scheduler.h"
#include "src/sched/policy.h"

namespace silod {

using PolicyFactory = std::function<std::shared_ptr<Scheduler>(const SchedulerOptions&)>;

struct PolicyInfo {
  std::string name;
  std::string description;
};

class PolicyRegistry {
 public:
  // The process-wide registry, pre-populated with every built-in pair.
  static PolicyRegistry& Global();

  // Registers a policy under `name`; kAlreadyExists if the name is taken.
  Status Register(const std::string& name, const std::string& description,
                  PolicyFactory factory);

  bool Contains(const std::string& name) const;

  // Builds the named policy; kNotFound (listing the known names) otherwise.
  Result<std::shared_ptr<Scheduler>> Make(const std::string& name,
                                          const SchedulerOptions& options = {}) const;

  // All registered policies, sorted by name.
  std::vector<PolicyInfo> List() const;

  // Comma-joined sorted names, for help text and error messages.
  std::string KnownNames() const;

 private:
  PolicyRegistry() = default;

  std::map<std::string, std::pair<std::string, PolicyFactory>> policies_;
};

// Shorthand for PolicyRegistry::Global().Make(name, options).
Result<std::shared_ptr<Scheduler>> MakeSchedulerByName(const std::string& name,
                                                       const SchedulerOptions& options = {});

// The registry name of an enum pair, e.g. "gavel+alluxio-lfu".
std::string PolicyName(SchedulerKind kind, CacheSystem system);

}  // namespace silod

#endif  // SILOD_SRC_CORE_POLICY_REGISTRY_H_
