#include "src/core/policy_registry.h"

#include <utility>

#include "src/common/logging.h"
#include "src/sched/fifo.h"
#include "src/sched/gavel.h"
#include "src/sched/greedy.h"
#include "src/sched/sjf.h"
#include "src/sched/storage_policies.h"

namespace silod {
namespace {

constexpr SchedulerKind kSchedulers[] = {SchedulerKind::kFifo, SchedulerKind::kSjf,
                                         SchedulerKind::kGavel};
constexpr CacheSystem kCacheSystems[] = {CacheSystem::kSiloD, CacheSystem::kAlluxio,
                                         CacheSystem::kAlluxioLfu, CacheSystem::kCoorDl,
                                         CacheSystem::kQuiver};

const char* SchedulerToken(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return "fifo";
    case SchedulerKind::kSjf:
      return "sjf";
    case SchedulerKind::kGavel:
      return "gavel";
  }
  return "unknown";
}

const char* CacheToken(CacheSystem system) {
  switch (system) {
    case CacheSystem::kSiloD:
      return "silod";
    case CacheSystem::kAlluxio:
      return "alluxio";
    case CacheSystem::kAlluxioLfu:
      return "alluxio-lfu";
    case CacheSystem::kCoorDl:
      return "coordl";
    case CacheSystem::kQuiver:
      return "quiver";
  }
  return "unknown";
}

// Algorithm 1's composition, moved verbatim from the old enum factory: the
// registry's built-in entries and the enum wrapper both resolve here.
std::shared_ptr<Scheduler> BuildScheduler(SchedulerKind kind, CacheSystem system,
                                          const SchedulerOptions& options) {
  std::shared_ptr<StoragePolicy> storage;
  switch (system) {
    case CacheSystem::kSiloD:
      storage = std::make_shared<SiloDGreedyStorage>(options.manage_remote_io);
      break;
    case CacheSystem::kAlluxio:
      storage = std::make_shared<AlluxioStorage>();
      break;
    case CacheSystem::kAlluxioLfu:
      storage = std::make_shared<AlluxioStorage>(AlluxioStorage::Eviction::kLfu);
      break;
    case CacheSystem::kCoorDl:
      storage = std::make_shared<CoorDlStorage>();
      break;
    case CacheSystem::kQuiver:
      storage =
          std::make_shared<QuiverStorage>(options.quiver_profiling_noise, options.seed);
      break;
  }

  const bool silod = system == CacheSystem::kSiloD;
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_shared<FifoScheduler>(storage);
    case SchedulerKind::kSjf:
      return std::make_shared<SjfScheduler>(
          storage, silod ? SjfScoreMode::kSiloD : SjfScoreMode::kComputeOnly,
          options.preemptive_sjf);
    case SchedulerKind::kGavel:
      if (silod) {
        return std::make_shared<GavelScheduler>(nullptr, /*silod_aware=*/true,
                                                options.manage_remote_io,
                                                options.gavel_objective);
      }
      return std::make_shared<GavelScheduler>(storage, /*silod_aware=*/false);
  }
  SILOD_CHECK(false) << "unreachable scheduler kind";
  return nullptr;
}

}  // namespace

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = [] {
    auto* r = new PolicyRegistry();
    for (const SchedulerKind kind : kSchedulers) {
      for (const CacheSystem system : kCacheSystems) {
        const std::string description = std::string(SchedulerKindName(kind)) +
                                        " scheduling on the " + CacheSystemName(system) +
                                        " cache system";
        const Status st = r->Register(
            PolicyName(kind, system), description,
            [kind, system](const SchedulerOptions& options) {
              return BuildScheduler(kind, system, options);
            });
        SILOD_CHECK(st.ok()) << "built-in policy registration collided: " << st.ToString();
      }
    }
    return r;
  }();
  return *registry;
}

Status PolicyRegistry::Register(const std::string& name, const std::string& description,
                                PolicyFactory factory) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArgument("policy registration wants a name and a factory");
  }
  const auto [it, inserted] =
      policies_.emplace(name, std::make_pair(description, std::move(factory)));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("policy already registered: " + name);
  }
  return Status::Ok();
}

bool PolicyRegistry::Contains(const std::string& name) const { return policies_.count(name) > 0; }

Result<std::shared_ptr<Scheduler>> PolicyRegistry::Make(const std::string& name,
                                                        const SchedulerOptions& options) const {
  const auto it = policies_.find(name);
  if (it == policies_.end()) {
    return Status::NotFound("unknown policy '" + name + "'; known: " + KnownNames());
  }
  return it->second.second(options);
}

std::vector<PolicyInfo> PolicyRegistry::List() const {
  std::vector<PolicyInfo> out;
  out.reserve(policies_.size());
  for (const auto& [name, entry] : policies_) {
    out.push_back(PolicyInfo{name, entry.first});
  }
  return out;  // std::map iterates sorted by name.
}

std::string PolicyRegistry::KnownNames() const {
  std::string out;
  for (const auto& [name, entry] : policies_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

Result<std::shared_ptr<Scheduler>> MakeSchedulerByName(const std::string& name,
                                                       const SchedulerOptions& options) {
  return PolicyRegistry::Global().Make(name, options);
}

std::string PolicyName(SchedulerKind kind, CacheSystem system) {
  return std::string(SchedulerToken(kind)) + "+" + CacheToken(system);
}

}  // namespace silod
