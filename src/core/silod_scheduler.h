// Algorithm 1: composing scheduling policies with cache systems.
//
// SiloD's framework is "any performance-aware scheduler + the SiloDPerf
// estimator + storage in totalResource".  This factory builds every
// (scheduler, cache system) pair evaluated in §7:
//
//               SiloD                     Alluxio / CoorDL / Quiver
//   FIFO   greedy Alg. 2 storage       independent cache, fair-share IO
//   SJF    Eq. 7 score + Alg. 2        Eq. 6 score (compute-only estimator)
//   Gavel  Eq. 9 solver                Eq. 8 with compute-only estimator
#ifndef SILOD_SRC_CORE_SILOD_SCHEDULER_H_
#define SILOD_SRC_CORE_SILOD_SCHEDULER_H_

#include <memory>
#include <string>

#include "src/sched/gavel.h"
#include "src/sched/policy.h"

namespace silod {

enum class SchedulerKind { kFifo, kSjf, kGavel };
enum class CacheSystem { kSiloD, kAlluxio, kAlluxioLfu, kCoorDl, kQuiver };

const char* SchedulerKindName(SchedulerKind kind);
const char* CacheSystemName(CacheSystem system);

struct SchedulerOptions {
  // §7.2 ablation: SiloD allocates cache but leaves remote IO to the
  // provider's fair share.
  bool manage_remote_io = true;
  // Objective for the Gavel scheduler's SiloD variant (§5.2: the extension
  // supports every objective Gavel does).
  GavelObjective gavel_objective = GavelObjective::kMaxMinFairness;
  // SRTF: the SJF scheduler preempts running jobs for lower-score arrivals.
  // Only the flow engine executes preemptive plans.
  bool preemptive_sjf = false;
  // Relative noise of Quiver's online benefit profiling.
  double quiver_profiling_noise = 0.25;
  std::uint64_t seed = 11;
};

// Thin wrapper over the string-keyed policy registry (core/policy_registry.h)
// that resolves the pair as "<scheduler>+<cache>" (e.g. "sjf+silod").
// Deprecated: new call sites should use MakeSchedulerByName; the enum
// overload is kept for one release.
std::shared_ptr<Scheduler> MakeScheduler(SchedulerKind kind, CacheSystem system,
                                         const SchedulerOptions& options = {});

}  // namespace silod

#endif  // SILOD_SRC_CORE_SILOD_SCHEDULER_H_
