#include "src/core/recovery.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace silod {

DataManagerSnapshot CaptureSnapshot(const DataManager& manager, const DatasetCatalog& catalog) {
  DataManagerSnapshot snapshot;
  for (const Dataset& dataset : catalog.all()) {
    const Bytes quota = manager.cache().Allocation(dataset.id);
    if (quota > 0) {
      snapshot.cache_allocations[dataset.id] = quota;
    }
    std::vector<std::int64_t> blocks = manager.cache().CachedBlocks(dataset.id);
    if (!blocks.empty()) {
      snapshot.cached_blocks[dataset.id] = std::move(blocks);
    }
  }
  for (const auto& [job, rate] : manager.remote().Throttles()) {
    snapshot.io_allocations[job] = rate;
  }
  return snapshot;
}

Status RestoreDataManager(const DataManagerSnapshot& snapshot, const DatasetCatalog& catalog,
                          DataManager* manager) {
  if (manager == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  // Allocations first (the pod annotations), then disk contents under them.
  for (const auto& [dataset_id, quota] : snapshot.cache_allocations) {
    const Status st = manager->AllocateCacheSize(catalog.Get(dataset_id), quota);
    if (!st.ok()) {
      return st;
    }
  }
  for (const auto& [job, rate] : snapshot.io_allocations) {
    const Status st = manager->AllocateRemoteIo(job, rate);
    if (!st.ok()) {
      return st;
    }
  }
  for (const auto& [dataset_id, blocks] : snapshot.cached_blocks) {
    const Status st = manager->cache().RestoreCachedBlocks(catalog.Get(dataset_id), blocks);
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

std::string SnapshotToText(const DataManagerSnapshot& snapshot) {
  std::string out = "silod-snapshot-v1\n";
  char buf[64];
  for (const auto& [dataset, quota] : snapshot.cache_allocations) {
    std::snprintf(buf, sizeof(buf), "cache %d %" PRId64 "\n", dataset, quota);
    out += buf;
  }
  for (const auto& [job, rate] : snapshot.io_allocations) {
    std::snprintf(buf, sizeof(buf), "io %d %.6f\n", job, rate);
    out += buf;
  }
  for (const auto& [dataset, blocks] : snapshot.cached_blocks) {
    std::snprintf(buf, sizeof(buf), "blocks %d", dataset);
    out += buf;
    for (const std::int64_t block : blocks) {
      std::snprintf(buf, sizeof(buf), " %" PRId64, block);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

Result<DataManagerSnapshot> SnapshotFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "silod-snapshot-v1") {
    return Status::InvalidArgument("bad snapshot header");
  }
  DataManagerSnapshot snapshot;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "cache") {
      DatasetId dataset;
      Bytes quota;
      if (!(fields >> dataset >> quota)) {
        return Status::InvalidArgument("bad cache line: " + line);
      }
      snapshot.cache_allocations[dataset] = quota;
    } else if (kind == "io") {
      JobId job;
      BytesPerSec rate;
      if (!(fields >> job >> rate)) {
        return Status::InvalidArgument("bad io line: " + line);
      }
      snapshot.io_allocations[job] = rate;
    } else if (kind == "blocks") {
      DatasetId dataset;
      if (!(fields >> dataset)) {
        return Status::InvalidArgument("bad blocks line: " + line);
      }
      std::vector<std::int64_t>& blocks = snapshot.cached_blocks[dataset];
      std::int64_t block;
      while (fields >> block) {
        blocks.push_back(block);
      }
    } else {
      return Status::InvalidArgument("unknown snapshot record: " + kind);
    }
  }
  return snapshot;
}

}  // namespace silod
