#include "src/core/recovery.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace silod {

namespace {

Status CheckDatasetKnown(DatasetId dataset_id, const DatasetCatalog& catalog) {
  if (dataset_id < 0 || static_cast<std::size_t>(dataset_id) >= catalog.size()) {
    return Status::InvalidArgument("snapshot references unknown dataset " +
                                   std::to_string(dataset_id));
  }
  return Status::Ok();
}

}  // namespace

DataManagerSnapshot CaptureCacheSnapshot(const CacheManager& cache,
                                         const DatasetCatalog& catalog) {
  DataManagerSnapshot snapshot;
  for (const Dataset& dataset : catalog.all()) {
    const Bytes quota = cache.Allocation(dataset.id);
    if (quota > 0) {
      snapshot.cache_allocations[dataset.id] = quota;
    }
    std::vector<std::int64_t> blocks = cache.CachedBlocks(dataset.id);
    if (!blocks.empty()) {
      snapshot.cached_blocks[dataset.id] = std::move(blocks);
    }
  }
  return snapshot;
}

Status RestoreCacheManager(const DataManagerSnapshot& snapshot, const DatasetCatalog& catalog,
                           CacheManager* cache) {
  if (cache == nullptr) {
    return Status::InvalidArgument("null cache manager");
  }
  // Allocations first (the pod annotations), then disk contents under them.
  for (const auto& [dataset_id, quota] : snapshot.cache_allocations) {
    Status st = CheckDatasetKnown(dataset_id, catalog);
    if (!st.ok()) {
      return st;
    }
    st = cache->AllocateCacheSize(catalog.Get(dataset_id), quota);
    if (!st.ok()) {
      return st;
    }
  }
  for (const auto& [dataset_id, blocks] : snapshot.cached_blocks) {
    Status st = CheckDatasetKnown(dataset_id, catalog);
    if (!st.ok()) {
      return st;
    }
    st = cache->RestoreCachedBlocks(catalog.Get(dataset_id), blocks);
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

DataManagerSnapshot CaptureSnapshot(const DataManager& manager, const DatasetCatalog& catalog) {
  // Routed (shard-aware) reads: allocations and residents aggregate across
  // shards, so the snapshot format is shard-count independent.
  DataManagerSnapshot snapshot;
  for (const Dataset& dataset : catalog.all()) {
    const Bytes quota = manager.Allocation(dataset.id);
    if (quota > 0) {
      snapshot.cache_allocations[dataset.id] = quota;
    }
    std::vector<std::int64_t> blocks = manager.CachedBlocks(dataset.id);
    if (!blocks.empty()) {
      snapshot.cached_blocks[dataset.id] = std::move(blocks);
    }
  }
  for (const auto& [job, rate] : manager.remote().Throttles()) {
    snapshot.io_allocations[job] = rate;
  }
  return snapshot;
}

Status RestoreDataManager(const DataManagerSnapshot& snapshot, const DatasetCatalog& catalog,
                          DataManager* manager) {
  if (manager == nullptr) {
    return Status::InvalidArgument("null manager");
  }
  for (const auto& [dataset_id, quota] : snapshot.cache_allocations) {
    Status st = CheckDatasetKnown(dataset_id, catalog);
    if (!st.ok()) {
      return st;
    }
    st = manager->AllocateCacheSize(catalog.Get(dataset_id), quota);
    if (!st.ok()) {
      return st;
    }
  }
  for (const auto& [job, rate] : snapshot.io_allocations) {
    const Status st = manager->AllocateRemoteIo(job, rate);
    if (!st.ok()) {
      return st;
    }
  }
  for (const auto& [dataset_id, blocks] : snapshot.cached_blocks) {
    Status st = CheckDatasetKnown(dataset_id, catalog);
    if (!st.ok()) {
      return st;
    }
    st = manager->RestoreCachedBlocks(catalog.Get(dataset_id), blocks);
    if (!st.ok()) {
      return st;
    }
  }
  return Status::Ok();
}

std::string SnapshotToText(const DataManagerSnapshot& snapshot) {
  std::string out = "silod-snapshot-v1\n";
  char buf[64];
  for (const auto& [dataset, quota] : snapshot.cache_allocations) {
    std::snprintf(buf, sizeof(buf), "cache %d %" PRId64 "\n", dataset, quota);
    out += buf;
  }
  for (const auto& [job, rate] : snapshot.io_allocations) {
    std::snprintf(buf, sizeof(buf), "io %d %.6f\n", job, rate);
    out += buf;
  }
  for (const auto& [dataset, blocks] : snapshot.cached_blocks) {
    std::snprintf(buf, sizeof(buf), "blocks %d", dataset);
    out += buf;
    for (const std::int64_t block : blocks) {
      std::snprintf(buf, sizeof(buf), " %" PRId64, block);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

namespace {

// True when the stream has unread non-whitespace (a malformed or extra token).
bool HasTrailingGarbage(std::istringstream& fields) {
  fields.clear();
  std::string extra;
  return static_cast<bool>(fields >> extra);
}

}  // namespace

Result<DataManagerSnapshot> SnapshotFromText(const std::string& text,
                                             const DatasetCatalog* catalog) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "silod-snapshot-v1") {
    return Status::InvalidArgument("bad snapshot header");
  }
  DataManagerSnapshot snapshot;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "cache") {
      DatasetId dataset;
      Bytes quota;
      if (!(fields >> dataset >> quota)) {
        return Status::InvalidArgument("truncated cache line: " + line);
      }
      if (HasTrailingGarbage(fields)) {
        return Status::InvalidArgument("trailing garbage on cache line: " + line);
      }
      if (quota < 0) {
        return Status::InvalidArgument("negative cache quota: " + line);
      }
      if (!snapshot.cache_allocations.emplace(dataset, quota).second) {
        return Status::InvalidArgument("duplicate cache record for dataset " +
                                       std::to_string(dataset));
      }
    } else if (kind == "io") {
      JobId job;
      BytesPerSec rate;
      if (!(fields >> job >> rate)) {
        return Status::InvalidArgument("truncated io line: " + line);
      }
      if (HasTrailingGarbage(fields)) {
        return Status::InvalidArgument("trailing garbage on io line: " + line);
      }
      if (rate < 0) {
        return Status::InvalidArgument("negative io rate: " + line);
      }
      if (!snapshot.io_allocations.emplace(job, rate).second) {
        return Status::InvalidArgument("duplicate io record for job " + std::to_string(job));
      }
    } else if (kind == "blocks") {
      DatasetId dataset;
      if (!(fields >> dataset)) {
        return Status::InvalidArgument("truncated blocks line: " + line);
      }
      std::vector<std::int64_t> blocks;
      std::int64_t block;
      while (fields >> block) {
        blocks.push_back(block);
      }
      if (HasTrailingGarbage(fields)) {
        return Status::InvalidArgument("non-numeric block id: " + line);
      }
      if (blocks.empty()) {
        return Status::InvalidArgument("blocks record lists no blocks: " + line);
      }
      if (!snapshot.cached_blocks.emplace(dataset, std::move(blocks)).second) {
        return Status::InvalidArgument("duplicate blocks record for dataset " +
                                       std::to_string(dataset));
      }
    } else {
      return Status::InvalidArgument("unknown snapshot record: " + kind);
    }
  }
  if (catalog != nullptr) {
    for (const auto& [dataset_id, quota] : snapshot.cache_allocations) {
      const Status st = CheckDatasetKnown(dataset_id, *catalog);
      if (!st.ok()) {
        return st;
      }
    }
    for (const auto& [dataset_id, blocks] : snapshot.cached_blocks) {
      const Status st = CheckDatasetKnown(dataset_id, *catalog);
      if (!st.ok()) {
        return st;
      }
      const Dataset& dataset = catalog->Get(dataset_id);
      for (const std::int64_t block : blocks) {
        if (block < 0 || block >= dataset.num_blocks) {
          return Status::InvalidArgument("block out of range for dataset " +
                                         std::to_string(dataset_id));
        }
      }
    }
  }
  return snapshot;
}

}  // namespace silod
