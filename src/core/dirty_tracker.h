// Dirty-set tracking for incremental re-planning (docs/MODEL.md §11).
//
// SiloD's control loop is a pure function of the cluster snapshot, so a
// re-plan only has to recompute what the snapshot changed: the silodd
// planner (serve/incremental_planner.h) re-scores and re-estimates only the
// jobs and datasets marked dirty since the last plan and falls back to a
// full solve when something global moved (topology, policy, resources).
//
// The tracker is the one mutation journal between plans: every submission,
// completion, cancellation, progress report and cache-state change funnels
// through MarkJob/MarkDataset/MarkAll, and the planner drains it atomically
// at each planning tick.  DataManager calls MarkDataset through its change
// listener (core/data_manager.h) when a shard crash/recovery or a plan
// application moves a dataset's resident bytes, so cache-side churn also
// reaches the planner without polling.
#ifndef SILOD_SRC_CORE_DIRTY_TRACKER_H_
#define SILOD_SRC_CORE_DIRTY_TRACKER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

class DirtyTracker {
 public:
  void MarkJob(JobId job);
  void MarkDataset(DatasetId dataset);
  // Global invalidation (topology/policy/resource change); `reason` is kept
  // for the stats surface so operators can see why full solves happened.
  void MarkAll(const std::string& reason);

  bool empty() const { return !all_dirty_ && jobs_.empty() && datasets_.empty(); }
  bool all_dirty() const { return all_dirty_; }
  const std::string& all_dirty_reason() const { return all_dirty_reason_; }
  // Sorted, deduplicated views (std::set iteration order).
  std::vector<JobId> DirtyJobs() const { return {jobs_.begin(), jobs_.end()}; }
  std::vector<DatasetId> DirtyDatasets() const { return {datasets_.begin(), datasets_.end()}; }

  // Pending marks plus lifetime counters survive a Clear; `events()` counts
  // individual marks since the last Clear (the planner's coalescing meter).
  std::uint64_t events() const { return events_; }
  std::uint64_t lifetime_marks() const { return lifetime_marks_; }
  std::uint64_t lifetime_full_invalidations() const { return lifetime_full_invalidations_; }

  void Clear();

  // Journal recovery (serve/journal.h): pins the coalescing meter to the
  // checkpointed value after the saved marks were re-applied (each re-mark
  // bumped it, so this must run last).
  void RestoreEventCount(std::uint64_t events) { events_ = events; }

 private:
  std::set<JobId> jobs_;
  std::set<DatasetId> datasets_;
  bool all_dirty_ = false;
  std::string all_dirty_reason_;
  std::uint64_t events_ = 0;
  std::uint64_t lifetime_marks_ = 0;
  std::uint64_t lifetime_full_invalidations_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_CORE_DIRTY_TRACKER_H_
