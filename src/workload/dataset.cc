#include "src/workload/dataset.h"

#include "src/common/logging.h"

namespace silod {

Bytes Dataset::BlockBytes(std::int64_t block) const {
  SILOD_CHECK(block >= 0 && block < num_blocks) << "block " << block << " of " << num_blocks;
  if (block < num_blocks - 1) {
    return block_size;
  }
  const Bytes remainder = size - (num_blocks - 1) * block_size;
  return remainder > 0 ? remainder : block_size;
}

Dataset MakeDataset(DatasetId id, std::string name, Bytes size, Bytes block_size) {
  SILOD_CHECK(size > 0) << "dataset size must be positive";
  SILOD_CHECK(block_size > 0) << "block size must be positive";
  Dataset d;
  d.id = id;
  d.name = std::move(name);
  d.size = size;
  d.block_size = block_size;
  d.num_blocks = (size + block_size - 1) / block_size;
  return d;
}

DatasetId DatasetCatalog::Add(std::string name, Bytes size, Bytes block_size) {
  const DatasetId id = static_cast<DatasetId>(datasets_.size());
  datasets_.push_back(MakeDataset(id, std::move(name), size, block_size));
  return id;
}

const Dataset& DatasetCatalog::Get(DatasetId id) const {
  SILOD_CHECK(id >= 0 && static_cast<std::size_t>(id) < datasets_.size())
      << "unknown dataset id " << id;
  return datasets_[static_cast<std::size_t>(id)];
}

}  // namespace silod
