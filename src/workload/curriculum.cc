#include "src/workload/curriculum.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace silod {

ExponentialPacing::ExponentialPacing(CurriculumParams params, std::int64_t num_items)
    : params_(params), num_items_(num_items) {
  SILOD_CHECK(num_items > 0) << "pacing needs a nonempty dataset";
  SILOD_CHECK(params.starting_percent > 0 && params.starting_percent <= 1.0)
      << "starting_percent must be in (0, 1]";
  SILOD_CHECK(params.alpha > 1.0) << "alpha must exceed 1 for the prefix to grow";
  SILOD_CHECK(params.step > 0) << "step must be positive";
}

double ExponentialPacing::AvailableFraction(std::int64_t iteration) const {
  SILOD_CHECK(iteration >= 0) << "iteration must be nonnegative";
  const double exponent = static_cast<double>(iteration / params_.step);
  const double frac = params_.starting_percent * std::pow(params_.alpha, exponent);
  return std::min(frac, 1.0);
}

std::int64_t ExponentialPacing::AvailableItems(std::int64_t iteration) const {
  const double frac = AvailableFraction(iteration);
  const auto items = static_cast<std::int64_t>(frac * static_cast<double>(num_items_));
  return std::clamp<std::int64_t>(items, 1, num_items_);
}

std::int64_t ExponentialPacing::FullDataIteration() const {
  if (params_.starting_percent >= 1.0) {
    return -1;
  }
  // Smallest k with starting_percent * alpha^k >= 1.
  const double k = std::ceil(-std::log(params_.starting_percent) / std::log(params_.alpha));
  return static_cast<std::int64_t>(k) * params_.step;
}

CurriculumSampler::CurriculumSampler(ExponentialPacing pacing, Rng rng)
    : pacing_(pacing), rng_(rng) {}

std::int64_t CurriculumSampler::Sample(std::int64_t iteration) {
  const std::int64_t available = pacing_.AvailableItems(iteration);
  return static_cast<std::int64_t>(rng_.NextBelow(static_cast<std::uint64_t>(available)));
}

}  // namespace silod
