#include "src/workload/job.h"

#include "src/common/logging.h"

namespace silod {

JobSpec MakeJob(JobId id, const ModelZoo& zoo, const std::string& model, int num_gpus,
                DatasetId dataset, Seconds ideal_duration, Seconds submit_time,
                double gpu_speed_scale) {
  SILOD_CHECK(ideal_duration > 0) << "ideal_duration must be positive";
  const ModelProfile& profile = zoo.GetModel(model);
  JobSpec job;
  job.id = id;
  job.name = model + "-job" + std::to_string(id);
  job.model = model;
  job.num_gpus = num_gpus;
  job.dataset = dataset;
  job.ideal_io = ModelZoo::ScaledIdealIo(profile, num_gpus, gpu_speed_scale);
  job.total_bytes = static_cast<Bytes>(job.ideal_io * ideal_duration);
  job.step_data_size = profile.step_data_size * num_gpus;
  job.submit_time = submit_time;
  return job;
}

BytesPerSec RemoteIoLimitForCluster(int num_gpus) {
  // Table 5: 8 V100 -> 1.6 Gbps; 96 -> 8 Gbps; 400 -> 32 Gbps; ~1900 -> 120 Gbps.
  if (num_gpus <= 8) {
    return Gbps(1.6);
  }
  if (num_gpus <= 96) {
    return Gbps(8);
  }
  if (num_gpus <= 400) {
    return Gbps(32);
  }
  return Gbps(120);
}

}  // namespace silod
