// Job specifications.
//
// A JobSpec is everything the scheduler knows about a training job when it is
// submitted: its GPU demand, its ideal IO demand f* (from offline profiling,
// §5.3), its dataset, and its total amount of work.  Runtime state (progress,
// cache residency) lives in the simulation engines.
#ifndef SILOD_SRC_WORKLOAD_JOB_H_
#define SILOD_SRC_WORKLOAD_JOB_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/workload/dataset.h"
#include "src/workload/model_zoo.h"

namespace silod {

using JobId = std::int32_t;
inline constexpr JobId kInvalidJob = -1;

struct CurriculumParams {
  // Exponential pacing function (Eq. 10): g(i) = min(start * alpha^(i/step), 1) * N.
  double starting_percent = 0.04;
  double alpha = 1.9;
  std::int64_t step = 50000;
};

struct JobSpec {
  JobId id = kInvalidJob;
  std::string name;
  std::string model;
  int num_gpus = 1;
  DatasetId dataset = kInvalidDataset;

  // f*: computation throughput in bytes/s of training data consumed when IO is
  // not the bottleneck (per Algorithm 1 this is `perf` of the base scheduler).
  BytesPerSec ideal_io = 0;

  // Total training data the job consumes over its lifetime
  // (numSteps x stepDataSize in Eq. 6); ideal duration = total_bytes / ideal_io.
  Bytes total_bytes = 0;

  // Data consumed per training step across all of the job's GPUs; the fine
  // engine pipelines IO and compute at this granularity (Fig. 5).
  Bytes step_data_size = 0;

  Seconds submit_time = 0;

  // Owning tenant for per-tenant report breakdowns; empty means untagged
  // (single-tenant traces stay exactly as before).
  std::string tenant;

  // Per-GPU-type speed multipliers, keyed by gpu-type name.  A job placed on
  // type T computes at `T.speed * SpeedFactor(T.name)` times ideal_io.
  // Unlisted types default to 1.0, so a uniform fleet (no types declared, or
  // all speeds 1) is bit-identical to the homogeneous model.
  std::vector<std::pair<std::string, double>> speed_factors;

  // Jobs violating SiloD's assumptions fall into the irregular partition (§6).
  bool regular = true;

  bool curriculum = false;
  CurriculumParams curriculum_params;

  double SpeedFactor(const std::string& gpu_type) const {
    for (const auto& [name, factor] : speed_factors) {
      if (name == gpu_type) return factor;
    }
    return 1.0;
  }

  Seconds IdealDuration() const { return static_cast<double>(total_bytes) / ideal_io; }
  double NumEpochs(const Dataset& d) const {
    return static_cast<double>(total_bytes) / static_cast<double>(d.size);
  }
};

// Convenience factory: builds a JobSpec for `model` running on `num_gpus` GPUs
// against `dataset`, training for `ideal_duration` at the profiled speed.
JobSpec MakeJob(JobId id, const ModelZoo& zoo, const std::string& model, int num_gpus,
                DatasetId dataset, Seconds ideal_duration, Seconds submit_time,
                double gpu_speed_scale = 1.0);

// Remote IO limits used across the paper's experiments (Table 5), scaled down
// from the ~1900-V100 production cluster's 120 Gbps by cluster size.
BytesPerSec RemoteIoLimitForCluster(int num_gpus);

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_JOB_H_
