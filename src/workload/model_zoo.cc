#include "src/workload/model_zoo.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

ModelZoo::ModelZoo() {
  // step_data_size is batch_size x mean item size; image models use a batch of
  // 32 items of ~112 KB (ImageNet-1k: 143 GB / 1.28 M images), VLAD uses video
  // frames, BERT streams large text shards per step.
  models_ = {
      {"ResNet-50", MBps(114), MB(3.6), /*profiled_in_paper=*/true},
      {"ResNet-152", MBps(43), MB(3.6), /*profiled_in_paper=*/true},
      {"EfficientNetB1", MBps(69), MB(3.6), /*profiled_in_paper=*/true},
      {"VLAD", MBps(10), MB(8.0), /*profiled_in_paper=*/true},
      {"BERT", MBps(2), MB(1.0), /*profiled_in_paper=*/true},
      {"AlexNet", MBps(380), MB(3.6), /*profiled_in_paper=*/false},
      {"EfficientNetB0", MBps(95), MB(3.6), /*profiled_in_paper=*/false},
      {"InceptionV3", MBps(85), MB(3.6), /*profiled_in_paper=*/false},
  };
  // Table 4 of the paper.
  datasets_ = {
      {"ImageNet-22k", TB(1.36)}, {"OpenImages", GB(660)},   {"ImageNet-1k", GB(143)},
      {"Youtube-8M", TB(1.46)},   {"WebSearch", TB(20.9)},
  };
}

const ModelProfile& ModelZoo::GetModel(const std::string& name) const {
  auto it = std::find_if(models_.begin(), models_.end(),
                         [&](const ModelProfile& m) { return m.model == name; });
  SILOD_CHECK(it != models_.end()) << "unknown model: " << name;
  return *it;
}

const NamedDataset& ModelZoo::GetDataset(const std::string& name) const {
  auto it = std::find_if(datasets_.begin(), datasets_.end(),
                         [&](const NamedDataset& d) { return d.name == name; });
  SILOD_CHECK(it != datasets_.end()) << "unknown dataset: " << name;
  return *it;
}

std::vector<WorkloadEntry> ModelZoo::Figure6Jobs() const {
  // Fig. 6 lists 11 (model, dataset) pairs with cache efficiency f*/d from
  // 0.8 MB/s/GB (ResNet-50 / ImageNet-1k) down to 9.5e-5 (BERT / WebSearch).
  const char* pairs[][2] = {
      {"ResNet-50", "ImageNet-1k"},      {"EfficientNetB1", "ImageNet-1k"},
      {"ResNet-152", "ImageNet-1k"},     {"ResNet-50", "OpenImages"},
      {"EfficientNetB1", "OpenImages"},  {"ResNet-50", "ImageNet-22k"},
      {"ResNet-152", "OpenImages"},      {"EfficientNetB1", "ImageNet-22k"},
      {"ResNet-152", "ImageNet-22k"},    {"VLAD", "Youtube-8M"},
      {"BERT", "WebSearch"},
  };
  std::vector<WorkloadEntry> jobs;
  for (const auto& p : pairs) {
    jobs.push_back({GetModel(p[0]), GetDataset(p[1])});
  }
  return jobs;
}

BytesPerSec ModelZoo::ScaledIdealIo(const ModelProfile& model, int num_gpus,
                                    double gpu_speed_scale) {
  SILOD_CHECK(num_gpus >= 1) << "num_gpus must be >= 1";
  SILOD_CHECK(gpu_speed_scale > 0) << "gpu_speed_scale must be positive";
  // Per-GPU efficiency drops ~0.37% per additional worker (all-reduce cost);
  // 8 GPUs -> 97.4% efficiency -> 7.79x, matching Table 2's 888/114 ratio.
  const double efficiency = std::max(0.85, 1.0 - 0.0037 * (num_gpus - 1));
  return model.ideal_io_per_gpu * num_gpus * efficiency * gpu_speed_scale;
}

}  // namespace silod
