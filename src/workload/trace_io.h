// Trace serialization: a line-oriented CSV format so workloads can be saved,
// edited, versioned and replayed (and so external trace generators can feed
// the simulator).  One row per job; datasets are identified by name and
// deduplicated on import, so sharing round-trips.
//
// Columns:
//   id,name,model,gpus,dataset,dataset_bytes,block_bytes,ideal_io_bps,
//   total_bytes,submit_seconds,regular,curriculum,pacing_start,pacing_alpha,
//   pacing_step
#ifndef SILOD_SRC_WORKLOAD_TRACE_IO_H_
#define SILOD_SRC_WORKLOAD_TRACE_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/workload/trace_gen.h"

namespace silod {

// Serializes the trace (header + one row per job).
std::string TraceToCsv(const Trace& trace);

// Parses a trace; jobs get dense ids in row order.  Rows referring to the
// same dataset name share one catalog entry (its size/block size must agree).
Result<Trace> TraceFromCsv(const std::string& csv);

// File convenience wrappers.
Status WriteTraceFile(const Trace& trace, const std::string& path);
Result<Trace> ReadTraceFile(const std::string& path);

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_TRACE_IO_H_
