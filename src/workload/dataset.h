// Datasets as seen by the cache subsystem.
//
// SiloD manages cache at dataset granularity (§6): cache is allocated to
// datasets, multiple jobs can share a dataset's cached items, and uniform
// caching assumes every item of a dataset is accessed exactly once per epoch.
// For simulation we treat a dataset as `num_blocks` equally sized blocks; a
// "block" stands for a shard of training items (e.g. a TFRecord/tar shard),
// which is also how real DL storage layers batch small files (DIESEL, AIStore).
#ifndef SILOD_SRC_WORKLOAD_DATASET_H_
#define SILOD_SRC_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace silod {

using DatasetId = std::int32_t;
inline constexpr DatasetId kInvalidDataset = -1;

struct Dataset {
  DatasetId id = kInvalidDataset;
  std::string name;
  Bytes size = 0;
  Bytes block_size = 0;
  std::int64_t num_blocks = 0;

  // Actual bytes of the final (possibly short) block.
  Bytes BlockBytes(std::int64_t block) const;
};

// Builds a dataset of `size` bytes divided into blocks of at most `block_size`.
Dataset MakeDataset(DatasetId id, std::string name, Bytes size, Bytes block_size);

// Registry assigning dense DatasetIds; owned by the workload/trace layer.
class DatasetCatalog {
 public:
  // Adds a dataset and returns its id.  Names need not be unique (synthetic
  // per-job datasets reuse the base name).
  DatasetId Add(std::string name, Bytes size, Bytes block_size);

  const Dataset& Get(DatasetId id) const;
  std::size_t size() const { return datasets_.size(); }
  const std::vector<Dataset>& all() const { return datasets_; }

 private:
  std::vector<Dataset> datasets_;
};

// Default shard size used across simulations.  64 MB keeps even a 20.9 TB web
// search corpus at ~327k blocks, small enough for item-level simulation.
inline constexpr Bytes kDefaultBlockSize = MB(64);

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_DATASET_H_
