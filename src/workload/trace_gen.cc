#include "src/workload/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/logging.h"

namespace silod {

int Trace::TotalGpuDemand() const {
  int total = 0;
  for (const auto& j : jobs) {
    total += j.num_gpus;
  }
  return total;
}

TraceGenerator::TraceGenerator(TraceOptions options) : options_(options) {
  SILOD_CHECK(options_.num_jobs > 0) << "trace needs at least one job";
  SILOD_CHECK(options_.share_fraction >= 0 && options_.share_fraction <= 1)
      << "share_fraction must be a fraction";
}

const std::vector<TraceGenerator::MixEntry>& TraceGenerator::DefaultMix() {
  // Weighted toward the image-classification jobs that dominate the clusters
  // the paper studies; language and video jobs form the low-cache-efficiency
  // tail of Fig. 6.
  static const std::vector<MixEntry> kMix = {
      {"ResNet-50", "ImageNet-1k", 0.18},  {"EfficientNetB1", "ImageNet-1k", 0.10},
      {"ResNet-152", "ImageNet-1k", 0.08}, {"ResNet-50", "OpenImages", 0.10},
      {"EfficientNetB1", "OpenImages", 0.08}, {"ResNet-50", "ImageNet-22k", 0.12},
      {"ResNet-152", "OpenImages", 0.06},  {"EfficientNetB1", "ImageNet-22k", 0.08},
      {"ResNet-152", "ImageNet-22k", 0.06}, {"VLAD", "Youtube-8M", 0.08},
      {"BERT", "WebSearch", 0.06},         {"AlexNet", "ImageNet-1k", 0.04},
      {"InceptionV3", "OpenImages", 0.04}, {"EfficientNetB0", "ImageNet-1k", 0.02},
  };
  return kMix;
}

Trace TraceGenerator::Generate() const {
  Rng rng(options_.seed);
  const ModelZoo zoo;
  Trace trace;

  // Canonical shared dataset instances, created lazily.
  std::map<std::string, DatasetId> shared_ids;

  const auto& mix = DefaultMix();
  double total_weight = 0;
  for (const auto& e : mix) {
    total_weight += e.weight;
  }

  Seconds clock = 0;
  for (int i = 0; i < options_.num_jobs; ++i) {
    // Arrival process.
    if (options_.mean_interarrival > 0 && i > 0) {
      clock += rng.Exponential(1.0 / options_.mean_interarrival);
    }

    // (model, dataset) mixture draw.
    double pick = rng.NextDouble() * total_weight;
    const MixEntry* entry = &mix.back();
    for (const auto& e : mix) {
      pick -= e.weight;
      if (pick <= 0) {
        entry = &e;
        break;
      }
    }

    // GPU demand: mostly single-GPU with a distributed tail (Philly-like).
    const double g = rng.NextDouble();
    int num_gpus = 1;
    if (g > 0.70 && g <= 0.80) {
      num_gpus = 2;
    } else if (g > 0.80 && g <= 0.92) {
      num_gpus = 4;
    } else if (g > 0.92) {
      num_gpus = 8;
    }

    // Heavy-tailed ideal duration.
    const double mu = std::log(options_.median_duration);
    Seconds duration = rng.LogNormal(mu, options_.duration_sigma);
    duration = std::clamp(duration, options_.min_duration, options_.max_duration);

    // Dataset: shared canonical instance or fresh synthetic copy.
    const NamedDataset& named = zoo.GetDataset(entry->dataset);
    DatasetId dataset_id;
    if (options_.share_fraction > 0 && rng.NextDouble() < options_.share_fraction) {
      auto it = shared_ids.find(named.name);
      if (it == shared_ids.end()) {
        dataset_id = trace.catalog.Add(named.name + "-shared", named.size, options_.block_size);
        shared_ids.emplace(named.name, dataset_id);
      } else {
        dataset_id = it->second;
      }
    } else {
      dataset_id = trace.catalog.Add(named.name + "#" + std::to_string(i), named.size,
                                     options_.block_size);
    }

    trace.jobs.push_back(MakeJob(static_cast<JobId>(i), zoo, entry->model, num_gpus, dataset_id,
                                 duration, clock, options_.gpu_speed_scale));
  }
  return trace;
}

Trace MakeMicrobenchmarkTrace(Bytes block_size) {
  const ModelZoo zoo;
  Trace trace;
  // Four distinct 1.3 TB synthesized image datasets + the 20.9 TB web corpus.
  const DatasetId img0 = trace.catalog.Add("synth-images-0", TB(1.3), block_size);
  const DatasetId img1 = trace.catalog.Add("synth-images-1", TB(1.3), block_size);
  const DatasetId img2 = trace.catalog.Add("synth-images-2", TB(1.3), block_size);
  const DatasetId img3 = trace.catalog.Add("synth-images-3", TB(1.3), block_size);
  const DatasetId web = trace.catalog.Add("WebSearch", TB(20.9), block_size);

  // ~3,500 minutes at ideal speed: 13 epochs of 1.3 TB at 114 MB/s for the
  // ResNet-50s, 10 epochs at 69 MB/s for the EfficientNetB1s, 0.07 epochs of
  // 20.9 TB for the 4-GPU BERT job (§7.1.1).
  auto add = [&](const char* model, int gpus, DatasetId d, double epochs, Bytes dataset_size) {
    const double total = epochs * static_cast<double>(dataset_size);
    JobSpec job = MakeJob(static_cast<JobId>(trace.jobs.size()), zoo, model, gpus, d,
                          /*ideal_duration=*/1.0, /*submit_time=*/0);
    job.total_bytes = static_cast<Bytes>(total);
    trace.jobs.push_back(job);
  };
  add("ResNet-50", 1, img0, 13, TB(1.3));
  add("ResNet-50", 1, img1, 13, TB(1.3));
  add("EfficientNetB1", 1, img2, 10, TB(1.3));
  add("EfficientNetB1", 1, img3, 10, TB(1.3));
  add("BERT", 4, web, 0.07, TB(20.9));
  return trace;
}

}  // namespace silod
