#include "src/workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace silod {
namespace {

constexpr const char* kHeader =
    "id,name,model,gpus,dataset,dataset_bytes,block_bytes,ideal_io_bps,total_bytes,"
    "submit_seconds,regular,curriculum,pacing_start,pacing_alpha,pacing_step";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

std::string TraceToCsv(const Trace& trace) {
  std::string out = std::string(kHeader) + "\n";
  char buf[512];
  for (const JobSpec& job : trace.jobs) {
    const Dataset& d = trace.catalog.Get(job.dataset);
    std::snprintf(buf, sizeof(buf),
                  "%d,%s,%s,%d,%s,%" PRId64 ",%" PRId64 ",%.6f,%" PRId64
                  ",%.6f,%d,%d,%.6f,%.6f,%" PRId64 "\n",
                  job.id, job.name.c_str(), job.model.c_str(), job.num_gpus, d.name.c_str(),
                  d.size, d.block_size, job.ideal_io, job.total_bytes, job.submit_time,
                  job.regular ? 1 : 0, job.curriculum ? 1 : 0,
                  job.curriculum_params.starting_percent, job.curriculum_params.alpha,
                  job.curriculum_params.step);
    out += buf;
  }
  return out;
}

Result<Trace> TraceFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty trace file");
  }
  // Tolerate a trailing \r from Windows editors.
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.pop_back();
  }
  if (line != kHeader) {
    return Status::InvalidArgument("unexpected trace header: " + line);
  }

  Trace trace;
  std::map<std::string, DatasetId> datasets;
  int row = 1;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() != 15) {
      return Status::InvalidArgument("row " + std::to_string(row) + ": expected 15 fields, got " +
                                     std::to_string(f.size()));
    }
    const std::string& dataset_name = f[4];
    const Bytes dataset_bytes = std::strtoll(f[5].c_str(), nullptr, 10);
    const Bytes block_bytes = std::strtoll(f[6].c_str(), nullptr, 10);
    if (dataset_bytes <= 0 || block_bytes <= 0) {
      return Status::InvalidArgument("row " + std::to_string(row) + ": bad dataset sizes");
    }
    DatasetId dataset_id;
    auto it = datasets.find(dataset_name);
    if (it == datasets.end()) {
      dataset_id = trace.catalog.Add(dataset_name, dataset_bytes, block_bytes);
      datasets.emplace(dataset_name, dataset_id);
    } else {
      dataset_id = it->second;
      const Dataset& existing = trace.catalog.Get(dataset_id);
      if (existing.size != dataset_bytes || existing.block_size != block_bytes) {
        return Status::InvalidArgument("row " + std::to_string(row) + ": dataset '" +
                                       dataset_name + "' redefined with different sizes");
      }
    }

    JobSpec job;
    job.id = static_cast<JobId>(trace.jobs.size());
    job.name = f[1];
    job.model = f[2];
    job.num_gpus = static_cast<int>(std::strtol(f[3].c_str(), nullptr, 10));
    job.dataset = dataset_id;
    job.ideal_io = std::strtod(f[7].c_str(), nullptr);
    job.total_bytes = std::strtoll(f[8].c_str(), nullptr, 10);
    job.submit_time = std::strtod(f[9].c_str(), nullptr);
    job.regular = f[10] == "1";
    job.curriculum = f[11] == "1";
    job.curriculum_params.starting_percent = std::strtod(f[12].c_str(), nullptr);
    job.curriculum_params.alpha = std::strtod(f[13].c_str(), nullptr);
    job.curriculum_params.step = std::strtoll(f[14].c_str(), nullptr, 10);
    job.step_data_size = MB(4) * std::max(1, job.num_gpus);
    if (job.num_gpus <= 0 || job.ideal_io <= 0 || job.total_bytes <= 0) {
      return Status::InvalidArgument("row " + std::to_string(row) + ": bad job parameters");
    }
    trace.jobs.push_back(std::move(job));
  }
  if (trace.jobs.empty()) {
    return Status::InvalidArgument("trace has no jobs");
  }
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << TraceToCsv(trace);
  return out.good() ? Status::Ok() : Status::Internal("write to " + path + " failed");
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceFromCsv(buffer.str());
}

}  // namespace silod
