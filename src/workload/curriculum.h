// Curriculum learning support (§7.4).
//
// Curriculum learning sorts data items by "difficulty" and exposes a growing
// prefix to the trainer.  The exponential pacing function of Eq. 10 determines
// the prefix size at iteration i:
//
//   g(i) = min(starting_percent * alpha^floor(i / step), 1) * N
//
// Each batch then samples uniformly from the first g(i) items; there is no
// epoch structure and easy items repeat far more often than hard ones, which
// breaks SiloD's exactly-once-per-epoch assumption.  §7.4 observes that under
// this pattern LRU no longer thrashes and matches uniform caching; the
// bench and tests reproduce that.
#ifndef SILOD_SRC_WORKLOAD_CURRICULUM_H_
#define SILOD_SRC_WORKLOAD_CURRICULUM_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/workload/job.h"

namespace silod {

class ExponentialPacing {
 public:
  // `num_items` is N, the dataset size in items (blocks for our simulator).
  ExponentialPacing(CurriculumParams params, std::int64_t num_items);

  // Number of items available at iteration i (the value of g(i)); in [1, N].
  std::int64_t AvailableItems(std::int64_t iteration) const;

  // Fraction of the dataset available at iteration i, in (0, 1].
  double AvailableFraction(std::int64_t iteration) const;

  // First iteration at which the full dataset is available, or -1 if
  // starting_percent >= 1 (available from the start).
  std::int64_t FullDataIteration() const;

  std::int64_t num_items() const { return num_items_; }

 private:
  CurriculumParams params_;
  std::int64_t num_items_;
};

// Draws the item accessed by each training iteration under curriculum
// learning: uniform over the currently available prefix.
class CurriculumSampler {
 public:
  CurriculumSampler(ExponentialPacing pacing, Rng rng);

  // Item index (in difficulty order) accessed at iteration i.  Iterations must
  // be requested in nondecreasing order only by convention; the sampler is
  // stateless w.r.t. i apart from the RNG stream.
  std::int64_t Sample(std::int64_t iteration);

  const ExponentialPacing& pacing() const { return pacing_; }

 private:
  ExponentialPacing pacing_;
  Rng rng_;
};

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_CURRICULUM_H_
