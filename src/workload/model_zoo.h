// The model zoo: profiled throughput and IO demand of the workloads evaluated
// in the paper (Table 2, Table 4, Fig. 6).
//
// The key quantity per model is f*, the "ideal IO demand": the data-loading
// throughput required to keep one V100 busy when IO is not the bottleneck
// (§4).  The paper publishes f* for five models (Fig. 6 caption):
//   ResNet-50 114 MB/s, ResNet-152 43 MB/s, EfficientNetB1 69 MB/s,
//   VLAD 10 MB/s, BERT 2 MB/s.
// AlexNet, EfficientNetB0, and InceptionV3 appear in Table 4 without a
// published f*; we estimate them from their relative single-GPU speeds
// (AlexNet is far faster than ResNet-50; B0 faster than B1; InceptionV3
// between the two ResNets) and mark them estimated.
#ifndef SILOD_SRC_WORKLOAD_MODEL_ZOO_H_
#define SILOD_SRC_WORKLOAD_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/workload/dataset.h"

namespace silod {

struct ModelProfile {
  std::string model;
  // f* on a single V100 at 1x GPU speed.
  BytesPerSec ideal_io_per_gpu = 0;
  // Data consumed per training step (mini-batch) on one GPU; sets the
  // granularity of the pipeline in Fig. 5.
  Bytes step_data_size = 0;
  bool profiled_in_paper = true;
};

struct NamedDataset {
  std::string name;
  Bytes size = 0;
};

// One of the 11 (model, dataset) combinations of Fig. 6 — or any combination
// a trace chooses to run.
struct WorkloadEntry {
  ModelProfile model;
  NamedDataset dataset;
};

class ModelZoo {
 public:
  ModelZoo();

  const ModelProfile& GetModel(const std::string& name) const;
  const NamedDataset& GetDataset(const std::string& name) const;

  const std::vector<ModelProfile>& models() const { return models_; }
  const std::vector<NamedDataset>& datasets() const { return datasets_; }

  // The 11 jobs of Fig. 6, in the paper's order of decreasing cache efficiency.
  std::vector<WorkloadEntry> Figure6Jobs() const;

  // Multi-GPU ideal IO demand.  Data-parallel scaling is slightly sublinear;
  // Table 2 gives 888 MB/s for 8xV100 ResNet-50 = 7.79x of one GPU, which the
  // linear-efficiency model below matches within 0.1%.
  static BytesPerSec ScaledIdealIo(const ModelProfile& model, int num_gpus,
                                   double gpu_speed_scale = 1.0);

 private:
  std::vector<ModelProfile> models_;
  std::vector<NamedDataset> datasets_;
};

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_MODEL_ZOO_H_
