// Trace generation following the paper's methodology (§7.1.2, §7.2):
// job durations follow the production distribution reported by Microsoft
// (Philly trace, MSR-TR-2018-13): heavy-tailed, minutes to days, mostly
// single-GPU with a distributed-training tail.  Total steps are set by
// multiplying the profiled V100 throughput by the sampled duration, exactly as
// Gandiva/Gavel construct their traces.
//
// Unless dataset sharing is enabled, every job gets its own synthetic dataset
// of its model's dataset size ("we maintain the diversity by assuming all jobs
// use different datasets", §7).  With share_fraction > 0, that fraction of
// jobs instead reads the canonical shared instance of its dataset (§7.3).
#ifndef SILOD_SRC_WORKLOAD_TRACE_GEN_H_
#define SILOD_SRC_WORKLOAD_TRACE_GEN_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"
#include "src/workload/model_zoo.h"

namespace silod {

struct TraceOptions {
  int num_jobs = 100;
  // Mean inter-arrival gap of the Poisson arrival process; 0 submits all jobs
  // at t = 0 (micro-benchmark style).
  Seconds mean_interarrival = Minutes(5);
  // Log-normal duration parameters (of the ideal, compute-bound duration).
  Seconds median_duration = Minutes(30);
  double duration_sigma = 1.6;
  Seconds min_duration = Minutes(2);
  Seconds max_duration = Days(7);
  // Fraction of jobs whose dataset is the shared canonical instance (§7.3).
  double share_fraction = 0.0;
  // Fig. 14b knob: multiplies every job's f*.
  double gpu_speed_scale = 1.0;
  Bytes block_size = kDefaultBlockSize;
  std::uint64_t seed = 1;
};

struct Trace {
  DatasetCatalog catalog;
  std::vector<JobSpec> jobs;

  // Sum of GPU demand, for sanity checks and utilization reporting.
  int TotalGpuDemand() const;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceOptions options);

  Trace Generate() const;

  // The (model, dataset, probability) mixture used to draw jobs; defaults to
  // the Fig. 6 workload weighted toward the image models that dominate
  // production clusters.
  struct MixEntry {
    const char* model;
    const char* dataset;
    double weight;
  };
  static const std::vector<MixEntry>& DefaultMix();

 private:
  TraceOptions options_;
};

// Builds the 5-job micro-benchmark trace of §7.1.1: two 1-GPU ResNet-50 and
// two 1-GPU EfficientNetB1 jobs on four distinct 1.3 TB synthetic image
// datasets, plus one 4-GPU BERT job on the 20.9 TB web search corpus, all
// submitted at t = 0 and sized to run ~3,500 minutes at ideal throughput.
Trace MakeMicrobenchmarkTrace(Bytes block_size = kDefaultBlockSize);

}  // namespace silod

#endif  // SILOD_SRC_WORKLOAD_TRACE_GEN_H_
