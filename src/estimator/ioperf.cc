#include "src/estimator/ioperf.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {
namespace {

double MissRatio(Bytes cache, Bytes dataset) {
  SILOD_CHECK(dataset > 0) << "dataset size must be positive";
  SILOD_CHECK(cache >= 0) << "cache size must be nonnegative";
  const double hit = std::min(1.0, static_cast<double>(cache) / static_cast<double>(dataset));
  return 1.0 - hit;
}

}  // namespace

BytesPerSec RemoteIoDemand(BytesPerSec f, Bytes cache, Bytes dataset) {
  SILOD_CHECK(f >= 0) << "negative loading rate";
  return f * MissRatio(cache, dataset);
}

BytesPerSec IoThroughput(BytesPerSec remote_io, Bytes cache, Bytes dataset) {
  SILOD_CHECK(remote_io >= 0) << "negative remote IO allocation";
  const double miss = MissRatio(cache, dataset);
  if (miss <= 0.0) {
    return kUnlimitedRate;
  }
  return remote_io / miss;
}

BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, BytesPerSec remote_io, Bytes cache,
                                Bytes dataset) {
  SILOD_CHECK(ideal >= 0) << "negative ideal throughput";
  return std::min(ideal, IoThroughput(remote_io, cache, dataset));
}

double CacheEfficiency(BytesPerSec ideal, Bytes dataset) {
  SILOD_CHECK(dataset > 0) << "dataset size must be positive";
  SILOD_CHECK(ideal >= 0) << "negative ideal throughput";
  return ideal / static_cast<double>(dataset);
}

double CacheEfficiencyMBpsPerGB(BytesPerSec ideal, Bytes dataset) {
  return ToMBps(ideal) / ToGB(dataset);
}

BytesPerSec RequiredRemoteIo(BytesPerSec target, Bytes cache, Bytes dataset) {
  SILOD_CHECK(target >= 0) << "negative target throughput";
  return target * MissRatio(cache, dataset);
}

BytesPerSec RemoteIoDemand(BytesPerSec ideal, double speed, Bytes cache, Bytes dataset) {
  return RemoteIoDemand(EffectiveIdeal(ideal, speed), cache, dataset);
}

BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, double speed, BytesPerSec remote_io,
                                Bytes cache, Bytes dataset) {
  return SiloDPerfThroughput(EffectiveIdeal(ideal, speed), remote_io, cache, dataset);
}

double CacheEfficiency(BytesPerSec ideal, double speed, Bytes dataset) {
  return CacheEfficiency(EffectiveIdeal(ideal, speed), dataset);
}

void EstimatorBatch::Clear() {
  ideal_.clear();
  cache_.clear();
  dataset_.clear();
}

void EstimatorBatch::Reserve(std::size_t n) {
  ideal_.reserve(n);
  cache_.reserve(n);
  dataset_.reserve(n);
}

std::size_t EstimatorBatch::Add(BytesPerSec ideal, Bytes cache, Bytes dataset) {
  ideal_.push_back(ideal);
  cache_.push_back(cache);
  dataset_.push_back(dataset);
  return ideal_.size() - 1;
}

void EstimatorBatch::RemoteIoDemands(std::vector<BytesPerSec>* out) const {
  out->resize(size());
  for (std::size_t i = 0; i < size(); ++i) {
    (*out)[i] = RemoteIoDemand(ideal_[i], cache_[i], dataset_[i]);
  }
}

BytesPerSec EstimatorBatch::ThrottledDemand(double rho, const std::vector<BytesPerSec>& base,
                                            BytesPerSec cap, std::size_t i) const {
  SILOD_CHECK(base.size() == size()) << "base size mismatch";
  const BytesPerSec target = std::min(rho * base[i], ideal_[i]);
  return std::min(RemoteIoDemand(target, cache_[i], dataset_[i]), cap);
}

BytesPerSec EstimatorBatch::TotalThrottledDemand(double rho, const std::vector<BytesPerSec>& base,
                                                 BytesPerSec cap) const {
  BytesPerSec sum = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    sum += ThrottledDemand(rho, base, cap, i);
  }
  return sum;
}

void EstimatorBatch::Throughputs(const std::vector<BytesPerSec>& remote_io,
                                 std::vector<BytesPerSec>* out) const {
  SILOD_CHECK(remote_io.size() == size()) << "remote_io size mismatch";
  out->resize(size());
  for (std::size_t i = 0; i < size(); ++i) {
    (*out)[i] = SiloDPerfThroughput(ideal_[i], remote_io[i], cache_[i], dataset_[i]);
  }
}

}  // namespace silod
