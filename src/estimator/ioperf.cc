#include "src/estimator/ioperf.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {
namespace {

double MissRatio(Bytes cache, Bytes dataset) {
  SILOD_CHECK(dataset > 0) << "dataset size must be positive";
  SILOD_CHECK(cache >= 0) << "cache size must be nonnegative";
  const double hit = std::min(1.0, static_cast<double>(cache) / static_cast<double>(dataset));
  return 1.0 - hit;
}

}  // namespace

BytesPerSec RemoteIoDemand(BytesPerSec f, Bytes cache, Bytes dataset) {
  SILOD_CHECK(f >= 0) << "negative loading rate";
  return f * MissRatio(cache, dataset);
}

BytesPerSec IoThroughput(BytesPerSec remote_io, Bytes cache, Bytes dataset) {
  SILOD_CHECK(remote_io >= 0) << "negative remote IO allocation";
  const double miss = MissRatio(cache, dataset);
  if (miss <= 0.0) {
    return kUnlimitedRate;
  }
  return remote_io / miss;
}

BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, BytesPerSec remote_io, Bytes cache,
                                Bytes dataset) {
  SILOD_CHECK(ideal >= 0) << "negative ideal throughput";
  return std::min(ideal, IoThroughput(remote_io, cache, dataset));
}

double CacheEfficiency(BytesPerSec ideal, Bytes dataset) {
  SILOD_CHECK(dataset > 0) << "dataset size must be positive";
  SILOD_CHECK(ideal >= 0) << "negative ideal throughput";
  return ideal / static_cast<double>(dataset);
}

double CacheEfficiencyMBpsPerGB(BytesPerSec ideal, Bytes dataset) {
  return ToMBps(ideal) / ToGB(dataset);
}

BytesPerSec RequiredRemoteIo(BytesPerSec target, Bytes cache, Bytes dataset) {
  SILOD_CHECK(target >= 0) << "negative target throughput";
  return target * MissRatio(cache, dataset);
}

}  // namespace silod
