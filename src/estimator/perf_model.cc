#include "src/estimator/perf_model.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/estimator/ioperf.h"

namespace silod {

BytesPerSec ComputeEstimator::Estimate(const JobSpec& job, const ResourceVector& r) const {
  if (r.gpus <= 0) {
    return 0;
  }
  // Jobs are gang-scheduled: they run with their full GPU demand or not at
  // all, so holding any GPUs means the profiled f* applies.
  SILOD_CHECK(r.gpus == job.num_gpus)
      << "gang scheduling violated: job wants " << job.num_gpus << ", got " << r.gpus;
  return job.ideal_io;
}

SiloDEstimator::SiloDEstimator(std::shared_ptr<const PerfEstimator> base,
                               const DatasetCatalog* catalog)
    : base_(std::move(base)), catalog_(catalog) {
  SILOD_CHECK(base_ != nullptr) << "base estimator required";
  SILOD_CHECK(catalog_ != nullptr) << "dataset catalog required";
}

BytesPerSec SiloDEstimator::Estimate(const JobSpec& job, const ResourceVector& r) const {
  const BytesPerSec compute = base_->Estimate(job, r);
  if (compute <= 0) {
    return 0;
  }
  const Dataset& dataset = catalog_->Get(job.dataset);
  return std::min(compute, IoThroughput(r.remote_io, r.cache, dataset.size));
}

std::string SiloDEstimator::name() const { return "silod(" + base_->name() + ")"; }

}  // namespace silod
