// Profiling models.
//
// Two profiling regimes matter in the paper:
//   - SiloD profiles each model's ideal throughput f* OFFLINE; it is highly
//     stable ("a job's ideal training speed and its dataset size ... can be
//     obtained robustly offline", §7.1.2), so SiloD's allocation inputs are
//     reliable.
//   - Quiver estimates a dataset's caching benefit ONLINE from observed
//     latencies, which fluctuates with the very contention the allocation is
//     trying to fix ("not stable when the remote IO fluctuates", §7.1.2),
//     causing unstable caching priorities and wrong evictions.
//
// OfflineProfiler adds small bounded noise to f*; OnlineBenefitProfiler adds
// larger round-to-round noise to cache-benefit estimates, giving the Quiver
// baseline its paper-observed instability.
#ifndef SILOD_SRC_ESTIMATOR_PROFILER_H_
#define SILOD_SRC_ESTIMATOR_PROFILER_H_

#include <map>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workload/job.h"

namespace silod {

class OfflineProfiler {
 public:
  // `relative_error` is the maximum fractional error of a profiled f*
  // (e.g. 0.02 for +-2%).  Each job's error is fixed once (profiling happens
  // once, offline).
  OfflineProfiler(double relative_error, std::uint64_t seed);

  BytesPerSec ProfiledIdealIo(const JobSpec& job);

 private:
  double relative_error_;
  Rng rng_;
  std::map<JobId, double> factor_;
};

class OnlineBenefitProfiler {
 public:
  // `relative_noise` is the per-measurement fractional noise (Quiver's online
  // latency profiling); re-drawn on every call, so rankings churn.
  OnlineBenefitProfiler(double relative_noise, std::uint64_t seed);

  // Noisy estimate of a dataset's benefit-per-byte given its true value.
  double MeasureBenefit(double true_benefit);

 private:
  double relative_noise_;
  Rng rng_;
};

}  // namespace silod

#endif  // SILOD_SRC_ESTIMATOR_PROFILER_H_
