// IOPerf: the closed-form analytic model of §4.
//
// For a training job with ideal (compute-bound) throughput f*, dataset size d,
// cache allocation c and remote-IO allocation b:
//
//   Eq. 2:  remote IO demand      b(f)   = f * (1 - c/d)
//   Eq. 3:  IO throughput         IOPerf = b / (1 - c/d)
//   Eq. 4:  end-to-end throughput SiloDPerf = min(f*, b / (1 - c/d))
//   Eq. 5:  cache efficiency      -db/dc = f* / d
//
// All throughputs are bytes of training data per second.  When c >= d the
// dataset is fully cached and IO throughput is unbounded (the local fabric is
// modelled separately); SiloDPerf then equals f*.
//
// Heterogeneous fleets enter the model through one substitution: a job held
// on a GPU type with relative speed s computes at an *effective* ideal rate
// f*·s, and every closed form above holds with f* replaced by f*·s (the
// cache/IO terms are GPU-agnostic).  The speed-taking overloads below make
// that substitution explicit; at s = 1 the multiply is an exact no-op
// (IEEE-754: x * 1.0 == x), so uniform fleets stay bit-identical.
#ifndef SILOD_SRC_ESTIMATOR_IOPERF_H_
#define SILOD_SRC_ESTIMATOR_IOPERF_H_

#include <cstddef>
#include <vector>

#include "src/common/units.h"

namespace silod {

// Eq. 2: remote IO consumed when loading at rate f with cache c over dataset d.
BytesPerSec RemoteIoDemand(BytesPerSec f, Bytes cache, Bytes dataset);

// Eq. 3: data-loading throughput achievable with remote-IO allocation b and
// cache c over dataset d.  Returns kUnlimitedRate when c >= d.
BytesPerSec IoThroughput(BytesPerSec remote_io, Bytes cache, Bytes dataset);

// Eq. 4: end-to-end training throughput.
BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, BytesPerSec remote_io, Bytes cache,
                                Bytes dataset);

// Eq. 5: remote IO saved per byte of cache (units 1/s).  Multiply by
// kGB/kMB via CacheEfficiencyMBpsPerGB for the Fig. 6 presentation.
double CacheEfficiency(BytesPerSec ideal, Bytes dataset);

// Fig. 6 units: MB/s of remote IO saved per GB of cache.
double CacheEfficiencyMBpsPerGB(BytesPerSec ideal, Bytes dataset);

// Minimum remote-IO allocation needed to sustain end-to-end throughput
// `target` (<= ideal) with cache c over dataset d.  Inverse of Eq. 3.
BytesPerSec RequiredRemoteIo(BytesPerSec target, Bytes cache, Bytes dataset);

// The effective ideal rate of a job with uniform ideal f* held on a GPU type
// with relative speed `speed` — the f*·s substitution above, in one place.
inline BytesPerSec EffectiveIdeal(BytesPerSec ideal, double speed) { return ideal * speed; }

// Eq. 2 / Eq. 4 / Eq. 5 at the effective ideal rate f*·s.
BytesPerSec RemoteIoDemand(BytesPerSec ideal, double speed, Bytes cache, Bytes dataset);
BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, double speed, BytesPerSec remote_io,
                                Bytes cache, Bytes dataset);
double CacheEfficiency(BytesPerSec ideal, double speed, Bytes dataset);

// Batched evaluation of the Eq. 2-4 closed forms over a set of jobs, stored
// as parallel arrays (ideal rate, cache bytes, dataset size per entry).
//
// A reschedule over N running jobs evaluates the same formulas N times per
// bisection step; filling one batch and sweeping it keeps the hot loop over
// dense arrays instead of re-walking job views and catalog lookups per call.
// Every method delegates entry-wise to the scalar functions above, in index
// order, so results (including floating-point summation order) are
// bit-identical to the equivalent scalar loop.
class EstimatorBatch {
 public:
  void Clear();
  void Reserve(std::size_t n);
  // Appends one job's operating point; returns its index.
  std::size_t Add(BytesPerSec ideal, Bytes cache, Bytes dataset);
  // Same, at the effective ideal rate f*·s of a job held on a GPU type with
  // relative speed `speed` (exact no-op at speed 1).
  std::size_t Add(BytesPerSec ideal, double speed, Bytes cache, Bytes dataset) {
    return Add(EffectiveIdeal(ideal, speed), cache, dataset);
  }

  std::size_t size() const { return ideal_.size(); }
  bool empty() const { return ideal_.empty(); }
  BytesPerSec ideal(std::size_t i) const { return ideal_[i]; }
  Bytes cache(std::size_t i) const { return cache_[i]; }
  Bytes dataset(std::size_t i) const { return dataset_[i]; }

  // Eq. 2 at each entry's ideal rate (the entry's maximum useful remote IO,
  // before any per-job cap).
  void RemoteIoDemands(std::vector<BytesPerSec>* out) const;

  // Remote IO entry i needs to run at min(rho * base[i], ideal[i]), capped at
  // `cap` — one fairness-bisection probe.  `base` must have size() entries.
  BytesPerSec ThrottledDemand(double rho, const std::vector<BytesPerSec>& base, BytesPerSec cap,
                              std::size_t i) const;
  // Sum of ThrottledDemand over all entries, accumulated in index order.
  BytesPerSec TotalThrottledDemand(double rho, const std::vector<BytesPerSec>& base,
                                   BytesPerSec cap) const;

  // Eq. 4 at each entry's granted remote IO.
  void Throughputs(const std::vector<BytesPerSec>& remote_io,
                   std::vector<BytesPerSec>* out) const;

 private:
  std::vector<BytesPerSec> ideal_;
  std::vector<Bytes> cache_;
  std::vector<Bytes> dataset_;
};

}  // namespace silod

#endif  // SILOD_SRC_ESTIMATOR_IOPERF_H_
