// IOPerf: the closed-form analytic model of §4.
//
// For a training job with ideal (compute-bound) throughput f*, dataset size d,
// cache allocation c and remote-IO allocation b:
//
//   Eq. 2:  remote IO demand      b(f)   = f * (1 - c/d)
//   Eq. 3:  IO throughput         IOPerf = b / (1 - c/d)
//   Eq. 4:  end-to-end throughput SiloDPerf = min(f*, b / (1 - c/d))
//   Eq. 5:  cache efficiency      -db/dc = f* / d
//
// All throughputs are bytes of training data per second.  When c >= d the
// dataset is fully cached and IO throughput is unbounded (the local fabric is
// modelled separately); SiloDPerf then equals f*.
#ifndef SILOD_SRC_ESTIMATOR_IOPERF_H_
#define SILOD_SRC_ESTIMATOR_IOPERF_H_

#include "src/common/units.h"

namespace silod {

// Eq. 2: remote IO consumed when loading at rate f with cache c over dataset d.
BytesPerSec RemoteIoDemand(BytesPerSec f, Bytes cache, Bytes dataset);

// Eq. 3: data-loading throughput achievable with remote-IO allocation b and
// cache c over dataset d.  Returns kUnlimitedRate when c >= d.
BytesPerSec IoThroughput(BytesPerSec remote_io, Bytes cache, Bytes dataset);

// Eq. 4: end-to-end training throughput.
BytesPerSec SiloDPerfThroughput(BytesPerSec ideal, BytesPerSec remote_io, Bytes cache,
                                Bytes dataset);

// Eq. 5: remote IO saved per byte of cache (units 1/s).  Multiply by
// kGB/kMB via CacheEfficiencyMBpsPerGB for the Fig. 6 presentation.
double CacheEfficiency(BytesPerSec ideal, Bytes dataset);

// Fig. 6 units: MB/s of remote IO saved per GB of cache.
double CacheEfficiencyMBpsPerGB(BytesPerSec ideal, Bytes dataset);

// Minimum remote-IO allocation needed to sustain end-to-end throughput
// `target` (<= ideal) with cache c over dataset d.  Inverse of Eq. 3.
BytesPerSec RequiredRemoteIo(BytesPerSec target, Bytes cache, Bytes dataset);

}  // namespace silod

#endif  // SILOD_SRC_ESTIMATOR_IOPERF_H_
