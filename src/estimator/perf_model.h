// Performance estimators (Algorithm 1).
//
// Every performance-aware DL scheduler consults an estimator perf(j, R) that
// predicts job j's throughput under resource vector R.  Existing schedulers'
// estimators only see compute (ComputeEstimator returns the profiled f*).
// SiloD wraps any such estimator:
//
//   SiloDPerf(j, R) = min(perf(j, R), IOPerf(j, R))          (Alg. 1, line 5)
//
// so policies transparently account for the cache and remote-IO dimensions
// of R while preserving their original objectives.
#ifndef SILOD_SRC_ESTIMATOR_PERF_MODEL_H_
#define SILOD_SRC_ESTIMATOR_PERF_MODEL_H_

#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

// The resource vector R of Algorithm 1: compute plus the two storage
// dimensions SiloD promotes to first-class resources.
struct ResourceVector {
  int gpus = 0;
  Bytes cache = 0;
  BytesPerSec remote_io = 0;
};

class PerfEstimator {
 public:
  virtual ~PerfEstimator() = default;

  // Predicted training throughput (bytes of data consumed per second) of
  // `job` under allocation `r`.  Returns 0 when the job holds no GPUs.
  virtual BytesPerSec Estimate(const JobSpec& job, const ResourceVector& r) const = 0;

  virtual std::string name() const = 0;
};

// The compute-only estimator existing schedulers use: the profiled ideal
// throughput f*, oblivious to cache and remote IO.
class ComputeEstimator : public PerfEstimator {
 public:
  BytesPerSec Estimate(const JobSpec& job, const ResourceVector& r) const override;
  std::string name() const override { return "compute-only"; }
};

// Algorithm 1's enhanced estimator: min(base, IOPerf).  Needs dataset sizes.
class SiloDEstimator : public PerfEstimator {
 public:
  SiloDEstimator(std::shared_ptr<const PerfEstimator> base, const DatasetCatalog* catalog);

  BytesPerSec Estimate(const JobSpec& job, const ResourceVector& r) const override;
  std::string name() const override;

 private:
  std::shared_ptr<const PerfEstimator> base_;
  const DatasetCatalog* catalog_;
};

}  // namespace silod

#endif  // SILOD_SRC_ESTIMATOR_PERF_MODEL_H_
