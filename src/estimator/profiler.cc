#include "src/estimator/profiler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

OfflineProfiler::OfflineProfiler(double relative_error, std::uint64_t seed)
    : relative_error_(relative_error), rng_(seed) {
  SILOD_CHECK(relative_error >= 0 && relative_error < 1) << "bad relative error";
}

BytesPerSec OfflineProfiler::ProfiledIdealIo(const JobSpec& job) {
  auto it = factor_.find(job.id);
  if (it == factor_.end()) {
    const double f = 1.0 + rng_.Uniform(-relative_error_, relative_error_);
    it = factor_.emplace(job.id, f).first;
  }
  return job.ideal_io * it->second;
}

OnlineBenefitProfiler::OnlineBenefitProfiler(double relative_noise, std::uint64_t seed)
    : relative_noise_(relative_noise), rng_(seed) {
  SILOD_CHECK(relative_noise >= 0 && relative_noise < 1) << "bad relative noise";
}

double OnlineBenefitProfiler::MeasureBenefit(double true_benefit) {
  SILOD_CHECK(true_benefit >= 0) << "negative benefit";
  const double factor = 1.0 + rng_.Uniform(-relative_noise_, relative_noise_);
  return std::max(0.0, true_benefit * factor);
}

}  // namespace silod
