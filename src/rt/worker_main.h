// Worker-process entry point for the multi-process runtime (docs/MODEL.md
// §10).
//
// NodeManager spawns workers by re-exec'ing the host binary
// ("/proc/self/exe --silod-worker-fd=3") with an AF_UNIX socket on fd 3, so
// any binary that may act as a worker calls MaybeRunWorkerMain() at the very
// top of main().  In the common case (no --silod-worker-fd flag) it returns
// -1 immediately and the binary proceeds as itself; in a worker child it
// never returns to the caller's main — it runs the worker loop and the
// process exits with the loop's status.
#ifndef SILOD_SRC_RT_WORKER_MAIN_H_
#define SILOD_SRC_RT_WORKER_MAIN_H_

namespace silod {

// Returns -1 when argv carries no --silod-worker-fd=<fd> flag; otherwise
// runs the worker protocol loop on that fd and returns the process exit code
// (the caller should return it from main immediately).
int MaybeRunWorkerMain(int argc, char** argv);

}  // namespace silod

#endif  // SILOD_SRC_RT_WORKER_MAIN_H_
