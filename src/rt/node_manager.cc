#include "src/rt/node_manager.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/rt/wire.h"

namespace silod {

NodeManager::NodeManager(Host* host) : host_(host) {
  SILOD_CHECK(host_ != nullptr) << "NodeManager needs a host";
}

NodeManager::~NodeManager() { Stop(0); }

Status NodeManager::Spawn(const WorkerConfig& config) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return Status::FailedPrecondition("node manager is stopped");
    }
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    return Status::Internal(std::string("socketpair: ") + std::strerror(errno));
  }
  // Everything the child touches between fork and exec is prepared here:
  // only async-signal-safe calls are legal in the child of a multi-threaded
  // parent.
  static const char kExe[] = "/proc/self/exe";
  static const char kFlag[] = "--silod-worker-fd=3";
  char* const child_argv[] = {const_cast<char*>(kExe), const_cast<char*>(kFlag), nullptr};

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return Status::Internal(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child.  dup2 clears CLOEXEC on the copy, so fd 3 survives the exec.
    if (::dup2(sv[1], 3) < 0) {
      ::_exit(126);
    }
    ::execv(kExe, child_argv);
    ::_exit(127);
  }
  ::close(sv[1]);

  auto worker = std::make_unique<Worker>();
  worker->config = config;
  worker->pid = pid;
  worker->fd = sv[0];
  Worker* raw = worker.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers_.push_back(std::move(worker));
  }
  raw->handler = std::thread(&NodeManager::HandlerLoop, this, raw);
  return Status::Ok();
}

bool NodeManager::Kill(JobId job) {
  std::lock_guard<std::mutex> lock(mu_);
  // Latest entry wins: a respawned job has several retired workers.
  for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
    Worker* worker = it->get();
    if (worker->config.job != job) {
      continue;
    }
    if (worker->state != WorkerStateKind::kRunning) {
      return false;
    }
    // Marked before the signal so the handler's exit classification (under
    // this same mutex) always sees the kill as intentional.
    worker->state = WorkerStateKind::kKilled;
    ::kill(worker->pid, SIGKILL);
    return true;
  }
  return false;
}

bool NodeManager::WaitIdle(JobId job, Seconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout);
  return exited_cv_.wait_until(lock, deadline, [&] {
    for (const auto& worker : workers_) {
      if (worker->config.job == job && worker->state != WorkerStateKind::kExited) {
        return false;
      }
    }
    return true;
  });
}

void NodeManager::Stop(Seconds grace) {
  std::vector<Worker*> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    for (const auto& worker : workers_) {
      if (worker->state == WorkerStateKind::kRunning) {
        worker->state = WorkerStateKind::kStopping;
        live.push_back(worker.get());
      }
    }
  }
  for (Worker* worker : live) {
    // Best effort: a dead peer just means the handler is already unwinding.
    WriteFrame(worker->fd, WireType::kStop, {}).ok();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::duration<double>(grace);
    exited_cv_.wait_until(lock, deadline, [&] {
      for (const Worker* worker : live) {
        if (worker->state != WorkerStateKind::kExited) {
          return false;
        }
      }
      return true;
    });
    for (Worker* worker : live) {
      if (worker->state != WorkerStateKind::kExited) {
        ::kill(worker->pid, SIGKILL);  // Straggler past the grace period.
      }
    }
  }
  for (const auto& worker : workers_) {
    if (worker->handler.joinable()) {
      worker->handler.join();
    }
  }
}

int NodeManager::live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const auto& worker : workers_) {
    if (worker->state == WorkerStateKind::kRunning) {
      ++live;
    }
  }
  return live;
}

void NodeManager::HandlerLoop(Worker* worker) {
  const JobId job = worker->config.job;
  const std::uint64_t incarnation = worker->config.incarnation;

  // First frame must be the worker's hello; then hand it its assignment.
  bool protocol_ok = false;
  if (auto hello = ReadFrame(worker->fd); hello.ok() && hello->type == WireType::kHello) {
    const WorkerConfig& c = worker->config;
    const Status st =
        WriteFrame(worker->fd, WireType::kAssign,
                   {static_cast<std::uint64_t>(c.job), static_cast<std::uint64_t>(c.blocks_total),
                    static_cast<std::uint64_t>(c.resume_done),
                    static_cast<std::uint64_t>(c.resume_fetched),
                    static_cast<std::uint64_t>(c.num_blocks),
                    static_cast<std::uint64_t>(c.pipeline_depth), c.rng_seed,
                    WireMessage::FromDouble(c.block_compute),
                    WireMessage::FromDouble(c.heartbeat_period)});
    protocol_ok = st.ok();
  }
  while (protocol_ok) {
    auto frame = ReadFrame(worker->fd);
    if (!frame.ok()) {
      break;  // EOF: the worker exited (or died).
    }
    switch (frame->type) {
      case WireType::kFetchRequest: {
        bool aborted = false;
        const bool hit =
            host_->FetchBlock(job, incarnation, static_cast<std::int64_t>(frame->words[0]),
                              static_cast<std::int64_t>(frame->words[1]), &aborted);
        const Status st =
            WriteFrame(worker->fd, WireType::kFetchReply,
                       {hit ? std::uint64_t{1} : 0, aborted ? std::uint64_t{1} : 0});
        if (!st.ok()) {
          protocol_ok = false;  // Worker died mid-fetch; fall through to reap.
        }
        break;
      }
      case WireType::kBlockDone:
        host_->OnBlockDone(job, incarnation, static_cast<std::int64_t>(frame->words[0]));
        break;
      case WireType::kHeartbeat:
        host_->OnHeartbeat(job, incarnation, static_cast<std::int64_t>(frame->words[0]));
        break;
      case WireType::kDrained: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          worker->drained = true;
        }
        host_->OnDrained(job, incarnation, static_cast<std::int64_t>(frame->words[0]),
                         static_cast<std::int64_t>(frame->words[1]));
        break;
      }
      default:
        break;  // kHello twice etc.: tolerate, the exit classification rules.
    }
  }

  int status = 0;
  while (::waitpid(worker->pid, &status, 0) < 0 && errno == EINTR) {
  }
  ::close(worker->fd);

  bool expected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    expected = worker->drained || worker->state == WorkerStateKind::kKilled ||
               worker->state == WorkerStateKind::kStopping;
  }
  if (!expected) {
    // Reported before the worker is retired so the host can respawn from
    // inside the callback without racing this worker's bookkeeping.
    host_->OnUnexpectedExit(job, incarnation, status);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker->state = WorkerStateKind::kExited;
    exited_cv_.notify_all();
  }
}

}  // namespace silod
