#include "src/rt/rt_cluster.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/rt/epoch_order.h"

namespace silod {
namespace {

// Loader epoch-shuffle seed; shared with the worker processes so thread and
// process mode walk bit-identical block orders.
constexpr std::uint64_t kLoaderSeed = 0x10AD;
constexpr std::uint64_t kRespawnSeed = 0xBAC0FF;

void SleepSeconds(double s) {
  if (s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
  }
}

}  // namespace

RunReport MakeRtRunReport(std::string label, const RtResult& result) {
  RunReport report;
  report.label = std::move(label);
  report.engine = "rt";
  report.jobs = static_cast<int>(result.jobs.size());
  report.unfinished_jobs = result.unfinished_jobs;
  std::vector<JctSample> samples;
  samples.reserve(result.jobs.size());
  for (const RtJobResult& j : result.jobs) {
    if (j.completed) {
      // RT jobs start the moment Run() launches them, so the JCT is all
      // run-time: queueing delay is zero by construction.
      JctSample sample;
      sample.jct_min = j.Runtime() / 60.0;
      samples.push_back(sample);
    }
  }
  FillJctSummary(samples, &report.jct);
  report.makespan_min = result.makespan / 60.0;
  report.faults.server_crashes = result.server_crashes;
  report.faults.server_recoveries = result.server_recoveries;
  report.faults.degrade_windows = result.degrade_windows;
  report.faults.dm_restarts = result.dm_restarts;
  report.faults.worker_crashes = result.worker_crashes;
  report.faults.worker_restarts = result.worker_restarts;
  report.faults.ignored_events = result.ignored_faults;
  report.faults.blocks_lost = result.blocks_lost;
  report.faults.bytes_lost = static_cast<double>(result.bytes_lost);
  report.faults.blocks_lost_by_zone = result.blocks_lost_by_zone;
  report.faults.blocks_refetched = result.blocks_refetched;
  report.faults.compute_lost = result.compute_lost;
  report.AddExtra("timed_out", result.timed_out);
  report.AddExtra("remote_retries", static_cast<double>(result.remote_retries));
  report.AddExtra("worker_respawns", static_cast<double>(result.worker_respawns));
  report.AddExtra("minidumps", static_cast<double>(result.minidump_paths.size()));
  return report;
}

RtCluster::RtCluster(const Trace* trace, std::shared_ptr<Scheduler> scheduler,
                     ClusterResources resources, RtOptions options)
    : trace_(trace), scheduler_(std::move(scheduler)), resources_(resources), options_(options),
      remote_(resources.remote_io, /*burst=*/MB(8)),
      manager_(resources.total_cache, resources.remote_io, /*seed=*/7,
               std::max(1, resources.num_servers)),
      injector_(options.faults) {
  SILOD_CHECK(trace_ != nullptr) << "trace required";
  SILOD_CHECK(scheduler_ != nullptr) << "scheduler required";
  SILOD_CHECK(!trace_->jobs.empty()) << "empty trace";
  int gpu_demand = 0;
  for (const JobSpec& spec : trace_->jobs) {
    gpu_demand += spec.num_gpus;
  }
  SILOD_CHECK(gpu_demand <= resources.total_gpus)
      << "RtCluster runs all jobs concurrently; GPU demand " << gpu_demand << " exceeds "
      << resources.total_gpus;
  if (!options_.topology.empty()) {
    const Status st = manager_.SetTopology(options_.topology);
    SILOD_CHECK(st.ok()) << "bad topology: " << st.ToString();
    topology_ = manager_.topology();  // Cover()ed over the shards.
  }
  for (const Dataset& dataset : trace_->catalog.all()) {
    remote_.RegisterDataset(dataset);
  }
  for (const JobSpec& spec : trace_->jobs) {
    auto job = std::make_unique<RtJob>();
    job->spec = &spec;
    const Dataset& d = trace_->catalog.Get(spec.dataset);
    job->blocks_total =
        std::max<std::int64_t>(1, (spec.total_bytes + d.block_size / 2) / d.block_size);
    job->throttle = std::make_unique<TokenBucket>(kUnlimitedRate, MB(8));
    job->block_compute = static_cast<double>(d.block_size) / spec.ideal_io;
    job->respawn_rng =
        std::make_unique<Rng>(kRespawnSeed ^ static_cast<std::uint64_t>(spec.id));
    BackoffOptions respawn;
    respawn.base = options_.respawn_backoff_base;
    respawn.cap = options_.respawn_backoff_cap;
    respawn.jitter = options_.respawn_backoff_jitter;
    respawn.max_attempts = options_.respawn_max_attempts;
    job->respawn_backoff = std::make_unique<Backoff>(respawn, job->respawn_rng.get());
    jobs_.push_back(std::move(job));
  }
  if (!options_.minidump_dir.empty()) {
    recorder_ = std::make_unique<MinidumpRecorder>(manager_, &trace_->catalog,
                                                   resources_.remote_io, /*seed=*/7,
                                                   options_.minidump_window);
  }
}

Seconds RtCluster::WallNow() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
}

RtCluster::RtJob* RtCluster::FindJob(JobId id) {
  for (const auto& job : jobs_) {
    if (job->spec->id == id) {
      return job.get();
    }
  }
  return nullptr;
}

bool RtCluster::FetchOneBlock(RtJob& job, std::int64_t fetch_index, std::int64_t block,
                              bool* aborted) {
  *aborted = false;
  if (stopping_.load()) {
    *aborted = true;
    return false;
  }
  const Dataset& dataset = trace_->catalog.Get(job.spec->dataset);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(manager_mu_);
    if (recorder_ != nullptr) {
      recorder_->MaybeRebase(manager_);
    }
    hit = manager_.AccessBlock(dataset, block);
    if (recorder_ != nullptr) {
      recorder_->RecordAccess(job.spec->id, dataset.id, block, hit);
    }
  }
  {
    // Completion-invariant accounting: an access below the job's high-water
    // mark is a crash-mandated re-read, so for every completed job
    // hits + misses == blocks_total + refetched exactly.
    std::lock_guard<std::mutex> lock(job.mu);
    if (fetch_index < job.high_water) {
      ++job.refetched;
    } else {
      job.high_water = fetch_index + 1;
    }
  }
  const Bytes bytes = dataset.BlockBytes(block);
  if (hit) {
    job.hits.fetch_add(1);
    SleepSeconds(static_cast<double>(bytes) / options_.fabric_rate);
  } else {
    job.misses.fetch_add(1);
    // The FUSE client's per-job throttle, then the account-level egress
    // bucket inside the remote store (which also sleeps).
    Seconds wait = 0;
    {
      std::lock_guard<std::mutex> lock(job.throttle_mu);
      const Seconds now = WallNow();
      const Seconds admit = job.throttle->TimeToAdmit(bytes, now);
      job.throttle->Consume(bytes, admit);
      wait = admit - now;
    }
    SleepInterruptible(wait);
    // Bounded exponential backoff against injected transient errors: a
    // failed read spent no egress tokens, so retrying costs only latency.
    BackoffOptions retry;
    retry.base = options_.retry_backoff_base;
    retry.cap = options_.retry_backoff_cap;
    Backoff backoff(retry);
    for (;;) {
      if (stopping_.load()) {
        *aborted = true;
        return hit;
      }
      if (remote_.TryReadBlock(dataset.id, block).ok()) {
        break;
      }
      job.remote_retries.fetch_add(1);
      SleepSeconds(backoff.NextDelay());
    }
  }
  return hit;
}

void RtCluster::SleepInterruptible(Seconds s) {
  constexpr Seconds kSlice = 0.02;
  Seconds remaining = s;
  while (remaining > 0 && !stopping_.load()) {
    const Seconds chunk = remaining < kSlice ? remaining : kSlice;
    SleepSeconds(chunk);
    remaining -= chunk;
  }
}

void RtCluster::LoaderLoop(RtJob& job) {
  const Dataset& dataset = trace_->catalog.Get(job.spec->dataset);
  EpochShuffler order(kLoaderSeed ^ static_cast<std::uint64_t>(job.spec->id), dataset.num_blocks);
  std::int64_t local = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job.mu);
      for (;;) {
        // Crash rendezvous: park until the restart event rewinds us.
        while (job.crashed.load() && !stopping_.load()) {
          job.loader_paused = true;
          job.cv.notify_all();
          job.cv.wait(lock);
        }
        job.loader_paused = false;
        if (stopping_.load() || job.completed.load()) {
          return;
        }
        if (job.fetched < job.blocks_total && job.staged < options_.pipeline_depth) {
          break;
        }
        // Pipeline full, or fully fetched and awaiting either completion or
        // a crash rewind.
        job.cv.wait(lock);
      }
      if (job.fetched != local) {
        // A lossy restart rewound the cursor while we were parked.
        local = job.fetched;
        order.SeekTo(local);
      }
    }
    const std::int64_t block = order.Next();
    bool aborted = false;
    FetchOneBlock(job, local, block, &aborted);
    if (aborted) {
      return;  // Only stopping_ aborts a thread-mode fetch.
    }
    ++local;
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.fetched = local;
      ++job.staged;
    }
    job.cv.notify_all();
  }
}

void RtCluster::TrainerLoop(RtJob& job) {
  job.start = WallNow();
  for (;;) {
    bool finished = false;
    {
      std::unique_lock<std::mutex> lock(job.mu);
      for (;;) {
        while (job.crashed.load() && !stopping_.load()) {
          job.trainer_paused = true;
          job.cv.notify_all();
          job.cv.wait(lock);
        }
        job.trainer_paused = false;
        if (stopping_.load()) {
          return;  // Aborted: leave the job uncompleted.
        }
        if (job.consumed >= job.blocks_total) {
          finished = true;
          break;
        }
        if (job.staged > 0) {
          break;
        }
        job.cv.wait(lock);
      }
      if (!finished) {
        --job.staged;
      }
    }
    job.cv.notify_all();
    if (finished) {
      break;
    }
    // The paper's GPU-acceleration sleep: compute replaced by its profiled
    // duration.  Shutting down must not pay it once per staged block — with a
    // deep pipeline that stretches teardown by pipeline_depth x block_compute.
    if (stopping_.load()) {
      return;
    }
    SleepSeconds(job.block_compute);
    if (stopping_.load()) {
      return;
    }
    job.blocks_done.fetch_add(1);
    {
      // A block counts as consumed only once its compute actually ran, so
      // consumed == blocks_done even when Run() aborts a job mid-pipeline.
      std::lock_guard<std::mutex> lock(job.mu);
      ++job.consumed;
    }
    job.cv.notify_all();
  }
  CompleteJob(job);
}

void RtCluster::CompleteJob(RtJob& job) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    if (!job.completed.load() && !job.abandoned.load()) {
      job.finish = WallNow();
      job.completed.store(true);
      first = true;
    }
  }
  if (first) {
    job.cv.notify_all();
    unfinished_.fetch_sub(1);
  }
}

void RtCluster::AbandonJob(RtJob& job) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    if (!job.completed.load() && !job.abandoned.load()) {
      job.abandoned.store(true);
      first = true;
    }
  }
  if (first) {
    if (recorder_ != nullptr) {
      recorder_->Note("abandon job=" + std::to_string(job.spec->id));
    }
    unfinished_.fetch_sub(1);
  }
}

// --- NodeManager::Host (process mode) ---------------------------------------

bool RtCluster::FetchBlock(JobId job_id, std::uint64_t incarnation, std::int64_t fetch_index,
                           std::int64_t block, bool* aborted) {
  *aborted = false;
  RtJob* job = FindJob(job_id);
  if (job == nullptr) {
    *aborted = true;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (incarnation != job->incarnation || job->crashed.load()) {
      *aborted = true;  // Stale worker, or crashed and awaiting restart.
      return false;
    }
  }
  const bool hit = FetchOneBlock(*job, fetch_index, block, aborted);
  if (!*aborted) {
    std::lock_guard<std::mutex> lock(job->mu);
    if (incarnation == job->incarnation) {
      job->fetched = std::max(job->fetched, fetch_index + 1);
    }
  }
  return hit;
}

void RtCluster::OnBlockDone(JobId job_id, std::uint64_t incarnation, std::int64_t blocks_done) {
  RtJob* job = FindJob(job_id);
  if (job == nullptr) {
    return;
  }
  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (incarnation != job->incarnation || job->crashed.load() || job->completed.load()) {
      return;  // Stale frame from a killed worker's socket buffer.
    }
    if (blocks_done <= job->consumed) {
      return;
    }
    job->consumed = blocks_done;
    job->blocks_done.store(blocks_done);
    complete = blocks_done >= job->blocks_total;
  }
  if (complete) {
    CompleteJob(*job);
  }
}

void RtCluster::OnDrained(JobId job_id, std::uint64_t incarnation, std::int64_t blocks_done,
                          std::int64_t blocks_fetched) {
  RtJob* job = FindJob(job_id);
  if (job == nullptr) {
    return;
  }
  bool complete = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (incarnation != job->incarnation || job->crashed.load()) {
      return;
    }
    job->consumed = std::max(job->consumed, blocks_done);
    job->blocks_done.store(job->consumed);
    job->fetched = std::max(job->fetched, blocks_fetched);
    complete = job->consumed >= job->blocks_total;
  }
  if (complete) {
    CompleteJob(*job);
  }
}

void RtCluster::OnUnexpectedExit(JobId job_id, std::uint64_t incarnation, int wait_status) {
  RtJob* job = FindJob(job_id);
  if (job == nullptr || stopping_.load()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job->mu);
    if (incarnation != job->incarnation || job->completed.load() || job->abandoned.load()) {
      return;
    }
  }
  SILOD_LOG(Error) << "worker for job " << job_id << " exited unexpectedly (status " << wait_status
                   << ")";
  if (recorder_ != nullptr) {
    recorder_->Note("worker-exit job=" + std::to_string(job_id) +
                    " status=" + std::to_string(wait_status));
  }
  WriteDump("worker-exit-job" + std::to_string(job_id),
            "unexpected worker exit, job " + std::to_string(job_id) + ", wait status " +
                std::to_string(wait_status));
  if (job->respawn_backoff->exhausted()) {
    SILOD_LOG(Error) << "job " << job_id << " abandoned after " << job->respawn_backoff->attempts()
                     << " respawns";
    AbandonJob(*job);
    return;
  }
  const Seconds delay = job->respawn_backoff->NextDelay();
  worker_respawns_.fetch_add(1);
  SleepInterruptible(delay);
  if (stopping_.load()) {
    return;
  }
  {
    // A real crash discards un-checkpointed progress exactly like an
    // injected one.
    std::lock_guard<std::mutex> lock(job->mu);
    ApplyRollbackLocked(*job);
  }
  if (const Status st = SpawnWorker(*job); !st.ok()) {
    SILOD_LOG(Error) << "respawn for job " << job_id << " failed: " << st.ToString();
    AbandonJob(*job);
  }
}

// --- Restart-cost machinery -------------------------------------------------

std::int64_t RtCluster::RollbackTarget(std::int64_t done, const RtJob& job) const {
  switch (options_.restart_cost.policy) {
    case RestartCostPolicy::kCheckpointEverything:
      return done;
    case RestartCostPolicy::kLosePartialEpoch: {
      const Dataset& d = trace_->catalog.Get(job.spec->dataset);
      return done - done % d.num_blocks;
    }
    case RestartCostPolicy::kCheckpointInterval: {
      const std::int64_t n = std::max<std::int64_t>(1, options_.restart_cost.interval_blocks);
      return done - done % n;
    }
  }
  return done;
}

void RtCluster::ApplyRollbackLocked(RtJob& job) {
  const std::int64_t done = job.consumed;
  const std::int64_t resume = RollbackTarget(done, job);
  {
    std::lock_guard<std::mutex> lock(forensics_mu_);
    compute_lost_ += static_cast<double>(done - resume) * job.block_compute;
  }
  if (recorder_ != nullptr) {
    recorder_->Note("rollback job=" + std::to_string(job.spec->id) + " done=" +
                    std::to_string(done) + " resume=" + std::to_string(resume));
  }
  if (options_.restart_cost.policy == RestartCostPolicy::kCheckpointEverything) {
    return;  // Freeze: staged compute resumes verbatim, nothing re-read.
  }
  job.consumed = resume;
  job.blocks_done.store(resume);
  job.staged = 0;
  job.fetched = resume;
}

void RtCluster::RestartJob(RtJob& job) {
  if (options_.workers_processes) {
    // The SIGKILLed worker's handler drains any in-flight fetch and retires;
    // wait for it so the fetch cursor is final before the rollback.
    if (!node_->WaitIdle(job.spec->id, options_.worker_stop_grace)) {
      SILOD_LOG(Error) << "job " << job.spec->id << " worker did not retire within grace";
    }
    {
      std::lock_guard<std::mutex> lock(job.mu);
      ApplyRollbackLocked(job);
      job.crashed.store(false);
    }
    if (!stopping_.load()) {
      if (const Status st = SpawnWorker(job); !st.ok()) {
        SILOD_LOG(Error) << "restart spawn for job " << job.spec->id
                         << " failed: " << st.ToString();
        AbandonJob(job);
      }
    }
    return;
  }
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait(lock, [&] {
    return stopping_.load() || (job.loader_paused && job.trainer_paused);
  });
  ApplyRollbackLocked(job);
  job.crashed.store(false);
  lock.unlock();
  job.cv.notify_all();
}

Status RtCluster::SpawnWorker(RtJob& job) {
  const Dataset& dataset = trace_->catalog.Get(job.spec->dataset);
  WorkerConfig config;
  config.job = job.spec->id;
  config.blocks_total = job.blocks_total;
  config.num_blocks = dataset.num_blocks;
  config.pipeline_depth = options_.pipeline_depth;
  config.rng_seed = kLoaderSeed ^ static_cast<std::uint64_t>(job.spec->id);
  config.block_compute = job.block_compute;
  config.heartbeat_period = options_.heartbeat_period;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    config.incarnation = ++job.incarnation;
    config.resume_done = job.consumed;
    config.resume_fetched = job.fetched;
  }
  if (recorder_ != nullptr) {
    recorder_->Note("spawn job=" + std::to_string(config.job) +
                    " inc=" + std::to_string(config.incarnation) +
                    " done=" + std::to_string(config.resume_done) +
                    " fetched=" + std::to_string(config.resume_fetched));
  }
  return node_->Spawn(config);
}

void RtCluster::WriteDump(const std::string& label, const std::string& reason) {
  if (recorder_ == nullptr) {
    return;
  }
  const Minidump dump = recorder_->Dump(WallNow(), reason);
  int n;
  {
    std::lock_guard<std::mutex> lock(forensics_mu_);
    n = dump_counter_++;
  }
  const auto path = WriteMinidumpFile(dump, options_.minidump_dir, label, n);
  if (!path.ok()) {
    SILOD_LOG(Error) << "minidump write failed: " << path.status().ToString();
    return;
  }
  std::lock_guard<std::mutex> lock(forensics_mu_);
  minidump_paths_.push_back(*path);
}

// --- Fault application ------------------------------------------------------

void RtCluster::ApplyFault(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kRemoteDegrade:
      remote_.SetFault(event.severity, event.error_rate);
      if (event.severity < 1.0 || event.error_rate > 0) {
        ++degrade_windows_;
      }
      if (recorder_ != nullptr) {
        recorder_->Note("degrade factor=" + std::to_string(event.severity) +
                        " err=" + std::to_string(event.error_rate));
      }
      return;
    case FaultKind::kDataManagerRestart: {
      // The in-memory Data Manager dies and a fresh one rebuilds from the
      // durable state (§6).  Loaders keep running throughout: they serialize
      // on manager_mu_, so each read lands either on the old manager or the
      // restored one — a restore from a stale snapshot only turns some hits
      // into misses, never corrupts accounting.
      std::lock_guard<std::mutex> lock(manager_mu_);
      if (recorder_ != nullptr) {
        recorder_->MaybeRebase(manager_);
      }
      const DataManagerSnapshot snapshot =
          have_snapshot_ ? last_snapshot_ : CaptureSnapshot(manager_, trace_->catalog);
      std::vector<int> dead_shards;
      for (int s = 0; s < manager_.num_shards(); ++s) {
        if (!manager_.shard_alive(s)) {
          dead_shards.push_back(s);
        }
      }
      manager_ = DataManager(resources_.total_cache, resources_.remote_io, /*seed=*/7,
                             std::max(1, resources_.num_servers));
      if (!topology_.empty()) {
        // Failure domains are part of the durable config, not the dead state.
        const Status topo_st = manager_.SetTopology(topology_);
        SILOD_CHECK(topo_st.ok()) << topo_st.ToString();
      }
      // Servers that were down stay down across the restart; the restore
      // drops any snapshot blocks routed to them.
      for (const int s : dead_shards) {
        manager_.CrashShard(s);
      }
      const Status st = RestoreDataManager(snapshot, trace_->catalog, &manager_);
      SILOD_CHECK(st.ok()) << "Data Manager restore failed: " << st.ToString();
      ++dm_restarts_;
      if (recorder_ != nullptr) {
        std::string dead = "-";
        if (!dead_shards.empty()) {
          dead.clear();
          for (std::size_t i = 0; i < dead_shards.size(); ++i) {
            if (i > 0) {
              dead += ",";
            }
            dead += std::to_string(dead_shards[i]);
          }
        }
        recorder_->RecordFault("dm-restart dead=" + dead +
                               " snap=" + MinidumpEscape(SnapshotToText(snapshot)));
      }
      return;
    }
    case FaultKind::kCacheServerCrash: {
      // Sharded Data Manager: the crashed server's shard drops its resident
      // blocks and stops admitting until recovery.
      std::lock_guard<std::mutex> lock(manager_mu_);
      if (event.target < 0 || event.target >= manager_.num_shards() ||
          !manager_.shard_alive(event.target)) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      if (recorder_ != nullptr) {
        recorder_->MaybeRebase(manager_);
      }
      Bytes before = 0;
      for (const Dataset& dataset : trace_->catalog.all()) {
        before += manager_.CachedBytes(dataset.id);
      }
      const std::int64_t lost = manager_.CrashShard(event.target);
      Bytes after = 0;
      for (const Dataset& dataset : trace_->catalog.all()) {
        after += manager_.CachedBytes(dataset.id);
      }
      blocks_lost_ += lost;
      bytes_lost_ += before - after;
      if (!topology_.empty() && lost > 0) {
        const int zone = topology_.ZoneOf(event.target);
        if (zone >= 0) {
          blocks_lost_by_zone_[topology_.zones()[static_cast<std::size_t>(zone)].name] += lost;
        }
      }
      ++server_crashes_;
      if (recorder_ != nullptr) {
        recorder_->RecordFault("server-crash " + std::to_string(event.target));
      }
      return;
    }
    case FaultKind::kCacheServerRecover: {
      std::lock_guard<std::mutex> lock(manager_mu_);
      if (event.target < 0 || event.target >= manager_.num_shards() ||
          manager_.shard_alive(event.target)) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      if (recorder_ != nullptr) {
        recorder_->MaybeRebase(manager_);
      }
      manager_.RecoverShard(event.target);  // Rejoins empty, refills on misses.
      ++server_recoveries_;
      if (recorder_ != nullptr) {
        recorder_->RecordFault("server-recover " + std::to_string(event.target));
      }
      return;
    }
    case FaultKind::kWorkerCrash: {
      RtJob* job = FindJob(event.target);
      if (job == nullptr || job->completed.load() || job->abandoned.load() ||
          job->crashed.load()) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      job->crashed.store(true);
      worker_crashes_.fetch_add(1);
      if (recorder_ != nullptr) {
        recorder_->Note("worker-crash job=" + std::to_string(event.target));
      }
      if (options_.workers_processes) {
        node_->Kill(job->spec->id);  // A real SIGKILL; the handler reaps it.
      } else {
        job->cv.notify_all();  // Park the pipeline threads.
      }
      WriteDump("worker-crash-job" + std::to_string(event.target),
                "injected worker crash, job " + std::to_string(event.target));
      return;
    }
    case FaultKind::kWorkerRestart: {
      RtJob* job = FindJob(event.target);
      if (job == nullptr || job->completed.load() || job->abandoned.load() ||
          !job->crashed.load()) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      worker_restarts_.fetch_add(1);
      if (recorder_ != nullptr) {
        recorder_->Note("worker-restart job=" + std::to_string(event.target));
      }
      RestartJob(*job);
      return;
    }
  }
  // A FaultEvent with an out-of-enum kind is an invariant violation (memory
  // corruption or an unhandled new kind), not an "ignored" fault.
  SILOD_LOG(Error) << "fault event with invalid kind " << static_cast<int>(event.kind)
                   << " dropped";
}

// --- Control loop -----------------------------------------------------------

void RtCluster::ScheduleOnce() {
  // Snapshot progress.
  Snapshot snap;
  snap.now = WallNow();
  snap.resources = resources_;
  snap.catalog = &trace_->catalog;
  if (!topology_.empty()) {
    snap.topology = &topology_;
  }
  for (const auto& job : jobs_) {
    if (job->blocks_done.load() >= job->blocks_total) {
      continue;
    }
    if (job->crashed.load() || job->abandoned.load()) {
      continue;  // Deactivated until restart, like the fine engine.
    }
    JobView view;
    view.spec = job->spec;
    const Dataset& d = trace_->catalog.Get(job->spec->dataset);
    view.remaining_bytes = (job->blocks_total - job->blocks_done.load()) * d.block_size;
    view.running = true;
    {
      std::lock_guard<std::mutex> lock(manager_mu_);
      view.effective_cache = manager_.CachedBytes(d.id);
    }
    snap.jobs.push_back(view);
  }
  if (snap.jobs.empty()) {
    return;
  }
  const AllocationPlan plan = scheduler_->Schedule(snap);
  if (plan.cache_model == CacheModelKind::kDatasetQuota) {
    std::lock_guard<std::mutex> lock(manager_mu_);
    if (recorder_ != nullptr) {
      recorder_->MaybeRebase(manager_);
    }
    const Status st = manager_.ApplyPlan(plan, trace_->catalog);
    SILOD_CHECK(st.ok()) << "plan enforcement failed: " << st.ToString();
    if (recorder_ != nullptr) {
      recorder_->RecordPlan(MinidumpRecorder::PlanDetail(plan));
    }
  }
  for (const auto& job : jobs_) {
    const JobAllocation& alloc = plan.Get(job->spec->id);
    const BytesPerSec rate =
        plan.manages_remote_io && alloc.running && alloc.remote_io > 0 ? alloc.remote_io
                                                                       : kUnlimitedRate;
    std::lock_guard<std::mutex> lock(job->throttle_mu);
    job->throttle->SetRate(rate, std::max(WallNow(), 0.0));
  }
}

void RtCluster::SchedulerLoop() {
  while (!stopping_.load() && unfinished_.load() > 0) {
    const Seconds loop_now = WallNow();
    // Periodic durable snapshot (pod annotations + disk contents).
    if (options_.snapshot_period > 0 && loop_now >= next_snapshot_) {
      std::lock_guard<std::mutex> lock(manager_mu_);
      last_snapshot_ = CaptureSnapshot(manager_, trace_->catalog);
      have_snapshot_ = true;
      next_snapshot_ = loop_now + options_.snapshot_period;
    }
    // Faults are polled at the control loop's granularity.
    if (injector_.NextTime() <= loop_now) {
      due_faults_.clear();
      injector_.PopDue(loop_now, &due_faults_);
      for (const FaultEvent& event : due_faults_) {
        ApplyFault(event);
      }
    }

    ScheduleOnce();
    SleepSeconds(options_.reschedule_period);
  }
  if (!injector_.exhausted()) {
    // Events scheduled past the end of the run: nothing left to act on.
    due_faults_.clear();
    injector_.PopDue(kInfiniteTime, &due_faults_);
    for (const FaultEvent& event : due_faults_) {
      ++ignored_by_kind_[event.kind];
    }
  }
}

RtResult RtCluster::Run() {
  wall_start_ = std::chrono::steady_clock::now();
  unfinished_.store(static_cast<int>(jobs_.size()));

  // Allocations are durable annotations set at admission (§6): apply the
  // first plan before any loader runs, or early misses land while the
  // dataset quota is still zero and are never admitted — a startup race
  // that costs an extra miss per affected block on the next epoch.
  ScheduleOnce();

  if (options_.workers_processes) {
    // Workers exist before the scheduler thread can deliver a kWorkerCrash.
    node_ = std::make_unique<NodeManager>(static_cast<NodeManager::Host*>(this));
    for (auto& job : jobs_) {
      job->start = WallNow();
      const Status st = SpawnWorker(*job);
      SILOD_CHECK(st.ok()) << "worker spawn failed: " << st.ToString();
    }
  } else {
    for (auto& job : jobs_) {
      job->loader = std::thread([this, &job] { LoaderLoop(*job); });
      job->trainer = std::thread([this, &job] { TrainerLoop(*job); });
    }
  }
  std::thread scheduler_thread([this] { SchedulerLoop(); });

  RtResult result;
  while (unfinished_.load() > 0) {
    if (WallNow() > options_.max_wall_seconds) {
      result.timed_out = true;
      break;
    }
    SleepSeconds(0.01);
  }
  stopping_.store(true);
  for (auto& job : jobs_) {
    job->cv.notify_all();
  }
  if (node_ != nullptr) {
    node_->Stop(options_.worker_stop_grace);
  }
  for (auto& job : jobs_) {
    if (job->loader.joinable()) {
      job->loader.join();
    }
    if (job->trainer.joinable()) {
      job->trainer.join();
    }
  }
  if (scheduler_thread.joinable()) {
    scheduler_thread.join();
  }

  result.dm_restarts = dm_restarts_;
  result.degrade_windows = degrade_windows_;
  result.server_crashes = server_crashes_;
  result.server_recoveries = server_recoveries_;
  result.worker_crashes = worker_crashes_.load();
  result.worker_restarts = worker_restarts_.load();
  result.worker_respawns = worker_respawns_.load();
  result.blocks_lost = blocks_lost_;
  result.bytes_lost = bytes_lost_;
  result.blocks_lost_by_zone = blocks_lost_by_zone_;
  result.ignored_by_kind = ignored_by_kind_;
  for (const auto& [kind, count] : ignored_by_kind_) {
    result.ignored_faults += count;
  }
  for (const auto& job : jobs_) {
    RtJobResult r;
    r.id = job->spec->id;
    r.start = job->start;
    r.finish = job->finish;
    r.completed = job->completed.load();
    r.cache_hits = job->hits.load();
    r.cache_misses = job->misses.load();
    r.blocks_done = job->blocks_done.load();
    r.blocks_consumed = job->consumed;
    r.remote_retries = job->remote_retries.load();
    r.blocks_refetched = job->refetched;
    result.remote_retries += r.remote_retries;
    result.blocks_refetched += r.blocks_refetched;
    if (r.completed) {
      result.makespan = std::max(result.makespan, r.finish);
      // The completion invariant: every fetched block is a hit or a miss,
      // and every fetch is either first-time progress or a crash-mandated
      // re-read.  A violation is state corruption — dump it.
      if (r.cache_hits + r.cache_misses != job->blocks_total + r.blocks_refetched) {
        SILOD_LOG(Error) << "completion invariant violated for job " << r.id << ": " << r.cache_hits
                         << " hits + " << r.cache_misses << " misses != " << job->blocks_total
                         << " blocks + " << r.blocks_refetched << " refetched";
        WriteDump("invariant-job" + std::to_string(r.id),
                  "completion invariant violated, job " + std::to_string(r.id));
      }
    } else {
      ++result.unfinished_jobs;
    }
    result.jobs.push_back(r);
  }
  {
    std::lock_guard<std::mutex> lock(forensics_mu_);
    result.compute_lost = compute_lost_;
    result.minidump_paths = minidump_paths_;
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const RtJobResult& a, const RtJobResult& b) { return a.id < b.id; });
  return result;
}

}  // namespace silod
