#include "src/rt/rt_cluster.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace silod {
namespace {

void SleepSeconds(double s) {
  if (s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
  }
}

}  // namespace

RunReport MakeRtRunReport(std::string label, const RtResult& result) {
  RunReport report;
  report.label = std::move(label);
  report.engine = "rt";
  report.jobs = static_cast<int>(result.jobs.size());
  report.unfinished_jobs = result.unfinished_jobs;
  std::vector<double> jct_minutes;
  jct_minutes.reserve(result.jobs.size());
  for (const RtJobResult& j : result.jobs) {
    if (j.completed) {
      jct_minutes.push_back(j.Runtime() / 60.0);
    }
  }
  FillJctSummary(jct_minutes, &report);
  report.makespan_min = result.makespan / 60.0;
  report.faults.server_crashes = result.server_crashes;
  report.faults.server_recoveries = result.server_recoveries;
  report.faults.degrade_windows = result.degrade_windows;
  report.faults.dm_restarts = result.dm_restarts;
  report.faults.ignored_events = result.ignored_faults;
  report.faults.blocks_lost = result.blocks_lost;
  report.faults.bytes_lost = static_cast<double>(result.bytes_lost);
  report.faults.blocks_lost_by_zone = result.blocks_lost_by_zone;
  report.AddExtra("timed_out", result.timed_out);
  report.AddExtra("remote_retries", static_cast<double>(result.remote_retries));
  return report;
}

RtCluster::RtCluster(const Trace* trace, std::shared_ptr<Scheduler> scheduler,
                     ClusterResources resources, RtOptions options)
    : trace_(trace), scheduler_(std::move(scheduler)), resources_(resources), options_(options),
      remote_(resources.remote_io, /*burst=*/MB(8)),
      manager_(resources.total_cache, resources.remote_io, /*seed=*/7,
               std::max(1, resources.num_servers)),
      injector_(options.faults) {
  SILOD_CHECK(trace_ != nullptr) << "trace required";
  SILOD_CHECK(scheduler_ != nullptr) << "scheduler required";
  SILOD_CHECK(!trace_->jobs.empty()) << "empty trace";
  int gpu_demand = 0;
  for (const JobSpec& spec : trace_->jobs) {
    gpu_demand += spec.num_gpus;
  }
  SILOD_CHECK(gpu_demand <= resources.total_gpus)
      << "RtCluster runs all jobs concurrently; GPU demand " << gpu_demand << " exceeds "
      << resources.total_gpus;
  if (!options_.topology.empty()) {
    const Status st = manager_.SetTopology(options_.topology);
    SILOD_CHECK(st.ok()) << "bad topology: " << st.ToString();
    topology_ = manager_.topology();  // Cover()ed over the shards.
  }
  for (const Dataset& dataset : trace_->catalog.all()) {
    remote_.RegisterDataset(dataset);
  }
  for (const JobSpec& spec : trace_->jobs) {
    auto job = std::make_unique<RtJob>();
    job->spec = &spec;
    const Dataset& d = trace_->catalog.Get(spec.dataset);
    job->blocks_total =
        std::max<std::int64_t>(1, (spec.total_bytes + d.block_size / 2) / d.block_size);
    job->throttle = std::make_unique<TokenBucket>(kUnlimitedRate, MB(8));
    jobs_.push_back(std::move(job));
  }
}

Seconds RtCluster::WallNow() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_).count();
}

void RtCluster::LoaderLoop(RtJob& job) {
  const Dataset& dataset = trace_->catalog.Get(job.spec->dataset);
  Rng rng(0x10AD ^ static_cast<std::uint64_t>(job.spec->id));
  std::vector<std::int64_t> order(static_cast<std::size_t>(dataset.num_blocks));
  std::iota(order.begin(), order.end(), std::int64_t{0});
  rng.Shuffle(order);
  std::size_t position = 0;

  for (std::int64_t fetched = 0; fetched < job.blocks_total && !stopping_.load(); ++fetched) {
    // Epoch boundary: reshuffle (exactly-once-per-epoch access, §2.2).
    if (position == order.size()) {
      rng.Shuffle(order);
      position = 0;
    }
    const std::int64_t block = order[position++];

    // Pipeline back-pressure.
    {
      std::unique_lock<std::mutex> lock(job.mu);
      job.cv.wait(lock, [&] {
        return stopping_.load() || job.staged < options_.pipeline_depth;
      });
      if (stopping_.load()) {
        return;
      }
    }

    bool hit = false;
    {
      std::lock_guard<std::mutex> lock(manager_mu_);
      hit = manager_.AccessBlock(dataset, block);
    }
    const Bytes bytes = dataset.BlockBytes(block);
    if (hit) {
      job.hits.fetch_add(1);
      SleepSeconds(static_cast<double>(bytes) / options_.fabric_rate);
    } else {
      job.misses.fetch_add(1);
      // The FUSE client's per-job throttle, then the account-level egress
      // bucket inside the remote store (which also sleeps).
      Seconds wait = 0;
      {
        std::lock_guard<std::mutex> lock(job.throttle_mu);
        const Seconds now = WallNow();
        const Seconds admit = job.throttle->TimeToAdmit(bytes, now);
        job.throttle->Consume(bytes, admit);
        wait = admit - now;
      }
      SleepSeconds(wait);
      // Bounded exponential backoff against injected transient errors: a
      // failed read spent no egress tokens, so retrying costs only latency.
      Seconds backoff = options_.retry_backoff_base;
      for (;;) {
        if (stopping_.load()) {
          return;
        }
        if (remote_.TryReadBlock(dataset.id, block).ok()) {
          break;
        }
        job.remote_retries.fetch_add(1);
        SleepSeconds(backoff);
        backoff = std::min(options_.retry_backoff_cap, backoff * 2);
      }
    }

    {
      std::lock_guard<std::mutex> lock(job.mu);
      ++job.staged;
    }
    job.cv.notify_all();
  }
}

void RtCluster::TrainerLoop(RtJob& job) {
  const Dataset& dataset = trace_->catalog.Get(job.spec->dataset);
  const double block_compute =
      static_cast<double>(dataset.block_size) / job.spec->ideal_io;
  job.start = WallNow();
  for (std::int64_t done = 0; done < job.blocks_total; ++done) {
    {
      std::unique_lock<std::mutex> lock(job.mu);
      job.cv.wait(lock, [&] { return stopping_.load() || job.staged > 0; });
      if (stopping_.load()) {
        return;  // Aborted: leave the job uncompleted, staged blocks unconsumed.
      }
      --job.staged;
    }
    job.cv.notify_all();
    // The paper's GPU-acceleration sleep: compute replaced by its profiled
    // duration.  Shutting down must not pay it once per staged block — with a
    // deep pipeline that stretches teardown by pipeline_depth x block_compute.
    if (stopping_.load()) {
      return;
    }
    SleepSeconds(block_compute);
    job.blocks_done.fetch_add(1);
    {
      // A block counts as consumed only once its compute actually ran, so
      // consumed == blocks_done even when Run() aborts a job mid-pipeline.
      std::lock_guard<std::mutex> lock(job.mu);
      ++job.consumed;
    }
  }
  job.finish = WallNow();
  job.completed.store(true);
  unfinished_.fetch_sub(1);
}

void RtCluster::ApplyFault(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kRemoteDegrade:
      remote_.SetFault(event.severity, event.error_rate);
      if (event.severity < 1.0 || event.error_rate > 0) {
        ++degrade_windows_;
      }
      return;
    case FaultKind::kDataManagerRestart: {
      // The in-memory Data Manager dies and a fresh one rebuilds from the
      // durable state (§6).  Loaders keep running throughout: they serialize
      // on manager_mu_, so each read lands either on the old manager or the
      // restored one — a restore from a stale snapshot only turns some hits
      // into misses, never corrupts accounting.
      std::lock_guard<std::mutex> lock(manager_mu_);
      const DataManagerSnapshot snapshot =
          have_snapshot_ ? last_snapshot_ : CaptureSnapshot(manager_, trace_->catalog);
      std::vector<int> dead_shards;
      for (int s = 0; s < manager_.num_shards(); ++s) {
        if (!manager_.shard_alive(s)) {
          dead_shards.push_back(s);
        }
      }
      manager_ = DataManager(resources_.total_cache, resources_.remote_io, /*seed=*/7,
                             std::max(1, resources_.num_servers));
      if (!topology_.empty()) {
        // Failure domains are part of the durable config, not the dead state.
        const Status topo_st = manager_.SetTopology(topology_);
        SILOD_CHECK(topo_st.ok()) << topo_st.ToString();
      }
      // Servers that were down stay down across the restart; the restore
      // drops any snapshot blocks routed to them.
      for (const int s : dead_shards) {
        manager_.CrashShard(s);
      }
      const Status st = RestoreDataManager(snapshot, trace_->catalog, &manager_);
      SILOD_CHECK(st.ok()) << "Data Manager restore failed: " << st.ToString();
      ++dm_restarts_;
      return;
    }
    case FaultKind::kCacheServerCrash: {
      // Sharded Data Manager: the crashed server's shard drops its resident
      // blocks and stops admitting until recovery.
      std::lock_guard<std::mutex> lock(manager_mu_);
      if (event.target < 0 || event.target >= manager_.num_shards() ||
          !manager_.shard_alive(event.target)) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      Bytes before = 0;
      for (const Dataset& dataset : trace_->catalog.all()) {
        before += manager_.CachedBytes(dataset.id);
      }
      const std::int64_t lost = manager_.CrashShard(event.target);
      Bytes after = 0;
      for (const Dataset& dataset : trace_->catalog.all()) {
        after += manager_.CachedBytes(dataset.id);
      }
      blocks_lost_ += lost;
      bytes_lost_ += before - after;
      if (!topology_.empty() && lost > 0) {
        const int zone = topology_.ZoneOf(event.target);
        if (zone >= 0) {
          blocks_lost_by_zone_[topology_.zones()[static_cast<std::size_t>(zone)].name] += lost;
        }
      }
      ++server_crashes_;
      return;
    }
    case FaultKind::kCacheServerRecover: {
      std::lock_guard<std::mutex> lock(manager_mu_);
      if (event.target < 0 || event.target >= manager_.num_shards() ||
          manager_.shard_alive(event.target)) {
        ++ignored_by_kind_[event.kind];
        return;
      }
      manager_.RecoverShard(event.target);  // Rejoins empty, refills on misses.
      ++server_recoveries_;
      return;
    }
    case FaultKind::kWorkerCrash:
    case FaultKind::kWorkerRestart:
      // Jobs are threads, not pods: there is no worker to kill.  Counted
      // rather than silently dropped.
      ++ignored_by_kind_[event.kind];
      return;
  }
  // A FaultEvent with an out-of-enum kind is an invariant violation (memory
  // corruption or an unhandled new kind), not an "ignored" fault.
  SILOD_LOG(Error) << "fault event with invalid kind " << static_cast<int>(event.kind)
                   << " dropped";
}

void RtCluster::ScheduleOnce() {
  // Snapshot progress.
  Snapshot snap;
  snap.now = WallNow();
  snap.resources = resources_;
  snap.catalog = &trace_->catalog;
  if (!topology_.empty()) {
    snap.topology = &topology_;
  }
  for (const auto& job : jobs_) {
    if (job->blocks_done.load() >= job->blocks_total) {
      continue;
    }
    JobView view;
    view.spec = job->spec;
    const Dataset& d = trace_->catalog.Get(job->spec->dataset);
    view.remaining_bytes = (job->blocks_total - job->blocks_done.load()) * d.block_size;
    view.running = true;
    {
      std::lock_guard<std::mutex> lock(manager_mu_);
      view.effective_cache = manager_.CachedBytes(d.id);
    }
    snap.jobs.push_back(view);
  }
  if (snap.jobs.empty()) {
    return;
  }
  const AllocationPlan plan = scheduler_->Schedule(snap);
  if (plan.cache_model == CacheModelKind::kDatasetQuota) {
    std::lock_guard<std::mutex> lock(manager_mu_);
    const Status st = manager_.ApplyPlan(plan, trace_->catalog);
    SILOD_CHECK(st.ok()) << "plan enforcement failed: " << st.ToString();
  }
  for (const auto& job : jobs_) {
    const JobAllocation& alloc = plan.Get(job->spec->id);
    const BytesPerSec rate =
        plan.manages_remote_io && alloc.running && alloc.remote_io > 0 ? alloc.remote_io
                                                                       : kUnlimitedRate;
    std::lock_guard<std::mutex> lock(job->throttle_mu);
    job->throttle->SetRate(rate, std::max(WallNow(), 0.0));
  }
}

void RtCluster::SchedulerLoop() {
  while (!stopping_.load() && unfinished_.load() > 0) {
    const Seconds loop_now = WallNow();
    // Periodic durable snapshot (pod annotations + disk contents).
    if (options_.snapshot_period > 0 && loop_now >= next_snapshot_) {
      std::lock_guard<std::mutex> lock(manager_mu_);
      last_snapshot_ = CaptureSnapshot(manager_, trace_->catalog);
      have_snapshot_ = true;
      next_snapshot_ = loop_now + options_.snapshot_period;
    }
    // Faults are polled at the control loop's granularity.
    if (injector_.NextTime() <= loop_now) {
      due_faults_.clear();
      injector_.PopDue(loop_now, &due_faults_);
      for (const FaultEvent& event : due_faults_) {
        ApplyFault(event);
      }
    }

    ScheduleOnce();
    SleepSeconds(options_.reschedule_period);
  }
  if (!injector_.exhausted()) {
    // Events scheduled past the end of the run: nothing left to act on.
    due_faults_.clear();
    injector_.PopDue(kInfiniteTime, &due_faults_);
    for (const FaultEvent& event : due_faults_) {
      ++ignored_by_kind_[event.kind];
    }
  }
}

RtResult RtCluster::Run() {
  wall_start_ = std::chrono::steady_clock::now();
  unfinished_.store(static_cast<int>(jobs_.size()));

  // Allocations are durable annotations set at admission (§6): apply the
  // first plan before any loader runs, or early misses land while the
  // dataset quota is still zero and are never admitted — a startup race
  // that costs an extra miss per affected block on the next epoch.
  ScheduleOnce();

  std::thread scheduler_thread([this] { SchedulerLoop(); });
  for (auto& job : jobs_) {
    job->loader = std::thread([this, &job] { LoaderLoop(*job); });
    job->trainer = std::thread([this, &job] { TrainerLoop(*job); });
  }

  RtResult result;
  while (unfinished_.load() > 0) {
    if (WallNow() > options_.max_wall_seconds) {
      result.timed_out = true;
      break;
    }
    SleepSeconds(0.01);
  }
  stopping_.store(true);
  for (auto& job : jobs_) {
    job->cv.notify_all();
  }
  for (auto& job : jobs_) {
    if (job->loader.joinable()) {
      job->loader.join();
    }
    if (job->trainer.joinable()) {
      job->trainer.join();
    }
  }
  if (scheduler_thread.joinable()) {
    scheduler_thread.join();
  }

  result.dm_restarts = dm_restarts_;
  result.degrade_windows = degrade_windows_;
  result.server_crashes = server_crashes_;
  result.server_recoveries = server_recoveries_;
  result.blocks_lost = blocks_lost_;
  result.bytes_lost = bytes_lost_;
  result.blocks_lost_by_zone = blocks_lost_by_zone_;
  result.ignored_by_kind = ignored_by_kind_;
  for (const auto& [kind, count] : ignored_by_kind_) {
    result.ignored_faults += count;
  }
  for (const auto& job : jobs_) {
    RtJobResult r;
    r.id = job->spec->id;
    r.start = job->start;
    r.finish = job->finish;
    r.completed = job->completed.load();
    r.cache_hits = job->hits.load();
    r.cache_misses = job->misses.load();
    r.blocks_done = job->blocks_done.load();
    r.blocks_consumed = job->consumed;
    r.remote_retries = job->remote_retries.load();
    result.remote_retries += r.remote_retries;
    if (r.completed) {
      result.makespan = std::max(result.makespan, r.finish);
    } else {
      ++result.unfinished_jobs;
    }
    result.jobs.push_back(r);
  }
  std::sort(result.jobs.begin(), result.jobs.end(),
            [](const RtJobResult& a, const RtJobResult& b) { return a.id < b.id; });
  return result;
}

}  // namespace silod
