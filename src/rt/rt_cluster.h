// The real-time mini-cluster: the paper's "GPU acceleration" methodology
// (§7, "GPU Acceleration") as an executable runtime.
//
// The paper evaluates on K80 GPUs that run the full data pipeline but replace
// the forward/backward passes with sleep(profiled V100 duration).  RtCluster
// is that idea with the GPUs removed entirely: every job is a loader (walks
// shuffled epochs, reads blocks through the shared DataManager and the
// in-memory remote store, throttled to the job's remote-IO allocation) plus a
// trainer (consumes staged blocks and sleeps block_bytes / f* per block);
// a scheduler thread periodically snapshots progress and applies a fresh
// AllocationPlan (quotas + throttles), exactly like the SiloD control loop in
// Fig. 7.
//
// Worker model (docs/MODEL.md §10): by default loader+trainer are in-process
// threads (the historical runtime).  With workers_processes they are promoted
// to one real OS process per job — NodeManager fork/execs a worker that runs
// the same loader/trainer pipeline and calls back into the cluster for every
// block fetch, so the cache, the throttles and the remote store stay in one
// place while an injected kWorkerCrash SIGKILLs a real pid.  Either way the
// crash discards progress per RtOptions::restart_cost and the restart pays
// its re-reads through the very same DataManager path, cross-checkable
// against the fine engine's per-kind fault accounting.
//
// Workloads are scaled down (tiny datasets, seconds of wall time) but every
// mechanism is the real one: concurrency, contention, throttling, caching,
// process supervision.
#ifndef SILOD_SRC_RT_RT_CLUSTER_H_
#define SILOD_SRC_RT_RT_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/rng.h"
#include "src/core/data_manager.h"
#include "src/core/recovery.h"
#include "src/fault/fault_injector.h"
#include "src/fault/minidump.h"
#include "src/fault/restart_cost.h"
#include "src/rt/node_manager.h"
#include "src/sched/policy.h"
#include "src/sim/metrics.h"
#include "src/storage/inmem_remote.h"
#include "src/storage/token_bucket.h"
#include "src/workload/trace_gen.h"

namespace silod {

struct RtOptions {
  // Blocks the loader may stage ahead of the trainer.
  int pipeline_depth = 4;
  // Wall-clock rescheduling period.
  Seconds reschedule_period = 0.25;
  // Service rate for cache hits (the storage fabric).
  BytesPerSec fabric_rate = GBps(3.2);
  // Safety timeout: Run() aborts (returns error results) past this.
  Seconds max_wall_seconds = 120;

  // Fault schedule, consumed by the scheduler thread at its polling
  // granularity (reschedule_period).  Remote degradation, Data-Manager
  // restarts, cache-server crash/recover events (against the sharded Data
  // Manager, one shard per ClusterResources::num_servers) and worker
  // crash/restart events are all modelled; a worker event is ignored (and
  // counted) only when its target job does not exist, already finished, or
  // is not in the state the event requires.
  FaultPlan faults;
  // Loader retry policy for transient remote-read errors: exponential
  // backoff from `base`, capped at `cap` (common/backoff.h).
  Seconds retry_backoff_base = 0.002;
  Seconds retry_backoff_cap = 0.1;
  // When > 0, the scheduler thread captures a Data-Manager snapshot (§6,
  // durable pod annotations + disk contents) every period; a Data-Manager
  // restart restores from the latest one instead of capture-at-crash.
  Seconds snapshot_period = 0;
  // Failure domains of the cache shards (common/topology.h).  Empty =
  // zone-oblivious.  When set it is threaded into the scheduler's Snapshot,
  // the Data Manager routes spread datasets zone-proportionally, and shard
  // crashes are attributed per zone in RtResult::blocks_lost_by_zone.
  ClusterTopology topology;

  // What a worker crash discards (fault/restart_cost.h).  The rt runtime
  // treats lose-partial-epoch as epoch-granular for every job (it does not
  // model curriculum orders).
  RestartCost restart_cost;

  // Worker execution model: false = in-process loader/trainer threads (the
  // historical runtime, bit-identical block order); true = one OS process
  // per job supervised by NodeManager.
  bool workers_processes = false;
  // Process-mode knobs.
  Seconds worker_stop_grace = 2.0;   // Drain budget at shutdown.
  Seconds heartbeat_period = 0.25;   // Worker liveness beacon period.
  // Respawn-after-unexpected-exit policy: bounded exponential backoff with
  // jitter; a job whose worker dies unexpectedly more than max_attempts
  // times is abandoned (reported unfinished).
  int respawn_max_attempts = 3;
  Seconds respawn_backoff_base = 0.01;
  Seconds respawn_backoff_cap = 0.2;
  double respawn_backoff_jitter = 0.1;

  // Crash forensics (fault/minidump.h): when non-empty, every injected
  // worker crash, unexpected worker exit and completion-invariant violation
  // serializes a minidump here (paths in RtResult::minidump_paths), and the
  // event recorder runs for the whole run.
  std::string minidump_dir;
  int minidump_window = 256;  // Events kept per dump.
};

struct RtJobResult {
  JobId id = kInvalidJob;
  Seconds start = 0;   // Wall seconds from Run() begin.
  Seconds finish = 0;  // Valid only when completed.
  // False when Run() timed out (or abandoned the job after repeated worker
  // deaths) before it consumed all its blocks; start, finish and Runtime()
  // are meaningless then.
  bool completed = false;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t blocks_done = 0;      // Blocks whose compute finished.
  std::int64_t blocks_consumed = 0;  // Blocks dequeued by the trainer.
  std::int64_t remote_retries = 0;   // Transient remote errors retried.
  // Blocks re-read because a crash discarded un-checkpointed progress.  For
  // a completed job, cache_hits + cache_misses == blocks fetched ==
  // blocks_total + blocks_refetched exactly (the completion invariant).
  std::int64_t blocks_refetched = 0;

  Seconds Runtime() const { return finish - start; }
};

struct RtResult {
  std::vector<RtJobResult> jobs;
  // Over completed jobs only; 0 if nothing completed.
  Seconds makespan = 0;
  int unfinished_jobs = 0;
  bool timed_out = false;

  // Fault accounting (RtOptions::faults).
  int dm_restarts = 0;
  int degrade_windows = 0;
  int server_crashes = 0;
  int server_recoveries = 0;
  int worker_crashes = 0;
  int worker_restarts = 0;
  // Workers respawned after an unexpected exit (not injected crashes).
  int worker_respawns = 0;
  std::int64_t blocks_lost = 0;  // Resident blocks dropped by shard crashes.
  Bytes bytes_lost = 0;          // Resident bytes dropped by shard crashes.
  // Blocks lost per failure domain (RtOptions::topology); empty without one.
  std::map<std::string, std::int64_t> blocks_lost_by_zone;
  // RestartCost accounting, summed over jobs.
  std::int64_t blocks_refetched = 0;
  double compute_lost = 0;  // Discarded staged compute, in seconds.
  // Events this runtime could not act on, by kind (targets that are out of
  // range / in the wrong state).  ignored_faults is the sum.
  std::map<FaultKind, int> ignored_by_kind;
  int ignored_faults = 0;
  std::int64_t remote_retries = 0;
  // Minidumps written during the run (empty unless minidump_dir is set).
  std::vector<std::string> minidump_paths;
};

// Folds an RtResult into the shared RunReport schema (sim/metrics.h), so the
// runtime serializes exactly like the simulation engines ("engine": "rt").
RunReport MakeRtRunReport(std::string label, const RtResult& result);

class RtCluster : private NodeManager::Host {
 public:
  // The trace's jobs all start at t = 0 (wall submit times are not modelled;
  // this runtime targets micro-benchmark-style workloads).  `scheduler` must
  // produce dataset-quota plans (SiloD / Quiver style).
  RtCluster(const Trace* trace, std::shared_ptr<Scheduler> scheduler,
            ClusterResources resources, RtOptions options = {});

  // Runs every job to completion on real threads/processes; blocking.
  RtResult Run();

 private:
  struct RtJob {
    const JobSpec* spec = nullptr;
    // Wall-clock remote-IO limiter; throttle_mu serializes the loader's
    // reservations against the scheduler's SetRate (TokenBucket requires a
    // monotone clock, so every operation reads the wall clock under the
    // lock).
    std::unique_ptr<TokenBucket> throttle;
    std::mutex throttle_mu;
    std::mutex mu;
    std::atomic<std::int64_t> blocks_done{0};
    std::int64_t blocks_total = 0;
    std::atomic<bool> completed{false};
    // Crashed and awaiting its restart event; set by ApplyFault, cleared by
    // RestartJob.
    std::atomic<bool> crashed{false};
    // Given up after respawn_max_attempts unexpected exits (process mode).
    std::atomic<bool> abandoned{false};
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> remote_retries{0};
    Seconds start = 0;
    Seconds finish = 0;
    Seconds block_compute = 0;
    std::thread loader;
    std::thread trainer;

    // Staged-block handoff (loader -> trainer) and crash/restart
    // rendezvous; everything below is under mu.
    std::condition_variable cv;
    std::int64_t staged = 0;    // Blocks fetched but not yet consumed.
    std::int64_t consumed = 0;  // Blocks the trainer has finished.
    // Fetch cursor: the absolute index the loader fetches next (rewound by a
    // lossy restart), and the refetch accounting that backs the completion
    // invariant — an access whose index is below the high-water mark is a
    // policy-mandated re-read.
    std::int64_t fetched = 0;
    std::int64_t high_water = 0;
    std::int64_t refetched = 0;
    // Thread mode: both pipeline threads park here while crashed, so the
    // restart can rewind their shared state safely.
    bool loader_paused = false;
    bool trainer_paused = false;
    // Process mode: bumped per spawn; stale frames from a killed worker's
    // socket buffer carry the old incarnation and are dropped.
    std::uint64_t incarnation = 0;
    std::unique_ptr<Rng> respawn_rng;
    std::unique_ptr<Backoff> respawn_backoff;
  };

  // Thread-mode pipeline.
  void LoaderLoop(RtJob& job);
  void TrainerLoop(RtJob& job);

  // The full fetch path shared by both modes: cache access (recorded),
  // refetch accounting, fabric/throttle waits, remote read with bounded
  // backoff.  Returns hit; *aborted is set when the run is stopping.
  bool FetchOneBlock(RtJob& job, std::int64_t fetch_index, std::int64_t block, bool* aborted);

  // NodeManager::Host (process mode).
  bool FetchBlock(JobId job, std::uint64_t incarnation, std::int64_t fetch_index,
                  std::int64_t block, bool* aborted) override;
  void OnBlockDone(JobId job, std::uint64_t incarnation, std::int64_t blocks_done) override;
  void OnDrained(JobId job, std::uint64_t incarnation, std::int64_t blocks_done,
                 std::int64_t blocks_fetched) override;
  void OnUnexpectedExit(JobId job, std::uint64_t incarnation, int wait_status) override;

  void SchedulerLoop();
  void ScheduleOnce();
  void ApplyFault(const FaultEvent& event);
  RtJob* FindJob(JobId id);
  // The checkpoint index `done` rolls back to under restart_cost.
  std::int64_t RollbackTarget(std::int64_t done, const RtJob& job) const;
  // Applies restart_cost to the job's counters (job.mu held): freezes for
  // checkpoint-everything, rewinds done/fetched and drops the staged
  // pipeline otherwise.  Accounts the discarded compute.
  void ApplyRollbackLocked(RtJob& job);
  void RestartJob(RtJob& job);
  Status SpawnWorker(RtJob& job);
  void CompleteJob(RtJob& job);
  void AbandonJob(RtJob& job);
  // Serializes the recorder's current window to minidump_dir (no-op when
  // forensics are off).
  void WriteDump(const std::string& label, const std::string& reason);
  Seconds WallNow() const;
  // Sleeps `s` in small slices, returning early once the run is stopping.
  void SleepInterruptible(Seconds s);

  const Trace* trace_;
  std::shared_ptr<Scheduler> scheduler_;
  ClusterResources resources_;
  RtOptions options_;

  InMemRemoteStore remote_;
  DataManager manager_;
  std::mutex manager_mu_;  // DataManager is not internally synchronized.

  std::vector<std::unique_ptr<RtJob>> jobs_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> unfinished_{0};
  std::chrono::steady_clock::time_point wall_start_;

  // Process mode; null in thread mode.
  std::unique_ptr<NodeManager> node_;
  // Crash forensics; null unless minidump_dir is set.
  std::unique_ptr<MinidumpRecorder> recorder_;
  std::mutex forensics_mu_;  // Guards minidump_paths_, dump_counter_, compute_lost_.
  std::vector<std::string> minidump_paths_;
  int dump_counter_ = 0;
  double compute_lost_ = 0;

  // Worker-fault counters; touched by the scheduler thread and (process
  // mode) handler threads.
  std::atomic<int> worker_crashes_{0};
  std::atomic<int> worker_restarts_{0};
  std::atomic<int> worker_respawns_{0};

  // Fault state: owned by the scheduler thread; the counters are read by
  // Run() only after it joins that thread.
  FaultInjector injector_;
  std::vector<FaultEvent> due_faults_;
  DataManagerSnapshot last_snapshot_;
  bool have_snapshot_ = false;
  Seconds next_snapshot_ = 0;
  int dm_restarts_ = 0;
  int degrade_windows_ = 0;
  int server_crashes_ = 0;
  int server_recoveries_ = 0;
  std::int64_t blocks_lost_ = 0;
  Bytes bytes_lost_ = 0;
  std::map<std::string, std::int64_t> blocks_lost_by_zone_;
  ClusterTopology topology_;  // Cover()ed copy of RtOptions::topology.
  std::map<FaultKind, int> ignored_by_kind_;
};

}  // namespace silod

#endif  // SILOD_SRC_RT_RT_CLUSTER_H_
