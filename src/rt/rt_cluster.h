// The real-time mini-cluster: the paper's "GPU acceleration" methodology
// (§7, "GPU Acceleration") as an executable runtime.
//
// The paper evaluates on K80 GPUs that run the full data pipeline but replace
// the forward/backward passes with sleep(profiled V100 duration).  RtCluster
// is that idea with the GPUs removed entirely: every job is a pair of real
// threads —
//   - a loader that walks shuffled epochs, reads blocks through the shared
//     DataManager (uniform caching, §2.2) and the in-memory remote store
//     (egress token bucket), throttled to the job's remote-IO allocation by
//     its own wall-clock token bucket (the FUSE client of §6);
//   - a trainer that consumes staged blocks and sleeps block_bytes / f* per
//     block (the profiled compute time);
// plus a scheduler thread that periodically snapshots progress and applies a
// fresh AllocationPlan (quotas + throttles), exactly like the SiloD control
// loop in Fig. 7.
//
// Workloads are scaled down (tiny datasets, seconds of wall time) but every
// mechanism is the real one: concurrency, contention, throttling, caching.
#ifndef SILOD_SRC_RT_RT_CLUSTER_H_
#define SILOD_SRC_RT_RT_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/data_manager.h"
#include "src/core/recovery.h"
#include "src/fault/fault_injector.h"
#include "src/sched/policy.h"
#include "src/sim/metrics.h"
#include "src/storage/inmem_remote.h"
#include "src/storage/token_bucket.h"
#include "src/workload/trace_gen.h"

namespace silod {

struct RtOptions {
  // Blocks the loader may stage ahead of the trainer.
  int pipeline_depth = 4;
  // Wall-clock rescheduling period.
  Seconds reschedule_period = 0.25;
  // Service rate for cache hits (the storage fabric).
  BytesPerSec fabric_rate = GBps(3.2);
  // Safety timeout: Run() aborts (returns error results) past this.
  Seconds max_wall_seconds = 120;

  // Fault schedule, consumed by the scheduler thread at its polling
  // granularity (reschedule_period).  Remote degradation, Data-Manager
  // restarts and cache-server crash/recover events (against the sharded
  // Data Manager, one shard per ClusterResources::num_servers) are all
  // modelled; worker events are counted as ignored (jobs are threads, not
  // pods — there is no worker to kill).
  FaultPlan faults;
  // Loader retry policy for transient remote-read errors: exponential
  // backoff from `base`, capped at `cap`.
  Seconds retry_backoff_base = 0.002;
  Seconds retry_backoff_cap = 0.1;
  // When > 0, the scheduler thread captures a Data-Manager snapshot (§6,
  // durable pod annotations + disk contents) every period; a Data-Manager
  // restart restores from the latest one instead of capture-at-crash.
  Seconds snapshot_period = 0;
  // Failure domains of the cache shards (common/topology.h).  Empty =
  // zone-oblivious.  When set it is threaded into the scheduler's Snapshot,
  // the Data Manager routes spread datasets zone-proportionally, and shard
  // crashes are attributed per zone in RtResult::blocks_lost_by_zone.
  ClusterTopology topology;
};

struct RtJobResult {
  JobId id = kInvalidJob;
  Seconds start = 0;   // Wall seconds from Run() begin.
  Seconds finish = 0;  // Valid only when completed.
  // False when Run() timed out before the job consumed all its blocks; start,
  // finish and Runtime() are meaningless then (the job was aborted mid-run).
  bool completed = false;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t blocks_done = 0;      // Blocks whose compute finished.
  std::int64_t blocks_consumed = 0;  // Blocks dequeued by the trainer.
  std::int64_t remote_retries = 0;   // Transient remote errors retried.

  Seconds Runtime() const { return finish - start; }
};

struct RtResult {
  std::vector<RtJobResult> jobs;
  // Over completed jobs only; 0 if nothing completed.
  Seconds makespan = 0;
  int unfinished_jobs = 0;
  bool timed_out = false;

  // Fault accounting (RtOptions::faults).
  int dm_restarts = 0;
  int degrade_windows = 0;
  int server_crashes = 0;
  int server_recoveries = 0;
  std::int64_t blocks_lost = 0;  // Resident blocks dropped by shard crashes.
  Bytes bytes_lost = 0;          // Resident bytes dropped by shard crashes.
  // Blocks lost per failure domain (RtOptions::topology); empty without one.
  std::map<std::string, std::int64_t> blocks_lost_by_zone;
  // Events this runtime could not act on, by kind (worker events, or targets
  // that are out of range / in the wrong state).  ignored_faults is the sum.
  std::map<FaultKind, int> ignored_by_kind;
  int ignored_faults = 0;
  std::int64_t remote_retries = 0;
};

// Folds an RtResult into the shared RunReport schema (sim/metrics.h), so the
// runtime serializes exactly like the simulation engines ("engine": "rt").
RunReport MakeRtRunReport(std::string label, const RtResult& result);

class RtCluster {
 public:
  // The trace's jobs all start at t = 0 (wall submit times are not modelled;
  // this runtime targets micro-benchmark-style workloads).  `scheduler` must
  // produce dataset-quota plans (SiloD / Quiver style).
  RtCluster(const Trace* trace, std::shared_ptr<Scheduler> scheduler,
            ClusterResources resources, RtOptions options = {});

  // Runs every job to completion on real threads; blocking.
  RtResult Run();

 private:
  struct RtJob {
    const JobSpec* spec = nullptr;
    // Wall-clock remote-IO limiter; throttle_mu serializes the loader's
    // reservations against the scheduler's SetRate (TokenBucket requires a
    // monotone clock, so every operation reads the wall clock under the
    // lock).
    std::unique_ptr<TokenBucket> throttle;
    std::mutex throttle_mu;
    std::mutex mu;
    std::atomic<std::int64_t> blocks_done{0};
    std::int64_t blocks_total = 0;
    std::atomic<bool> completed{false};
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> remote_retries{0};
    Seconds start = 0;
    Seconds finish = 0;
    std::thread loader;
    std::thread trainer;

    // Staged-block handoff (loader -> trainer): a counting baton.
    std::condition_variable cv;
    std::int64_t staged = 0;    // Blocks fetched but not yet consumed.
    std::int64_t consumed = 0;  // Blocks the trainer has finished.
  };

  void LoaderLoop(RtJob& job);
  void TrainerLoop(RtJob& job);
  void SchedulerLoop();
  void ScheduleOnce();
  void ApplyFault(const FaultEvent& event);
  Seconds WallNow() const;

  const Trace* trace_;
  std::shared_ptr<Scheduler> scheduler_;
  ClusterResources resources_;
  RtOptions options_;

  InMemRemoteStore remote_;
  DataManager manager_;
  std::mutex manager_mu_;  // DataManager is not internally synchronized.

  std::vector<std::unique_ptr<RtJob>> jobs_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> unfinished_{0};
  std::chrono::steady_clock::time_point wall_start_;

  // Fault state: owned by the scheduler thread; the counters are read by
  // Run() only after it joins that thread.
  FaultInjector injector_;
  std::vector<FaultEvent> due_faults_;
  DataManagerSnapshot last_snapshot_;
  bool have_snapshot_ = false;
  Seconds next_snapshot_ = 0;
  int dm_restarts_ = 0;
  int degrade_windows_ = 0;
  int server_crashes_ = 0;
  int server_recoveries_ = 0;
  std::int64_t blocks_lost_ = 0;
  Bytes bytes_lost_ = 0;
  std::map<std::string, std::int64_t> blocks_lost_by_zone_;
  ClusterTopology topology_;  // Cover()ed copy of RtOptions::topology.
  std::map<FaultKind, int> ignored_by_kind_;
};

}  // namespace silod

#endif  // SILOD_SRC_RT_RT_CLUSTER_H_
