#include "src/rt/wire.h"

#include <cstring>

#include "src/common/framing.h"
#include "src/common/logging.h"

namespace silod {
namespace {

// Frames are tiny; anything larger is a framing bug, not a real message.
constexpr std::uint32_t kMaxBody = 64 * 1024;

}  // namespace

const char* WireTypeName(WireType type) {
  switch (type) {
    case WireType::kHello:
      return "hello";
    case WireType::kAssign:
      return "assign";
    case WireType::kFetchRequest:
      return "fetch-request";
    case WireType::kFetchReply:
      return "fetch-reply";
    case WireType::kBlockDone:
      return "block-done";
    case WireType::kHeartbeat:
      return "heartbeat";
    case WireType::kDrained:
      return "drained";
    case WireType::kStop:
      return "stop";
  }
  return "unknown";
}

double WireMessage::AsDouble(std::size_t i) const {
  SILOD_CHECK(i < words.size()) << "wire payload index out of range";
  double d;
  std::memcpy(&d, &words[i], sizeof(d));
  return d;
}

std::uint64_t WireMessage::FromDouble(double d) {
  std::uint64_t v;
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

int WireExpectedWords(WireType type) {
  switch (type) {
    case WireType::kHello:
      return 1;
    case WireType::kAssign:
      return 9;
    case WireType::kFetchRequest:
      return 2;
    case WireType::kFetchReply:
      return 2;
    case WireType::kBlockDone:
      return 1;
    case WireType::kHeartbeat:
      return 1;
    case WireType::kDrained:
      return 2;
    case WireType::kStop:
      return 0;
  }
  return -1;
}

Status WriteFrame(int fd, WireType type, const std::vector<std::uint64_t>& words) {
  // The transport loop (length prefix, EINTR, MSG_NOSIGNAL) lives in
  // common/framing.h, shared with the silodd protocol; this layer only packs
  // the payload words.
  std::string payload;
  payload.resize(8 * words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    PutU64(reinterpret_cast<std::uint8_t*>(payload.data()) + 8 * i, words[i]);
  }
  return WriteRawFrame(fd, static_cast<std::uint8_t>(type), payload, kMaxBody);
}

Result<WireMessage> ReadFrame(int fd) {
  Result<RawFrame> raw = ReadRawFrame(fd, kMaxBody);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw->payload.size() % 8 != 0) {
    return Status::Internal("wire read: malformed frame length " +
                            std::to_string(raw->payload.size() + 1));
  }
  WireMessage msg;
  msg.type = static_cast<WireType>(raw->type);
  const std::size_t count = raw->payload.size() / 8;
  msg.words.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    msg.words.push_back(GetU64(reinterpret_cast<const std::uint8_t*>(raw->payload.data()) + 8 * i));
  }
  if (raw->type < static_cast<std::uint8_t>(WireType::kHello) ||
      raw->type > static_cast<std::uint8_t>(WireType::kStop)) {
    return Status::Internal("wire read: unknown message type " + std::to_string(raw->type));
  }
  const int expected = WireExpectedWords(msg.type);
  if (expected >= 0 && count != static_cast<std::size_t>(expected)) {
    return Status::Internal(std::string("wire read: ") + WireTypeName(msg.type) + " carries " +
                            std::to_string(count) + " words, want " + std::to_string(expected));
  }
  return msg;
}

}  // namespace silod
