#include "src/rt/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"

namespace silod {
namespace {

// Frames are tiny; anything larger is a framing bug, not a real message.
constexpr std::uint32_t kMaxBody = 64 * 1024;

Status WriteAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // send() instead of write(): MSG_NOSIGNAL turns a dead peer into an
    // error return instead of a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("wire write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Reads exactly `len` bytes.  *eof_before_any is set when the peer closed
// cleanly before the first byte.
Status ReadAll(int fd, std::uint8_t* data, std::size_t len, bool* eof_before_any) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("wire read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_before_any != nullptr) {
        *eof_before_any = true;
        return Status::OutOfRange("peer closed");
      }
      return Status::Internal("wire read: eof mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

const char* WireTypeName(WireType type) {
  switch (type) {
    case WireType::kHello:
      return "hello";
    case WireType::kAssign:
      return "assign";
    case WireType::kFetchRequest:
      return "fetch-request";
    case WireType::kFetchReply:
      return "fetch-reply";
    case WireType::kBlockDone:
      return "block-done";
    case WireType::kHeartbeat:
      return "heartbeat";
    case WireType::kDrained:
      return "drained";
    case WireType::kStop:
      return "stop";
  }
  return "unknown";
}

double WireMessage::AsDouble(std::size_t i) const {
  SILOD_CHECK(i < words.size()) << "wire payload index out of range";
  double d;
  std::memcpy(&d, &words[i], sizeof(d));
  return d;
}

std::uint64_t WireMessage::FromDouble(double d) {
  std::uint64_t v;
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

int WireExpectedWords(WireType type) {
  switch (type) {
    case WireType::kHello:
      return 1;
    case WireType::kAssign:
      return 9;
    case WireType::kFetchRequest:
      return 2;
    case WireType::kFetchReply:
      return 2;
    case WireType::kBlockDone:
      return 1;
    case WireType::kHeartbeat:
      return 1;
    case WireType::kDrained:
      return 2;
    case WireType::kStop:
      return 0;
  }
  return -1;
}

Status WriteFrame(int fd, WireType type, const std::vector<std::uint64_t>& words) {
  const std::uint32_t body = static_cast<std::uint32_t>(1 + 8 * words.size());
  std::vector<std::uint8_t> buf(4 + body);
  PutU32(buf.data(), body);
  buf[4] = static_cast<std::uint8_t>(type);
  for (std::size_t i = 0; i < words.size(); ++i) {
    PutU64(buf.data() + 5 + 8 * i, words[i]);
  }
  return WriteAll(fd, buf.data(), buf.size());
}

Result<WireMessage> ReadFrame(int fd) {
  std::uint8_t header[4];
  bool eof = false;
  if (const Status st = ReadAll(fd, header, sizeof(header), &eof); !st.ok()) {
    return st;
  }
  const std::uint32_t body = GetU32(header);
  if (body < 1 || body > kMaxBody || (body - 1) % 8 != 0) {
    return Status::Internal("wire read: malformed frame length " + std::to_string(body));
  }
  std::vector<std::uint8_t> buf(body);
  if (const Status st = ReadAll(fd, buf.data(), buf.size(), nullptr); !st.ok()) {
    return st;
  }
  WireMessage msg;
  msg.type = static_cast<WireType>(buf[0]);
  const std::size_t count = (body - 1) / 8;
  msg.words.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    msg.words.push_back(GetU64(buf.data() + 1 + 8 * i));
  }
  const int expected = WireExpectedWords(msg.type);
  if (buf[0] < static_cast<std::uint8_t>(WireType::kHello) ||
      buf[0] > static_cast<std::uint8_t>(WireType::kStop)) {
    return Status::Internal("wire read: unknown message type " + std::to_string(buf[0]));
  }
  if (expected >= 0 && count != static_cast<std::size_t>(expected)) {
    return Status::Internal(std::string("wire read: ") + WireTypeName(msg.type) + " carries " +
                            std::to_string(count) + " words, want " + std::to_string(expected));
  }
  return msg;
}

}  // namespace silod
