// The NodeManager <-> worker wire protocol (docs/MODEL.md §10).
//
// One AF_UNIX stream socket per worker.  Every message is a length-prefixed
// frame:
//
//   u32 LE  body length (bytes)
//   u8      message type (WireType)
//   u64 LE  payload words (doubles bit-cast to u64)
//
// Fixed-width words keep the framing trivial and platform-independent; the
// parent validates the word count per type, so a truncated or corrupt frame
// surfaces as an error instead of a misparse.  The transport loop (length
// prefix, EINTR/short transfers, MSG_NOSIGNAL) is the shared one in
// common/framing.h, also used by the silodd request protocol (serve/proto.h);
// this header owns only the word encoding and the per-type word counts.
//
// Conversation (parent perspective):
//   -> kAssign       job geometry + resume index, sent once after spawn
//   <- kHello        worker pid, first frame after exec
//   <- kFetchRequest loader wants block `block` at absolute fetch index
//   -> kFetchReply   after the parent paid the full fetch path (cache access,
//                    throttle, remote read with retries): hit + aborted flags
//   <- kBlockDone    one block's compute finished; running done count
//   <- kHeartbeat    liveness beacon from the worker's timer thread
//   -> kStop         drain politely; worker answers kDrained and exits 0
//   <- kDrained      final counters, last frame before exit
#ifndef SILOD_SRC_RT_WIRE_H_
#define SILOD_SRC_RT_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace silod {

enum class WireType : std::uint8_t {
  kHello = 1,
  kAssign = 2,
  kFetchRequest = 3,
  kFetchReply = 4,
  kBlockDone = 5,
  kHeartbeat = 6,
  kDrained = 7,
  kStop = 8,
};

const char* WireTypeName(WireType type);

struct WireMessage {
  WireType type = WireType::kHello;
  std::vector<std::uint64_t> words;

  double AsDouble(std::size_t i) const;
  static std::uint64_t FromDouble(double d);
};

// Payload word layouts (all u64 unless noted):
//   kHello        [pid]
//   kAssign       [job_id, blocks_total, resume_done, resume_fetched,
//                  num_blocks, pipeline_depth, rng_seed,
//                  block_compute(double), heartbeat_period(double)]
//   kFetchRequest [fetch_index, block]
//   kFetchReply   [hit, aborted]
//   kBlockDone    [blocks_done]
//   kHeartbeat    [blocks_done]
//   kDrained      [blocks_done, blocks_fetched]
//   kStop         []
//
// Returns the expected word count for `type`, or -1 if any count is legal.
int WireExpectedWords(WireType type);

// Writes one frame; Internal on a closed/errored peer.
Status WriteFrame(int fd, WireType type, const std::vector<std::uint64_t>& words);

// Blocking read of one frame.  A clean EOF before any byte of a frame is
// OutOfRange ("peer closed"); a mid-frame EOF or malformed frame is Internal.
Result<WireMessage> ReadFrame(int fd);

}  // namespace silod

#endif  // SILOD_SRC_RT_WIRE_H_
