#include "src/rt/worker_main.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/rt/epoch_order.h"
#include "src/rt/wire.h"

namespace silod {
namespace {

// The worker mirrors the in-process trainer's loader/trainer split: a loader
// thread walks the shuffled epoch order and asks the parent to fetch each
// block (the parent owns the cache, the throttles and the remote store — the
// worker only sees the latency as reply wait), a trainer thread consumes
// staged blocks at block_compute seconds apiece, and a heartbeat thread
// beacons liveness.  A reader thread demultiplexes the socket.  Everything
// stops promptly on kStop, on an aborted fetch, or on the socket dying
// (parent gone): real worker processes must never outlive their node manager.
struct WorkerState {
  int fd = -1;

  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::int64_t staged = 0;
  std::int64_t done = 0;
  std::int64_t fetched = 0;
  // One-slot fetch-reply mailbox (the loader has at most one fetch in
  // flight).
  bool have_reply = false;
  bool reply_hit = false;
  bool reply_aborted = false;

  // Serializes frame writes from loader/trainer/heartbeat.
  std::mutex write_mu;

  // Assignment.
  std::uint64_t job_id = 0;
  std::int64_t blocks_total = 0;
  std::int64_t resume_done = 0;
  std::int64_t resume_fetched = 0;
  std::int64_t num_blocks = 0;
  std::int64_t pipeline_depth = 1;
  std::uint64_t rng_seed = 0;
  double block_compute = 0;
  double heartbeat_period = 0.25;
};

void StopWorker(WorkerState* w) {
  std::lock_guard<std::mutex> lock(w->mu);
  w->stop = true;
  w->cv.notify_all();
}

// A failed write means the parent is gone; stop instead of erroring out.
void SendOrStop(WorkerState* w, WireType type, const std::vector<std::uint64_t>& words) {
  Status st;
  {
    std::lock_guard<std::mutex> lock(w->write_mu);
    st = WriteFrame(w->fd, type, words);
  }
  if (!st.ok()) {
    StopWorker(w);
  }
}

// Sleeps `seconds` in small slices so a kStop lands within ~5ms.
void InterruptibleSleep(WorkerState* w, double seconds) {
  constexpr double kSlice = 0.005;
  double remaining = seconds;
  while (remaining > 0) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (w->stop) {
        return;
      }
    }
    const double chunk = remaining < kSlice ? remaining : kSlice;
    std::this_thread::sleep_for(std::chrono::duration<double>(chunk));
    remaining -= chunk;
  }
}

void ReaderLoop(WorkerState* w) {
  for (;;) {
    auto frame = ReadFrame(w->fd);
    if (!frame.ok()) {
      StopWorker(w);  // EOF or a dead socket: parent is gone.
      return;
    }
    switch (frame->type) {
      case WireType::kFetchReply: {
        std::lock_guard<std::mutex> lock(w->mu);
        w->have_reply = true;
        w->reply_hit = frame->words[0] != 0;
        w->reply_aborted = frame->words[1] != 0;
        w->cv.notify_all();
        break;
      }
      case WireType::kStop:
        StopWorker(w);
        return;
      default:
        break;  // Unexpected but harmless; the parent validates its side.
    }
  }
}

void LoaderLoop(WorkerState* w) {
  EpochShuffler order(w->rng_seed, w->num_blocks);
  order.SeekTo(w->resume_fetched);
  std::int64_t fetched = w->resume_fetched;
  while (fetched < w->blocks_total) {
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait(lock, [&] { return w->stop || w->staged < w->pipeline_depth; });
      if (w->stop) {
        return;
      }
    }
    const std::int64_t block = order.Next();
    SendOrStop(w, WireType::kFetchRequest,
               {static_cast<std::uint64_t>(fetched), static_cast<std::uint64_t>(block)});
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait(lock, [&] { return w->stop || w->have_reply; });
      if (w->stop) {
        return;
      }
      w->have_reply = false;
      if (w->reply_aborted) {
        return;  // Parent is draining; the trainer stops via kStop.
      }
      ++fetched;
      w->fetched = fetched;
      ++w->staged;
      w->cv.notify_all();
    }
  }
}

void TrainerLoop(WorkerState* w) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(w->mu);
      if (w->done >= w->blocks_total) {
        return;
      }
      w->cv.wait(lock, [&] { return w->stop || w->staged > 0; });
      if (w->stop) {
        return;
      }
    }
    InterruptibleSleep(w, w->block_compute);
    std::int64_t done;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (w->stop) {
        return;
      }
      --w->staged;
      done = ++w->done;
      w->cv.notify_all();
    }
    SendOrStop(w, WireType::kBlockDone, {static_cast<std::uint64_t>(done)});
  }
}

void HeartbeatLoop(WorkerState* w) {
  for (;;) {
    InterruptibleSleep(w, w->heartbeat_period);
    std::int64_t done;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (w->stop) {
        return;
      }
      done = w->done;
    }
    SendOrStop(w, WireType::kHeartbeat, {static_cast<std::uint64_t>(done)});
  }
}

int RunWorker(int fd) {
  WorkerState w;
  w.fd = fd;

  SendOrStop(&w, WireType::kHello, {static_cast<std::uint64_t>(::getpid())});
  auto assign = ReadFrame(fd);
  if (!assign.ok() || assign->type != WireType::kAssign) {
    return 3;
  }
  w.job_id = assign->words[0];
  w.blocks_total = static_cast<std::int64_t>(assign->words[1]);
  w.resume_done = static_cast<std::int64_t>(assign->words[2]);
  w.resume_fetched = static_cast<std::int64_t>(assign->words[3]);
  w.num_blocks = static_cast<std::int64_t>(assign->words[4]);
  w.pipeline_depth = static_cast<std::int64_t>(assign->words[5]);
  w.rng_seed = assign->words[6];
  w.block_compute = assign->AsDouble(7);
  w.heartbeat_period = assign->AsDouble(8);
  if (w.num_blocks <= 0 || w.blocks_total < 0 || w.resume_done < 0 ||
      w.resume_fetched < w.resume_done || w.resume_fetched > w.blocks_total ||
      w.resume_done > w.blocks_total || w.pipeline_depth < 1) {
    return 3;
  }
  w.done = w.resume_done;
  w.fetched = w.resume_fetched;
  // A checkpoint-everything restart resumes the frozen pipeline verbatim:
  // the fetched-but-uncomputed gap is already staged.
  w.staged = w.resume_fetched - w.resume_done;

  std::thread reader(ReaderLoop, &w);
  std::thread loader(LoaderLoop, &w);
  std::thread trainer(TrainerLoop, &w);
  std::thread heartbeat(HeartbeatLoop, &w);

  // The trainer returns at completion or stop; either way the run is over.
  trainer.join();
  StopWorker(&w);
  loader.join();
  heartbeat.join();
  {
    std::lock_guard<std::mutex> lock(w.mu);
    std::lock_guard<std::mutex> wlock(w.write_mu);
    WriteFrame(fd, WireType::kDrained,
               {static_cast<std::uint64_t>(w.done), static_cast<std::uint64_t>(w.fetched)})
        .ok();  // Best effort; the parent may already be gone.
  }
  // Unblock our own reader (it is parked in recv; the parent keeps its end
  // open until it has reaped us).
  ::shutdown(fd, SHUT_RD);
  reader.join();
  ::close(fd);
  return 0;
}

}  // namespace

int MaybeRunWorkerMain(int argc, char** argv) {
  constexpr const char kFlag[] = "--silod-worker-fd=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      const int fd = std::atoi(argv[i] + sizeof(kFlag) - 1);
      if (fd < 0) {
        return 3;
      }
      return RunWorker(fd);
    }
  }
  return -1;
}

}  // namespace silod
