// EpochShuffler: the loader's shuffled-epoch block order as a seekable cursor.
//
// Historically the loader kept a local (rng, order, position) triple: iota +
// one shuffle per epoch boundary, exactly-once-per-epoch access (§2.2).  The
// RestartCost policies need to *rewind* that cursor — a crash discards the
// un-checkpointed fetch suffix and the loader re-fetches from an earlier
// absolute index — and worker processes need to *resume* from a checkpoint
// index after a respawn.  SeekTo re-derives the epoch state from the seed by
// replaying the shuffles, so the block sequence is bit-identical to the
// historical loader for any crash/resume pattern (and to a crash-free run:
// epoch e's order is e+1 successive Fisher-Yates shuffles of iota).
//
// Cheap by construction: rt traces are tiny (tens of blocks), and SeekTo runs
// only at assignment and rollback, never per block.
#ifndef SILOD_SRC_RT_EPOCH_ORDER_H_
#define SILOD_SRC_RT_EPOCH_ORDER_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace silod {

class EpochShuffler {
 public:
  EpochShuffler(std::uint64_t seed, std::int64_t num_blocks)
      : seed_(seed), rng_(seed), order_(static_cast<std::size_t>(num_blocks)) {
    SILOD_CHECK(num_blocks > 0) << "empty dataset";
    std::iota(order_.begin(), order_.end(), std::int64_t{0});
    rng_.Shuffle(order_);  // Epoch 0's order.
  }

  // The block at the current absolute fetch index; advances the cursor
  // (reshuffling at each epoch boundary).
  std::int64_t Next() {
    if (position_ == order_.size()) {
      rng_.Shuffle(order_);
      position_ = 0;
    }
    return order_[position_++];
  }

  // Repositions to absolute fetch index `index` (epoch = index / num_blocks),
  // re-deriving the epoch's order from the seed.  Seeking to the index the
  // cursor is already at is a no-op in effect: the next Next() returns the
  // same block either way.
  void SeekTo(std::int64_t index) {
    SILOD_CHECK(index >= 0) << "negative fetch index";
    const auto n = static_cast<std::int64_t>(order_.size());
    const std::int64_t epoch = index / n;
    rng_ = Rng(seed_);
    std::iota(order_.begin(), order_.end(), std::int64_t{0});
    for (std::int64_t e = 0; e <= epoch; ++e) {
      rng_.Shuffle(order_);
    }
    position_ = static_cast<std::size_t>(index % n);
  }

 private:
  std::uint64_t seed_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::size_t position_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_RT_EPOCH_ORDER_H_
