// NodeManager: the per-node worker-process pool of the multi-process runtime
// (docs/MODEL.md §10).
//
// One real OS process per trainer: Spawn fork/execs the host binary back on
// itself ("/proc/self/exe --silod-worker-fd=3", see rt/worker_main.h) with an
// AF_UNIX stream socket as the control channel, a per-worker handler thread
// speaks the rt/wire.h protocol, and exits are reaped with waitpid and
// classified.  The division of labor keeps the cluster state in one place:
// workers own only their compute/pipeline loop; every cache access, throttle
// wait and remote read happens in the parent via Host::FetchBlock while the
// worker blocks on the reply — so an injected kWorkerCrash can SIGKILL the
// process without any shared state to corrupt, and the restart pays its
// refetch cost through the very same DataManager path the thread-mode
// trainers use.
//
// Exit classification: a worker that dies while marked killed (injected
// crash) or stopping (drain), or after sending kDrained, exited as expected;
// anything else — a real crash — is surfaced through Host::OnUnexpectedExit
// so the cluster can write a minidump and respawn.
//
// Incarnations: every Spawn bumps the job's incarnation, and all Host
// callbacks carry it.  Frames can sit in a socket buffer after their worker
// was SIGKILLed; the incarnation lets the cluster drop such stale progress
// instead of resurrecting pre-crash counters after a rollback.
#ifndef SILOD_SRC_RT_NODE_MANAGER_H_
#define SILOD_SRC_RT_NODE_MANAGER_H_

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/workload/job.h"

namespace silod {

struct WorkerConfig {
  JobId job = kInvalidJob;
  std::uint64_t incarnation = 0;
  std::int64_t blocks_total = 0;
  std::int64_t resume_done = 0;     // Checkpoint index the worker resumes from.
  // Fetch-cursor resume index (>= resume_done); the gap is pre-staged, so a
  // checkpoint-everything restart freezes the pipeline instead of re-reading
  // it.
  std::int64_t resume_fetched = 0;
  std::int64_t num_blocks = 0;      // Blocks per epoch (shuffle geometry).
  std::int64_t pipeline_depth = 1;
  std::uint64_t rng_seed = 0;     // Epoch-shuffle seed (same as thread mode).
  Seconds block_compute = 0;
  Seconds heartbeat_period = 0.25;
};

class NodeManager {
 public:
  // The cluster side of the protocol.  FetchBlock runs the full fetch path
  // (cache access under the manager lock, throttle wait, remote read with
  // retries) on the handler thread while the worker blocks on the reply;
  // implementations must return promptly once the run is stopping (via
  // *aborted).  All callbacks may run concurrently from different handler
  // threads.
  class Host {
   public:
    virtual ~Host() = default;
    virtual bool FetchBlock(JobId job, std::uint64_t incarnation, std::int64_t fetch_index,
                            std::int64_t block, bool* aborted) = 0;
    virtual void OnBlockDone(JobId job, std::uint64_t incarnation, std::int64_t blocks_done) = 0;
    virtual void OnHeartbeat(JobId /*job*/, std::uint64_t /*incarnation*/,
                             std::int64_t /*blocks_done*/) {}
    virtual void OnDrained(JobId job, std::uint64_t incarnation, std::int64_t blocks_done,
                           std::int64_t blocks_fetched) = 0;
    // The worker died without being killed, stopped or drained.  Runs on the
    // handler thread after the pid was reaped; the worker is already retired,
    // so the implementation may Spawn a replacement from inside the callback.
    virtual void OnUnexpectedExit(JobId job, std::uint64_t incarnation, int wait_status) = 0;
  };

  explicit NodeManager(Host* host);
  ~NodeManager();  // Stop(0) + joins if still running.

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  // Forks one worker for `config.job` and starts its handler thread.
  Status Spawn(const WorkerConfig& config);

  // SIGKILLs the job's live worker (an injected kWorkerCrash).  False when
  // the job has no live worker.
  bool Kill(JobId job);

  // Blocks until every worker of `job` has been reaped and its handler
  // retired (so no stale FetchBlock is in flight), or `timeout` passes.
  // True when the job is idle.
  bool WaitIdle(JobId job, Seconds timeout);

  // Graceful shutdown: sends kStop to every live worker, waits up to `grace`
  // for them to drain and exit, SIGKILLs stragglers, then joins every
  // handler thread (including long-retired ones).  Idempotent.
  void Stop(Seconds grace);

  int live_workers() const;

 private:
  enum class WorkerStateKind { kRunning, kKilled, kStopping, kExited };

  struct Worker {
    WorkerConfig config;
    pid_t pid = -1;
    int fd = -1;
    WorkerStateKind state = WorkerStateKind::kRunning;
    bool drained = false;
    std::thread handler;
  };

  void HandlerLoop(Worker* worker);

  Host* const host_;
  mutable std::mutex mu_;
  std::condition_variable exited_cv_;
  bool stopped_ = false;
  // Append-only so Worker* stays stable for handler threads; exited workers
  // are retired in place and joined at Stop.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace silod

#endif  // SILOD_SRC_RT_NODE_MANAGER_H_
