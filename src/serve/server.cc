#include "src/serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "src/common/logging.h"
#include "src/serve/proto.h"

namespace silod {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

// AF_UNIX path length is capped by sun_path (typically 108 bytes).
Status FillAddress(const std::string& path, sockaddr_un* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument("bad socket path '" + path + "' (empty or longer than " +
                                   std::to_string(sizeof(addr->sun_path) - 1) + " bytes)");
  }
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

Result<int> ConnectTo(const std::string& socket_path, const ClientOptions& options) {
  sockaddr_un addr;
  if (const Status st = FillAddress(socket_path, &addr); !st.ok()) {
    return st;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return ErrnoStatus("socket");
  }
  // Deadline-bounded connect: go non-blocking, poll for writability, then
  // read SO_ERROR for the real outcome.  AF_UNIX connects normally resolve
  // immediately, but a full listen backlog can block indefinitely.
  int flags = 0;
  if (options.timeout_ms > 0) {
    flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      const Status st = ErrnoStatus("fcntl O_NONBLOCK");
      close(fd);
      return st;
    }
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (options.timeout_ms > 0 && (errno == EINPROGRESS || errno == EAGAIN)) {
      pollfd pfd = {fd, POLLOUT, 0};
      const int ready = poll(&pfd, 1, options.timeout_ms);
      if (ready == 0) {
        close(fd);
        return Status::DeadlineExceeded("connect to '" + socket_path + "' timed out after " +
                                        std::to_string(options.timeout_ms) + " ms");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (ready < 0 || getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
          so_error != 0) {
        if (so_error != 0) {
          errno = so_error;
        }
        const Status st = ErrnoStatus("connect to '" + socket_path + "'");
        close(fd);
        return st;
      }
    } else {
      const Status st = ErrnoStatus("connect to '" + socket_path + "'");
      close(fd);
      return st;
    }
  }
  if (options.timeout_ms > 0) {
    // Back to blocking I/O with per-call kernel deadlines; framing.cc maps
    // the resulting EAGAIN to kDeadlineExceeded.
    if (fcntl(fd, F_SETFL, flags) != 0) {
      const Status st = ErrnoStatus("fcntl restore flags");
      close(fd);
      return st;
    }
    timeval tv;
    tv.tv_sec = options.timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(options.timeout_ms % 1000) * 1000;
    if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
      const Status st = ErrnoStatus("setsockopt timeout");
      close(fd);
      return st;
    }
  }
  return fd;
}

}  // namespace

UnixServer::UnixServer(std::string socket_path, ServiceState* service)
    : socket_path_(std::move(socket_path)), service_(service) {
  SILOD_CHECK(service_ != nullptr) << "service required";
}

UnixServer::~UnixServer() {
  CloseAll();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    unlink(socket_path_.c_str());
  }
}

Status UnixServer::Start() {
  sockaddr_un addr;
  if (const Status st = FillAddress(socket_path_, &addr); !st.ok()) {
    return st;
  }
  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return ErrnoStatus("socket");
  }
  // A stale socket file from a crashed daemon would fail the bind; remove it
  // (a live daemon would still hold the listen, so a second instance fails
  // at bind only if something else races the path).
  unlink(socket_path_.c_str());
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = ErrnoStatus("bind '" + socket_path_ + "'");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 16) != 0) {
    const Status st = ErrnoStatus("listen '" + socket_path_ + "'");
    close(listen_fd_);
    listen_fd_ = -1;
    unlink(socket_path_.c_str());
    return st;
  }
  return Status::Ok();
}

void UnixServer::CloseClient(std::size_t index) {
  close(clients_[index]);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(index));
}

void UnixServer::CloseAll() {
  for (const int fd : clients_) {
    close(fd);
  }
  clients_.clear();
}

Status UnixServer::Serve() {
  SILOD_CHECK(listen_fd_ >= 0) << "Start() first";
  while (!service_->shutdown_requested() && !stopped_by_signal()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const int fd : clients_) {
      fds.push_back({fd, POLLIN, 0});
    }
    int ready = poll(fds.data(), fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("poll");
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        clients_.push_back(client);
      } else if (errno != EINTR && errno != ECONNABORTED) {
        return ErrnoStatus("accept");
      }
    }
    // Walk backwards so CloseClient's erase cannot skip a ready fd.
    for (std::size_t i = fds.size(); i-- > 1;) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const std::size_t client_index = i - 1;
      const int fd = clients_[client_index];
      Result<ServeRequest> request = ReadRequestFrame(fd);
      if (!request.ok()) {
        // EOF (peer closed) or a framing error: either way the stream is no
        // longer trustworthy, drop the connection.
        CloseClient(client_index);
        continue;
      }
      const ServeResponse response = service_->Handle(*request);
      if (const Status st = WriteResponseFrame(fd, response); !st.ok()) {
        CloseClient(client_index);
        continue;
      }
      if (service_->shutdown_requested() || stopped_by_signal()) {
        break;
      }
    }
  }
  CloseAll();
  return Status::Ok();
}

Result<ServeResponse> CallServe(const std::string& socket_path, const ServeRequest& request,
                                const ClientOptions& options) {
  Result<ServeClient> client = ServeClient::Connect(socket_path, options);
  if (!client.ok()) {
    return client.status();
  }
  return client->Call(request);
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

ServeClient::ServeClient(ServeClient&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Result<ServeClient> ServeClient::Connect(const std::string& socket_path,
                                         const ClientOptions& options) {
  Result<int> fd = ConnectTo(socket_path, options);
  if (!fd.ok()) {
    return fd.status();
  }
  return ServeClient(*fd);
}

Result<ServeResponse> ServeClient::Call(const ServeRequest& request) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  if (const Status st = WriteRequestFrame(fd_, request); !st.ok()) {
    return st;
  }
  return ReadResponseFrame(fd_);
}

}  // namespace silod
