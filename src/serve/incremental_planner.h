// The silodd planning core: dirty-set-driven, epoch-batched re-solves
// (docs/MODEL.md §11).
//
// The planner owns a registry-built scheduler (core/policy_registry.h) and a
// DirtyTracker.  Every mutating daemon event marks jobs/datasets dirty;
// PlanFor() decides whether the current plan is still servable or a re-solve
// is due, and picks the cheapest correct solve:
//
//   - dirty set empty            -> reuse the cached plan (reused_plans);
//   - delta-capable policy,
//     partial dirty set          -> DeltaWaterFill::Solve over the dirty
//                                   jobs (delta_solves) — bit-identical to
//                                   the batch scheduler by construction;
//   - all-dirty (policy/topology
//     /resource change) or a
//     non-delta policy           -> full Scheduler::Schedule (full_solves).
//
// Epoch batching: a re-solve is due when the dirty set is non-empty AND
// (enough marks coalesced, OR the min-replan interval elapsed since the last
// solve, OR the caller forces it).  Between due points queries serve the
// cached plan, so a burst of N arrivals costs one solve, not N.
//
// Delta capability is decided from the policy name: "<sched>+silod" with
// sched in {fifo, sjf} and non-preemptive SJF.  Everything else (gavel's
// LP, the stateful Quiver profiler, baseline cache models) takes the full
// path — correct for all policies, merely slower.
#ifndef SILOD_SRC_SERVE_INCREMENTAL_PLANNER_H_
#define SILOD_SRC_SERVE_INCREMENTAL_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/dirty_tracker.h"
#include "src/core/policy_registry.h"
#include "src/sched/delta_fill.h"

namespace silod {

struct PlanningOptions {
  // Coalescing window: with a fresh dirty set, wait until this much virtual
  // time passed since the last solve (0 = re-solve on every dirty event).
  Seconds min_replan_interval = 0;
  // ... unless this many marks already coalesced, which forces the tick
  // early (1 = every event plans immediately, batching disabled).
  std::uint64_t max_coalesced_events = 1;
};

class IncrementalPlanner {
 public:
  // kNotFound (listing known policies) for unknown names.
  static Result<std::unique_ptr<IncrementalPlanner>> Create(const std::string& policy,
                                                            const SchedulerOptions& options,
                                                            const PlanningOptions& planning);

  // Swaps the scheduler (and delta solver) for `policy` without losing job
  // state; marks everything dirty so the next plan is a full solve.
  Status ReloadPolicy(const std::string& policy, const SchedulerOptions& options);

  // The daemon's mutation journal; the service marks events here.
  DirtyTracker& dirty() { return dirty_; }
  const DirtyTracker& dirty() const { return dirty_; }

  // Returns the current plan, re-solving first when dirty and due (or
  // `force`).  The snapshot must reflect all mutations marked so far.
  const AllocationPlan& PlanFor(const Snapshot& snapshot, bool force);

  const std::string& policy_name() const { return policy_; }
  bool delta_capable() const { return delta_ != nullptr; }
  Seconds last_plan_time() const { return last_plan_time_; }

  // Journal recovery: restores the epoch-batching clock a checkpoint saved,
  // so Due() fires at the same virtual instants as the uninterrupted run.
  void RestorePlanningClock(Seconds last_plan_time) { last_plan_time_ = last_plan_time; }

  std::uint64_t full_solves() const { return full_solves_; }
  std::uint64_t delta_solves() const { return delta_solves_; }
  std::uint64_t reused_plans() const { return reused_plans_; }
  std::uint64_t planning_ticks() const { return planning_ticks_; }
  const DeltaWaterFill* delta() const { return delta_.get(); }

 private:
  IncrementalPlanner(std::string policy, SchedulerOptions options, PlanningOptions planning,
                     std::shared_ptr<Scheduler> scheduler);

  bool Due(const Snapshot& snapshot) const;
  // Builds the delta solver when the policy supports it, else null.
  static std::unique_ptr<DeltaWaterFill> MakeDelta(const std::string& policy,
                                                   const SchedulerOptions& options);

  std::string policy_;
  SchedulerOptions options_;
  PlanningOptions planning_;
  std::shared_ptr<Scheduler> scheduler_;
  std::unique_ptr<DeltaWaterFill> delta_;

  DirtyTracker dirty_;
  AllocationPlan plan_;
  bool have_plan_ = false;
  Seconds last_plan_time_ = 0;

  std::uint64_t full_solves_ = 0;
  std::uint64_t delta_solves_ = 0;
  std::uint64_t reused_plans_ = 0;
  std::uint64_t planning_ticks_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_INCREMENTAL_PLANNER_H_
