// silodd's transport: a single-process poll() event loop on an AF_UNIX
// stream socket (docs/MODEL.md §11).
//
// One frame in, one frame out, per client, per turn: the loop polls the
// listening socket plus every connected client, reads one request frame from
// a readable client, dispatches it to ServiceState::Handle and writes the
// response before polling again.  Requests are therefore totally ordered —
// the daemon's determinism contract — and no locks exist anywhere in the
// serve path.  Frames are tiny (one text line), so the blocking per-frame
// read after poll() says readable is the simplicity/fairness trade the rt
// NodeManager already makes.
#ifndef SILOD_SRC_SERVE_SERVER_H_
#define SILOD_SRC_SERVE_SERVER_H_

#include <csignal>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/serve/service.h"

namespace silod {

class UnixServer {
 public:
  // Binds and listens on `socket_path`, replacing any stale socket file.
  UnixServer(std::string socket_path, ServiceState* service);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  Status Start();

  // Serves until a shutdown request is handled (its response is written
  // before the loop exits), the stop flag goes nonzero, or a fatal socket
  // error.
  Status Serve();

  // Graceful signal shutdown: silodd's SIGTERM/SIGINT handler sets the flag,
  // the handler-interrupted poll() returns EINTR, and the loop re-checks the
  // flag before blocking again.  Responses are written synchronously inside
  // each loop turn, so no in-flight response can be cut off.  The handlers
  // must be installed without SA_RESTART or poll() would resume instead.
  void set_stop_flag(const volatile std::sig_atomic_t* flag) { stop_flag_ = flag; }
  bool stopped_by_signal() const { return stop_flag_ != nullptr && *stop_flag_ != 0; }

  const std::string& socket_path() const { return socket_path_; }
  bool listening() const { return listen_fd_ >= 0; }

 private:
  void CloseClient(std::size_t index);
  void CloseAll();

  std::string socket_path_;
  ServiceState* service_;
  int listen_fd_ = -1;
  std::vector<int> clients_;
  const volatile std::sig_atomic_t* stop_flag_ = nullptr;
};

// Client-side deadlines.  0 disables: connect and reads block forever, the
// pre-deadline behaviour.  With a timeout, a stuck daemon surfaces as
// kDeadlineExceeded instead of a hang (silod_client maps that to exit 2).
struct ClientOptions {
  int timeout_ms = 0;  // Applies to connect, and to each read/write.
};

// One round-trip as a client: connect to `socket_path`, send `request`,
// return the decoded response.  The CLI and tests use this; it opens a fresh
// connection per call (connections are cheap on AF_UNIX and the daemon holds
// no per-connection state).
Result<ServeResponse> CallServe(const std::string& socket_path, const ServeRequest& request,
                                const ClientOptions& options = {});

// A persistent client connection for request sequences (trace replay).
class ServeClient {
 public:
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;

  static Result<ServeClient> Connect(const std::string& socket_path,
                                     const ClientOptions& options = {});
  Result<ServeResponse> Call(const ServeRequest& request);

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_SERVER_H_
