// silodd's transport: a single-process poll() event loop on an AF_UNIX
// stream socket (docs/MODEL.md §11).
//
// One frame in, one frame out, per client, per turn: the loop polls the
// listening socket plus every connected client, reads one request frame from
// a readable client, dispatches it to ServiceState::Handle and writes the
// response before polling again.  Requests are therefore totally ordered —
// the daemon's determinism contract — and no locks exist anywhere in the
// serve path.  Frames are tiny (one text line), so the blocking per-frame
// read after poll() says readable is the simplicity/fairness trade the rt
// NodeManager already makes.
#ifndef SILOD_SRC_SERVE_SERVER_H_
#define SILOD_SRC_SERVE_SERVER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/serve/service.h"

namespace silod {

class UnixServer {
 public:
  // Binds and listens on `socket_path`, replacing any stale socket file.
  UnixServer(std::string socket_path, ServiceState* service);
  ~UnixServer();

  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  Status Start();

  // Serves until a shutdown request is handled (its response is written
  // before the loop exits) or a fatal socket error.
  Status Serve();

  const std::string& socket_path() const { return socket_path_; }
  bool listening() const { return listen_fd_ >= 0; }

 private:
  void CloseClient(std::size_t index);
  void CloseAll();

  std::string socket_path_;
  ServiceState* service_;
  int listen_fd_ = -1;
  std::vector<int> clients_;
};

// One round-trip as a client: connect to `socket_path`, send `request`,
// return the decoded response.  The CLI and tests use this; it opens a fresh
// connection per call (connections are cheap on AF_UNIX and the daemon holds
// no per-connection state).
Result<ServeResponse> CallServe(const std::string& socket_path, const ServeRequest& request);

// A persistent client connection for request sequences (trace replay).
class ServeClient {
 public:
  ~ServeClient();
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&&) = delete;

  static Result<ServeClient> Connect(const std::string& socket_path);
  Result<ServeResponse> Call(const ServeRequest& request);

 private:
  explicit ServeClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_SERVER_H_
