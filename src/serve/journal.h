// The silodd write-ahead request journal (docs/MODEL.md §12).
//
// The daemon is a deterministic function of its request sequence (virtual
// clock, totally ordered frames), so durability is log-and-replay, exact
// rather than best-effort: every mutating request frame is appended here
// *before* ServiceState::Handle applies it, and on restart the surviving
// records replay through the normal dispatch path to rebuild the job table,
// admission queue and planner state bit-identically.
//
// On-disk format — a flat sequence of CRC-guarded, length-prefixed records:
//
//   u32 LE  body length N (type byte + payload; 1 <= N <= 16 MB)
//   u32 LE  CRC-32 of the body (common/framing.h Crc32)
//   u8      record type (kRequest | kCheckpoint)
//   bytes   payload (N - 1 bytes)
//
// A kRequest payload is the deterministic ServeRequest::Encode() text; a
// kCheckpoint payload is the ServiceState checkpoint text (service.h), which
// compaction writes so the request tail before it can be dropped.
//
// Torn-tail rule: the scan on open accepts the longest valid prefix and
// truncates the file at the first record whose header is short, whose length
// is absurd, or whose CRC fails — a crash mid-append loses at most the
// record being written, and the daemon NEVER refuses to start over a torn
// tail (a CRC-valid record that fails to decode is a version/config error
// and does fail, loudly).
//
// Sync policy (--journal-sync): kAlways fdatasyncs every append, kBatch
// every N appends (and on Sync(), which graceful shutdown calls), kNone
// leaves flushing to the OS.  A SIGKILL never loses write()n data — batching
// only risks the tail on power loss — and lost-tail recovery is still exact
// because clients re-send with monotone rid= tags the daemon dedupes.
#ifndef SILOD_SRC_SERVE_JOURNAL_H_
#define SILOD_SRC_SERVE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace silod {

enum class JournalRecordType : std::uint8_t {
  kRequest = 1,
  kCheckpoint = 2,
};

enum class JournalSyncMode { kAlways, kBatch, kNone };

const char* JournalSyncModeName(JournalSyncMode mode);

// Records larger than this are treated as torn (a checkpoint of a
// million-job table is ~100 MB of text; 256 MB leaves headroom).
inline constexpr std::uint32_t kMaxJournalRecordBytes = 256u * 1024 * 1024;

struct JournalOptions {
  std::string path;
  JournalSyncMode sync = JournalSyncMode::kBatch;
  // For kBatch: fdatasync after this many unsynced appends.
  std::uint32_t batch_frames = 64;
  // Auto-compaction threshold: after an append pushes the file past this,
  // the service writes a checkpoint and truncates.  0 = manual only.
  std::uint64_t max_bytes = 0;
};

// Parses a --journal-sync spec: "always" | "batch:<N>" (N >= 1) | "none".
Status ParseJournalSyncSpec(const std::string& spec, JournalOptions* options);

// What the open-time scan recovered (everything the daemon must replay).
struct JournalScan {
  bool has_checkpoint = false;
  std::string checkpoint;             // Payload of the LAST checkpoint record.
  std::vector<std::string> requests;  // Request payloads after that checkpoint.
  std::uint64_t records = 0;          // Surviving records (incl. checkpoints).
  std::uint64_t dropped_bytes = 0;    // Torn tail truncated on open.
};

// Encodes one record exactly as it lands on disk (exposed for tests).
std::string EncodeJournalRecord(JournalRecordType type, const std::string& payload);

class Journal {
 public:
  // Opens (creating if absent) the journal at options.path, scans existing
  // records into *scan, truncates any torn tail, and positions for append.
  static Result<std::unique_ptr<Journal>> Open(const JournalOptions& options, JournalScan* scan);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends one record and applies the sync policy.  An error here means the
  // frame is NOT durable; the service refuses to apply the request.
  Status AppendRequest(const std::string& payload);

  // Compaction: atomically replaces the journal with a single checkpoint
  // record (write to <path>.tmp, fdatasync, rename over, fsync the
  // directory), so a crash at any instant leaves either the old journal or
  // the compacted one — never a mix.
  Status Compact(const std::string& checkpoint_payload);

  // fdatasyncs any unsynced appends now (graceful shutdown, tests).
  Status Sync();

  bool ShouldAutoCompact() const {
    return options_.max_bytes > 0 && size_bytes_ > options_.max_bytes;
  }

  const std::string& path() const { return options_.path; }
  const JournalOptions& options() const { return options_; }
  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t syncs() const { return syncs_; }

 private:
  Journal(JournalOptions options, int fd, std::uint64_t size);

  Status Append(JournalRecordType type, const std::string& payload);
  Status MaybeSync();

  JournalOptions options_;
  int fd_ = -1;
  std::uint64_t size_bytes_ = 0;
  std::uint32_t unsynced_ = 0;
  std::uint64_t appended_records_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t syncs_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_JOURNAL_H_
