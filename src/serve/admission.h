// Admission control for silodd (docs/MODEL.md §11).
//
// The schedulers in this repo are work-conserving over whatever job set the
// snapshot carries, so a long-lived daemon needs a gate *in front* of them:
// past a configured GPU-load saturation threshold, new submissions are
// queued (FIFO) instead of joining the scheduler's waiting pool, and past a
// queue bound they are rejected outright.  Queued jobs are invisible to the
// scheduler — they hold no score, no cache efficiency, no demand — and are
// promoted in submission order as completions and cancellations free load.
//
// Edge semantics (pinned by tests/serve_test.cc): a submission that lands
// *exactly* at the threshold is admitted; the gate rejects only strictly
// beyond it.
#ifndef SILOD_SRC_SERVE_ADMISSION_H_
#define SILOD_SRC_SERVE_ADMISSION_H_

#include <cstdint>

namespace silod {

struct AdmissionOptions {
  // Admit while (active GPU demand + candidate) / total_gpus <= this.  The
  // default 1.0 admits up to (and including) a fully subscribed cluster;
  // values > 1 allow oversubscription of the waiting pool, and a huge value
  // disables the gate (every job goes straight to the scheduler).
  double max_gpu_load = 1.0;
  // Queued submissions beyond this are rejected.  0 = never queue (reject as
  // soon as the load gate trips).
  int max_queue = 1024;
};

enum class AdmissionDecision { kAdmit, kQueue, kReject };

const char* AdmissionDecisionName(AdmissionDecision decision);

class AdmissionController {
 public:
  AdmissionController(AdmissionOptions options, int total_gpus);

  // Decision for a candidate of `candidate_gpus` given the current active
  // demand and queue depth.
  AdmissionDecision Decide(int active_gpu_demand, int queued, int candidate_gpus) const;

  // True when the candidate passes the load gate alone (promotion check).
  bool LoadAllows(int active_gpu_demand, int candidate_gpus) const;

  // The load the candidate would bring the cluster to (for stats/errors).
  double LoadWith(int active_gpu_demand, int candidate_gpus) const;

  const AdmissionOptions& options() const { return options_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t queued() const { return queued_count_; }
  std::uint64_t rejected() const { return rejected_; }
  // Records the outcome of a Decide the caller acted on.
  void Record(AdmissionDecision decision);

  // Journal recovery: restores the lifetime counters a checkpoint saved
  // (serve/journal.h); replayed requests then re-Record their deltas.
  void RestoreCounters(std::uint64_t admitted, std::uint64_t queued, std::uint64_t rejected) {
    admitted_ = admitted;
    queued_count_ = queued;
    rejected_ = rejected;
  }

 private:
  AdmissionOptions options_;
  int total_gpus_;
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_count_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_ADMISSION_H_
