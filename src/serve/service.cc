#include "src/serve/service.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "src/common/logging.h"
#include "src/sched/allocation.h"

namespace silod {
namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatU64(std::uint64_t value) { return std::to_string(value); }

std::string FormatDigest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

ServeResponse OkResponse() {
  ServeResponse response;
  response.code = StatusCode::kOk;
  return response;
}

// --- StateDigest mixing (FNV-1a, 64-bit, byte-at-a-time) ------------------

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void MixByte(std::uint64_t* h, unsigned char b) {
  *h ^= b;
  *h *= kFnvPrime;
}

void MixU64(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    MixByte(h, static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }
}

// Raw bit pattern, so the digest distinguishes -0.0/0.0 and is exact.
void MixDouble(std::uint64_t* h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  MixU64(h, bits);
}

void MixString(std::uint64_t* h, const std::string& s) {
  MixU64(h, s.size());
  for (const char c : s) {
    MixByte(h, static_cast<unsigned char>(c));
  }
}

// --- Checkpoint text parsing (silodd-checkpoint-v1) -----------------------

using CkptArgs = std::map<std::string, std::string>;

// Splits "kind key=value ..." with the same percent-escaping as the wire
// protocol, so keys/names with spaces survive the line format.
Status ParseCheckpointLine(const std::string& line, std::string* kind, CkptArgs* args) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (c == ' ') {
      if (!token.empty()) {
        tokens.push_back(token);
        token.clear();
      }
    } else {
      token += c;
    }
  }
  if (!token.empty()) {
    tokens.push_back(token);
  }
  if (tokens.empty()) {
    return Status::Internal("journal checkpoint: empty line");
  }
  *kind = tokens[0];
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::Internal("journal checkpoint: malformed token '" + tokens[i] + "'");
    }
    Result<std::string> value = UnescapeToken(tokens[i].substr(eq + 1));
    if (!value.ok()) {
      return Status::Internal("journal checkpoint: " + value.status().message());
    }
    (*args)[tokens[i].substr(0, eq)] = *std::move(value);
  }
  return Status::Ok();
}

Result<std::string> CkptString(const CkptArgs& args, const std::string& kind,
                               const std::string& key) {
  const auto it = args.find(key);
  if (it == args.end()) {
    return Status::Internal("journal checkpoint: '" + kind + "' line is missing '" + key + "'");
  }
  return it->second;
}

Result<double> CkptDouble(const CkptArgs& args, const std::string& kind, const std::string& key) {
  Result<std::string> raw = CkptString(args, kind, key);
  if (!raw.ok()) {
    return raw.status();
  }
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (raw->empty() || end == nullptr || *end != '\0') {
    return Status::Internal("journal checkpoint: '" + kind + "." + key + "' is not a number: " +
                            *raw);
  }
  return value;
}

Result<std::int64_t> CkptInt(const CkptArgs& args, const std::string& kind,
                             const std::string& key) {
  Result<std::string> raw = CkptString(args, kind, key);
  if (!raw.ok()) {
    return raw.status();
  }
  char* end = nullptr;
  const long long value = std::strtoll(raw->c_str(), &end, 10);
  if (raw->empty() || end == nullptr || *end != '\0') {
    return Status::Internal("journal checkpoint: '" + kind + "." + key + "' is not an integer: " +
                            *raw);
  }
  return static_cast<std::int64_t>(value);
}

Result<std::uint64_t> CkptU64(const CkptArgs& args, const std::string& kind,
                              const std::string& key) {
  Result<std::int64_t> value = CkptInt(args, kind, key);
  if (!value.ok()) {
    return value.status();
  }
  if (*value < 0) {
    return Status::Internal("journal checkpoint: '" + kind + "." + key + "' is negative");
  }
  return static_cast<std::uint64_t>(*value);
}

// "1,7,12" -> {1, 7, 12}; the empty string is the empty list.
Result<std::vector<std::int64_t>> ParseIdCsv(const std::string& csv, const std::string& what) {
  std::vector<std::int64_t> ids;
  std::string item;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i < csv.size() && csv[i] != ',') {
      item += csv[i];
      continue;
    }
    if (item.empty()) {
      if (csv.empty()) {
        break;
      }
      return Status::Internal("journal checkpoint: empty id in '" + what + "'");
    }
    char* end = nullptr;
    const long long value = std::strtoll(item.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::Internal("journal checkpoint: bad id '" + item + "' in '" + what + "'");
    }
    ids.push_back(static_cast<std::int64_t>(value));
    item.clear();
  }
  return ids;
}

std::string IdCsv(const std::vector<std::int64_t>& ids) {
  std::string csv;
  for (const std::int64_t id : ids) {
    if (!csv.empty()) {
      csv += ',';
    }
    csv += std::to_string(id);
  }
  return csv;
}

}  // namespace

bool IsMutatingVerb(const std::string& verb) {
  // `plan` forces a solve that flips running flags and stamps first-start
  // times, so it must replay; checkpoint/shutdown/query/stats/report leave
  // the scheduling state untouched.
  return verb == "submit" || verb == "complete" || verb == "cancel" || verb == "progress" ||
         verb == "reload-policy" || verb == "plan";
}

ServiceState::ServiceState(ServiceConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<ServiceState>> ServiceState::Create(ServiceConfig config) {
  if (config.resources.total_gpus <= 0) {
    return Status::InvalidArgument("total_gpus must be positive");
  }
  auto service = std::unique_ptr<ServiceState>(new ServiceState(std::move(config)));
  if (!service->config_.topology.empty()) {
    const Status st = service->config_.topology.Validate(service->config_.resources.num_servers);
    if (!st.ok()) {
      return st;
    }
    service->covered_topology_ =
        service->config_.topology.Cover(service->config_.resources.num_servers);
  } else if (service->config_.topology.has_gpu_types()) {
    // gpu-type entries without zones still need to reach the scheduler.
    service->covered_topology_ = service->config_.topology;
  }
  if (service->config_.topology.has_gpu_types() &&
      service->config_.topology.TotalTypedGpus() != service->config_.resources.total_gpus) {
    return Status::InvalidArgument(
        "gpu-type counts sum to " + std::to_string(service->config_.topology.TotalTypedGpus()) +
        " but the cluster has " + std::to_string(service->config_.resources.total_gpus) + " GPUs");
  }
  Result<std::unique_ptr<IncrementalPlanner>> planner = IncrementalPlanner::Create(
      service->config_.policy, service->config_.scheduler, service->config_.planning);
  if (!planner.ok()) {
    return planner.status();
  }
  service->planner_ = std::move(planner).value();
  service->admission_ = std::make_unique<AdmissionController>(
      service->config_.admission, service->config_.resources.total_gpus);
  return service;
}

Result<std::unique_ptr<ServiceState>> ServiceState::CreateFromJournal(
    ServiceConfig config, const JournalOptions& journal, RecoveryInfo* recovery) {
  Result<std::unique_ptr<ServiceState>> service = Create(std::move(config));
  if (!service.ok()) {
    return service.status();
  }
  JournalScan scan;
  Result<std::unique_ptr<Journal>> wal = Journal::Open(journal, &scan);
  if (!wal.ok()) {
    return wal.status();
  }
  RecoveryInfo info;
  info.dropped_bytes = scan.dropped_bytes;
  if (scan.has_checkpoint) {
    if (const Status st = (*service)->RestoreFromCheckpoint(scan.checkpoint, &info); !st.ok()) {
      return st;
    }
    info.from_checkpoint = true;
  }
  (*service)->replaying_ = true;
  for (const std::string& payload : scan.requests) {
    Result<ServeRequest> request = ServeRequest::Decode(payload);
    if (!request.ok()) {
      // A CRC-valid record that fails to decode is a version mismatch, not a
      // torn tail; starting over it would silently drop accepted state.
      return Status::Internal("journal replay: undecodable request record: " +
                              request.status().message());
    }
    const ServeResponse response = (*service)->Handle(*request);
    ++info.replayed_requests;
    if (!response.ok()) {
      // The original run journaled the request before learning it would fail,
      // so failures replay too; they are expected, counted, and non-fatal.
      ++info.replayed_errors;
    }
  }
  (*service)->replaying_ = false;
  (*service)->AttachJournal(std::move(wal).value());
  (*service)->recovery_ = info;
  if (recovery != nullptr) {
    *recovery = info;
  }
  return service;
}

Snapshot ServiceState::MakeSnapshot() const {
  const bool have_topology = !covered_topology_.empty() || covered_topology_.has_gpu_types();
  return table_.BuildSnapshot(now_, config_.resources,
                              have_topology ? &covered_topology_ : nullptr);
}

Status ServiceState::AdvanceClock(const ServeRequest& request) {
  if (!request.Has("t")) {
    return Status::Ok();
  }
  Result<double> t = request.GetDouble("t");
  if (!t.ok()) {
    return t.status();
  }
  if (*t < 0) {
    return Status::InvalidArgument(request.verb + ": t must be >= 0");
  }
  if (*t > now_) {
    now_ = *t;
  }
  return Status::Ok();
}

void ServiceState::Replan(bool force) {
  const Snapshot snapshot = MakeSnapshot();
  const AllocationPlan& plan = planner_->PlanFor(snapshot, force);
  for (const auto& job : table_.jobs()) {
    if (job->state != ServeJobState::kActive) {
      continue;
    }
    const bool running = plan.IsRunning(job->spec.id);
    if (running && !job->running && job->first_start_time < 0) {
      job->first_start_time = now_;
    }
    job->running = running;
    job->gpu_type = running ? plan.Get(job->spec.id).gpu_type : -1;
  }
}

const AllocationPlan& ServiceState::PlanNow() {
  Replan(/*force=*/true);
  const Snapshot snapshot = MakeSnapshot();
  return planner_->PlanFor(snapshot, /*force=*/true);
}

void ServiceState::PromoteQueued() {
  // Strict FIFO: promote from the head while the gate allows; the first job
  // that does not fit blocks everything behind it.
  for (ServeJob* job : table_.QueuedJobs()) {
    if (!admission_->LoadAllows(table_.ActiveGpuDemand(), job->spec.num_gpus)) {
      break;
    }
    job->state = ServeJobState::kActive;
    job->admit_time = now_;
    admission_->Record(AdmissionDecision::kAdmit);
    planner_->dirty().MarkJob(job->spec.id);
  }
}

ServeResponse ServiceState::Handle(const ServeRequest& request) {
  ++requests_;
  const bool mutating = IsMutatingVerb(request.verb);

  // Idempotent retry: a mutating request may carry a monotone rid.  A rid at
  // or below the last applied one was already applied (and journaled) by a
  // previous delivery — acknowledge it without touching state, so clients can
  // blindly re-send across a daemon restart.
  std::uint64_t rid = 0;
  if (mutating && request.Has("rid")) {
    Result<std::int64_t> parsed = request.GetInt("rid");
    if (!parsed.ok()) {
      ++errors_;
      return ServeResponse::FromStatus(parsed.status());
    }
    if (*parsed <= 0) {
      ++errors_;
      return ServeResponse::FromStatus(
          Status::InvalidArgument(request.verb + ": rid must be positive"));
    }
    rid = static_cast<std::uint64_t>(*parsed);
    if (rid <= last_rid_) {
      ++duplicates_;
      ServeResponse response = OkResponse();
      response.fields["duplicate"] = "1";
      response.fields["rid"] = FormatU64(rid);
      response.fields["last-rid"] = FormatU64(last_rid_);
      return response;
    }
  }

  // Write-ahead: the frame must be durable before it can change state.  A
  // failed append refuses the request — the client retries with the same rid.
  if (journal_ != nullptr && mutating && !replaying_) {
    if (const Status st = journal_->AppendRequest(request.Encode()); !st.ok()) {
      ++errors_;
      return ServeResponse::FromStatus(
          Status::Internal("journal append failed, refusing to apply: " + st.message()));
    }
  }

  ServeResponse response = Dispatch(request);
  if (!response.ok()) {
    ++errors_;
  } else if (rid > 0) {
    last_rid_ = rid;
  }

  // Auto-compaction keeps the journal bounded; failure is non-fatal (the
  // mutation is already durable in the un-compacted journal).
  if (journal_ != nullptr && mutating && !replaying_ && journal_->ShouldAutoCompact()) {
    if (const Status st = journal_->Compact(CheckpointText()); st.ok()) {
      ++checkpoints_;
    } else {
      SILOD_LOG(Warning) << "journal auto-compaction failed: " << st.message();
    }
  }
  return response;
}

ServeResponse ServiceState::Dispatch(const ServeRequest& request) {
  ServeResponse response;
  if (const Status st = AdvanceClock(request); !st.ok()) {
    response = ServeResponse::FromStatus(st);
  } else if (request.verb == "submit") {
    response = Submit(request);
  } else if (request.verb == "complete") {
    response = Complete(request);
  } else if (request.verb == "cancel") {
    response = Cancel(request);
  } else if (request.verb == "progress") {
    response = Progress(request);
  } else if (request.verb == "query") {
    response = Query(request);
  } else if (request.verb == "plan") {
    response = Plan(request);
  } else if (request.verb == "stats") {
    response = Stats();
  } else if (request.verb == "reload-policy") {
    response = ReloadPolicy(request);
  } else if (request.verb == "checkpoint") {
    response = Checkpoint();
  } else if (request.verb == "report") {
    // The JCT summary travels both as the RunReport JSON and as %.17g scalar
    // fields, so --serve-trace --check can compare doubles bit-for-bit
    // without a JSON parser.
    const RunReport report = Report();
    response = OkResponse();
    response.fields["json"] = report.ToJson();
    response.fields["jobs"] = std::to_string(report.jobs);
    response.fields["unfinished"] = std::to_string(report.unfinished_jobs);
    response.fields["finished"] = std::to_string(report.jct.finished);
    response.fields["avg-jct-min"] = FormatDouble(report.jct.avg_jct_min);
    response.fields["p50-jct-min"] = FormatDouble(report.jct.p50_jct_min);
    response.fields["p90-jct-min"] = FormatDouble(report.jct.p90_jct_min);
    response.fields["p95-jct-min"] = FormatDouble(report.jct.p95_jct_min);
    response.fields["p99-jct-min"] = FormatDouble(report.jct.p99_jct_min);
    response.fields["avg-queue-min"] = FormatDouble(report.jct.avg_queue_min);
    response.fields["avg-run-min"] = FormatDouble(report.jct.avg_run_min);
    response.fields["makespan-min"] = FormatDouble(report.makespan_min);
  } else if (request.verb == "shutdown") {
    shutdown_ = true;
    response = OkResponse();
    response.fields["state"] = "shutting-down";
  } else {
    response = ServeResponse::FromStatus(Status::InvalidArgument(
        "unknown verb '" + request.verb +
        "' (want submit|complete|cancel|progress|query|plan|stats|reload-policy|checkpoint|"
        "report|shutdown)"));
  }
  return response;
}

ServeResponse ServiceState::Submit(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  Result<std::int64_t> gpus = request.GetInt("gpus");
  Result<double> ideal_io = request.GetDouble("ideal-io");
  Result<std::int64_t> total_bytes = request.GetInt("total-bytes");
  Result<std::string> dataset_name = request.GetString("dataset");
  Result<std::int64_t> dataset_size = request.GetInt("dataset-size");
  for (const Status* st :
       {!key.ok() ? &key.status() : nullptr, !gpus.ok() ? &gpus.status() : nullptr,
        !ideal_io.ok() ? &ideal_io.status() : nullptr,
        !total_bytes.ok() ? &total_bytes.status() : nullptr,
        !dataset_name.ok() ? &dataset_name.status() : nullptr,
        !dataset_size.ok() ? &dataset_size.status() : nullptr}) {
    if (st != nullptr) {
      return ServeResponse::FromStatus(*st);
    }
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(Status::InvalidArgument("submit: missing required argument 't'"));
  }
  if (*gpus <= 0 || *ideal_io <= 0 || *total_bytes <= 0 || *dataset_size <= 0) {
    return ServeResponse::FromStatus(Status::InvalidArgument(
        "submit: gpus, ideal-io, total-bytes and dataset-size must be positive"));
  }
  if (covered_topology_.has_gpu_types()) {
    // Gang scheduling never splits a job across type pools, so a gang wider
    // than every pool could never start — reject it instead of queueing it
    // forever.
    int widest = 0;
    for (const GpuTypeSpec& t : covered_topology_.gpu_types()) {
      widest = std::max(widest, t.count);
    }
    if (*gpus > widest) {
      return ServeResponse::FromStatus(Status::InvalidArgument(
          "submit: job needs " + std::to_string(*gpus) + " GPUs but the widest gpu-type pool has " +
          std::to_string(widest)));
    }
  }
  if (table_.Find(*key).ok()) {
    return ServeResponse::FromStatus(Status::AlreadyExists("job '" + *key + "' already submitted"));
  }
  Bytes block_size = kDefaultBlockSize;
  if (request.Has("block-size")) {
    Result<std::int64_t> block = request.GetInt("block-size");
    if (!block.ok()) {
      return ServeResponse::FromStatus(block.status());
    }
    if (*block <= 0) {
      return ServeResponse::FromStatus(Status::InvalidArgument("submit: block-size must be positive"));
    }
    block_size = *block;
  }
  Result<DatasetId> dataset = table_.InternDataset(*dataset_name, *dataset_size, block_size);
  if (!dataset.ok()) {
    return ServeResponse::FromStatus(dataset.status());
  }

  const AdmissionDecision decision =
      admission_->Decide(table_.ActiveGpuDemand(),
                         static_cast<int>(table_.CountState(ServeJobState::kQueued)),
                         static_cast<int>(*gpus));
  admission_->Record(decision);
  if (decision == AdmissionDecision::kReject) {
    return ServeResponse::FromStatus(Status::ResourceExhausted(
        "admission rejected '" + *key + "': load would reach " +
        FormatDouble(admission_->LoadWith(table_.ActiveGpuDemand(), static_cast<int>(*gpus))) +
        " > " + FormatDouble(admission_->options().max_gpu_load) + " and the queue is full (" +
        std::to_string(admission_->options().max_queue) + ")"));
  }

  JobSpec spec;
  spec.name = *key;
  spec.model = request.Has("model") ? request.args.at("model") : "custom";
  spec.num_gpus = static_cast<int>(*gpus);
  spec.dataset = *dataset;
  spec.ideal_io = *ideal_io;
  spec.total_bytes = *total_bytes;
  spec.step_data_size = block_size;
  if (request.Has("tenant")) {
    spec.tenant = request.args.at("tenant");
  }
  if (request.Has("speeds")) {
    // Comma-separated `type=factor` pairs scaling the job's throughput on
    // each GPU type (unlisted types default to 1.0).
    const std::string& speeds = request.args.at("speeds");
    std::size_t pos = 0;
    while (pos < speeds.size()) {
      std::size_t comma = speeds.find(',', pos);
      if (comma == std::string::npos) {
        comma = speeds.size();
      }
      const std::string pair = speeds.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        return ServeResponse::FromStatus(
            Status::InvalidArgument("submit: malformed speeds entry '" + pair + "'"));
      }
      char* end = nullptr;
      const double factor = std::strtod(pair.c_str() + eq + 1, &end);
      if (end == pair.c_str() + eq + 1 || *end != '\0' || !(factor > 0)) {
        return ServeResponse::FromStatus(
            Status::InvalidArgument("submit: speeds factor must be positive in '" + pair + "'"));
      }
      spec.speed_factors.emplace_back(pair.substr(0, eq), factor);
    }
  }
  if (request.Has("step-bytes")) {
    Result<std::int64_t> step = request.GetInt("step-bytes");
    if (!step.ok()) {
      return ServeResponse::FromStatus(step.status());
    }
    spec.step_data_size = *step;
  }
  Result<ServeJob*> job = table_.Add(*key, std::move(spec), now_);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }

  ServeResponse response = OkResponse();
  response.fields["decision"] = AdmissionDecisionName(decision);
  response.fields["job"] = std::to_string((*job)->spec.id);
  if (decision == AdmissionDecision::kAdmit) {
    (*job)->state = ServeJobState::kActive;
    (*job)->admit_time = now_;
    planner_->dirty().MarkJob((*job)->spec.id);
    Replan(/*force=*/false);
    response.fields["running"] = (*job)->running ? "1" : "0";
  } else {
    (*job)->state = ServeJobState::kQueued;
    response.fields["position"] = std::to_string(table_.CountState(ServeJobState::kQueued));
  }
  return response;
}

ServeResponse ServiceState::Complete(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("complete: missing required argument 't'"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  if ((*job)->state != ServeJobState::kActive) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is " + ServeJobStateName((*job)->state) + ", not active"));
  }
  (*job)->state = ServeJobState::kCompleted;
  (*job)->finish_time = now_;
  (*job)->running = false;
  (*job)->remaining_bytes = 0;
  planner_->dirty().MarkJob((*job)->spec.id);
  PromoteQueued();
  Replan(/*force=*/false);
  ServeResponse response = OkResponse();
  response.fields["state"] = "completed";
  response.fields["jct"] = FormatDouble((*job)->finish_time - (*job)->submit_time);
  return response;
}

ServeResponse ServiceState::Cancel(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("cancel: missing required argument 't'"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  const ServeJobState state = (*job)->state;
  if (state == ServeJobState::kCompleted || state == ServeJobState::kCancelled) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is already " + ServeJobStateName(state)));
  }
  const bool was_active = state == ServeJobState::kActive;
  (*job)->state = ServeJobState::kCancelled;
  (*job)->finish_time = now_;
  (*job)->running = false;
  if (was_active) {
    // A queued job was never in the scheduler's view; cancelling it changes
    // nothing the planner can see, so only active cancels mark dirty.
    planner_->dirty().MarkJob((*job)->spec.id);
    PromoteQueued();
    Replan(/*force=*/false);
  }
  ServeResponse response = OkResponse();
  response.fields["state"] = "cancelled";
  response.fields["was"] = ServeJobStateName(state);
  return response;
}

ServeResponse ServiceState::Progress(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  Result<std::int64_t> remaining = request.GetInt("remaining");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!remaining.ok()) {
    return ServeResponse::FromStatus(remaining.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("progress: missing required argument 't'"));
  }
  if (*remaining < 0) {
    return ServeResponse::FromStatus(Status::InvalidArgument("progress: remaining must be >= 0"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  if ((*job)->state != ServeJobState::kActive) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is " + ServeJobStateName((*job)->state) + ", not active"));
  }
  (*job)->remaining_bytes = *remaining;
  if (request.Has("effective")) {
    Result<std::int64_t> effective = request.GetInt("effective");
    if (!effective.ok()) {
      return ServeResponse::FromStatus(effective.status());
    }
    if (*effective < 0) {
      return ServeResponse::FromStatus(
          Status::InvalidArgument("progress: effective must be >= 0"));
    }
    (*job)->effective_cache = *effective;
  }
  planner_->dirty().MarkJob((*job)->spec.id);
  Replan(/*force=*/false);
  ServeResponse response = OkResponse();
  response.fields["state"] = "active";
  response.fields["running"] = (*job)->running ? "1" : "0";
  return response;
}

ServeResponse ServiceState::Query(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  const ServeJob& j = **job;
  ServeResponse response = OkResponse();
  response.fields["state"] = ServeJobStateName(j.state);
  response.fields["job"] = std::to_string(j.spec.id);
  response.fields["gpus"] = std::to_string(j.spec.num_gpus);
  response.fields["running"] = j.running ? "1" : "0";
  response.fields["dataset"] = table_.catalog().Get(j.spec.dataset).name;
  response.fields["remaining"] = std::to_string(j.remaining_bytes);
  response.fields["submit-t"] = FormatDouble(j.submit_time);
  if (j.admit_time >= 0) {
    response.fields["admit-t"] = FormatDouble(j.admit_time);
  }
  if (j.first_start_time >= 0) {
    response.fields["start-t"] = FormatDouble(j.first_start_time);
  }
  if (j.finish_time >= 0) {
    response.fields["finish-t"] = FormatDouble(j.finish_time);
  }
  return response;
}

ServeResponse ServiceState::Plan(const ServeRequest& request) {
  (void)request;  // The clock already advanced from the optional t=.
  const AllocationPlan& plan = PlanNow();
  int running = 0;
  for (const auto& [id, alloc] : plan.jobs) {
    if (alloc.running) {
      ++running;
    }
  }
  ServeResponse response = OkResponse();
  response.fields["digest"] = FormatDigest(PlanDigest(plan));
  response.fields["running"] = std::to_string(running);
  response.fields["gpus-used"] = std::to_string(plan.GpusUsed());
  response.fields["cache-bytes"] = std::to_string(plan.DatasetCacheTotal());
  response.fields["cache-model"] = CacheModelKindName(plan.cache_model);
  response.fields["manages-remote-io"] = plan.manages_remote_io ? "1" : "0";
  return response;
}

ServeResponse ServiceState::Stats() {
  ServeResponse response = OkResponse();
  response.fields["now"] = FormatDouble(now_);
  response.fields["policy"] = planner_->policy_name();
  response.fields["delta-capable"] = planner_->delta_capable() ? "1" : "0";
  response.fields["jobs"] = std::to_string(table_.size());
  response.fields["active"] = std::to_string(table_.CountState(ServeJobState::kActive));
  response.fields["queued"] = std::to_string(table_.CountState(ServeJobState::kQueued));
  response.fields["completed"] = std::to_string(table_.CountState(ServeJobState::kCompleted));
  response.fields["cancelled"] = std::to_string(table_.CountState(ServeJobState::kCancelled));
  response.fields["gpu-demand"] = std::to_string(table_.ActiveGpuDemand());
  response.fields["total-gpus"] = std::to_string(config_.resources.total_gpus);
  response.fields["admitted"] = FormatU64(admission_->admitted());
  response.fields["adm-queued"] = FormatU64(admission_->queued());
  response.fields["rejected"] = FormatU64(admission_->rejected());
  response.fields["full-solves"] = FormatU64(planner_->full_solves());
  response.fields["delta-solves"] = FormatU64(planner_->delta_solves());
  response.fields["reused-plans"] = FormatU64(planner_->reused_plans());
  response.fields["planning-ticks"] = FormatU64(planner_->planning_ticks());
  if (planner_->delta() != nullptr) {
    response.fields["jobs-rescored"] = FormatU64(planner_->delta()->jobs_rescored());
    response.fields["jobs-reused"] = FormatU64(planner_->delta()->jobs_reused());
  }
  response.fields["dirty-pending"] = FormatU64(planner_->dirty().events());
  response.fields["requests"] = FormatU64(requests_);
  response.fields["errors"] = FormatU64(errors_);
  response.fields["state-digest"] = FormatDigest(StateDigest());
  response.fields["last-rid"] = FormatU64(last_rid_);
  response.fields["duplicates"] = FormatU64(duplicates_);
  if (journal_ != nullptr) {
    response.fields["journal"] = journal_->path();
    response.fields["journal-bytes"] = FormatU64(journal_->size_bytes());
    response.fields["journal-sync"] = JournalSyncModeName(journal_->options().sync);
    response.fields["journal-records"] = FormatU64(journal_->appended_records());
    response.fields["journal-compactions"] = FormatU64(journal_->compactions());
    response.fields["recovered-checkpoint"] = recovery_.from_checkpoint ? "1" : "0";
    response.fields["recovered-requests"] = FormatU64(recovery_.replayed_requests);
    response.fields["recovered-errors"] = FormatU64(recovery_.replayed_errors);
    response.fields["recovered-dropped-bytes"] = FormatU64(recovery_.dropped_bytes);
  }
  return response;
}

ServeResponse ServiceState::ReloadPolicy(const ServeRequest& request) {
  Result<std::string> policy = request.GetString("policy");
  if (!policy.ok()) {
    return ServeResponse::FromStatus(policy.status());
  }
  SchedulerOptions options = config_.scheduler;
  if (request.Has("manage-remote-io")) {
    Result<std::int64_t> manage = request.GetInt("manage-remote-io");
    if (!manage.ok()) {
      return ServeResponse::FromStatus(manage.status());
    }
    options.manage_remote_io = *manage != 0;
  }
  if (const Status st = planner_->ReloadPolicy(*policy, options); !st.ok()) {
    return ServeResponse::FromStatus(st);
  }
  config_.policy = *policy;
  config_.scheduler = options;
  Replan(/*force=*/true);
  ServeResponse response = OkResponse();
  response.fields["policy"] = planner_->policy_name();
  response.fields["delta-capable"] = planner_->delta_capable() ? "1" : "0";
  return response;
}

ServeResponse ServiceState::Checkpoint() {
  if (journal_ == nullptr) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "no journal attached (start silodd with --journal=PATH)"));
  }
  const std::string text = CheckpointText();
  if (const Status st = journal_->Compact(text); !st.ok()) {
    return ServeResponse::FromStatus(st);
  }
  ++checkpoints_;
  ServeResponse response = OkResponse();
  response.fields["checkpoint-bytes"] = std::to_string(text.size());
  response.fields["journal-bytes"] = FormatU64(journal_->size_bytes());
  response.fields["compactions"] = FormatU64(journal_->compactions());
  return response;
}

std::uint64_t ServiceState::StateDigest() const {
  std::uint64_t h = kFnvOffset;
  MixString(&h, planner_->policy_name());
  MixU64(&h, config_.scheduler.manage_remote_io ? 1 : 0);
  MixDouble(&h, now_);
  MixU64(&h, last_rid_);
  MixU64(&h, admission_->admitted());
  MixU64(&h, admission_->queued());
  MixU64(&h, admission_->rejected());
  MixDouble(&h, planner_->last_plan_time());
  MixU64(&h, table_.catalog().size());
  for (const Dataset& dataset : table_.catalog().all()) {
    MixString(&h, dataset.name);
    MixU64(&h, static_cast<std::uint64_t>(dataset.size));
    MixU64(&h, static_cast<std::uint64_t>(dataset.block_size));
  }
  MixU64(&h, table_.size());
  for (const auto& job : table_.jobs()) {
    MixString(&h, job->key);
    MixString(&h, ServeJobStateName(job->state));
    MixU64(&h, static_cast<std::uint64_t>(job->spec.num_gpus));
    MixU64(&h, static_cast<std::uint64_t>(job->spec.dataset));
    MixDouble(&h, job->spec.ideal_io);
    MixU64(&h, static_cast<std::uint64_t>(job->spec.total_bytes));
    MixU64(&h, static_cast<std::uint64_t>(job->spec.step_data_size));
    MixString(&h, job->spec.model);
    MixDouble(&h, job->submit_time);
    MixDouble(&h, job->admit_time);
    MixDouble(&h, job->first_start_time);
    MixDouble(&h, job->finish_time);
    MixU64(&h, static_cast<std::uint64_t>(job->remaining_bytes));
    MixU64(&h, static_cast<std::uint64_t>(job->effective_cache));
    MixU64(&h, job->running ? 1 : 0);
    // Heterogeneity fields mix only when present so untyped/untenanted
    // digests stay byte-identical to earlier releases.
    if (job->gpu_type >= 0) {
      MixU64(&h, static_cast<std::uint64_t>(job->gpu_type) + 1);
    }
    if (!job->spec.tenant.empty()) {
      MixString(&h, job->spec.tenant);
    }
    for (const auto& [type_name, factor] : job->spec.speed_factors) {
      MixString(&h, type_name);
      MixDouble(&h, factor);
    }
  }
  return h;
}

std::string ServiceState::CheckpointText() const {
  std::string out = "silodd-checkpoint-v1\n";
  out += "cluster gpus=" + std::to_string(config_.resources.total_gpus) +
         " cache=" + std::to_string(config_.resources.total_cache) +
         " egress=" + FormatDouble(config_.resources.remote_io) +
         " servers=" + std::to_string(config_.resources.num_servers) + "\n";
  out += "policy name=" + EscapeToken(planner_->policy_name()) +
         " manage-remote-io=" + (config_.scheduler.manage_remote_io ? "1" : "0") + "\n";
  out += "clock now=" + FormatDouble(now_) + " last-rid=" + FormatU64(last_rid_) +
         " requests=" + FormatU64(requests_) + " errors=" + FormatU64(errors_) +
         " duplicates=" + FormatU64(duplicates_) + "\n";
  out += "admission admitted=" + FormatU64(admission_->admitted()) +
         " queued=" + FormatU64(admission_->queued()) +
         " rejected=" + FormatU64(admission_->rejected()) + "\n";
  const DirtyTracker& dirty = planner_->dirty();
  std::vector<std::int64_t> dirty_jobs;
  for (const JobId id : dirty.DirtyJobs()) {
    dirty_jobs.push_back(id);
  }
  std::vector<std::int64_t> dirty_datasets;
  for (const DatasetId id : dirty.DirtyDatasets()) {
    dirty_datasets.push_back(id);
  }
  out += "planner last-plan-t=" + FormatDouble(planner_->last_plan_time()) +
         " dirty-all=" + (dirty.all_dirty() ? "1" : "0") +
         " dirty-reason=" + EscapeToken(dirty.all_dirty_reason()) +
         " dirty-events=" + FormatU64(dirty.events()) + " dirty-jobs=" + IdCsv(dirty_jobs) +
         " dirty-datasets=" + IdCsv(dirty_datasets) + "\n";
  for (const Dataset& dataset : table_.catalog().all()) {
    out += "dataset id=" + std::to_string(dataset.id) + " name=" + EscapeToken(dataset.name) +
           " size=" + std::to_string(dataset.size) +
           " block=" + std::to_string(dataset.block_size) + "\n";
  }
  for (const auto& job : table_.jobs()) {
    const ServeJob& j = *job;
    out += "job id=" + std::to_string(j.spec.id) + " key=" + EscapeToken(j.key) +
           " state=" + ServeJobStateName(j.state) + " gpus=" + std::to_string(j.spec.num_gpus) +
           " dataset=" + std::to_string(j.spec.dataset) +
           " ideal-io=" + FormatDouble(j.spec.ideal_io) +
           " total-bytes=" + std::to_string(j.spec.total_bytes) +
           " step-bytes=" + std::to_string(j.spec.step_data_size) +
           " model=" + EscapeToken(j.spec.model) + " submit-t=" + FormatDouble(j.submit_time) +
           " admit-t=" + FormatDouble(j.admit_time) +
           " start-t=" + FormatDouble(j.first_start_time) +
           " finish-t=" + FormatDouble(j.finish_time) +
           " remaining=" + std::to_string(j.remaining_bytes) +
           " effective=" + std::to_string(j.effective_cache) +
           " running=" + (j.running ? "1" : "0");
    // Optional heterogeneity tokens: emitted only when set, so checkpoints
    // from untyped fleets stay byte-identical to silodd-checkpoint-v1 files
    // written before GPU types existed (and old daemons' parsers, which
    // reject unknown keys, only see them when the feature is in use).
    if (j.gpu_type >= 0) {
      out += " gpu-type=" + std::to_string(j.gpu_type);
    }
    if (!j.spec.tenant.empty()) {
      out += " tenant=" + EscapeToken(j.spec.tenant);
    }
    if (!j.spec.speed_factors.empty()) {
      out += " speeds=";
      for (std::size_t i = 0; i < j.spec.speed_factors.size(); ++i) {
        if (i > 0) {
          out += ",";
        }
        out += EscapeToken(j.spec.speed_factors[i].first) + "=" +
               FormatDouble(j.spec.speed_factors[i].second);
      }
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status ServiceState::RestoreFromCheckpoint(const std::string& text, RecoveryInfo* recovery) {
  if (table_.size() != 0 || now_ != 0 || last_rid_ != 0) {
    return Status::FailedPrecondition("checkpoint restore requires a fresh service");
  }
  std::vector<std::string> lines;
  std::string line;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) {
    lines.push_back(line);
  }
  if (lines.empty() || lines[0] != "silodd-checkpoint-v1") {
    return Status::Internal("journal checkpoint: bad header (want silodd-checkpoint-v1)");
  }

  CkptArgs cluster_args, policy_args, clock_args, admission_args, planner_args;
  std::vector<CkptArgs> dataset_lines, job_lines;
  bool saw_end = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      continue;
    }
    std::string kind;
    CkptArgs args;
    if (const Status st = ParseCheckpointLine(lines[i], &kind, &args); !st.ok()) {
      return st;
    }
    if (kind == "cluster") {
      cluster_args = std::move(args);
    } else if (kind == "policy") {
      policy_args = std::move(args);
    } else if (kind == "clock") {
      clock_args = std::move(args);
    } else if (kind == "admission") {
      admission_args = std::move(args);
    } else if (kind == "planner") {
      planner_args = std::move(args);
    } else if (kind == "dataset") {
      dataset_lines.push_back(std::move(args));
    } else if (kind == "job") {
      job_lines.push_back(std::move(args));
    } else if (kind == "end") {
      saw_end = true;
      break;
    } else {
      return Status::Internal("journal checkpoint: unknown line kind '" + kind + "'");
    }
  }
  if (!saw_end) {
    return Status::Internal("journal checkpoint: truncated (no 'end' line)");
  }

  // Cluster shape mismatches are warnings, not errors: the operator may have
  // legitimately resized the cluster between restarts, and the replayed
  // requests re-derive all scheduling decisions against the new flags.
  if (!cluster_args.empty() && recovery != nullptr) {
    Result<std::int64_t> gpus = CkptInt(cluster_args, "cluster", "gpus");
    Result<std::int64_t> cache = CkptInt(cluster_args, "cluster", "cache");
    Result<double> egress = CkptDouble(cluster_args, "cluster", "egress");
    Result<std::int64_t> servers = CkptInt(cluster_args, "cluster", "servers");
    if (gpus.ok() && *gpus != config_.resources.total_gpus) {
      recovery->warnings.push_back("checkpoint cluster had " + std::to_string(*gpus) +
                                   " GPUs, flags say " +
                                   std::to_string(config_.resources.total_gpus));
    }
    if (cache.ok() && *cache != config_.resources.total_cache) {
      recovery->warnings.push_back("checkpoint cluster had cache " + std::to_string(*cache) +
                                   " B, flags say " +
                                   std::to_string(config_.resources.total_cache) + " B");
    }
    if (egress.ok() && *egress != config_.resources.remote_io) {
      recovery->warnings.push_back("checkpoint cluster had egress " + FormatDouble(*egress) +
                                   " B/s, flags say " +
                                   FormatDouble(config_.resources.remote_io) + " B/s");
    }
    if (servers.ok() && *servers != config_.resources.num_servers) {
      recovery->warnings.push_back("checkpoint cluster had " + std::to_string(*servers) +
                                   " servers, flags say " +
                                   std::to_string(config_.resources.num_servers));
    }
  }

  // Policy first: a reload marks everything dirty, and the planner line
  // restored below overwrites the dirty state with the checkpointed one.
  {
    Result<std::string> name = CkptString(policy_args, "policy", "name");
    Result<std::int64_t> manage = CkptInt(policy_args, "policy", "manage-remote-io");
    if (!name.ok()) {
      return name.status();
    }
    if (!manage.ok()) {
      return manage.status();
    }
    SchedulerOptions options = config_.scheduler;
    options.manage_remote_io = *manage != 0;
    if (*name != planner_->policy_name() ||
        options.manage_remote_io != config_.scheduler.manage_remote_io) {
      if (const Status st = planner_->ReloadPolicy(*name, options); !st.ok()) {
        return Status::Internal("journal checkpoint: cannot restore policy '" + *name +
                                "': " + st.message());
      }
      config_.policy = *name;
      config_.scheduler = options;
    }
  }

  {
    Result<double> now = CkptDouble(clock_args, "clock", "now");
    Result<std::uint64_t> last_rid = CkptU64(clock_args, "clock", "last-rid");
    Result<std::uint64_t> requests = CkptU64(clock_args, "clock", "requests");
    Result<std::uint64_t> errors = CkptU64(clock_args, "clock", "errors");
    Result<std::uint64_t> duplicates = CkptU64(clock_args, "clock", "duplicates");
    for (const Status* st :
         {!now.ok() ? &now.status() : nullptr, !last_rid.ok() ? &last_rid.status() : nullptr,
          !requests.ok() ? &requests.status() : nullptr,
          !errors.ok() ? &errors.status() : nullptr,
          !duplicates.ok() ? &duplicates.status() : nullptr}) {
      if (st != nullptr) {
        return *st;
      }
    }
    now_ = *now;
    last_rid_ = *last_rid;
    requests_ = *requests;
    errors_ = *errors;
    duplicates_ = *duplicates;
  }

  {
    Result<std::uint64_t> admitted = CkptU64(admission_args, "admission", "admitted");
    Result<std::uint64_t> queued = CkptU64(admission_args, "admission", "queued");
    Result<std::uint64_t> rejected = CkptU64(admission_args, "admission", "rejected");
    if (!admitted.ok() || !queued.ok() || !rejected.ok()) {
      return !admitted.ok() ? admitted.status() : (!queued.ok() ? queued.status() : rejected.status());
    }
    admission_->RestoreCounters(*admitted, *queued, *rejected);
  }

  for (const CkptArgs& args : dataset_lines) {
    Result<std::int64_t> id = CkptInt(args, "dataset", "id");
    Result<std::string> name = CkptString(args, "dataset", "name");
    Result<std::int64_t> size = CkptInt(args, "dataset", "size");
    Result<std::int64_t> block = CkptInt(args, "dataset", "block");
    if (!id.ok() || !name.ok() || !size.ok() || !block.ok()) {
      return !id.ok() ? id.status()
                      : (!name.ok() ? name.status() : (!size.ok() ? size.status() : block.status()));
    }
    Result<DatasetId> interned = table_.InternDataset(*name, *size, *block);
    if (!interned.ok()) {
      return Status::Internal("journal checkpoint: " + interned.status().message());
    }
    if (*interned != static_cast<DatasetId>(*id)) {
      return Status::Internal("journal checkpoint: dataset '" + *name + "' restored as id " +
                              std::to_string(*interned) + ", checkpoint says " +
                              std::to_string(*id));
    }
  }

  for (const CkptArgs& args : job_lines) {
    Result<std::int64_t> id = CkptInt(args, "job", "id");
    Result<std::string> key = CkptString(args, "job", "key");
    Result<std::string> state_name = CkptString(args, "job", "state");
    Result<std::int64_t> gpus = CkptInt(args, "job", "gpus");
    Result<std::int64_t> dataset = CkptInt(args, "job", "dataset");
    Result<double> ideal_io = CkptDouble(args, "job", "ideal-io");
    Result<std::int64_t> total_bytes = CkptInt(args, "job", "total-bytes");
    Result<std::int64_t> step_bytes = CkptInt(args, "job", "step-bytes");
    Result<std::string> model = CkptString(args, "job", "model");
    Result<double> submit_t = CkptDouble(args, "job", "submit-t");
    Result<double> admit_t = CkptDouble(args, "job", "admit-t");
    Result<double> start_t = CkptDouble(args, "job", "start-t");
    Result<double> finish_t = CkptDouble(args, "job", "finish-t");
    Result<std::int64_t> remaining = CkptInt(args, "job", "remaining");
    Result<std::int64_t> effective = CkptInt(args, "job", "effective");
    Result<std::int64_t> running = CkptInt(args, "job", "running");
    for (const Status* st :
         {!id.ok() ? &id.status() : nullptr, !key.ok() ? &key.status() : nullptr,
          !state_name.ok() ? &state_name.status() : nullptr,
          !gpus.ok() ? &gpus.status() : nullptr, !dataset.ok() ? &dataset.status() : nullptr,
          !ideal_io.ok() ? &ideal_io.status() : nullptr,
          !total_bytes.ok() ? &total_bytes.status() : nullptr,
          !step_bytes.ok() ? &step_bytes.status() : nullptr,
          !model.ok() ? &model.status() : nullptr, !submit_t.ok() ? &submit_t.status() : nullptr,
          !admit_t.ok() ? &admit_t.status() : nullptr,
          !start_t.ok() ? &start_t.status() : nullptr,
          !finish_t.ok() ? &finish_t.status() : nullptr,
          !remaining.ok() ? &remaining.status() : nullptr,
          !effective.ok() ? &effective.status() : nullptr,
          !running.ok() ? &running.status() : nullptr}) {
      if (st != nullptr) {
        return *st;
      }
    }
    Result<ServeJobState> state = ServeJobStateFromName(*state_name);
    if (!state.ok()) {
      return Status::Internal("journal checkpoint: " + state.status().message());
    }
    JobSpec spec;
    spec.name = *key;
    spec.model = *model;
    spec.num_gpus = static_cast<int>(*gpus);
    spec.dataset = static_cast<DatasetId>(*dataset);
    spec.ideal_io = *ideal_io;
    spec.total_bytes = *total_bytes;
    spec.step_data_size = *step_bytes;
    // Optional heterogeneity tokens (absent in checkpoints from untyped runs).
    if (args.count("tenant") != 0) {
      spec.tenant = args.at("tenant");
    }
    if (args.count("speeds") != 0) {
      const std::string& speeds = args.at("speeds");
      std::size_t pos = 0;
      while (pos < speeds.size()) {
        std::size_t comma = speeds.find(',', pos);
        if (comma == std::string::npos) {
          comma = speeds.size();
        }
        const std::string pair = speeds.substr(pos, comma - pos);
        pos = comma + 1;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          return Status::Internal("journal checkpoint: malformed job.speeds entry '" + pair + "'");
        }
        char* end = nullptr;
        const double factor = std::strtod(pair.c_str() + eq + 1, &end);
        if (end == pair.c_str() + eq + 1 || *end != '\0' || !(factor > 0)) {
          return Status::Internal("journal checkpoint: bad job.speeds factor in '" + pair + "'");
        }
        spec.speed_factors.emplace_back(pair.substr(0, eq), factor);
      }
    }
    Result<ServeJob*> job = table_.Add(*key, std::move(spec), *submit_t);
    if (!job.ok()) {
      return Status::Internal("journal checkpoint: " + job.status().message());
    }
    if ((*job)->spec.id != static_cast<JobId>(*id)) {
      return Status::Internal("journal checkpoint: job '" + *key + "' restored as id " +
                              std::to_string((*job)->spec.id) + ", checkpoint says " +
                              std::to_string(*id));
    }
    (*job)->state = *state;
    (*job)->admit_time = *admit_t;
    (*job)->first_start_time = *start_t;
    (*job)->finish_time = *finish_t;
    (*job)->remaining_bytes = *remaining;
    (*job)->effective_cache = *effective;
    (*job)->running = *running != 0;
    if (args.count("gpu-type") != 0) {
      Result<std::int64_t> gpu_type = CkptInt(args, "job", "gpu-type");
      if (!gpu_type.ok()) {
        return gpu_type.status();
      }
      (*job)->gpu_type = static_cast<int>(*gpu_type);
    }
  }

  // Planner last: re-marking the checkpointed dirty set replaces whatever the
  // construction / policy restore marked, and the event meter is pinned so
  // epoch batching (Due) fires at the same virtual instants it would have.
  {
    Result<double> last_plan_t = CkptDouble(planner_args, "planner", "last-plan-t");
    Result<std::int64_t> dirty_all = CkptInt(planner_args, "planner", "dirty-all");
    Result<std::string> dirty_reason = CkptString(planner_args, "planner", "dirty-reason");
    Result<std::uint64_t> dirty_events = CkptU64(planner_args, "planner", "dirty-events");
    Result<std::string> dirty_jobs_csv = CkptString(planner_args, "planner", "dirty-jobs");
    Result<std::string> dirty_datasets_csv = CkptString(planner_args, "planner", "dirty-datasets");
    for (const Status* st :
         {!last_plan_t.ok() ? &last_plan_t.status() : nullptr,
          !dirty_all.ok() ? &dirty_all.status() : nullptr,
          !dirty_reason.ok() ? &dirty_reason.status() : nullptr,
          !dirty_events.ok() ? &dirty_events.status() : nullptr,
          !dirty_jobs_csv.ok() ? &dirty_jobs_csv.status() : nullptr,
          !dirty_datasets_csv.ok() ? &dirty_datasets_csv.status() : nullptr}) {
      if (st != nullptr) {
        return *st;
      }
    }
    Result<std::vector<std::int64_t>> dirty_jobs = ParseIdCsv(*dirty_jobs_csv, "dirty-jobs");
    Result<std::vector<std::int64_t>> dirty_datasets =
        ParseIdCsv(*dirty_datasets_csv, "dirty-datasets");
    if (!dirty_jobs.ok() || !dirty_datasets.ok()) {
      return !dirty_jobs.ok() ? dirty_jobs.status() : dirty_datasets.status();
    }
    planner_->RestorePlanningClock(*last_plan_t);
    DirtyTracker& dirty = planner_->dirty();
    dirty.Clear();
    if (*dirty_all != 0) {
      dirty.MarkAll(*dirty_reason);
    }
    for (const std::int64_t id : *dirty_jobs) {
      dirty.MarkJob(static_cast<JobId>(id));
    }
    for (const std::int64_t id : *dirty_datasets) {
      dirty.MarkDataset(static_cast<DatasetId>(id));
    }
    dirty.RestoreEventCount(*dirty_events);
  }
  return Status::Ok();
}

Status ServiceState::SyncJournal() {
  if (journal_ == nullptr) {
    return Status::Ok();
  }
  return journal_->Sync();
}

RunReport ServiceState::Report() const {
  RunReport report;
  report.label = planner_->policy_name();
  report.engine = "serve";
  report.jobs = static_cast<int>(table_.size());
  // Fold the table into JobResults so the summary (and the per-tenant /
  // per-GPU-type breakdowns) goes through the same grouping as the engines'.
  std::vector<JobResult> results;
  results.reserve(table_.size());
  Seconds last_finish = 0;
  for (const auto& job : table_.jobs()) {
    if (job->state != ServeJobState::kCompleted) {
      ++report.unfinished_jobs;
      continue;
    }
    JobResult r;
    r.id = job->spec.id;
    r.submit_time = job->submit_time;
    r.first_start_time = job->first_start_time;
    r.finish_time = job->finish_time;
    r.tenant = job->spec.tenant;
    if (job->gpu_type >= 0 && job->gpu_type < covered_topology_.num_gpu_types()) {
      r.gpu_type = covered_topology_.gpu_types()[static_cast<std::size_t>(job->gpu_type)].name;
    }
    results.push_back(std::move(r));
    if (job->finish_time > last_finish) {
      last_finish = job->finish_time;
    }
  }
  std::vector<JctSample> samples;
  samples.reserve(results.size());
  for (const JobResult& r : results) {
    JctSample s;
    s.jct_min = r.Jct() / 60.0;
    s.queue_min = r.QueueDelay() / 60.0;
    samples.push_back(s);
  }
  FillJctSummary(samples, &report.jct);
  report.tenants = GroupJctSummaries(
      results, +[](const JobResult& j) -> const std::string& { return j.tenant; });
  report.gpu_types = GroupJctSummaries(
      results, +[](const JobResult& j) -> const std::string& { return j.gpu_type; });
  report.makespan_min = last_finish / 60.0;
  report.AddExtra("policy", planner_->policy_name());
  report.AddExtra("full_solves", static_cast<double>(planner_->full_solves()));
  report.AddExtra("delta_solves", static_cast<double>(planner_->delta_solves()));
  report.AddExtra("reused_plans", static_cast<double>(planner_->reused_plans()));
  report.AddExtra("admitted", static_cast<double>(admission_->admitted()));
  report.AddExtra("rejected", static_cast<double>(admission_->rejected()));
  return report;
}

}  // namespace silod
