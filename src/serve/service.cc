#include "src/serve/service.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"
#include "src/sched/allocation.h"

namespace silod {
namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatU64(std::uint64_t value) { return std::to_string(value); }

std::string FormatDigest(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

ServeResponse OkResponse() {
  ServeResponse response;
  response.code = StatusCode::kOk;
  return response;
}

}  // namespace

ServiceState::ServiceState(ServiceConfig config) : config_(std::move(config)) {}

Result<std::unique_ptr<ServiceState>> ServiceState::Create(ServiceConfig config) {
  if (config.resources.total_gpus <= 0) {
    return Status::InvalidArgument("total_gpus must be positive");
  }
  auto service = std::unique_ptr<ServiceState>(new ServiceState(std::move(config)));
  if (!service->config_.topology.empty()) {
    const Status st = service->config_.topology.Validate(service->config_.resources.num_servers);
    if (!st.ok()) {
      return st;
    }
    service->covered_topology_ =
        service->config_.topology.Cover(service->config_.resources.num_servers);
  }
  Result<std::unique_ptr<IncrementalPlanner>> planner = IncrementalPlanner::Create(
      service->config_.policy, service->config_.scheduler, service->config_.planning);
  if (!planner.ok()) {
    return planner.status();
  }
  service->planner_ = std::move(planner).value();
  service->admission_ = std::make_unique<AdmissionController>(
      service->config_.admission, service->config_.resources.total_gpus);
  return service;
}

Snapshot ServiceState::MakeSnapshot() const {
  return table_.BuildSnapshot(now_, config_.resources,
                              covered_topology_.empty() ? nullptr : &covered_topology_);
}

Status ServiceState::AdvanceClock(const ServeRequest& request) {
  if (!request.Has("t")) {
    return Status::Ok();
  }
  Result<double> t = request.GetDouble("t");
  if (!t.ok()) {
    return t.status();
  }
  if (*t < 0) {
    return Status::InvalidArgument(request.verb + ": t must be >= 0");
  }
  if (*t > now_) {
    now_ = *t;
  }
  return Status::Ok();
}

void ServiceState::Replan(bool force) {
  const Snapshot snapshot = MakeSnapshot();
  const AllocationPlan& plan = planner_->PlanFor(snapshot, force);
  for (const auto& job : table_.jobs()) {
    if (job->state != ServeJobState::kActive) {
      continue;
    }
    const bool running = plan.IsRunning(job->spec.id);
    if (running && !job->running && job->first_start_time < 0) {
      job->first_start_time = now_;
    }
    job->running = running;
  }
}

const AllocationPlan& ServiceState::PlanNow() {
  Replan(/*force=*/true);
  const Snapshot snapshot = MakeSnapshot();
  return planner_->PlanFor(snapshot, /*force=*/true);
}

void ServiceState::PromoteQueued() {
  // Strict FIFO: promote from the head while the gate allows; the first job
  // that does not fit blocks everything behind it.
  for (ServeJob* job : table_.QueuedJobs()) {
    if (!admission_->LoadAllows(table_.ActiveGpuDemand(), job->spec.num_gpus)) {
      break;
    }
    job->state = ServeJobState::kActive;
    job->admit_time = now_;
    admission_->Record(AdmissionDecision::kAdmit);
    planner_->dirty().MarkJob(job->spec.id);
  }
}

ServeResponse ServiceState::Handle(const ServeRequest& request) {
  ++requests_;
  ServeResponse response;
  if (const Status st = AdvanceClock(request); !st.ok()) {
    response = ServeResponse::FromStatus(st);
  } else if (request.verb == "submit") {
    response = Submit(request);
  } else if (request.verb == "complete") {
    response = Complete(request);
  } else if (request.verb == "cancel") {
    response = Cancel(request);
  } else if (request.verb == "progress") {
    response = Progress(request);
  } else if (request.verb == "query") {
    response = Query(request);
  } else if (request.verb == "plan") {
    response = Plan(request);
  } else if (request.verb == "stats") {
    response = Stats();
  } else if (request.verb == "reload-policy") {
    response = ReloadPolicy(request);
  } else if (request.verb == "report") {
    // The JCT summary travels both as the RunReport JSON and as %.17g scalar
    // fields, so --serve-trace --check can compare doubles bit-for-bit
    // without a JSON parser.
    const RunReport report = Report();
    response = OkResponse();
    response.fields["json"] = report.ToJson();
    response.fields["jobs"] = std::to_string(report.jobs);
    response.fields["unfinished"] = std::to_string(report.unfinished_jobs);
    response.fields["avg-jct-min"] = FormatDouble(report.avg_jct_min);
    response.fields["median-jct-min"] = FormatDouble(report.median_jct_min);
    response.fields["p90-jct-min"] = FormatDouble(report.p90_jct_min);
    response.fields["makespan-min"] = FormatDouble(report.makespan_min);
  } else if (request.verb == "shutdown") {
    shutdown_ = true;
    response = OkResponse();
    response.fields["state"] = "shutting-down";
  } else {
    response = ServeResponse::FromStatus(Status::InvalidArgument(
        "unknown verb '" + request.verb +
        "' (want submit|complete|cancel|progress|query|plan|stats|reload-policy|report|"
        "shutdown)"));
  }
  if (!response.ok()) {
    ++errors_;
  }
  return response;
}

ServeResponse ServiceState::Submit(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  Result<std::int64_t> gpus = request.GetInt("gpus");
  Result<double> ideal_io = request.GetDouble("ideal-io");
  Result<std::int64_t> total_bytes = request.GetInt("total-bytes");
  Result<std::string> dataset_name = request.GetString("dataset");
  Result<std::int64_t> dataset_size = request.GetInt("dataset-size");
  for (const Status* st :
       {!key.ok() ? &key.status() : nullptr, !gpus.ok() ? &gpus.status() : nullptr,
        !ideal_io.ok() ? &ideal_io.status() : nullptr,
        !total_bytes.ok() ? &total_bytes.status() : nullptr,
        !dataset_name.ok() ? &dataset_name.status() : nullptr,
        !dataset_size.ok() ? &dataset_size.status() : nullptr}) {
    if (st != nullptr) {
      return ServeResponse::FromStatus(*st);
    }
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(Status::InvalidArgument("submit: missing required argument 't'"));
  }
  if (*gpus <= 0 || *ideal_io <= 0 || *total_bytes <= 0 || *dataset_size <= 0) {
    return ServeResponse::FromStatus(Status::InvalidArgument(
        "submit: gpus, ideal-io, total-bytes and dataset-size must be positive"));
  }
  if (table_.Find(*key).ok()) {
    return ServeResponse::FromStatus(Status::AlreadyExists("job '" + *key + "' already submitted"));
  }
  Bytes block_size = kDefaultBlockSize;
  if (request.Has("block-size")) {
    Result<std::int64_t> block = request.GetInt("block-size");
    if (!block.ok()) {
      return ServeResponse::FromStatus(block.status());
    }
    if (*block <= 0) {
      return ServeResponse::FromStatus(Status::InvalidArgument("submit: block-size must be positive"));
    }
    block_size = *block;
  }
  Result<DatasetId> dataset = table_.InternDataset(*dataset_name, *dataset_size, block_size);
  if (!dataset.ok()) {
    return ServeResponse::FromStatus(dataset.status());
  }

  const AdmissionDecision decision =
      admission_->Decide(table_.ActiveGpuDemand(),
                         static_cast<int>(table_.CountState(ServeJobState::kQueued)),
                         static_cast<int>(*gpus));
  admission_->Record(decision);
  if (decision == AdmissionDecision::kReject) {
    return ServeResponse::FromStatus(Status::ResourceExhausted(
        "admission rejected '" + *key + "': load would reach " +
        FormatDouble(admission_->LoadWith(table_.ActiveGpuDemand(), static_cast<int>(*gpus))) +
        " > " + FormatDouble(admission_->options().max_gpu_load) + " and the queue is full (" +
        std::to_string(admission_->options().max_queue) + ")"));
  }

  JobSpec spec;
  spec.name = *key;
  spec.model = request.Has("model") ? request.args.at("model") : "custom";
  spec.num_gpus = static_cast<int>(*gpus);
  spec.dataset = *dataset;
  spec.ideal_io = *ideal_io;
  spec.total_bytes = *total_bytes;
  spec.step_data_size = block_size;
  if (request.Has("step-bytes")) {
    Result<std::int64_t> step = request.GetInt("step-bytes");
    if (!step.ok()) {
      return ServeResponse::FromStatus(step.status());
    }
    spec.step_data_size = *step;
  }
  Result<ServeJob*> job = table_.Add(*key, std::move(spec), now_);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }

  ServeResponse response = OkResponse();
  response.fields["decision"] = AdmissionDecisionName(decision);
  response.fields["job"] = std::to_string((*job)->spec.id);
  if (decision == AdmissionDecision::kAdmit) {
    (*job)->state = ServeJobState::kActive;
    (*job)->admit_time = now_;
    planner_->dirty().MarkJob((*job)->spec.id);
    Replan(/*force=*/false);
    response.fields["running"] = (*job)->running ? "1" : "0";
  } else {
    (*job)->state = ServeJobState::kQueued;
    response.fields["position"] = std::to_string(table_.CountState(ServeJobState::kQueued));
  }
  return response;
}

ServeResponse ServiceState::Complete(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("complete: missing required argument 't'"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  if ((*job)->state != ServeJobState::kActive) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is " + ServeJobStateName((*job)->state) + ", not active"));
  }
  (*job)->state = ServeJobState::kCompleted;
  (*job)->finish_time = now_;
  (*job)->running = false;
  (*job)->remaining_bytes = 0;
  planner_->dirty().MarkJob((*job)->spec.id);
  PromoteQueued();
  Replan(/*force=*/false);
  ServeResponse response = OkResponse();
  response.fields["state"] = "completed";
  response.fields["jct"] = FormatDouble((*job)->finish_time - (*job)->submit_time);
  return response;
}

ServeResponse ServiceState::Cancel(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("cancel: missing required argument 't'"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  const ServeJobState state = (*job)->state;
  if (state == ServeJobState::kCompleted || state == ServeJobState::kCancelled) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is already " + ServeJobStateName(state)));
  }
  const bool was_active = state == ServeJobState::kActive;
  (*job)->state = ServeJobState::kCancelled;
  (*job)->finish_time = now_;
  (*job)->running = false;
  if (was_active) {
    // A queued job was never in the scheduler's view; cancelling it changes
    // nothing the planner can see, so only active cancels mark dirty.
    planner_->dirty().MarkJob((*job)->spec.id);
    PromoteQueued();
    Replan(/*force=*/false);
  }
  ServeResponse response = OkResponse();
  response.fields["state"] = "cancelled";
  response.fields["was"] = ServeJobStateName(state);
  return response;
}

ServeResponse ServiceState::Progress(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  Result<std::int64_t> remaining = request.GetInt("remaining");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  if (!remaining.ok()) {
    return ServeResponse::FromStatus(remaining.status());
  }
  if (!request.Has("t")) {
    return ServeResponse::FromStatus(
        Status::InvalidArgument("progress: missing required argument 't'"));
  }
  if (*remaining < 0) {
    return ServeResponse::FromStatus(Status::InvalidArgument("progress: remaining must be >= 0"));
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  if ((*job)->state != ServeJobState::kActive) {
    return ServeResponse::FromStatus(Status::FailedPrecondition(
        "job '" + *key + "' is " + ServeJobStateName((*job)->state) + ", not active"));
  }
  (*job)->remaining_bytes = *remaining;
  if (request.Has("effective")) {
    Result<std::int64_t> effective = request.GetInt("effective");
    if (!effective.ok()) {
      return ServeResponse::FromStatus(effective.status());
    }
    if (*effective < 0) {
      return ServeResponse::FromStatus(
          Status::InvalidArgument("progress: effective must be >= 0"));
    }
    (*job)->effective_cache = *effective;
  }
  planner_->dirty().MarkJob((*job)->spec.id);
  Replan(/*force=*/false);
  ServeResponse response = OkResponse();
  response.fields["state"] = "active";
  response.fields["running"] = (*job)->running ? "1" : "0";
  return response;
}

ServeResponse ServiceState::Query(const ServeRequest& request) {
  Result<std::string> key = request.GetString("key");
  if (!key.ok()) {
    return ServeResponse::FromStatus(key.status());
  }
  Result<ServeJob*> job = table_.Find(*key);
  if (!job.ok()) {
    return ServeResponse::FromStatus(job.status());
  }
  const ServeJob& j = **job;
  ServeResponse response = OkResponse();
  response.fields["state"] = ServeJobStateName(j.state);
  response.fields["job"] = std::to_string(j.spec.id);
  response.fields["gpus"] = std::to_string(j.spec.num_gpus);
  response.fields["running"] = j.running ? "1" : "0";
  response.fields["dataset"] = table_.catalog().Get(j.spec.dataset).name;
  response.fields["remaining"] = std::to_string(j.remaining_bytes);
  response.fields["submit-t"] = FormatDouble(j.submit_time);
  if (j.admit_time >= 0) {
    response.fields["admit-t"] = FormatDouble(j.admit_time);
  }
  if (j.first_start_time >= 0) {
    response.fields["start-t"] = FormatDouble(j.first_start_time);
  }
  if (j.finish_time >= 0) {
    response.fields["finish-t"] = FormatDouble(j.finish_time);
  }
  return response;
}

ServeResponse ServiceState::Plan(const ServeRequest& request) {
  (void)request;  // The clock already advanced from the optional t=.
  const AllocationPlan& plan = PlanNow();
  int running = 0;
  for (const auto& [id, alloc] : plan.jobs) {
    if (alloc.running) {
      ++running;
    }
  }
  ServeResponse response = OkResponse();
  response.fields["digest"] = FormatDigest(PlanDigest(plan));
  response.fields["running"] = std::to_string(running);
  response.fields["gpus-used"] = std::to_string(plan.GpusUsed());
  response.fields["cache-bytes"] = std::to_string(plan.DatasetCacheTotal());
  response.fields["cache-model"] = CacheModelKindName(plan.cache_model);
  response.fields["manages-remote-io"] = plan.manages_remote_io ? "1" : "0";
  return response;
}

ServeResponse ServiceState::Stats() {
  ServeResponse response = OkResponse();
  response.fields["now"] = FormatDouble(now_);
  response.fields["policy"] = planner_->policy_name();
  response.fields["delta-capable"] = planner_->delta_capable() ? "1" : "0";
  response.fields["jobs"] = std::to_string(table_.size());
  response.fields["active"] = std::to_string(table_.CountState(ServeJobState::kActive));
  response.fields["queued"] = std::to_string(table_.CountState(ServeJobState::kQueued));
  response.fields["completed"] = std::to_string(table_.CountState(ServeJobState::kCompleted));
  response.fields["cancelled"] = std::to_string(table_.CountState(ServeJobState::kCancelled));
  response.fields["gpu-demand"] = std::to_string(table_.ActiveGpuDemand());
  response.fields["total-gpus"] = std::to_string(config_.resources.total_gpus);
  response.fields["admitted"] = FormatU64(admission_->admitted());
  response.fields["adm-queued"] = FormatU64(admission_->queued());
  response.fields["rejected"] = FormatU64(admission_->rejected());
  response.fields["full-solves"] = FormatU64(planner_->full_solves());
  response.fields["delta-solves"] = FormatU64(planner_->delta_solves());
  response.fields["reused-plans"] = FormatU64(planner_->reused_plans());
  response.fields["planning-ticks"] = FormatU64(planner_->planning_ticks());
  if (planner_->delta() != nullptr) {
    response.fields["jobs-rescored"] = FormatU64(planner_->delta()->jobs_rescored());
    response.fields["jobs-reused"] = FormatU64(planner_->delta()->jobs_reused());
  }
  response.fields["dirty-pending"] = FormatU64(planner_->dirty().events());
  response.fields["requests"] = FormatU64(requests_);
  response.fields["errors"] = FormatU64(errors_);
  return response;
}

ServeResponse ServiceState::ReloadPolicy(const ServeRequest& request) {
  Result<std::string> policy = request.GetString("policy");
  if (!policy.ok()) {
    return ServeResponse::FromStatus(policy.status());
  }
  SchedulerOptions options = config_.scheduler;
  if (request.Has("manage-remote-io")) {
    Result<std::int64_t> manage = request.GetInt("manage-remote-io");
    if (!manage.ok()) {
      return ServeResponse::FromStatus(manage.status());
    }
    options.manage_remote_io = *manage != 0;
  }
  if (const Status st = planner_->ReloadPolicy(*policy, options); !st.ok()) {
    return ServeResponse::FromStatus(st);
  }
  config_.policy = *policy;
  config_.scheduler = options;
  Replan(/*force=*/true);
  ServeResponse response = OkResponse();
  response.fields["policy"] = planner_->policy_name();
  response.fields["delta-capable"] = planner_->delta_capable() ? "1" : "0";
  return response;
}

RunReport ServiceState::Report() const {
  RunReport report;
  report.label = planner_->policy_name();
  report.engine = "serve";
  report.jobs = static_cast<int>(table_.size());
  std::vector<double> jct_minutes;
  Seconds last_finish = 0;
  for (const auto& job : table_.jobs()) {
    if (job->state != ServeJobState::kCompleted) {
      ++report.unfinished_jobs;
      continue;
    }
    jct_minutes.push_back((job->finish_time - job->submit_time) / 60.0);
    if (job->finish_time > last_finish) {
      last_finish = job->finish_time;
    }
  }
  FillJctSummary(jct_minutes, &report);
  report.makespan_min = last_finish / 60.0;
  report.AddExtra("policy", planner_->policy_name());
  report.AddExtra("full_solves", static_cast<double>(planner_->full_solves()));
  report.AddExtra("delta_solves", static_cast<double>(planner_->delta_solves()));
  report.AddExtra("reused_plans", static_cast<double>(planner_->reused_plans()));
  report.AddExtra("admitted", static_cast<double>(admission_->admitted()));
  report.AddExtra("rejected", static_cast<double>(admission_->rejected()));
  return report;
}

}  // namespace silod
