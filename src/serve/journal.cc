#include "src/serve/journal.h"

#include <fcntl.h>
#include <libgen.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/framing.h"
#include "src/common/logging.h"

namespace silod {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

Status WriteAllFd(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::write(fd, data + sent, len - sent);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("journal write");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// fsync the directory holding `path` so a rename into it is durable.
Status SyncParentDir(const std::string& path) {
  std::string copy = path;
  const char* dir = dirname(copy.data());
  const int fd = ::open(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoStatus(std::string("open dir '") + dir + "'");
  }
  Status st = Status::Ok();
  if (::fsync(fd) != 0) {
    st = ErrnoStatus(std::string("fsync dir '") + dir + "'");
  }
  ::close(fd);
  return st;
}

}  // namespace

const char* JournalSyncModeName(JournalSyncMode mode) {
  switch (mode) {
    case JournalSyncMode::kAlways:
      return "always";
    case JournalSyncMode::kBatch:
      return "batch";
    case JournalSyncMode::kNone:
      return "none";
  }
  return "unknown";
}

Status ParseJournalSyncSpec(const std::string& spec, JournalOptions* options) {
  if (spec == "always") {
    options->sync = JournalSyncMode::kAlways;
    return Status::Ok();
  }
  if (spec == "none") {
    options->sync = JournalSyncMode::kNone;
    return Status::Ok();
  }
  if (spec.rfind("batch:", 0) == 0) {
    const std::string count = spec.substr(6);
    char* end = nullptr;
    const long n = std::strtol(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || n < 1) {
      return Status::InvalidArgument("bad --journal-sync batch count '" + count +
                                     "' (want batch:<N>, N >= 1)");
    }
    options->sync = JournalSyncMode::kBatch;
    options->batch_frames = static_cast<std::uint32_t>(n);
    return Status::Ok();
  }
  return Status::InvalidArgument("bad --journal-sync '" + spec +
                                 "' (want always | batch:<N> | none)");
}

std::string EncodeJournalRecord(JournalRecordType type, const std::string& payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body += payload;
  std::string record;
  record.resize(8 + body.size());
  auto* bytes = reinterpret_cast<std::uint8_t*>(record.data());
  PutU32(bytes, static_cast<std::uint32_t>(body.size()));
  PutU32(bytes + 4, Crc32(body.data(), body.size()));
  std::memcpy(record.data() + 8, body.data(), body.size());
  return record;
}

Journal::Journal(JournalOptions options, int fd, std::uint64_t size)
    : options_(std::move(options)), fd_(fd), size_bytes_(size) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    // Best-effort: graceful shutdown already called Sync(); this only covers
    // error paths, where losing the unsynced tail is the documented contract.
    if (options_.sync != JournalSyncMode::kNone && unsynced_ > 0) {
      ::fdatasync(fd_);
    }
    ::close(fd_);
  }
}

Result<std::unique_ptr<Journal>> Journal::Open(const JournalOptions& options, JournalScan* scan) {
  SILOD_CHECK(scan != nullptr) << "scan output required";
  *scan = JournalScan{};
  if (options.path.empty()) {
    return Status::InvalidArgument("journal path must not be empty");
  }
  const int fd = ::open(options.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open journal '" + options.path + "'");
  }

  // Read the whole file; journals are bounded by compaction.
  std::string data;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) != 0) {
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        const Status st = ErrnoStatus("read journal '" + options.path + "'");
        ::close(fd);
        return st;
      }
      data.append(buf, static_cast<std::size_t>(n));
    }
  }

  // Scan: accept the longest valid prefix; truncate at the first bad record.
  std::size_t offset = 0;
  while (offset < data.size()) {
    if (data.size() - offset < 8) {
      break;  // Torn header.
    }
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data.data() + offset);
    const std::uint32_t body_len = GetU32(bytes);
    const std::uint32_t crc = GetU32(bytes + 4);
    if (body_len < 1 || body_len > kMaxJournalRecordBytes ||
        data.size() - offset - 8 < body_len) {
      break;  // Absurd length or torn body.
    }
    const char* body = data.data() + offset + 8;
    if (Crc32(body, body_len) != crc) {
      break;  // Corrupt record.
    }
    const auto type = static_cast<JournalRecordType>(static_cast<std::uint8_t>(body[0]));
    if (type != JournalRecordType::kRequest && type != JournalRecordType::kCheckpoint) {
      break;  // Unknown type: a future version's record; stop before it.
    }
    std::string payload(body + 1, body_len - 1);
    if (type == JournalRecordType::kCheckpoint) {
      scan->has_checkpoint = true;
      scan->checkpoint = std::move(payload);
      scan->requests.clear();  // Everything before the checkpoint is folded in.
    } else {
      scan->requests.push_back(std::move(payload));
    }
    ++scan->records;
    offset += 8 + body_len;
  }
  scan->dropped_bytes = data.size() - offset;
  if (scan->dropped_bytes > 0) {
    if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
      const Status st = ErrnoStatus("truncate torn tail of '" + options.path + "'");
      ::close(fd);
      return st;
    }
  }
  if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
    const Status st = ErrnoStatus("seek journal '" + options.path + "'");
    ::close(fd);
    return st;
  }
  return std::unique_ptr<Journal>(new Journal(options, fd, offset));
}

Status Journal::Append(JournalRecordType type, const std::string& payload) {
  const std::string record = EncodeJournalRecord(type, payload);
  if (record.size() - 8 > kMaxJournalRecordBytes) {
    return Status::InvalidArgument("journal record of " + std::to_string(record.size() - 8) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxJournalRecordBytes) + "-byte cap");
  }
  if (const Status st = WriteAllFd(fd_, record.data(), record.size()); !st.ok()) {
    return st;
  }
  size_bytes_ += record.size();
  ++appended_records_;
  ++unsynced_;
  return MaybeSync();
}

Status Journal::AppendRequest(const std::string& payload) {
  return Append(JournalRecordType::kRequest, payload);
}

Status Journal::MaybeSync() {
  switch (options_.sync) {
    case JournalSyncMode::kNone:
      unsynced_ = 0;
      return Status::Ok();
    case JournalSyncMode::kAlways:
      return Sync();
    case JournalSyncMode::kBatch:
      if (unsynced_ >= options_.batch_frames) {
        return Sync();
      }
      return Status::Ok();
  }
  return Status::Ok();
}

Status Journal::Sync() {
  if (unsynced_ == 0) {
    return Status::Ok();
  }
  if (::fdatasync(fd_) != 0) {
    return ErrnoStatus("fdatasync journal '" + options_.path + "'");
  }
  unsynced_ = 0;
  ++syncs_;
  return Status::Ok();
}

Status Journal::Compact(const std::string& checkpoint_payload) {
  const std::string tmp_path = options_.path + ".tmp";
  const int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (tmp < 0) {
    return ErrnoStatus("open '" + tmp_path + "'");
  }
  const std::string record = EncodeJournalRecord(JournalRecordType::kCheckpoint,
                                                 checkpoint_payload);
  Status st = WriteAllFd(tmp, record.data(), record.size());
  if (st.ok() && ::fdatasync(tmp) != 0) {
    st = ErrnoStatus("fdatasync '" + tmp_path + "'");
  }
  ::close(tmp);
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }
  if (::rename(tmp_path.c_str(), options_.path.c_str()) != 0) {
    const Status rn = ErrnoStatus("rename '" + tmp_path + "' over '" + options_.path + "'");
    ::unlink(tmp_path.c_str());
    return rn;
  }
  if (const Status dir = SyncParentDir(options_.path); !dir.ok()) {
    return dir;
  }
  // Swap the append fd to the compacted file; the old fd points at the
  // unlinked pre-compaction inode.
  const int fd = ::open(options_.path.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoStatus("reopen compacted journal '" + options_.path + "'");
  }
  ::close(fd_);
  fd_ = fd;
  size_bytes_ = record.size();
  unsynced_ = 0;
  ++compactions_;
  return Status::Ok();
}

}  // namespace silod
