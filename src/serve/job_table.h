// The silodd job table: the daemon's durable view of every job a client
// submitted, keyed by the client-chosen string id (docs/MODEL.md §11).
//
// The table owns the dataset catalog (datasets are interned by name on first
// submit; later submits must agree on size/block-size) and assigns dense
// JobIds in submission order — so snapshots built here walk jobs in the same
// ascending-id order the simulation engines do, which the delta solver's
// bit-identity contract relies on (sched/delta_fill.h).
//
// States: kActive jobs are visible to the scheduler; kQueued jobs were
// admission-queued and wait outside the scheduler's view; kCompleted /
// kCancelled are terminal and kept for the run report.
#ifndef SILOD_SRC_SERVE_JOB_TABLE_H_
#define SILOD_SRC_SERVE_JOB_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sched/policy.h"
#include "src/workload/dataset.h"
#include "src/workload/job.h"

namespace silod {

enum class ServeJobState { kActive, kQueued, kCompleted, kCancelled };

const char* ServeJobStateName(ServeJobState state);
// Inverse of ServeJobStateName; kInvalidArgument for unknown names (used by
// checkpoint restore, serve/journal.h).
Result<ServeJobState> ServeJobStateFromName(const std::string& name);

struct ServeJob {
  std::string key;  // Client-chosen id; unique across the daemon's lifetime.
  JobSpec spec;     // spec.id is the dense daemon JobId.
  ServeJobState state = ServeJobState::kActive;

  Seconds submit_time = 0;       // Virtual time of the submit request.
  Seconds admit_time = -1;       // When admission let it through (-1: never).
  Seconds first_start_time = -1; // First plan that granted it GPUs.
  Seconds finish_time = -1;      // Virtual time of complete/cancel.

  // Scheduler-visible runtime state, updated by progress reports and plans.
  Bytes remaining_bytes = 0;
  Bytes effective_cache = 0;
  bool running = false;  // Held GPUs in the last applied plan.
  // GPU type held in the last applied plan (-1 when waiting or untyped).
  // Sticky across plans while running: the non-preemptive serve path never
  // migrates a running job between types.
  int gpu_type = -1;
};

class JobTable {
 public:
  // Interns `name`, creating the dataset on first sight; kInvalidArgument if
  // an existing dataset of that name disagrees on size or block size.
  Result<DatasetId> InternDataset(const std::string& name, Bytes size, Bytes block_size);

  // Adds a job under `key`; kAlreadyExists if the key was ever used.  The
  // spec's id field is overwritten with the assigned dense JobId; the caller
  // sets the initial state (kActive or kQueued) afterwards.
  Result<ServeJob*> Add(const std::string& key, JobSpec spec, Seconds submit_time);

  // Lookup by client key; kNotFound for unknown keys.
  Result<ServeJob*> Find(const std::string& key);
  ServeJob* Get(JobId id);
  const ServeJob* Get(JobId id) const;

  // Scheduler view: kActive jobs in ascending JobId order.  The snapshot
  // borrows pointers into the table; it is valid until the next Add.
  Snapshot BuildSnapshot(Seconds now, const ClusterResources& resources,
                         const ClusterTopology* topology) const;

  // Sum of active jobs' GPU demand (the admission controller's load input).
  int ActiveGpuDemand() const;
  // Queued jobs in submission (FIFO promotion) order.
  std::vector<ServeJob*> QueuedJobs();

  std::size_t size() const { return jobs_.size(); }
  std::size_t CountState(ServeJobState state) const;
  const std::vector<std::unique_ptr<ServeJob>>& jobs() const { return jobs_; }
  const DatasetCatalog& catalog() const { return catalog_; }

 private:
  DatasetCatalog catalog_;
  std::map<std::string, DatasetId> datasets_by_name_;
  std::vector<std::unique_ptr<ServeJob>> jobs_;  // Indexed by JobId.
  std::map<std::string, JobId> jobs_by_key_;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_JOB_TABLE_H_
