// silodd request handling, socket-free (docs/MODEL.md §11).
//
// ServiceState is the whole daemon minus the transport: a job table, an
// admission controller, an incremental planner and a virtual clock, driven
// one ServeRequest at a time.  The Unix-socket server (serve/server.h), the
// in-process replay harness (sim/serve_replay.h) and the unit tests all
// speak to the same Handle() entry point, so every daemon behaviour is
// testable without sockets.
//
// Time is virtual and carried by the requests: every mutating verb takes a
// `t=<seconds>` argument and the clock advances to max(now, t).  That makes
// the daemon a deterministic function of the request sequence — the property
// the full-vs-incremental identity test and the trace cross-check build on.
//
// Verbs (key=value args, serve/proto.h encoding):
//   submit   key= t= gpus= ideal-io= total-bytes= dataset= dataset-size=
//            [block-size=] [step-bytes=] [model=]
//              -> decision=admitted|queued [job=<id>] [position=<n>]
//                 (resource-exhausted when admission rejects)
//   complete key= t=                -> state=completed
//   cancel   key= t=                -> state=cancelled
//   progress key= t= remaining= [effective=]   -> state=active
//   query    key=                   -> state= gpus= running= remote-io= ...
//   plan     [t=]                   -> digest= running= gpus-used= ...
//   stats                           -> counters (see Handle)
//   reload-policy policy= [manage-remote-io=]  -> policy=
//   report                          -> json=<RunReport JSON>
//   shutdown                        -> ok (server loop exits)
#ifndef SILOD_SRC_SERVE_SERVICE_H_
#define SILOD_SRC_SERVE_SERVICE_H_

#include <memory>
#include <string>

#include "src/common/topology.h"
#include "src/serve/admission.h"
#include "src/serve/incremental_planner.h"
#include "src/serve/job_table.h"
#include "src/serve/proto.h"
#include "src/sim/metrics.h"

namespace silod {

struct ServiceConfig {
  std::string policy = "fifo+silod";
  SchedulerOptions scheduler;
  PlanningOptions planning;
  ClusterResources resources;
  // Empty = zone-oblivious; otherwise covered against num_servers like the
  // engines do.
  ClusterTopology topology;
  AdmissionOptions admission;
};

class ServiceState {
 public:
  static Result<std::unique_ptr<ServiceState>> Create(ServiceConfig config);

  // Dispatches one request; never throws, all failures travel as error
  // responses.  Mutating verbs advance the virtual clock.
  ServeResponse Handle(const ServeRequest& request);

  // True once a shutdown request was handled; the server loop exits.
  bool shutdown_requested() const { return shutdown_; }

  // The run report over all jobs the daemon accepted, in JobId order; the
  // JCT summary goes through FillJctSummary so it is comparable bit-for-bit
  // with a batch engine run fed the same submit/complete times.
  RunReport Report() const;

  // Test/replay access: the current plan (re-solving if dirty) and the
  // scheduler snapshot the next solve would see.
  const AllocationPlan& PlanNow();
  Snapshot MakeSnapshot() const;

  Seconds now() const { return now_; }
  const std::string& policy_name() const { return planner_->policy_name(); }
  const IncrementalPlanner& planner() const { return *planner_; }
  const AdmissionController& admission() const { return *admission_; }
  const JobTable& jobs() const { return table_; }

 private:
  explicit ServiceState(ServiceConfig config);

  ServeResponse Submit(const ServeRequest& request);
  ServeResponse Complete(const ServeRequest& request);
  ServeResponse Cancel(const ServeRequest& request);
  ServeResponse Progress(const ServeRequest& request);
  ServeResponse Query(const ServeRequest& request);
  ServeResponse Plan(const ServeRequest& request);
  ServeResponse Stats();
  ServeResponse ReloadPolicy(const ServeRequest& request);

  // Re-solves if due and syncs per-job running flags / first-start times
  // with the resulting plan.
  void Replan(bool force);
  // Admits queued jobs (FIFO) that now pass the load gate.
  void PromoteQueued();
  Status AdvanceClock(const ServeRequest& request);

  ServiceConfig config_;
  ClusterTopology covered_topology_;
  JobTable table_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<IncrementalPlanner> planner_;
  Seconds now_ = 0;
  bool shutdown_ = false;
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_SERVICE_H_
