// silodd request handling, socket-free (docs/MODEL.md §11).
//
// ServiceState is the whole daemon minus the transport: a job table, an
// admission controller, an incremental planner and a virtual clock, driven
// one ServeRequest at a time.  The Unix-socket server (serve/server.h), the
// in-process replay harness (sim/serve_replay.h) and the unit tests all
// speak to the same Handle() entry point, so every daemon behaviour is
// testable without sockets.
//
// Time is virtual and carried by the requests: every mutating verb takes a
// `t=<seconds>` argument and the clock advances to max(now, t).  That makes
// the daemon a deterministic function of the request sequence — the property
// the full-vs-incremental identity test and the trace cross-check build on.
//
// Verbs (key=value args, serve/proto.h encoding):
//   submit   key= t= gpus= ideal-io= total-bytes= dataset= dataset-size=
//            [block-size=] [step-bytes=] [model=]
//              -> decision=admitted|queued [job=<id>] [position=<n>]
//                 (resource-exhausted when admission rejects)
//   complete key= t=                -> state=completed
//   cancel   key= t=                -> state=cancelled
//   progress key= t= remaining= [effective=]   -> state=active
//   query    key=                   -> state= gpus= running= remote-io= ...
//   plan     [t=]                   -> digest= running= gpus-used= ...
//   stats                           -> counters (see Handle)
//   reload-policy policy= [manage-remote-io=]  -> policy=
//   report                          -> json=<RunReport JSON>
//   checkpoint                      -> compacts the attached journal
//   shutdown                        -> ok (server loop exits)
//
// Durability (docs/MODEL.md §12): with a journal attached, every mutating
// request (submit/complete/cancel/progress/reload-policy/plan) is appended
// to the write-ahead log BEFORE it is applied; recovery replays the
// surviving records through this same Handle() so the rebuilt state is
// bit-identical (StateDigest(), the `state-digest` stats field, pins it).
// Mutating requests may carry a monotonically increasing `rid=`; a rid at or
// below the last applied one is acknowledged as duplicate=1 without being
// re-applied or re-journaled, which makes client retries over a daemon
// restart exactly-once.
#ifndef SILOD_SRC_SERVE_SERVICE_H_
#define SILOD_SRC_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/topology.h"
#include "src/serve/admission.h"
#include "src/serve/incremental_planner.h"
#include "src/serve/job_table.h"
#include "src/serve/journal.h"
#include "src/serve/proto.h"
#include "src/sim/metrics.h"

namespace silod {

struct ServiceConfig {
  std::string policy = "fifo+silod";
  SchedulerOptions scheduler;
  PlanningOptions planning;
  ClusterResources resources;
  // Empty = zone-oblivious; otherwise covered against num_servers like the
  // engines do.
  ClusterTopology topology;
  AdmissionOptions admission;
};

// True for verbs the journal must capture: everything that moves the job
// table, the admission queue, the policy, or the planner's running flags
// (`plan` forces a solve that stamps first-start times, so it counts).
bool IsMutatingVerb(const std::string& verb);

// What journal recovery found and replayed (reported by silodd at startup).
struct RecoveryInfo {
  bool from_checkpoint = false;
  std::uint64_t replayed_requests = 0;
  std::uint64_t replayed_errors = 0;  // Requests that errored on replay too.
  std::uint64_t dropped_bytes = 0;    // Torn tail truncated by the scan.
  std::vector<std::string> warnings;  // e.g. checkpoint/flag mismatches.
};

class ServiceState {
 public:
  static Result<std::unique_ptr<ServiceState>> Create(ServiceConfig config);

  // Crash-safe construction: opens (creating if absent) the journal, restores
  // the latest checkpoint, replays surviving request records through the
  // normal dispatch path, then attaches the journal so new mutations append.
  // Torn tails are truncated, never fatal; an undecodable CRC-valid record or
  // checkpoint is (it means a version/config mismatch, not a crash).
  static Result<std::unique_ptr<ServiceState>> CreateFromJournal(ServiceConfig config,
                                                                 const JournalOptions& journal,
                                                                 RecoveryInfo* recovery);

  // Dispatches one request; never throws, all failures travel as error
  // responses.  Mutating verbs advance the virtual clock.
  ServeResponse Handle(const ServeRequest& request);

  // True once a shutdown request was handled; the server loop exits.
  bool shutdown_requested() const { return shutdown_; }

  // The run report over all jobs the daemon accepted, in JobId order; the
  // JCT summary goes through FillJctSummary so it is comparable bit-for-bit
  // with a batch engine run fed the same submit/complete times.
  RunReport Report() const;

  // Test/replay access: the current plan (re-solving if dirty) and the
  // scheduler snapshot the next solve would see.
  const AllocationPlan& PlanNow();
  Snapshot MakeSnapshot() const;

  Seconds now() const { return now_; }
  const std::string& policy_name() const { return planner_->policy_name(); }
  const IncrementalPlanner& planner() const { return *planner_; }
  const AdmissionController& admission() const { return *admission_; }
  const JobTable& jobs() const { return table_; }

  // FNV-1a over the recovery-relevant state: the virtual clock, policy name,
  // last applied rid, dataset catalog, every job's spec/state/timestamps and
  // the admission counters.  A digest taken before SIGKILL must equal the
  // digest after recovery; volatile observability counters (requests_,
  // planner solve counts) are deliberately excluded.
  std::uint64_t StateDigest() const;

  // Checkpoint text for compaction (silodd-checkpoint-v1, journal.h) and its
  // inverse.  Restore requires an empty (freshly created) service.
  std::string CheckpointText() const;
  Status RestoreFromCheckpoint(const std::string& text, RecoveryInfo* recovery);

  // Makes mutations durable before they apply; replaces any prior journal.
  void AttachJournal(std::unique_ptr<Journal> journal) { journal_ = std::move(journal); }
  const Journal* journal() const { return journal_.get(); }
  // Flushes batched appends (graceful shutdown); no-op without a journal.
  Status SyncJournal();

 private:
  explicit ServiceState(ServiceConfig config);

  ServeResponse Submit(const ServeRequest& request);
  ServeResponse Complete(const ServeRequest& request);
  ServeResponse Cancel(const ServeRequest& request);
  ServeResponse Progress(const ServeRequest& request);
  ServeResponse Query(const ServeRequest& request);
  ServeResponse Plan(const ServeRequest& request);
  ServeResponse Stats();
  ServeResponse ReloadPolicy(const ServeRequest& request);
  ServeResponse Checkpoint();
  // The dispatch switch shared by live handling and journal replay.
  ServeResponse Dispatch(const ServeRequest& request);

  // Re-solves if due and syncs per-job running flags / first-start times
  // with the resulting plan.
  void Replan(bool force);
  // Admits queued jobs (FIFO) that now pass the load gate.
  void PromoteQueued();
  Status AdvanceClock(const ServeRequest& request);

  ServiceConfig config_;
  ClusterTopology covered_topology_;
  JobTable table_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<IncrementalPlanner> planner_;
  std::unique_ptr<Journal> journal_;
  Seconds now_ = 0;
  bool shutdown_ = false;
  bool replaying_ = false;  // Recovery replay: skip journaling/auto-compact.
  std::uint64_t requests_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t last_rid_ = 0;    // Highest rid a successful mutation carried.
  std::uint64_t duplicates_ = 0;  // Mutations acknowledged as rid duplicates.
  std::uint64_t checkpoints_ = 0;
  RecoveryInfo recovery_;  // Zeroed unless CreateFromJournal built us.
};

}  // namespace silod

#endif  // SILOD_SRC_SERVE_SERVICE_H_
