#include "src/serve/incremental_planner.h"

#include <set>
#include <utility>

#include "src/common/logging.h"

namespace silod {

IncrementalPlanner::IncrementalPlanner(std::string policy, SchedulerOptions options,
                                       PlanningOptions planning,
                                       std::shared_ptr<Scheduler> scheduler)
    : policy_(std::move(policy)),
      options_(options),
      planning_(planning),
      scheduler_(std::move(scheduler)),
      delta_(MakeDelta(policy_, options_)) {
  dirty_.MarkAll("initial plan");
}

Result<std::unique_ptr<IncrementalPlanner>> IncrementalPlanner::Create(
    const std::string& policy, const SchedulerOptions& options, const PlanningOptions& planning) {
  Result<std::shared_ptr<Scheduler>> scheduler = MakeSchedulerByName(policy, options);
  if (!scheduler.ok()) {
    return scheduler.status();
  }
  return std::unique_ptr<IncrementalPlanner>(
      new IncrementalPlanner(policy, options, planning, std::move(scheduler).value()));
}

Status IncrementalPlanner::ReloadPolicy(const std::string& policy,
                                        const SchedulerOptions& options) {
  Result<std::shared_ptr<Scheduler>> scheduler = MakeSchedulerByName(policy, options);
  if (!scheduler.ok()) {
    return scheduler.status();
  }
  policy_ = policy;
  options_ = options;
  scheduler_ = std::move(scheduler).value();
  delta_ = MakeDelta(policy_, options_);
  dirty_.MarkAll("policy reload: " + policy);
  return Status::Ok();
}

std::unique_ptr<DeltaWaterFill> IncrementalPlanner::MakeDelta(const std::string& policy,
                                                              const SchedulerOptions& options) {
  const std::size_t plus = policy.find('+');
  if (plus == std::string::npos || policy.substr(plus + 1) != "silod") {
    return nullptr;
  }
  const std::string sched = policy.substr(0, plus);
  if (sched == "fifo") {
    return std::make_unique<DeltaWaterFill>(DeltaOrderKind::kFifo, options.manage_remote_io);
  }
  // The registry's sjf+silod pair scores with SiloDPerf (Eq. 7); preemptive
  // SJF (SRTF) admits differently and stays on the full path.
  if (sched == "sjf" && !options.preemptive_sjf) {
    return std::make_unique<DeltaWaterFill>(DeltaOrderKind::kSjfSiloD, options.manage_remote_io);
  }
  return nullptr;
}

bool IncrementalPlanner::Due(const Snapshot& snapshot) const {
  if (!have_plan_) {
    return true;
  }
  if (dirty_.events() >= planning_.max_coalesced_events) {
    return true;
  }
  return snapshot.now - last_plan_time_ >= planning_.min_replan_interval;
}

const AllocationPlan& IncrementalPlanner::PlanFor(const Snapshot& snapshot, bool force) {
  ++planning_ticks_;
  if (have_plan_ && dirty_.empty()) {
    ++reused_plans_;
    return plan_;
  }
  if (!force && !Due(snapshot)) {
    ++reused_plans_;
    return plan_;
  }
  if (delta_ != nullptr && !dirty_.all_dirty() && have_plan_) {
    // Delta solve: recompute only the dirty jobs plus jobs touching dirty
    // datasets (their effective cache may have moved under them).
    const std::vector<JobId> marked = dirty_.DirtyJobs();
    std::set<JobId> dirty_jobs(marked.begin(), marked.end());
    if (!dirty_.DirtyDatasets().empty()) {
      const std::set<DatasetId> datasets(dirty_.DirtyDatasets().begin(),
                                         dirty_.DirtyDatasets().end());
      for (const JobView& view : snapshot.jobs) {
        if (datasets.count(view.spec->dataset) > 0 ||
            datasets.count(kInvalidDataset) > 0) {
          dirty_jobs.insert(view.spec->id);
        }
      }
    }
    plan_ = delta_->Solve(snapshot, {dirty_jobs.begin(), dirty_jobs.end()});
    ++delta_solves_;
  } else if (delta_ != nullptr) {
    // All-dirty with a delta-capable policy: same solver, cold cache — still
    // bit-identical to the batch scheduler, but every job is rescored.
    delta_->Invalidate();
    plan_ = delta_->Solve(snapshot, {});
    ++full_solves_;
  } else {
    plan_ = scheduler_->Schedule(snapshot);
    ++full_solves_;
  }
  have_plan_ = true;
  last_plan_time_ = snapshot.now;
  dirty_.Clear();
  return plan_;
}

}  // namespace silod
