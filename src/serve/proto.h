// The silodd request protocol (docs/MODEL.md §11).
//
// One AF_UNIX stream socket per client; every message is a length-prefixed
// frame on the shared transport of common/framing.h.  Unlike the rt worker
// protocol (binary u64 words, fixed layouts), requests carry names, dataset
// specs and policy strings, so payloads are a single line of text tokens:
//
//   request:   <verb> key=value key=value ...
//   response:  <status-token> [err=<message>] key=value ...
//
// Values are percent-escaped (space, '%', control bytes) so any string
// round-trips; keys are plain identifiers.  The encoding is deliberately
// greppable — `silod_client --verbose` prints frames verbatim — and
// deterministic: args serialize in sorted key order, so identical requests
// are byte-identical (useful for request logs and replay).
//
// Verbs: submit | complete | cancel | progress | query | stats | plan |
//        reload-policy | report | shutdown (see serve/service.h for the
//        argument contract of each).
#ifndef SILOD_SRC_SERVE_PROTO_H_
#define SILOD_SRC_SERVE_PROTO_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"

namespace silod {

enum class ServeFrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// Percent-escapes '%', whitespace and control/non-ASCII bytes so the token
// neither splits nor corrupts the line; identity on plain printable text.
std::string EscapeToken(const std::string& raw);
Result<std::string> UnescapeToken(const std::string& token);

struct ServeRequest {
  std::string verb;
  std::map<std::string, std::string> args;

  bool Has(const std::string& key) const { return args.count(key) > 0; }
  // Missing keys are InvalidArgument naming the verb and key; malformed
  // numbers likewise, so the server never parses garbage silently.
  Result<std::string> GetString(const std::string& key) const;
  Result<std::int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;

  std::string Encode() const;
  static Result<ServeRequest> Decode(const std::string& payload);
};

struct ServeResponse {
  StatusCode code = StatusCode::kOk;
  std::string error;  // Human-readable message when code != kOk.
  std::map<std::string, std::string> fields;

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const { return ok() ? Status::Ok() : Status(code, error); }
  static ServeResponse FromStatus(const Status& status);
  static ServeResponse Ok() { return ServeResponse{}; }

  std::string Encode() const;
  static Result<ServeResponse> Decode(const std::string& payload);
};

// Frame convenience wrappers over common/framing.h.  Reading validates the
// frame type, so a response on a request channel (or vice versa) surfaces as
// an error instead of a misparse.
Status WriteRequestFrame(int fd, const ServeRequest& request);
Result<ServeRequest> ReadRequestFrame(int fd);
Status WriteResponseFrame(int fd, const ServeResponse& response);
Result<ServeResponse> ReadResponseFrame(int fd);

}  // namespace silod

#endif  // SILOD_SRC_SERVE_PROTO_H_
