#include "src/serve/proto.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "src/common/framing.h"

namespace silod {
namespace {

bool NeedsEscape(unsigned char c) {
  return c <= ' ' || c >= 0x7f || c == '%';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

std::vector<std::string> SplitTokens(const std::string& payload) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : payload) {
    if (c == ' ') {
      if (!token.empty()) {
        tokens.push_back(token);
        token.clear();
      }
    } else {
      token += c;
    }
  }
  if (!token.empty()) {
    tokens.push_back(token);
  }
  return tokens;
}

// Parses the `key=value` tokens after the leading verb/status token.
Status ParseArgs(const std::vector<std::string>& tokens, std::size_t first,
                 std::map<std::string, std::string>* args) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("malformed token '" + token + "' (want key=value)");
    }
    Result<std::string> value = UnescapeToken(token.substr(eq + 1));
    if (!value.ok()) {
      return value.status();
    }
    const std::string key = token.substr(0, eq);
    if (!args->emplace(key, *std::move(value)).second) {
      return Status::InvalidArgument("duplicate key '" + key + "'");
    }
  }
  return Status::Ok();
}

std::string EncodeArgs(const std::map<std::string, std::string>& args) {
  std::string out;
  for (const auto& [key, value] : args) {
    out += " " + key + "=" + EscapeToken(value);
  }
  return out;
}

// Status codes travel as their kebab-case names ("invalid-argument"), kept in
// sync with StatusCode by the exhaustive switch below.
const char* CodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "internal";
}

Result<StatusCode> TokenToCode(const std::string& token) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded}) {
    if (token == CodeToken(code)) {
      return code;
    }
  }
  return Status::InvalidArgument("unknown status token '" + token + "'");
}

}  // namespace

std::string EscapeToken(const std::string& raw) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (NeedsEscape(u)) {
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeToken(const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::InvalidArgument("truncated escape in '" + token + "'");
    }
    const int hi = HexValue(token[i + 1]);
    const int lo = HexValue(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad escape in '" + token + "'");
    }
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

Result<std::string> ServeRequest::GetString(const std::string& key) const {
  const auto it = args.find(key);
  if (it == args.end()) {
    return Status::InvalidArgument(verb + ": missing required argument '" + key + "'");
  }
  return it->second;
}

Result<std::int64_t> ServeRequest::GetInt(const std::string& key) const {
  Result<std::string> raw = GetString(key);
  if (!raw.ok()) {
    return raw.status();
  }
  char* end = nullptr;
  const long long value = std::strtoll(raw->c_str(), &end, 10);
  if (raw->empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(verb + ": argument '" + key + "' is not an integer: " + *raw);
  }
  return static_cast<std::int64_t>(value);
}

Result<double> ServeRequest::GetDouble(const std::string& key) const {
  Result<std::string> raw = GetString(key);
  if (!raw.ok()) {
    return raw.status();
  }
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (raw->empty() || end == nullptr || *end != '\0') {
    return Status::InvalidArgument(verb + ": argument '" + key + "' is not a number: " + *raw);
  }
  return value;
}

std::string ServeRequest::Encode() const { return EscapeToken(verb) + EncodeArgs(args); }

Result<ServeRequest> ServeRequest::Decode(const std::string& payload) {
  const std::vector<std::string> tokens = SplitTokens(payload);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  ServeRequest request;
  Result<std::string> verb = UnescapeToken(tokens[0]);
  if (!verb.ok()) {
    return verb.status();
  }
  request.verb = *std::move(verb);
  if (const Status st = ParseArgs(tokens, 1, &request.args); !st.ok()) {
    return st;
  }
  return request;
}

ServeResponse ServeResponse::FromStatus(const Status& status) {
  ServeResponse response;
  response.code = status.code();
  response.error = status.message();
  return response;
}

std::string ServeResponse::Encode() const {
  std::string out = CodeToken(code);
  if (!ok()) {
    out += " err=" + EscapeToken(error);
  }
  out += EncodeArgs(fields);
  return out;
}

Result<ServeResponse> ServeResponse::Decode(const std::string& payload) {
  const std::vector<std::string> tokens = SplitTokens(payload);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty response");
  }
  Result<StatusCode> code = TokenToCode(tokens[0]);
  if (!code.ok()) {
    return code.status();
  }
  ServeResponse response;
  response.code = *code;
  if (const Status st = ParseArgs(tokens, 1, &response.fields); !st.ok()) {
    return st;
  }
  const auto err = response.fields.find("err");
  if (err != response.fields.end()) {
    response.error = err->second;
    response.fields.erase(err);
  }
  return response;
}

Status WriteRequestFrame(int fd, const ServeRequest& request) {
  return WriteRawFrame(fd, static_cast<std::uint8_t>(ServeFrameType::kRequest), request.Encode());
}

Result<ServeRequest> ReadRequestFrame(int fd) {
  Result<RawFrame> raw = ReadRawFrame(fd);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw->type != static_cast<std::uint8_t>(ServeFrameType::kRequest)) {
    return Status::Internal("expected a request frame, got type " + std::to_string(raw->type));
  }
  return ServeRequest::Decode(raw->payload);
}

Status WriteResponseFrame(int fd, const ServeResponse& response) {
  return WriteRawFrame(fd, static_cast<std::uint8_t>(ServeFrameType::kResponse),
                       response.Encode());
}

Result<ServeResponse> ReadResponseFrame(int fd) {
  Result<RawFrame> raw = ReadRawFrame(fd);
  if (!raw.ok()) {
    return raw.status();
  }
  if (raw->type != static_cast<std::uint8_t>(ServeFrameType::kResponse)) {
    return Status::Internal("expected a response frame, got type " + std::to_string(raw->type));
  }
  return ServeResponse::Decode(raw->payload);
}

}  // namespace silod
