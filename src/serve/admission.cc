#include "src/serve/admission.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admitted";
    case AdmissionDecision::kQueue:
      return "queued";
    case AdmissionDecision::kReject:
      return "rejected";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options, int total_gpus)
    : options_(options), total_gpus_(std::max(1, total_gpus)) {}

double AdmissionController::LoadWith(int active_gpu_demand, int candidate_gpus) const {
  return static_cast<double>(active_gpu_demand + candidate_gpus) /
         static_cast<double>(total_gpus_);
}

bool AdmissionController::LoadAllows(int active_gpu_demand, int candidate_gpus) const {
  // Integer-exact at the boundary: demand + candidate <= load * total admits
  // (a submission landing exactly at the threshold goes through); the small
  // epsilon absorbs threshold values like 1.5 * 8 that are not exactly
  // representable arithmetic away from an integer.
  return static_cast<double>(active_gpu_demand + candidate_gpus) <=
         options_.max_gpu_load * static_cast<double>(total_gpus_) + 1e-9;
}

AdmissionDecision AdmissionController::Decide(int active_gpu_demand, int queued,
                                              int candidate_gpus) const {
  // FIFO fairness: while anything is queued, new arrivals queue behind it
  // even if they would individually fit (no starvation of the queue head by
  // a stream of small jobs).
  if (queued == 0 && LoadAllows(active_gpu_demand, candidate_gpus)) {
    return AdmissionDecision::kAdmit;
  }
  if (queued < options_.max_queue) {
    return AdmissionDecision::kQueue;
  }
  return AdmissionDecision::kReject;
}

void AdmissionController::Record(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      ++admitted_;
      break;
    case AdmissionDecision::kQueue:
      ++queued_count_;
      break;
    case AdmissionDecision::kReject:
      ++rejected_;
      break;
  }
}

}  // namespace silod
