#include "src/serve/job_table.h"

#include "src/common/logging.h"

namespace silod {

const char* ServeJobStateName(ServeJobState state) {
  switch (state) {
    case ServeJobState::kActive:
      return "active";
    case ServeJobState::kQueued:
      return "queued";
    case ServeJobState::kCompleted:
      return "completed";
    case ServeJobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Result<ServeJobState> ServeJobStateFromName(const std::string& name) {
  for (const ServeJobState state : {ServeJobState::kActive, ServeJobState::kQueued,
                                    ServeJobState::kCompleted, ServeJobState::kCancelled}) {
    if (name == ServeJobStateName(state)) {
      return state;
    }
  }
  return Status::InvalidArgument("unknown job state '" + name + "'");
}

Result<DatasetId> JobTable::InternDataset(const std::string& name, Bytes size,
                                          Bytes block_size) {
  const auto it = datasets_by_name_.find(name);
  if (it != datasets_by_name_.end()) {
    const Dataset& existing = catalog_.Get(it->second);
    if (existing.size != size || existing.block_size != block_size) {
      return Status::InvalidArgument(
          "dataset '" + name + "' already interned with size " + std::to_string(existing.size) +
          "/block " + std::to_string(existing.block_size) + ", submit disagrees (" +
          std::to_string(size) + "/" + std::to_string(block_size) + ")");
    }
    return it->second;
  }
  const DatasetId id = catalog_.Add(name, size, block_size);
  datasets_by_name_.emplace(name, id);
  return id;
}

Result<ServeJob*> JobTable::Add(const std::string& key, JobSpec spec, Seconds submit_time) {
  if (jobs_by_key_.count(key) > 0) {
    return Status::AlreadyExists("job '" + key + "' already submitted");
  }
  auto job = std::make_unique<ServeJob>();
  job->key = key;
  job->spec = std::move(spec);
  job->spec.id = static_cast<JobId>(jobs_.size());
  job->spec.submit_time = submit_time;
  job->submit_time = submit_time;
  job->remaining_bytes = job->spec.total_bytes;
  ServeJob* raw = job.get();
  jobs_by_key_.emplace(key, raw->spec.id);
  jobs_.push_back(std::move(job));
  return raw;
}

Result<ServeJob*> JobTable::Find(const std::string& key) {
  const auto it = jobs_by_key_.find(key);
  if (it == jobs_by_key_.end()) {
    return Status::NotFound("no job '" + key + "'");
  }
  return jobs_[static_cast<std::size_t>(it->second)].get();
}

ServeJob* JobTable::Get(JobId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= jobs_.size()) {
    return nullptr;
  }
  return jobs_[static_cast<std::size_t>(id)].get();
}

const ServeJob* JobTable::Get(JobId id) const {
  return const_cast<JobTable*>(this)->Get(id);
}

Snapshot JobTable::BuildSnapshot(Seconds now, const ClusterResources& resources,
                                 const ClusterTopology* topology) const {
  Snapshot snapshot;
  snapshot.now = now;
  snapshot.resources = resources;
  snapshot.catalog = &catalog_;
  snapshot.topology = topology;
  for (const auto& job : jobs_) {
    if (job->state != ServeJobState::kActive) {
      continue;
    }
    JobView view;
    view.spec = &job->spec;
    view.remaining_bytes = job->remaining_bytes;
    view.effective_cache = job->effective_cache;
    view.running = job->running;
    view.gpu_type = job->gpu_type;
    snapshot.jobs.push_back(view);
  }
  AnnotateSnapshotSpeeds(&snapshot);
  return snapshot;
}

int JobTable::ActiveGpuDemand() const {
  int demand = 0;
  for (const auto& job : jobs_) {
    if (job->state == ServeJobState::kActive) {
      demand += job->spec.num_gpus;
    }
  }
  return demand;
}

std::vector<ServeJob*> JobTable::QueuedJobs() {
  std::vector<ServeJob*> queued;
  for (const auto& job : jobs_) {
    if (job->state == ServeJobState::kQueued) {
      queued.push_back(job.get());
    }
  }
  return queued;
}

std::size_t JobTable::CountState(ServeJobState state) const {
  std::size_t count = 0;
  for (const auto& job : jobs_) {
    if (job->state == state) {
      ++count;
    }
  }
  return count;
}

}  // namespace silod
