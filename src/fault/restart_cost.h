// RestartCost: what a worker crash discards (§6, "Fault tolerance").
//
// The paper checkpoints training state, so SiloD's baseline crash cost is
// pure scheduling delay: staged compute is frozen and resumed verbatim.
// Real jobs checkpoint less often than every block.  RestartCost makes the
// discard granularity a policy:
//
//   checkpoint-everything   today's behaviour (default): nothing is re-read,
//                           staged compute resumes where it left off;
//   lose-partial-epoch      the partial epoch in flight is discarded — its
//                           blocks are re-fetched and its staged compute is
//                           re-enqueued from the last epoch boundary;
//   checkpoint-interval:N   progress is durable every N blocks; the blocks
//                           past the last checkpoint are re-read.
//
// Policies cost only performance, never correctness: engines account every
// re-read in FaultStats so miss+hit completions always equal blocks read
// plus policy-mandated re-reads.
#ifndef SILOD_SRC_FAULT_RESTART_COST_H_
#define SILOD_SRC_FAULT_RESTART_COST_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace silod {

enum class RestartCostPolicy {
  kCheckpointEverything,
  kLosePartialEpoch,
  kCheckpointInterval,
};

struct RestartCost {
  RestartCostPolicy policy = RestartCostPolicy::kCheckpointEverything;
  std::int64_t interval_blocks = 64;  // kCheckpointInterval only.

  // Canonical spec: "checkpoint-everything" | "lose-partial-epoch" |
  // "checkpoint-interval:N".  Parse(ToSpec()) is the identity.
  std::string ToSpec() const;
  static Result<RestartCost> Parse(const std::string& spec);

  bool operator==(const RestartCost&) const = default;
};

}  // namespace silod

#endif  // SILOD_SRC_FAULT_RESTART_COST_H_
