// Minidump: compact, replayable crash forensics for the runtime (§6).
//
// macOS-style minidump philosophy — selective, small by construction: instead
// of dumping the whole process, capture exactly the state the cache-side
// replay needs plus a bounded window of the events that led up to the
// incident.  On a fault, an invariant violation or an unexpected worker exit,
// RtCluster serializes:
//
//   - static config: shard count, pool/egress sizes, placement seed, topology
//     and the dataset catalog (everything needed to rebuild a DataManager);
//   - a base state aligned to the window's first event: per-shard residency +
//     quotas (core/recovery.h text snapshots), per-shard eviction-RNG states,
//     shard liveness, and per-dataset zone spreads;
//   - the bounded event window: every cache access (job, dataset, block,
//     hit), every applied quota plan, every Data-Manager-affecting fault, and
//     forensic notes (spawn/kill/exit/rollback) that are kept but not
//     replayed.
//
// Replay (ReplayMinidump / tools/silod_replay.cc) rebuilds the DataManager
// from the base and re-executes the window: every access must produce the
// recorded hit/miss bit-identically.  This works because AccessBlock is
// RNG-free and every RNG consumer (shrink evictions, shard crashes) runs only
// inside recorded events, so restoring the per-shard streams pins the whole
// trajectory.  A divergence means the dump caught real state corruption (or a
// replay-model bug) — exactly what a crash artifact is for.
//
// The recorder double-buffers: events append to the current window and, when
// it reaches `window` events, a fresh base is captured and the window resets.
// A dump therefore carries between 0 and `window` events, each replayable
// from the embedded base.  Capture cost is one per-shard residency scan every
// `window` events — noise at rt scale.
#ifndef SILOD_SRC_FAULT_MINIDUMP_H_
#define SILOD_SRC_FAULT_MINIDUMP_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/core/data_manager.h"
#include "src/core/recovery.h"
#include "src/sched/allocation.h"
#include "src/workload/dataset.h"

namespace silod {

struct MinidumpEvent {
  enum class Kind { kAccess, kPlan, kFault, kNote };

  std::int64_t seq = 0;
  Kind kind = Kind::kNote;
  // kAccess fields.
  JobId job = kInvalidJob;
  DatasetId dataset = kInvalidDataset;
  std::int64_t block = -1;
  bool hit = false;
  // kPlan: MinidumpRecorder::PlanDetail's encoding of the quota plan.
  // kFault: "server-crash <s>" | "server-recover <s>" |
  //         "dm-restart dead=<csv|-> snap=<escaped snapshot text>".
  // kNote: free-form forensic text (never replayed).
  std::string detail;

  bool operator==(const MinidumpEvent&) const = default;
};

struct MinidumpShard {
  bool alive = true;
  Bytes capacity = 0;
  std::array<std::uint64_t, 4> rng_state{};
  // This shard's quotas + residency (core/recovery.h text format).
  std::string snapshot_text;

  bool operator==(const MinidumpShard&) const = default;
};

struct MinidumpCatalogEntry {
  DatasetId id = kInvalidDataset;
  std::string name;
  Bytes size = 0;
  Bytes block_size = 0;

  bool operator==(const MinidumpCatalogEntry&) const = default;
};

struct Minidump {
  Seconds wall_time = 0;
  std::string reason;
  int num_shards = 1;
  Bytes total_cache = 0;
  BytesPerSec remote_io = 0;
  std::uint64_t seed = 7;
  std::string topology_spec;  // Empty = zone-oblivious.
  std::vector<MinidumpCatalogEntry> catalog;
  std::int64_t base_seq = 0;  // seq the base state is aligned to.
  std::vector<MinidumpShard> shards;
  std::vector<std::pair<DatasetId, std::vector<Bytes>>> zone_shares;
  std::vector<MinidumpEvent> events;

  bool operator==(const Minidump&) const = default;
};

// Durable serialization; MinidumpFromText(MinidumpToText(d)) == d.
std::string MinidumpToText(const Minidump& dump);
Result<Minidump> MinidumpFromText(const std::string& text);

// The serializer's token escaping (backslash, newline, space; "" -> "\e").
// Public because kFault details embed an escaped snapshot text as a single
// token ("dm-restart dead=<csv|-> snap=<MinidumpEscape(snapshot)>").
std::string MinidumpEscape(const std::string& text);

struct ReplayReport {
  std::int64_t events = 0;    // Events re-executed (notes included).
  std::int64_t accesses = 0;  // Accesses compared against the recording.
  bool ok = true;             // Every access matched bit-identically.
  std::int64_t diverged_seq = -1;
  std::string message;
};

// Rebuilds the DataManager from the dump's base and re-executes the window.
// Status errors mean the dump itself is unusable (bad catalog, failed
// restore); a hit/miss mismatch is reported via ok/diverged_seq instead.
Result<ReplayReport> ReplayMinidump(const Minidump& dump);

// Serializes `dump` to <dir>/minidump-<label>-<n>.txt (creating <dir> if
// needed, best effort) and returns the path.
Result<std::string> WriteMinidumpFile(const Minidump& dump, const std::string& dir,
                                      const std::string& label, int n);

// Event recorder wired into the runtime's DataManager call sites.
//
// Locking contract: the replayable recording calls — MaybeRebase,
// RecordAccess, RecordPlan, RecordFault — must run under the same lock that
// serializes the DataManager itself (RtCluster's manager_mu_), with
// MaybeRebase called BEFORE the operation mutates the manager and RecordX
// after it.  Note() may be called from any thread.
class MinidumpRecorder {
 public:
  MinidumpRecorder(const DataManager& manager, const DatasetCatalog* catalog,
                   BytesPerSec remote_io, std::uint64_t seed, int window);

  void MaybeRebase(const DataManager& manager);
  void RecordAccess(JobId job, DatasetId dataset, std::int64_t block, bool hit);
  void RecordPlan(const std::string& detail);
  void RecordFault(const std::string& detail);
  void Note(const std::string& text);

  // The kPlan event encoding of a quota plan: space-separated
  // "<dataset>=<quota>" or "<dataset>=<quota>@z0,z1,..." entries.
  static std::string PlanDetail(const AllocationPlan& plan);

  // Assembles a dump of the current window.  Thread-safe.
  Minidump Dump(Seconds wall_time, std::string reason) const;

 private:
  void CaptureBaseLocked(const DataManager& manager);
  void AppendLocked(MinidumpEvent event);

  mutable std::mutex mu_;
  const DatasetCatalog* catalog_;
  const int window_;
  std::int64_t next_seq_ = 0;
  // Static config, captured at construction.
  int num_shards_;
  Bytes total_cache_;
  BytesPerSec remote_io_;
  std::uint64_t seed_;
  std::string topology_spec_;
  std::vector<MinidumpCatalogEntry> catalog_entries_;
  // Current window.
  std::int64_t base_seq_ = 0;
  std::vector<MinidumpShard> shards_;
  std::vector<std::pair<DatasetId, std::vector<Bytes>>> zone_shares_;
  std::vector<MinidumpEvent> events_;
};

}  // namespace silod

#endif  // SILOD_SRC_FAULT_MINIDUMP_H_
