#include "src/fault/minidump.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/topology.h"

namespace silod {
namespace {

// String fields are single space-free tokens: backslash, newline and space
// are escaped, and the empty string becomes the reserved token "\e" (a
// literal "\e" input round-trips as "\\e", so the sentinel is unambiguous).
std::string Escape(const std::string& text);

}  // namespace

std::string MinidumpEscape(const std::string& text) { return Escape(text); }

namespace {

std::string Escape(const std::string& text) {
  if (text.empty()) {
    return "\\e";
  }
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        out += "\\s";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& token) {
  if (token == "\\e") {
    return std::string();
  }
  std::string out;
  out.reserve(token.size());
  for (std::size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '\\') {
      out += token[i];
      continue;
    }
    if (i + 1 == token.size()) {
      return Status::InvalidArgument("minidump: dangling escape in \"" + token + "\"");
    }
    switch (token[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case 's':
        out += ' ';
        break;
      default:
        return Status::InvalidArgument("minidump: bad escape in \"" + token + "\"");
    }
  }
  return out;
}

// Doubles print with max_digits10 so FromText(ToText(d)) is bit-exact.
std::string DoubleToken(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    tokens.push_back(std::move(token));
  }
  return tokens;
}

Result<std::int64_t> ParseInt(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("minidump: bad integer \"" + token + "\"");
  }
  return static_cast<std::int64_t>(v);
}

Result<std::uint64_t> ParseU64(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("minidump: bad u64 \"" + token + "\"");
  }
  return static_cast<std::uint64_t>(v);
}

Result<double> ParseDouble(const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return Status::InvalidArgument("minidump: bad double \"" + token + "\"");
  }
  return v;
}

const char* EventKindName(MinidumpEvent::Kind kind) {
  switch (kind) {
    case MinidumpEvent::Kind::kAccess:
      return "access";
    case MinidumpEvent::Kind::kPlan:
      return "plan";
    case MinidumpEvent::Kind::kFault:
      return "fault";
    case MinidumpEvent::Kind::kNote:
      return "note";
  }
  return "unknown";
}

// Joins tokens[first..] back into the original space-separated detail (each
// token is individually escaped; spaces inside a field were turned into \s,
// so the join separator is unambiguous).
Result<std::string> JoinUnescaped(const std::vector<std::string>& tokens, std::size_t first) {
  std::string out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const auto piece = Unescape(tokens[i]);
    if (!piece.ok()) {
      return piece.status();
    }
    if (i > first) {
      out += ' ';
    }
    out += *piece;
  }
  return out;
}

// Replays one kFault event against the replay manager.  `manager` is
// reassigned wholesale on dm-restart (the live path builds a fresh manager
// too), which is why it is a non-const reference to a value.
Status ReplayFault(const std::string& detail, const DatasetCatalog& catalog,
                   const Minidump& dump, const ClusterTopology& topology, DataManager& manager) {
  const std::vector<std::string> parts = SplitTokens(detail);
  if (parts.empty()) {
    return Status::InvalidArgument("minidump: empty fault detail");
  }
  if (parts[0] == "server-crash" || parts[0] == "server-recover") {
    if (parts.size() != 2) {
      return Status::InvalidArgument("minidump: fault detail \"" + detail + "\"");
    }
    const auto shard = ParseInt(parts[1]);
    if (!shard.ok()) {
      return shard.status();
    }
    if (*shard < 0 || *shard >= manager.num_shards()) {
      return Status::InvalidArgument("minidump: fault shard out of range in \"" + detail + "\"");
    }
    if (parts[0] == "server-crash") {
      manager.CrashShard(static_cast<int>(*shard));
    } else {
      manager.RecoverShard(static_cast<int>(*shard));
    }
    return Status::Ok();
  }
  if (parts[0] == "dm-restart") {
    if (parts.size() != 3 || parts[1].rfind("dead=", 0) != 0 || parts[2].rfind("snap=", 0) != 0) {
      return Status::InvalidArgument("minidump: fault detail \"" + detail + "\"");
    }
    std::vector<int> dead;
    const std::string dead_csv = parts[1].substr(5);
    if (dead_csv != "-") {
      std::istringstream is(dead_csv);
      std::string piece;
      while (std::getline(is, piece, ',')) {
        const auto shard = ParseInt(piece);
        if (!shard.ok()) {
          return shard.status();
        }
        dead.push_back(static_cast<int>(*shard));
      }
    }
    const auto snap_text = Unescape(parts[2].substr(5));
    if (!snap_text.ok()) {
      return snap_text.status();
    }
    const auto snapshot = SnapshotFromText(*snap_text, &catalog);
    if (!snapshot.ok()) {
      return snapshot.status();
    }
    // Mirrors the live restart: fresh manager, same topology, dead shards
    // crashed before the restore so their routed blocks drop on the floor.
    DataManager fresh(dump.total_cache, dump.remote_io, dump.seed, dump.num_shards);
    if (!topology.empty()) {
      if (const Status st = fresh.SetTopology(topology); !st.ok()) {
        return st;
      }
    }
    for (const int shard : dead) {
      if (shard < 0 || shard >= fresh.num_shards()) {
        return Status::InvalidArgument("minidump: dead shard out of range in \"" + detail + "\"");
      }
      fresh.CrashShard(shard);
    }
    if (const Status st = RestoreDataManager(*snapshot, catalog, &fresh); !st.ok()) {
      return st;
    }
    manager = std::move(fresh);
    return Status::Ok();
  }
  return Status::InvalidArgument("minidump: unknown fault kind \"" + parts[0] + "\"");
}

Status ReplayPlan(const std::string& detail, const DatasetCatalog& catalog, DataManager& manager) {
  AllocationPlan plan;
  plan.cache_model = CacheModelKind::kDatasetQuota;
  if (detail != "-") {
    for (const std::string& entry : SplitTokens(detail)) {
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("minidump: plan entry \"" + entry + "\"");
      }
      const auto dataset = ParseInt(entry.substr(0, eq));
      if (!dataset.ok()) {
        return dataset.status();
      }
      std::string rest = entry.substr(eq + 1);
      const std::size_t at = rest.find('@');
      std::vector<Bytes> zone_shares;
      if (at != std::string::npos) {
        std::istringstream is(rest.substr(at + 1));
        std::string piece;
        while (std::getline(is, piece, ',')) {
          const auto share = ParseInt(piece);
          if (!share.ok()) {
            return share.status();
          }
          zone_shares.push_back(*share);
        }
        rest = rest.substr(0, at);
      }
      const auto quota = ParseInt(rest);
      if (!quota.ok()) {
        return quota.status();
      }
      const auto id = static_cast<DatasetId>(*dataset);
      plan.dataset_cache[id] = *quota;
      if (!zone_shares.empty()) {
        plan.dataset_zone_cache[id] = std::move(zone_shares);
      }
    }
  }
  return manager.ApplyPlan(plan, catalog);
}

}  // namespace

std::string MinidumpToText(const Minidump& dump) {
  std::ostringstream os;
  os << "silod-minidump-v1\n";
  os << "time " << DoubleToken(dump.wall_time) << "\n";
  os << "reason " << Escape(dump.reason) << "\n";
  os << "config " << dump.num_shards << " " << dump.total_cache << " "
     << DoubleToken(dump.remote_io) << " " << dump.seed << "\n";
  os << "topology " << Escape(dump.topology_spec) << "\n";
  for (const auto& entry : dump.catalog) {
    os << "dataset " << entry.id << " " << Escape(entry.name) << " " << entry.size << " "
       << entry.block_size << "\n";
  }
  os << "base " << dump.base_seq << "\n";
  for (std::size_t s = 0; s < dump.shards.size(); ++s) {
    const MinidumpShard& shard = dump.shards[s];
    os << "shard " << s << " " << (shard.alive ? 1 : 0) << " " << shard.capacity;
    for (const std::uint64_t word : shard.rng_state) {
      os << " " << word;
    }
    os << "\n";
    os << "shard-state " << s << " " << Escape(shard.snapshot_text) << "\n";
  }
  for (const auto& [dataset, shares] : dump.zone_shares) {
    os << "zone-shares " << dataset;
    for (const Bytes share : shares) {
      os << " " << share;
    }
    os << "\n";
  }
  for (const MinidumpEvent& event : dump.events) {
    os << "event " << event.seq << " " << EventKindName(event.kind);
    if (event.kind == MinidumpEvent::Kind::kAccess) {
      os << " " << event.job << " " << event.dataset << " " << event.block << " "
         << (event.hit ? 1 : 0);
    } else {
      os << " " << Escape(event.detail);
    }
    os << "\n";
  }
  return os.str();
}

Result<Minidump> MinidumpFromText(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "silod-minidump-v1") {
    return Status::InvalidArgument("minidump: missing silod-minidump-v1 header");
  }
  Minidump dump;
  bool saw_config = false;
  int line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string> tokens = SplitTokens(line);
    if (tokens.empty()) {
      continue;
    }
    const auto fail = [&](const std::string& why) -> Status {
      return Status::InvalidArgument("minidump line " + std::to_string(line_no) + ": " + why);
    };
    const std::string& key = tokens[0];
    if (key == "time") {
      if (tokens.size() != 2) {
        return fail("time wants 1 field");
      }
      const auto v = ParseDouble(tokens[1]);
      if (!v.ok()) {
        return v.status();
      }
      dump.wall_time = *v;
    } else if (key == "reason") {
      if (tokens.size() != 2) {
        return fail("reason wants 1 field");
      }
      const auto v = Unescape(tokens[1]);
      if (!v.ok()) {
        return v.status();
      }
      dump.reason = *v;
    } else if (key == "config") {
      if (tokens.size() != 5) {
        return fail("config wants 4 fields");
      }
      const auto shards = ParseInt(tokens[1]);
      const auto cache = ParseInt(tokens[2]);
      const auto io = ParseDouble(tokens[3]);
      const auto seed = ParseU64(tokens[4]);
      if (!shards.ok() || !cache.ok() || !io.ok() || !seed.ok()) {
        return fail("bad config field");
      }
      if (*shards < 1) {
        return fail("num_shards must be >= 1");
      }
      dump.num_shards = static_cast<int>(*shards);
      dump.total_cache = *cache;
      dump.remote_io = *io;
      dump.seed = *seed;
      saw_config = true;
    } else if (key == "topology") {
      if (tokens.size() != 2) {
        return fail("topology wants 1 field");
      }
      const auto v = Unescape(tokens[1]);
      if (!v.ok()) {
        return v.status();
      }
      dump.topology_spec = *v;
    } else if (key == "dataset") {
      if (tokens.size() != 5) {
        return fail("dataset wants 4 fields");
      }
      const auto id = ParseInt(tokens[1]);
      const auto name = Unescape(tokens[2]);
      const auto size = ParseInt(tokens[3]);
      const auto block = ParseInt(tokens[4]);
      if (!id.ok() || !name.ok() || !size.ok() || !block.ok()) {
        return fail("bad dataset field");
      }
      dump.catalog.push_back(
          {static_cast<DatasetId>(*id), *name, *size, *block});
    } else if (key == "base") {
      if (tokens.size() != 2) {
        return fail("base wants 1 field");
      }
      const auto v = ParseInt(tokens[1]);
      if (!v.ok()) {
        return v.status();
      }
      dump.base_seq = *v;
    } else if (key == "shard") {
      if (tokens.size() != 8) {
        return fail("shard wants 7 fields");
      }
      const auto index = ParseInt(tokens[1]);
      const auto alive = ParseInt(tokens[2]);
      const auto capacity = ParseInt(tokens[3]);
      if (!index.ok() || !alive.ok() || !capacity.ok()) {
        return fail("bad shard field");
      }
      if (*index != static_cast<std::int64_t>(dump.shards.size())) {
        return fail("shard records out of order");
      }
      MinidumpShard shard;
      shard.alive = *alive != 0;
      shard.capacity = *capacity;
      for (int i = 0; i < 4; ++i) {
        const auto word = ParseU64(tokens[4 + i]);
        if (!word.ok()) {
          return word.status();
        }
        shard.rng_state[static_cast<std::size_t>(i)] = *word;
      }
      dump.shards.push_back(std::move(shard));
    } else if (key == "shard-state") {
      if (tokens.size() != 3) {
        return fail("shard-state wants 2 fields");
      }
      const auto index = ParseInt(tokens[1]);
      const auto state = Unescape(tokens[2]);
      if (!index.ok() || !state.ok()) {
        return fail("bad shard-state field");
      }
      if (*index < 0 || *index >= static_cast<std::int64_t>(dump.shards.size())) {
        return fail("shard-state before its shard record");
      }
      dump.shards[static_cast<std::size_t>(*index)].snapshot_text = *state;
    } else if (key == "zone-shares") {
      if (tokens.size() < 2) {
        return fail("zone-shares wants a dataset id");
      }
      const auto id = ParseInt(tokens[1]);
      if (!id.ok()) {
        return id.status();
      }
      std::vector<Bytes> shares;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto share = ParseInt(tokens[i]);
        if (!share.ok()) {
          return share.status();
        }
        shares.push_back(*share);
      }
      dump.zone_shares.emplace_back(static_cast<DatasetId>(*id), std::move(shares));
    } else if (key == "event") {
      if (tokens.size() < 3) {
        return fail("event wants a seq and a kind");
      }
      const auto seq = ParseInt(tokens[1]);
      if (!seq.ok()) {
        return seq.status();
      }
      MinidumpEvent event;
      event.seq = *seq;
      const std::string& kind = tokens[2];
      if (kind == "access") {
        if (tokens.size() != 7) {
          return fail("access event wants 4 fields");
        }
        const auto job = ParseInt(tokens[3]);
        const auto dataset = ParseInt(tokens[4]);
        const auto block = ParseInt(tokens[5]);
        const auto hit = ParseInt(tokens[6]);
        if (!job.ok() || !dataset.ok() || !block.ok() || !hit.ok()) {
          return fail("bad access field");
        }
        event.kind = MinidumpEvent::Kind::kAccess;
        event.job = static_cast<JobId>(*job);
        event.dataset = static_cast<DatasetId>(*dataset);
        event.block = *block;
        event.hit = *hit != 0;
      } else if (kind == "plan" || kind == "fault" || kind == "note") {
        if (tokens.size() < 4) {
          return fail(kind + " event wants a detail");
        }
        event.kind = kind == "plan"    ? MinidumpEvent::Kind::kPlan
                     : kind == "fault" ? MinidumpEvent::Kind::kFault
                                       : MinidumpEvent::Kind::kNote;
        const auto detail = JoinUnescaped(tokens, 3);
        if (!detail.ok()) {
          return detail.status();
        }
        event.detail = *detail;
      } else {
        return fail("unknown event kind \"" + kind + "\"");
      }
      dump.events.push_back(std::move(event));
    } else {
      return fail("unknown record \"" + key + "\"");
    }
  }
  if (!saw_config) {
    return Status::InvalidArgument("minidump: missing config record");
  }
  if (static_cast<int>(dump.shards.size()) != dump.num_shards) {
    return Status::InvalidArgument("minidump: shard records do not match num_shards");
  }
  return dump;
}

Result<ReplayReport> ReplayMinidump(const Minidump& dump) {
  // Rebuild the catalog; ids must be dense and in order, as recorded.
  DatasetCatalog catalog;
  for (const MinidumpCatalogEntry& entry : dump.catalog) {
    const DatasetId id = catalog.Add(entry.name, entry.size, entry.block_size);
    if (id != entry.id) {
      return Status::InvalidArgument("minidump: catalog ids are not dense");
    }
  }
  ClusterTopology topology;
  if (!dump.topology_spec.empty()) {
    auto parsed = ClusterTopology::Parse(dump.topology_spec);
    if (!parsed.ok()) {
      return parsed.status();
    }
    topology = *std::move(parsed);
  }

  // Base state: fresh manager, topology, per-shard quota + residency, shard
  // liveness, then the RNG streams LAST — every restore step above may draw
  // from a shard's stream, and the recorded states are the live streams at
  // the window's first event, so they overwrite whatever setup consumed.
  DataManager manager(dump.total_cache, dump.remote_io, dump.seed, dump.num_shards);
  if (!topology.empty()) {
    if (const Status st = manager.SetTopology(topology); !st.ok()) {
      return st;
    }
  }
  for (int s = 0; s < dump.num_shards; ++s) {
    const MinidumpShard& shard = dump.shards[static_cast<std::size_t>(s)];
    const auto snapshot = SnapshotFromText(shard.snapshot_text, &catalog);
    if (!snapshot.ok()) {
      return snapshot.status();
    }
    if (const Status st = RestoreCacheManager(*snapshot, catalog, &manager.shard_cache(s));
        !st.ok()) {
      return st;
    }
  }
  for (int s = 0; s < dump.num_shards; ++s) {
    if (!dump.shards[static_cast<std::size_t>(s)].alive) {
      // The captured dead shard held no blocks (they were dropped at crash
      // time), so this evicts nothing and draws nothing.
      manager.CrashShard(s);
    }
  }
  for (int s = 0; s < dump.num_shards; ++s) {
    manager.shard_cache(s).eviction_rng().set_state(
        dump.shards[static_cast<std::size_t>(s)].rng_state);
  }
  for (const auto& [dataset, shares] : dump.zone_shares) {
    manager.RestoreZoneShares(dataset, shares);
  }

  ReplayReport report;
  for (const MinidumpEvent& event : dump.events) {
    ++report.events;
    switch (event.kind) {
      case MinidumpEvent::Kind::kAccess: {
        if (event.dataset < 0 || static_cast<std::size_t>(event.dataset) >= catalog.size()) {
          return Status::InvalidArgument("minidump: access to unknown dataset " +
                                         std::to_string(event.dataset));
        }
        ++report.accesses;
        const bool hit = manager.AccessBlock(catalog.Get(event.dataset), event.block);
        if (hit != event.hit) {
          report.ok = false;
          report.diverged_seq = event.seq;
          report.message = "event " + std::to_string(event.seq) + ": job " +
                           std::to_string(event.job) + " dataset " +
                           std::to_string(event.dataset) + " block " +
                           std::to_string(event.block) + " replayed " +
                           (hit ? "hit" : "miss") + ", recorded " +
                           (event.hit ? "hit" : "miss");
          return report;
        }
        break;
      }
      case MinidumpEvent::Kind::kPlan:
        if (const Status st = ReplayPlan(event.detail, catalog, manager); !st.ok()) {
          return st;
        }
        break;
      case MinidumpEvent::Kind::kFault:
        if (const Status st = ReplayFault(event.detail, catalog, dump, topology, manager);
            !st.ok()) {
          return st;
        }
        break;
      case MinidumpEvent::Kind::kNote:
        break;  // Forensic only.
    }
  }
  report.message = "replayed " + std::to_string(report.accesses) + " accesses bit-identically";
  return report;
}

Result<std::string> WriteMinidumpFile(const Minidump& dump, const std::string& dir,
                                      const std::string& label, int n) {
  if (dir.empty()) {
    return Status::InvalidArgument("minidump: empty output directory");
  }
  // Best effort: the directory may already exist, and a racing sibling
  // creating it first is fine.
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("minidump: mkdir " + dir + ": " + std::strerror(errno));
  }
  const std::string path = dir + "/minidump-" + label + "-" + std::to_string(n) + ".txt";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("minidump: cannot open " + path);
  }
  out << MinidumpToText(dump);
  out.flush();
  if (!out) {
    return Status::Internal("minidump: short write to " + path);
  }
  return path;
}

MinidumpRecorder::MinidumpRecorder(const DataManager& manager, const DatasetCatalog* catalog,
                                   BytesPerSec remote_io, std::uint64_t seed, int window)
    : catalog_(catalog),
      window_(window),
      num_shards_(manager.num_shards()),
      remote_io_(remote_io),
      seed_(seed),
      topology_spec_(manager.topology().ToSpec()) {
  SILOD_CHECK(catalog_ != nullptr) << "minidump recorder needs a catalog";
  SILOD_CHECK(window_ > 0) << "minidump window must be positive";
  total_cache_ = 0;
  for (int s = 0; s < num_shards_; ++s) {
    total_cache_ += manager.shard_cache(s).total_capacity();
  }
  catalog_entries_.reserve(catalog_->all().size());
  for (const Dataset& dataset : catalog_->all()) {
    catalog_entries_.push_back({dataset.id, dataset.name, dataset.size, dataset.block_size});
  }
  std::lock_guard<std::mutex> lock(mu_);
  CaptureBaseLocked(manager);
}

void MinidumpRecorder::CaptureBaseLocked(const DataManager& manager) {
  base_seq_ = next_seq_;
  events_.clear();
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    const CacheManager& cache = manager.shard_cache(s);
    MinidumpShard shard;
    shard.alive = manager.shard_alive(s);
    shard.capacity = cache.total_capacity();
    shard.rng_state = cache.eviction_rng().state();
    shard.snapshot_text = SnapshotToText(CaptureCacheSnapshot(cache, *catalog_));
    shards_.push_back(std::move(shard));
  }
  zone_shares_.clear();
  for (const Dataset& dataset : catalog_->all()) {
    if (const std::vector<Bytes>* shares = manager.zone_shares_of(dataset.id)) {
      zone_shares_.emplace_back(dataset.id, *shares);
    }
  }
}

void MinidumpRecorder::AppendLocked(MinidumpEvent event) {
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
}

void MinidumpRecorder::MaybeRebase(const DataManager& manager) {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<int>(events_.size()) >= window_) {
    CaptureBaseLocked(manager);
  }
}

void MinidumpRecorder::RecordAccess(JobId job, DatasetId dataset, std::int64_t block, bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  MinidumpEvent event;
  event.kind = MinidumpEvent::Kind::kAccess;
  event.job = job;
  event.dataset = dataset;
  event.block = block;
  event.hit = hit;
  AppendLocked(std::move(event));
}

void MinidumpRecorder::RecordPlan(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  MinidumpEvent event;
  event.kind = MinidumpEvent::Kind::kPlan;
  event.detail = detail;
  AppendLocked(std::move(event));
}

void MinidumpRecorder::RecordFault(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  MinidumpEvent event;
  event.kind = MinidumpEvent::Kind::kFault;
  event.detail = detail;
  AppendLocked(std::move(event));
}

void MinidumpRecorder::Note(const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  MinidumpEvent event;
  event.kind = MinidumpEvent::Kind::kNote;
  event.detail = text;
  AppendLocked(std::move(event));
}

std::string MinidumpRecorder::PlanDetail(const AllocationPlan& plan) {
  if (plan.dataset_cache.empty()) {
    return "-";
  }
  std::ostringstream os;
  bool first = true;
  for (const auto& [dataset, quota] : plan.dataset_cache) {
    if (!first) {
      os << " ";
    }
    first = false;
    os << dataset << "=" << quota;
    const auto zit = plan.dataset_zone_cache.find(dataset);
    if (zit != plan.dataset_zone_cache.end() && !zit->second.empty()) {
      os << "@";
      for (std::size_t z = 0; z < zit->second.size(); ++z) {
        if (z > 0) {
          os << ",";
        }
        os << zit->second[z];
      }
    }
  }
  return os.str();
}

Minidump MinidumpRecorder::Dump(Seconds wall_time, std::string reason) const {
  std::lock_guard<std::mutex> lock(mu_);
  Minidump dump;
  dump.wall_time = wall_time;
  dump.reason = std::move(reason);
  dump.num_shards = num_shards_;
  dump.total_cache = total_cache_;
  dump.remote_io = remote_io_;
  dump.seed = seed_;
  dump.topology_spec = topology_spec_;
  dump.catalog = catalog_entries_;
  dump.base_seq = base_seq_;
  dump.shards = shards_;
  dump.zone_shares = zone_shares_;
  dump.events = events_;
  return dump;
}

}  // namespace silod
