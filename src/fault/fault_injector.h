// FaultInjector: the consumption cursor over a FaultPlan.
//
// Engines fold the injector's next event time into their next-event
// computation (virtual time) or poll it each control-loop iteration (wall
// clock); either way they pop the due events and apply them, then trigger an
// immediate reschedule — failures and recoveries are scheduling events, not
// background noise (§6).
#ifndef SILOD_SRC_FAULT_FAULT_INJECTOR_H_
#define SILOD_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstddef>
#include <vector>

#include "src/fault/fault_plan.h"

namespace silod {

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  // Time of the next unconsumed event; kInfiniteTime when exhausted.
  Seconds NextTime() const;

  // Appends every event due at or before `now` to `due` (plan order) and
  // advances the cursor past them.
  void PopDue(Seconds now, std::vector<FaultEvent>* due);

  bool exhausted() const { return next_ >= plan_.events.size(); }
  std::size_t injected() const { return next_; }

 private:
  FaultPlan plan_;
  std::size_t next_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_FAULT_FAULT_INJECTOR_H_
