#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/rng.h"

namespace silod {
namespace {

std::string FmtTime(Seconds t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", t);
  return buf;
}

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

struct EventSpec {
  Seconds t = -1;
  int server = -1;
  int job = -1;
  double factor = 1.0;
  double err = 0.0;
  Seconds down = 0;     // server-crash outage length.
  Seconds dur = 0;      // degrade window length ("for=").
  Seconds restart = 60; // worker-crash restart delay.
};

Status ParseKeyValue(const std::string& token, EventSpec* spec) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("fault event token is not key=value: " + token);
  }
  const std::string key = token.substr(0, eq);
  const std::string raw = token.substr(eq + 1);
  double value = 0;
  std::istringstream in(raw);
  if (!(in >> value) || !in.eof()) {
    return Status::InvalidArgument("bad fault value: " + token);
  }
  if (key == "t") {
    spec->t = value;
  } else if (key == "server") {
    spec->server = static_cast<int>(value);
  } else if (key == "job") {
    spec->job = static_cast<int>(value);
  } else if (key == "factor") {
    spec->factor = value;
  } else if (key == "err") {
    spec->err = value;
  } else if (key == "down") {
    spec->down = value;
  } else if (key == "for") {
    spec->dur = value;
  } else if (key == "restart") {
    spec->restart = value;
  } else {
    return Status::InvalidArgument("unknown fault key: " + key);
  }
  return Status::Ok();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCacheServerCrash:
      return "server-crash";
    case FaultKind::kCacheServerRecover:
      return "server-recover";
    case FaultKind::kRemoteDegrade:
      return "degrade";
    case FaultKind::kWorkerCrash:
      return "worker-crash";
    case FaultKind::kWorkerRestart:
      return "worker-restart";
    case FaultKind::kDataManagerRestart:
      return "dm-restart";
  }
  return "unknown";
}

void FaultPlan::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
}

std::string FaultPlan::ToSpec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) {
      out += "; ";
    }
    out += FaultKindName(e.kind);
    out += " t=" + FmtTime(e.time);
    switch (e.kind) {
      case FaultKind::kCacheServerCrash:
      case FaultKind::kCacheServerRecover:
        out += " server=" + std::to_string(e.target);
        break;
      case FaultKind::kWorkerCrash:
        // Expanded plans carry restarts as explicit events; suppress the
        // default re-expansion or Parse(ToSpec()) would grow a phantom one.
        out += " job=" + std::to_string(e.target) + " restart=0";
        break;
      case FaultKind::kWorkerRestart:
        out += " job=" + std::to_string(e.target);
        break;
      case FaultKind::kRemoteDegrade:
        out += " factor=" + FmtDouble(e.severity) + " err=" + FmtDouble(e.error_rate);
        break;
      case FaultKind::kDataManagerRestart:
        break;
    }
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream events_in(spec);
  std::string event_text;
  while (std::getline(events_in, event_text, ';')) {
    std::istringstream fields(event_text);
    std::string kind_name;
    if (!(fields >> kind_name)) {
      continue;  // Empty segment (trailing semicolon).
    }
    EventSpec s;
    // worker-crash expands with a paired restart by default; explicit
    // restart=0 keeps the worker down for good.
    std::string token;
    while (fields >> token) {
      if (const Status st = ParseKeyValue(token, &s); !st.ok()) {
        return st;
      }
    }
    if (s.t < 0) {
      return Status::InvalidArgument("fault event missing t=: " + event_text);
    }

    FaultEvent e;
    e.time = s.t;
    if (kind_name == "server-crash" || kind_name == "server-recover") {
      if (s.server < 0) {
        return Status::InvalidArgument("server event missing server=: " + event_text);
      }
      e.kind = kind_name == "server-crash" ? FaultKind::kCacheServerCrash
                                           : FaultKind::kCacheServerRecover;
      e.target = s.server;
      plan.events.push_back(e);
      if (e.kind == FaultKind::kCacheServerCrash && s.down > 0) {
        FaultEvent recover = e;
        recover.kind = FaultKind::kCacheServerRecover;
        recover.time = s.t + s.down;
        plan.events.push_back(recover);
      }
    } else if (kind_name == "degrade") {
      if (s.factor <= 0 || s.factor > 1) {
        return Status::InvalidArgument("degrade factor must be in (0, 1]: " + event_text);
      }
      if (s.err < 0 || s.err >= 1) {
        return Status::InvalidArgument("degrade err must be in [0, 1): " + event_text);
      }
      e.kind = FaultKind::kRemoteDegrade;
      e.severity = s.factor;
      e.error_rate = s.err;
      plan.events.push_back(e);
      if (s.dur > 0) {
        FaultEvent restore;
        restore.kind = FaultKind::kRemoteDegrade;
        restore.time = s.t + s.dur;
        plan.events.push_back(restore);  // factor=1, err=0 defaults.
      }
    } else if (kind_name == "worker-crash" || kind_name == "worker-restart") {
      if (s.job < 0) {
        return Status::InvalidArgument("worker event missing job=: " + event_text);
      }
      e.kind = kind_name == "worker-crash" ? FaultKind::kWorkerCrash
                                           : FaultKind::kWorkerRestart;
      e.target = s.job;
      plan.events.push_back(e);
      if (e.kind == FaultKind::kWorkerCrash && s.restart > 0) {
        FaultEvent restart = e;
        restart.kind = FaultKind::kWorkerRestart;
        restart.time = s.t + s.restart;
        plan.events.push_back(restart);
      }
    } else if (kind_name == "dm-restart") {
      e.kind = FaultKind::kDataManagerRestart;
      plan.events.push_back(e);
    } else {
      return Status::InvalidArgument("unknown fault kind: " + kind_name);
    }
  }
  plan.Sort();
  return plan;
}

FaultPlan GenerateFaultPlan(const FaultChurnOptions& options) {
  FaultPlan plan;
  Rng rng(options.seed ^ 0xFA171ULL);

  // Poisson arrivals per category: exponential interarrivals at the given
  // hourly rate until the horizon.  Each category forks its own stream so
  // raising one rate does not perturb the others' event times.
  auto arrivals = [&](double per_hour, Rng stream) {
    std::vector<Seconds> times;
    if (per_hour <= 0) {
      return times;
    }
    const double rate_per_sec = per_hour / 3600.0;
    Seconds t = stream.Exponential(rate_per_sec);
    while (t < options.horizon) {
      times.push_back(t);
      t += stream.Exponential(rate_per_sec);
    }
    return times;
  };

  Rng server_stream = rng.Fork();
  Rng worker_stream = rng.Fork();
  Rng degrade_stream = rng.Fork();
  Rng dm_stream = rng.Fork();

  for (const Seconds t : arrivals(options.server_crashes_per_hour, server_stream.Fork())) {
    FaultEvent crash;
    crash.time = t;
    crash.kind = FaultKind::kCacheServerCrash;
    crash.target =
        static_cast<int>(server_stream.NextBelow(static_cast<std::uint64_t>(
            std::max(1, options.num_servers))));
    plan.events.push_back(crash);
    FaultEvent recover = crash;
    recover.kind = FaultKind::kCacheServerRecover;
    recover.time = t + std::max<Seconds>(1.0, options.mean_server_downtime);
    plan.events.push_back(recover);
  }
  for (const Seconds t : arrivals(options.worker_crashes_per_hour, worker_stream.Fork())) {
    FaultEvent crash;
    crash.time = t;
    crash.kind = FaultKind::kWorkerCrash;
    crash.target = static_cast<int>(
        worker_stream.NextBelow(static_cast<std::uint64_t>(std::max(1, options.num_jobs))));
    plan.events.push_back(crash);
    FaultEvent restart = crash;
    restart.kind = FaultKind::kWorkerRestart;
    restart.time = t + std::max<Seconds>(1.0, options.worker_restart_delay);
    plan.events.push_back(restart);
  }
  for (const Seconds t : arrivals(options.degrade_windows_per_hour, degrade_stream.Fork())) {
    FaultEvent degrade;
    degrade.time = t;
    degrade.kind = FaultKind::kRemoteDegrade;
    degrade.severity = options.degrade_factor;
    degrade.error_rate = options.degrade_error_rate;
    plan.events.push_back(degrade);
    FaultEvent restore;
    restore.time = t + std::max<Seconds>(1.0, options.degrade_duration);
    restore.kind = FaultKind::kRemoteDegrade;
    plan.events.push_back(restore);
  }
  for (const Seconds t : arrivals(options.dm_restarts_per_hour, dm_stream.Fork())) {
    FaultEvent restart;
    restart.time = t;
    restart.kind = FaultKind::kDataManagerRestart;
    plan.events.push_back(restart);
  }

  plan.Sort();
  return plan;
}

}  // namespace silod
