#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "src/common/rng.h"

namespace silod {
namespace {

std::string FmtTime(Seconds t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", t);
  return buf;
}

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

struct EventSpec {
  Seconds t = -1;
  int server = -1;
  int job = -1;
  double factor = 1.0;
  double err = 0.0;
  Seconds down = 0;     // server-crash / zone-crash outage length.
  Seconds dur = 0;      // degrade window length ("for=").
  Seconds restart = 60; // worker-crash restart delay.
  Seconds stagger = 0;  // zone-crash per-member recovery stagger.
  std::string name;     // zone declaration name.
  std::string zone;     // zone-crash target zone.
  std::string anchor;   // degrade anchored to a zone's recovery instant.
  int servers_lo = -1;  // zone declaration range, inclusive.
  int servers_hi = -1;
};

// Parses "a-b" (inclusive integer range) into lo/hi.
Status ParseServerRange(const std::string& raw, int* lo, int* hi) {
  const std::size_t dash = raw.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= raw.size()) {
    return Status::InvalidArgument("zone servers= wants a range a-b, got: " + raw);
  }
  std::istringstream lo_in(raw.substr(0, dash));
  std::istringstream hi_in(raw.substr(dash + 1));
  if (!(lo_in >> *lo) || !lo_in.eof() || !(hi_in >> *hi) || !hi_in.eof()) {
    return Status::InvalidArgument("zone servers= wants a range a-b, got: " + raw);
  }
  if (*lo < 0 || *hi < *lo) {
    return Status::InvalidArgument("zone servers= range is empty or negative: " + raw);
  }
  return Status::Ok();
}

Status ParseKeyValue(const std::string& token, EventSpec* spec) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("fault event token is not key=value: " + token);
  }
  const std::string key = token.substr(0, eq);
  const std::string raw = token.substr(eq + 1);
  // String-valued keys first; everything else is numeric.
  if (key == "name") {
    spec->name = raw;
    return Status::Ok();
  }
  if (key == "zone") {
    spec->zone = raw;
    return Status::Ok();
  }
  if (key == "anchor") {
    spec->anchor = raw;
    return Status::Ok();
  }
  if (key == "servers") {
    return ParseServerRange(raw, &spec->servers_lo, &spec->servers_hi);
  }
  double value = 0;
  std::istringstream in(raw);
  if (!(in >> value) || !in.eof()) {
    return Status::InvalidArgument("bad fault value: " + token);
  }
  if (key == "t") {
    spec->t = value;
  } else if (key == "server") {
    spec->server = static_cast<int>(value);
  } else if (key == "job") {
    spec->job = static_cast<int>(value);
  } else if (key == "factor") {
    spec->factor = value;
  } else if (key == "err") {
    spec->err = value;
  } else if (key == "down") {
    spec->down = value;
  } else if (key == "for") {
    spec->dur = value;
  } else if (key == "restart") {
    spec->restart = value;
  } else if (key == "stagger") {
    spec->stagger = value;
  } else {
    return Status::InvalidArgument("unknown fault key: " + key);
  }
  return Status::Ok();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCacheServerCrash:
      return "server-crash";
    case FaultKind::kCacheServerRecover:
      return "server-recover";
    case FaultKind::kRemoteDegrade:
      return "degrade";
    case FaultKind::kWorkerCrash:
      return "worker-crash";
    case FaultKind::kWorkerRestart:
      return "worker-restart";
    case FaultKind::kDataManagerRestart:
      return "dm-restart";
  }
  return "unknown";
}

void FaultPlan::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
}

std::string FaultPlan::ToSpec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) {
      out += "; ";
    }
    out += FaultKindName(e.kind);
    out += " t=" + FmtTime(e.time);
    switch (e.kind) {
      case FaultKind::kCacheServerCrash:
      case FaultKind::kCacheServerRecover:
        out += " server=" + std::to_string(e.target);
        break;
      case FaultKind::kWorkerCrash:
        // Expanded plans carry restarts as explicit events; suppress the
        // default re-expansion or Parse(ToSpec()) would grow a phantom one.
        out += " job=" + std::to_string(e.target) + " restart=0";
        break;
      case FaultKind::kWorkerRestart:
        out += " job=" + std::to_string(e.target);
        break;
      case FaultKind::kRemoteDegrade:
        out += " factor=" + FmtDouble(e.severity) + " err=" + FmtDouble(e.error_rate);
        break;
      case FaultKind::kDataManagerRestart:
        break;
    }
  }
  return out;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& spec,
                                   std::vector<TopologyZone>* zones_out) {
  FaultPlan plan;
  if (zones_out != nullptr) {
    zones_out->clear();
  }
  // Zones declared earlier in the spec, and the first recovery instant of
  // each zone's most recent zone-crash (for anchored degrades).
  std::map<std::string, FaultZone> zones;
  std::map<std::string, Seconds> recovery_base;
  std::istringstream events_in(spec);
  std::string event_text;
  while (std::getline(events_in, event_text, ';')) {
    std::istringstream fields(event_text);
    std::string kind_name;
    if (!(fields >> kind_name)) {
      continue;  // Empty segment (trailing semicolon).
    }
    EventSpec s;
    // worker-crash expands with a paired restart by default; explicit
    // restart=0 keeps the worker down for good.
    std::string token;
    while (fields >> token) {
      if (const Status st = ParseKeyValue(token, &s); !st.ok()) {
        return st;
      }
    }

    if (kind_name == "zone") {
      // Declaration, not an event: no t=.
      if (s.name.empty() || s.servers_lo < 0) {
        return Status::InvalidArgument("zone wants name= and servers=a-b: " + event_text);
      }
      if (zones.count(s.name)) {
        return Status::InvalidArgument("zone declared twice: " + s.name);
      }
      zones[s.name] = FaultZone{s.name, s.servers_lo, s.servers_hi};
      if (zones_out != nullptr) {
        zones_out->push_back(zones[s.name]);
      }
      continue;
    }
    if (kind_name == "zone-crash") {
      if (s.t < 0) {
        return Status::InvalidArgument("fault event missing t=: " + event_text);
      }
      const auto it = zones.find(s.zone);
      if (it == zones.end()) {
        return Status::InvalidArgument("zone-crash names undeclared zone: " + event_text);
      }
      const FaultZone& zone = it->second;
      for (int i = 0; i < zone.size(); ++i) {
        FaultEvent crash;
        crash.time = s.t;  // The whole domain goes down at one timestamp.
        crash.kind = FaultKind::kCacheServerCrash;
        crash.target = zone.first_server + i;
        plan.events.push_back(crash);
        if (s.down > 0) {
          FaultEvent recover = crash;
          recover.kind = FaultKind::kCacheServerRecover;
          recover.time = s.t + s.down + i * s.stagger;
          plan.events.push_back(recover);
        }
      }
      if (s.down > 0) {
        recovery_base[zone.name] = s.t + s.down;
      }
      continue;
    }
    const bool anchored = kind_name == "degrade" && !s.anchor.empty();
    if (anchored) {
      const auto it = recovery_base.find(s.anchor);
      if (it == recovery_base.end()) {
        return Status::InvalidArgument(
            "degrade anchor= wants a prior zone-crash with down>0 for zone '" + s.anchor +
            "': " + event_text);
      }
      // t= is an offset from the anchor zone's first recovery instant
      // (default 0): refill traffic lands inside the degraded window.
      s.t = it->second + std::max<Seconds>(0, s.t);
    }
    if (s.t < 0) {
      return Status::InvalidArgument("fault event missing t=: " + event_text);
    }

    FaultEvent e;
    e.time = s.t;
    if (kind_name == "server-crash" || kind_name == "server-recover") {
      if (s.server < 0) {
        return Status::InvalidArgument("server event missing server=: " + event_text);
      }
      e.kind = kind_name == "server-crash" ? FaultKind::kCacheServerCrash
                                           : FaultKind::kCacheServerRecover;
      e.target = s.server;
      plan.events.push_back(e);
      if (e.kind == FaultKind::kCacheServerCrash && s.down > 0) {
        FaultEvent recover = e;
        recover.kind = FaultKind::kCacheServerRecover;
        recover.time = s.t + s.down;
        plan.events.push_back(recover);
      }
    } else if (kind_name == "degrade") {
      if (s.factor <= 0 || s.factor > 1) {
        return Status::InvalidArgument("degrade factor must be in (0, 1]: " + event_text);
      }
      if (s.err < 0 || s.err >= 1) {
        return Status::InvalidArgument("degrade err must be in [0, 1): " + event_text);
      }
      e.kind = FaultKind::kRemoteDegrade;
      e.severity = s.factor;
      e.error_rate = s.err;
      plan.events.push_back(e);
      if (s.dur > 0) {
        FaultEvent restore;
        restore.kind = FaultKind::kRemoteDegrade;
        restore.time = s.t + s.dur;
        plan.events.push_back(restore);  // factor=1, err=0 defaults.
      }
    } else if (kind_name == "worker-crash" || kind_name == "worker-restart") {
      if (s.job < 0) {
        return Status::InvalidArgument("worker event missing job=: " + event_text);
      }
      e.kind = kind_name == "worker-crash" ? FaultKind::kWorkerCrash
                                           : FaultKind::kWorkerRestart;
      e.target = s.job;
      plan.events.push_back(e);
      if (e.kind == FaultKind::kWorkerCrash && s.restart > 0) {
        FaultEvent restart = e;
        restart.kind = FaultKind::kWorkerRestart;
        restart.time = s.t + s.restart;
        plan.events.push_back(restart);
      }
    } else if (kind_name == "dm-restart") {
      e.kind = FaultKind::kDataManagerRestart;
      plan.events.push_back(e);
    } else {
      return Status::InvalidArgument("unknown fault kind: " + kind_name);
    }
  }
  plan.Sort();
  return plan;
}

FaultPlan GenerateFaultPlan(const FaultChurnOptions& options) {
  FaultPlan plan;
  Rng rng(options.seed ^ 0xFA171ULL);

  // Poisson arrivals per category: exponential interarrivals at the given
  // hourly rate until the horizon.  Each category forks its own stream so
  // raising one rate does not perturb the others' event times.
  auto arrivals = [&](double per_hour, Rng stream) {
    std::vector<Seconds> times;
    if (per_hour <= 0) {
      return times;
    }
    const double rate_per_sec = per_hour / 3600.0;
    Seconds t = stream.Exponential(rate_per_sec);
    while (t < options.horizon) {
      times.push_back(t);
      t += stream.Exponential(rate_per_sec);
    }
    return times;
  };

  Rng server_stream = rng.Fork();
  Rng worker_stream = rng.Fork();
  Rng degrade_stream = rng.Fork();
  Rng dm_stream = rng.Fork();

  for (const Seconds t : arrivals(options.server_crashes_per_hour, server_stream.Fork())) {
    FaultEvent crash;
    crash.time = t;
    crash.kind = FaultKind::kCacheServerCrash;
    crash.target =
        static_cast<int>(server_stream.NextBelow(static_cast<std::uint64_t>(
            std::max(1, options.num_servers))));
    plan.events.push_back(crash);
    FaultEvent recover = crash;
    recover.kind = FaultKind::kCacheServerRecover;
    recover.time = t + std::max<Seconds>(1.0, options.mean_server_downtime);
    plan.events.push_back(recover);
  }
  for (const Seconds t : arrivals(options.worker_crashes_per_hour, worker_stream.Fork())) {
    FaultEvent crash;
    crash.time = t;
    crash.kind = FaultKind::kWorkerCrash;
    crash.target = static_cast<int>(
        worker_stream.NextBelow(static_cast<std::uint64_t>(std::max(1, options.num_jobs))));
    plan.events.push_back(crash);
    FaultEvent restart = crash;
    restart.kind = FaultKind::kWorkerRestart;
    restart.time = t + std::max<Seconds>(1.0, options.worker_restart_delay);
    plan.events.push_back(restart);
  }
  for (const Seconds t : arrivals(options.degrade_windows_per_hour, degrade_stream.Fork())) {
    FaultEvent degrade;
    degrade.time = t;
    degrade.kind = FaultKind::kRemoteDegrade;
    degrade.severity = options.degrade_factor;
    degrade.error_rate = options.degrade_error_rate;
    plan.events.push_back(degrade);
    FaultEvent restore;
    restore.time = t + std::max<Seconds>(1.0, options.degrade_duration);
    restore.kind = FaultKind::kRemoteDegrade;
    plan.events.push_back(restore);
  }
  for (const Seconds t : arrivals(options.dm_restarts_per_hour, dm_stream.Fork())) {
    FaultEvent restart;
    restart.time = t;
    restart.kind = FaultKind::kDataManagerRestart;
    plan.events.push_back(restart);
  }

  // Correlation mode: each zone draws from its own stream forked off a zone
  // master (itself forked after the four independent categories, so adding
  // zones never perturbs the independent streams).  Forks happen for every
  // zone up front, in declaration order, so changing one zone's rate leaves
  // every other zone's event times untouched.
  Rng zone_master = rng.Fork();
  std::vector<Rng> zone_streams;
  zone_streams.reserve(options.zones.size());
  for (std::size_t i = 0; i < options.zones.size(); ++i) {
    zone_streams.push_back(zone_master.Fork());
  }
  for (std::size_t z = 0; z < options.zones.size(); ++z) {
    const ZoneChurn& churn = options.zones[z];
    for (const Seconds t : arrivals(churn.crashes_per_hour, zone_streams[z].Fork())) {
      const Seconds down = std::max<Seconds>(1.0, churn.downtime);
      for (int i = 0; i < churn.zone.size(); ++i) {
        FaultEvent crash;
        crash.time = t;
        crash.kind = FaultKind::kCacheServerCrash;
        crash.target = churn.zone.first_server + i;
        plan.events.push_back(crash);
        FaultEvent recover = crash;
        recover.kind = FaultKind::kCacheServerRecover;
        recover.time = t + down + i * std::max<Seconds>(0, churn.recovery_stagger);
        plan.events.push_back(recover);
      }
      if (churn.recovery_degrade_factor < 1.0) {
        // Anchored degrade: refill traffic after recovery meets a degraded
        // remote store.
        FaultEvent open;
        open.time = t + down;
        open.kind = FaultKind::kRemoteDegrade;
        open.severity = churn.recovery_degrade_factor;
        open.error_rate = churn.recovery_degrade_error_rate;
        plan.events.push_back(open);
        FaultEvent close;
        close.time = open.time + std::max<Seconds>(1.0, churn.recovery_degrade_duration);
        close.kind = FaultKind::kRemoteDegrade;
        plan.events.push_back(close);
      }
    }
  }

  plan.Sort();
  return plan;
}

Result<std::vector<ZoneChurn>> ParseZoneChurnSpec(const std::string& spec) {
  std::vector<ZoneChurn> zones;
  std::istringstream zones_in(spec);
  std::string zone_text;
  while (std::getline(zones_in, zone_text, ';')) {
    if (zone_text.find_first_not_of(" \t") == std::string::npos) {
      continue;  // Empty segment (trailing semicolon).
    }
    ZoneChurn churn;
    bool has_name = false;
    bool has_range = false;
    std::istringstream fields_in(zone_text);
    std::string field;
    while (std::getline(fields_in, field, ':')) {
      // Trim surrounding spaces.
      const std::size_t begin = field.find_first_not_of(" \t");
      const std::size_t end = field.find_last_not_of(" \t");
      if (begin == std::string::npos) {
        continue;
      }
      field = field.substr(begin, end - begin + 1);
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("zone field is not key=value: " + field);
      }
      const std::string key = field.substr(0, eq);
      const std::string raw = field.substr(eq + 1);
      if (key == "zone") {
        churn.zone.name = raw;
        has_name = true;
        continue;
      }
      if (key == "servers") {
        if (const Status st =
                ParseServerRange(raw, &churn.zone.first_server, &churn.zone.last_server);
            !st.ok()) {
          return st;
        }
        has_range = true;
        continue;
      }
      double value = 0;
      std::istringstream in(raw);
      if (!(in >> value) || !in.eof()) {
        return Status::InvalidArgument("bad zone value: " + field);
      }
      if (key == "crashes-per-hour") {
        churn.crashes_per_hour = value;
      } else if (key == "down") {
        churn.downtime = value;
      } else if (key == "stagger") {
        churn.recovery_stagger = value;
      } else if (key == "degrade-factor") {
        if (value <= 0 || value > 1) {
          return Status::InvalidArgument("degrade-factor must be in (0, 1]: " + field);
        }
        churn.recovery_degrade_factor = value;
      } else if (key == "degrade-err") {
        if (value < 0 || value >= 1) {
          return Status::InvalidArgument("degrade-err must be in [0, 1): " + field);
        }
        churn.recovery_degrade_error_rate = value;
      } else if (key == "degrade-for") {
        churn.recovery_degrade_duration = value;
      } else {
        return Status::InvalidArgument("unknown zone key: " + key);
      }
    }
    if (!has_name || !has_range) {
      return Status::InvalidArgument("zone spec wants zone=<name> and servers=<a>-<b>: " +
                                     zone_text);
    }
    zones.push_back(std::move(churn));
  }
  return zones;
}

}  // namespace silod
