#include "src/fault/restart_cost.h"

#include <sstream>

namespace silod {

std::string RestartCost::ToSpec() const {
  switch (policy) {
    case RestartCostPolicy::kCheckpointEverything:
      return "checkpoint-everything";
    case RestartCostPolicy::kLosePartialEpoch:
      return "lose-partial-epoch";
    case RestartCostPolicy::kCheckpointInterval:
      return "checkpoint-interval:" + std::to_string(interval_blocks);
  }
  return "checkpoint-everything";
}

Result<RestartCost> RestartCost::Parse(const std::string& spec) {
  RestartCost cost;
  if (spec.empty() || spec == "checkpoint-everything") {
    cost.policy = RestartCostPolicy::kCheckpointEverything;
    return cost;
  }
  if (spec == "lose-partial-epoch") {
    cost.policy = RestartCostPolicy::kLosePartialEpoch;
    return cost;
  }
  const std::string prefix = "checkpoint-interval:";
  if (spec.rfind(prefix, 0) == 0) {
    std::int64_t blocks = 0;
    std::istringstream in(spec.substr(prefix.size()));
    if (!(in >> blocks) || !in.eof() || blocks <= 0) {
      return Status::InvalidArgument("checkpoint-interval wants a positive block count: " + spec);
    }
    cost.policy = RestartCostPolicy::kCheckpointInterval;
    cost.interval_blocks = blocks;
    return cost;
  }
  return Status::InvalidArgument(
      "unknown restart-cost policy: " + spec +
      " (checkpoint-everything | lose-partial-epoch | checkpoint-interval:N)");
}

}  // namespace silod
