// Deterministic fault injection for SiloD (§6, "Fault tolerance").
//
// The paper argues that SiloD's failure handling costs only performance,
// never correctness: allocation decisions live in durable pod annotations,
// cache content is best-effort, and every component recovers by rebuilding
// in-memory state from the durable pieces.  A FaultPlan makes that claim
// testable — it is a seedable, sorted schedule of adversarial events that
// both simulation engines and the real-thread runtime consume:
//
//   - cache-server crashes: the crashed server's resident blocks are lost and
//     the pool shrinks until the server recovers (empty);
//   - remote-store degradation windows: the account egress rate drops by a
//     factor and reads fail transiently with some probability;
//   - job-worker crashes: the job loses its GPUs, its in-flight fetch and its
//     private cache, and is re-admitted by the scheduler after a restart
//     delay (training progress is checkpointed, so no fetched-and-consumed
//     work is repeated);
//   - Data-Manager restarts: the in-memory allocation/cache state is
//     discarded and rebuilt through the recovery path (core/recovery.h).
//
// Plans are plain data (no clock, no RNG at consumption time), so the same
// plan replays bit-identically in virtual and wall-clock time.
//
// Failure domains: the spec language additionally understands *zones* —
// named, contiguous server ranges (`zone name=rack0 servers=0-3`).  A
// `zone-crash` takes the whole domain down at one timestamp and recovers its
// members on a per-server stagger, and a `degrade` may be anchored to the
// zone's recovery instant so refill traffic lands inside the degraded
// window.  Zones are parse-time sugar: expanded plans contain only the
// primitive events above, so Parse(ToSpec()) stays the identity.
#ifndef SILOD_SRC_FAULT_FAULT_PLAN_H_
#define SILOD_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/topology.h"
#include "src/common/units.h"

namespace silod {

enum class FaultKind {
  kCacheServerCrash,    // target = server index; its blocks are lost.
  kCacheServerRecover,  // target = server index; rejoins empty.
  kRemoteDegrade,       // severity = rate factor (0,1]; error_rate = P[read fails].
                        // severity 1 / error_rate 0 ends the window.
  kWorkerCrash,         // target = job id.
  kWorkerRestart,       // target = job id; the scheduler may re-admit it.
  kDataManagerRestart,  // rebuild through CaptureSnapshot/RestoreDataManager.
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  Seconds time = 0;
  FaultKind kind = FaultKind::kRemoteDegrade;
  int target = -1;          // Server or job id; unused for global events.
  double severity = 1.0;    // kRemoteDegrade: egress rate factor in (0, 1].
  double error_rate = 0.0;  // kRemoteDegrade: transient read-error probability.

  bool operator==(const FaultEvent&) const = default;
};

// A sorted schedule of fault events.  Durations in the spec language expand
// to explicit paired events (crash+recover, degrade+restore, crash+restart),
// so consumers never track timers of their own.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // Stable sort by time; equal-time events keep spec order.
  void Sort();

  // Canonical one-line spec: events joined by "; ".  Parse(ToSpec()) is the
  // identity on sorted plans.
  std::string ToSpec() const;

  // Parses a semicolon-separated spec.  Each event is a kind name followed by
  // key=value tokens:
  //   server-crash   t=<sec> server=<id> [down=<sec>]     (down>0 adds recover)
  //   server-recover t=<sec> server=<id>
  //   degrade        t=<sec> [factor=<f>] [err=<p>] [for=<sec>]
  //   worker-crash   t=<sec> job=<id> [restart=<sec>]     (default restart=60)
  //   worker-restart t=<sec> job=<id>
  //   dm-restart     t=<sec>
  // Failure-domain sugar (expanded to the primitives above):
  //   zone           name=<id> servers=<a>-<b>            (declaration, no event)
  //   zone-crash     t=<sec> zone=<id> [down=<sec>] [stagger=<sec>]
  //       every member server crashes at t; member i recovers at
  //       t + down + i*stagger (down=0 means no recovery)
  //   degrade        anchor=<zone> [t=<offset>] [factor=<f>] [err=<p>] [for=<sec>]
  //       the window opens at <offset> seconds after the first recovery
  //       instant (t + down) of the zone's most recent zone-crash
  // Returns the sorted, duration-expanded plan.  When `zones` is non-null it
  // receives the spec's zone declarations (in declaration order) so callers
  // can derive a ClusterTopology from the same failure domains the plan
  // crashes — expanded plans still contain only primitive events.
  static Result<FaultPlan> Parse(const std::string& spec,
                                 std::vector<TopologyZone>* zones = nullptr);
};

// The fault-plan spec language and common/topology.h share one zone type: a
// failure domain declared for crashing is the same failure domain the
// placement spreads against.
using FaultZone = TopologyZone;

// Correlated churn for one zone: zone-crash arrivals are Poisson on the
// zone's own forked stream, so changing one zone's rate (or downtime) leaves
// every other zone's event times untouched.
struct ZoneChurn {
  FaultZone zone;
  double crashes_per_hour = 0;
  Seconds downtime = Minutes(15);        // First member recovers after this.
  Seconds recovery_stagger = 30;         // Member i recovers i*stagger later.
  // A recovery-anchored degrade window (factor < 1 enables it): opens at the
  // first recovery instant, so refill traffic lands inside the window.
  double recovery_degrade_factor = 1.0;
  double recovery_degrade_error_rate = 0;
  Seconds recovery_degrade_duration = Minutes(10);
};

// Seeded churn-plan generator: Poisson arrivals per fault category over the
// horizon, uniform targets.  Deterministic in (options, seed).
struct FaultChurnOptions {
  Seconds horizon = Hours(24);
  double server_crashes_per_hour = 0;
  double worker_crashes_per_hour = 0;
  double degrade_windows_per_hour = 0;
  double dm_restarts_per_hour = 0;
  Seconds mean_server_downtime = Minutes(15);
  Seconds worker_restart_delay = Minutes(2);
  Seconds degrade_duration = Minutes(10);
  double degrade_factor = 0.25;    // Egress rate factor inside a window.
  double degrade_error_rate = 0;   // Transient-error probability inside it.
  int num_servers = 1;             // Crash targets drawn uniformly.
  int num_jobs = 1;
  std::uint64_t seed = 1;
  // Correlation mode: whole-zone crashes on per-zone forked streams, in
  // addition to (not instead of) the independent categories above.
  std::vector<ZoneChurn> zones;
};

FaultPlan GenerateFaultPlan(const FaultChurnOptions& options);

// Parses the --fault-zone flag: ";"-separated zone specs, each a ":"-joined
// list of key=value fields:
//   zone=<name>:servers=<a>-<b>[:crashes-per-hour=<r>][:down=<sec>]
//     [:stagger=<sec>][:degrade-factor=<f>][:degrade-err=<p>][:degrade-for=<sec>]
Result<std::vector<ZoneChurn>> ParseZoneChurnSpec(const std::string& spec);

// What a consumer did with a plan; reported in SimResult (engines) so churn
// sweeps can attribute throughput loss to specific outage windows.
struct FaultStats {
  int server_crashes = 0;
  int server_recoveries = 0;
  int worker_crashes = 0;
  int worker_restarts = 0;
  int degrade_windows = 0;
  int dm_restarts = 0;
  // Events the consumer cannot model; counted rather than silently dropped.
  int ignored_events = 0;
  // Blocks evicted because their server crashed.
  std::int64_t blocks_lost = 0;
  // Same loss in bytes (fluid engines lose fractional blocks), and its
  // attribution to topology zones when the run is zone-aware.  Oblivious
  // runs leave the map empty.
  double bytes_lost = 0;
  std::map<std::string, std::int64_t> blocks_lost_by_zone;
  // RestartCost accounting: blocks (fine engine) / bytes (flow engine)
  // re-read because a worker crash discarded un-checkpointed progress, and
  // the staged compute-seconds that were discarded with them.
  std::int64_t blocks_refetched = 0;
  double bytes_refetched = 0;
  double compute_lost = 0;

  // Per-window degraded throughput: the time-average of the run's total
  // throughput over each outage window (Fig. 9-style attribution).
  struct Window {
    std::string label;
    Seconds start = 0;
    Seconds end = 0;
    double avg_throughput = 0;  // Bytes/s while the window was open.
  };
  std::vector<Window> windows;
};

}  // namespace silod

#endif  // SILOD_SRC_FAULT_FAULT_PLAN_H_
