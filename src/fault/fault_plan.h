// Deterministic fault injection for SiloD (§6, "Fault tolerance").
//
// The paper argues that SiloD's failure handling costs only performance,
// never correctness: allocation decisions live in durable pod annotations,
// cache content is best-effort, and every component recovers by rebuilding
// in-memory state from the durable pieces.  A FaultPlan makes that claim
// testable — it is a seedable, sorted schedule of adversarial events that
// both simulation engines and the real-thread runtime consume:
//
//   - cache-server crashes: the crashed server's resident blocks are lost and
//     the pool shrinks until the server recovers (empty);
//   - remote-store degradation windows: the account egress rate drops by a
//     factor and reads fail transiently with some probability;
//   - job-worker crashes: the job loses its GPUs, its in-flight fetch and its
//     private cache, and is re-admitted by the scheduler after a restart
//     delay (training progress is checkpointed, so no fetched-and-consumed
//     work is repeated);
//   - Data-Manager restarts: the in-memory allocation/cache state is
//     discarded and rebuilt through the recovery path (core/recovery.h).
//
// Plans are plain data (no clock, no RNG at consumption time), so the same
// plan replays bit-identically in virtual and wall-clock time.
#ifndef SILOD_SRC_FAULT_FAULT_PLAN_H_
#define SILOD_SRC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace silod {

enum class FaultKind {
  kCacheServerCrash,    // target = server index; its blocks are lost.
  kCacheServerRecover,  // target = server index; rejoins empty.
  kRemoteDegrade,       // severity = rate factor (0,1]; error_rate = P[read fails].
                        // severity 1 / error_rate 0 ends the window.
  kWorkerCrash,         // target = job id.
  kWorkerRestart,       // target = job id; the scheduler may re-admit it.
  kDataManagerRestart,  // rebuild through CaptureSnapshot/RestoreDataManager.
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  Seconds time = 0;
  FaultKind kind = FaultKind::kRemoteDegrade;
  int target = -1;          // Server or job id; unused for global events.
  double severity = 1.0;    // kRemoteDegrade: egress rate factor in (0, 1].
  double error_rate = 0.0;  // kRemoteDegrade: transient read-error probability.

  bool operator==(const FaultEvent&) const = default;
};

// A sorted schedule of fault events.  Durations in the spec language expand
// to explicit paired events (crash+recover, degrade+restore, crash+restart),
// so consumers never track timers of their own.
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // Stable sort by time; equal-time events keep spec order.
  void Sort();

  // Canonical one-line spec: events joined by "; ".  Parse(ToSpec()) is the
  // identity on sorted plans.
  std::string ToSpec() const;

  // Parses a semicolon-separated spec.  Each event is a kind name followed by
  // key=value tokens:
  //   server-crash   t=<sec> server=<id> [down=<sec>]     (down>0 adds recover)
  //   server-recover t=<sec> server=<id>
  //   degrade        t=<sec> [factor=<f>] [err=<p>] [for=<sec>]
  //   worker-crash   t=<sec> job=<id> [restart=<sec>]     (default restart=60)
  //   worker-restart t=<sec> job=<id>
  //   dm-restart     t=<sec>
  // Returns the sorted, duration-expanded plan.
  static Result<FaultPlan> Parse(const std::string& spec);
};

// Seeded churn-plan generator: Poisson arrivals per fault category over the
// horizon, uniform targets.  Deterministic in (options, seed).
struct FaultChurnOptions {
  Seconds horizon = Hours(24);
  double server_crashes_per_hour = 0;
  double worker_crashes_per_hour = 0;
  double degrade_windows_per_hour = 0;
  double dm_restarts_per_hour = 0;
  Seconds mean_server_downtime = Minutes(15);
  Seconds worker_restart_delay = Minutes(2);
  Seconds degrade_duration = Minutes(10);
  double degrade_factor = 0.25;    // Egress rate factor inside a window.
  double degrade_error_rate = 0;   // Transient-error probability inside it.
  int num_servers = 1;             // Crash targets drawn uniformly.
  int num_jobs = 1;
  std::uint64_t seed = 1;
};

FaultPlan GenerateFaultPlan(const FaultChurnOptions& options);

// What a consumer did with a plan; reported in SimResult (engines) so churn
// sweeps can attribute throughput loss to specific outage windows.
struct FaultStats {
  int server_crashes = 0;
  int server_recoveries = 0;
  int worker_crashes = 0;
  int worker_restarts = 0;
  int degrade_windows = 0;
  int dm_restarts = 0;
  // Events the consumer cannot model (e.g. server crashes on the single-node
  // real-time cluster); counted rather than silently dropped.
  int ignored_events = 0;
  // Blocks evicted because their server crashed.
  std::int64_t blocks_lost = 0;

  // Per-window degraded throughput: the time-average of the run's total
  // throughput over each outage window (Fig. 9-style attribution).
  struct Window {
    std::string label;
    Seconds start = 0;
    Seconds end = 0;
    double avg_throughput = 0;  // Bytes/s while the window was open.
  };
  std::vector<Window> windows;
};

}  // namespace silod

#endif  // SILOD_SRC_FAULT_FAULT_PLAN_H_
