#include "src/fault/fault_injector.h"

#include <utility>

namespace silod {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) { plan_.Sort(); }

Seconds FaultInjector::NextTime() const {
  return exhausted() ? kInfiniteTime : plan_.events[next_].time;
}

void FaultInjector::PopDue(Seconds now, std::vector<FaultEvent>* due) {
  while (next_ < plan_.events.size() && plan_.events[next_].time <= now) {
    due->push_back(plan_.events[next_]);
    ++next_;
  }
}

}  // namespace silod
