#include "src/cache/item_cache.h"

#include "src/common/logging.h"

namespace silod {

// ---------------------------------------------------------------- Uniform --

UniformItemCache::UniformItemCache(Bytes capacity) : ItemCache(capacity) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
}

bool UniformItemCache::Access(const ItemKey& key) { return items_.count(key) > 0; }

bool UniformItemCache::Contains(const ItemKey& key) const { return items_.count(key) > 0; }

void UniformItemCache::Admit(const ItemKey& key, Bytes bytes) {
  SILOD_CHECK(bytes > 0) << "item size must be positive";
  if (items_.count(key) > 0) {
    return;
  }
  // Uniform caching: admit while space remains, never evict afterwards.
  if (used_ + bytes > capacity_) {
    return;
  }
  items_.emplace(key, bytes);
  insertion_order_.push_back(key);
  used_ += bytes;
}

void UniformItemCache::SetCapacity(Bytes capacity, Rng* rng) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
  capacity_ = capacity;
  // Shrinking evicts uniformly at random (§6), which keeps every surviving
  // item equally likely to be any dataset block — the property uniform
  // caching's closed-form hit ratio depends on.
  while (used_ > capacity_ && !insertion_order_.empty()) {
    SILOD_CHECK(rng != nullptr) << "rng required to shrink a uniform cache";
    const std::size_t idx =
        static_cast<std::size_t>(rng->NextBelow(insertion_order_.size()));
    const ItemKey victim = insertion_order_[idx];
    insertion_order_[idx] = insertion_order_.back();
    insertion_order_.pop_back();
    auto it = items_.find(victim);
    SILOD_CHECK(it != items_.end()) << "eviction candidate not resident";
    used_ -= it->second;
    items_.erase(it);
  }
}

void UniformItemCache::ForEach(const std::function<void(const ItemKey&, Bytes)>& fn) const {
  for (const auto& [key, bytes] : items_) {
    fn(key, bytes);
  }
}

// -------------------------------------------------------------------- LRU --

LruItemCache::LruItemCache(Bytes capacity) : ItemCache(capacity) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
}

bool LruItemCache::Access(const ItemKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool LruItemCache::Contains(const ItemKey& key) const { return map_.count(key) > 0; }

void LruItemCache::EvictToFit(Bytes incoming) {
  while (used_ + incoming > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

void LruItemCache::Admit(const ItemKey& key, Bytes bytes) {
  SILOD_CHECK(bytes > 0) << "item size must be positive";
  if (map_.count(key) > 0) {
    return;
  }
  if (bytes > capacity_) {
    return;
  }
  EvictToFit(bytes);
  lru_.push_front(Entry{key, bytes});
  map_[key] = lru_.begin();
  used_ += bytes;
}

void LruItemCache::SetCapacity(Bytes capacity, Rng* /*rng*/) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
  capacity_ = capacity;
  EvictToFit(0);
}

// -------------------------------------------------------------------- LFU --

LfuItemCache::LfuItemCache(Bytes capacity) : ItemCache(capacity) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
}

bool LfuItemCache::Contains(const ItemKey& key) const { return map_.count(key) > 0; }

void LfuItemCache::Touch(
    std::unordered_map<ItemKey, FreqList::iterator, ItemKeyHash>::iterator it) {
  auto list_it = it->second;
  Entry entry = *list_it;
  auto freq_it = by_freq_.find(entry.freq);
  freq_it->second.erase(list_it);
  if (freq_it->second.empty()) {
    by_freq_.erase(freq_it);
  }
  entry.freq += 1;
  auto& new_list = by_freq_[entry.freq];
  new_list.push_front(entry);
  it->second = new_list.begin();
}

bool LfuItemCache::Access(const ItemKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  Touch(it);
  return true;
}

void LfuItemCache::EvictToFit(Bytes incoming) {
  while (used_ + incoming > capacity_ && !by_freq_.empty()) {
    auto freq_it = by_freq_.begin();  // Lowest frequency.
    FreqList& list = freq_it->second;
    const Entry& victim = list.back();  // LRU within the frequency class.
    used_ -= victim.bytes;
    map_.erase(victim.key);
    list.pop_back();
    if (list.empty()) {
      by_freq_.erase(freq_it);
    }
  }
}

void LfuItemCache::Admit(const ItemKey& key, Bytes bytes) {
  SILOD_CHECK(bytes > 0) << "item size must be positive";
  if (map_.count(key) > 0) {
    return;
  }
  if (bytes > capacity_) {
    return;
  }
  EvictToFit(bytes);
  auto& list = by_freq_[1];
  list.push_front(Entry{key, bytes, 1});
  map_[key] = list.begin();
  used_ += bytes;
}

void LfuItemCache::SetCapacity(Bytes capacity, Rng* /*rng*/) {
  SILOD_CHECK(capacity >= 0) << "negative capacity";
  capacity_ = capacity;
  EvictToFit(0);
}

}  // namespace silod
