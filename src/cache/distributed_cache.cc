#include "src/cache/distributed_cache.h"

#include <unordered_map>

#include "src/common/logging.h"

namespace silod {

DistributedCache::DistributedCache(int num_servers, Bytes per_server_capacity,
                                   std::uint64_t seed)
    : aggregate_(per_server_capacity * num_servers, seed),
      placement_(num_servers, /*virtual_nodes=*/128, seed ^ 0xD15C),
      per_server_capacity_(per_server_capacity),
      server_used_(static_cast<std::size_t>(num_servers), 0),
      alive_(static_cast<std::size_t>(num_servers), true),
      alive_count_(num_servers) {
  SILOD_CHECK(num_servers >= 1) << "need at least one server";
  SILOD_CHECK(per_server_capacity >= 0) << "negative server capacity";
}

Status DistributedCache::AllocateCacheSize(const Dataset& dataset, Bytes cache_size) {
  const Status st = aggregate_.AllocateCacheSize(dataset, cache_size);
  if (!st.ok()) {
    return st;
  }
  // A shrink may have evicted blocks inside the aggregate manager; rebuild
  // this dataset's contribution to the per-server usage from what survived.
  std::vector<Bytes> surviving(server_used_.size(), 0);
  for (const std::int64_t block : aggregate_.CachedBlocks(dataset.id)) {
    const int server = placement_.ServerFor(dataset.id, block);
    surviving[static_cast<std::size_t>(server)] += dataset.BlockBytes(block);
  }
  // Subtract the dataset's previous per-server footprint and add the new one.
  auto it = per_dataset_server_bytes_.find(dataset.id);
  if (it != per_dataset_server_bytes_.end()) {
    for (std::size_t s = 0; s < server_used_.size(); ++s) {
      server_used_[s] -= it->second[s];
    }
  }
  for (std::size_t s = 0; s < server_used_.size(); ++s) {
    server_used_[s] += surviving[s];
  }
  per_dataset_server_bytes_[dataset.id] = std::move(surviving);
  return Status::Ok();
}

bool DistributedCache::AccessBlock(const Dataset& dataset, std::int64_t block) {
  if (aggregate_.IsCached(dataset.id, block)) {
    return true;
  }
  // Miss: admit iff the dataset quota AND the placed server have room.
  if (!aggregate_.WouldAdmit(dataset, block)) {
    return false;
  }
  ++admissions_;
  const int server = placement_.ServerFor(dataset.id, block);
  const Bytes bytes = dataset.BlockBytes(block);
  if (!alive_[static_cast<std::size_t>(server)] ||
      server_used_[static_cast<std::size_t>(server)] + bytes > per_server_capacity_) {
    ++server_rejections_;
    return false;
  }
  const Status st = aggregate_.AdmitBlock(dataset, block);
  SILOD_CHECK(st.ok()) << "gated admission failed: " << st.ToString();
  server_used_[static_cast<std::size_t>(server)] += bytes;
  auto it = per_dataset_server_bytes_.find(dataset.id);
  if (it == per_dataset_server_bytes_.end()) {
    it = per_dataset_server_bytes_
             .emplace(dataset.id, std::vector<Bytes>(server_used_.size(), 0))
             .first;
  }
  it->second[static_cast<std::size_t>(server)] += bytes;
  return false;
}

Result<std::int64_t> DistributedCache::CrashServer(int server) {
  if (server < 0 || server >= num_servers()) {
    return Status::InvalidArgument("no such cache server");
  }
  const auto s = static_cast<std::size_t>(server);
  if (!alive_[s]) {
    return Status::FailedPrecondition("cache server already down");
  }
  alive_[s] = false;
  --alive_count_;
  // Drop every resident block placed on this server; its disk content is
  // unreachable and treated as lost (best-effort cache content, §6).
  std::int64_t lost = 0;
  for (auto& [dataset, footprint] : per_dataset_server_bytes_) {
    if (footprint[s] == 0) {
      continue;
    }
    for (const std::int64_t block : aggregate_.CachedBlocks(dataset)) {
      if (placement_.ServerFor(dataset, block) != server) {
        continue;
      }
      const Status st = aggregate_.EvictBlock(dataset, block);
      SILOD_CHECK(st.ok()) << "evicting resident block failed: " << st.ToString();
      ++lost;
    }
    footprint[s] = 0;
  }
  server_used_[s] = 0;
  return lost;
}

Status DistributedCache::RecoverServer(int server) {
  if (server < 0 || server >= num_servers()) {
    return Status::InvalidArgument("no such cache server");
  }
  const auto s = static_cast<std::size_t>(server);
  if (alive_[s]) {
    return Status::FailedPrecondition("cache server already up");
  }
  alive_[s] = true;
  ++alive_count_;
  // The server rejoins empty; blocks refill as misses admit.
  SILOD_CHECK(server_used_[s] == 0) << "dead server held bytes";
  return Status::Ok();
}

double DistributedCache::ServerRejectRate() const {
  if (admissions_ == 0) {
    return 0;
  }
  return static_cast<double>(server_rejections_) / static_cast<double>(admissions_);
}

}  // namespace silod
