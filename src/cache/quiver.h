// Quiver's cache-allocation policy [44], as characterized in §7.
//
// Quiver preferentially assigns cache to the datasets with the highest
// benefit-to-cost ratio, with two properties SiloD improves upon:
//   - whole-dataset caching only: "jobs do not benefit from Quiver if it
//     cannot entirely fit into the cache", so a dataset that does not fit in
//     the remaining pool is skipped and that space may go unused (§7.1.1:
//     0.7 TB wasted in the micro-benchmark);
//   - online profiling: the benefit estimate comes from observed latencies
//     and fluctuates with IO contention, destabilizing the ranking and
//     occasionally evicting a still-useful dataset (§7.1.2).
#ifndef SILOD_SRC_CACHE_QUIVER_H_
#define SILOD_SRC_CACHE_QUIVER_H_

#include <map>
#include <vector>

#include "src/common/units.h"
#include "src/workload/dataset.h"

namespace silod {

struct QuiverCandidate {
  DatasetId dataset = kInvalidDataset;
  Bytes size = 0;
  // Benefit-per-byte as measured by Quiver's online profiler (for us: the
  // true cache efficiency perturbed by OnlineBenefitProfiler noise).
  double measured_benefit = 0;
};

// Ranks candidates by measured benefit (per byte) and caches whole datasets
// greedily; datasets that do not fit whole in the remaining space get nothing.
std::map<DatasetId, Bytes> QuiverAllocate(const std::vector<QuiverCandidate>& candidates,
                                          Bytes total_cache);

}  // namespace silod

#endif  // SILOD_SRC_CACHE_QUIVER_H_
