// Item-granularity caches used by the fine simulation engine.
//
// Three eviction disciplines:
//   - UniformItemCache: SiloD/CoorDL's uniform caching (§2.2) — admit items
//     until the capacity is reached, never evict afterwards.  Shrinking the
//     capacity evicts uniformly at random (§6), which preserves the uniform
//     hit-probability property.
//   - LruItemCache: Alluxio's default policy — classic LRU.
//   - LfuItemCache: least-frequently-used with LRU tie-break (O(1) scheme),
//     included because general-purpose cluster caches commonly offer it (§8).
//
// Caches store only metadata (keys and sizes); payload movement is what the
// engines simulate in virtual time.
#ifndef SILOD_SRC_CACHE_ITEM_CACHE_H_
#define SILOD_SRC_CACHE_ITEM_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/workload/dataset.h"

namespace silod {

struct ItemKey {
  DatasetId dataset = kInvalidDataset;
  std::int64_t block = -1;

  bool operator==(const ItemKey&) const = default;
  bool operator<(const ItemKey& o) const {
    return dataset != o.dataset ? dataset < o.dataset : block < o.block;
  }
};

struct ItemKeyHash {
  std::size_t operator()(const ItemKey& k) const {
    const std::uint64_t x = (static_cast<std::uint64_t>(k.dataset) << 40) ^
                            static_cast<std::uint64_t>(k.block) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

class ItemCache {
 public:
  explicit ItemCache(Bytes capacity) : capacity_(capacity) {}
  virtual ~ItemCache() = default;

  ItemCache(const ItemCache&) = delete;
  ItemCache& operator=(const ItemCache&) = delete;

  // Records an access.  Returns true on hit.  A hit may update recency or
  // frequency state; a miss records nothing (call Admit after fetching).
  virtual bool Access(const ItemKey& key) = 0;

  // Offers a fetched item of `bytes` for admission.  May evict other items.
  // No-op if the item is already resident.
  virtual void Admit(const ItemKey& key, Bytes bytes) = 0;

  // Changes capacity; shrinking evicts per the policy (uniform: random).
  virtual void SetCapacity(Bytes capacity, Rng* rng) = 0;

  // Residency check without touching recency/frequency state.
  virtual bool Contains(const ItemKey& key) const = 0;

  virtual Bytes used_bytes() const = 0;
  virtual std::size_t item_count() const = 0;
  Bytes capacity() const { return capacity_; }

 protected:
  Bytes capacity_;
};

class UniformItemCache : public ItemCache {
 public:
  explicit UniformItemCache(Bytes capacity);

  bool Access(const ItemKey& key) override;
  void Admit(const ItemKey& key, Bytes bytes) override;
  void SetCapacity(Bytes capacity, Rng* rng) override;
  bool Contains(const ItemKey& key) const override;
  Bytes used_bytes() const override { return used_; }
  std::size_t item_count() const override { return items_.size(); }

  // Visits every resident key (for effective-cache accounting).
  void ForEach(const std::function<void(const ItemKey&, Bytes)>& fn) const;

 private:
  std::unordered_map<ItemKey, Bytes, ItemKeyHash> items_;
  std::vector<ItemKey> insertion_order_;  // For O(1) random eviction on shrink.
  Bytes used_ = 0;
};

class LruItemCache : public ItemCache {
 public:
  explicit LruItemCache(Bytes capacity);

  bool Access(const ItemKey& key) override;
  void Admit(const ItemKey& key, Bytes bytes) override;
  void SetCapacity(Bytes capacity, Rng* rng) override;
  bool Contains(const ItemKey& key) const override;
  Bytes used_bytes() const override { return used_; }
  std::size_t item_count() const override { return map_.size(); }

 private:
  struct Entry {
    ItemKey key;
    Bytes bytes;
  };
  void EvictToFit(Bytes incoming);

  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<ItemKey, std::list<Entry>::iterator, ItemKeyHash> map_;
  Bytes used_ = 0;
};

class LfuItemCache : public ItemCache {
 public:
  explicit LfuItemCache(Bytes capacity);

  bool Access(const ItemKey& key) override;
  void Admit(const ItemKey& key, Bytes bytes) override;
  void SetCapacity(Bytes capacity, Rng* rng) override;
  bool Contains(const ItemKey& key) const override;
  Bytes used_bytes() const override { return used_; }
  std::size_t item_count() const override { return map_.size(); }

 private:
  struct Entry {
    ItemKey key;
    Bytes bytes;
    std::int64_t freq;
  };
  using FreqList = std::list<Entry>;
  void Touch(std::unordered_map<ItemKey, FreqList::iterator, ItemKeyHash>::iterator it);
  void EvictToFit(Bytes incoming);

  std::map<std::int64_t, FreqList> by_freq_;  // freq -> entries, LRU within.
  std::unordered_map<ItemKey, FreqList::iterator, ItemKeyHash> map_;
  Bytes used_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_CACHE_ITEM_CACHE_H_
