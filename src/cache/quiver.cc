#include "src/cache/quiver.h"

#include <algorithm>

#include "src/common/logging.h"

namespace silod {

std::map<DatasetId, Bytes> QuiverAllocate(const std::vector<QuiverCandidate>& candidates,
                                          Bytes total_cache) {
  SILOD_CHECK(total_cache >= 0) << "negative cache capacity";
  std::vector<QuiverCandidate> order = candidates;
  std::sort(order.begin(), order.end(), [](const QuiverCandidate& a, const QuiverCandidate& b) {
    if (a.measured_benefit != b.measured_benefit) {
      return a.measured_benefit > b.measured_benefit;
    }
    return a.dataset < b.dataset;
  });

  std::map<DatasetId, Bytes> alloc;
  Bytes remaining = total_cache;
  for (const QuiverCandidate& c : order) {
    SILOD_CHECK(c.size > 0) << "dataset size must be positive";
    if (c.size <= remaining) {
      alloc[c.dataset] = c.size;  // Whole dataset or nothing.
      remaining -= c.size;
    }
  }
  return alloc;
}

}  // namespace silod
