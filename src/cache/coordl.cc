#include "src/cache/coordl.h"

#include "src/common/logging.h"

namespace silod {

Bytes CoorDlStaticCache(const JobSpec& job, Bytes total_cache, int total_gpus) {
  SILOD_CHECK(total_gpus > 0) << "cluster has no GPUs";
  SILOD_CHECK(total_cache >= 0) << "negative cache";
  return total_cache * job.num_gpus / total_gpus;
}

}  // namespace silod
