// CoorDL's caching model [50], as characterized in §2.1/§7.
//
// CoorDL is a data-loading library: each job caches uniformly but
// *independently*, inside its own VM's local storage.  The cache is statically
// partitioned by VM — a job's share is the local disk of the GPUs it occupies
// (e.g. 368 GB per V100 on Azure) regardless of how much its dataset would
// benefit.  In the §7.1.1 micro-benchmark this hands half the 2 TB pool to
// the 4-GPU BERT job whose 20.9 TB corpus barely benefits.
//
// We model the static partition as (cluster cache) * (job GPUs / cluster
// GPUs), which reproduces both the per-V100 slice and the BERT waste.
#ifndef SILOD_SRC_CACHE_COORDL_H_
#define SILOD_SRC_CACHE_COORDL_H_

#include "src/common/units.h"
#include "src/workload/job.h"

namespace silod {

// The private cache slice CoorDL statically grants `job` in a cluster with
// `total_cache` bytes across `total_gpus` GPUs.
Bytes CoorDlStaticCache(const JobSpec& job, Bytes total_cache, int total_gpus);

}  // namespace silod

#endif  // SILOD_SRC_CACHE_COORDL_H_
