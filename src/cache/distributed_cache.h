// DistributedCache: the cluster cache pool with per-server enforcement.
//
// CacheManager treats the pool as one aggregate capacity; in the real
// deployment the pool is the union of every server's local disk (§2.1), so a
// block can only be cached if the *server it hashes to* has room.  This
// wrapper adds that constraint: blocks are placed with consistent hashing
// (storage/placement.h), each server enforces its own capacity, and the
// dataset-quota uniform-caching semantics of CacheManager apply on top.
//
// With an even spread the per-server constraint costs little (a few percent
// of nominal capacity lost to imbalance); the tests quantify exactly that,
// which is the quantitative footing for treating the pool as one capacity in
// the schedulers and engines.
#ifndef SILOD_SRC_CACHE_DISTRIBUTED_CACHE_H_
#define SILOD_SRC_CACHE_DISTRIBUTED_CACHE_H_

#include <map>
#include <vector>

#include "src/cache/cache_manager.h"
#include "src/storage/placement.h"

namespace silod {

class DistributedCache {
 public:
  DistributedCache(int num_servers, Bytes per_server_capacity, std::uint64_t seed = 7);

  int num_servers() const { return static_cast<int>(server_used_.size()); }
  Bytes per_server_capacity() const { return per_server_capacity_; }
  Bytes total_capacity() const {
    return per_server_capacity_ * static_cast<Bytes>(server_used_.size());
  }

  // Dataset-quota API, mirroring CacheManager (Table 3's allocateCacheSize).
  Status AllocateCacheSize(const Dataset& dataset, Bytes cache_size);
  Bytes Allocation(DatasetId dataset) const { return aggregate_.Allocation(dataset); }

  // Records a read; on a miss the block is admitted iff both the dataset's
  // quota and the target server have room.  Returns true on hit.
  bool AccessBlock(const Dataset& dataset, std::int64_t block);

  bool IsCached(DatasetId dataset, std::int64_t block) const {
    return aggregate_.IsCached(dataset, block);
  }
  Bytes CachedBytes(DatasetId dataset) const { return aggregate_.CachedBytes(dataset); }

  // Per-server occupancy (for balance diagnostics and tests).
  const std::vector<Bytes>& server_used() const { return server_used_; }
  Bytes server_used(int server) const { return server_used_[static_cast<std::size_t>(server)]; }

  // Fraction of admission attempts rejected solely by a full server while the
  // dataset quota still had room — the imbalance overhead.
  double ServerRejectRate() const;

  // --- Fault injection (§6) -------------------------------------------------
  // Marks a server dead: every block that hashes to it is evicted (cache
  // content is best-effort, §6) and further admissions to it are rejected.
  // Returns the number of blocks lost.
  Result<std::int64_t> CrashServer(int server);
  // Rejoins a crashed server, empty (its disk content is not trusted).
  Status RecoverServer(int server);
  bool server_alive(int server) const {
    return alive_[static_cast<std::size_t>(server)];
  }
  int alive_servers() const { return alive_count_; }
  // Capacity of the currently-alive servers.
  Bytes alive_capacity() const {
    return per_server_capacity_ * static_cast<Bytes>(alive_count_);
  }

 private:
  CacheManager aggregate_;
  BlockPlacement placement_;
  Bytes per_server_capacity_;
  std::vector<Bytes> server_used_;
  // Each dataset's footprint per server; lets a quota shrink rebuild the
  // per-server usage without touching other datasets.
  std::map<DatasetId, std::vector<Bytes>> per_dataset_server_bytes_;
  std::vector<bool> alive_;
  int alive_count_;
  std::int64_t admissions_ = 0;
  std::int64_t server_rejections_ = 0;
};

}  // namespace silod

#endif  // SILOD_SRC_CACHE_DISTRIBUTED_CACHE_H_
