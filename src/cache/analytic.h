// Closed-form cache models.
//
// Uniform caching under the exactly-once-per-epoch shuffled access pattern
// gives hit ratio c/d regardless of which items are cached (§2.2).  LRU under
// the same pattern thrashes.  Exact model: an item read at position p of one
// epoch is still resident at its next read (position q of the next epoch) iff
// fewer than c distinct items were touched in between.  The tail of epoch e
// (d-p items) and the head of epoch e+1 (q items) are independent random
// subsets, so the expected distinct count is d (1 - (1-u)(1-v)) with
// u = (d-p)/d, v = q/d uniform on [0,1].  The hit probability is therefore
//
//   P[(1-u)(1-v) > t] = 1 - t + t ln t,   t = 1 - c/d,
//
// ~ (c/d)^2/2 for small caches and strictly below uniform's c/d everywhere —
// the thrashing of §7.1.1.  Validated against an item-level LRU simulation in
// tests (within 3% across cache fractions).
//
// For a shared LRU pool (Alluxio, §7.1.2) we use a Che-style characteristic
// time T: a touched byte stays resident ~T seconds, so job i holds
// min(f_i * T, d_i) bytes and T solves sum_i min(f_i T, d_i) = C.  Job i's
// hit ratio is the same scan formula evaluated at the touched fraction
// r_i = min(f_i T / d_i, 1) — which is exactly why fast, cache-efficient jobs
// steal the pool from slow ones, the behaviour the paper observes for
// Alluxio.
#ifndef SILOD_SRC_CACHE_ANALYTIC_H_
#define SILOD_SRC_CACHE_ANALYTIC_H_

#include <vector>

#include "src/common/units.h"

namespace silod {

// Expected hit ratio of uniform caching with cache c over dataset d.
double UniformHitRatio(Bytes cache, Bytes dataset);

// The scan formula 1 - t + t ln t at t = 1 - fraction, for fraction in [0,1].
double LruScanHitFromFraction(double fraction);

// Expected hit ratio of a dedicated LRU cache of c bytes under shuffled
// epoch scans of a d-byte dataset.
double LruShuffledScanHitRatio(Bytes cache, Bytes dataset);

struct SharedLruResult {
  // Characteristic time of the pool, seconds.
  Seconds characteristic_time = 0;
  // Bytes each job effectively occupies.
  std::vector<Bytes> resident_bytes;
  // Per-job expected hit ratio.
  std::vector<double> hit_ratio;
};

// Fluid model of a shared LRU pool: jobs access their datasets at the given
// data-loading rates.  Rates and sizes must be positive and the same length.
SharedLruResult SharedLruModel(const std::vector<BytesPerSec>& access_rates,
                               const std::vector<Bytes>& dataset_sizes, Bytes capacity);

}  // namespace silod

#endif  // SILOD_SRC_CACHE_ANALYTIC_H_
