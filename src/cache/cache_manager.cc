#include "src/cache/cache_manager.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace silod {

CacheManager::CacheManager(Bytes total_capacity, std::uint64_t seed)
    : total_capacity_(total_capacity), rng_(seed) {
  SILOD_CHECK(total_capacity >= 0) << "negative cache capacity";
}

Bytes CacheManager::total_cached() const {
  Bytes total = 0;
  for (const auto& state : datasets_) {
    total += state.used;
  }
  return total;
}

CacheManager::DatasetState& CacheManager::GetOrCreate(const Dataset& dataset) {
  SILOD_CHECK(dataset.id >= 0) << "dataset id " << dataset.id << " not dense";
  const auto index = static_cast<std::size_t>(dataset.id);
  if (index >= datasets_.size()) {
    datasets_.resize(index + 1);
  }
  DatasetState& state = datasets_[index];
  if (!state.present) {
    state.present = true;
    state.dataset = dataset;
    state.block_gen.assign(static_cast<std::size_t>(dataset.num_blocks), 0);
  }
  return state;
}

CacheManager::DatasetState* CacheManager::Find(DatasetId dataset) {
  if (dataset < 0 || static_cast<std::size_t>(dataset) >= datasets_.size() ||
      !datasets_[static_cast<std::size_t>(dataset)].present) {
    return nullptr;
  }
  return &datasets_[static_cast<std::size_t>(dataset)];
}

const CacheManager::DatasetState* CacheManager::Find(DatasetId dataset) const {
  if (dataset < 0 || static_cast<std::size_t>(dataset) >= datasets_.size() ||
      !datasets_[static_cast<std::size_t>(dataset)].present) {
    return nullptr;
  }
  return &datasets_[static_cast<std::size_t>(dataset)];
}

CacheManager::JobState& CacheManager::JobRef(JobId job) {
  SILOD_CHECK(job >= 0 && static_cast<std::size_t>(job) < jobs_.size() &&
              jobs_[static_cast<std::size_t>(job)].registered)
      << "unknown job " << job;
  return jobs_[static_cast<std::size_t>(job)];
}

const CacheManager::JobState& CacheManager::JobRef(JobId job) const {
  SILOD_CHECK(job >= 0 && static_cast<std::size_t>(job) < jobs_.size() &&
              jobs_[static_cast<std::size_t>(job)].registered)
      << "unknown job " << job;
  return jobs_[static_cast<std::size_t>(job)];
}

void CacheManager::Admit(DatasetState& state, std::int64_t block) {
  SILOD_CHECK(block >= 0 && block < state.dataset.num_blocks)
      << "block " << block << " out of range for dataset " << state.dataset.id;
  state.block_gen[static_cast<std::size_t>(block)] = ++generation_;
  state.used += state.dataset.BlockBytes(block);
  ++state.resident;
}

Bytes CacheManager::Evict(DatasetState& state, std::int64_t block) {
  const std::uint64_t gen = state.block_gen[static_cast<std::size_t>(block)];
  SILOD_CHECK(gen != 0) << "evicting non-resident block " << block;
  state.block_gen[static_cast<std::size_t>(block)] = 0;
  const Bytes bytes = state.dataset.BlockBytes(block);
  state.used -= bytes;
  --state.resident;
  // The block was effective for exactly the readers whose epoch started at
  // or after its insertion; integer subtraction keeps the incremental value
  // equal to the defining scan regardless of reader order.
  for (const JobId reader : state.readers) {
    JobState& js = jobs_[static_cast<std::size_t>(reader)];
    if (gen <= js.epoch_generation) {
      js.effective -= bytes;
    }
  }
  return bytes;
}

Status CacheManager::AllocateCacheSize(const Dataset& dataset, Bytes cache_size) {
  if (cache_size < 0) {
    return Status::InvalidArgument("negative cache allocation");
  }
  DatasetState& state = GetOrCreate(dataset);
  const Bytes delta = cache_size - state.quota;
  // Shrinks are always legal: after a cache-server crash the pool capacity
  // drops below the allocated total, and it is exactly the shrinks of the
  // next plan that drain the over-commit — rejecting them would wedge the
  // pool over capacity for good.
  if (delta > 0 && total_allocated_ + delta > total_capacity_) {
    return Status::ResourceExhausted("cache pool over-committed");
  }
  total_allocated_ += delta;
  state.quota = cache_size;
  // Shrinking below occupancy evicts uniformly at random (§6).  Candidates
  // are collected in block order and shuffled once so large shrinks stay
  // O(n) and the outcome is independent of any container iteration order.
  if (state.used > state.quota) {
    std::vector<std::int64_t> resident;
    resident.reserve(static_cast<std::size_t>(state.resident));
    for (std::size_t b = 0; b < state.block_gen.size(); ++b) {
      if (state.block_gen[b] != 0) {
        resident.push_back(static_cast<std::int64_t>(b));
      }
    }
    rng_.Shuffle(resident);
    for (std::int64_t block : resident) {
      if (state.used <= state.quota) {
        break;
      }
      Evict(state, block);
    }
  }
  return Status::Ok();
}

Bytes CacheManager::Allocation(DatasetId dataset) const {
  const DatasetState* state = Find(dataset);
  return state == nullptr ? 0 : state->quota;
}

void CacheManager::ReleaseDataset(DatasetId dataset) {
  DatasetState* state = Find(dataset);
  if (state == nullptr) {
    return;
  }
  total_allocated_ -= state->quota;
  // Everything resident is gone, so nothing remains effective for any
  // registered reader; the reader list itself survives the release.
  for (const JobId reader : state->readers) {
    jobs_[static_cast<std::size_t>(reader)].effective = 0;
  }
  state->present = false;
  state->quota = 0;
  state->used = 0;
  state->resident = 0;
  state->block_gen.clear();
  state->block_gen.shrink_to_fit();
}

bool CacheManager::AccessBlock(const Dataset& dataset, std::int64_t block) {
  DatasetState& state = GetOrCreate(dataset);
  SILOD_CHECK(block >= 0 && block < dataset.num_blocks)
      << "block " << block << " out of range for dataset " << dataset.id;
  if (state.block_gen[static_cast<std::size_t>(block)] != 0) {
    return true;
  }
  // Miss: the caller fetches remotely; admit under uniform caching.
  if (state.used + state.dataset.BlockBytes(block) <= state.quota) {
    Admit(state, block);
  }
  return false;
}

bool CacheManager::WouldAdmit(const Dataset& dataset, std::int64_t block) const {
  const DatasetState* state = Find(dataset.id);
  if (state == nullptr || block < 0 || block >= dataset.num_blocks) {
    return false;
  }
  if (state->block_gen[static_cast<std::size_t>(block)] != 0) {
    return false;  // Already resident.
  }
  return state->used + dataset.BlockBytes(block) <= state->quota;
}

Status CacheManager::AdmitBlock(const Dataset& dataset, std::int64_t block) {
  DatasetState& state = GetOrCreate(dataset);
  if (block < 0 || block >= dataset.num_blocks) {
    return Status::InvalidArgument("block out of range");
  }
  if (state.block_gen[static_cast<std::size_t>(block)] != 0) {
    return Status::AlreadyExists("block already cached");
  }
  if (state.used + state.dataset.BlockBytes(block) > state.quota) {
    return Status::ResourceExhausted("dataset quota full");
  }
  Admit(state, block);
  return Status::Ok();
}

void CacheManager::SetTotalCapacity(Bytes capacity) {
  SILOD_CHECK(capacity >= 0) << "negative cache capacity";
  total_capacity_ = capacity;
}

std::int64_t CacheManager::EvictRandomFraction(double fraction, Bytes* bytes_evicted) {
  SILOD_CHECK(fraction >= 0 && fraction <= 1) << "fraction out of [0, 1]";
  std::int64_t evicted = 0;
  for (std::size_t id = 0; id < datasets_.size(); ++id) {
    if (datasets_[id].present) {
      evicted += EvictDatasetFraction(static_cast<DatasetId>(id), fraction, bytes_evicted);
    }
  }
  return evicted;
}

std::int64_t CacheManager::EvictDatasetFraction(DatasetId dataset, double fraction,
                                                Bytes* bytes_evicted) {
  SILOD_CHECK(fraction >= 0 && fraction <= 1) << "fraction out of [0, 1]";
  DatasetState* state = Find(dataset);
  if (state == nullptr) {
    return 0;
  }
  // Candidates come out of the flat residency array already sorted by block,
  // so the shuffle outcome is bit-identical across platforms.
  std::vector<std::int64_t> resident;
  resident.reserve(static_cast<std::size_t>(state->resident));
  for (std::size_t b = 0; b < state->block_gen.size(); ++b) {
    if (state->block_gen[b] != 0) {
      resident.push_back(static_cast<std::int64_t>(b));
    }
  }
  rng_.Shuffle(resident);
  const auto count = static_cast<std::size_t>(
      static_cast<double>(resident.size()) * fraction + 0.5);
  std::int64_t evicted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes bytes = Evict(*state, resident[i]);
    if (bytes_evicted != nullptr) {
      *bytes_evicted += bytes;
    }
    ++evicted;
  }
  return evicted;
}

Status CacheManager::EvictBlock(DatasetId dataset, std::int64_t block) {
  DatasetState* state = Find(dataset);
  if (state == nullptr || block < 0 ||
      static_cast<std::size_t>(block) >= state->block_gen.size() ||
      state->block_gen[static_cast<std::size_t>(block)] == 0) {
    return Status::NotFound("block not cached");
  }
  Evict(*state, block);
  return Status::Ok();
}

Bytes CacheManager::CachedBytes(DatasetId dataset) const {
  const DatasetState* state = Find(dataset);
  return state == nullptr ? 0 : state->used;
}

bool CacheManager::IsCached(DatasetId dataset, std::int64_t block) const {
  const DatasetState* state = Find(dataset);
  return state != nullptr && block >= 0 &&
         static_cast<std::size_t>(block) < state->block_gen.size() &&
         state->block_gen[static_cast<std::size_t>(block)] != 0;
}

std::vector<std::int64_t> CacheManager::CachedBlocks(DatasetId dataset) const {
  std::vector<std::int64_t> blocks;
  const DatasetState* state = Find(dataset);
  if (state == nullptr) {
    return blocks;
  }
  blocks.reserve(static_cast<std::size_t>(state->resident));
  for (std::size_t b = 0; b < state->block_gen.size(); ++b) {
    if (state->block_gen[b] != 0) {
      blocks.push_back(static_cast<std::int64_t>(b));
    }
  }
  return blocks;  // Flat-array scan order is already sorted.
}

Status CacheManager::RestoreCachedBlocks(const Dataset& dataset,
                                         const std::vector<std::int64_t>& blocks) {
  DatasetState& state = GetOrCreate(dataset);
  for (const std::int64_t block : blocks) {
    if (block < 0 || block >= dataset.num_blocks) {
      return Status::InvalidArgument("restored block out of range");
    }
    if (state.block_gen[static_cast<std::size_t>(block)] != 0) {
      continue;
    }
    if (state.used + dataset.BlockBytes(block) > state.quota) {
      continue;  // Shrunken allocation: surplus disk content is not re-admitted.
    }
    Admit(state, block);
  }
  return Status::Ok();
}

void CacheManager::RegisterJob(JobId job, const Dataset& dataset) {
  SILOD_CHECK(job >= 0) << "job id " << job << " not dense";
  if (static_cast<std::size_t>(job) >= jobs_.size()) {
    jobs_.resize(static_cast<std::size_t>(job) + 1);
  }
  JobState& state = jobs_[static_cast<std::size_t>(job)];
  SILOD_CHECK(!state.registered) << "job " << job << " already registered";
  DatasetState& ds = GetOrCreate(dataset);
  state.registered = true;
  state.dataset = dataset.id;
  state.accessed = DynamicBitset(static_cast<std::size_t>(dataset.num_blocks));
  state.epoch_generation = generation_;
  // Every resident block predates this epoch snapshot, so the job starts
  // with the dataset's full occupancy effective.
  state.effective = ds.used;
  ds.readers.push_back(job);
}

void CacheManager::UnregisterJob(JobId job) {
  if (job < 0 || static_cast<std::size_t>(job) >= jobs_.size() ||
      !jobs_[static_cast<std::size_t>(job)].registered) {
    return;
  }
  JobState& state = jobs_[static_cast<std::size_t>(job)];
  const auto index = static_cast<std::size_t>(state.dataset);
  if (state.dataset >= 0 && index < datasets_.size()) {
    auto& readers = datasets_[index].readers;
    readers.erase(std::remove(readers.begin(), readers.end(), job), readers.end());
  }
  state = JobState{};
}

void CacheManager::StartJobEpoch(JobId job) {
  JobState& state = JobRef(job);
  state.accessed.ClearAll();
  state.epoch_generation = generation_;
  const DatasetState* ds = Find(state.dataset);
  state.effective = ds == nullptr ? 0 : ds->used;
}

bool CacheManager::MarkJobAccess(JobId job, std::int64_t block) {
  return JobRef(job).accessed.Set(static_cast<std::size_t>(block));
}

std::int64_t CacheManager::RemainingBlocks(JobId job) const {
  const auto& bits = JobRef(job).accessed;
  return static_cast<std::int64_t>(bits.size() - bits.Count());
}

Bytes CacheManager::EffectiveBytes(JobId job) const { return JobRef(job).effective; }

}  // namespace silod
